file(REMOVE_RECURSE
  "CMakeFiles/lint_report_test.dir/lint_report_test.cc.o"
  "CMakeFiles/lint_report_test.dir/lint_report_test.cc.o.d"
  "lint_report_test"
  "lint_report_test.pdb"
  "lint_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lint_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
