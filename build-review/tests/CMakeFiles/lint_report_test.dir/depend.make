# Empty dependencies file for lint_report_test.
# This may be replaced when dependencies are built.
