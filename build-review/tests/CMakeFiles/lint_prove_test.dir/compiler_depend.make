# Empty compiler generated dependencies file for lint_prove_test.
# This may be replaced when dependencies are built.
