file(REMOVE_RECURSE
  "CMakeFiles/markov_session_test.dir/markov_session_test.cc.o"
  "CMakeFiles/markov_session_test.dir/markov_session_test.cc.o.d"
  "markov_session_test"
  "markov_session_test.pdb"
  "markov_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
