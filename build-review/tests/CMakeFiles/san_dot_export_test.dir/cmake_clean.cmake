file(REMOVE_RECURSE
  "CMakeFiles/san_dot_export_test.dir/san_dot_export_test.cc.o"
  "CMakeFiles/san_dot_export_test.dir/san_dot_export_test.cc.o.d"
  "san_dot_export_test"
  "san_dot_export_test.pdb"
  "san_dot_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_dot_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
