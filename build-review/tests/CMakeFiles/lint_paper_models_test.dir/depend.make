# Empty dependencies file for lint_paper_models_test.
# This may be replaced when dependencies are built.
