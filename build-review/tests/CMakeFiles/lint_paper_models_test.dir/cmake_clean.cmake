file(REMOVE_RECURSE
  "CMakeFiles/lint_paper_models_test.dir/lint_paper_models_test.cc.o"
  "CMakeFiles/lint_paper_models_test.dir/lint_paper_models_test.cc.o.d"
  "lint_paper_models_test"
  "lint_paper_models_test.pdb"
  "lint_paper_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lint_paper_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
