file(REMOVE_RECURSE
  "CMakeFiles/markov_importance_test.dir/markov_importance_test.cc.o"
  "CMakeFiles/markov_importance_test.dir/markov_importance_test.cc.o.d"
  "markov_importance_test"
  "markov_importance_test.pdb"
  "markov_importance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_importance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
