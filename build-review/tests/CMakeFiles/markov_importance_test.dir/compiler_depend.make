# Empty compiler generated dependencies file for markov_importance_test.
# This may be replaced when dependencies are built.
