file(REMOVE_RECURSE
  "CMakeFiles/linalg_dense_test.dir/linalg_dense_test.cc.o"
  "CMakeFiles/linalg_dense_test.dir/linalg_dense_test.cc.o.d"
  "linalg_dense_test"
  "linalg_dense_test.pdb"
  "linalg_dense_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_dense_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
