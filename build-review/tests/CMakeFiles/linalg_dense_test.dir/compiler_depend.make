# Empty compiler generated dependencies file for linalg_dense_test.
# This may be replaced when dependencies are built.
