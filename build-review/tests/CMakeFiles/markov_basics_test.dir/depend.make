# Empty dependencies file for markov_basics_test.
# This may be replaced when dependencies are built.
