file(REMOVE_RECURSE
  "CMakeFiles/markov_basics_test.dir/markov_basics_test.cc.o"
  "CMakeFiles/markov_basics_test.dir/markov_basics_test.cc.o.d"
  "markov_basics_test"
  "markov_basics_test.pdb"
  "markov_basics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_basics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
