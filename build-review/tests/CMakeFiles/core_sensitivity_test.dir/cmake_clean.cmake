file(REMOVE_RECURSE
  "CMakeFiles/core_sensitivity_test.dir/core_sensitivity_test.cc.o"
  "CMakeFiles/core_sensitivity_test.dir/core_sensitivity_test.cc.o.d"
  "core_sensitivity_test"
  "core_sensitivity_test.pdb"
  "core_sensitivity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sensitivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
