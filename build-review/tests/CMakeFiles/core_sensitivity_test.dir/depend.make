# Empty dependencies file for core_sensitivity_test.
# This may be replaced when dependencies are built.
