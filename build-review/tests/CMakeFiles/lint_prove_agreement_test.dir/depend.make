# Empty dependencies file for lint_prove_agreement_test.
# This may be replaced when dependencies are built.
