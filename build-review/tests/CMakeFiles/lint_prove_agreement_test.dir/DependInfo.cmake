
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lint_prove_agreement_test.cc" "tests/CMakeFiles/lint_prove_agreement_test.dir/lint_prove_agreement_test.cc.o" "gcc" "tests/CMakeFiles/lint_prove_agreement_test.dir/lint_prove_agreement_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/mdcd/CMakeFiles/gop_mdcd.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/gop_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lint/CMakeFiles/gop_lint.dir/DependInfo.cmake"
  "/root/repo/build-review/src/san/CMakeFiles/gop_san.dir/DependInfo.cmake"
  "/root/repo/build-review/src/markov/CMakeFiles/gop_markov.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/gop_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/gop_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/par/CMakeFiles/gop_par.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fi/CMakeFiles/gop_fi.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/gop_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/gop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
