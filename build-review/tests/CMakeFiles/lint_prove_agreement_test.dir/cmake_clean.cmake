file(REMOVE_RECURSE
  "CMakeFiles/lint_prove_agreement_test.dir/lint_prove_agreement_test.cc.o"
  "CMakeFiles/lint_prove_agreement_test.dir/lint_prove_agreement_test.cc.o.d"
  "lint_prove_agreement_test"
  "lint_prove_agreement_test.pdb"
  "lint_prove_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lint_prove_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
