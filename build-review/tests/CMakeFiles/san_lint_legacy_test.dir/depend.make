# Empty dependencies file for san_lint_legacy_test.
# This may be replaced when dependencies are built.
