file(REMOVE_RECURSE
  "CMakeFiles/san_lint_legacy_test.dir/san_lint_legacy_test.cc.o"
  "CMakeFiles/san_lint_legacy_test.dir/san_lint_legacy_test.cc.o.d"
  "san_lint_legacy_test"
  "san_lint_legacy_test.pdb"
  "san_lint_legacy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_lint_legacy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
