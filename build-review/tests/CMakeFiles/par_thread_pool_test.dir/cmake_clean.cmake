file(REMOVE_RECURSE
  "CMakeFiles/par_thread_pool_test.dir/par_thread_pool_test.cc.o"
  "CMakeFiles/par_thread_pool_test.dir/par_thread_pool_test.cc.o.d"
  "par_thread_pool_test"
  "par_thread_pool_test.pdb"
  "par_thread_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/par_thread_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
