# Empty dependencies file for par_thread_pool_test.
# This may be replaced when dependencies are built.
