file(REMOVE_RECURSE
  "CMakeFiles/san_model_test.dir/san_model_test.cc.o"
  "CMakeFiles/san_model_test.dir/san_model_test.cc.o.d"
  "san_model_test"
  "san_model_test.pdb"
  "san_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
