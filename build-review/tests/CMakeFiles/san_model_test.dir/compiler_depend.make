# Empty compiler generated dependencies file for san_model_test.
# This may be replaced when dependencies are built.
