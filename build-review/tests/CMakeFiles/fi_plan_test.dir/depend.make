# Empty dependencies file for fi_plan_test.
# This may be replaced when dependencies are built.
