file(REMOVE_RECURSE
  "CMakeFiles/fi_plan_test.dir/fi_plan_test.cc.o"
  "CMakeFiles/fi_plan_test.dir/fi_plan_test.cc.o.d"
  "fi_plan_test"
  "fi_plan_test.pdb"
  "fi_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fi_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
