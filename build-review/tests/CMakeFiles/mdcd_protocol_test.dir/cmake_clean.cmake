file(REMOVE_RECURSE
  "CMakeFiles/mdcd_protocol_test.dir/mdcd_protocol_test.cc.o"
  "CMakeFiles/mdcd_protocol_test.dir/mdcd_protocol_test.cc.o.d"
  "mdcd_protocol_test"
  "mdcd_protocol_test.pdb"
  "mdcd_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdcd_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
