# Empty compiler generated dependencies file for mdcd_protocol_test.
# This may be replaced when dependencies are built.
