file(REMOVE_RECURSE
  "CMakeFiles/markov_fox_glynn_boundary_test.dir/markov_fox_glynn_boundary_test.cc.o"
  "CMakeFiles/markov_fox_glynn_boundary_test.dir/markov_fox_glynn_boundary_test.cc.o.d"
  "markov_fox_glynn_boundary_test"
  "markov_fox_glynn_boundary_test.pdb"
  "markov_fox_glynn_boundary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_fox_glynn_boundary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
