# Empty dependencies file for markov_fox_glynn_boundary_test.
# This may be replaced when dependencies are built.
