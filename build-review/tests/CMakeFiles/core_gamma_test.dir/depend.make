# Empty dependencies file for core_gamma_test.
# This may be replaced when dependencies are built.
