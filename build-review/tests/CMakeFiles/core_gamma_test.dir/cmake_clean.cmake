file(REMOVE_RECURSE
  "CMakeFiles/core_gamma_test.dir/core_gamma_test.cc.o"
  "CMakeFiles/core_gamma_test.dir/core_gamma_test.cc.o.d"
  "core_gamma_test"
  "core_gamma_test.pdb"
  "core_gamma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_gamma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
