# Empty compiler generated dependencies file for markov_first_passage_test.
# This may be replaced when dependencies are built.
