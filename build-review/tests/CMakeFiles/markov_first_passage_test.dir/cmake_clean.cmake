file(REMOVE_RECURSE
  "CMakeFiles/markov_first_passage_test.dir/markov_first_passage_test.cc.o"
  "CMakeFiles/markov_first_passage_test.dir/markov_first_passage_test.cc.o.d"
  "markov_first_passage_test"
  "markov_first_passage_test.pdb"
  "markov_first_passage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_first_passage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
