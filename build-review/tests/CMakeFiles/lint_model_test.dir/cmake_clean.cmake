file(REMOVE_RECURSE
  "CMakeFiles/lint_model_test.dir/lint_model_test.cc.o"
  "CMakeFiles/lint_model_test.dir/lint_model_test.cc.o.d"
  "lint_model_test"
  "lint_model_test.pdb"
  "lint_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lint_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
