file(REMOVE_RECURSE
  "CMakeFiles/markov_steady_absorbing_test.dir/markov_steady_absorbing_test.cc.o"
  "CMakeFiles/markov_steady_absorbing_test.dir/markov_steady_absorbing_test.cc.o.d"
  "markov_steady_absorbing_test"
  "markov_steady_absorbing_test.pdb"
  "markov_steady_absorbing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_steady_absorbing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
