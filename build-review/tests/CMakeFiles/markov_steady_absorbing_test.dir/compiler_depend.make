# Empty compiler generated dependencies file for markov_steady_absorbing_test.
# This may be replaced when dependencies are built.
