# Empty dependencies file for core_approximation_test.
# This may be replaced when dependencies are built.
