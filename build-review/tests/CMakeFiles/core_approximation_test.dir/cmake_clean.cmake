file(REMOVE_RECURSE
  "CMakeFiles/core_approximation_test.dir/core_approximation_test.cc.o"
  "CMakeFiles/core_approximation_test.dir/core_approximation_test.cc.o.d"
  "core_approximation_test"
  "core_approximation_test.pdb"
  "core_approximation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_approximation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
