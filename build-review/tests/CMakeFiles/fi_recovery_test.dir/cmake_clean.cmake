file(REMOVE_RECURSE
  "CMakeFiles/fi_recovery_test.dir/fi_recovery_test.cc.o"
  "CMakeFiles/fi_recovery_test.dir/fi_recovery_test.cc.o.d"
  "fi_recovery_test"
  "fi_recovery_test.pdb"
  "fi_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fi_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
