# Empty compiler generated dependencies file for fi_recovery_test.
# This may be replaced when dependencies are built.
