file(REMOVE_RECURSE
  "CMakeFiles/san_compose_test.dir/san_compose_test.cc.o"
  "CMakeFiles/san_compose_test.dir/san_compose_test.cc.o.d"
  "san_compose_test"
  "san_compose_test.pdb"
  "san_compose_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_compose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
