# Empty compiler generated dependencies file for san_compose_test.
# This may be replaced when dependencies are built.
