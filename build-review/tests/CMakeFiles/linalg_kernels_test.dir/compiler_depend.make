# Empty compiler generated dependencies file for linalg_kernels_test.
# This may be replaced when dependencies are built.
