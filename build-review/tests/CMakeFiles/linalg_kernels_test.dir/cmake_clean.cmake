file(REMOVE_RECURSE
  "CMakeFiles/linalg_kernels_test.dir/linalg_kernels_test.cc.o"
  "CMakeFiles/linalg_kernels_test.dir/linalg_kernels_test.cc.o.d"
  "linalg_kernels_test"
  "linalg_kernels_test.pdb"
  "linalg_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
