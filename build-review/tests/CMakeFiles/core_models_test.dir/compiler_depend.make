# Empty compiler generated dependencies file for core_models_test.
# This may be replaced when dependencies are built.
