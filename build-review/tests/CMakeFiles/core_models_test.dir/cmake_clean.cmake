file(REMOVE_RECURSE
  "CMakeFiles/core_models_test.dir/core_models_test.cc.o"
  "CMakeFiles/core_models_test.dir/core_models_test.cc.o.d"
  "core_models_test"
  "core_models_test.pdb"
  "core_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
