file(REMOVE_RECURSE
  "CMakeFiles/markov_expm_workspace_test.dir/markov_expm_workspace_test.cc.o"
  "CMakeFiles/markov_expm_workspace_test.dir/markov_expm_workspace_test.cc.o.d"
  "markov_expm_workspace_test"
  "markov_expm_workspace_test.pdb"
  "markov_expm_workspace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_expm_workspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
