# Empty compiler generated dependencies file for markov_expm_workspace_test.
# This may be replaced when dependencies are built.
