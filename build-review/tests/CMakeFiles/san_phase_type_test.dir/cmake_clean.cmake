file(REMOVE_RECURSE
  "CMakeFiles/san_phase_type_test.dir/san_phase_type_test.cc.o"
  "CMakeFiles/san_phase_type_test.dir/san_phase_type_test.cc.o.d"
  "san_phase_type_test"
  "san_phase_type_test.pdb"
  "san_phase_type_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_phase_type_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
