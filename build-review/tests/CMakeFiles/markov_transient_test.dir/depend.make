# Empty dependencies file for markov_transient_test.
# This may be replaced when dependencies are built.
