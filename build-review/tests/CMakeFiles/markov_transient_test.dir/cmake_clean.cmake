file(REMOVE_RECURSE
  "CMakeFiles/markov_transient_test.dir/markov_transient_test.cc.o"
  "CMakeFiles/markov_transient_test.dir/markov_transient_test.cc.o.d"
  "markov_transient_test"
  "markov_transient_test.pdb"
  "markov_transient_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_transient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
