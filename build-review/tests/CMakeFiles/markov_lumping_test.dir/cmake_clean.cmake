file(REMOVE_RECURSE
  "CMakeFiles/markov_lumping_test.dir/markov_lumping_test.cc.o"
  "CMakeFiles/markov_lumping_test.dir/markov_lumping_test.cc.o.d"
  "markov_lumping_test"
  "markov_lumping_test.pdb"
  "markov_lumping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_lumping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
