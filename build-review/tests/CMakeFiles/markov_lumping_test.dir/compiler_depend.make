# Empty compiler generated dependencies file for markov_lumping_test.
# This may be replaced when dependencies are built.
