# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for markov_krylov_sensitivity_test.
