# Empty compiler generated dependencies file for markov_krylov_sensitivity_test.
# This may be replaced when dependencies are built.
