file(REMOVE_RECURSE
  "CMakeFiles/markov_krylov_sensitivity_test.dir/markov_krylov_sensitivity_test.cc.o"
  "CMakeFiles/markov_krylov_sensitivity_test.dir/markov_krylov_sensitivity_test.cc.o.d"
  "markov_krylov_sensitivity_test"
  "markov_krylov_sensitivity_test.pdb"
  "markov_krylov_sensitivity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_krylov_sensitivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
