file(REMOVE_RECURSE
  "CMakeFiles/linalg_sparse_test.dir/linalg_sparse_test.cc.o"
  "CMakeFiles/linalg_sparse_test.dir/linalg_sparse_test.cc.o.d"
  "linalg_sparse_test"
  "linalg_sparse_test.pdb"
  "linalg_sparse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_sparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
