# Empty dependencies file for markov_ctmc_sim_test.
# This may be replaced when dependencies are built.
