file(REMOVE_RECURSE
  "CMakeFiles/markov_ctmc_sim_test.dir/markov_ctmc_sim_test.cc.o"
  "CMakeFiles/markov_ctmc_sim_test.dir/markov_ctmc_sim_test.cc.o.d"
  "markov_ctmc_sim_test"
  "markov_ctmc_sim_test.pdb"
  "markov_ctmc_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_ctmc_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
