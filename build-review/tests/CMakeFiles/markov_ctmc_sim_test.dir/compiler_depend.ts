# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for markov_ctmc_sim_test.
