file(REMOVE_RECURSE
  "CMakeFiles/markov_solver_plan_test.dir/markov_solver_plan_test.cc.o"
  "CMakeFiles/markov_solver_plan_test.dir/markov_solver_plan_test.cc.o.d"
  "markov_solver_plan_test"
  "markov_solver_plan_test.pdb"
  "markov_solver_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_solver_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
