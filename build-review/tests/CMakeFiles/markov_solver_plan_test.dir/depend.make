# Empty dependencies file for markov_solver_plan_test.
# This may be replaced when dependencies are built.
