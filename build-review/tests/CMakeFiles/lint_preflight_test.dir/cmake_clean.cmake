file(REMOVE_RECURSE
  "CMakeFiles/lint_preflight_test.dir/lint_preflight_test.cc.o"
  "CMakeFiles/lint_preflight_test.dir/lint_preflight_test.cc.o.d"
  "lint_preflight_test"
  "lint_preflight_test.pdb"
  "lint_preflight_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lint_preflight_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
