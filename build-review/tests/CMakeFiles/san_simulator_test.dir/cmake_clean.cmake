file(REMOVE_RECURSE
  "CMakeFiles/san_simulator_test.dir/san_simulator_test.cc.o"
  "CMakeFiles/san_simulator_test.dir/san_simulator_test.cc.o.d"
  "san_simulator_test"
  "san_simulator_test.pdb"
  "san_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
