# Empty compiler generated dependencies file for san_simulator_test.
# This may be replaced when dependencies are built.
