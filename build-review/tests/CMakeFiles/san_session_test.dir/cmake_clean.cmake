file(REMOVE_RECURSE
  "CMakeFiles/san_session_test.dir/san_session_test.cc.o"
  "CMakeFiles/san_session_test.dir/san_session_test.cc.o.d"
  "san_session_test"
  "san_session_test.pdb"
  "san_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
