# Empty dependencies file for san_session_test.
# This may be replaced when dependencies are built.
