# Empty compiler generated dependencies file for san_large_sparse_test.
# This may be replaced when dependencies are built.
