file(REMOVE_RECURSE
  "CMakeFiles/san_large_sparse_test.dir/san_large_sparse_test.cc.o"
  "CMakeFiles/san_large_sparse_test.dir/san_large_sparse_test.cc.o.d"
  "san_large_sparse_test"
  "san_large_sparse_test.pdb"
  "san_large_sparse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_large_sparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
