# Empty dependencies file for san_random_differential_test.
# This may be replaced when dependencies are built.
