file(REMOVE_RECURSE
  "CMakeFiles/san_random_differential_test.dir/san_random_differential_test.cc.o"
  "CMakeFiles/san_random_differential_test.dir/san_random_differential_test.cc.o.d"
  "san_random_differential_test"
  "san_random_differential_test.pdb"
  "san_random_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_random_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
