# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for san_expr_ir_test.
