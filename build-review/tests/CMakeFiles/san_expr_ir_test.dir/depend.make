# Empty dependencies file for san_expr_ir_test.
# This may be replaced when dependencies are built.
