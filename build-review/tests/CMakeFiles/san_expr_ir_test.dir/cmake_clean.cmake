file(REMOVE_RECURSE
  "CMakeFiles/san_expr_ir_test.dir/san_expr_ir_test.cc.o"
  "CMakeFiles/san_expr_ir_test.dir/san_expr_ir_test.cc.o.d"
  "san_expr_ir_test"
  "san_expr_ir_test.pdb"
  "san_expr_ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_expr_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
