# Empty compiler generated dependencies file for core_mc_test.
# This may be replaced when dependencies are built.
