file(REMOVE_RECURSE
  "CMakeFiles/core_mc_test.dir/core_mc_test.cc.o"
  "CMakeFiles/core_mc_test.dir/core_mc_test.cc.o.d"
  "core_mc_test"
  "core_mc_test.pdb"
  "core_mc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
