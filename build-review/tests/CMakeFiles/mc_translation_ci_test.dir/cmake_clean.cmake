file(REMOVE_RECURSE
  "CMakeFiles/mc_translation_ci_test.dir/mc_translation_ci_test.cc.o"
  "CMakeFiles/mc_translation_ci_test.dir/mc_translation_ci_test.cc.o.d"
  "mc_translation_ci_test"
  "mc_translation_ci_test.pdb"
  "mc_translation_ci_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_translation_ci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
