# Empty compiler generated dependencies file for mc_translation_ci_test.
# This may be replaced when dependencies are built.
