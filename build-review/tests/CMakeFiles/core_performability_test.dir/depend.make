# Empty dependencies file for core_performability_test.
# This may be replaced when dependencies are built.
