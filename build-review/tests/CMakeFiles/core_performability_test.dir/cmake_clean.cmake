file(REMOVE_RECURSE
  "CMakeFiles/core_performability_test.dir/core_performability_test.cc.o"
  "CMakeFiles/core_performability_test.dir/core_performability_test.cc.o.d"
  "core_performability_test"
  "core_performability_test.pdb"
  "core_performability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_performability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
