# Empty compiler generated dependencies file for linalg_solve_test.
# This may be replaced when dependencies are built.
