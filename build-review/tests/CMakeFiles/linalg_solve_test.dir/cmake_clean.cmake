file(REMOVE_RECURSE
  "CMakeFiles/linalg_solve_test.dir/linalg_solve_test.cc.o"
  "CMakeFiles/linalg_solve_test.dir/linalg_solve_test.cc.o.d"
  "linalg_solve_test"
  "linalg_solve_test.pdb"
  "linalg_solve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_solve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
