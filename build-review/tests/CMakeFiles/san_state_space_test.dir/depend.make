# Empty dependencies file for san_state_space_test.
# This may be replaced when dependencies are built.
