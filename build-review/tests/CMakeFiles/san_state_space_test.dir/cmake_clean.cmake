file(REMOVE_RECURSE
  "CMakeFiles/san_state_space_test.dir/san_state_space_test.cc.o"
  "CMakeFiles/san_state_space_test.dir/san_state_space_test.cc.o.d"
  "san_state_space_test"
  "san_state_space_test.pdb"
  "san_state_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_state_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
