# Empty compiler generated dependencies file for lint_chain_test.
# This may be replaced when dependencies are built.
