file(REMOVE_RECURSE
  "CMakeFiles/lint_chain_test.dir/lint_chain_test.cc.o"
  "CMakeFiles/lint_chain_test.dir/lint_chain_test.cc.o.d"
  "lint_chain_test"
  "lint_chain_test.pdb"
  "lint_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lint_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
