file(REMOVE_RECURSE
  "CMakeFiles/markov_accumulated_test.dir/markov_accumulated_test.cc.o"
  "CMakeFiles/markov_accumulated_test.dir/markov_accumulated_test.cc.o.d"
  "markov_accumulated_test"
  "markov_accumulated_test.pdb"
  "markov_accumulated_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_accumulated_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
