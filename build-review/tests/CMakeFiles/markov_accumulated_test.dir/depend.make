# Empty dependencies file for markov_accumulated_test.
# This may be replaced when dependencies are built.
