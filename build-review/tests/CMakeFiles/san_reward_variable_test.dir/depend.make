# Empty dependencies file for san_reward_variable_test.
# This may be replaced when dependencies are built.
