file(REMOVE_RECURSE
  "CMakeFiles/san_reward_variable_test.dir/san_reward_variable_test.cc.o"
  "CMakeFiles/san_reward_variable_test.dir/san_reward_variable_test.cc.o.d"
  "san_reward_variable_test"
  "san_reward_variable_test.pdb"
  "san_reward_variable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_reward_variable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
