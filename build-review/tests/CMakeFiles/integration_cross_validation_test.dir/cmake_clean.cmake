file(REMOVE_RECURSE
  "CMakeFiles/integration_cross_validation_test.dir/integration_cross_validation_test.cc.o"
  "CMakeFiles/integration_cross_validation_test.dir/integration_cross_validation_test.cc.o.d"
  "integration_cross_validation_test"
  "integration_cross_validation_test.pdb"
  "integration_cross_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_cross_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
