# Empty compiler generated dependencies file for xsolver_validation_test.
# This may be replaced when dependencies are built.
