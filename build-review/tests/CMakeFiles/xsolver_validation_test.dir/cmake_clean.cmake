file(REMOVE_RECURSE
  "CMakeFiles/xsolver_validation_test.dir/xsolver_validation_test.cc.o"
  "CMakeFiles/xsolver_validation_test.dir/xsolver_validation_test.cc.o.d"
  "xsolver_validation_test"
  "xsolver_validation_test.pdb"
  "xsolver_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsolver_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
