file(REMOVE_RECURSE
  "CMakeFiles/core_model_variants_test.dir/core_model_variants_test.cc.o"
  "CMakeFiles/core_model_variants_test.dir/core_model_variants_test.cc.o.d"
  "core_model_variants_test"
  "core_model_variants_test.pdb"
  "core_model_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_model_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
