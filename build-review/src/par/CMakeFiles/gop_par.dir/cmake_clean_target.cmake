file(REMOVE_RECURSE
  "libgop_par.a"
)
