file(REMOVE_RECURSE
  "CMakeFiles/gop_par.dir/thread_pool.cc.o"
  "CMakeFiles/gop_par.dir/thread_pool.cc.o.d"
  "libgop_par.a"
  "libgop_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gop_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
