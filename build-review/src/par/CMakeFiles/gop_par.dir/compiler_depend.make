# Empty compiler generated dependencies file for gop_par.
# This may be replaced when dependencies are built.
