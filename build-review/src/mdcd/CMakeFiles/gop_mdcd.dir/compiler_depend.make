# Empty compiler generated dependencies file for gop_mdcd.
# This may be replaced when dependencies are built.
