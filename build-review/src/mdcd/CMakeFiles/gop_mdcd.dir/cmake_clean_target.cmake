file(REMOVE_RECURSE
  "libgop_mdcd.a"
)
