file(REMOVE_RECURSE
  "CMakeFiles/gop_mdcd.dir/protocol.cc.o"
  "CMakeFiles/gop_mdcd.dir/protocol.cc.o.d"
  "libgop_mdcd.a"
  "libgop_mdcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gop_mdcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
