file(REMOVE_RECURSE
  "libgop_util.a"
)
