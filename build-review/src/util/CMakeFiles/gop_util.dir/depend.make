# Empty dependencies file for gop_util.
# This may be replaced when dependencies are built.
