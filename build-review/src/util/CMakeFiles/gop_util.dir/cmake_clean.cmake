file(REMOVE_RECURSE
  "CMakeFiles/gop_util.dir/cli.cc.o"
  "CMakeFiles/gop_util.dir/cli.cc.o.d"
  "CMakeFiles/gop_util.dir/error.cc.o"
  "CMakeFiles/gop_util.dir/error.cc.o.d"
  "CMakeFiles/gop_util.dir/strings.cc.o"
  "CMakeFiles/gop_util.dir/strings.cc.o.d"
  "CMakeFiles/gop_util.dir/table.cc.o"
  "CMakeFiles/gop_util.dir/table.cc.o.d"
  "libgop_util.a"
  "libgop_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gop_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
