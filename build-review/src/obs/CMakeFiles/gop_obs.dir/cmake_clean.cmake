file(REMOVE_RECURSE
  "CMakeFiles/gop_obs.dir/registry.cc.o"
  "CMakeFiles/gop_obs.dir/registry.cc.o.d"
  "CMakeFiles/gop_obs.dir/sink.cc.o"
  "CMakeFiles/gop_obs.dir/sink.cc.o.d"
  "libgop_obs.a"
  "libgop_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gop_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
