file(REMOVE_RECURSE
  "libgop_obs.a"
)
