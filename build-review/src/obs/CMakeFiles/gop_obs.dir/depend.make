# Empty dependencies file for gop_obs.
# This may be replaced when dependencies are built.
