# Empty compiler generated dependencies file for gop_fi.
# This may be replaced when dependencies are built.
