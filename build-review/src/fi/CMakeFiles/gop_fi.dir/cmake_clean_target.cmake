file(REMOVE_RECURSE
  "libgop_fi.a"
)
