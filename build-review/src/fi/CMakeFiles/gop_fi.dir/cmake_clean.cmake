file(REMOVE_RECURSE
  "CMakeFiles/gop_fi.dir/plan.cc.o"
  "CMakeFiles/gop_fi.dir/plan.cc.o.d"
  "libgop_fi.a"
  "libgop_fi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gop_fi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
