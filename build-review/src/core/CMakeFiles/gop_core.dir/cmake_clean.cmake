file(REMOVE_RECURSE
  "CMakeFiles/gop_core.dir/approximation.cc.o"
  "CMakeFiles/gop_core.dir/approximation.cc.o.d"
  "CMakeFiles/gop_core.dir/fault_campaign.cc.o"
  "CMakeFiles/gop_core.dir/fault_campaign.cc.o.d"
  "CMakeFiles/gop_core.dir/gamma.cc.o"
  "CMakeFiles/gop_core.dir/gamma.cc.o.d"
  "CMakeFiles/gop_core.dir/mc_validator.cc.o"
  "CMakeFiles/gop_core.dir/mc_validator.cc.o.d"
  "CMakeFiles/gop_core.dir/params.cc.o"
  "CMakeFiles/gop_core.dir/params.cc.o.d"
  "CMakeFiles/gop_core.dir/performability.cc.o"
  "CMakeFiles/gop_core.dir/performability.cc.o.d"
  "CMakeFiles/gop_core.dir/rm_gd.cc.o"
  "CMakeFiles/gop_core.dir/rm_gd.cc.o.d"
  "CMakeFiles/gop_core.dir/rm_gp.cc.o"
  "CMakeFiles/gop_core.dir/rm_gp.cc.o.d"
  "CMakeFiles/gop_core.dir/rm_nd.cc.o"
  "CMakeFiles/gop_core.dir/rm_nd.cc.o.d"
  "CMakeFiles/gop_core.dir/sensitivity.cc.o"
  "CMakeFiles/gop_core.dir/sensitivity.cc.o.d"
  "CMakeFiles/gop_core.dir/sweep.cc.o"
  "CMakeFiles/gop_core.dir/sweep.cc.o.d"
  "libgop_core.a"
  "libgop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
