
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/approximation.cc" "src/core/CMakeFiles/gop_core.dir/approximation.cc.o" "gcc" "src/core/CMakeFiles/gop_core.dir/approximation.cc.o.d"
  "/root/repo/src/core/fault_campaign.cc" "src/core/CMakeFiles/gop_core.dir/fault_campaign.cc.o" "gcc" "src/core/CMakeFiles/gop_core.dir/fault_campaign.cc.o.d"
  "/root/repo/src/core/gamma.cc" "src/core/CMakeFiles/gop_core.dir/gamma.cc.o" "gcc" "src/core/CMakeFiles/gop_core.dir/gamma.cc.o.d"
  "/root/repo/src/core/mc_validator.cc" "src/core/CMakeFiles/gop_core.dir/mc_validator.cc.o" "gcc" "src/core/CMakeFiles/gop_core.dir/mc_validator.cc.o.d"
  "/root/repo/src/core/params.cc" "src/core/CMakeFiles/gop_core.dir/params.cc.o" "gcc" "src/core/CMakeFiles/gop_core.dir/params.cc.o.d"
  "/root/repo/src/core/performability.cc" "src/core/CMakeFiles/gop_core.dir/performability.cc.o" "gcc" "src/core/CMakeFiles/gop_core.dir/performability.cc.o.d"
  "/root/repo/src/core/rm_gd.cc" "src/core/CMakeFiles/gop_core.dir/rm_gd.cc.o" "gcc" "src/core/CMakeFiles/gop_core.dir/rm_gd.cc.o.d"
  "/root/repo/src/core/rm_gp.cc" "src/core/CMakeFiles/gop_core.dir/rm_gp.cc.o" "gcc" "src/core/CMakeFiles/gop_core.dir/rm_gp.cc.o.d"
  "/root/repo/src/core/rm_nd.cc" "src/core/CMakeFiles/gop_core.dir/rm_nd.cc.o" "gcc" "src/core/CMakeFiles/gop_core.dir/rm_nd.cc.o.d"
  "/root/repo/src/core/sensitivity.cc" "src/core/CMakeFiles/gop_core.dir/sensitivity.cc.o" "gcc" "src/core/CMakeFiles/gop_core.dir/sensitivity.cc.o.d"
  "/root/repo/src/core/sweep.cc" "src/core/CMakeFiles/gop_core.dir/sweep.cc.o" "gcc" "src/core/CMakeFiles/gop_core.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/lint/CMakeFiles/gop_lint.dir/DependInfo.cmake"
  "/root/repo/build-review/src/san/CMakeFiles/gop_san.dir/DependInfo.cmake"
  "/root/repo/build-review/src/markov/CMakeFiles/gop_markov.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/gop_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/gop_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/par/CMakeFiles/gop_par.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fi/CMakeFiles/gop_fi.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/gop_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/gop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
