# Empty compiler generated dependencies file for gop_core.
# This may be replaced when dependencies are built.
