file(REMOVE_RECURSE
  "libgop_core.a"
)
