file(REMOVE_RECURSE
  "libgop_markov.a"
)
