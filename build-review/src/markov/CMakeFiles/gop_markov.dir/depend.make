# Empty dependencies file for gop_markov.
# This may be replaced when dependencies are built.
