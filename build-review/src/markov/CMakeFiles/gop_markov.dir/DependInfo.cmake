
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/absorbing.cc" "src/markov/CMakeFiles/gop_markov.dir/absorbing.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/absorbing.cc.o.d"
  "/root/repo/src/markov/accumulated.cc" "src/markov/CMakeFiles/gop_markov.dir/accumulated.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/accumulated.cc.o.d"
  "/root/repo/src/markov/ctmc.cc" "src/markov/CMakeFiles/gop_markov.dir/ctmc.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/ctmc.cc.o.d"
  "/root/repo/src/markov/ctmc_sim.cc" "src/markov/CMakeFiles/gop_markov.dir/ctmc_sim.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/ctmc_sim.cc.o.d"
  "/root/repo/src/markov/dtmc.cc" "src/markov/CMakeFiles/gop_markov.dir/dtmc.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/dtmc.cc.o.d"
  "/root/repo/src/markov/first_passage.cc" "src/markov/CMakeFiles/gop_markov.dir/first_passage.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/first_passage.cc.o.d"
  "/root/repo/src/markov/fox_glynn.cc" "src/markov/CMakeFiles/gop_markov.dir/fox_glynn.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/fox_glynn.cc.o.d"
  "/root/repo/src/markov/importance.cc" "src/markov/CMakeFiles/gop_markov.dir/importance.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/importance.cc.o.d"
  "/root/repo/src/markov/krylov.cc" "src/markov/CMakeFiles/gop_markov.dir/krylov.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/krylov.cc.o.d"
  "/root/repo/src/markov/lumping.cc" "src/markov/CMakeFiles/gop_markov.dir/lumping.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/lumping.cc.o.d"
  "/root/repo/src/markov/matrix_exp.cc" "src/markov/CMakeFiles/gop_markov.dir/matrix_exp.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/matrix_exp.cc.o.d"
  "/root/repo/src/markov/recovery.cc" "src/markov/CMakeFiles/gop_markov.dir/recovery.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/recovery.cc.o.d"
  "/root/repo/src/markov/sensitivity.cc" "src/markov/CMakeFiles/gop_markov.dir/sensitivity.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/sensitivity.cc.o.d"
  "/root/repo/src/markov/session.cc" "src/markov/CMakeFiles/gop_markov.dir/session.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/session.cc.o.d"
  "/root/repo/src/markov/solver_plan.cc" "src/markov/CMakeFiles/gop_markov.dir/solver_plan.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/solver_plan.cc.o.d"
  "/root/repo/src/markov/solver_stats.cc" "src/markov/CMakeFiles/gop_markov.dir/solver_stats.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/solver_stats.cc.o.d"
  "/root/repo/src/markov/steady_state.cc" "src/markov/CMakeFiles/gop_markov.dir/steady_state.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/steady_state.cc.o.d"
  "/root/repo/src/markov/transient.cc" "src/markov/CMakeFiles/gop_markov.dir/transient.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/transient.cc.o.d"
  "/root/repo/src/markov/uniformization.cc" "src/markov/CMakeFiles/gop_markov.dir/uniformization.cc.o" "gcc" "src/markov/CMakeFiles/gop_markov.dir/uniformization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/linalg/CMakeFiles/gop_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fi/CMakeFiles/gop_fi.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/gop_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/gop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
