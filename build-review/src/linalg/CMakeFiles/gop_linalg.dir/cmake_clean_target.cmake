file(REMOVE_RECURSE
  "libgop_linalg.a"
)
