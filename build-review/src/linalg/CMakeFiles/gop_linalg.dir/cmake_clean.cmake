file(REMOVE_RECURSE
  "CMakeFiles/gop_linalg.dir/csr_matrix.cc.o"
  "CMakeFiles/gop_linalg.dir/csr_matrix.cc.o.d"
  "CMakeFiles/gop_linalg.dir/dense_matrix.cc.o"
  "CMakeFiles/gop_linalg.dir/dense_matrix.cc.o.d"
  "CMakeFiles/gop_linalg.dir/gth.cc.o"
  "CMakeFiles/gop_linalg.dir/gth.cc.o.d"
  "CMakeFiles/gop_linalg.dir/lu.cc.o"
  "CMakeFiles/gop_linalg.dir/lu.cc.o.d"
  "CMakeFiles/gop_linalg.dir/vector_ops.cc.o"
  "CMakeFiles/gop_linalg.dir/vector_ops.cc.o.d"
  "libgop_linalg.a"
  "libgop_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gop_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
