# Empty compiler generated dependencies file for gop_linalg.
# This may be replaced when dependencies are built.
