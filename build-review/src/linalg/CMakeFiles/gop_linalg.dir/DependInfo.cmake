
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/csr_matrix.cc" "src/linalg/CMakeFiles/gop_linalg.dir/csr_matrix.cc.o" "gcc" "src/linalg/CMakeFiles/gop_linalg.dir/csr_matrix.cc.o.d"
  "/root/repo/src/linalg/dense_matrix.cc" "src/linalg/CMakeFiles/gop_linalg.dir/dense_matrix.cc.o" "gcc" "src/linalg/CMakeFiles/gop_linalg.dir/dense_matrix.cc.o.d"
  "/root/repo/src/linalg/gth.cc" "src/linalg/CMakeFiles/gop_linalg.dir/gth.cc.o" "gcc" "src/linalg/CMakeFiles/gop_linalg.dir/gth.cc.o.d"
  "/root/repo/src/linalg/lu.cc" "src/linalg/CMakeFiles/gop_linalg.dir/lu.cc.o" "gcc" "src/linalg/CMakeFiles/gop_linalg.dir/lu.cc.o.d"
  "/root/repo/src/linalg/vector_ops.cc" "src/linalg/CMakeFiles/gop_linalg.dir/vector_ops.cc.o" "gcc" "src/linalg/CMakeFiles/gop_linalg.dir/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/fi/CMakeFiles/gop_fi.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/gop_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/gop_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
