# Empty dependencies file for gop_sim.
# This may be replaced when dependencies are built.
