file(REMOVE_RECURSE
  "CMakeFiles/gop_sim.dir/replication.cc.o"
  "CMakeFiles/gop_sim.dir/replication.cc.o.d"
  "CMakeFiles/gop_sim.dir/rng.cc.o"
  "CMakeFiles/gop_sim.dir/rng.cc.o.d"
  "CMakeFiles/gop_sim.dir/stats.cc.o"
  "CMakeFiles/gop_sim.dir/stats.cc.o.d"
  "libgop_sim.a"
  "libgop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
