
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/replication.cc" "src/sim/CMakeFiles/gop_sim.dir/replication.cc.o" "gcc" "src/sim/CMakeFiles/gop_sim.dir/replication.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/sim/CMakeFiles/gop_sim.dir/rng.cc.o" "gcc" "src/sim/CMakeFiles/gop_sim.dir/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/sim/CMakeFiles/gop_sim.dir/stats.cc.o" "gcc" "src/sim/CMakeFiles/gop_sim.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/par/CMakeFiles/gop_par.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/gop_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/gop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
