file(REMOVE_RECURSE
  "libgop_sim.a"
)
