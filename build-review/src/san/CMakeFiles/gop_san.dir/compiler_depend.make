# Empty compiler generated dependencies file for gop_san.
# This may be replaced when dependencies are built.
