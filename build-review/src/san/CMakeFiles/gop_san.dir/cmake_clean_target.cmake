file(REMOVE_RECURSE
  "libgop_san.a"
)
