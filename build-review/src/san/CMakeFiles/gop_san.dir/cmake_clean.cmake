file(REMOVE_RECURSE
  "CMakeFiles/gop_san.dir/batch_means.cc.o"
  "CMakeFiles/gop_san.dir/batch_means.cc.o.d"
  "CMakeFiles/gop_san.dir/compose.cc.o"
  "CMakeFiles/gop_san.dir/compose.cc.o.d"
  "CMakeFiles/gop_san.dir/dot_export.cc.o"
  "CMakeFiles/gop_san.dir/dot_export.cc.o.d"
  "CMakeFiles/gop_san.dir/expr.cc.o"
  "CMakeFiles/gop_san.dir/expr.cc.o.d"
  "CMakeFiles/gop_san.dir/expr_ir.cc.o"
  "CMakeFiles/gop_san.dir/expr_ir.cc.o.d"
  "CMakeFiles/gop_san.dir/lint.cc.o"
  "CMakeFiles/gop_san.dir/lint.cc.o.d"
  "CMakeFiles/gop_san.dir/marking.cc.o"
  "CMakeFiles/gop_san.dir/marking.cc.o.d"
  "CMakeFiles/gop_san.dir/model.cc.o"
  "CMakeFiles/gop_san.dir/model.cc.o.d"
  "CMakeFiles/gop_san.dir/phase_type.cc.o"
  "CMakeFiles/gop_san.dir/phase_type.cc.o.d"
  "CMakeFiles/gop_san.dir/random_model.cc.o"
  "CMakeFiles/gop_san.dir/random_model.cc.o.d"
  "CMakeFiles/gop_san.dir/reward.cc.o"
  "CMakeFiles/gop_san.dir/reward.cc.o.d"
  "CMakeFiles/gop_san.dir/reward_variable.cc.o"
  "CMakeFiles/gop_san.dir/reward_variable.cc.o.d"
  "CMakeFiles/gop_san.dir/session.cc.o"
  "CMakeFiles/gop_san.dir/session.cc.o.d"
  "CMakeFiles/gop_san.dir/simulator.cc.o"
  "CMakeFiles/gop_san.dir/simulator.cc.o.d"
  "CMakeFiles/gop_san.dir/state_space.cc.o"
  "CMakeFiles/gop_san.dir/state_space.cc.o.d"
  "libgop_san.a"
  "libgop_san.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gop_san.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
