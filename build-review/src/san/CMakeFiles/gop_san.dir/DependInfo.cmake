
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/san/batch_means.cc" "src/san/CMakeFiles/gop_san.dir/batch_means.cc.o" "gcc" "src/san/CMakeFiles/gop_san.dir/batch_means.cc.o.d"
  "/root/repo/src/san/compose.cc" "src/san/CMakeFiles/gop_san.dir/compose.cc.o" "gcc" "src/san/CMakeFiles/gop_san.dir/compose.cc.o.d"
  "/root/repo/src/san/dot_export.cc" "src/san/CMakeFiles/gop_san.dir/dot_export.cc.o" "gcc" "src/san/CMakeFiles/gop_san.dir/dot_export.cc.o.d"
  "/root/repo/src/san/expr.cc" "src/san/CMakeFiles/gop_san.dir/expr.cc.o" "gcc" "src/san/CMakeFiles/gop_san.dir/expr.cc.o.d"
  "/root/repo/src/san/expr_ir.cc" "src/san/CMakeFiles/gop_san.dir/expr_ir.cc.o" "gcc" "src/san/CMakeFiles/gop_san.dir/expr_ir.cc.o.d"
  "/root/repo/src/san/lint.cc" "src/san/CMakeFiles/gop_san.dir/lint.cc.o" "gcc" "src/san/CMakeFiles/gop_san.dir/lint.cc.o.d"
  "/root/repo/src/san/marking.cc" "src/san/CMakeFiles/gop_san.dir/marking.cc.o" "gcc" "src/san/CMakeFiles/gop_san.dir/marking.cc.o.d"
  "/root/repo/src/san/model.cc" "src/san/CMakeFiles/gop_san.dir/model.cc.o" "gcc" "src/san/CMakeFiles/gop_san.dir/model.cc.o.d"
  "/root/repo/src/san/phase_type.cc" "src/san/CMakeFiles/gop_san.dir/phase_type.cc.o" "gcc" "src/san/CMakeFiles/gop_san.dir/phase_type.cc.o.d"
  "/root/repo/src/san/random_model.cc" "src/san/CMakeFiles/gop_san.dir/random_model.cc.o" "gcc" "src/san/CMakeFiles/gop_san.dir/random_model.cc.o.d"
  "/root/repo/src/san/reward.cc" "src/san/CMakeFiles/gop_san.dir/reward.cc.o" "gcc" "src/san/CMakeFiles/gop_san.dir/reward.cc.o.d"
  "/root/repo/src/san/reward_variable.cc" "src/san/CMakeFiles/gop_san.dir/reward_variable.cc.o" "gcc" "src/san/CMakeFiles/gop_san.dir/reward_variable.cc.o.d"
  "/root/repo/src/san/session.cc" "src/san/CMakeFiles/gop_san.dir/session.cc.o" "gcc" "src/san/CMakeFiles/gop_san.dir/session.cc.o.d"
  "/root/repo/src/san/simulator.cc" "src/san/CMakeFiles/gop_san.dir/simulator.cc.o" "gcc" "src/san/CMakeFiles/gop_san.dir/simulator.cc.o.d"
  "/root/repo/src/san/state_space.cc" "src/san/CMakeFiles/gop_san.dir/state_space.cc.o" "gcc" "src/san/CMakeFiles/gop_san.dir/state_space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/markov/CMakeFiles/gop_markov.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/gop_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/gop_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fi/CMakeFiles/gop_fi.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/gop_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/gop_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/par/CMakeFiles/gop_par.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
