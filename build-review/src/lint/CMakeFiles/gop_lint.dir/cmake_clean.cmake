file(REMOVE_RECURSE
  "CMakeFiles/gop_lint.dir/chain_lint.cc.o"
  "CMakeFiles/gop_lint.dir/chain_lint.cc.o.d"
  "CMakeFiles/gop_lint.dir/finding.cc.o"
  "CMakeFiles/gop_lint.dir/finding.cc.o.d"
  "CMakeFiles/gop_lint.dir/model_lint.cc.o"
  "CMakeFiles/gop_lint.dir/model_lint.cc.o.d"
  "CMakeFiles/gop_lint.dir/preflight.cc.o"
  "CMakeFiles/gop_lint.dir/preflight.cc.o.d"
  "CMakeFiles/gop_lint.dir/prove.cc.o"
  "CMakeFiles/gop_lint.dir/prove.cc.o.d"
  "libgop_lint.a"
  "libgop_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gop_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
