# Empty dependencies file for gop_lint.
# This may be replaced when dependencies are built.
