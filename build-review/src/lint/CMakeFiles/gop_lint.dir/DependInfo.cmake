
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lint/chain_lint.cc" "src/lint/CMakeFiles/gop_lint.dir/chain_lint.cc.o" "gcc" "src/lint/CMakeFiles/gop_lint.dir/chain_lint.cc.o.d"
  "/root/repo/src/lint/finding.cc" "src/lint/CMakeFiles/gop_lint.dir/finding.cc.o" "gcc" "src/lint/CMakeFiles/gop_lint.dir/finding.cc.o.d"
  "/root/repo/src/lint/model_lint.cc" "src/lint/CMakeFiles/gop_lint.dir/model_lint.cc.o" "gcc" "src/lint/CMakeFiles/gop_lint.dir/model_lint.cc.o.d"
  "/root/repo/src/lint/preflight.cc" "src/lint/CMakeFiles/gop_lint.dir/preflight.cc.o" "gcc" "src/lint/CMakeFiles/gop_lint.dir/preflight.cc.o.d"
  "/root/repo/src/lint/prove.cc" "src/lint/CMakeFiles/gop_lint.dir/prove.cc.o" "gcc" "src/lint/CMakeFiles/gop_lint.dir/prove.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/san/CMakeFiles/gop_san.dir/DependInfo.cmake"
  "/root/repo/build-review/src/markov/CMakeFiles/gop_markov.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/gop_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/gop_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/gop_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/par/CMakeFiles/gop_par.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fi/CMakeFiles/gop_fi.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/gop_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
