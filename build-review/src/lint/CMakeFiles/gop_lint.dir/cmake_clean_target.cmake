file(REMOVE_RECURSE
  "libgop_lint.a"
)
