file(REMOVE_RECURSE
  "CMakeFiles/gop_fi_cli.dir/gop_fi.cc.o"
  "CMakeFiles/gop_fi_cli.dir/gop_fi.cc.o.d"
  "gop_fi"
  "gop_fi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gop_fi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
