# Empty compiler generated dependencies file for gop_fi_cli.
# This may be replaced when dependencies are built.
