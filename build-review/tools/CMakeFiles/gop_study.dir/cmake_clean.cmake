file(REMOVE_RECURSE
  "CMakeFiles/gop_study.dir/gop_study.cc.o"
  "CMakeFiles/gop_study.dir/gop_study.cc.o.d"
  "gop_study"
  "gop_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gop_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
