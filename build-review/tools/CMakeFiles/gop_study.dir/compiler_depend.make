# Empty compiler generated dependencies file for gop_study.
# This may be replaced when dependencies are built.
