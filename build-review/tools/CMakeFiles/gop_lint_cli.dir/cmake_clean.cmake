file(REMOVE_RECURSE
  "CMakeFiles/gop_lint_cli.dir/gop_lint.cc.o"
  "CMakeFiles/gop_lint_cli.dir/gop_lint.cc.o.d"
  "gop_lint"
  "gop_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gop_lint_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
