# Empty dependencies file for gop_lint_cli.
# This may be replaced when dependencies are built.
