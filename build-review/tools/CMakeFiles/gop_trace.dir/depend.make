# Empty dependencies file for gop_trace.
# This may be replaced when dependencies are built.
