file(REMOVE_RECURSE
  "CMakeFiles/gop_trace.dir/gop_trace.cc.o"
  "CMakeFiles/gop_trace.dir/gop_trace.cc.o.d"
  "gop_trace"
  "gop_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gop_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
