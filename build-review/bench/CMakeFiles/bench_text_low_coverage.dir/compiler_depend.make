# Empty compiler generated dependencies file for bench_text_low_coverage.
# This may be replaced when dependencies are built.
