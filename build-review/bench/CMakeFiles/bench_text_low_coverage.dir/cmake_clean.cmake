file(REMOVE_RECURSE
  "CMakeFiles/bench_text_low_coverage.dir/bench_text_low_coverage.cc.o"
  "CMakeFiles/bench_text_low_coverage.dir/bench_text_low_coverage.cc.o.d"
  "bench_text_low_coverage"
  "bench_text_low_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_text_low_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
