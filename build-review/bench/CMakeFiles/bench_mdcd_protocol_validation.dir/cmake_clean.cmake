file(REMOVE_RECURSE
  "CMakeFiles/bench_mdcd_protocol_validation.dir/bench_mdcd_protocol_validation.cc.o"
  "CMakeFiles/bench_mdcd_protocol_validation.dir/bench_mdcd_protocol_validation.cc.o.d"
  "bench_mdcd_protocol_validation"
  "bench_mdcd_protocol_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mdcd_protocol_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
