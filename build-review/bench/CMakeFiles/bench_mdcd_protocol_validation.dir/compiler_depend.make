# Empty compiler generated dependencies file for bench_mdcd_protocol_validation.
# This may be replaced when dependencies are built.
