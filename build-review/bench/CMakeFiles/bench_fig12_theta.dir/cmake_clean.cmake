file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_theta.dir/bench_fig12_theta.cc.o"
  "CMakeFiles/bench_fig12_theta.dir/bench_fig12_theta.cc.o.d"
  "bench_fig12_theta"
  "bench_fig12_theta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
