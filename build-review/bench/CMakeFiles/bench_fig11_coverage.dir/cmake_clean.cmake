file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_coverage.dir/bench_fig11_coverage.cc.o"
  "CMakeFiles/bench_fig11_coverage.dir/bench_fig11_coverage.cc.o.d"
  "bench_fig11_coverage"
  "bench_fig11_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
