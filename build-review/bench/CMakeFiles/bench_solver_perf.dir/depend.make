# Empty dependencies file for bench_solver_perf.
# This may be replaced when dependencies are built.
