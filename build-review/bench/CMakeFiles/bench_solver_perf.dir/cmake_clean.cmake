file(REMOVE_RECURSE
  "CMakeFiles/bench_solver_perf.dir/bench_solver_perf.cc.o"
  "CMakeFiles/bench_solver_perf.dir/bench_solver_perf.cc.o.d"
  "bench_solver_perf"
  "bench_solver_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solver_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
