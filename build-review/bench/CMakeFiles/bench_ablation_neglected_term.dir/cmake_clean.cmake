file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_neglected_term.dir/bench_ablation_neglected_term.cc.o"
  "CMakeFiles/bench_ablation_neglected_term.dir/bench_ablation_neglected_term.cc.o.d"
  "bench_ablation_neglected_term"
  "bench_ablation_neglected_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_neglected_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
