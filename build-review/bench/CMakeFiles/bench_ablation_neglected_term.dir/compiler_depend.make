# Empty compiler generated dependencies file for bench_ablation_neglected_term.
# This may be replaced when dependencies are built.
