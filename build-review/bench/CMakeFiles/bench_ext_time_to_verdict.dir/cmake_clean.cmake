file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_time_to_verdict.dir/bench_ext_time_to_verdict.cc.o"
  "CMakeFiles/bench_ext_time_to_verdict.dir/bench_ext_time_to_verdict.cc.o.d"
  "bench_ext_time_to_verdict"
  "bench_ext_time_to_verdict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_time_to_verdict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
