# Empty compiler generated dependencies file for bench_ext_time_to_verdict.
# This may be replaced when dependencies are built.
