file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_translation_vs_mc.dir/bench_ablation_translation_vs_mc.cc.o"
  "CMakeFiles/bench_ablation_translation_vs_mc.dir/bench_ablation_translation_vs_mc.cc.o.d"
  "bench_ablation_translation_vs_mc"
  "bench_ablation_translation_vs_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_translation_vs_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
