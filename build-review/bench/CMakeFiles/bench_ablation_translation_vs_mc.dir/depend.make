# Empty dependencies file for bench_ablation_translation_vs_mc.
# This may be replaced when dependencies are built.
