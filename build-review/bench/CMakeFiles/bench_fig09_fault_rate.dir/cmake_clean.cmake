file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_fault_rate.dir/bench_fig09_fault_rate.cc.o"
  "CMakeFiles/bench_fig09_fault_rate.dir/bench_fig09_fault_rate.cc.o.d"
  "bench_fig09_fault_rate"
  "bench_fig09_fault_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_fault_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
