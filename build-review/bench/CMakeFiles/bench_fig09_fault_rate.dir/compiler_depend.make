# Empty compiler generated dependencies file for bench_fig09_fault_rate.
# This may be replaced when dependencies are built.
