file(REMOVE_RECURSE
  "CMakeFiles/bench_rmnd_constituents.dir/bench_rmnd_constituents.cc.o"
  "CMakeFiles/bench_rmnd_constituents.dir/bench_rmnd_constituents.cc.o.d"
  "bench_rmnd_constituents"
  "bench_rmnd_constituents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rmnd_constituents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
