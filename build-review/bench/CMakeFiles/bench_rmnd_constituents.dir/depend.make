# Empty dependencies file for bench_rmnd_constituents.
# This may be replaced when dependencies are built.
