file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_instant_at.dir/bench_ablation_instant_at.cc.o"
  "CMakeFiles/bench_ablation_instant_at.dir/bench_ablation_instant_at.cc.o.d"
  "bench_ablation_instant_at"
  "bench_ablation_instant_at.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_instant_at.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
