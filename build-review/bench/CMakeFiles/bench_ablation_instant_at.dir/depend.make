# Empty dependencies file for bench_ablation_instant_at.
# This may be replaced when dependencies are built.
