# Empty dependencies file for gop_bench_support.
# This may be replaced when dependencies are built.
