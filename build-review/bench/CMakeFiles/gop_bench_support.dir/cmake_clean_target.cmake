file(REMOVE_RECURSE
  "libgop_bench_support.a"
)
