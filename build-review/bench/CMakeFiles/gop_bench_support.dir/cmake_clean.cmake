file(REMOVE_RECURSE
  "CMakeFiles/gop_bench_support.dir/bench_support.cc.o"
  "CMakeFiles/gop_bench_support.dir/bench_support.cc.o.d"
  "libgop_bench_support.a"
  "libgop_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gop_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
