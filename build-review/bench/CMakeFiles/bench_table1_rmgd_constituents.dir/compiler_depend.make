# Empty compiler generated dependencies file for bench_table1_rmgd_constituents.
# This may be replaced when dependencies are built.
