file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_rmgd_constituents.dir/bench_table1_rmgd_constituents.cc.o"
  "CMakeFiles/bench_table1_rmgd_constituents.dir/bench_table1_rmgd_constituents.cc.o.d"
  "bench_table1_rmgd_constituents"
  "bench_table1_rmgd_constituents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rmgd_constituents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
