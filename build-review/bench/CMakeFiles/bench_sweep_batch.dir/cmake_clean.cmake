file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_batch.dir/bench_sweep_batch.cc.o"
  "CMakeFiles/bench_sweep_batch.dir/bench_sweep_batch.cc.o.d"
  "bench_sweep_batch"
  "bench_sweep_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
