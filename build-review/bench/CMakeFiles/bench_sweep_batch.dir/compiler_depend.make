# Empty compiler generated dependencies file for bench_sweep_batch.
# This may be replaced when dependencies are built.
