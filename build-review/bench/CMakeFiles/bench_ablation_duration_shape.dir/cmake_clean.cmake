file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_duration_shape.dir/bench_ablation_duration_shape.cc.o"
  "CMakeFiles/bench_ablation_duration_shape.dir/bench_ablation_duration_shape.cc.o.d"
  "bench_ablation_duration_shape"
  "bench_ablation_duration_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_duration_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
