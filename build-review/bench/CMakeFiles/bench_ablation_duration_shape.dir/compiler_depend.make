# Empty compiler generated dependencies file for bench_ablation_duration_shape.
# This may be replaced when dependencies are built.
