# Empty compiler generated dependencies file for bench_ext_response_surface.
# This may be replaced when dependencies are built.
