file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_response_surface.dir/bench_ext_response_surface.cc.o"
  "CMakeFiles/bench_ext_response_surface.dir/bench_ext_response_surface.cc.o.d"
  "bench_ext_response_surface"
  "bench_ext_response_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_response_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
