file(REMOVE_RECURSE
  "CMakeFiles/mission_schedule.dir/mission_schedule.cpp.o"
  "CMakeFiles/mission_schedule.dir/mission_schedule.cpp.o.d"
  "mission_schedule"
  "mission_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mission_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
