# Empty compiler generated dependencies file for mission_schedule.
# This may be replaced when dependencies are built.
