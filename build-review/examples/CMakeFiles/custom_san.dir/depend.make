# Empty dependencies file for custom_san.
# This may be replaced when dependencies are built.
