file(REMOVE_RECURSE
  "CMakeFiles/custom_san.dir/custom_san.cpp.o"
  "CMakeFiles/custom_san.dir/custom_san.cpp.o.d"
  "custom_san"
  "custom_san.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_san.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
