# Empty compiler generated dependencies file for validation_study.
# This may be replaced when dependencies are built.
