file(REMOVE_RECURSE
  "CMakeFiles/validation_study.dir/validation_study.cpp.o"
  "CMakeFiles/validation_study.dir/validation_study.cpp.o.d"
  "validation_study"
  "validation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
