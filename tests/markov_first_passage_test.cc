// Tests for first-passage analysis and the DTMC utilities.

#include <gtest/gtest.h>

#include <cmath>

#include "markov/dtmc.hh"
#include "markov/first_passage.hh"
#include "util/error.hh"

namespace gop::markov {
namespace {

Ctmc two_state(double a, double b) {
  return Ctmc(2, {{0, 1, a, 0}, {1, 0, b, 1}}, {1.0, 0.0});
}

// --- first passage ----------------------------------------------------------------

TEST(FirstPassage, ExponentialHitFromTwoStateChain) {
  // First passage 0 -> 1 in the recurrent two-state chain is Exp(a).
  const double a = 1.5;
  const Ctmc chain = two_state(a, 99.0);
  const std::vector<bool> target{false, true};
  for (double t : {0.1, 0.5, 2.0}) {
    EXPECT_NEAR(first_passage_cdf(chain, target, t), 1.0 - std::exp(-a * t), 1e-10);
  }
}

TEST(FirstPassage, SummaryMeanMatchesExponential) {
  const double a = 0.25;
  const Ctmc chain = two_state(a, 5.0);
  const std::vector<bool> target{false, true};
  const FirstPassageSummary summary = first_passage_summary(chain, target);
  EXPECT_NEAR(summary.hit_probability, 1.0, 1e-12);
  EXPECT_NEAR(summary.mean_time_to_absorption, 1.0 / a, 1e-12);
}

TEST(FirstPassage, CompetingAbsorberLimitsHitProbability) {
  // 0 -> 1 (target) at a, 0 -> 2 (absorbing trap) at b.
  const double a = 1.0, b = 3.0;
  const Ctmc chain(3, {{0, 1, a, 0}, {0, 2, b, 1}}, {1.0, 0.0, 0.0});
  const FirstPassageSummary summary = first_passage_summary(chain, {false, true, false});
  EXPECT_NEAR(summary.hit_probability, a / (a + b), 1e-12);
  // CDF saturates at the hit probability.
  EXPECT_NEAR(first_passage_cdf(chain, {false, true, false}, 1000.0), a / (a + b), 1e-9);
}

TEST(FirstPassage, InitialMassInTargetHitsAtZero) {
  const Ctmc chain = two_state(1.0, 1.0).with_initial({0.25, 0.75});
  EXPECT_NEAR(first_passage_cdf(chain, {false, true}, 0.0), 0.75, 1e-12);
}

TEST(FirstPassage, QuantileInvertsCdf) {
  const double a = 2.0;
  const Ctmc chain = two_state(a, 7.0);
  const std::vector<bool> target{false, true};
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    const double t = first_passage_quantile(chain, target, p, 1e-8);
    EXPECT_NEAR(t, -std::log(1.0 - p) / a, 1e-5 * (1.0 + t)) << "p=" << p;
  }
}

TEST(FirstPassage, QuantileAboveHitProbabilityThrows) {
  const Ctmc chain(3, {{0, 1, 1.0, 0}, {0, 2, 3.0, 1}}, {1.0, 0.0, 0.0});
  // Hit probability is 0.25; asking for the 0.9 quantile cannot succeed.
  EXPECT_THROW(first_passage_quantile(chain, {false, true, false}, 0.9), InvalidArgument);
}

TEST(FirstPassage, SummaryRejectsNonAbsorbingRemainder) {
  // Once state 2 is the target, states 0 <-> 1 keep cycling without
  // reaching it: no absorption, mean would be infinite.
  const Ctmc chain(3, {{0, 1, 1.0, 0}, {1, 0, 1.0, 1}}, {1.0, 0.0, 0.0});
  EXPECT_THROW(first_passage_summary(chain, {false, false, true}), ModelError);
}

TEST(FirstPassage, MaskHelpersAndValidation) {
  const Ctmc chain = two_state(1.0, 1.0);
  const std::vector<bool> mask = target_mask(2, {1});
  EXPECT_FALSE(mask[0]);
  EXPECT_TRUE(mask[1]);
  EXPECT_THROW(target_mask(2, {5}), InvalidArgument);
  EXPECT_THROW(first_passage_cdf(chain, {false, false}, 1.0), InvalidArgument);
  EXPECT_THROW(first_passage_cdf(chain, {true}, 1.0), InvalidArgument);
}

TEST(FirstPassage, TandemMeanAddsUp) {
  const double r0 = 4.0, r1 = 0.5;
  const Ctmc chain(3, {{0, 1, r0, 0}, {1, 2, r1, 1}}, {1.0, 0.0, 0.0});
  const FirstPassageSummary to_last = first_passage_summary(chain, target_mask(3, {2}));
  EXPECT_NEAR(to_last.mean_time_to_absorption, 1.0 / r0 + 1.0 / r1, 1e-12);
  const FirstPassageSummary to_middle = first_passage_summary(chain, target_mask(3, {1}));
  EXPECT_NEAR(to_middle.mean_time_to_absorption, 1.0 / r0, 1e-12);
}

// --- DTMC -------------------------------------------------------------------------

TEST(Dtmc, EmbeddedJumpChainProbabilities) {
  const Ctmc chain(3, {{0, 1, 2.0, 0}, {0, 2, 6.0, 1}, {1, 0, 1.0, 2}}, {1.0, 0.0, 0.0});
  const Dtmc jump = Dtmc::embedded_jump_chain(chain);
  EXPECT_NEAR(jump.transition_matrix().at(0, 1), 0.25, 1e-15);
  EXPECT_NEAR(jump.transition_matrix().at(0, 2), 0.75, 1e-15);
  EXPECT_NEAR(jump.transition_matrix().at(1, 0), 1.0, 1e-15);
  // Absorbing CTMC state -> self loop in the jump chain.
  EXPECT_NEAR(jump.transition_matrix().at(2, 2), 1.0, 1e-15);
}

TEST(Dtmc, DistributionAfterSteps) {
  const Ctmc chain(3, {{0, 1, 2.0, 0}, {0, 2, 6.0, 1}, {1, 0, 1.0, 2}}, {1.0, 0.0, 0.0});
  const Dtmc jump = Dtmc::embedded_jump_chain(chain);
  const std::vector<double> after1 = jump.distribution_after(1);
  EXPECT_NEAR(after1[1], 0.25, 1e-15);
  EXPECT_NEAR(after1[2], 0.75, 1e-15);
  const std::vector<double> after2 = jump.distribution_after(2);
  EXPECT_NEAR(after2[0], 0.25, 1e-15);  // 0 ->1 ->0
  EXPECT_NEAR(after2[2], 0.75, 1e-15);
}

TEST(Dtmc, UniformizedRowsAreStochastic) {
  const Ctmc chain = two_state(2.0, 5.0);
  const Dtmc uniform = Dtmc::uniformized(chain);
  for (size_t r = 0; r < 2; ++r) {
    EXPECT_NEAR(uniform.transition_matrix().row_sum(r), 1.0, 1e-12);
  }
}

TEST(Dtmc, StationaryMatchesCtmcForUniformized) {
  // The uniformized chain shares the CTMC's stationary distribution.
  const double a = 2.0, b = 3.0;
  const Dtmc uniform = Dtmc::uniformized(two_state(a, b));
  const std::vector<double> pi = uniform.stationary_distribution();
  EXPECT_NEAR(pi[0], b / (a + b), 1e-12);
}

TEST(Dtmc, EmbeddedStationaryDiffersFromCtmc) {
  // Jump-chain stationary weights states by visit frequency, not time: for
  // the two-state chain it is uniform regardless of rates.
  const Dtmc jump = Dtmc::embedded_jump_chain(two_state(2.0, 30.0));
  const std::vector<double> pi = jump.stationary_distribution();
  EXPECT_NEAR(pi[0], 0.5, 1e-12);
  EXPECT_NEAR(pi[1], 0.5, 1e-12);
}

TEST(Dtmc, RejectsNonStochasticMatrix) {
  linalg::CooBuilder builder(2, 2);
  builder.add(0, 0, 0.5);  // row sums to 0.5
  builder.add(1, 1, 1.0);
  EXPECT_THROW(Dtmc(builder.build(), {1.0, 0.0}), InvalidArgument);
}

TEST(Dtmc, ExpectedRewardAfterSteps) {
  const Dtmc jump = Dtmc::embedded_jump_chain(two_state(1.0, 1.0));
  EXPECT_DOUBLE_EQ(jump.expected_reward_after({0.0, 10.0}, 1), 10.0);
  EXPECT_DOUBLE_EQ(jump.expected_reward_after({0.0, 10.0}, 2), 0.0);
}

}  // namespace
}  // namespace gop::markov
