// Tests for the Krylov matrix-exponential action and steady-state
// sensitivities.

#include <gtest/gtest.h>

#include <cmath>

#include "markov/krylov.hh"
#include "markov/sensitivity.hh"
#include "markov/steady_state.hh"
#include "markov/transient.hh"
#include "sim/rng.hh"
#include "util/error.hh"

namespace gop::markov {
namespace {

Ctmc two_state(double a, double b) {
  return Ctmc(2, {{0, 1, a, 0}, {1, 0, b, 1}}, {1.0, 0.0});
}

/// Random sparse irreducible CTMC: a ring plus random chords.
Ctmc random_chain(size_t n, size_t extra_edges, uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<Transition> transitions;
  for (size_t s = 0; s < n; ++s) {
    transitions.push_back({s, (s + 1) % n, 0.5 + rng.uniform(), 0});
  }
  for (size_t e = 0; e < extra_edges; ++e) {
    const size_t from = rng.uniform_index(n);
    size_t to = rng.uniform_index(n);
    if (to == from) to = (to + 1) % n;
    transitions.push_back({from, to, 0.1 + 2.0 * rng.uniform(), 0});
  }
  std::vector<double> initial(n, 0.0);
  initial[0] = 1.0;
  return Ctmc(n, std::move(transitions), std::move(initial));
}

// --- Krylov -----------------------------------------------------------------------

TEST(Krylov, MatchesClosedFormTwoState) {
  const double a = 2.0, b = 5.0;
  const Ctmc chain = two_state(a, b);
  for (double t : {0.1, 1.0, 10.0}) {
    const std::vector<double> pi = krylov_transient_distribution(chain, t);
    const double expected = b / (a + b) + a / (a + b) * std::exp(-(a + b) * t);
    EXPECT_NEAR(pi[0], expected, 1e-9) << "t=" << t;
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-9);
  }
}

TEST(Krylov, MatchesDenseExponentialOnRandomChain) {
  const Ctmc chain = random_chain(60, 120, 42);
  TransientOptions dense;
  dense.method = TransientMethod::kMatrixExponential;
  for (double t : {0.05, 0.5, 3.0}) {
    const std::vector<double> expected = transient_distribution(chain, t, dense);
    const std::vector<double> actual = krylov_transient_distribution(chain, t);
    for (size_t s = 0; s < chain.state_count(); ++s) {
      EXPECT_NEAR(actual[s], expected[s], 1e-8) << "t=" << t << " s=" << s;
    }
  }
}

TEST(Krylov, SmallChainTriggersHappyBreakdown) {
  // Basis dimension larger than the chain: Arnoldi must break down happily
  // and still give the exact answer.
  const Ctmc chain = two_state(1.0, 4.0);
  KrylovOptions options;
  options.basis_dimension = 30;
  const std::vector<double> pi = krylov_transient_distribution(chain, 2.0, options);
  const double expected = 4.0 / 5.0 + 1.0 / 5.0 * std::exp(-5.0 * 2.0);
  EXPECT_NEAR(pi[0], expected, 1e-10);
}

TEST(Krylov, ZeroTimeIsIdentity) {
  const Ctmc chain = random_chain(10, 5, 7);
  const std::vector<double> pi = krylov_transient_distribution(chain, 0.0);
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
}

TEST(Krylov, ZeroVectorStaysZero) {
  linalg::CooBuilder builder(3, 3);
  builder.add(0, 1, 1.0);
  const std::vector<double> w = krylov_expv(builder.build(), 1.0, {0.0, 0.0, 0.0});
  for (double v : w) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Krylov, Validation) {
  linalg::CooBuilder builder(2, 3);
  builder.add(0, 1, 1.0);
  EXPECT_THROW(krylov_expv(builder.build(), 1.0, {1.0, 0.0}), InvalidArgument);
  const Ctmc chain = two_state(1.0, 1.0);
  KrylovOptions options;
  options.basis_dimension = 1;
  EXPECT_THROW(krylov_transient_distribution(chain, 1.0, options), InvalidArgument);
}

TEST(Krylov, ModeratelyStiffChainViaSubstepping) {
  const double a = 200.0, b = 300.0;
  const Ctmc chain = two_state(a, b);
  const std::vector<double> pi = krylov_transient_distribution(chain, 5.0);
  EXPECT_NEAR(pi[0], b / (a + b), 1e-8);
}

// --- sensitivity -------------------------------------------------------------------

TEST(Sensitivity, TwoStateClosedForm) {
  // pi0 = b/(a+b); dpi0/da = -b/(a+b)^2.
  const double a = 2.0, b = 3.0;
  const Ctmc chain = two_state(a, b);
  const std::vector<double> pi = steady_state_distribution(chain);
  // dQ/da = [[-1, 1], [0, 0]].
  const linalg::DenseMatrix dq = linalg::DenseMatrix::from_rows({{-1, 1}, {0, 0}});
  const std::vector<double> dpi = steady_state_sensitivity(chain, pi, dq);
  EXPECT_NEAR(dpi[0], -b / ((a + b) * (a + b)), 1e-12);
  EXPECT_NEAR(dpi[1], b / ((a + b) * (a + b)), 1e-12);
}

TEST(Sensitivity, DerivativeSumsToZero) {
  const Ctmc chain = random_chain(12, 20, 9);
  const std::vector<double> pi = steady_state_distribution(chain);
  linalg::DenseMatrix dq(12, 12, 0.0);
  dq(3, 7) = 1.0;
  dq(3, 3) = -1.0;
  const std::vector<double> dpi = steady_state_sensitivity(chain, pi, dq);
  double total = 0.0;
  for (double v : dpi) total += v;
  EXPECT_NEAR(total, 0.0, 1e-10);
}

TEST(Sensitivity, MatchesFiniteDifferenceOnRandomChain) {
  // Perturb the rate of one specific transition and compare the analytic
  // reward derivative against a central finite difference.
  const size_t n = 8;
  std::vector<double> reward(n, 0.0);
  reward[2] = 1.0;
  reward[5] = 0.5;

  const auto build = [&](double extra) {
    Ctmc base = random_chain(n, 10, 31);
    std::vector<Transition> transitions = base.transitions();
    transitions.push_back({1, 4, 0.7 + extra, -1});
    return Ctmc(n, std::move(transitions), base.initial_distribution());
  };

  const Ctmc chain = build(0.0);
  const std::vector<double> pi = steady_state_distribution(chain);
  linalg::DenseMatrix dq(n, n, 0.0);
  dq(1, 4) = 1.0;
  dq(1, 1) = -1.0;
  const double analytic = steady_state_reward_sensitivity(chain, pi, dq, reward);

  const double numeric = finite_difference(
      [&](double extra) {
        return steady_state_reward(build(extra), reward);
      },
      0.0, 1e-5);
  EXPECT_NEAR(analytic, numeric, 1e-6 * std::max(1.0, std::abs(analytic)));
}

TEST(Sensitivity, FiniteDifferenceOnPolynomial) {
  EXPECT_NEAR(finite_difference([](double x) { return x * x * x; }, 2.0), 12.0, 1e-6);
  EXPECT_NEAR(finite_difference([](double x) { return 3.0 * x; }, 0.0), 3.0, 1e-9);
  EXPECT_THROW(finite_difference(nullptr, 1.0), InvalidArgument);
}

TEST(Sensitivity, DimensionValidation) {
  const Ctmc chain = two_state(1.0, 1.0);
  const std::vector<double> pi = steady_state_distribution(chain);
  EXPECT_THROW(steady_state_sensitivity(chain, pi, linalg::DenseMatrix(3, 3)), InvalidArgument);
  EXPECT_THROW(steady_state_sensitivity(chain, {1.0}, linalg::DenseMatrix(2, 2)),
               InvalidArgument);
}

}  // namespace
}  // namespace gop::markov
