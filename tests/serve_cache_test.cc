// Tests for the solved-model cache of gop::serve (serve/cache.hh,
// san/hash.hh): hash stability and bitwise key sensitivity (every component
// of the content-addressed cache key, down to 1-ulp perturbations), LRU
// eviction at capacity, and the core serving guarantee — a cache hit is
// std::bit_cast-identical to the cold solve that produced it, provenance
// certificates included.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "san/hash.hh"
#include "san/random_model.hh"
#include "san/state_space.hh"
#include "serve/cache.hh"
#include "serve/request.hh"
#include "serve/server.hh"

namespace gop::serve {
namespace {

Request rmgd_request() {
  Request request;
  request.model = "rmgd";
  request.rewards = {"P_A1", "Ih"};
  request.transient_times = {7000.0};
  return request;
}

/// Bitwise equality for doubles: NaN-safe, -0.0 != +0.0 — exactly the
/// identity the cache key and the bit-identical-replies guarantee use.
bool bits_equal(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

bool series_bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!bits_equal(a[i], b[i])) return false;
  }
  return true;
}

// --- hash stability ----------------------------------------------------------

TEST(ServeHash, Fnv1aMatchesPublishedTestVectors) {
  // The classic FNV-1a 64 vectors; pins the constants and the byte order
  // across runs, compilers, and machines.
  EXPECT_EQ(san::fnv1a("", 0), san::Fnv1a::kOffsetBasis);
  EXPECT_EQ(san::fnv1a("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(san::fnv1a("foobar", 6), 0x85944171f73967e8ULL);
}

TEST(ServeHash, ChainHashDeterministicAcrossIndependentBuilds) {
  // Two fully independent model + generation runs of the same seed must
  // land on the same digest (no pointers or container addresses leak in),
  // and different seeds must not collide.
  const san::SanModel first = san::random_san(7);
  const san::SanModel second = san::random_san(7);
  const san::GeneratedChain chain_a = san::generate_state_space(first);
  const san::GeneratedChain chain_b = san::generate_state_space(second);
  EXPECT_EQ(san::chain_hash(chain_a), san::chain_hash(chain_b));

  const san::SanModel other = san::random_san(8);
  const san::GeneratedChain chain_c = san::generate_state_space(other);
  EXPECT_NE(san::chain_hash(chain_a), san::chain_hash(chain_c));
}

TEST(ServeHash, GridHashSeparatesDomainsAndUlps) {
  const std::vector<double> t{7000.0};
  const std::vector<double> none;
  const uint64_t base = san::grid_hash(t, none, false);

  // Same time in the accumulated grid is a different request.
  EXPECT_NE(base, san::grid_hash(none, t, false));
  // The steady-state flag is part of the identity.
  EXPECT_NE(base, san::grid_hash(t, none, true));
  // 1 ulp on a grid time changes the digest.
  const std::vector<double> ulp{std::nextafter(7000.0, 8000.0)};
  EXPECT_NE(base, san::grid_hash(ulp, none, false));
}

// --- server-level key sensitivity --------------------------------------------

TEST(ServeCache, KeyIsSensitiveToEveryComponent) {
  Server server;
  const Response base = server.handle(rmgd_request());
  ASSERT_TRUE(base.ok()) << base.error;

  // Table-3 parameter perturbed by 1 ulp -> different generated chain.
  {
    Request request = rmgd_request();
    request.params.lambda = std::nextafter(request.params.lambda, 2000.0);
    const Response response = server.handle(request);
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_NE(response.model_hash, base.model_hash);
  }
  // Different reward set, same model and grid.
  {
    Request request = rmgd_request();
    request.rewards = {"Ihf"};
    const Response response = server.handle(request);
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_EQ(response.model_hash, base.model_hash);
    EXPECT_NE(response.reward_hash, base.reward_hash);
    EXPECT_EQ(response.grid_hash, base.grid_hash);
  }
  // Reward order is part of the key (results are in request order).
  {
    Request request = rmgd_request();
    request.rewards = {"Ih", "P_A1"};
    const Response response = server.handle(request);
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_NE(response.reward_hash, base.reward_hash);
  }
  // Grid value perturbed by 1 ulp.
  {
    Request request = rmgd_request();
    request.transient_times = {std::nextafter(7000.0, 8000.0)};
    const Response response = server.handle(request);
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_EQ(response.model_hash, base.model_hash);
    EXPECT_NE(response.grid_hash, base.grid_hash);
  }
  // None of the variants were answered from the base entry.
  EXPECT_EQ(server.stats().cache_hits, 0u);
}

TEST(ServeCache, HitIsBitIdenticalToColdSolveCertificatesIncluded) {
  Server server;
  const Response cold = server.handle(rmgd_request());
  ASSERT_TRUE(cold.ok()) << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  ASSERT_FALSE(cold.results.empty());
  ASSERT_FALSE(cold.certificates.empty());

  const Response hit = server.handle(rmgd_request());
  ASSERT_TRUE(hit.ok()) << hit.error;
  EXPECT_TRUE(hit.cache_hit);

  EXPECT_EQ(hit.engine, cold.engine);
  EXPECT_EQ(hit.storage, cold.storage);
  EXPECT_EQ(hit.model_hash, cold.model_hash);
  EXPECT_EQ(hit.reward_hash, cold.reward_hash);
  EXPECT_EQ(hit.grid_hash, cold.grid_hash);

  ASSERT_EQ(hit.results.size(), cold.results.size());
  for (size_t i = 0; i < hit.results.size(); ++i) {
    EXPECT_EQ(hit.results[i].reward, cold.results[i].reward);
    EXPECT_TRUE(series_bits_equal(hit.results[i].instant, cold.results[i].instant));
    EXPECT_TRUE(series_bits_equal(hit.results[i].accumulated, cold.results[i].accumulated));
    ASSERT_EQ(hit.results[i].steady_state.has_value(), cold.results[i].steady_state.has_value());
    if (hit.results[i].steady_state.has_value()) {
      EXPECT_TRUE(bits_equal(*hit.results[i].steady_state, *cold.results[i].steady_state));
    }
  }

  ASSERT_EQ(hit.certificates.size(), cold.certificates.size());
  for (size_t i = 0; i < hit.certificates.size(); ++i) {
    EXPECT_EQ(hit.certificates[i].solver, cold.certificates[i].solver);
    EXPECT_EQ(hit.certificates[i].certificate.engine, cold.certificates[i].certificate.engine);
    EXPECT_EQ(hit.certificates[i].certificate.retries, cold.certificates[i].certificate.retries);
    EXPECT_EQ(hit.certificates[i].certificate.degraded, cold.certificates[i].certificate.degraded);
    EXPECT_TRUE(bits_equal(hit.certificates[i].certificate.error_bound,
                           cold.certificates[i].certificate.error_bound));
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.cold_solves, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(ServeCache, EvictionAtCapacityForcesResolve) {
  ServerOptions options;
  options.cache_capacity = 2;
  Server server(options);

  Request request = rmgd_request();
  for (double t : {1000.0, 2000.0, 3000.0}) {
    request.transient_times = {t};
    ASSERT_TRUE(server.handle(request).ok());
  }
  EXPECT_EQ(server.stats().evictions, 1u);
  EXPECT_EQ(server.stats().cold_solves, 3u);

  // The oldest grid was evicted, so asking again is a cold solve...
  request.transient_times = {1000.0};
  const Response resolved = server.handle(request);
  ASSERT_TRUE(resolved.ok());
  EXPECT_FALSE(resolved.cache_hit);
  EXPECT_EQ(server.stats().cold_solves, 4u);

  // ...and the freshest one is still a hit.
  request.transient_times = {3000.0};
  EXPECT_TRUE(server.handle(request).cache_hit);
}

TEST(ServeCache, InstanceCacheIsBoundedAndRebuildsAfterEviction) {
  // The model-instance cache is LRU-bounded too (REVIEW: a long-running
  // daemon must not leak a state space per distinct parameter set). With
  // capacity 1, a second model evicts the first; asking for the first again
  // rebuilds its chain — but the solved-RESULT cache is content-addressed,
  // so the rebuilt (bit-identical) chain still hits the old entry.
  ServerOptions options;
  options.instance_capacity = 1;
  Server server(options);

  Request gp;
  gp.model = "rmgp";
  gp.rewards = {"1-rho1"};
  gp.transient_times = {7000.0};

  ASSERT_TRUE(server.handle(rmgd_request()).ok());
  EXPECT_EQ(server.stats().chain_builds, 1u);
  EXPECT_EQ(server.stats().instance_evictions, 0u);

  ASSERT_TRUE(server.handle(gp).ok());  // evicts the rmgd instance
  EXPECT_EQ(server.stats().chain_builds, 2u);
  EXPECT_EQ(server.stats().instance_evictions, 1u);

  const Response again = server.handle(rmgd_request());  // instance rebuilt...
  ASSERT_TRUE(again.ok()) << again.error;
  EXPECT_EQ(server.stats().chain_builds, 3u);
  EXPECT_EQ(server.stats().instance_evictions, 2u);
  // ...yet the result comes from the cache: same chain bits, same key.
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(server.stats().cold_solves, 2u);
  EXPECT_EQ(server.stats().cache_hits, 1u);
}

// --- SolvedCache / SingleFlight units ----------------------------------------

TEST(SolvedCache, LruOrderAndEviction) {
  SolvedCache<int> cache(2);
  const CacheKey a{1, 0, 0};
  const CacheKey b{2, 0, 0};
  const CacheKey c{3, 0, 0};

  EXPECT_EQ(cache.put(a, std::make_shared<int>(10)), 0u);
  EXPECT_EQ(cache.put(b, std::make_shared<int>(20)), 0u);
  // Touch `a` so `b` becomes least recently used.
  ASSERT_NE(cache.get(a), nullptr);
  EXPECT_EQ(cache.put(c, std::make_shared<int>(30)), 1u);

  EXPECT_EQ(cache.get(b), nullptr);
  ASSERT_NE(cache.get(a), nullptr);
  EXPECT_EQ(*cache.get(a), 10);
  EXPECT_EQ(cache.size(), 2u);

  // entries() is MRU-first: `a` was touched last.
  const auto entries = cache.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, a);
  EXPECT_EQ(entries[1].first, c);
}

TEST(SolvedCache, ReplacingExistingKeyDoesNotEvict) {
  SolvedCache<int> cache(2);
  const CacheKey a{1, 0, 0};
  const CacheKey b{2, 0, 0};
  cache.put(a, std::make_shared<int>(1));
  cache.put(b, std::make_shared<int>(2));
  EXPECT_EQ(cache.put(a, std::make_shared<int>(3)), 0u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(*cache.get(a), 3);
}

TEST(SingleFlight, FailureClearsSlotSoRetriesRun) {
  SingleFlight<int> flight;
  int runs = 0;
  EXPECT_THROW(flight.do_once(1,
                              [&] {
                                ++runs;
                                throw std::runtime_error("factory failed");
                              }),
               std::runtime_error);
  // The failed slot was erased; the next call is a fresh leader.
  EXPECT_EQ(flight.do_once(1, [&] { ++runs; }), SingleFlight<int>::Role::kLeader);
  EXPECT_EQ(runs, 2);
}

}  // namespace
}  // namespace gop::serve
