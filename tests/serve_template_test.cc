// Serving template-family requests (docs/templates.md + docs/serving.md):
// instances resolve through core::template_registry(), are admission-gated
// like every other model source, and are cached under a parameter-sensitive
// key — "tpl:<family>:<param_hash>" over the *fully resolved* assignment, so
// defaults and their explicit-equal twins share one instance while a 1-ulp
// rate change builds a new one. Repeat requests are solved-cache hits,
// bitwise identical to the cold solve, certificates included.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/json.hh"
#include "serve/request.hh"
#include "serve/server.hh"
#include "util/error.hh"

namespace gop::serve {
namespace {

bool bits_equal(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

Request nproc_request() {
  Request request;
  request.template_name = "nproc";
  request.assignment.set_int("n", 2);
  request.rewards = {"all_up", "up_fraction"};
  request.transient_times = {0.0, 1.0, 5.0, 20.0};
  return request;
}

void expect_bitwise_identical(const Response& a, const Response& b) {
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.storage, b.storage);
  EXPECT_EQ(a.model_hash, b.model_hash);
  EXPECT_EQ(a.reward_hash, b.reward_hash);
  EXPECT_EQ(a.grid_hash, b.grid_hash);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].reward, b.results[i].reward);
    ASSERT_EQ(a.results[i].instant.size(), b.results[i].instant.size());
    for (size_t k = 0; k < a.results[i].instant.size(); ++k) {
      EXPECT_TRUE(bits_equal(a.results[i].instant[k], b.results[i].instant[k]))
          << a.results[i].reward << " point " << k;
    }
  }
  ASSERT_EQ(a.certificates.size(), b.certificates.size());
  for (size_t i = 0; i < a.certificates.size(); ++i) {
    EXPECT_EQ(a.certificates[i].solver, b.certificates[i].solver);
    EXPECT_EQ(a.certificates[i].certificate.engine, b.certificates[i].certificate.engine);
    EXPECT_EQ(a.certificates[i].certificate.attempts, b.certificates[i].certificate.attempts);
  }
}

TEST(ServeTemplate, ColdSolveThenBitwiseIdenticalCacheHit) {
  Server server;
  const Response cold = server.handle(nproc_request());
  ASSERT_TRUE(cold.ok()) << cold.error << cold.findings.to_text();
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_FALSE(cold.engine.empty());
  ASSERT_EQ(cold.results.size(), 2u);
  EXPECT_EQ(cold.results[0].reward, "all_up");
  // At t=0 both replicas are up.
  EXPECT_TRUE(bits_equal(cold.results[0].instant[0], 1.0));
  EXPECT_FALSE(cold.certificates.empty());

  const Response hit = server.handle(nproc_request());
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.cache_hit);
  expect_bitwise_identical(cold, hit);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.cold_solves, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.chain_builds, 1u);
}

TEST(ServeTemplate, DefaultsAndExplicitEqualAssignmentShareOneInstance) {
  Server server;
  ASSERT_TRUE(server.handle(nproc_request()).ok());

  // Same parameters spelled out in full: the key is derived from the
  // *resolved* assignment, so no second chain is built.
  Request explicit_request = nproc_request();
  explicit_request.assignment.set_int("servers", 1);
  explicit_request.assignment.set_real("fail_rate", 0.1);
  explicit_request.assignment.set_real("repair_rate", 1.0);
  const Response response = server.handle(explicit_request);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.cache_hit);
  EXPECT_EQ(server.stats().chain_builds, 1u);
}

TEST(ServeTemplate, OneUlpParameterChangeIsANewInstance) {
  Server server;
  const Response base = server.handle(nproc_request());
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(server.stats().chain_builds, 1u);

  Request nudged = nproc_request();
  nudged.assignment.set_real("fail_rate", std::nextafter(0.1, 1.0));
  const Response response = server.handle(nudged);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response.cache_hit);
  EXPECT_NE(response.model_hash, base.model_hash);
  EXPECT_EQ(server.stats().chain_builds, 2u);
  EXPECT_EQ(server.stats().cold_solves, 2u);
}

TEST(ServeTemplate, UnknownFamilyAndBadAssignmentAreErrors) {
  Server server;

  Request unknown = nproc_request();
  unknown.template_name = "no-such-family";
  const Response unknown_response = server.handle(unknown);
  EXPECT_EQ(unknown_response.status, Status::kError);
  EXPECT_NE(unknown_response.error.find("no-such-family"), std::string::npos)
      << unknown_response.error;

  Request out_of_range = nproc_request();
  out_of_range.assignment.set_int("n", 99);  // family bound is 8
  EXPECT_EQ(server.handle(out_of_range).status, Status::kError);

  Request unknown_param = nproc_request();
  unknown_param.assignment.set_int("replicas", 2);
  EXPECT_EQ(server.handle(unknown_param).status, Status::kError);

  EXPECT_EQ(server.stats().errors, 3u);
  // The server is healthy afterwards.
  EXPECT_TRUE(server.handle(nproc_request()).ok());
}

TEST(ServeTemplate, BadGridOnTemplateInstanceIsRejectedWithFindings) {
  Server server;
  Request request = nproc_request();
  request.transient_times = {-1.0, 1.0};
  const Response response = server.handle(request);
  EXPECT_EQ(response.status, Status::kRejected);
  EXPECT_TRUE(response.findings.has_errors());
  EXPECT_TRUE(response.findings.has_code("PRE001")) << response.findings.to_text();
  EXPECT_TRUE(response.results.empty());
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST(ServeTemplate, PaperFamilyServesThroughTemplatePath) {
  // The rmgd template family serves the same rewards as the registered
  // "rmgd" model; at Table-3 defaults the two paths are the same chain, so
  // the solved cache can serve one from the other's entry.
  Request templated;
  templated.template_name = "rmgd";
  templated.rewards = {"P_A1", "Ih"};
  templated.transient_times = {7000.0};

  Request registered;
  registered.model = "rmgd";
  registered.rewards = {"P_A1", "Ih"};
  registered.transient_times = {7000.0};

  Server server;
  const Response a = server.handle(templated);
  ASSERT_TRUE(a.ok()) << a.error;
  const Response b = server.handle(registered);
  ASSERT_TRUE(b.ok()) << b.error;
  EXPECT_EQ(a.model_hash, b.model_hash);  // same chain bits
  EXPECT_TRUE(b.cache_hit);               // key is content-addressed, not name-addressed
  expect_bitwise_identical(a, b);
}

TEST(ServeTemplate, WireRequestParsesTemplateAndAssignment) {
  const Json document = parse(R"({
    "id": "t1",
    "template": "nproc",
    "assignment": {"n": 3, "fail_rate": 0.25, "servers": "2"},
    "rewards": ["all_up"],
    "transient_times": [0.0, 2.0]
  })");
  const Request request = parse_request(document);
  EXPECT_EQ(request.template_name, "nproc");
  EXPECT_EQ(request.rewards, std::vector<std::string>{"all_up"});

  Server server;
  const Response response = server.handle(request);
  ASSERT_TRUE(response.ok()) << response.error << response.findings.to_text();
  EXPECT_EQ(response.id, "t1");

  // Exactly-one-of is enforced at the wire layer.
  EXPECT_THROW(parse_request(parse(R"({"model": "rmgd", "template": "nproc",
                                       "rewards": ["P_A1"]})")),
               InvalidArgument);
  // assignment without a template is malformed.
  EXPECT_THROW(parse_request(parse(R"({"model": "rmgd", "assignment": {"n": 2},
                                       "rewards": ["P_A1"]})")),
               InvalidArgument);
}

TEST(ServeTemplate, SnapshotSkipsTemplateInstancesAndRebuildsCleanly) {
  Server server;
  ASSERT_TRUE(server.handle(nproc_request()).ok());
  Request rmgd;
  rmgd.model = "rmgd";
  rmgd.rewards = {"P_A1"};
  rmgd.transient_times = {7000.0};
  ASSERT_TRUE(server.handle(rmgd).ok());

  const std::string snapshot = server.save_snapshot();
  Server restored;
  const SnapshotLoadResult load = restored.load_snapshot(snapshot);
  ASSERT_TRUE(load.loaded) << load.detail;
  // Only the registered instance is snapshotted; the template instance
  // rebuilds deterministically on its first request.
  EXPECT_EQ(load.instances, 1u);
  const Response after = restored.handle(nproc_request());
  ASSERT_TRUE(after.ok()) << after.error;
  EXPECT_EQ(restored.stats().chain_builds, 1u);
}

}  // namespace
}  // namespace gop::serve
