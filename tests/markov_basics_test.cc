// Unit tests for the CTMC container and Fox–Glynn Poisson windows.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "markov/ctmc.hh"
#include "markov/fox_glynn.hh"
#include "util/error.hh"

namespace gop::markov {
namespace {

Ctmc two_state(double a, double b) {
  return Ctmc(2, {{0, 1, a, 0}, {1, 0, b, 1}}, {1.0, 0.0});
}

TEST(Ctmc, BasicAccessors) {
  const Ctmc chain = two_state(2.0, 3.0);
  EXPECT_EQ(chain.state_count(), 2u);
  EXPECT_DOUBLE_EQ(chain.exit_rates()[0], 2.0);
  EXPECT_DOUBLE_EQ(chain.exit_rates()[1], 3.0);
  EXPECT_DOUBLE_EQ(chain.max_exit_rate(), 3.0);
  EXPECT_FALSE(chain.is_absorbing(0));
}

TEST(Ctmc, ParallelTransitionsSumInRateMatrix) {
  const Ctmc chain(2, {{0, 1, 1.0, 0}, {0, 1, 2.0, 1}}, {1.0, 0.0});
  EXPECT_DOUBLE_EQ(chain.rate_matrix().at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(chain.exit_rates()[0], 3.0);
  // ... but the transitions list keeps both (for impulse rewards).
  EXPECT_EQ(chain.transitions().size(), 2u);
}

TEST(Ctmc, SelfLoopsExcludedFromRates) {
  const Ctmc chain(2, {{0, 0, 5.0, 0}, {0, 1, 1.0, 1}}, {1.0, 0.0});
  EXPECT_DOUBLE_EQ(chain.exit_rates()[0], 1.0);
  EXPECT_EQ(chain.transitions().size(), 2u);
}

TEST(Ctmc, AbsorbingDetection) {
  const Ctmc chain(2, {{0, 1, 1.0, 0}}, {1.0, 0.0});
  EXPECT_FALSE(chain.is_absorbing(0));
  EXPECT_TRUE(chain.is_absorbing(1));
}

TEST(Ctmc, GeneratorRowsSumToZero) {
  const Ctmc chain = two_state(2.0, 3.0);
  const linalg::DenseMatrix q = chain.generator_dense();
  for (size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 2; ++c) sum += q(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-15);
  }
  EXPECT_DOUBLE_EQ(q(0, 0), -2.0);
}

TEST(Ctmc, ValidationErrors) {
  EXPECT_THROW(Ctmc(0, {}, {}), InvalidArgument);
  EXPECT_THROW(Ctmc(2, {}, {0.5, 0.6}), InvalidArgument);              // not a distribution
  EXPECT_THROW(Ctmc(2, {{0, 5, 1.0, 0}}, {1.0, 0.0}), InvalidArgument);  // bad endpoint
  EXPECT_THROW(Ctmc(2, {{0, 1, -1.0, 0}}, {1.0, 0.0}), InvalidArgument); // negative rate
  EXPECT_THROW(Ctmc(2, {{0, 1, 0.0, 0}}, {1.0, 0.0}), InvalidArgument);  // zero rate
}

TEST(Ctmc, WithInitialReplacesDistribution) {
  const Ctmc chain = two_state(1.0, 1.0);
  const Ctmc moved = chain.with_initial({0.0, 1.0});
  EXPECT_DOUBLE_EQ(moved.initial_distribution()[1], 1.0);
  EXPECT_EQ(moved.transitions().size(), chain.transitions().size());
}

// --- Fox–Glynn ---------------------------------------------------------------

TEST(FoxGlynn, WeightsSumToOne) {
  for (double lambda : {0.1, 1.0, 25.0, 4000.0}) {
    const PoissonWindow w = poisson_window(lambda, 1e-12);
    double total = 0.0;
    for (double v : w.weights) total += v;
    EXPECT_NEAR(total, 1.0, 1e-12) << "lambda=" << lambda;
  }
}

TEST(FoxGlynn, MatchesReferencePmf) {
  const double lambda = 30.0;
  const PoissonWindow w = poisson_window(lambda, 1e-12);
  for (size_t i = 0; i < w.weights.size(); ++i) {
    const size_t k = w.left + i;
    EXPECT_NEAR(w.weights[i], poisson_pmf(lambda, k), 1e-12) << "k=" << k;
  }
}

TEST(FoxGlynn, WindowCoversMode) {
  const double lambda = 1234.5;
  const PoissonWindow w = poisson_window(lambda);
  EXPECT_LE(w.left, static_cast<size_t>(lambda));
  EXPECT_GE(w.right(), static_cast<size_t>(lambda));
}

TEST(FoxGlynn, WindowWidthIsSqrtScaled) {
  // For large lambda the window should be O(sqrt(lambda)), not O(lambda).
  const double lambda = 1e6;
  const PoissonWindow w = poisson_window(lambda, 1e-12);
  EXPECT_LT(static_cast<double>(w.weights.size()), 60.0 * std::sqrt(lambda));
  EXPECT_GT(static_cast<double>(w.weights.size()), 2.0 * std::sqrt(lambda));
}

TEST(FoxGlynn, TruncatedTailsAreSmall) {
  const double lambda = 50.0;
  const double epsilon = 1e-10;
  const PoissonWindow w = poisson_window(lambda, epsilon);
  double outside = 0.0;
  for (size_t k = 0; k < w.left; ++k) outside += poisson_pmf(lambda, k);
  for (size_t k = w.right() + 1; k < w.right() + 200; ++k) outside += poisson_pmf(lambda, k);
  EXPECT_LT(outside, epsilon);
}

TEST(FoxGlynn, SmallLambdaStartsAtZero) {
  const PoissonWindow w = poisson_window(0.5, 1e-12);
  EXPECT_EQ(w.left, 0u);
  EXPECT_NEAR(w.weights[0], std::exp(-0.5), 1e-12);
}

TEST(FoxGlynn, InvalidArguments) {
  EXPECT_THROW(poisson_window(0.0), InvalidArgument);
  EXPECT_THROW(poisson_window(-1.0), InvalidArgument);
  EXPECT_THROW(poisson_window(1.0, 0.0), InvalidArgument);
  EXPECT_THROW(poisson_window(1.0, 1.5), InvalidArgument);
}

}  // namespace
}  // namespace gop::markov
