// Tests for the chain-level trajectory simulator and its Monte Carlo
// estimators.

#include <gtest/gtest.h>

#include <cmath>

#include "markov/accumulated.hh"
#include "markov/ctmc_sim.hh"
#include "markov/transient.hh"
#include "util/error.hh"

namespace gop::markov {
namespace {

Ctmc two_state(double a, double b) {
  return Ctmc(2, {{0, 1, a, 0}, {1, 0, b, 1}}, {1.0, 0.0});
}

TEST(CtmcSim, DeterministicGivenSeed) {
  const Ctmc chain = two_state(2.0, 3.0);
  sim::Rng a(5), b(5);
  const CtmcPathOutcome pa = simulate_ctmc(chain, a, 10.0);
  const CtmcPathOutcome pb = simulate_ctmc(chain, b, 10.0);
  EXPECT_EQ(pa.state, pb.state);
  EXPECT_DOUBLE_EQ(pa.time, pb.time);
}

TEST(CtmcSim, SojournsPartitionHorizon) {
  const Ctmc chain = two_state(2.0, 3.0);
  sim::Rng rng(9);
  double covered = 0.0, last = 0.0;
  simulate_ctmc(chain, rng, 20.0, nullptr, [&](size_t, double enter, double leave) {
    EXPECT_DOUBLE_EQ(enter, last);
    covered += leave - enter;
    last = leave;
  });
  EXPECT_NEAR(covered, 20.0, 1e-12);
}

TEST(CtmcSim, AbsorbingStateHolds) {
  const Ctmc chain(2, {{0, 1, 50.0, 0}}, {1.0, 0.0});
  sim::Rng rng(3);
  const CtmcPathOutcome outcome = simulate_ctmc(chain, rng, 5.0);
  EXPECT_EQ(outcome.state, 1u);
  EXPECT_FALSE(outcome.stopped);
}

TEST(CtmcSim, StopPredicate) {
  const Ctmc chain(2, {{0, 1, 5.0, 0}}, {1.0, 0.0});
  sim::Rng rng(11);
  const CtmcPathOutcome outcome =
      simulate_ctmc(chain, rng, 1000.0, [](size_t s) { return s == 1; });
  EXPECT_TRUE(outcome.stopped);
  EXPECT_EQ(outcome.state, 1u);
  EXPECT_LT(outcome.time, 1000.0);
}

TEST(CtmcSim, StopOnInitialState) {
  const Ctmc chain = two_state(1.0, 1.0);
  sim::Rng rng(1);
  const CtmcPathOutcome outcome = simulate_ctmc(chain, rng, 5.0, [](size_t s) { return s == 0; });
  EXPECT_TRUE(outcome.stopped);
  EXPECT_DOUBLE_EQ(outcome.time, 0.0);
}

TEST(CtmcSim, RandomInitialDistribution) {
  const Ctmc chain = two_state(1e-9, 1e-9).with_initial({0.3, 0.7});
  sim::Rng rng(123);
  size_t in_one = 0;
  const size_t n = 20000;
  for (size_t i = 0; i < n; ++i) {
    in_one += simulate_ctmc(chain, rng, 1e-6).state == 1 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(in_one) / static_cast<double>(n), 0.7, 0.01);
}

TEST(CtmcSim, McInstantRewardMatchesSolver) {
  const double a = 2.0, b = 3.0, t = 0.6;
  const Ctmc chain = two_state(a, b);
  const std::vector<double> reward{1.0, 0.0};
  const double exact = transient_reward(chain, reward, t);

  sim::ReplicationOptions options;
  options.seed = 77;
  options.min_replications = 6000;
  options.max_replications = 6000;
  const auto estimate = mc_instant_reward(chain, reward, t, options);
  EXPECT_NEAR(estimate.mean(), exact, 4.0 * estimate.stats.std_error() + 1e-3);
}

TEST(CtmcSim, McAccumulatedRewardMatchesSolver) {
  const double a = 2.0, b = 3.0, t = 4.0;
  const Ctmc chain = two_state(a, b);
  const std::vector<double> reward{1.0, 0.25};
  const double exact = accumulated_reward(chain, reward, t);

  sim::ReplicationOptions options;
  options.seed = 78;
  options.min_replications = 6000;
  options.max_replications = 6000;
  const auto estimate = mc_accumulated_reward(chain, reward, t, options);
  EXPECT_NEAR(estimate.mean(), exact, 4.0 * estimate.stats.std_error() + 1e-3);
}

TEST(CtmcSim, StiffChainTrajectoriesAreCheap) {
  // Two rare events over a huge horizon: must return quickly (this test
  // exists because simulating at the SAN level would take ~1e7 events).
  const Ctmc chain(3, {{0, 1, 1e-4, 0}, {1, 2, 1e-4, 1}}, {1.0, 0.0, 0.0});
  sim::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const CtmcPathOutcome outcome = simulate_ctmc(chain, rng, 1e4);
    EXPECT_LE(outcome.state, 2u);
  }
}

TEST(CtmcSim, Validation) {
  const Ctmc chain = two_state(1.0, 1.0);
  sim::Rng rng(1);
  EXPECT_THROW(simulate_ctmc(chain, rng, -1.0), InvalidArgument);
  EXPECT_THROW(mc_instant_reward(chain, {1.0}, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace gop::markov
