// Bit-identity tests for the optimized dense kernels (docs/performance.md).
//
// The library's numerical contract is that kernel dispatch never changes
// results: the fixed-size unrolled gemm (n <= 15), the strip kernel, the
// (k, j)-tiled path (dims >= 512), the blocked LU, the fixed-size and batched
// substitutions, and the fused Padé elementwise passes all perform the exact
// per-element operation sequence of the naive reference — one accumulator,
// ascending-k updates, the a == 0.0 skip, divide-last. These tests pin that
// down with std::bit_cast comparisons, so any future kernel change that
// reorders a single rounding fails loudly (the reproducibility certificates
// in gop::repro depend on it).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "linalg/dense_matrix.hh"
#include "linalg/lu.hh"

namespace gop::linalg {
namespace {

uint64_t bits(double v) { return std::bit_cast<uint64_t>(v); }

void expect_bitwise_equal(const DenseMatrix& got, const DenseMatrix& want, const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (size_t r = 0; r < got.rows(); ++r) {
    for (size_t c = 0; c < got.cols(); ++c) {
      ASSERT_EQ(bits(got(r, c)), bits(want(r, c)))
          << what << " differs at (" << r << ", " << c << "): got " << got(r, c) << " want "
          << want(r, c);
    }
  }
}

enum class Pattern { kDense, kSparse, kLowerTriangular, kUpperTriangular };

/// Random test matrix. kSparse zeroes ~60% of entries to exercise the
/// kernels' a == 0.0 skip; the triangular patterns mirror the structure the
/// paper's RmNd failure-model generators actually have (where exp(Qt) keeps
/// a large fraction of entries exactly zero through every squaring).
DenseMatrix random_matrix(size_t rows, size_t cols, uint32_t seed, Pattern pattern) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::uniform_real_distribution<double> gate(0.0, 1.0);
  DenseMatrix m(rows, cols, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (pattern == Pattern::kSparse && gate(rng) < 0.6) continue;
      if (pattern == Pattern::kLowerTriangular && c > r) continue;
      if (pattern == Pattern::kUpperTriangular && c < r) continue;
      m(r, c) = dist(rng);
    }
  }
  return m;
}

/// The historical per-element contract, written as the naive triple loop:
/// one accumulator per output element, k ascending, skip when a(i, k) is
/// exactly zero (which also skips non-finite b entries in that row — the
/// skip is part of the contract, not an optimization detail).
DenseMatrix reference_multiply(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c(a.rows(), b.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) {
        const double av = a(i, k);
        if (av == 0.0) continue;
        acc += av * b(k, j);
      }
      c(i, j) = acc;
    }
  }
  return c;
}

// Every dispatch regime in one sweep: fixed-size unrolled (n <= 15, n != 8),
// the excluded power-of-two sizes (8, 16) on the strip path, strip sizes
// across the LU panel boundary (64, 65), and odd sizes that leave remainders
// in the unroll-by-two strips.
TEST(DenseMultiplyKernels, MatchesReferenceBitwiseAcrossSizesAndPatterns) {
  const size_t sizes[] = {1, 2, 3, 5, 7, 8, 9, 13, 14, 15, 16, 17, 33, 64, 65, 100, 130};
  const Pattern patterns[] = {Pattern::kDense, Pattern::kSparse, Pattern::kLowerTriangular,
                              Pattern::kUpperTriangular};
  uint32_t seed = 1;
  for (size_t n : sizes) {
    for (Pattern pattern : patterns) {
      const DenseMatrix a = random_matrix(n, n, seed++, pattern);
      const DenseMatrix b = random_matrix(n, n, seed++, Pattern::kDense);
      DenseMatrix c;
      multiply_into(c, a, b);
      expect_bitwise_equal(c, reference_multiply(a, b), "multiply_into");
      if (HasFatalFailure()) return;
    }
  }
}

// min(inner, cols) >= 512 routes to the (k, j)-tiled kernel; 513 also leaves
// a remainder strip in every block dimension. Tiling batches the same
// ascending-k additions per element (stores between k-blocks don't change
// values), so the tiled product must still be bit-identical to the naive
// reference.
TEST(DenseMultiplyKernels, TiledPathMatchesReferenceBitwise) {
  const size_t n = 513;
  const DenseMatrix a = random_matrix(n, n, 101, Pattern::kSparse);
  const DenseMatrix b = random_matrix(n, n, 102, Pattern::kDense);
  DenseMatrix c;
  multiply_into(c, a, b);
  expect_bitwise_equal(c, reference_multiply(a, b), "tiled multiply_into");
}

TEST(DenseMultiplyKernels, NonSquareShapesMatchReferenceBitwise) {
  struct Shape {
    size_t m, k, n;
  };
  const Shape shapes[] = {{7, 13, 9}, {1, 17, 5}, {33, 7, 33}, {64, 65, 3}};
  uint32_t seed = 201;
  for (const Shape& s : shapes) {
    const DenseMatrix a = random_matrix(s.m, s.k, seed++, Pattern::kSparse);
    const DenseMatrix b = random_matrix(s.k, s.n, seed++, Pattern::kDense);
    DenseMatrix c;
    multiply_into(c, a, b);
    expect_bitwise_equal(c, reference_multiply(a, b), "non-square multiply_into");
    if (HasFatalFailure()) return;
  }
}

// The a == 0.0 skip is load-bearing for non-finite inputs: a zero in A must
// suppress an inf/NaN in the corresponding B row exactly as it always has
// (0 * inf would otherwise inject NaN). The fixed-size kernels keep the skip,
// so this behavior is identical across dispatch.
TEST(DenseMultiplyKernels, ZeroSkipSuppressesNonFiniteExactlyLikeReference) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  for (size_t n : {3UL, 7UL, 17UL}) {
    DenseMatrix a = random_matrix(n, n, 301, Pattern::kDense);
    DenseMatrix b = random_matrix(n, n, 302, Pattern::kDense);
    a(0, 1) = 0.0;       // suppresses the inf below for row 0 outputs
    b(1, 0) = kInf;
    a(2, 2) = 0.0;       // suppresses the NaN below for row 2 outputs
    b(2, 2) = kNan;
    DenseMatrix c;
    multiply_into(c, a, b);
    const DenseMatrix want = reference_multiply(a, b);
    expect_bitwise_equal(c, want, "non-finite multiply_into");
    if (HasFatalFailure()) return;
    EXPECT_TRUE(std::isfinite(c(0, 1)));  // the zero really did suppress the inf
  }
}

TEST(FusedElementwise, WeightedSum3MatchesUnfusedChainBitwise) {
  for (size_t n : {7UL, 48UL}) {
    const DenseMatrix m1 = random_matrix(n, n, 401, Pattern::kDense);
    const DenseMatrix m2 = random_matrix(n, n, 402, Pattern::kSparse);
    const DenseMatrix m3 = random_matrix(n, n, 403, Pattern::kDense);
    const double c1 = 1.0 / 3.0, c2 = 0.7, c3 = -1.25e-3;

    DenseMatrix fused;
    weighted_sum3_into(fused, c1, m1, c2, m2, c3, m3);

    DenseMatrix unfused;
    scale_copy_into(unfused, m1, c1);
    add_scaled(unfused, c2, m2);
    add_scaled(unfused, c3, m3);
    expect_bitwise_equal(fused, unfused, "weighted_sum3_into");
    if (HasFatalFailure()) return;
  }
}

TEST(FusedElementwise, AddWeighted3MatchesUnfusedChainBitwise) {
  for (size_t n : {7UL, 48UL}) {
    const DenseMatrix m1 = random_matrix(n, n, 501, Pattern::kDense);
    const DenseMatrix m2 = random_matrix(n, n, 502, Pattern::kDense);
    const DenseMatrix m3 = random_matrix(n, n, 503, Pattern::kSparse);
    const DenseMatrix base = random_matrix(n, n, 504, Pattern::kDense);
    const double c1 = 0.31, c2 = -2.0 / 7.0, c3 = 5.5e4;

    DenseMatrix fused = base;
    add_weighted3(fused, c1, m1, c2, m2, c3, m3);

    DenseMatrix unfused = base;
    add_scaled(unfused, c1, m1);
    add_scaled(unfused, c2, m2);
    add_scaled(unfused, c3, m3);
    expect_bitwise_equal(fused, unfused, "add_weighted3");
    if (HasFatalFailure()) return;
  }
}

/// Classic unblocked right-looking LU with partial pivoting — the historical
/// algorithm the blocked factorization (panels of 64 + deferred trailing
/// update) must reproduce bit for bit, including pivot choices.
struct ReferenceLu {
  DenseMatrix lu;
  std::vector<size_t> perm;
  int sign = 1;

  explicit ReferenceLu(DenseMatrix a) : lu(std::move(a)), perm(lu.rows()) {
    const size_t n = lu.rows();
    for (size_t i = 0; i < n; ++i) perm[i] = i;
    for (size_t k = 0; k < n; ++k) {
      size_t pivot = k;
      double best = std::abs(lu(k, k));
      for (size_t r = k + 1; r < n; ++r) {
        const double v = std::abs(lu(r, k));
        if (v > best) {
          best = v;
          pivot = r;
        }
      }
      if (pivot != k) {
        for (size_t c = 0; c < n; ++c) std::swap(lu(k, c), lu(pivot, c));
        std::swap(perm[k], perm[pivot]);
        sign = -sign;
      }
      const double pivot_value = lu(k, k);
      for (size_t r = k + 1; r < n; ++r) {
        const double factor = lu(r, k) / pivot_value;
        lu(r, k) = factor;
        if (factor == 0.0) continue;
        for (size_t c = k + 1; c < n; ++c) lu(r, c) -= factor * lu(k, c);
      }
    }
  }

  /// The scalar substitution, same accumulation order as
  /// LuFactorization::solve.
  std::vector<double> solve(const std::vector<double>& b) const {
    const size_t n = lu.rows();
    std::vector<double> x(n);
    for (size_t i = 0; i < n; ++i) {
      double acc = b[perm[i]];
      for (size_t j = 0; j < i; ++j) acc -= lu(i, j) * x[j];
      x[i] = acc;
    }
    for (size_t i = n; i-- > 0;) {
      double acc = x[i];
      for (size_t j = i + 1; j < n; ++j) acc -= lu(i, j) * x[j];
      x[i] = acc / lu(i, i);
    }
    return x;
  }

  double determinant() const {
    double det = sign;
    for (size_t i = 0; i < lu.rows(); ++i) det *= lu(i, i);
    return det;
  }
};

std::vector<double> random_vector(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

/// Diagonally-dominated random matrix so every size factorizes without
/// pivoting pathologies (pivot choices still get exercised by the
/// off-diagonal noise).
DenseMatrix random_system(size_t n, uint32_t seed) {
  DenseMatrix m = random_matrix(n, n, seed, Pattern::kDense);
  for (size_t i = 0; i < n; ++i) m(i, i) += double(n);
  return m;
}

// Sizes straddling the kLuPanel = 64 boundary (64 = exactly one panel, 65 =
// first trailing update, 130 = multiple panels with remainder). The solve and
// determinant read the factors directly, so bitwise-equal outputs across
// several RHS pin the factors themselves.
TEST(BlockedLu, MatchesUnblockedReferenceBitwiseAcrossPanelBoundary) {
  uint32_t seed = 601;
  for (size_t n : {1UL, 2UL, 7UL, 8UL, 16UL, 33UL, 63UL, 64UL, 65UL, 100UL, 130UL}) {
    const DenseMatrix a = random_system(n, seed++);
    const LuFactorization blocked(a);
    const ReferenceLu reference(a);
    ASSERT_EQ(bits(blocked.determinant()), bits(reference.determinant())) << "n=" << n;
    for (uint32_t rhs = 0; rhs < 3; ++rhs) {
      const std::vector<double> b = random_vector(n, seed++);
      const std::vector<double> got = blocked.solve(b);
      const std::vector<double> want = reference.solve(b);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(bits(got[i]), bits(want[i])) << "n=" << n << " rhs=" << rhs << " i=" << i;
      }
    }
  }
}

// solve_into's contract (lu.hh): column c of the batched result is
// bit-identical to solve(column c). Covers the fixed-size substitution
// (square n <= 15), the generic batched path (n > 15 and non-square RHS),
// and the panel boundary.
TEST(BlockedLu, MultiRhsSolveMatchesPerColumnScalarSolveBitwise) {
  struct Case {
    size_t n, m;
  };
  const Case cases[] = {{1, 1}, {5, 5}, {7, 7}, {8, 8}, {13, 13}, {15, 15},
                        {16, 16}, {48, 48}, {65, 65}, {7, 3}, {15, 40}, {33, 5}};
  uint32_t seed = 701;
  for (const Case& c : cases) {
    const LuFactorization lu(random_system(c.n, seed++));
    const DenseMatrix rhs = random_matrix(c.n, c.m, seed++, Pattern::kSparse);
    DenseMatrix x;
    lu.solve_into(rhs, x);
    ASSERT_EQ(x.rows(), c.n);
    ASSERT_EQ(x.cols(), c.m);
    for (size_t col = 0; col < c.m; ++col) {
      std::vector<double> b(c.n);
      for (size_t r = 0; r < c.n; ++r) b[r] = rhs(r, col);
      const std::vector<double> want = lu.solve(b);
      for (size_t r = 0; r < c.n; ++r) {
        ASSERT_EQ(bits(x(r, col)), bits(want[r]))
            << "n=" << c.n << " m=" << c.m << " col=" << col << " row=" << r;
      }
    }
  }
}

}  // namespace
}  // namespace gop::linalg
