// Unit tests for the SAN model container, markings and expression helpers.

#include <gtest/gtest.h>

#include "san/expr.hh"
#include "san/marking.hh"
#include "san/model.hh"
#include "util/error.hh"

namespace gop::san {
namespace {

// --- marking -------------------------------------------------------------------

TEST(Marking, ConstructionAndAccess) {
  Marking m(3);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0], 0);
  m[1] = 7;
  EXPECT_EQ(m[1], 7);
}

TEST(Marking, EqualityByValue) {
  Marking a(std::vector<int32_t>{1, 2});
  Marking b(std::vector<int32_t>{1, 2});
  Marking c(std::vector<int32_t>{2, 1});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Marking, HashAgreesWithEquality) {
  MarkingHash hash;
  Marking a(std::vector<int32_t>{1, 0, 3});
  Marking b(std::vector<int32_t>{1, 0, 3});
  EXPECT_EQ(hash(a), hash(b));
}

TEST(Marking, HashSpreadsPermutations) {
  MarkingHash hash;
  EXPECT_NE(hash(Marking(std::vector<int32_t>{1, 0})), hash(Marking(std::vector<int32_t>{0, 1})));
}

TEST(Marking, ToString) {
  EXPECT_EQ(Marking(std::vector<int32_t>{1, 0, 2}).to_string(), "(1,0,2)");
  EXPECT_EQ(Marking().to_string(), "()");
}

// --- model ---------------------------------------------------------------------

TEST(SanModel, PlacesAndInitialMarking) {
  SanModel m("test");
  const PlaceRef a = m.add_place("a", 2);
  const PlaceRef b = m.add_place("b");
  EXPECT_EQ(m.place_count(), 2u);
  EXPECT_EQ(m.place_name(a), "a");
  const Marking init = m.initial_marking();
  EXPECT_EQ(init[a.index], 2);
  EXPECT_EQ(init[b.index], 0);
}

TEST(SanModel, PlaceLookupByName) {
  SanModel m("test");
  m.add_place("x");
  const PlaceRef y = m.add_place("y");
  EXPECT_EQ(m.place("y").index, y.index);
  EXPECT_THROW(m.place("nope"), InvalidArgument);
}

TEST(SanModel, DuplicatePlaceNameThrows) {
  SanModel m("test");
  m.add_place("x");
  EXPECT_THROW(m.add_place("x"), InvalidArgument);
}

TEST(SanModel, NegativeInitialTokensThrow) {
  SanModel m("test");
  EXPECT_THROW(m.add_place("x", -1), InvalidArgument);
}

TEST(SanModel, ActivityRegistryInterleavesKinds) {
  SanModel m("test");
  const PlaceRef p = m.add_place("p", 1);
  const ActivityRef t0 = m.add_timed_activity("t0", always(), constant_rate(1.0), no_effect());
  const ActivityRef i0 = m.add_instantaneous_activity("i0", mark_eq(p, 5), no_effect());
  const ActivityRef t1 = m.add_timed_activity("t1", always(), constant_rate(2.0), no_effect());

  EXPECT_TRUE(m.is_timed(t0));
  EXPECT_FALSE(m.is_timed(i0));
  EXPECT_TRUE(m.is_timed(t1));
  EXPECT_EQ(m.activity_name(t0), "t0");
  EXPECT_EQ(m.activity_name(i0), "i0");
  EXPECT_EQ(m.activity_name(t1), "t1");
  EXPECT_EQ(m.activity_count(), 3u);
  // timed_ref/instantaneous_ref invert the registry.
  EXPECT_EQ(m.timed_ref(1).index, t1.index);
  EXPECT_EQ(m.instantaneous_ref(0).index, i0.index);
}

TEST(SanModel, ActivityValidation) {
  SanModel m("test");
  EXPECT_THROW(m.add_timed_activity("", always(), constant_rate(1.0), no_effect()),
               InvalidArgument);
  EXPECT_THROW(m.add_timed_activity("t", nullptr, constant_rate(1.0), no_effect()),
               InvalidArgument);
  TimedActivity no_cases;
  no_cases.name = "t";
  no_cases.enabled = always();
  no_cases.rate = constant_rate(1.0);
  EXPECT_THROW(m.add_timed_activity(std::move(no_cases)), InvalidArgument);
}

TEST(SanModel, OutOfRangeRefsThrow) {
  SanModel m("test");
  EXPECT_THROW(m.activity_name(ActivityRef{0}), InvalidArgument);
  EXPECT_THROW(m.place_name(PlaceRef{0}), InvalidArgument);
  EXPECT_THROW(m.timed_ref(0), InvalidArgument);
}

// --- expression helpers ----------------------------------------------------------

TEST(Expr, MarkPredicates) {
  Marking m(std::vector<int32_t>{2, 0});
  const PlaceRef p0{0}, p1{1};
  EXPECT_TRUE(mark_eq(p0, 2)(m));
  EXPECT_FALSE(mark_eq(p1, 2)(m));
  EXPECT_TRUE(mark_ge(p0, 1)(m));
  EXPECT_FALSE(mark_ge(p1, 1)(m));
  EXPECT_TRUE(has_tokens(p0)(m));
  EXPECT_FALSE(has_tokens(p1)(m));
  EXPECT_TRUE(always()(m));
}

TEST(Expr, BooleanCombinators) {
  Marking m(std::vector<int32_t>{1, 0});
  const PlaceRef p0{0}, p1{1};
  EXPECT_TRUE(all_of({has_tokens(p0), mark_eq(p1, 0)})(m));
  EXPECT_FALSE(all_of({has_tokens(p0), has_tokens(p1)})(m));
  EXPECT_TRUE(any_of({has_tokens(p1), has_tokens(p0)})(m));
  EXPECT_FALSE(any_of({has_tokens(p1), mark_eq(p0, 5)})(m));
  EXPECT_TRUE(negate(has_tokens(p1))(m));
  EXPECT_THROW(all_of({}), InvalidArgument);
}

TEST(Expr, RatesAndProbabilities) {
  Marking m(std::vector<int32_t>{3});
  EXPECT_DOUBLE_EQ(constant_rate(2.5)(m), 2.5);
  EXPECT_THROW(constant_rate(0.0), InvalidArgument);
  EXPECT_DOUBLE_EQ(constant_prob(0.25)(m), 0.25);
  EXPECT_THROW(constant_prob(1.5), InvalidArgument);
  EXPECT_DOUBLE_EQ(complement_prob(constant_prob(0.25))(m), 0.75);
  EXPECT_DOUBLE_EQ(rate_per_token(PlaceRef{0}, 2.0)(m), 6.0);
}

TEST(Expr, Effects) {
  Marking m(std::vector<int32_t>{1, 1});
  const PlaceRef p0{0}, p1{1};
  set_mark(p0, 5)(m);
  EXPECT_EQ(m[0], 5);
  add_mark(p1, 2)(m);
  EXPECT_EQ(m[1], 3);
  add_mark(p1, -3)(m);
  EXPECT_EQ(m[1], 0);
  EXPECT_THROW(add_mark(p1, -1)(m), InternalError);  // would go negative
  no_effect()(m);
  EXPECT_EQ(m[0], 5);
}

TEST(Expr, SequenceAppliesInOrder) {
  Marking m(std::vector<int32_t>{0});
  const PlaceRef p{0};
  sequence({set_mark(p, 3), add_mark(p, 1)})(m);
  EXPECT_EQ(m[0], 4);
}

TEST(Expr, WhenGuardsEffect) {
  Marking m(std::vector<int32_t>{0, 0});
  const PlaceRef p0{0}, p1{1};
  when(has_tokens(p0), set_mark(p1, 9))(m);
  EXPECT_EQ(m[1], 0);
  m[0] = 1;
  when(has_tokens(p0), set_mark(p1, 9))(m);
  EXPECT_EQ(m[1], 9);
}

}  // namespace
}  // namespace gop::san
