// Tests for accumulated (interval-of-time) reward solutions: the augmented
// exponential, the uniformization integral, and impulse rewards.

#include <gtest/gtest.h>

#include <cmath>

#include "markov/accumulated.hh"
#include "util/error.hh"

namespace gop::markov {
namespace {

Ctmc two_state(double a, double b) {
  return Ctmc(2, {{0, 1, a, 0}, {1, 0, b, 1}}, {1.0, 0.0});
}

Ctmc pure_death(double a) { return Ctmc(2, {{0, 1, a, 0}}, {1.0, 0.0}); }

/// Closed form: expected time in state 0 over [0,t] for the two-state chain.
double two_state_l0(double a, double b, double t) {
  const double s = a + b;
  return b / s * t + a / (s * s) * (1.0 - std::exp(-s * t));
}

TEST(Accumulated, OccupancySumsToHorizon) {
  const Ctmc chain = two_state(2.0, 3.0);
  for (double t : {0.1, 1.0, 10.0}) {
    const std::vector<double> occ = accumulated_occupancy(chain, t);
    EXPECT_NEAR(occ[0] + occ[1], t, 1e-9 * std::max(1.0, t));
  }
}

TEST(Accumulated, MatchesClosedFormTwoState) {
  const double a = 2.0, b = 3.0;
  const Ctmc chain = two_state(a, b);
  for (double t : {0.25, 1.0, 5.0}) {
    const std::vector<double> occ = accumulated_occupancy(chain, t);
    EXPECT_NEAR(occ[0], two_state_l0(a, b, t), 1e-10) << "t=" << t;
  }
}

TEST(Accumulated, PureDeathMeanTimeInTransientState) {
  // Expected time in state 0 by t: (1 - exp(-a t)) / a.
  const double a = 0.5;
  const Ctmc chain = pure_death(a);
  const double t = 3.0;
  const std::vector<double> occ = accumulated_occupancy(chain, t);
  EXPECT_NEAR(occ[0], (1.0 - std::exp(-a * t)) / a, 1e-11);
}

TEST(Accumulated, ZeroHorizonIsZero) {
  const Ctmc chain = two_state(1.0, 1.0);
  const std::vector<double> occ = accumulated_occupancy(chain, 0.0);
  EXPECT_DOUBLE_EQ(occ[0], 0.0);
  EXPECT_DOUBLE_EQ(occ[1], 0.0);
}

TEST(Accumulated, EnginesAgree) {
  const Ctmc chain(3, {{0, 1, 2.0, 0}, {1, 2, 1.0, 1}, {2, 0, 0.5, 2}}, {1.0, 0.0, 0.0});
  for (double t : {0.5, 2.0, 8.0}) {
    AccumulatedOptions augmented;
    augmented.method = AccumulatedMethod::kAugmentedExponential;
    AccumulatedOptions unif;
    unif.method = AccumulatedMethod::kUniformization;
    const std::vector<double> a = accumulated_occupancy(chain, t, augmented);
    const std::vector<double> b = accumulated_occupancy(chain, t, unif);
    for (size_t s = 0; s < 3; ++s) EXPECT_NEAR(a[s], b[s], 1e-9) << "t=" << t << " s=" << s;
  }
}

TEST(Accumulated, StiffHorizonViaAugmentedExponential) {
  // Expected time in state 0 for a stiff chain over a long horizon; compare
  // to the closed form (uniformization would need ~2e7 terms here).
  const double a = 1e3, b = 1e3;
  const Ctmc chain = two_state(a, b);
  const double t = 1e4;
  const std::vector<double> occ = accumulated_occupancy(chain, t);
  EXPECT_NEAR(occ[0] / two_state_l0(a, b, t), 1.0, 1e-9);
}

TEST(Accumulated, RateReward) {
  const double a = 2.0, b = 3.0, t = 1.5;
  const Ctmc chain = two_state(a, b);
  // Reward 2 in state 0, 1 in state 1: 2*L0 + (t - L0).
  const double expected = 2.0 * two_state_l0(a, b, t) + (t - two_state_l0(a, b, t));
  EXPECT_NEAR(accumulated_reward(chain, {2.0, 1.0}, t), expected, 1e-10);
}

TEST(Accumulated, RewardLengthMismatchThrows) {
  const Ctmc chain = two_state(1.0, 1.0);
  EXPECT_THROW(accumulated_reward(chain, {1.0}, 1.0), InvalidArgument);
}

TEST(Accumulated, ImpulseCountsExpectedCompletions) {
  // Pure death at rate a: expected number of 0->1 completions by t is
  // P(jump happened) = 1 - exp(-a t); with impulse 1 on that transition the
  // accumulated impulse reward equals exactly that.
  const double a = 0.8, t = 2.0;
  const Ctmc chain = pure_death(a);
  const auto impulse = [](const Transition& tr) { return tr.label == 0 ? 1.0 : 0.0; };
  EXPECT_NEAR(accumulated_impulse_reward(chain, impulse, t), 1.0 - std::exp(-a * t), 1e-11);
}

TEST(Accumulated, ImpulseOnRecurrentChainGrowsLinearly) {
  // Two-state chain: long-run completion rate of the 0->1 transition is
  // pi_0 * a; over a long horizon the expected count approaches that rate
  // times t.
  const double a = 2.0, b = 3.0, t = 1000.0;
  const Ctmc chain = two_state(a, b);
  const auto impulse = [](const Transition& tr) { return tr.label == 0 ? 1.0 : 0.0; };
  const double expected_rate = b / (a + b) * a;
  EXPECT_NEAR(accumulated_impulse_reward(chain, impulse, t) / t, expected_rate, 1e-3);
}

TEST(Accumulated, ImpulseOnSelfLoopCounts) {
  // A self-loop completes at its rate while the state is occupied, even
  // though it never changes the state.
  const Ctmc chain(1, {{0, 0, 4.0, 7}}, {1.0});
  const auto impulse = [](const Transition& tr) { return tr.label == 7 ? 1.0 : 0.0; };
  EXPECT_NEAR(accumulated_impulse_reward(chain, impulse, 2.5), 10.0, 1e-10);
}

TEST(Accumulated, NullImpulseThrows) {
  const Ctmc chain = two_state(1.0, 1.0);
  EXPECT_THROW(accumulated_impulse_reward(chain, nullptr, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace gop::markov
