#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "par/parallel_for.hh"
#include "par/thread_pool.hh"
#include "util/error.hh"

namespace gop::par {
namespace {

TEST(DefaultThreadCount, HonorsGopThreadsEnvVar) {
  ASSERT_EQ(setenv("GOP_THREADS", "3", 1), 0);
  EXPECT_EQ(default_thread_count(), 3u);
  ASSERT_EQ(setenv("GOP_THREADS", "garbage", 1), 0);
  const size_t fallback = default_thread_count();
  ASSERT_EQ(unsetenv("GOP_THREADS"), 0);
  EXPECT_EQ(fallback, default_thread_count());  // unparsable value = unset
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder) {
  std::vector<int> order;
  std::mutex mutex;
  std::condition_variable done;
  size_t pending = 32;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&, i] {
        std::lock_guard<std::mutex> lock(mutex);
        order.push_back(i);
        if (--pending == 0) done.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(mutex);
    done.wait(lock, [&] { return pending == 0; });
  }
  std::vector<int> expected(32);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // FIFO queue + one worker = submission order
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor joins only after the queue is drained
  EXPECT_EQ(executed.load(), 100);
}

TEST(ThreadPool, SubmitRejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>()), gop::InvalidArgument);
}

TEST(ParallelFor, ResultsLandInIndexOrder) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<size_t> out(n, 0);
  parallel_for(pool, n, 7, [&out](size_t i) { out[i] = i * i; });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelFor, PoolIsReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::vector<int> out(64, -1);
    parallel_for(pool, out.size(), 3, [&out, round](size_t i) {
      out[i] = round + static_cast<int>(i);
    });
    for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], round + static_cast<int>(i));
  }
}

TEST(ParallelFor, PropagatesExceptionFromWorker) {
  ThreadPool pool(4);
  std::atomic<size_t> ran{0};
  const auto body = [&ran](size_t i) {
    if (i == 37) throw std::runtime_error("boom at 37");
    ran.fetch_add(1, std::memory_order_relaxed);
  };
  EXPECT_THROW(parallel_for(pool, 100, 1, body), std::runtime_error);
  // Every non-throwing index still ran: the join waits for all chunks even
  // when one fails (no task left touching dead stack frames).
  EXPECT_EQ(ran.load(), 99u);
}

TEST(ParallelFor, LowestIndexChunkExceptionWins) {
  ThreadPool pool(4);
  const auto body = [](size_t i) {
    if (i == 10) throw std::runtime_error("error at 10");
    if (i == 90) throw std::out_of_range("error at 90");
  };
  for (int attempt = 0; attempt < 10; ++attempt) {
    try {
      parallel_for(pool, 100, 1, body);
      FAIL() << "parallel_for should have thrown";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "error at 10");
    }
    // std::out_of_range derives from std::logic_error, not runtime_error: had
    // index 90's exception been chosen, the catch above would not match and
    // the test would error out — regardless of which chunk finished first.
  }
}

TEST(ParallelFor, SerialFallbackRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  parallel_for(pool, seen.size(), 4, [&seen](size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);

  // Pool-less overload with threads = 1: also inline, and no pool is built.
  std::fill(seen.begin(), seen.end(), std::thread::id());
  parallel_for(
      seen.size(), 4, [&seen](size_t i) { seen[i] = std::this_thread::get_id(); }, 1);
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, HandlesEmptyAndSingleChunkRanges) {
  ThreadPool pool(4);
  parallel_for(pool, 0, 8, [](size_t) { FAIL() << "no indices to run"; });
  std::vector<int> out(5, 0);
  parallel_for(pool, out.size(), 100, [&out](size_t i) { out[i] = 1; });  // one chunk -> inline
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 5);
}

TEST(OrderedTransform, PlacesResultsByIndex) {
  ThreadPool pool(4);
  const std::vector<double> values =
      ordered_transform<double>(pool, 257, 5, [](size_t i) { return 0.5 * static_cast<double>(i); });
  ASSERT_EQ(values.size(), 257u);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ(values[i], 0.5 * static_cast<double>(i));
  }
}

}  // namespace
}  // namespace gop::par
