// Tests for GeneratedChain::solve_grid / ChainSession (san/session.hh):
// bit-identity with the pointwise GeneratedChain reward calls on both solver
// engines, impulse rewards through the shared occupancy solve, and the
// transient/accumulated gating.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "san/expr.hh"
#include "san/session.hh"
#include "util/error.hh"

namespace gop::san {
namespace {

/// A simple cyclic two-place SAN: token moves a <-> b.
struct TogglePair {
  SanModel model{"toggle"};
  PlaceRef a = model.add_place("a", 1);
  PlaceRef b = model.add_place("b");

  TogglePair(double forward = 2.0, double backward = 3.0) {
    model.add_timed_activity("fwd", has_tokens(a), constant_rate(forward),
                             sequence({add_mark(a, -1), add_mark(b, 1)}));
    model.add_timed_activity("bwd", has_tokens(b), constant_rate(backward),
                             sequence({add_mark(b, -1), add_mark(a, 1)}));
  }
};

void expect_same_bits(double got, double want, double t) {
  EXPECT_EQ(std::bit_cast<uint64_t>(got), std::bit_cast<uint64_t>(want))
      << "at t=" << t << ": " << got << " vs " << want;
}

const std::vector<double> kTimes{0.0, 0.1, 0.4, 0.4, 2.0};

TEST(ChainSession, InstantRewardMatchesPointwiseBitForBit) {
  TogglePair toggle;
  const GeneratedChain chain = generate_state_space(toggle.model);
  RewardStructure reward;
  reward.add(has_tokens(toggle.a), 2.5);
  reward.add(always(), 0.5);

  const ChainSession session = chain.solve_grid(kTimes);
  const std::vector<double> series = session.instant_reward_series(reward);
  for (size_t i = 0; i < kTimes.size(); ++i) {
    const double pointwise = chain.instant_reward(reward, kTimes[i]);
    expect_same_bits(session.instant_reward(reward, i), pointwise, kTimes[i]);
    expect_same_bits(series[i], pointwise, kTimes[i]);
    expect_same_bits(session.transient_probability(has_tokens(toggle.a), i),
                     chain.transient_probability(has_tokens(toggle.a), kTimes[i]), kTimes[i]);
  }
}

TEST(ChainSession, AccumulatedRewardMatchesPointwiseBitForBit) {
  TogglePair toggle;
  const ActivityRef fwd_ref = toggle.model.timed_ref(0);
  const GeneratedChain chain = generate_state_space(toggle.model);
  RewardStructure rate_reward;
  rate_reward.add(has_tokens(toggle.b), 1.0);
  RewardStructure impulse_reward;
  impulse_reward.add_impulse(fwd_ref, 1.0);

  GridSolveOptions options;
  options.accumulated = true;
  const ChainSession session = chain.solve_grid(kTimes, options);
  const std::vector<double> series = session.accumulated_reward_series(impulse_reward);
  for (size_t i = 0; i < kTimes.size(); ++i) {
    expect_same_bits(session.accumulated_reward(rate_reward, i),
                     chain.accumulated_reward(rate_reward, kTimes[i]), kTimes[i]);
    const double pointwise = chain.accumulated_reward(impulse_reward, kTimes[i]);
    expect_same_bits(session.accumulated_reward(impulse_reward, i), pointwise, kTimes[i]);
    expect_same_bits(series[i], pointwise, kTimes[i]);
  }
}

TEST(ChainSession, UniformizationEngineMatchesPointwiseBitForBit) {
  TogglePair toggle;
  const GeneratedChain chain = generate_state_space(toggle.model);
  RewardStructure reward;
  reward.add(has_tokens(toggle.a), 1.0);

  GridSolveOptions options;
  options.accumulated = true;
  options.transient_options.method = markov::TransientMethod::kUniformization;
  options.accumulated_options.method = markov::AccumulatedMethod::kUniformization;
  const ChainSession session = chain.solve_grid(kTimes, options);
  for (size_t i = 0; i < kTimes.size(); ++i) {
    expect_same_bits(session.instant_reward(reward, i),
                     chain.instant_reward(reward, kTimes[i], options.transient_options),
                     kTimes[i]);
    expect_same_bits(session.accumulated_reward(reward, i),
                     chain.accumulated_reward(reward, kTimes[i], options.accumulated_options),
                     kTimes[i]);
  }
}

TEST(ChainSession, PartsNotRequestedThrow) {
  TogglePair toggle;
  const GeneratedChain chain = generate_state_space(toggle.model);
  RewardStructure reward;
  reward.add(always(), 1.0);

  const ChainSession transient_only = chain.solve_grid({0.5});
  EXPECT_TRUE(transient_only.has_transient());
  EXPECT_FALSE(transient_only.has_accumulated());
  EXPECT_THROW(transient_only.accumulated_reward(reward, 0), InvalidArgument);

  GridSolveOptions accumulated_only;
  accumulated_only.transient = false;
  accumulated_only.accumulated = true;
  const ChainSession session = chain.solve_grid({0.5}, accumulated_only);
  EXPECT_THROW(session.instant_reward(reward, 0), InvalidArgument);
  EXPECT_NO_THROW(session.accumulated_reward(reward, 0));

  GridSolveOptions neither;
  neither.transient = false;
  EXPECT_THROW(chain.solve_grid({0.5}, neither), InvalidArgument);
}

TEST(ChainSession, ImpulseOnInstantaneousActivityRejected) {
  SanModel m("impulse_inst");
  const PlaceRef a = m.add_place("a", 1);
  const PlaceRef b = m.add_place("b");
  m.add_timed_activity("t", has_tokens(a), constant_rate(1.0),
                       sequence({add_mark(a, -1), add_mark(b, 1)}));
  const ActivityRef inst = m.add_instantaneous_activity(
      "i", [](const Marking&) { return false; }, no_effect());
  const GeneratedChain chain = generate_state_space(m);
  RewardStructure reward;
  reward.add_impulse(inst, 1.0);

  GridSolveOptions options;
  options.accumulated = true;
  const ChainSession session = chain.solve_grid({1.0}, options);
  EXPECT_THROW(session.accumulated_reward(reward, 0), InvalidArgument);
}

}  // namespace
}  // namespace gop::san
