// The differential equivalence battery for the SAN template layer
// (docs/templates.md). The headline risk of re-expressing the paper models
// as templates is semantic drift, so the battery pins:
//  - every templated paper model at Table-3 defaults (and off-default
//    points) yields a chain with san::chain_hash equal to the hand-built
//    seed model's;
//  - PerformabilityAnalyzer results are std::bit_cast-identical across both
//    construction paths, for both solver engines and 1/2/4 threads;
//  - the "random" family is bit-identical to the legacy free-standing
//    generator (a verbatim copy of which lives in this file) and to pinned
//    hash literals;
//  - resolution, coercion, range validation, and param_hash sensitivity.

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/performability.hh"
#include "core/templates.hh"
#include "san/compose.hh"
#include "san/expr.hh"
#include "san/hash.hh"
#include "san/random_model.hh"
#include "san/registry.hh"
#include "san/state_space.hh"
#include "san/template.hh"
#include "sim/rng.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop {
namespace {

using san::tpl::Assignment;
using san::tpl::ParamValue;

bool bits_equal(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

void expect_bits_equal(const core::PerformabilityResult& a,
                       const core::PerformabilityResult& b) {
  EXPECT_TRUE(bits_equal(a.phi, b.phi));
  EXPECT_TRUE(bits_equal(a.y, b.y));
  EXPECT_TRUE(bits_equal(a.e_wi, b.e_wi));
  EXPECT_TRUE(bits_equal(a.e_w0, b.e_w0));
  EXPECT_TRUE(bits_equal(a.e_wphi, b.e_wphi));
  EXPECT_TRUE(bits_equal(a.y_s1, b.y_s1));
  EXPECT_TRUE(bits_equal(a.y_s2, b.y_s2));
  EXPECT_TRUE(bits_equal(a.gamma, b.gamma));
  EXPECT_TRUE(bits_equal(a.measures.p_a1_phi, b.measures.p_a1_phi));
  EXPECT_TRUE(bits_equal(a.measures.i_h, b.measures.i_h));
  EXPECT_TRUE(bits_equal(a.measures.i_tau_h, b.measures.i_tau_h));
  EXPECT_TRUE(bits_equal(a.measures.i_hf, b.measures.i_hf));
  EXPECT_TRUE(bits_equal(a.measures.rho1, b.measures.rho1));
  EXPECT_TRUE(bits_equal(a.measures.rho2, b.measures.rho2));
  EXPECT_TRUE(bits_equal(a.measures.p_nd_theta, b.measures.p_nd_theta));
  EXPECT_TRUE(bits_equal(a.measures.p_nd_rest, b.measures.p_nd_rest));
  EXPECT_TRUE(bits_equal(a.measures.i_f, b.measures.i_f));
}

uint64_t hash_of(const san::SanModel& model) {
  return san::chain_hash(san::generate_state_space(model));
}

uint64_t family_hash(const std::string& family, const Assignment& overrides = {}) {
  return hash_of(*core::template_registry().find(family).instantiate(overrides).model);
}

// --- templated paper models vs the hand-built seeds -------------------------

TEST(SanTemplatePaper, ChainHashIdenticalAtTable3Defaults) {
  const core::GsuParameters t3 = core::GsuParameters::table3();
  EXPECT_EQ(family_hash("rmgd"), hash_of(core::build_rm_gd(t3).model));
  EXPECT_EQ(family_hash("rmgp"), hash_of(core::build_rm_gp(t3).model));
  EXPECT_EQ(family_hash("rmnd-new"), hash_of(core::build_rm_nd(t3, t3.mu_new).model));
  EXPECT_EQ(family_hash("rmnd-old"), hash_of(core::build_rm_nd(t3, t3.mu_old).model));
}

TEST(SanTemplatePaper, ChainHashIdenticalOffDefaults) {
  core::GsuParameters params = core::GsuParameters::table3();
  params.lambda = 900.0;
  params.coverage = 0.8;
  params.p_ext = 0.25;
  Assignment overrides;
  overrides.set_real("lambda", 900.0).set_real("coverage", 0.8).set_real("p_ext", 0.25);

  EXPECT_EQ(family_hash("rmgd", overrides), hash_of(core::build_rm_gd(params).model));
  EXPECT_EQ(family_hash("rmgp", overrides), hash_of(core::build_rm_gp(params).model));
  EXPECT_EQ(family_hash("rmnd-new", overrides),
            hash_of(core::build_rm_nd(params, params.mu_new).model));
  EXPECT_EQ(family_hash("rmnd-old", overrides),
            hash_of(core::build_rm_nd(params, params.mu_old).model));
}

TEST(SanTemplatePaper, AtPolicyVariantMatchesRmGdOptions) {
  const core::GsuParameters t3 = core::GsuParameters::table3();
  Assignment timed;
  timed.set_enum("at_policy", "timed");
  core::RmGdOptions options;
  options.instantaneous_at = false;

  const uint64_t templated = family_hash("rmgd", timed);
  EXPECT_EQ(templated, hash_of(core::build_rm_gd(t3, options).model));
  EXPECT_NE(templated, family_hash("rmgd"));  // the variant is a different chain
}

TEST(SanTemplatePaper, DurationStagesVariantMatchesRmGpOptions) {
  const core::GsuParameters t3 = core::GsuParameters::table3();
  Assignment erlang;
  erlang.set_int("duration_stages", 3);
  core::RmGpOptions options;
  options.duration_stages = 3;

  const uint64_t templated = family_hash("rmgp", erlang);
  EXPECT_EQ(templated, hash_of(core::build_rm_gp(t3, options).model));
  EXPECT_NE(templated, family_hash("rmgp"));
}

TEST(SanTemplatePaper, GsuRoundTripsThroughAssignment) {
  const core::GsuParameters via_template = core::gsu_from_assignment(
      core::template_registry().find("rmgd").resolve({}));
  const core::GsuParameters t3 = core::GsuParameters::table3();
  EXPECT_TRUE(bits_equal(via_template.theta, t3.theta));
  EXPECT_TRUE(bits_equal(via_template.lambda, t3.lambda));
  EXPECT_TRUE(bits_equal(via_template.mu_new, t3.mu_new));
  EXPECT_TRUE(bits_equal(via_template.mu_old, t3.mu_old));
  EXPECT_TRUE(bits_equal(via_template.coverage, t3.coverage));
  EXPECT_TRUE(bits_equal(via_template.p_ext, t3.p_ext));
  EXPECT_TRUE(bits_equal(via_template.alpha, t3.alpha));
  EXPECT_TRUE(bits_equal(via_template.beta, t3.beta));
}

/// Analyzer results must be bit-identical whether the Table-3 parameters come
/// from GsuParameters::table3() directly or through a resolved template
/// assignment — for both transient engines and at 1/2/4 threads.
TEST(SanTemplatePaper, AnalyzerBitIdenticalAcrossConstructionPaths) {
  const std::vector<double> phis = {0.0, 2500.0, 7000.0};
  const core::GsuParameters from_template = core::gsu_from_assignment(
      core::template_registry().find("rmgd").resolve({}));
  const core::GsuParameters hand_built = core::GsuParameters::table3();

  for (const markov::TransientMethod method :
       {markov::TransientMethod::kMatrixExponential, markov::TransientMethod::kAuto}) {
    core::AnalyzerOptions options;
    options.transient.method = method;
    const core::PerformabilityAnalyzer templated(from_template, options);
    const core::PerformabilityAnalyzer seed(hand_built, options);
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      const auto a = templated.evaluate_batch(phis, threads);
      const auto b = seed.evaluate_batch(phis, threads);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) expect_bits_equal(a[i], b[i]);
    }
  }
}

// --- resolution, coercion, validation ---------------------------------------

TEST(SanTemplateResolve, DefaultsFillEveryParameter) {
  const san::tpl::Template& nproc = core::template_registry().find("nproc");
  const Assignment resolved = nproc.resolve({});
  EXPECT_EQ(resolved.int_at("n"), 2);
  EXPECT_EQ(resolved.int_at("servers"), 1);
  EXPECT_DOUBLE_EQ(resolved.real_at("fail_rate"), 0.1);
  EXPECT_DOUBLE_EQ(resolved.real_at("repair_rate"), 1.0);
  EXPECT_EQ(resolved.size(), nproc.params().size());
}

TEST(SanTemplateResolve, RejectsUnknownParam) {
  Assignment a;
  a.set_int("no_such_param", 1);
  EXPECT_THROW(core::template_registry().find("nproc").resolve(a), InvalidArgument);
}

TEST(SanTemplateResolve, RejectsOutOfRange) {
  Assignment a;
  a.set_int("n", 99);
  EXPECT_THROW(core::template_registry().find("nproc").resolve(a), InvalidArgument);
  Assignment b;
  b.set_real("coverage", 1.5);
  EXPECT_THROW(core::template_registry().find("rmgd").resolve(b), InvalidArgument);
}

TEST(SanTemplateResolve, CoercesIntegralRealToIntAndIntToReal) {
  Assignment a;
  a.set_real("n", 3.0);        // integral real -> int
  a.set_int("fail_rate", 2);   // int -> real
  const Assignment resolved = core::template_registry().find("nproc").resolve(a);
  EXPECT_EQ(resolved.int_at("n"), 3);
  EXPECT_DOUBLE_EQ(resolved.real_at("fail_rate"), 2.0);

  Assignment bad;
  bad.set_real("n", 2.5);  // non-integral real is not an int
  EXPECT_THROW(core::template_registry().find("nproc").resolve(bad), InvalidArgument);
}

TEST(SanTemplateResolve, RejectsBadEnumChoice) {
  Assignment a;
  a.set_enum("at_policy", "sometimes");
  EXPECT_THROW(core::template_registry().find("rmgd").resolve(a), InvalidArgument);
}

TEST(SanTemplateResolve, ParseClassifiesValues) {
  EXPECT_EQ(ParamValue::parse("42").kind, san::tpl::ParamKind::kInt);
  EXPECT_EQ(ParamValue::parse("-3").kind, san::tpl::ParamKind::kInt);
  EXPECT_EQ(ParamValue::parse("2.5").kind, san::tpl::ParamKind::kReal);
  EXPECT_EQ(ParamValue::parse("1e-4").kind, san::tpl::ParamKind::kReal);
  EXPECT_EQ(ParamValue::parse("timed").kind, san::tpl::ParamKind::kEnum);
}

TEST(SanTemplateHash, ParamHashSensitivityAndOrderIndependence) {
  const san::tpl::Template& nproc = core::template_registry().find("nproc");
  const uint64_t base = san::tpl::param_hash(nproc.resolve({}));

  // Deterministic.
  EXPECT_EQ(base, san::tpl::param_hash(nproc.resolve({})));

  // Insertion order does not matter.
  Assignment fwd, rev;
  fwd.set_int("n", 3).set_real("fail_rate", 0.2);
  rev.set_real("fail_rate", 0.2).set_int("n", 3);
  EXPECT_EQ(san::tpl::param_hash(nproc.resolve(fwd)), san::tpl::param_hash(nproc.resolve(rev)));

  // An int change, a 1-ulp real change, and an enum change all flip the hash.
  Assignment n3;
  n3.set_int("n", 3);
  EXPECT_NE(base, san::tpl::param_hash(nproc.resolve(n3)));

  Assignment ulp;
  ulp.set_real("fail_rate", std::nextafter(0.1, 1.0));
  EXPECT_NE(base, san::tpl::param_hash(nproc.resolve(ulp)));

  const san::tpl::Template& rmgd = core::template_registry().find("rmgd");
  Assignment timed;
  timed.set_enum("at_policy", "timed");
  EXPECT_NE(san::tpl::param_hash(rmgd.resolve({})), san::tpl::param_hash(rmgd.resolve(timed)));
}

// --- the composed san-level families ----------------------------------------

TEST(SanTemplateNproc, StructureAndRewards) {
  Assignment a;
  a.set_int("n", 3).set_int("servers", 1);
  san::tpl::Instance instance = core::template_registry().find("nproc").instantiate(a);

  // One shared pool + 3 places per replica.
  EXPECT_EQ(instance.model->place_count(), 1u + 3u * 3u);
  EXPECT_EQ(instance.rewards.size(), 3u);

  const san::GeneratedChain chain = san::generate_state_space(*instance.model);
  EXPECT_GT(chain.state_count(), 4u);

  // At t=0 everything is up: all_up == 1, degraded == 0, up_fraction == 1.
  for (const san::RewardStructure& reward : instance.rewards) {
    const double at0 = chain.instant_reward(reward, 0.0);
    if (reward.name() == "degraded") {
      EXPECT_DOUBLE_EQ(at0, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(at0, 1.0);
    }
  }

  // Later, availability drops below 1 but stays positive.
  const san::RewardStructure& all_up = instance.rewards.front();
  ASSERT_EQ(all_up.name(), "all_up");
  const double later = chain.instant_reward(all_up, 5.0);
  EXPECT_GT(later, 0.0);
  EXPECT_LT(later, 1.0);
}

TEST(SanTemplateNproc, SharedPoolCouplesReplicas) {
  // With a server per replica the acquire activity is always enabled, so
  // every "down" marking is vanishing and each replica is effectively
  // up/fixing: 2^n tangible states. With a single shared server, replicas
  // queue in "down" waiting for the pool — the coupling creates strictly
  // more tangible states than the uncoupled product.
  Assignment one_server;
  one_server.set_int("n", 3).set_int("servers", 1);
  Assignment many_servers;
  many_servers.set_int("n", 3).set_int("servers", 3);
  const auto& nproc = core::template_registry().find("nproc");
  const size_t coupled =
      san::generate_state_space(*nproc.instantiate(one_server).model).state_count();
  const size_t uncoupled =
      san::generate_state_space(*nproc.instantiate(many_servers).model).state_count();
  EXPECT_EQ(uncoupled, 8u);  // 2^3: up/fixing per replica
  EXPECT_GT(coupled, uncoupled);
}

TEST(SanTemplateCampaign, CompletionIsMonotoneAndStagesCompose) {
  Assignment a;
  a.set_int("stages", 3);
  san::tpl::Instance instance = core::template_registry().find("upgrade-campaign").instantiate(a);
  const san::GeneratedChain chain = san::generate_state_space(*instance.model);

  const san::RewardStructure& completed = instance.rewards.front();
  ASSERT_EQ(completed.name(), "completed");
  double previous = -1.0;
  for (const double t : {0.0, 1.0, 3.0, 10.0, 40.0}) {
    const double p = chain.instant_reward(completed, t);
    EXPECT_GE(p, previous);  // done places are absorbing under "absorb"
    previous = p;
  }
  // All three stages succeed with probability 0.9^3 eventually.
  EXPECT_NEAR(previous, 0.9 * 0.9 * 0.9, 5e-3);
}

TEST(SanTemplateCampaign, RetryPolicyEventuallyCompletesEverything) {
  Assignment a;
  a.set_int("stages", 2).set_enum("on_failure", "retry");
  san::tpl::Instance instance = core::template_registry().find("upgrade-campaign").instantiate(a);
  const san::GeneratedChain chain = san::generate_state_space(*instance.model);
  const san::RewardStructure& completed = instance.rewards.front();
  EXPECT_NEAR(chain.instant_reward(completed, 200.0), 1.0, 1e-6);
}

// --- the random family vs the legacy generator ------------------------------

/// A verbatim copy of the pre-registry san::random_san implementation. The
/// generator now lives in the registry's "random" family; this copy is the
/// differential baseline proving the re-homing kept every chain bit.
san::SanModel legacy_random_san(uint64_t seed, const san::RandomModelOptions& options) {
  sim::Rng rng(seed);
  san::SanModel model(str_format("random-san-%llu", static_cast<unsigned long long>(seed)));

  const size_t places =
      options.min_places + rng.uniform_index(options.max_places - options.min_places + 1);
  std::vector<san::PlaceRef> refs;
  refs.reserve(places);
  for (size_t p = 0; p < places; ++p) {
    refs.push_back(
        model.add_place(str_format("p%zu", p), options.place_capacity, options.place_capacity));
  }

  const size_t activities =
      options.min_activities +
      rng.uniform_index(options.max_activities - options.min_activities + 1);
  const int32_t capacity = options.place_capacity;
  for (size_t a = 0; a < activities; ++a) {
    const size_t source = rng.uniform_index(places);
    const double rate = rng.uniform(options.min_rate, options.max_rate);
    const size_t case_count = 1 + rng.uniform_index(options.max_cases);

    std::vector<uint64_t> weights(case_count);
    uint64_t total = 0;
    for (uint64_t& w : weights) {
      w = 1 + rng.uniform_index(4);
      total += w;
    }

    san::TimedActivity activity;
    activity.name = str_format("a%zu", a);
    activity.enabled = san::mark_ge(refs[source], 1);
    activity.rate = san::constant_rate(rate);
    for (size_t c = 0; c < case_count; ++c) {
      const size_t target = rng.uniform_index(places);
      const double p = static_cast<double>(weights[c]) / static_cast<double>(total);
      activity.cases.push_back(san::Case{
          san::constant_prob(p),
          san::sequence({san::add_mark(refs[source], -1),
                         san::when(san::negate(san::mark_ge(refs[target], capacity)),
                                   san::add_mark(refs[target], 1))})});
    }
    model.add_timed_activity(std::move(activity));
  }
  return model;
}

TEST(SanTemplateRandom, RegistryFamilyMatchesLegacyGeneratorBitForBit) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    san::RandomModelOptions options;
    options.max_places = 2 + seed % 4;
    options.max_activities = 3 + seed % 3;
    options.place_capacity = static_cast<int32_t>(1 + seed % 3);

    Assignment a;
    a.set_int("seed", static_cast<int64_t>(seed));
    a.set_int("max_places", static_cast<int64_t>(options.max_places));
    a.set_int("max_activities", static_cast<int64_t>(options.max_activities));
    a.set_int("place_capacity", options.place_capacity);

    const uint64_t legacy = hash_of(legacy_random_san(seed, options));
    EXPECT_EQ(family_hash("random", a), legacy) << "seed " << seed;
    EXPECT_EQ(hash_of(san::random_san(seed, options)), legacy) << "seed " << seed;
  }
}

TEST(SanTemplateRandom, PinnedSeedHashes) {
  // Chain hashes of the default-option random family at fixed seeds. These
  // literals pin the generator's output across refactors; they must never
  // change (san::chain_hash is platform-independent FNV-1a over canonical
  // bytes).
  struct Pin {
    uint64_t seed;
    uint64_t hash;
  };
  const Pin pins[] = {
      {1, 0x5e1daca8cfe9139fULL},
      {7, 0x774f0cc251104c28ULL},
      {42, 0x69e6c2f511a14682ULL},
  };
  for (const Pin& pin : pins) {
    Assignment a;
    a.set_int("seed", static_cast<int64_t>(pin.seed));
    EXPECT_EQ(family_hash("random", a), pin.hash) << "seed " << pin.seed;
  }
}

// --- registry surface -------------------------------------------------------

TEST(SanTemplateRegistry, CatalogListsEveryFamily) {
  const san::tpl::Registry& registry = core::template_registry();
  for (const char* name :
       {"nproc", "upgrade-campaign", "random", "rmgd", "rmgp", "rmnd-new", "rmnd-old"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  EXPECT_EQ(registry.size(), 7u);
  EXPECT_THROW(registry.find("no-such-family"), InvalidArgument);
}

TEST(SanTemplateRegistry, InstancesCarryResolvedAssignmentAndHash) {
  Assignment a;
  a.set_int("n", 3);
  san::tpl::Instance instance = core::template_registry().find("nproc").instantiate(a);
  EXPECT_EQ(instance.resolved.int_at("n"), 3);
  EXPECT_EQ(instance.resolved.int_at("servers"), 1);  // default filled in
  EXPECT_EQ(instance.params_hash, san::tpl::param_hash(instance.resolved));
  EXPECT_NE(instance.params_hash, 0u);
}

}  // namespace
}  // namespace gop
