// Positive-detection tests for the symbolic model prover (lint/prove.hh):
// every new check code (SAN040-SAN045) is triggered by a deliberately built
// fixture, refutations carry concrete witness markings, and the four paper
// models are fully proved with the reachability probe disabled entirely.

#include <gtest/gtest.h>

#include "core/params.hh"
#include "core/rm_gd.hh"
#include "core/rm_gp.hh"
#include "core/rm_nd.hh"
#include "lint/model_lint.hh"
#include "lint/prove.hh"
#include "san/expr.hh"
#include "san/state_space.hh"

namespace gop::lint {
namespace {

using san::add_mark;
using san::always;
using san::constant_prob;
using san::constant_rate;
using san::has_tokens;
using san::Marking;
using san::mark_ge;
using san::negate;
using san::PlaceRef;
using san::SanModel;
using san::sequence;
using san::when;

/// A fully provable two-place toggle: declared capacities, combinator
/// expressions only, every activity live. The effects use set_mark — like
/// the paper models — so they are safe from *any* marking in the box, which
/// is what the prover's universal effect-bounds property demands (an
/// unguarded add_mark pair would rely on the a+b=1 reachability invariant,
/// which a box cannot express; see docs/static-analysis.md).
SanModel provable_toggle() {
  SanModel model("toggle");
  const PlaceRef a = model.add_place("a", 1, 1);
  const PlaceRef b = model.add_place("b", 0, 1);
  model.add_timed_activity("fwd", has_tokens(a), constant_rate(2.0),
                           sequence({san::set_mark(a, 0), san::set_mark(b, 1)}));
  model.add_timed_activity("bwd", has_tokens(b), constant_rate(3.0),
                           sequence({san::set_mark(b, 0), san::set_mark(a, 1)}));
  return model;
}

bool has_verdict(const ProofResult& proof, const std::string& property,
                 const std::string& location, Verdict verdict) {
  for (const PropertyVerdict& v : proof.verdicts) {
    if (v.property == property && v.location == location && v.verdict == verdict) return true;
  }
  return false;
}

TEST(LintProve, FullyProvedModelGetsSan045) {
  const ProofResult proof = prove_model(provable_toggle());
  EXPECT_TRUE(proof.fully_proved);
  EXPECT_TRUE(proof.findings.has_code("SAN045"));
  EXPECT_EQ(proof.count(Verdict::kRefuted), 0u);
  EXPECT_EQ(proof.count(Verdict::kUnprovable), 0u);
  EXPECT_TRUE(has_verdict(proof, "rate-positive", "fwd", Verdict::kProved));
  EXPECT_TRUE(has_verdict(proof, "prob-sum", "fwd", Verdict::kProved));
  EXPECT_TRUE(has_verdict(proof, "place-bounded", "a", Verdict::kProved));
}

TEST(LintProve, BoundsContainEveryReachableMarking) {
  const SanModel model = provable_toggle();
  const ProofResult proof = prove_model(model);
  const san::GeneratedChain chain = san::generate_state_space(model);
  for (const Marking& m : chain.states()) {
    EXPECT_TRUE(proof.bounds.contains(m)) << m.to_string();
  }
  EXPECT_EQ(proof.bounds.to_string(model), "a:[0,1] b:[0,1]");
}

TEST(LintProve, San040UnboundedPlace) {
  SanModel model("growing");
  const PlaceRef a = model.add_place("a", 0);  // no declared capacity
  model.add_timed_activity("gen", always(), constant_rate(1.0), add_mark(a, 1));
  const ProofResult proof = prove_model(model);
  EXPECT_TRUE(proof.findings.has_code("SAN040"));
  EXPECT_FALSE(proof.fully_proved);
  EXPECT_TRUE(has_verdict(proof, "place-bounded", "a", Verdict::kUnprovable));
}

TEST(LintProve, San041EffectGoesNegative) {
  SanModel model("drain");
  const PlaceRef a = model.add_place("a", 1, 1);
  // Unguarded decrement: from a=0 the effect throws on the negative marking.
  model.add_timed_activity("take", always(), constant_rate(1.0), add_mark(a, -1));
  const ProofResult proof = prove_model(model);
  EXPECT_TRUE(proof.findings.has_code("SAN041"));
  EXPECT_TRUE(has_verdict(proof, "effect-bounds", "take case 0", Verdict::kRefuted));
}

TEST(LintProve, San042CapacityExceeded) {
  SanModel model("overflow");
  const PlaceRef a = model.add_place("a", 1, 1);
  // Unconditional increment: from a=1 the post marking exceeds the capacity.
  model.add_timed_activity("fill", always(), constant_rate(1.0), add_mark(a, 1));
  const ProofResult proof = prove_model(model);
  EXPECT_TRUE(proof.findings.has_code("SAN042"));
  EXPECT_TRUE(has_verdict(proof, "effect-bounds", "fill case 0", Verdict::kRefuted));
}

TEST(LintProve, San043OpaqueLambdaIsLocated) {
  SanModel model("opaque");
  const PlaceRef a = model.add_place("a", 1, 1);
  model.add_timed_activity("hand", has_tokens(a),
                           [](const Marking&) { return 2.0; },  // no IR
                           add_mark(a, 0));
  const ProofResult proof = prove_model(model);
  EXPECT_TRUE(proof.findings.has_code("SAN043"));
  bool located = false;
  for (const Finding& f : proof.findings.findings()) {
    if (f.code == "SAN043" && f.location == "hand") located = true;
  }
  EXPECT_TRUE(located);
  EXPECT_TRUE(has_verdict(proof, "rate-positive", "hand", Verdict::kUnprovable));
  EXPECT_FALSE(proof.fully_proved);
}

TEST(LintProve, San044TooCoarseWithoutWitness) {
  SanModel model("coarse");
  const PlaceRef a = model.add_place("a", 0);  // unbounded place...
  model.add_timed_activity("gen", always(), san::rate_per_token(a, 1.0),
                           add_mark(a, 1));
  const ProofResult proof = prove_model(model);
  // ...so the per-token rate has range [0, inf): not provably positive and
  // finite, and no corner refutes it concretely (a=0 is not an enabling
  // witness of a bad rate — rate 0 at a=0 IS one, so expect refuted instead).
  EXPECT_TRUE(proof.findings.has_code("SAN012"));
  EXPECT_TRUE(has_verdict(proof, "rate-positive", "gen", Verdict::kRefuted));

  // A genuinely coarse case: the rate is positive wherever the activity is
  // enabled, but the enabling box is too coarse to see it.
  SanModel fine("coarse2");
  const PlaceRef b = fine.add_place("b", 1);
  fine.add_timed_activity("move", has_tokens(b), san::rate_per_token(b, 1.0),
                          sequence({add_mark(b, -1), add_mark(b, 1)}));
  fine.add_timed_activity("gen", always(), constant_rate(1.0), add_mark(b, 1));
  const ProofResult proof2 = prove_model(fine);
  // b is unbounded, so rate_per_token(b) has an infinite upper range.
  EXPECT_TRUE(proof2.findings.has_code("SAN044"));
  EXPECT_TRUE(has_verdict(proof2, "rate-positive", "move", Verdict::kUnprovable));
}

TEST(LintProve, San012RefutedWithWitnessMarking) {
  SanModel model("deadrate");
  const PlaceRef a = model.add_place("a", 1, 1);
  model.add_timed_activity("stuck", always(), san::rate_per_token(a, 1.0),
                           sequence({when(has_tokens(a), add_mark(a, -1))}));
  const ProofResult proof = prove_model(model);
  // At a=0 the activity is enabled (always) with rate 0: a concrete witness.
  EXPECT_TRUE(proof.findings.has_code("SAN012"));
  bool witnessed = false;
  for (const Finding& f : proof.findings.findings()) {
    if (f.code == "SAN012" && f.message.find("(0)") != std::string::npos) witnessed = true;
  }
  EXPECT_TRUE(witnessed);
}

TEST(LintProve, San010RefutedSumWithWitness) {
  SanModel model("badsum");
  const PlaceRef a = model.add_place("a", 1, 1);
  san::TimedActivity activity;
  activity.name = "split";
  activity.enabled = has_tokens(a);
  activity.rate = constant_rate(1.0);
  activity.cases.push_back({constant_prob(0.5), add_mark(a, 0)});
  activity.cases.push_back({constant_prob(0.3), add_mark(a, 0)});
  model.add_timed_activity(std::move(activity));
  const ProofResult proof = prove_model(model);
  EXPECT_TRUE(proof.findings.has_code("SAN010"));
  EXPECT_TRUE(has_verdict(proof, "prob-sum", "split", Verdict::kRefuted));
}

TEST(LintProve, CondProbSumProvedByCaseSplitting) {
  SanModel model("branchy");
  const PlaceRef a = model.add_place("a", 0, 2);
  const san::Predicate low = negate(mark_ge(a, 2));
  san::TimedActivity activity;
  activity.name = "step";
  activity.enabled = always();
  activity.rate = constant_rate(1.0);
  activity.cases.push_back({san::cond_prob(low, 0.25, 1.0), when(low, add_mark(a, 1))});
  activity.cases.push_back({san::cond_prob(low, 0.75, 0.0), san::set_mark(a, 0)});
  model.add_timed_activity(std::move(activity));
  const ProofResult proof = prove_model(model);
  EXPECT_TRUE(has_verdict(proof, "prob-sum", "step", Verdict::kProved));
  EXPECT_TRUE(proof.fully_proved) << proof.findings.to_text();
}

TEST(LintProve, ProvedDeadActivityIsVacuouslyClean) {
  SanModel model("deadguard");
  const PlaceRef a = model.add_place("a", 1, 1);
  model.add_timed_activity("live", has_tokens(a), constant_rate(1.0), add_mark(a, 0));
  model.add_timed_activity("dead", mark_ge(a, 5), constant_rate(1.0), add_mark(a, 0));
  const ProofResult proof = prove_model(model);
  EXPECT_TRUE(proof.findings.has_code("SAN020"));
  EXPECT_TRUE(has_verdict(proof, "liveness", "dead", Verdict::kProved));
  EXPECT_TRUE(has_verdict(proof, "rate-positive", "dead", Verdict::kProved));
}

TEST(LintProve, San022ConstantPlaceProved) {
  SanModel model("constant");
  const PlaceRef a = model.add_place("a", 1, 1);
  model.add_place("frozen", 3, 3);
  model.add_timed_activity("tick", has_tokens(a), constant_rate(1.0), add_mark(a, 0));
  const ProofResult proof = prove_model(model);
  EXPECT_TRUE(proof.findings.has_code("SAN022"));
}

// --- lint_model composition -------------------------------------------------

TEST(LintProve, LintModelSuppressesSan031WhenFullyProved) {
  ModelLintOptions options;
  options.max_probe_markings = 0;  // probe disabled entirely
  const Report report = lint_model(provable_toggle(), options);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(LintProve, LintModelReportsSan031WhenUnprovedAndUnprobed) {
  SanModel model("opaque");
  const PlaceRef a = model.add_place("a", 1, 1);
  model.add_timed_activity("hand", has_tokens(a),
                           [](const Marking&) { return 2.0; }, add_mark(a, 0));
  ModelLintOptions options;
  options.max_probe_markings = 0;
  const Report report = lint_model(model, options);
  EXPECT_TRUE(report.has_code("SAN031"));
  EXPECT_TRUE(report.has_code("SAN043"));
}

TEST(LintProve, CompleteProbeMootsUnprovableFindings) {
  SanModel model("opaque");
  const PlaceRef a = model.add_place("a", 1, 1);
  model.add_timed_activity("hand", has_tokens(a),
                           [](const Marking&) { return 2.0; }, add_mark(a, 0));
  const Report report = lint_model(model);  // default budget covers the model
  EXPECT_FALSE(report.has_code("SAN043"));
  EXPECT_FALSE(report.has_code("SAN031"));
}

// --- the four paper models --------------------------------------------------

/// Every paper model must be fully proved with the probe disabled: the
/// CI lint gate (`gop_lint --prove --probe-budget=0 --strict`) relies on it.
void expect_fully_proved(const san::SanModel& model) {
  const ProofResult proof = prove_model(model);
  EXPECT_TRUE(proof.fully_proved)
      << model.name() << " verdicts:\n"
      << proof.findings.to_text();
  EXPECT_TRUE(proof.findings.has_code("SAN045"));

  ModelLintOptions options;
  options.max_probe_markings = 0;
  const Report report = lint_model(model, options);
  EXPECT_FALSE(report.has_code("SAN031")) << report.to_text();
  EXPECT_FALSE(report.has_errors()) << report.to_text();

  // And the proved bounds really do cover the generated state space.
  const san::GeneratedChain chain = san::generate_state_space(model);
  for (const Marking& m : chain.states()) {
    EXPECT_TRUE(proof.bounds.contains(m)) << model.name() << " " << m.to_string();
  }
}

TEST(LintProvePaperModels, RmGdFullyProved) {
  expect_fully_proved(core::build_rm_gd(core::GsuParameters::table3()).model);
}

TEST(LintProvePaperModels, RmGpFullyProved) {
  expect_fully_proved(core::build_rm_gp(core::GsuParameters::table3()).model);
}

TEST(LintProvePaperModels, RmNdNewFullyProved) {
  const core::GsuParameters params = core::GsuParameters::table3();
  expect_fully_proved(core::build_rm_nd(params, params.mu_new).model);
}

TEST(LintProvePaperModels, RmNdOldFullyProved) {
  const core::GsuParameters params = core::GsuParameters::table3();
  expect_fully_proved(core::build_rm_nd(params, params.mu_old).model);
}

}  // namespace
}  // namespace gop::lint
