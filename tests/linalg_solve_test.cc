// Unit tests for the direct solvers: LU factorization and GTH elimination.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/gth.hh"
#include "linalg/lu.hh"
#include "util/error.hh"

namespace gop::linalg {
namespace {

TEST(Lu, SolvesSmallSystem) {
  const DenseMatrix a = DenseMatrix::from_rows({{2, 1}, {1, 3}});
  const std::vector<double> x = lu_solve(a, {5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SolveRequiresPivoting) {
  // Leading zero forces a row swap.
  const DenseMatrix a = DenseMatrix::from_rows({{0, 1}, {1, 0}});
  const std::vector<double> x = lu_solve(a, {2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, ResidualIsTiny) {
  const DenseMatrix a =
      DenseMatrix::from_rows({{4, -2, 1}, {-2, 4, -2}, {1, -2, 4}});
  const std::vector<double> b{1, 2, 3};
  const std::vector<double> x = lu_solve(a, b);
  const std::vector<double> ax = a.right_multiply(x);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(ax[i], b[i], 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
  const DenseMatrix a = DenseMatrix::from_rows({{1, 2}, {2, 4}});
  EXPECT_THROW(LuFactorization{a}, NumericalError);
}

TEST(Lu, NonSquareThrows) {
  EXPECT_THROW(LuFactorization{DenseMatrix(2, 3)}, InvalidArgument);
}

TEST(Lu, RhsLengthMismatchThrows) {
  const LuFactorization lu(DenseMatrix::identity(2));
  EXPECT_THROW(lu.solve(std::vector<double>{1.0}), InvalidArgument);
}

TEST(Lu, MatrixRhsSolve) {
  const DenseMatrix a = DenseMatrix::from_rows({{2, 0}, {0, 4}});
  const DenseMatrix x = LuFactorization(a).solve(DenseMatrix::identity(2));
  EXPECT_NEAR(x(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(x(1, 1), 0.25, 1e-12);
}

TEST(Lu, TransposedSolve) {
  const DenseMatrix a = DenseMatrix::from_rows({{1, 2}, {3, 4}});
  const std::vector<double> b{5, 6};
  const std::vector<double> x = LuFactorization(a).solve_transposed(b);
  // Check A^T x = b.
  const std::vector<double> atx = a.transpose().right_multiply(x);
  EXPECT_NEAR(atx[0], b[0], 1e-12);
  EXPECT_NEAR(atx[1], b[1], 1e-12);
}

TEST(Lu, TransposedSolveWithPivoting) {
  const DenseMatrix a = DenseMatrix::from_rows({{0, 1, 2}, {3, 0, 1}, {1, 1, 0}});
  const std::vector<double> b{1, -2, 0.5};
  const std::vector<double> x = LuFactorization(a).solve_transposed(b);
  const std::vector<double> atx = a.transpose().right_multiply(x);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(atx[i], b[i], 1e-12);
}

TEST(Lu, Determinant) {
  const DenseMatrix a = DenseMatrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_NEAR(LuFactorization(a).determinant(), -2.0, 1e-12);
  EXPECT_NEAR(LuFactorization(DenseMatrix::identity(5)).determinant(), 1.0, 1e-12);
}

TEST(Lu, IllConditionedStillAccurate) {
  // Scales differing by 1e12 — partial pivoting should cope.
  const DenseMatrix a = DenseMatrix::from_rows({{1e-12, 1}, {1, 1}});
  const std::vector<double> x = lu_solve(a, {1, 2});
  const std::vector<double> ax = a.right_multiply(x);
  EXPECT_NEAR(ax[0], 1.0, 1e-9);
  EXPECT_NEAR(ax[1], 2.0, 1e-9);
}

// --- GTH ---------------------------------------------------------------------

TEST(Gth, TwoStateChain) {
  // Rates 0 -> 1 at a, 1 -> 0 at b: pi = (b, a) / (a + b).
  const double a = 3.0, b = 5.0;
  const DenseMatrix q = DenseMatrix::from_rows({{-a, a}, {b, -b}});
  const std::vector<double> pi = gth_stationary_ctmc(q);
  EXPECT_NEAR(pi[0], b / (a + b), 1e-14);
  EXPECT_NEAR(pi[1], a / (a + b), 1e-14);
}

TEST(Gth, BirthDeathChainMatchesDetailedBalance) {
  // Birth rate l, death rate m per state: pi_k proportional to (l/m)^k.
  const double l = 2.0, m = 5.0;
  const size_t n = 5;
  DenseMatrix q(n, n, 0.0);
  for (size_t i = 0; i + 1 < n; ++i) {
    q(i, i + 1) = l;
    q(i + 1, i) = m;
  }
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j)
      if (j != i) sum += q(i, j);
    q(i, i) = -sum;
  }
  const std::vector<double> pi = gth_stationary_ctmc(q);
  double norm = 0.0, r = 1.0;
  for (size_t k = 0; k < n; ++k) {
    norm += r;
    r *= l / m;
  }
  r = 1.0;
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(pi[k], r / norm, 1e-13) << "state " << k;
    r *= l / m;
  }
}

TEST(Gth, StationarityResidual) {
  const DenseMatrix q = DenseMatrix::from_rows(
      {{-3, 2, 1}, {4, -6, 2}, {0.5, 0.5, -1}});
  const std::vector<double> pi = gth_stationary_ctmc(q);
  const std::vector<double> res = q.transpose().right_multiply(pi);
  for (double v : res) EXPECT_NEAR(v, 0.0, 1e-14);
  EXPECT_NEAR(pi[0] + pi[1] + pi[2], 1.0, 1e-14);
}

TEST(Gth, StiffRatesRemainAccurate) {
  // Rates spanning 12 orders of magnitude: GTH is subtraction-free, so the
  // tiny stationary mass is still computed to relative precision.
  const double fast = 1e6, slow = 1e-6;
  const DenseMatrix q = DenseMatrix::from_rows({{-slow, slow}, {fast, -fast}});
  const std::vector<double> pi = gth_stationary_ctmc(q);
  const double expected1 = slow / (fast + slow);
  EXPECT_NEAR(pi[1] / expected1, 1.0, 1e-12);
}

TEST(Gth, SingleState) {
  const std::vector<double> pi = gth_stationary_ctmc(DenseMatrix(1, 1, 0.0));
  ASSERT_EQ(pi.size(), 1u);
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
}

TEST(Gth, ReducibleChainThrows) {
  // State 1 is absorbing: no stationary distribution over both states in the
  // irreducible sense; elimination of state 1 finds no outgoing transitions.
  const DenseMatrix q = DenseMatrix::from_rows({{-1, 1}, {0, 0}});
  EXPECT_THROW(gth_stationary_ctmc(q), ModelError);
}

TEST(Gth, NegativeOffDiagonalThrows) {
  const DenseMatrix q = DenseMatrix::from_rows({{-1, -1}, {1, -1}});
  EXPECT_THROW(gth_stationary_ctmc(q), InvalidArgument);
}

TEST(Gth, DtmcWrapper) {
  // Two-state DTMC: P = [[0.9, 0.1], [0.2, 0.8]]; pi = (2/3, 1/3).
  const DenseMatrix p = DenseMatrix::from_rows({{0.9, 0.1}, {0.2, 0.8}});
  const std::vector<double> pi = gth_stationary_dtmc(p);
  EXPECT_NEAR(pi[0], 2.0 / 3.0, 1e-13);
  EXPECT_NEAR(pi[1], 1.0 / 3.0, 1e-13);
}

}  // namespace
}  // namespace gop::linalg
