// Tests for the solver sessions (markov/session.hh): bit-identity with the
// pointwise solvers on both engines, grid validation, duplicate and
// near-coincident time handling, the memory-cap fallback, and the
// solver-invocation counters that prove the amortization. (This file also
// exercises the umbrella header, which it includes in place of individual
// headers.)

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "gop.hh"

namespace gop::markov {
namespace {

Ctmc two_state(double a, double b) {
  return Ctmc(2, {{0, 1, a, 0}, {1, 0, b, 1}}, {1.0, 0.0});
}

void expect_same_bits(const std::vector<double>& got, const std::vector<double>& want,
                      double t) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t s = 0; s < got.size(); ++s) {
    EXPECT_EQ(std::bit_cast<uint64_t>(got[s]), std::bit_cast<uint64_t>(want[s]))
        << "state " << s << " at t=" << t << ": " << got[s] << " vs " << want[s];
  }
}

/// Zero, exact duplicates, and a pair one ulp apart — the grid shapes the
/// sharing logic has to keep bit-exact.
std::vector<double> tricky_grid() {
  return {0.0,  0.0, 0.25, 0.5, 0.5, std::nextafter(0.5, 1.0),
          0.75, 1.0, 2.5,  2.5};
}

TEST(TransientSession, DenseMatchesPointwiseBitForBit) {
  const Ctmc chain = two_state(2.0, 5.0);
  const std::vector<double> times = tricky_grid();
  const TransientSession session(chain, times);  // 2 states => dense engine
  ASSERT_EQ(session.time_count(), times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    expect_same_bits(session.distribution_at(i), transient_distribution(chain, times[i]),
                     times[i]);
  }
}

TEST(TransientSession, UniformizationMatchesPointwiseBitForBit) {
  const Ctmc chain = two_state(2.0, 5.0);
  TransientOptions options;
  options.method = TransientMethod::kUniformization;
  const std::vector<double> times = tricky_grid();
  const TransientSession session(chain, times, options);
  for (size_t i = 0; i < times.size(); ++i) {
    expect_same_bits(session.distribution_at(i),
                     transient_distribution(chain, times[i], options), times[i]);
  }
}

TEST(TransientSession, SteadyStateDetectionReplayMatches) {
  // At t = 50 the Poisson window is far beyond the point where this chain's
  // DTMC iterates converge, so both the shared-sequence build and the
  // pointwise loop take their steady-state shortcut — and must agree.
  const Ctmc chain = two_state(2.0, 5.0);
  TransientOptions options;
  options.method = TransientMethod::kUniformization;
  const std::vector<double> times{0.1, 5.0, 50.0};
  const TransientSession session(chain, times, options);
  for (size_t i = 0; i < times.size(); ++i) {
    expect_same_bits(session.distribution_at(i),
                     transient_distribution(chain, times[i], options), times[i]);
  }
}

TEST(AccumulatedSession, AugmentedExponentialMatchesPointwiseBitForBit) {
  const Ctmc chain = two_state(2.0, 5.0);
  const std::vector<double> times = tricky_grid();
  const AccumulatedSession session(chain, times);
  for (size_t i = 0; i < times.size(); ++i) {
    expect_same_bits(session.occupancy_at(i), accumulated_occupancy(chain, times[i]),
                     times[i]);
  }
}

TEST(AccumulatedSession, UniformizationMatchesPointwiseBitForBit) {
  const Ctmc chain = two_state(2.0, 5.0);
  AccumulatedOptions options;
  options.method = AccumulatedMethod::kUniformization;
  const std::vector<double> times = tricky_grid();
  const AccumulatedSession session(chain, times, options);
  for (size_t i = 0; i < times.size(); ++i) {
    expect_same_bits(session.occupancy_at(i),
                     accumulated_occupancy(chain, times[i], options), times[i]);
  }
}

TEST(TransientSession, RewardAccessorsMatchPointwise) {
  const Ctmc chain = two_state(1.0, 3.0);
  const std::vector<double> reward{2.0, -1.0};
  const std::vector<double> times{0.0, 0.5, 1.0, 4.0};
  const TransientSession session(chain, times);
  const std::vector<double> series = session.reward_series(reward);
  ASSERT_EQ(series.size(), times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    const double pointwise = transient_reward(chain, reward, times[i]);
    EXPECT_EQ(std::bit_cast<uint64_t>(session.reward_at(i, reward)),
              std::bit_cast<uint64_t>(pointwise));
    EXPECT_EQ(std::bit_cast<uint64_t>(series[i]), std::bit_cast<uint64_t>(pointwise));
  }
}

TEST(AccumulatedSession, RewardAccessorsMatchPointwise) {
  const Ctmc chain = two_state(1.0, 3.0);
  const std::vector<double> reward{2.0, -1.0};
  const std::vector<double> times{0.0, 0.5, 1.0, 4.0};
  const AccumulatedSession session(chain, times);
  for (size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(session.reward_at(i, reward)),
              std::bit_cast<uint64_t>(accumulated_reward(chain, reward, times[i])));
  }
}

TEST(Session, EmptyGridGivesEmptySession) {
  const Ctmc chain = two_state(1.0, 1.0);
  EXPECT_EQ(TransientSession(chain, {}).time_count(), 0u);
  EXPECT_EQ(AccumulatedSession(chain, {}).time_count(), 0u);
}

TEST(Session, InvalidGridsThrow) {
  const Ctmc chain = two_state(1.0, 1.0);
  EXPECT_THROW(TransientSession(chain, {1.0, 0.5}), InvalidArgument);
  EXPECT_THROW(TransientSession(chain, {-1.0, 0.5}), InvalidArgument);
  EXPECT_THROW(AccumulatedSession(chain, {1.0, 0.5}), InvalidArgument);
  const TransientSession session(chain, {0.5});
  EXPECT_THROW(session.distribution_at(1), InvalidArgument);
  EXPECT_THROW(session.time_at(1), InvalidArgument);
}

TEST(SolverStats, UniformizationSessionIsOnePassPerGrid) {
  const Ctmc chain = two_state(2.0, 5.0);
  TransientOptions options;
  options.method = TransientMethod::kUniformization;
  const std::vector<double> times{0.25, 0.5, 0.75, 1.0, 2.5};

  solver_stats().reset();
  const TransientSession session(chain, times, options);
  EXPECT_EQ(solver_stats().uniformization_passes.load(), 1u);
  EXPECT_EQ(solver_stats().transient_sessions.load(), 1u);

  solver_stats().reset();
  for (double t : times) transient_distribution(chain, t, options);
  EXPECT_EQ(solver_stats().uniformization_passes.load(), times.size());
}

TEST(SolverStats, MemoryCapFallsBackToPerTimeSolves) {
  const Ctmc chain = two_state(2.0, 5.0);
  TransientOptions options;
  options.method = TransientMethod::kUniformization;
  options.uniformization.max_session_doubles = 1;  // force the fallback
  const std::vector<double> times{0.0, 0.25, 0.5, 0.5, 1.0};

  solver_stats().reset();
  const TransientSession session(chain, times, options);
  // One pass per *distinct nonzero* time (0 is free, the duplicate shares).
  EXPECT_EQ(solver_stats().uniformization_passes.load(), 3u);
  for (size_t i = 0; i < times.size(); ++i) {
    expect_same_bits(session.distribution_at(i),
                     transient_distribution(chain, times[i], options), times[i]);
  }
}

TEST(SolverStats, DenseSessionSolvesDistinctTimesOnce) {
  const Ctmc chain = two_state(2.0, 5.0);
  const std::vector<double> times{0.0, 0.5, 0.5, 1.0};

  solver_stats().reset();
  const TransientSession transient(chain, times);
  EXPECT_EQ(solver_stats().matrix_exponentials.load(), 2u);

  solver_stats().reset();
  const AccumulatedSession accumulated(chain, times);
  EXPECT_EQ(solver_stats().matrix_exponentials.load(), 2u);
  EXPECT_EQ(solver_stats().accumulated_sessions.load(), 1u);
}

}  // namespace
}  // namespace gop::markov
