// Tests for the recovery dispatchers (markov/recovery.hh): checked results
// bit-identical to unchecked ones on the clean path, certificates that name
// the producing engine, retries observable through the always-on obs
// counters, SolverError structure after an exhausted ladder, and certificate
// determinism across thread counts.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "fi/fi.hh"
#include "markov/accumulated.hh"
#include "markov/recovery.hh"
#include "markov/session.hh"
#include "markov/steady_state.hh"
#include "markov/transient.hh"
#include "obs/obs.hh"
#include "par/parallel_for.hh"
#include "par/thread_pool.hh"
#include "util/error.hh"

namespace gop::markov {
namespace {

/// 0 --a--> 1 --b--> 0, start in 0 (irreducible).
Ctmc two_state(double a, double b) {
  return Ctmc(2, {{0, 1, a, 0}, {1, 0, b, 1}}, {1.0, 0.0});
}

// --- clean path: checked == unchecked, bit for bit ---------------------------

TEST(Recovery, CheckedTransientMatchesUncheckedBitwise) {
  fi::clear_plan();
  const Ctmc chain = two_state(2.0, 3.0);
  const TransientResult checked = transient_distribution_checked(chain, 0.7);
  const std::vector<double> plain = transient_distribution(chain, 0.7);
  EXPECT_EQ(checked.distribution, plain);

  EXPECT_FALSE(checked.certificate.degraded);
  EXPECT_FALSE(checked.certificate.fallback);
  EXPECT_EQ(checked.certificate.retries, 0u);
  EXPECT_TRUE(checked.certificate.attempts.empty());
  EXPECT_EQ(checked.certificate.engine, checked.certificate.requested_engine);
}

TEST(Recovery, CheckedAccumulatedMatchesUncheckedBitwise) {
  fi::clear_plan();
  const Ctmc chain = two_state(2.0, 3.0);
  const AccumulatedResult checked = accumulated_occupancy_checked(chain, 0.7);
  EXPECT_EQ(checked.occupancy, accumulated_occupancy(chain, 0.7));
  EXPECT_FALSE(checked.certificate.degraded);
}

TEST(Recovery, CheckedSteadyStateMatchesUncheckedBitwise) {
  fi::clear_plan();
  const Ctmc chain = two_state(2.0, 3.0);
  const SteadyStateResult checked = steady_state_distribution_checked(chain);
  EXPECT_EQ(checked.distribution, steady_state_distribution(chain));
  EXPECT_FALSE(checked.certificate.degraded);
  EXPECT_EQ(checked.certificate.engine, "gth");
}

TEST(Recovery, InitialDistributionFastPath) {
  const Ctmc chain = two_state(2.0, 3.0);
  const TransientResult at_zero = transient_distribution_checked(chain, 0.0);
  EXPECT_EQ(at_zero.distribution, (std::vector<double>{1.0, 0.0}));
  EXPECT_EQ(at_zero.certificate.engine, "initial");
  EXPECT_FALSE(at_zero.certificate.degraded);
}

TEST(Recovery, EngineNamesMatchDispatcherLabels) {
  EXPECT_STREQ(engine_name(TransientMethod::kUniformization), "uniformization");
  EXPECT_STREQ(engine_name(TransientMethod::kMatrixExponential), "pade-expm");
  EXPECT_STREQ(engine_name(AccumulatedMethod::kAugmentedExponential), "augmented-expm");
  EXPECT_STREQ(engine_name(SteadyStateMethod::kGth), "gth");
  EXPECT_STREQ(engine_name(SteadyStateMethod::kPower), "power");
  EXPECT_STREQ(engine_name(SteadyStateMethod::kGaussSeidel), "gauss-seidel");
  EXPECT_THROW(engine_name(TransientMethod::kAuto), InternalError);
}

TEST(Recovery, ValidationPredicates) {
  EXPECT_TRUE(is_probability_vector({0.5, 0.5}, 1e-9));
  EXPECT_FALSE(is_probability_vector({0.5, 0.4}, 1e-9));
  EXPECT_FALSE(is_probability_vector({0.5, std::nan("")}, 1e-9));
  EXPECT_FALSE(is_probability_vector({1.5, -0.5}, 1e-9));
  EXPECT_TRUE(is_occupancy_vector({1.0, 1.0}, 2.0, 1e-9));
  EXPECT_FALSE(is_occupancy_vector({1.0, 0.5}, 2.0, 1e-9));
}

// --- degraded paths (need the compiled-in injection sites) -------------------

class RecoveryFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fi::compiled_in()) {
      GTEST_SKIP() << "fault injection compiled out (GOP_FI=OFF)";
    }
  }
  void TearDown() override { fi::clear_plan(); }
};

TEST_F(RecoveryFaultTest, RetryIsObservableThroughCountersAndEvents) {
  obs::reset();
  obs::set_enabled(true);

  const Ctmc chain = two_state(2.0, 3.0);
  TransientOptions options;
  options.method = TransientMethod::kUniformization;

  fi::Plan plan(1);
  plan.arm(fi::SiteId::kUniformizationIterateNan, fi::Trigger::on_nth(1));
  fi::set_plan(plan);
  const TransientResult result = transient_distribution_checked(chain, 0.7, options);
  fi::clear_plan();
  obs::set_enabled(false);

  // The first attempt hit the injected NaN; the retry succeeded.
  EXPECT_TRUE(result.certificate.degraded);
  EXPECT_GE(result.certificate.retries, 1u);
  EXPECT_FALSE(result.certificate.fallback);
  EXPECT_EQ(result.certificate.engine, "uniformization");
  ASSERT_FALSE(result.certificate.attempts.empty());
  EXPECT_NE(result.certificate.attempts.front().find("uniformization"), std::string::npos);

  const obs::Snapshot snapshot = obs::snapshot();
  EXPECT_GE(snapshot.counters.at("fi.injections"), 1u);
  EXPECT_GE(snapshot.counters.at("markov.recovery.retries"), 1u);
  bool saw_injection = false;
  bool saw_recovery = false;
  for (const obs::SolverEvent& event : snapshot.events) {
    saw_injection |= event.kind == obs::SolverEventKind::kFaultInjection;
    if (event.kind == obs::SolverEventKind::kRecovery) {
      saw_recovery = true;
      EXPECT_TRUE(event.degraded);
      EXPECT_GE(event.retries, 1u);
      EXPECT_FALSE(event.detail.empty());
    }
  }
  EXPECT_TRUE(saw_injection);
  EXPECT_TRUE(saw_recovery);

  // The recovered answer still matches the clean one within the bound.
  const std::vector<double> clean = transient_distribution(chain, 0.7, options);
  for (size_t i = 0; i < clean.size(); ++i) {
    EXPECT_NEAR(result.distribution[i], clean[i], 1e-9);
  }
}

TEST_F(RecoveryFaultTest, FallbackCountersAndCertificate) {
  obs::reset();
  const Ctmc chain = two_state(2.0, 3.0);
  TransientOptions options;
  options.method = TransientMethod::kUniformization;

  // every(1): each uniformization attempt re-hits the NaN, forcing the
  // ladder past the retries into the dense fallback.
  fi::Plan plan(1);
  plan.arm(fi::SiteId::kUniformizationIterateNan, fi::Trigger::every(1));
  fi::set_plan(plan);
  const TransientResult result = transient_distribution_checked(chain, 0.7, options);
  fi::clear_plan();

  EXPECT_TRUE(result.certificate.degraded);
  EXPECT_TRUE(result.certificate.fallback);
  EXPECT_EQ(result.certificate.requested_engine, "uniformization");
  EXPECT_EQ(result.certificate.engine, "pade-expm");
  EXPECT_GE(obs::snapshot().counters.at("markov.recovery.fallbacks"), 1u);
}

TEST_F(RecoveryFaultTest, ExhaustedLadderThrowsStructuredSolverError) {
  const Ctmc chain = two_state(2.0, 3.0);
  // Poison every dense product: uniformization is clean, but force the dense
  // engine and forbid fallback so the whole (short) ladder fails.
  RecoveryPolicy policy;
  policy.allow_engine_fallback = false;
  TransientOptions options;
  options.method = TransientMethod::kMatrixExponential;

  fi::Plan plan(1);
  plan.arm(fi::SiteId::kDenseMultiplyNan, fi::Trigger::every(1));
  fi::set_plan(plan);
  try {
    (void)transient_distribution_checked(chain, 0.7, options, policy);
    FAIL() << "expected SolverError";
  } catch (const SolverError& error) {
    EXPECT_EQ(error.solver(), "transient");
    EXPECT_EQ(error.attempts().size(), 1 + policy.max_retries);
    EXPECT_FALSE(error.cause().empty());
    EXPECT_NE(std::string(error.what()).find("transient"), std::string::npos);
  }
  fi::clear_plan();
}

TEST_F(RecoveryFaultTest, SessionCarriesCertificate) {
  const Ctmc chain = two_state(2.0, 3.0);
  const std::vector<double> grid{0.25, 0.5, 1.0};

  // Clean build: certificate present, not degraded, grid bit-identical to the
  // policy-free session.
  fi::clear_plan();
  TransientSession plain(chain, grid);
  TransientSession checked(chain, grid, {}, RecoveryPolicy{});
  ASSERT_TRUE(checked.certificate().has_value());
  EXPECT_FALSE(checked.certificate()->degraded);
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(checked.distribution_at(i), plain.distribution_at(i));
  }

  // Faulted build: the session ladder degrades and says so. The site is the
  // Poisson window (not the pointwise DTMC iterate — the session has its own
  // shared-grid propagation); every(1) truncates every window the build
  // constructs, so the uniformization rungs keep losing mass and the ladder
  // must reach the dense fallback. The horizon matters: a halved window only
  // loses real mass once Lambda*t is well past the window's safety margin
  // (at Lambda*t < 1 the loss is ~1e-7 and is legitimately absorbed).
  const std::vector<double> far_grid{2.5, 5.0, 10.0};
  TransientOptions uni;
  uni.method = TransientMethod::kUniformization;
  fi::Plan plan(1);
  plan.arm(fi::SiteId::kFoxGlynnTruncate, fi::Trigger::every(1));
  fi::set_plan(plan);
  TransientSession degraded(chain, far_grid, uni, RecoveryPolicy{});
  const fi::SiteStats stats = fi::site_stats(fi::SiteId::kFoxGlynnTruncate);
  fi::clear_plan();
  ASSERT_GT(stats.injections, 0u) << "hits=" << stats.hits;
  ASSERT_TRUE(degraded.certificate().has_value());
  EXPECT_TRUE(degraded.certificate()->degraded)
      << "hits=" << stats.hits << " injections=" << stats.injections
      << " engine=" << degraded.certificate()->engine;
  EXPECT_TRUE(degraded.certificate()->fallback);  // every rung of uniformization was poisoned
  for (size_t i = 0; i < far_grid.size(); ++i) {
    const std::vector<double>& d = degraded.distribution_at(i);
    EXPECT_TRUE(is_probability_vector(d, 1e-9));
  }
}

TEST_F(RecoveryFaultTest, CertificatesBitIdenticalAcrossThreadCounts) {
  // every(1) makes the injection decision a pure function of the site, not of
  // the global hit index, so concurrent solves racing on the shared counters
  // still all see the same faults — certificates must come out identical at
  // every pool width.
  const Ctmc chain = two_state(2.0, 3.0);
  TransientOptions options;
  options.method = TransientMethod::kUniformization;

  const auto run_lane = [&](std::vector<Certificate>& certs, size_t lane) {
    const TransientResult result = transient_distribution_checked(chain, 0.7, options);
    certs[lane] = result.certificate;
  };

  constexpr size_t kLanes = 8;
  std::vector<std::vector<Certificate>> by_threads;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    fi::Plan plan(1);
    plan.arm(fi::SiteId::kUniformizationIterateNan, fi::Trigger::every(1));
    fi::set_plan(plan);
    par::ThreadPool pool(threads);
    std::vector<Certificate> certs(kLanes);
    par::parallel_for(pool, kLanes, 1, [&](size_t lane) { run_lane(certs, lane); });
    fi::clear_plan();
    by_threads.push_back(std::move(certs));
  }

  const auto certificate_string = [](const Certificate& cert) {
    std::string out = cert.requested_engine + "|" + cert.engine + "|" +
                      std::to_string(cert.retries) + "|" + (cert.fallback ? "F" : "-") + "|" +
                      (cert.degraded ? "D" : "-") + "|" + std::to_string(cert.error_bound);
    for (const std::string& attempt : cert.attempts) out += "|" + attempt;
    return out;
  };
  for (size_t lane = 0; lane < kLanes; ++lane) {
    const std::string reference = certificate_string(by_threads[0][lane]);
    for (size_t i = 1; i < by_threads.size(); ++i) {
      EXPECT_EQ(certificate_string(by_threads[i][lane]), reference)
          << "lane " << lane << " diverges at thread count " << (1u << i);
    }
  }
}

}  // namespace
}  // namespace gop::markov
