// gop::obs unit tests: registry counters/gauges, the enable gate, solver
// events, the aggregated span tree (including cross-thread attachment), the
// three sinks, and the markov::solver_stats() compatibility shim.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "markov/ctmc.hh"
#include "markov/solver_stats.hh"
#include "markov/transient.hh"
#include "obs/obs.hh"

namespace gop {
namespace {

/// Every test starts from a clean, disabled registry and leaves it that way
/// (the registry is process-global; other suites expect tracing off).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
    obs::set_max_events(65536);
  }
};

markov::Ctmc two_state_chain() {
  return markov::Ctmc(2, {{0, 1, 1.0, -1}, {1, 0, 2.0, -1}}, {1.0, 0.0});
}

TEST_F(ObsTest, CounterAccumulatesAndHasStableIdentity) {
  obs::Counter& a = obs::counter("test.counter");
  a.add();
  a.add(4);
  EXPECT_EQ(a.get(), 5u);
  EXPECT_EQ(&obs::counter("test.counter"), &a);

  const obs::Snapshot snapshot = obs::snapshot();
  ASSERT_TRUE(snapshot.counters.contains("test.counter"));
  EXPECT_EQ(snapshot.counters.at("test.counter"), 5u);
}

TEST_F(ObsTest, MaxGaugeKeepsHighWaterMark) {
  obs::MaxGauge& g = obs::max_gauge("test.gauge");
  g.record(3);
  g.record(7);
  g.record(5);
  EXPECT_EQ(g.get(), 7u);
  EXPECT_EQ(obs::snapshot().gauges.at("test.gauge"), 7u);
}

TEST_F(ObsTest, ResetClearsEverything) {
  obs::set_enabled(true);
  obs::counter("test.counter").add(9);
  obs::record_event({.kind = obs::SolverEventKind::kTransient, .method = "uniformization"});
  { GOP_OBS_SPAN("test.span"); }
  obs::reset();

  const obs::Snapshot snapshot = obs::snapshot();
  EXPECT_EQ(snapshot.counters.at("test.counter"), 0u);
  EXPECT_TRUE(snapshot.events.empty());
  EXPECT_TRUE(snapshot.root.children.empty());
}

TEST_F(ObsTest, DisabledRecordsNoEventsOrSpans) {
  ASSERT_FALSE(obs::enabled());
  obs::record_event({.kind = obs::SolverEventKind::kTransient, .method = "uniformization"});
  { GOP_OBS_SPAN("test.disabled_span"); }

  const obs::Snapshot snapshot = obs::snapshot();
  EXPECT_TRUE(snapshot.events.empty());
  EXPECT_EQ(snapshot.dropped_events, 0u);
  EXPECT_TRUE(snapshot.root.children.empty());
}

TEST_F(ObsTest, EventBufferIsBoundedAndCountsDrops) {
  obs::set_enabled(true);
  obs::set_max_events(3);
  for (int i = 0; i < 5; ++i) {
    obs::record_event({.kind = obs::SolverEventKind::kMatrixExponential, .method = "pade13"});
  }
  const obs::Snapshot snapshot = obs::snapshot();
  EXPECT_EQ(snapshot.events.size(), 3u);
  EXPECT_EQ(snapshot.dropped_events, 2u);
}

TEST_F(ObsTest, SpansNestIntoATree) {
  obs::set_enabled(true);
  {
    GOP_OBS_SPAN("outer");
    {
      GOP_OBS_SPAN("inner");
    }
    {
      GOP_OBS_SPAN("inner");
    }
  }
  {
    GOP_OBS_SPAN("outer");
  }

  const obs::Snapshot snapshot = obs::snapshot();
  ASSERT_EQ(snapshot.root.children.size(), 1u);
  const obs::SpanNode& outer = snapshot.root.children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.count, 2u);
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(outer.children[0].name, "inner");
  EXPECT_EQ(outer.children[0].count, 2u);
}

TEST_F(ObsTest, SpanOnAnotherThreadAttachesToRootNotToThisStack) {
  obs::set_enabled(true);
  {
    GOP_OBS_SPAN("main_thread");
    std::thread worker([] { GOP_OBS_SPAN("worker_thread"); });
    worker.join();
  }

  const obs::Snapshot snapshot = obs::snapshot();
  std::vector<std::string> top_level;
  top_level.reserve(snapshot.root.children.size());
  for (const obs::SpanNode& child : snapshot.root.children) top_level.push_back(child.name);
  EXPECT_EQ(top_level.size(), 2u);
  EXPECT_NE(std::find(top_level.begin(), top_level.end(), "main_thread"), top_level.end());
  EXPECT_NE(std::find(top_level.begin(), top_level.end(), "worker_thread"), top_level.end());
}

TEST_F(ObsTest, SolverStatsShimAliasesRegistryCounters) {
  markov::SolverCounters& stats = markov::solver_stats();
  stats.reset();
  stats.matrix_exponentials.fetch_add(5, std::memory_order_relaxed);
  EXPECT_EQ(obs::counter("markov.matrix_exponentials").get(), 5u);

  obs::counter("markov.uniformization_passes").add(2);
  EXPECT_EQ(stats.uniformization_passes.load(), 2u);

  // registry reset clears the shim view too — same storage.
  obs::reset();
  EXPECT_EQ(stats.matrix_exponentials.load(), 0u);
}

TEST_F(ObsTest, LegacySolverCountersCountEvenWhenDisabled) {
  ASSERT_FALSE(obs::enabled());
  const markov::Ctmc chain = two_state_chain();
  markov::TransientOptions options;
  options.method = markov::TransientMethod::kMatrixExponential;
  (void)markov::transient_distribution(chain, 0.5, options);
  EXPECT_GE(obs::counter("markov.matrix_exponentials").get(), 1u);
  // ... but no structured event is recorded while disabled.
  EXPECT_TRUE(obs::snapshot().events.empty());
}

TEST_F(ObsTest, RealSolveEmitsEventsWhenEnabled) {
  obs::set_enabled(true);
  const markov::Ctmc chain = two_state_chain();
  markov::TransientOptions options;
  options.method = markov::TransientMethod::kUniformization;
  (void)markov::transient_distribution(chain, 0.5, options);

  const obs::Snapshot snapshot = obs::snapshot();
  bool saw_transient = false;
  bool saw_pass = false;
  for (const obs::SolverEvent& event : snapshot.events) {
    if (event.kind == obs::SolverEventKind::kTransient) {
      saw_transient = true;
      EXPECT_EQ(event.method, "uniformization");
      EXPECT_EQ(event.states, 2u);
      EXPECT_DOUBLE_EQ(event.t, 0.5);
      EXPECT_GT(event.lambda_t, 0.0);
    }
    if (event.kind == obs::SolverEventKind::kUniformizationPass) {
      saw_pass = true;
      EXPECT_GE(event.fox_glynn_right, event.fox_glynn_left);
    }
  }
  EXPECT_TRUE(saw_transient);
  EXPECT_TRUE(saw_pass);
}

TEST_F(ObsTest, TextSinkRendersSpansCountersAndEvents) {
  obs::set_enabled(true);
  obs::counter("test.counter").add(3);
  obs::max_gauge("test.gauge").record(4);
  obs::record_event({.kind = obs::SolverEventKind::kSteadyState, .method = "gth", .states = 6});
  { GOP_OBS_SPAN("test.render"); }

  const std::string text = obs::render_text(obs::snapshot());
  EXPECT_NE(text.find("test.render"), std::string::npos);
  EXPECT_NE(text.find("test.counter"), std::string::npos);
  EXPECT_NE(text.find("test.gauge"), std::string::npos);
  EXPECT_NE(text.find("gth"), std::string::npos);
}

TEST_F(ObsTest, JsonSinkEscapesAndContainsRecords) {
  obs::set_enabled(true);
  obs::counter("test.with\"quote").add(1);
  obs::record_event({.kind = obs::SolverEventKind::kAccumulated, .method = "augmented-expm"});

  const std::string json = obs::render_json(obs::snapshot());
  EXPECT_NE(json.find("test.with\\\"quote"), std::string::npos);
  EXPECT_NE(json.find("\"augmented-expm\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
}

TEST_F(ObsTest, JsonlSinkEmitsOneObjectPerLine) {
  obs::set_enabled(true);
  obs::counter("test.a").add(1);
  obs::counter("test.b").add(2);
  obs::record_event({.kind = obs::SolverEventKind::kTransient, .method = "pade-expm"});
  { GOP_OBS_SPAN("test.line"); }

  const std::string jsonl = obs::render_jsonl(obs::snapshot());
  size_t lines = 0;
  for (char c : jsonl) {
    if (c == '\n') ++lines;
  }
  // two counters + one event + one span >= 4 lines, each a {...} object.
  EXPECT_GE(lines, 4u);
  std::istringstream stream(jsonl);
  std::string line;
  while (std::getline(stream, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

}  // namespace
}  // namespace gop
