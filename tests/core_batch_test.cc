// Tests for the batched performability pipeline: constituents_batch /
// evaluate_batch bit-identity with the pointwise path at every thread count
// (sorted, unsorted and duplicated phi grids), and the solver-invocation
// accounting that proves the session amortization — one chain solve per
// (chain, t) however many measures read it, and one uniformization pass per
// chain per sweep.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/performability.hh"
#include "core/sweep.hh"
#include "markov/solver_stats.hh"

namespace gop::core {
namespace {

const PerformabilityAnalyzer& table3_analyzer() {
  static const PerformabilityAnalyzer analyzer(GsuParameters::table3());
  return analyzer;
}

void expect_same_bits(double got, double want, const char* field, double phi) {
  EXPECT_EQ(std::bit_cast<uint64_t>(got), std::bit_cast<uint64_t>(want))
      << field << " at phi=" << phi << ": " << got << " vs " << want;
}

void expect_same_measures(const ConstituentMeasures& got, const ConstituentMeasures& want,
                          double phi) {
  expect_same_bits(got.p_a1_phi, want.p_a1_phi, "p_a1_phi", phi);
  expect_same_bits(got.i_h, want.i_h, "i_h", phi);
  expect_same_bits(got.i_tau_h, want.i_tau_h, "i_tau_h", phi);
  expect_same_bits(got.i_hf, want.i_hf, "i_hf", phi);
  expect_same_bits(got.i_tau_h_literal, want.i_tau_h_literal, "i_tau_h_literal", phi);
  expect_same_bits(got.rho1, want.rho1, "rho1", phi);
  expect_same_bits(got.rho2, want.rho2, "rho2", phi);
  expect_same_bits(got.p_nd_theta, want.p_nd_theta, "p_nd_theta", phi);
  expect_same_bits(got.p_nd_rest, want.p_nd_rest, "p_nd_rest", phi);
  expect_same_bits(got.i_f, want.i_f, "i_f", phi);
}

TEST(Batch, MatchesPointwiseAtEveryThreadCount) {
  const std::vector<double> phis = linspace(0.0, 10000.0, 41);
  std::vector<ConstituentMeasures> pointwise;
  pointwise.reserve(phis.size());
  for (double phi : phis) pointwise.push_back(table3_analyzer().constituents(phi));

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    const std::vector<ConstituentMeasures> batch =
        table3_analyzer().constituents_batch(phis, threads);
    ASSERT_EQ(batch.size(), phis.size()) << "threads=" << threads;
    for (size_t i = 0; i < phis.size(); ++i) {
      expect_same_measures(batch[i], pointwise[i], phis[i]);
    }
  }
}

TEST(Batch, UnsortedInputComesBackInInputOrder) {
  const std::vector<double> phis{7000.0, 0.0, 10000.0, 2500.0, 2500.0, 1.0};
  for (size_t threads : {1u, 4u}) {
    const std::vector<ConstituentMeasures> batch =
        table3_analyzer().constituents_batch(phis, threads);
    ASSERT_EQ(batch.size(), phis.size());
    for (size_t i = 0; i < phis.size(); ++i) {
      expect_same_measures(batch[i], table3_analyzer().constituents(phis[i]), phis[i]);
    }
  }
}

TEST(Batch, EvaluateBatchMatchesEvaluate) {
  const std::vector<double> phis = linspace(0.0, 10000.0, 9);
  for (size_t threads : {1u, 4u}) {
    const std::vector<PerformabilityResult> batch =
        table3_analyzer().evaluate_batch(phis, threads);
    ASSERT_EQ(batch.size(), phis.size());
    for (size_t i = 0; i < phis.size(); ++i) {
      const PerformabilityResult r = table3_analyzer().evaluate(phis[i]);
      expect_same_bits(batch[i].y, r.y, "y", phis[i]);
      expect_same_bits(batch[i].y_s1, r.y_s1, "y_s1", phis[i]);
      expect_same_bits(batch[i].y_s2, r.y_s2, "y_s2", phis[i]);
      expect_same_bits(batch[i].gamma, r.gamma, "gamma", phis[i]);
      expect_same_bits(batch[i].e_w0, r.e_w0, "e_w0", phis[i]);
      expect_same_bits(batch[i].e_wphi, r.e_wphi, "e_wphi", phis[i]);
    }
  }
}

TEST(Batch, EmptyBatchAndRangeValidation) {
  EXPECT_TRUE(table3_analyzer().constituents_batch({}).empty());
  const std::vector<double> below{-1.0};
  const std::vector<double> above{10001.0};
  EXPECT_THROW(table3_analyzer().constituents_batch(below), InvalidArgument);
  EXPECT_THROW(table3_analyzer().constituents_batch(above), InvalidArgument);
}

TEST(SolverAccounting, EvaluateSolvesEachChainOnce) {
  const PerformabilityAnalyzer& analyzer = table3_analyzer();
  auto& stats = markov::solver_stats();

  // One evaluation = four chain solves (RMGd distribution, RMGd occupancy,
  // RMNd-new, RMNd-old), shared across every measure that reads them.
  stats.reset();
  analyzer.evaluate(2500.0);
  EXPECT_EQ(stats.matrix_exponentials.load(), 4u);

  // At phi = 0 both RMGd solves are free (t = 0), leaving the two RMNd ones.
  stats.reset();
  analyzer.evaluate(0.0);
  EXPECT_EQ(stats.matrix_exponentials.load(), 2u);

  // The per-measure cost this replaced: one solver run per measure — four
  // RMGd distributions, two RMGd occupancies, two RMNd distributions.
  stats.reset();
  const auto& gd = analyzer.rm_gd();
  analyzer.gd_chain().instant_reward(gd.reward_p_a1(), 2500.0);
  analyzer.gd_chain().instant_reward(gd.reward_ih(), 2500.0);
  analyzer.gd_chain().instant_reward(gd.reward_ihf(), 2500.0);
  analyzer.gd_chain().instant_reward(gd.reward_detected(), 2500.0);
  analyzer.gd_chain().accumulated_reward(gd.reward_itauh(), 2500.0);
  analyzer.gd_chain().accumulated_reward(gd.reward_detected(), 2500.0);
  analyzer.nd_new_chain().instant_reward(analyzer.rm_nd_new().reward_no_failure(), 7500.0);
  analyzer.nd_old_chain().instant_reward(analyzer.rm_nd_old().reward_no_failure(), 7500.0);
  EXPECT_EQ(stats.matrix_exponentials.load(), 8u);
}

TEST(SolverAccounting, UniformizationSweepIsOnePassPerChain) {
  // Force uniformization everywhere. The RMGd and RMNd chains carry the
  // message rate lambda = 1200/h, so shrink the mission time to keep
  // Lambda*t within the solver's budget at every solve (including the
  // constructor's P(X''_theta) solve at t = theta).
  AnalyzerOptions options;
  options.transient.method = markov::TransientMethod::kUniformization;
  options.accumulated.method = markov::AccumulatedMethod::kUniformization;
  GsuParameters params = GsuParameters::table3();
  params.theta = 400.0;
  const PerformabilityAnalyzer analyzer(params, options);
  const std::vector<double> phis{50.0, 100.0, 200.0};
  auto& stats = markov::solver_stats();

  stats.reset();
  const std::vector<ConstituentMeasures> batch = analyzer.constituents_batch(phis, 1);
  EXPECT_EQ(stats.uniformization_passes.load(), 4u);  // one per chain, whole grid

  stats.reset();
  std::vector<ConstituentMeasures> pointwise;
  for (double phi : phis) pointwise.push_back(analyzer.constituents(phi));
  EXPECT_EQ(stats.uniformization_passes.load(), 4u * phis.size());

  for (size_t i = 0; i < phis.size(); ++i) {
    expect_same_measures(batch[i], pointwise[i], phis[i]);
  }
}

TEST(SolverAccounting, OptimizerNeverResolvesAnEvaluatedPoint) {
  OptimizeOptions options;
  options.grid_points = 11;
  options.phi_tolerance = 5.0;
  const PerformabilityAnalyzer& analyzer = table3_analyzer();  // construct before reset
  auto& stats = markov::solver_stats();

  stats.reset();
  const OptimalPhi best = find_optimal_phi(analyzer, options);
  const uint64_t solves = stats.matrix_exponentials.load();

  // Grid scan: 9 interior points at 4 solves each, plus 2 at each endpoint
  // (phi = 0 frees the RMGd solves, phi = theta the RMNd ones) = 40.
  // Golden-section on the 2000-hour bracket to a 5-hour tolerance needs 15
  // probes at 4 solves each; anything above 40 + 60 means a phi was solved
  // twice (the bug this bounds: re-solving grid points or a final midpoint).
  EXPECT_EQ(solves % 4, 0u);
  EXPECT_LE(solves, 100u);
  EXPECT_GE(solves, 60u);

  // The reported optimum is a point that was actually evaluated.
  expect_same_bits(table3_analyzer().evaluate(best.phi).y, best.y, "best.y", best.phi);
  EXPECT_GT(best.phi, 6000.0);
  EXPECT_LT(best.phi, 8000.0);
}

}  // namespace
}  // namespace gop::core
