// Unit tests for gop::linalg CSR matrices, the COO builder and vector ops.

#include <gtest/gtest.h>

#include "linalg/csr_matrix.hh"
#include "linalg/vector_ops.hh"
#include "util/error.hh"

namespace gop::linalg {
namespace {

CsrMatrix small() {
  CooBuilder b(3, 3);
  b.add(0, 1, 2.0);
  b.add(1, 0, 3.0);
  b.add(1, 2, 4.0);
  b.add(2, 2, 5.0);
  return b.build();
}

TEST(CooBuilder, SumsDuplicates) {
  CooBuilder b(2, 2);
  b.add(0, 1, 1.0);
  b.add(0, 1, 2.5);
  const CsrMatrix m = b.build();
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 3.5);
}

TEST(CooBuilder, DropsExactZeros) {
  CooBuilder b(2, 2);
  b.add(0, 0, 0.0);
  b.add(1, 1, 1.0);
  b.add(1, 1, -1.0);  // cancels to zero
  EXPECT_EQ(b.build().nnz(), 0u);
}

TEST(CooBuilder, OutOfRangeThrows) {
  CooBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), InvalidArgument);
  EXPECT_THROW(b.add(0, 2, 1.0), InvalidArgument);
}

TEST(CsrMatrix, BasicAccessors) {
  const CsrMatrix m = small();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);  // absent entry
}

TEST(CsrMatrix, RowSums) {
  const CsrMatrix m = small();
  EXPECT_DOUBLE_EQ(m.row_sum(0), 2.0);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 7.0);
  EXPECT_DOUBLE_EQ(m.row_sum(2), 5.0);
}

TEST(CsrMatrix, LeftMultiplyMatchesDense) {
  const CsrMatrix m = small();
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> sparse = m.left_multiply(x);
  const std::vector<double> dense = m.to_dense().left_multiply(x);
  for (size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(sparse[i], dense[i]);
}

TEST(CsrMatrix, RightMultiplyMatchesDense) {
  const CsrMatrix m = small();
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> sparse = m.right_multiply(x);
  const std::vector<double> dense = m.to_dense().right_multiply(x);
  for (size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(sparse[i], dense[i]);
}

TEST(CsrMatrix, TransposeRoundTrip) {
  const CsrMatrix m = small();
  const CsrMatrix tt = m.transpose().transpose();
  for (size_t r = 0; r < 3; ++r)
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(tt.at(r, c), m.at(r, c));
}

TEST(CsrMatrix, TransposeEntries) {
  const CsrMatrix t = small().transpose();
  EXPECT_DOUBLE_EQ(t.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 3.0);
}

TEST(CsrMatrix, Scaled) {
  const CsrMatrix m = small().scaled(2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 8.0);
}

TEST(CsrMatrix, NormInf) { EXPECT_DOUBLE_EQ(small().norm_inf(), 7.0); }

TEST(CsrMatrix, FromDenseWithDropTolerance) {
  DenseMatrix d(2, 2);
  d(0, 0) = 1e-14;
  d(1, 1) = 1.0;
  EXPECT_EQ(CsrMatrix::from_dense(d, 1e-12).nnz(), 1u);
  EXPECT_EQ(CsrMatrix::from_dense(d).nnz(), 2u);
}

TEST(CsrMatrix, InvalidCsrArraysThrow) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0}), InvalidArgument);       // row_ptr too short
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1, 2}, {0}, {1.0}), InvalidArgument);    // back != nnz
  EXPECT_THROW(CsrMatrix(2, 2, {0, 0, 1}, {5}, {1.0}), InvalidArgument);    // col out of range
}

// --- vector ops ----------------------------------------------------------------

TEST(VectorOps, Axpy) {
  std::vector<double> y{1, 2};
  axpy(2.0, {10, 20}, y);
  EXPECT_DOUBLE_EQ(y[0], 21);
  EXPECT_DOUBLE_EQ(y[1], 42);
}

TEST(VectorOps, Dot) { EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32); }

TEST(VectorOps, LengthMismatchThrows) {
  std::vector<double> y{1.0};
  EXPECT_THROW(axpy(1.0, {1, 2}, y), InvalidArgument);
  EXPECT_THROW(dot({1.0}, {1, 2}), InvalidArgument);
  EXPECT_THROW(max_abs_diff({1.0}, {1, 2}), InvalidArgument);
}

TEST(VectorOps, Norms) {
  EXPECT_DOUBLE_EQ(norm_inf({1, -5, 3}), 5);
  EXPECT_DOUBLE_EQ(norm_1({1, -5, 3}), 9);
  EXPECT_DOUBLE_EQ(sum({1, -5, 3}), -1);
}

TEST(VectorOps, MaxAbsDiff) { EXPECT_DOUBLE_EQ(max_abs_diff({1, 2}, {3, 1.5}), 2.0); }

TEST(VectorOps, NormalizeProbability) {
  std::vector<double> x{1, 3};
  normalize_probability(x);
  EXPECT_DOUBLE_EQ(x[0], 0.25);
  EXPECT_DOUBLE_EQ(x[1], 0.75);
  std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(normalize_probability(zeros), InvalidArgument);
}

TEST(VectorOps, IsProbabilityVector) {
  EXPECT_TRUE(is_probability_vector({0.25, 0.75}));
  EXPECT_FALSE(is_probability_vector({0.5, 0.6}));   // sums to 1.1
  EXPECT_FALSE(is_probability_vector({-0.5, 1.5}));  // negative entry
  EXPECT_TRUE(is_probability_vector({0.5, 0.5 + 1e-12}, 1e-9));
}

}  // namespace
}  // namespace gop::linalg
