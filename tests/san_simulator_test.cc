// Tests for the SAN discrete-event simulator: agreement with the numerical
// solvers (statistical), determinism, early stopping, observers.

#include <gtest/gtest.h>

#include <cmath>

#include "san/expr.hh"
#include "san/simulator.hh"
#include "san/state_space.hh"
#include "util/error.hh"

namespace gop::san {
namespace {

struct TogglePair {
  SanModel model{"toggle"};
  PlaceRef a = model.add_place("a", 1);
  PlaceRef b = model.add_place("b");

  TogglePair(double forward = 2.0, double backward = 3.0) {
    model.add_timed_activity("fwd", has_tokens(a), constant_rate(forward),
                             sequence({add_mark(a, -1), add_mark(b, 1)}));
    model.add_timed_activity("bwd", has_tokens(b), constant_rate(backward),
                             sequence({add_mark(b, -1), add_mark(a, 1)}));
  }
};

TEST(Simulator, DeterministicGivenSeed) {
  TogglePair toggle;
  SanSimulator simulator(toggle.model);
  sim::Rng rng1(99), rng2(99);
  const Marking m1 = simulator.simulate(rng1, 50.0);
  const Marking m2 = simulator.simulate(rng2, 50.0);
  EXPECT_EQ(m1, m2);
}

TEST(Simulator, SojournsPartitionTheHorizon) {
  TogglePair toggle;
  SanSimulator simulator(toggle.model);
  sim::Rng rng(7);
  double covered = 0.0;
  double last_leave = 0.0;
  simulator.simulate(rng, 25.0, [&](const Marking&, double enter, double leave) {
    EXPECT_DOUBLE_EQ(enter, last_leave);
    EXPECT_GE(leave, enter);
    covered += leave - enter;
    last_leave = leave;
  });
  EXPECT_NEAR(covered, 25.0, 1e-12);
}

TEST(Simulator, AbsorptionHoldsFinalMarking) {
  SanModel m("death");
  const PlaceRef alive = m.add_place("alive", 1);
  m.add_timed_activity("die", has_tokens(alive), constant_rate(100.0), add_mark(alive, -1));
  SanSimulator simulator(m);
  sim::Rng rng(3);
  const Marking final_marking = simulator.simulate(rng, 10.0);
  EXPECT_EQ(final_marking[alive.index], 0);
}

TEST(Simulator, StopPredicateReturnsEarly) {
  SanModel m("death");
  const PlaceRef alive = m.add_place("alive", 1);
  m.add_timed_activity("die", has_tokens(alive), constant_rate(5.0), add_mark(alive, -1));
  SanSimulator simulator(m);
  sim::Rng rng(5);
  const auto outcome = simulator.simulate_until(rng, 1000.0, mark_eq(alive, 0));
  EXPECT_TRUE(outcome.stopped);
  EXPECT_LT(outcome.time, 1000.0);
  EXPECT_EQ(outcome.marking[alive.index], 0);
}

TEST(Simulator, StopPredicateOnInitialMarking) {
  TogglePair toggle;
  SanSimulator simulator(toggle.model);
  sim::Rng rng(1);
  const auto outcome = simulator.simulate_until(rng, 10.0, has_tokens(toggle.a));
  EXPECT_TRUE(outcome.stopped);
  EXPECT_DOUBLE_EQ(outcome.time, 0.0);
}

TEST(Simulator, NoStopRunsToHorizon) {
  TogglePair toggle;
  SanSimulator simulator(toggle.model);
  sim::Rng rng(1);
  const auto outcome = simulator.simulate_until(rng, 10.0, mark_ge(toggle.a, 100));
  EXPECT_FALSE(outcome.stopped);
  EXPECT_DOUBLE_EQ(outcome.time, 10.0);
}

TEST(Simulator, CompletionObserverSeesTimedActivities) {
  TogglePair toggle;
  SanSimulator simulator(toggle.model);
  sim::Rng rng(11);
  size_t completions = 0;
  simulator.simulate(rng, 100.0, nullptr, [&](ActivityRef ref, double) {
    EXPECT_TRUE(toggle.model.is_timed(ref));
    ++completions;
  });
  // Cycle rate = 1/(1/2 + 1/3) = 1.2 cycles/unit -> ~240 completions in 100u.
  EXPECT_GT(completions, 120u);
  EXPECT_LT(completions, 480u);
}

TEST(Simulator, InstantaneousActivitiesFireDuringSimulation) {
  // Timed into a vanishing marking; the instantaneous settle must fire and
  // the vanishing marking must never be observed as a sojourn.
  SanModel m("vanish");
  const PlaceRef src = m.add_place("src", 1);
  const PlaceRef mid = m.add_place("mid");
  const PlaceRef done = m.add_place("done");
  m.add_timed_activity("fire", has_tokens(src), constant_rate(50.0),
                       sequence({add_mark(src, -1), add_mark(mid, 1)}));
  m.add_instantaneous_activity("settle", has_tokens(mid),
                               sequence({add_mark(mid, -1), add_mark(done, 1)}));
  SanSimulator simulator(m);
  sim::Rng rng(17);
  bool saw_instantaneous = false;
  const Marking final_marking = simulator.simulate(
      rng, 10.0,
      [&](const Marking& marking, double, double) { EXPECT_EQ(marking[mid.index], 0); },
      [&](ActivityRef ref, double) {
        if (!m.is_timed(ref)) saw_instantaneous = true;
      });
  EXPECT_TRUE(saw_instantaneous);
  EXPECT_EQ(final_marking[done.index], 1);
}

TEST(Simulator, VanishingLoopDetected) {
  SanModel m("loop");
  const PlaceRef a = m.add_place("a", 1);
  const PlaceRef b = m.add_place("b");
  m.add_instantaneous_activity("ab", has_tokens(a),
                               sequence({add_mark(a, -1), add_mark(b, 1)}));
  m.add_instantaneous_activity("ba", has_tokens(b),
                               sequence({add_mark(b, -1), add_mark(a, 1)}));
  SanSimulator simulator(m);
  sim::Rng rng(23);
  EXPECT_THROW(simulator.simulate(rng, 1.0), InvalidArgument);
}

TEST(Simulator, InstantRewardEstimateMatchesSolver) {
  const double fwd = 2.0, bwd = 3.0, t = 0.6;
  TogglePair toggle(fwd, bwd);
  const GeneratedChain chain = generate_state_space(toggle.model);
  RewardStructure reward;
  reward.add(has_tokens(toggle.a), 1.0);
  const double exact = chain.instant_reward(reward, t);

  SanSimulator simulator(toggle.model);
  sim::ReplicationOptions options;
  options.seed = 1234;
  options.min_replications = 4000;
  options.max_replications = 4000;
  const auto estimate = simulator.estimate_instant_reward(reward, t, options);
  EXPECT_NEAR(estimate.mean(), exact, 4.0 * estimate.stats.std_error() + 1e-3);
}

TEST(Simulator, AccumulatedRewardEstimateMatchesSolver) {
  const double fwd = 2.0, bwd = 3.0, t = 3.0;
  TogglePair toggle(fwd, bwd);
  const GeneratedChain chain = generate_state_space(toggle.model);
  RewardStructure reward;
  reward.add(has_tokens(toggle.a), 1.0);
  const double exact = chain.accumulated_reward(reward, t);

  SanSimulator simulator(toggle.model);
  sim::ReplicationOptions options;
  options.seed = 4321;
  options.min_replications = 4000;
  options.max_replications = 4000;
  const auto estimate = simulator.estimate_accumulated_reward(reward, t, options);
  EXPECT_NEAR(estimate.mean(), exact, 4.0 * estimate.stats.std_error() + 1e-3);
}

TEST(Simulator, ImpulseRewardEstimateMatchesSolver) {
  const double fwd = 2.0, bwd = 3.0, t = 5.0;
  TogglePair toggle(fwd, bwd);
  const ActivityRef fwd_ref = toggle.model.timed_ref(0);
  const GeneratedChain chain = generate_state_space(toggle.model);
  RewardStructure reward;
  reward.add_impulse(fwd_ref, 2.5);
  const double exact = chain.accumulated_reward(reward, t);

  SanSimulator simulator(toggle.model);
  sim::ReplicationOptions options;
  options.seed = 777;
  options.min_replications = 4000;
  options.max_replications = 4000;
  const auto estimate = simulator.estimate_accumulated_reward(reward, t, options);
  EXPECT_NEAR(estimate.mean(), exact, 4.0 * estimate.stats.std_error() + 1e-2);
}

TEST(Simulator, NegativeHorizonThrows) {
  TogglePair toggle;
  SanSimulator simulator(toggle.model);
  sim::Rng rng(2);
  EXPECT_THROW(simulator.simulate(rng, -1.0), InvalidArgument);
}

}  // namespace
}  // namespace gop::san
