// Tests for the GSU parameter-sensitivity utilities (tornado, derivatives).

#include <gtest/gtest.h>

#include <cmath>

#include "core/sensitivity.hh"
#include "util/error.hh"

namespace gop::core {
namespace {

TEST(ParameterAccess, RoundTripAllParameters) {
  GsuParameters params = GsuParameters::table3();
  for (GsuParameterId id : all_parameters()) {
    const double original = get_parameter(params, id);
    set_parameter(params, id, original * 1.5);
    EXPECT_DOUBLE_EQ(get_parameter(params, id), original * 1.5) << parameter_name(id);
    set_parameter(params, id, original);
  }
}

TEST(ParameterAccess, NamesAreUnique) {
  std::vector<std::string> names;
  for (GsuParameterId id : all_parameters()) names.emplace_back(parameter_name(id));
  for (size_t i = 0; i < names.size(); ++i)
    for (size_t j = i + 1; j < names.size(); ++j) EXPECT_NE(names[i], names[j]);
  EXPECT_EQ(names.size(), 8u);
}

TEST(Tornado, CoversAllParametersSortedBySwing) {
  const auto entries = tornado_y(GsuParameters::table3(), 7000.0, 0.2);
  ASSERT_EQ(entries.size(), 8u);
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1].swing(), entries[i].swing());
  }
}

TEST(Tornado, FaultRateAndCoverageDominate) {
  // The paper's Figures 9 and 11 say mu_new and c drive Y; mu_old and
  // lambda are second-order. The tornado must agree.
  const auto entries = tornado_y(GsuParameters::table3(), 7000.0, 0.2);
  double swing_mu_new = 0.0, swing_coverage = 0.0, swing_mu_old = 0.0, swing_lambda = 0.0;
  for (const TornadoEntry& e : entries) {
    if (e.parameter == GsuParameterId::kMuNew) swing_mu_new = e.swing();
    if (e.parameter == GsuParameterId::kCoverage) swing_coverage = e.swing();
    if (e.parameter == GsuParameterId::kMuOld) swing_mu_old = e.swing();
    if (e.parameter == GsuParameterId::kLambda) swing_lambda = e.swing();
  }
  EXPECT_GT(swing_mu_new, swing_mu_old * 10.0);
  EXPECT_GT(swing_coverage, swing_mu_old * 10.0);
  EXPECT_GT(swing_mu_new, swing_lambda);
}

TEST(Tornado, CoverageClampedToOne) {
  GsuParameters params = GsuParameters::table3();
  params.coverage = 0.95;
  const auto entries = tornado_y(params, 5000.0, 0.2);
  for (const TornadoEntry& e : entries) {
    if (e.parameter == GsuParameterId::kCoverage) {
      EXPECT_DOUBLE_EQ(e.high_value, 1.0);  // 0.95 * 1.2 clamped
      EXPECT_NEAR(e.low_value, 0.76, 1e-12);
    }
  }
}

TEST(Tornado, InvalidVariationThrows) {
  EXPECT_THROW(tornado_y(GsuParameters::table3(), 5000.0, 0.0), InvalidArgument);
  EXPECT_THROW(tornado_y(GsuParameters::table3(), 5000.0, 1.0), InvalidArgument);
}

TEST(Derivative, SignsMatchPaperNarrative) {
  const GsuParameters params = GsuParameters::table3();
  const double phi = 5000.0;
  // Better coverage -> more benefit.
  EXPECT_GT(y_parameter_derivative(params, phi, GsuParameterId::kCoverage), 0.0);
  // Faster safeguards (higher alpha) -> less overhead -> more benefit.
  EXPECT_GT(y_parameter_derivative(params, phi, GsuParameterId::kAlpha), 0.0);
}

TEST(Derivative, ConsistentWithTornadoSecant) {
  const GsuParameters params = GsuParameters::table3();
  const double phi = 6000.0;
  const double derivative =
      y_parameter_derivative(params, phi, GsuParameterId::kMuNew, 1e-3);
  const auto entries = tornado_y(params, phi, 0.01);
  for (const TornadoEntry& e : entries) {
    if (e.parameter != GsuParameterId::kMuNew) continue;
    const double secant = (e.y_high - e.y_low) / (e.high_value - e.low_value);
    EXPECT_NEAR(derivative, secant, 0.05 * std::abs(secant));
  }
}

}  // namespace
}  // namespace gop::core
