// Tests for the ablation variants of the SAN reward models: timed acceptance
// tests in RMGd and Erlang safeguard durations in RMGp.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rm_gd.hh"
#include "core/rm_gp.hh"
#include "san/expr.hh"
#include "san/state_space.hh"
#include "util/error.hh"

namespace gop::core {
namespace {

using san::generate_state_space;
using san::GeneratedChain;

TEST(RmGdTimedAt, LargerStateSpaceNoVanishingAtMarkings) {
  const GsuParameters params = GsuParameters::table3();
  const RmGd instant = build_rm_gd(params);
  const RmGdOptions timed_options{.instantaneous_at = false};
  const RmGd timed = build_rm_gd(params, timed_options);

  const GeneratedChain instant_chain = generate_state_space(instant.model);
  const GeneratedChain timed_chain = generate_state_space(timed.model);
  // AT-pending markings become tangible in the timed variant.
  EXPECT_GT(timed_chain.state_count(), instant_chain.state_count());
  // The timed model has no instantaneous AT activities left.
  EXPECT_EQ(timed.model.instantaneous_activities().size(), 0u);
  EXPECT_EQ(instant.model.instantaneous_activities().size(), 2u);
}

TEST(RmGdTimedAt, MeasuresAgreeAtPaperRates) {
  const GsuParameters params = GsuParameters::table3();
  const RmGd instant = build_rm_gd(params);
  const RmGdOptions timed_options{.instantaneous_at = false};
  const RmGd timed = build_rm_gd(params, timed_options);

  const GeneratedChain instant_chain = generate_state_space(instant.model);
  const GeneratedChain timed_chain = generate_state_space(timed.model);
  for (double phi : {2000.0, 7000.0}) {
    EXPECT_NEAR(instant_chain.instant_reward(instant.reward_p_a1(), phi),
                timed_chain.instant_reward(timed.reward_p_a1(), phi), 1e-6);
    EXPECT_NEAR(instant_chain.instant_reward(instant.reward_ih(), phi),
                timed_chain.instant_reward(timed.reward_ih(), phi), 1e-6);
    EXPECT_NEAR(instant_chain.accumulated_reward(instant.reward_itauh(), phi),
                timed_chain.accumulated_reward(timed.reward_itauh(), phi), 1e-2);
  }
}

TEST(RmGdTimedAt, InstantMeasuresStillPartitionUnity) {
  const RmGdOptions timed_options{.instantaneous_at = false};
  const RmGd gd = build_rm_gd(GsuParameters::table3(), timed_options);
  const GeneratedChain chain = generate_state_space(gd.model);
  // The four Table-1 predicates partition the *verdict* classification even
  // with AT-pending states (those carry detected==0 && failure==0).
  san::RewardStructure a4;
  a4.add(san::all_of({san::mark_eq(gd.detected, 0), san::mark_eq(gd.failure, 1)}), 1.0);
  for (double phi : {1000.0, 9000.0}) {
    const double total = chain.instant_reward(gd.reward_p_a1(), phi) +
                         chain.instant_reward(gd.reward_ih(), phi) +
                         chain.instant_reward(gd.reward_ihf(), phi) +
                         chain.instant_reward(a4, phi);
    // The 68-state timed variant is stiffer, so allow a few more ulps of
    // exponential-squaring roundoff than the instantaneous model's 1e-9.
    EXPECT_NEAR(total, 1.0, 1e-7);
  }
}

TEST(RmGpErlang, OverheadsInsensitiveToDurationShape) {
  const GsuParameters params = GsuParameters::table3();
  const RmGp exponential = build_rm_gp(params);
  const RmGpOptions erlang_options{.duration_stages = 4};
  const RmGp erlang = build_rm_gp(params, erlang_options);

  const GeneratedChain exp_chain = generate_state_space(exponential.model);
  const GeneratedChain erl_chain = generate_state_space(erlang.model);
  EXPECT_GT(erl_chain.state_count(), exp_chain.state_count());

  EXPECT_NEAR(exp_chain.steady_state_reward(exponential.reward_overhead_p1n()),
              erl_chain.steady_state_reward(erlang.reward_overhead_p1n()), 1e-4);
  EXPECT_NEAR(exp_chain.steady_state_reward(exponential.reward_overhead_p2()),
              erl_chain.steady_state_reward(erlang.reward_overhead_p2()), 1e-3);
}

TEST(RmGpErlang, StillIrreducible) {
  const RmGpOptions erlang_options{.duration_stages = 3};
  const RmGp gp = build_rm_gp(GsuParameters::table3(), erlang_options);
  const GeneratedChain chain = generate_state_space(gp.model);
  EXPECT_NO_THROW(chain.steady_state_reward(gp.reward_overhead_p2()));
}

TEST(ModelVariants, OptionValidation) {
  const RmGpOptions bad{.duration_stages = 0};
  EXPECT_THROW(build_rm_gp(GsuParameters::table3(), bad), InvalidArgument);
}

}  // namespace
}  // namespace gop::core
