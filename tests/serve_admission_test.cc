// Tests for serve admission control: gated lint / preflight codes map to
// structured kRejected responses with the findings attached (the server
// never crashes on a bad model), generation failure surfaces as ADM001
// through the lint::admission_check entry point, and one gop::fi-armed
// campaign slice — a fault injected mid-serve shows up as recovery-ladder
// certificate degradation that the cache then preserves verbatim, never as
// a silently wrong cached entry.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "fi/fi.hh"
#include "lint/admission.hh"
#include "san/expr.hh"
#include "san/model.hh"
#include "serve/json.hh"
#include "serve/request.hh"
#include "serve/server.hh"
#include "util/error.hh"

namespace gop::serve {
namespace {

Request rmgd_request() {
  Request request;
  request.model = "rmgd";
  request.rewards = {"P_A1", "Ih"};
  request.transient_times = {7000.0};
  return request;
}

// --- lint codes -> structured rejections -------------------------------------

TEST(ServeAdmission, ModelLintErrorRejectsWithFindingsAttached) {
  // Case probabilities sum to 0.5: a SAN010 model-layer error. The inline
  // builder accepts the shape (semantics are admission's job), the server
  // rejects the request and attaches the finding.
  const Json description = parse(R"({
    "name": "halfprob",
    "places": [{"name": "p", "initial": 1, "capacity": 1}],
    "activities": [{"name": "a", "rate": 1.0,
                    "guard": [["p", ">=", 1]],
                    "cases": [{"prob": 0.5, "effects": [["p", "add", -1]]}]}],
    "rewards": [{"name": "r", "rates": [{"when": [["p", "==", 1]], "rate": 1.0}]}]
  })");
  Request request;
  request.inline_model = description;
  request.rewards = {"r"};
  request.transient_times = {1.0};

  Server server;
  const Response response = server.handle(request);
  EXPECT_EQ(response.status, Status::kRejected);
  EXPECT_TRUE(response.findings.has_errors());
  EXPECT_TRUE(response.findings.has_code("SAN010")) << response.findings.to_text();
  EXPECT_TRUE(response.results.empty());
  EXPECT_EQ(server.stats().rejected, 1u);

  // The server is healthy afterwards: the next well-formed request solves.
  EXPECT_TRUE(server.handle(rmgd_request()).ok());
}

TEST(ServeAdmission, SteadyStateOnAbsorbingChainRejectsWithPreflightCode) {
  // The RMNd chain has absorbing failure states; asking for a steady-state
  // reward is a per-request preflight error (PRE010), not a crash and not a
  // bogus all-mass-in-absorbing answer.
  Request request;
  request.model = "rmnd-new";
  request.rewards = {"no_failure"};
  request.steady_state = true;

  Server server;
  const Response response = server.handle(request);
  EXPECT_EQ(response.status, Status::kRejected);
  EXPECT_TRUE(response.findings.has_errors());
  EXPECT_TRUE(response.findings.has_code("PRE010")) << response.findings.to_text();
  EXPECT_EQ(server.stats().rejected, 1u);

  // The same model remains servable on a transient grid.
  request.steady_state = false;
  request.transient_times = {7000.0};
  const Response transient = server.handle(request);
  EXPECT_TRUE(transient.ok()) << transient.error;
}

TEST(ServeAdmission, GenerationFailureBecomesAdm001Finding) {
  // A layer-1-clean model whose reachable set exceeds the explosion guard:
  // admission_check captures the gop::ModelError as an ADM001 error finding
  // instead of letting it propagate.
  san::SanModel model("drain");
  const san::PlaceRef p = model.add_place("p", 5, /*capacity=*/5);
  model.add_timed_activity("a", san::mark_ge(p, 1), san::constant_rate(1.0),
                           san::add_mark(p, -1));

  san::RewardStructure reward("tokens");
  reward.add(san::mark_ge(p, 1), 1.0);

  lint::AdmissionInput input;
  input.model = &model;
  input.rewards = {&reward};
  const std::vector<double> grid{1.0};
  input.transient_times = grid;

  lint::AdmissionOptions options;
  options.generation.max_states = 2;  // 6 reachable markings > 2
  const lint::Report report = lint::admission_check(input, options);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_code("ADM001")) << report.to_text();

  // With an adequate budget the same model admits cleanly.
  const lint::Report clean = lint::admission_check(input);
  EXPECT_FALSE(clean.has_errors()) << clean.to_text();
}

TEST(ServeAdmission, MalformedRequestsAreStructuredErrorsNotCrashes) {
  Server server;

  Request unknown_model = rmgd_request();
  unknown_model.model = "no-such-model";
  const Response bad_model = server.handle(unknown_model);
  EXPECT_EQ(bad_model.status, Status::kError);
  EXPECT_FALSE(bad_model.error.empty());

  Request unknown_reward = rmgd_request();
  unknown_reward.rewards = {"no_such_reward"};
  const Response bad_reward = server.handle(unknown_reward);
  EXPECT_EQ(bad_reward.status, Status::kError);
  EXPECT_FALSE(bad_reward.error.empty());

  Request empty_request = rmgd_request();
  empty_request.rewards.clear();
  const Response no_rewards = server.handle(empty_request);
  EXPECT_EQ(no_rewards.status, Status::kError);

  Request no_grid = rmgd_request();
  no_grid.transient_times.clear();
  const Response nothing_to_solve = server.handle(no_grid);
  EXPECT_EQ(nothing_to_solve.status, Status::kError);

  EXPECT_EQ(server.stats().errors, 4u);
  EXPECT_TRUE(server.handle(rmgd_request()).ok());
}

TEST(ServeAdmission, DeeplyNestedJsonIsAParseErrorNotAStackOverflow) {
  // The daemon parses untrusted request lines with a recursive-descent
  // parser; a nesting bomb must be a structured parse error, not unbounded
  // recursion. 100k bytes of '[' would overflow the stack without the
  // depth limit.
  const std::string bomb(100'000, '[');
  EXPECT_THROW(parse(bomb), InvalidArgument);

  // Exactly at the limit parses; one level past it is rejected.
  std::string at_limit;
  for (size_t i = 0; i < kMaxParseDepth; ++i) at_limit += '[';
  for (size_t i = 0; i < kMaxParseDepth; ++i) at_limit += ']';
  EXPECT_NO_THROW(parse(at_limit));
  EXPECT_THROW(parse("[" + at_limit + "]"), InvalidArgument);

  // Mixed object/array nesting counts against the same budget.
  std::string mixed;
  for (size_t i = 0; i <= kMaxParseDepth / 2; ++i) mixed += R"({"k":[)";
  mixed += "1";
  for (size_t i = 0; i <= kMaxParseDepth / 2; ++i) mixed += "]}";
  EXPECT_THROW(parse(mixed), InvalidArgument);
}

// --- fi campaign slice -------------------------------------------------------

TEST(ServeAdmission, FaultMidServeDegradesCertificateNotCachedEntry) {
  if (!fi::compiled_in()) {
    GTEST_SKIP() << "fault injection compiled out (GOP_FI=OFF)";
  }

  // Reference bits from a clean server.
  Server clean;
  const Response reference = clean.handle(rmgd_request());
  ASSERT_TRUE(reference.ok()) << reference.error;

  // Arm the pade-expm scaling site to fire exactly once: the first cold
  // solve trips it mid-serve, the recovery ladder retries, and the response
  // carries the degradation in its certificate.
  Server server;
  fi::Plan plan(17);
  plan.arm(fi::SiteId::kExpmScalingOverflow, fi::Trigger::on_nth(1));
  fi::set_plan(plan);
  const Response faulted = server.handle(rmgd_request());
  fi::clear_plan();

  ASSERT_TRUE(faulted.ok()) << faulted.error;
  ASSERT_FALSE(faulted.certificates.empty());
  bool recovery_visible = false;
  for (const NamedCertificate& named : faulted.certificates) {
    if (named.certificate.degraded || named.certificate.retries > 0 ||
        named.certificate.fallback) {
      recovery_visible = true;
    }
  }
  EXPECT_TRUE(recovery_visible) << "fault left no trace in the certificates";

  // The recovered values are still the right answer.
  ASSERT_EQ(faulted.results.size(), reference.results.size());
  for (size_t i = 0; i < faulted.results.size(); ++i) {
    ASSERT_EQ(faulted.results[i].instant.size(), reference.results[i].instant.size());
    for (size_t j = 0; j < faulted.results[i].instant.size(); ++j) {
      EXPECT_TRUE(std::isfinite(faulted.results[i].instant[j]));
      EXPECT_NEAR(faulted.results[i].instant[j], reference.results[i].instant[j], 1e-9);
    }
  }

  // The cached entry preserves the degraded provenance verbatim: a repeat
  // is a hit whose payload AND certificates are bitwise those of the
  // recovered solve — not a silently "clean" (or silently wrong) entry.
  const Response replay = server.handle(rmgd_request());
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.cache_hit);
  ASSERT_EQ(replay.results.size(), faulted.results.size());
  for (size_t i = 0; i < replay.results.size(); ++i) {
    ASSERT_EQ(replay.results[i].instant.size(), faulted.results[i].instant.size());
    for (size_t j = 0; j < replay.results[i].instant.size(); ++j) {
      EXPECT_EQ(std::bit_cast<uint64_t>(replay.results[i].instant[j]),
                std::bit_cast<uint64_t>(faulted.results[i].instant[j]));
    }
  }
  ASSERT_EQ(replay.certificates.size(), faulted.certificates.size());
  for (size_t i = 0; i < replay.certificates.size(); ++i) {
    EXPECT_EQ(replay.certificates[i].certificate.degraded,
              faulted.certificates[i].certificate.degraded);
    EXPECT_EQ(replay.certificates[i].certificate.retries,
              faulted.certificates[i].certificate.retries);
    EXPECT_EQ(replay.certificates[i].certificate.attempts,
              faulted.certificates[i].certificate.attempts);
  }
}

}  // namespace
}  // namespace gop::serve
