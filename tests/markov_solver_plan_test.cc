// SolverPlan unit tests: the single home of the kAuto cutoffs
// (markov/solver_plan.{hh,cc}). These pin the resolution policy — dimension
// picks dense vs sparse, Lambda*t picks uniformization vs Krylov — plus the
// facts a plan carries (storage form, stiffness, window estimate) and the
// grid overload's horizon selection. The dispatchers, sessions, recovery
// ladder, and lint preflight all consume this one function, so these tests
// gate every layer's engine choice at once.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "markov/recovery.hh"
#include "markov/solver_plan.hh"

namespace gop {
namespace {

/// Two-state ping-pong chain with unit rates: Lambda = max exit rate = 1, so
/// horizons translate to Lambda*t directly.
markov::Ctmc toggle_chain() {
  std::vector<markov::Transition> transitions{{0, 1, 1.0, -1}, {1, 0, 1.0, -1}};
  return markov::Ctmc(2, std::move(transitions), {1.0, 0.0});
}

TEST(SolverPlanTransient, SmallChainResolvesDenseRegardlessOfHorizon) {
  const markov::Ctmc chain = toggle_chain();
  for (double t : {0.0, 1.0, 1e4, 1e9}) {
    const markov::SolverPlan plan = markov::plan_transient(chain, t);
    EXPECT_EQ(plan.transient, markov::TransientMethod::kMatrixExponential) << "t=" << t;
    EXPECT_EQ(plan.storage, markov::StorageForm::kDense) << "t=" << t;
    EXPECT_STREQ(plan.engine, "pade-expm") << "t=" << t;
  }
}

TEST(SolverPlanTransient, LargeChainSplitsOnStiffness) {
  const markov::Ctmc chain = toggle_chain();
  markov::TransientOptions options;
  options.auto_dense_max_states = 1;  // force the "large chain" branch

  const markov::SolverPlan mild = markov::plan_transient(chain, 10.0, options);
  EXPECT_EQ(mild.transient, markov::TransientMethod::kUniformization);
  EXPECT_EQ(mild.storage, markov::StorageForm::kSparse);
  EXPECT_STREQ(mild.engine, "uniformization");

  const double stiff_t = options.auto_stiffness_cutoff * 2.0;  // Lambda = 1
  const markov::SolverPlan stiff = markov::plan_transient(chain, stiff_t, options);
  EXPECT_EQ(stiff.transient, markov::TransientMethod::kKrylov);
  EXPECT_EQ(stiff.storage, markov::StorageForm::kSparse);
  EXPECT_STREQ(stiff.engine, "krylov-expv");
}

TEST(SolverPlanTransient, StiffnessCutoffIsInclusive) {
  // Exactly at the cutoff uniformization still wins — the boundary the old
  // dispatcher used, pinned so existing chains keep their engine.
  const markov::Ctmc chain = toggle_chain();
  markov::TransientOptions options;
  options.auto_dense_max_states = 1;
  const markov::SolverPlan at = markov::plan_transient(chain, options.auto_stiffness_cutoff, options);
  EXPECT_EQ(at.transient, markov::TransientMethod::kUniformization);
}

TEST(SolverPlanTransient, ForcedMethodBypassesTheCutoffs) {
  const markov::Ctmc chain = toggle_chain();
  markov::TransientOptions options;
  options.method = markov::TransientMethod::kKrylov;
  const markov::SolverPlan plan = markov::plan_transient(chain, 1.0, options);
  EXPECT_EQ(plan.transient, markov::TransientMethod::kKrylov);
  EXPECT_EQ(plan.storage, markov::StorageForm::kSparse);
  EXPECT_STREQ(plan.engine, "krylov-expv");
}

TEST(SolverPlanTransient, CarriesTheResolutionFacts) {
  const markov::Ctmc chain = toggle_chain();
  const markov::SolverPlan plan = markov::plan_transient(chain, 3.0);
  EXPECT_EQ(plan.states, 2u);
  EXPECT_DOUBLE_EQ(plan.fill, 0.5);  // 2 off-diagonal entries / 4
  EXPECT_DOUBLE_EQ(plan.horizon, 3.0);
  EXPECT_DOUBLE_EQ(plan.lambda_t, 3.0);  // max exit rate 1
  // Dense plan: the uniformization facts stay at their defaults.
  EXPECT_DOUBLE_EQ(plan.uniformization_lambda, 0.0);
  EXPECT_EQ(plan.window_estimate, 0u);
}

TEST(SolverPlanTransient, UniformizationPlanCarriesRateAndWindowEstimate) {
  const markov::Ctmc chain = toggle_chain();
  markov::TransientOptions options;
  options.method = markov::TransientMethod::kUniformization;
  const markov::SolverPlan plan = markov::plan_transient(chain, 10.0, options);
  EXPECT_NEAR(plan.uniformization_lambda, 1.02, 1e-12);  // rate slack included
  EXPECT_NEAR(plan.uniformization_lambda_t, 10.2, 1e-9);
  // The analytic window over-estimate must dominate Lambda*t.
  EXPECT_GT(plan.window_estimate, 10u);
}

TEST(SolverPlanTransient, GridOverloadResolvesAgainstLargestValidTime) {
  const markov::Ctmc chain = toggle_chain();
  const std::vector<double> times{0.0, 1.0, 7.0, 7.0, 2.0};
  const markov::SolverPlan plan = markov::plan_transient(chain, times);
  EXPECT_DOUBLE_EQ(plan.horizon, 7.0);

  // Invalid entries (PRE001's business) are skipped, not propagated.
  const std::vector<double> dirty{1.0, std::numeric_limits<double>::infinity(),
                                  std::nan(""), 4.0};
  EXPECT_DOUBLE_EQ(markov::plan_transient(chain, dirty).horizon, 4.0);

  EXPECT_DOUBLE_EQ(markov::plan_transient(chain, std::vector<double>{}).horizon, 0.0);
}

TEST(SolverPlanAccumulated, MirrorsTheTransientPolicy) {
  const markov::Ctmc chain = toggle_chain();
  markov::AccumulatedOptions options;
  options.auto_dense_max_states = 1;

  EXPECT_EQ(markov::plan_accumulated(chain, 10.0, options).accumulated,
            markov::AccumulatedMethod::kUniformization);
  EXPECT_EQ(markov::plan_accumulated(chain, options.auto_stiffness_cutoff * 2.0, options)
                .accumulated,
            markov::AccumulatedMethod::kKrylov);

  const markov::SolverPlan dense = markov::plan_accumulated(chain, 10.0);
  EXPECT_EQ(dense.accumulated, markov::AccumulatedMethod::kAugmentedExponential);
  EXPECT_EQ(dense.storage, markov::StorageForm::kDense);
  EXPECT_STREQ(dense.engine, "augmented-expm");
}

TEST(SolverPlanSteadyState, DimensionPicksGthVersusPower) {
  const markov::Ctmc chain = toggle_chain();
  const markov::SolverPlan gth = markov::plan_steady_state(chain);
  EXPECT_EQ(gth.steady_state, markov::SteadyStateMethod::kGth);
  EXPECT_EQ(gth.storage, markov::StorageForm::kDense);
  EXPECT_STREQ(gth.engine, "gth");

  markov::SteadyStateOptions options;
  options.auto_gth_max_states = 1;
  const markov::SolverPlan power = markov::plan_steady_state(chain, options);
  EXPECT_EQ(power.steady_state, markov::SteadyStateMethod::kPower);
  EXPECT_EQ(power.storage, markov::StorageForm::kSparse);
  EXPECT_STREQ(power.engine, "power");
}

TEST(SolverPlan, ResolveWrappersDelegateToThePlan) {
  // The resolve_* functions are thin wrappers — this is the grep-level "one
  // copy of the cutoff logic" guarantee expressed as behaviour.
  const markov::Ctmc chain = toggle_chain();
  markov::TransientOptions transient;
  transient.auto_dense_max_states = 1;
  const double stiff_t = transient.auto_stiffness_cutoff * 2.0;
  EXPECT_EQ(markov::resolve_transient_method(chain, stiff_t, transient),
            markov::plan_transient(chain, stiff_t, transient).transient);

  markov::AccumulatedOptions accumulated;
  accumulated.auto_dense_max_states = 1;
  EXPECT_EQ(markov::resolve_accumulated_method(chain, stiff_t, accumulated),
            markov::plan_accumulated(chain, stiff_t, accumulated).accumulated);

  EXPECT_EQ(markov::resolve_steady_state_method(chain, {}),
            markov::plan_steady_state(chain).steady_state);
}

TEST(SolverPlan, EngineLabelsRoundTripThroughEngineName) {
  EXPECT_STREQ(markov::engine_name(markov::TransientMethod::kKrylov), "krylov-expv");
  EXPECT_STREQ(markov::engine_name(markov::AccumulatedMethod::kKrylov), "krylov-augmented");
  EXPECT_STREQ(markov::to_string(markov::StorageForm::kDense), "dense");
  EXPECT_STREQ(markov::to_string(markov::StorageForm::kSparse), "sparse");
}

}  // namespace
}  // namespace gop
