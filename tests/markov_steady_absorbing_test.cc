// Tests for steady-state solvers (GTH / power / Gauss-Seidel) and
// absorbing-chain analysis.

#include <gtest/gtest.h>

#include <cmath>

#include "markov/absorbing.hh"
#include "markov/steady_state.hh"
#include "util/error.hh"

namespace gop::markov {
namespace {

Ctmc two_state(double a, double b) {
  return Ctmc(2, {{0, 1, a, 0}, {1, 0, b, 1}}, {1.0, 0.0});
}

/// Cyclic 3-state chain 0 -> 1 -> 2 -> 0 with distinct rates.
Ctmc cycle3() {
  return Ctmc(3, {{0, 1, 1.0, 0}, {1, 2, 2.0, 1}, {2, 0, 4.0, 2}}, {1.0, 0.0, 0.0});
}

TEST(SteadyState, TwoStateClosedForm) {
  const double a = 3.0, b = 7.0;
  const std::vector<double> pi = steady_state_distribution(two_state(a, b));
  EXPECT_NEAR(pi[0], b / (a + b), 1e-12);
  EXPECT_NEAR(pi[1], a / (a + b), 1e-12);
}

TEST(SteadyState, CycleOccupancyInverseToRates) {
  // pi_i proportional to 1/rate_i for a cycle.
  const std::vector<double> pi = steady_state_distribution(cycle3());
  const double z = 1.0 / 1.0 + 1.0 / 2.0 + 1.0 / 4.0;
  EXPECT_NEAR(pi[0], (1.0 / 1.0) / z, 1e-12);
  EXPECT_NEAR(pi[1], (1.0 / 2.0) / z, 1e-12);
  EXPECT_NEAR(pi[2], (1.0 / 4.0) / z, 1e-12);
}

class SteadyStateMethods : public ::testing::TestWithParam<SteadyStateMethod> {};

TEST_P(SteadyStateMethods, AllMethodsAgreeOnCycle) {
  SteadyStateOptions options;
  options.method = GetParam();
  const std::vector<double> pi = steady_state_distribution(cycle3(), options);
  const double z = 1.75;
  EXPECT_NEAR(pi[0], 1.0 / z, 1e-8);
  EXPECT_NEAR(pi[1], 0.5 / z, 1e-8);
  EXPECT_NEAR(pi[2], 0.25 / z, 1e-8);
}

TEST_P(SteadyStateMethods, RewardIsDotProduct) {
  SteadyStateOptions options;
  options.method = GetParam();
  const double value = steady_state_reward(two_state(1.0, 3.0), {1.0, 0.0}, options);
  EXPECT_NEAR(value, 0.75, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SteadyStateMethods,
                         ::testing::Values(SteadyStateMethod::kGth, SteadyStateMethod::kPower,
                                           SteadyStateMethod::kGaussSeidel));

TEST(SteadyState, GthRejectsAbsorbingChain) {
  const Ctmc chain(2, {{0, 1, 1.0, 0}}, {1.0, 0.0});
  SteadyStateOptions options;
  options.method = SteadyStateMethod::kGth;
  EXPECT_THROW(steady_state_distribution(chain, options), ModelError);
}

TEST(SteadyState, GaussSeidelRejectsAbsorbingChain) {
  const Ctmc chain(2, {{0, 1, 1.0, 0}}, {1.0, 0.0});
  SteadyStateOptions options;
  options.method = SteadyStateMethod::kGaussSeidel;
  EXPECT_THROW(steady_state_distribution(chain, options), InvalidArgument);
}

TEST(SteadyState, StiffChainViaGth) {
  const double a = 1e-8, b = 1e4;
  const std::vector<double> pi = steady_state_distribution(two_state(a, b));
  EXPECT_NEAR(pi[1] / (a / (a + b)), 1.0, 1e-10);  // relative accuracy on tiny mass
}

// --- absorbing analysis ---------------------------------------------------------

TEST(Absorbing, PureDeathMeanTime) {
  const double a = 0.25;
  const Ctmc chain(2, {{0, 1, a, 0}}, {1.0, 0.0});
  const AbsorbingAnalysis analysis = analyze_absorbing(chain);
  ASSERT_EQ(analysis.absorbing_states.size(), 1u);
  EXPECT_NEAR(analysis.mean_time_to_absorption, 1.0 / a, 1e-12);
  EXPECT_NEAR(analysis.absorption_probability[0], 1.0, 1e-12);
}

TEST(Absorbing, CompetingAbsorbers) {
  // 0 -> 1 at rate a, 0 -> 2 at rate b: absorbed in 1 w.p. a/(a+b).
  const double a = 2.0, b = 6.0;
  const Ctmc chain(3, {{0, 1, a, 0}, {0, 2, b, 1}}, {1.0, 0.0, 0.0});
  const AbsorbingAnalysis analysis = analyze_absorbing(chain);
  ASSERT_EQ(analysis.absorbing_states.size(), 2u);
  EXPECT_NEAR(analysis.absorption_probability[0], a / (a + b), 1e-12);
  EXPECT_NEAR(analysis.absorption_probability[1], b / (a + b), 1e-12);
  EXPECT_NEAR(analysis.mean_time_to_absorption, 1.0 / (a + b), 1e-12);
}

TEST(Absorbing, TandemChainMeanTimeAdds) {
  // 0 -> 1 -> 2 with rates r0, r1: MTTA = 1/r0 + 1/r1.
  const double r0 = 2.0, r1 = 0.5;
  const Ctmc chain(3, {{0, 1, r0, 0}, {1, 2, r1, 1}}, {1.0, 0.0, 0.0});
  const AbsorbingAnalysis analysis = analyze_absorbing(chain);
  EXPECT_NEAR(analysis.mean_time_to_absorption, 1.0 / r0 + 1.0 / r1, 1e-12);
  ASSERT_EQ(analysis.expected_time_in_state.size(), 2u);
  EXPECT_NEAR(analysis.expected_time_in_state[0], 1.0 / r0, 1e-12);
  EXPECT_NEAR(analysis.expected_time_in_state[1], 1.0 / r1, 1e-12);
}

TEST(Absorbing, WithLoopBeforeAbsorption) {
  // 0 <-> 1, and 1 -> 2 (absorbing). Starting at 0:
  // MTTA = (expected visits) analysis; closed form for this birth-death:
  // E[T] = 1/a + (1 + a/b ... ) — compute via first-step analysis:
  // t0 = 1/a + t1; t1 = 1/(b+c) + b/(b+c) t0, with a=0->1, b=1->0, c=1->2.
  const double a = 1.0, b = 3.0, c = 2.0;
  const Ctmc chain(3, {{0, 1, a, 0}, {1, 0, b, 1}, {1, 2, c, 2}}, {1.0, 0.0, 0.0});
  double t1 = 0, t0 = 0;
  // Solve the 2x2 first-step system directly.
  // t0 = 1/a + t1;  t1 = 1/(b+c) + (b/(b+c)) t0
  // => t1 = (1/(b+c) + b/(a(b+c))) / (1 - b/(b+c))
  t1 = (1.0 / (b + c) + b / (a * (b + c))) / (1.0 - b / (b + c));
  t0 = 1.0 / a + t1;
  const AbsorbingAnalysis analysis = analyze_absorbing(chain);
  EXPECT_NEAR(analysis.mean_time_to_absorption, t0, 1e-12);
}

TEST(Absorbing, InitialMassOnAbsorbingState) {
  const Ctmc chain(2, {{0, 1, 1.0, 0}}, {0.25, 0.75});
  const AbsorbingAnalysis analysis = analyze_absorbing(chain);
  EXPECT_NEAR(analysis.absorption_probability[0], 1.0, 1e-12);
  EXPECT_NEAR(analysis.mean_time_to_absorption, 0.25 * 1.0, 1e-12);
}

TEST(Absorbing, NoAbsorbingStateThrows) {
  EXPECT_THROW(analyze_absorbing(two_state(1.0, 1.0)), InvalidArgument);
}

TEST(Absorbing, ExponentialAbsorptionVariance) {
  const double a = 0.4;
  const Ctmc chain(2, {{0, 1, a, 0}}, {1.0, 0.0});
  const AbsorbingAnalysis analysis = analyze_absorbing(chain);
  EXPECT_NEAR(analysis.second_moment_time_to_absorption, 2.0 / (a * a), 1e-12);
  EXPECT_NEAR(analysis.variance_time_to_absorption(), 1.0 / (a * a), 1e-12);
}

TEST(Absorbing, TandemAbsorptionVarianceAdds) {
  // Sum of independent exponentials: variances add.
  const double r0 = 2.0, r1 = 0.5;
  const Ctmc chain(3, {{0, 1, r0, 0}, {1, 2, r1, 1}}, {1.0, 0.0, 0.0});
  const AbsorbingAnalysis analysis = analyze_absorbing(chain);
  EXPECT_NEAR(analysis.variance_time_to_absorption(), 1.0 / (r0 * r0) + 1.0 / (r1 * r1),
              1e-10);
}

TEST(Absorbing, CompetingExitIsStillExponential) {
  const double a = 2.0, b = 6.0;
  const Ctmc chain(3, {{0, 1, a, 0}, {0, 2, b, 1}}, {1.0, 0.0, 0.0});
  const AbsorbingAnalysis analysis = analyze_absorbing(chain);
  const double rate = a + b;
  EXPECT_NEAR(analysis.variance_time_to_absorption(), 1.0 / (rate * rate), 1e-12);
}

TEST(Absorbing, ErlangVarianceIsKOverRateSquared) {
  // Four identical stages at rate r: Var = 4 / r^2.
  const double r = 3.0;
  const Ctmc chain(5, {{0, 1, r, 0}, {1, 2, r, 1}, {2, 3, r, 2}, {3, 4, r, 3}},
                   {1.0, 0.0, 0.0, 0.0, 0.0});
  const AbsorbingAnalysis analysis = analyze_absorbing(chain);
  EXPECT_NEAR(analysis.mean_time_to_absorption, 4.0 / r, 1e-12);
  EXPECT_NEAR(analysis.variance_time_to_absorption(), 4.0 / (r * r), 1e-11);
}

TEST(Absorbing, AbsorptionProbabilitiesSumToOne) {
  const Ctmc chain(4,
                   {{0, 1, 1.0, 0}, {1, 0, 1.0, 1}, {0, 2, 0.5, 2}, {1, 3, 0.25, 3}},
                   {1.0, 0.0, 0.0, 0.0});
  const AbsorbingAnalysis analysis = analyze_absorbing(chain);
  double total = 0.0;
  for (double p : analysis.absorption_probability) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
}  // namespace gop::markov
