// Tests for the incremental transient series evaluator (and, incidentally,
// the umbrella header, which this file includes in place of individual
// headers).

#include <gtest/gtest.h>

#include "gop.hh"

namespace gop::markov {
namespace {

Ctmc two_state(double a, double b) {
  return Ctmc(2, {{0, 1, a, 0}, {1, 0, b, 1}}, {1.0, 0.0});
}

TEST(TransientSeries, MatchesPointwiseSolutions) {
  const Ctmc chain = two_state(2.0, 5.0);
  const std::vector<double> times{0.0, 0.25, 0.5, 0.75, 1.0, 2.5};
  const auto series = transient_distribution_series(chain, times);
  ASSERT_EQ(series.size(), times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    const std::vector<double> direct = transient_distribution(chain, times[i]);
    EXPECT_NEAR(series[i][0], direct[0], 1e-11) << "t=" << times[i];
    EXPECT_NEAR(series[i][1], direct[1], 1e-11);
  }
}

TEST(TransientSeries, UniformGridUsesOneStepMatrix) {
  // Correctness proxy for the caching: a long uniform grid must still agree
  // with the direct solution at the far end, where 100 cached-step products
  // have been chained.
  const Ctmc chain = two_state(1.0, 3.0);
  const std::vector<double> times = core::linspace(0.0, 10.0, 101);
  const auto series = transient_distribution_series(chain, times);
  const std::vector<double> direct = transient_distribution(chain, 10.0);
  EXPECT_NEAR(series.back()[0], direct[0], 1e-9);
}

TEST(TransientSeries, RepeatedTimesShareDistributions) {
  const Ctmc chain = two_state(1.0, 1.0);
  const auto series = transient_distribution_series(chain, {0.5, 0.5, 0.5});
  EXPECT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0][0], series[2][0]);
}

TEST(TransientSeries, EmptyTimesGiveEmptySeries) {
  const Ctmc chain = two_state(1.0, 1.0);
  EXPECT_TRUE(transient_distribution_series(chain, {}).empty());
}

TEST(TransientSeries, UnsortedTimesThrow) {
  const Ctmc chain = two_state(1.0, 1.0);
  EXPECT_THROW(transient_distribution_series(chain, {1.0, 0.5}), InvalidArgument);
  EXPECT_THROW(transient_distribution_series(chain, {-1.0, 0.5}), InvalidArgument);
}

TEST(TransientSeries, UniformizationFallbackAgrees) {
  const Ctmc chain = two_state(2.0, 3.0);
  TransientOptions options;
  options.method = TransientMethod::kUniformization;
  const auto series = transient_distribution_series(chain, {0.2, 0.9}, options);
  EXPECT_NEAR(series[1][0], transient_distribution(chain, 0.9)[0], 1e-10);
}

}  // namespace
}  // namespace gop::markov
