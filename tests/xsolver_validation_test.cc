// Cross-solver validation: on a family of randomized (but seeded, fully
// deterministic) CTMCs, the uniformization engine, the dense Padé
// matrix-exponential engine, and the sparse Krylov expv engine must agree on
// transient distributions and accumulated occupancies to near machine
// precision. The engines share no numerics — Fox–Glynn-windowed Poisson
// mixing of DTMC powers vs scaling-and-squaring Padé [13/13] vs Arnoldi
// projection with adaptive sub-stepping — so pairwise agreement (1e-10 for
// the dense pair, 1e-8 three-way) is strong evidence all are correct, not
// merely consistent.
//
// Every comparison also asserts, through the gop::obs event stream, that the
// engine we asked for is the engine that ran — a silent dispatcher fallback
// would otherwise make the whole suite vacuous.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "markov/accumulated.hh"
#include "markov/ctmc.hh"
#include "markov/transient.hh"
#include "obs/obs.hh"

namespace gop {
namespace {

constexpr double kTolerance = 1e-10;
constexpr size_t kCases = 50;
constexpr uint64_t kBaseSeed = 0x5eed0d5e'2002'0623ULL;

/// Random strongly-connected-ish CTMC: n in [2, 12], each ordered pair gets a
/// transition with probability 0.4 (rate in [0.05, 2]), plus a guaranteed
/// cycle 0 -> 1 -> ... -> n-1 -> 0 so no state is a rate-zero dead end in
/// *every* draw; the initial distribution is a normalized random vector.
markov::Ctmc random_chain(std::mt19937_64& rng) {
  std::uniform_int_distribution<size_t> size_dist(2, 12);
  std::uniform_real_distribution<double> rate_dist(0.05, 2.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  const size_t n = size_dist(rng);
  std::vector<markov::Transition> transitions;
  for (size_t i = 0; i < n; ++i) {
    transitions.push_back({i, (i + 1) % n, rate_dist(rng), -1});
    for (size_t j = 0; j < n; ++j) {
      if (i == j || j == (i + 1) % n) continue;
      if (coin(rng) < 0.4) transitions.push_back({i, j, rate_dist(rng), -1});
    }
  }

  std::vector<double> initial(n);
  double total = 0.0;
  for (double& p : initial) {
    p = coin(rng) + 1e-3;
    total += p;
  }
  for (double& p : initial) p /= total;
  return markov::Ctmc(n, std::move(transitions), std::move(initial));
}

/// Horizon giving a moderate uniformization problem: Lambda*t in [0.5, 40].
double random_horizon(std::mt19937_64& rng, const markov::Ctmc& chain) {
  std::uniform_real_distribution<double> lambda_t_dist(0.5, 40.0);
  return lambda_t_dist(rng) / chain.max_exit_rate();
}

/// True when the event stream holds a record of `kind` whose method is
/// exactly `method` — i.e. the engine we forced is the engine that ran.
bool ran_method(const std::vector<obs::SolverEvent>& events, obs::SolverEventKind kind,
                const std::string& method) {
  for (const obs::SolverEvent& event : events) {
    if (event.kind == kind && event.method == method) return true;
  }
  return false;
}

class XSolverValidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

TEST_F(XSolverValidationTest, TransientUniformizationMatchesPadeExpm) {
  for (size_t c = 0; c < kCases; ++c) {
    std::mt19937_64 rng(kBaseSeed + c);
    const markov::Ctmc chain = random_chain(rng);
    const double t = random_horizon(rng, chain);

    markov::TransientOptions uni;
    uni.method = markov::TransientMethod::kUniformization;
    markov::TransientOptions expm;
    expm.method = markov::TransientMethod::kMatrixExponential;

    obs::reset();
    const std::vector<double> pi_uni = markov::transient_distribution(chain, t, uni);
    const std::vector<double> pi_expm = markov::transient_distribution(chain, t, expm);

    const obs::Snapshot snapshot = obs::snapshot();
    ASSERT_TRUE(ran_method(snapshot.events, obs::SolverEventKind::kTransient, "uniformization"))
        << "case " << c << ": uniformization silently not run";
    ASSERT_TRUE(ran_method(snapshot.events, obs::SolverEventKind::kTransient, "pade-expm"))
        << "case " << c << ": pade-expm silently not run";
    ASSERT_TRUE(
        ran_method(snapshot.events, obs::SolverEventKind::kMatrixExponential, "pade13"))
        << "case " << c << ": no dense expm event";

    ASSERT_EQ(pi_uni.size(), pi_expm.size());
    double sum = 0.0;
    for (size_t s = 0; s < pi_uni.size(); ++s) {
      EXPECT_NEAR(pi_uni[s], pi_expm[s], kTolerance)
          << "case " << c << " (n=" << chain.state_count() << ", t=" << t << "), state " << s;
      sum += pi_uni[s];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "case " << c << ": distribution does not sum to 1";
  }
}

TEST_F(XSolverValidationTest, AccumulatedUniformizationMatchesAugmentedExpm) {
  for (size_t c = 0; c < kCases; ++c) {
    std::mt19937_64 rng(kBaseSeed ^ (0x9e3779b97f4a7c15ULL * (c + 1)));
    const markov::Ctmc chain = random_chain(rng);
    const double t = random_horizon(rng, chain);

    markov::AccumulatedOptions uni;
    uni.method = markov::AccumulatedMethod::kUniformization;
    markov::AccumulatedOptions expm;
    expm.method = markov::AccumulatedMethod::kAugmentedExponential;

    obs::reset();
    const std::vector<double> occ_uni = markov::accumulated_occupancy(chain, t, uni);
    const std::vector<double> occ_expm = markov::accumulated_occupancy(chain, t, expm);

    const obs::Snapshot snapshot = obs::snapshot();
    ASSERT_TRUE(
        ran_method(snapshot.events, obs::SolverEventKind::kAccumulated, "uniformization"))
        << "case " << c << ": uniformization silently not run";
    ASSERT_TRUE(
        ran_method(snapshot.events, obs::SolverEventKind::kAccumulated, "augmented-expm"))
        << "case " << c << ": augmented-expm silently not run";

    ASSERT_EQ(occ_uni.size(), occ_expm.size());
    double sum = 0.0;
    for (size_t s = 0; s < occ_uni.size(); ++s) {
      // Occupancies scale with t, so compare with a tolerance scaled the same
      // way (t >= ~0.25 h in these draws, so this stays near 1e-10 absolute).
      EXPECT_NEAR(occ_uni[s], occ_expm[s], kTolerance * std::max(1.0, t))
          << "case " << c << " (n=" << chain.state_count() << ", t=" << t << "), state " << s;
      sum += occ_uni[s];
    }
    EXPECT_NEAR(sum, t, 1e-9 * std::max(1.0, t))
        << "case " << c << ": occupancies must sum to t";
  }
}

TEST_F(XSolverValidationTest, TransientKrylovMatchesUniformizationAndPade) {
  // Three-way agreement on the same 50 seeded chains: the Krylov expv engine
  // shares no numerics with either uniformization (Poisson mixing) or Padé
  // (scaling-and-squaring), so a common answer to 1e-8 certifies all three.
  constexpr double kKrylovTolerance = 1e-8;
  for (size_t c = 0; c < kCases; ++c) {
    std::mt19937_64 rng(kBaseSeed + c);
    const markov::Ctmc chain = random_chain(rng);
    const double t = random_horizon(rng, chain);

    markov::TransientOptions krylov;
    krylov.method = markov::TransientMethod::kKrylov;
    markov::TransientOptions uni;
    uni.method = markov::TransientMethod::kUniformization;
    markov::TransientOptions expm;
    expm.method = markov::TransientMethod::kMatrixExponential;

    obs::reset();
    const std::vector<double> pi_krylov = markov::transient_distribution(chain, t, krylov);
    const std::vector<double> pi_uni = markov::transient_distribution(chain, t, uni);
    const std::vector<double> pi_expm = markov::transient_distribution(chain, t, expm);

    const obs::Snapshot snapshot = obs::snapshot();
    ASSERT_TRUE(ran_method(snapshot.events, obs::SolverEventKind::kTransient, "krylov-expv"))
        << "case " << c << ": krylov-expv silently not run";
    ASSERT_TRUE(ran_method(snapshot.events, obs::SolverEventKind::kKrylovPass, "krylov-expv"))
        << "case " << c << ": no krylov_pass event — the expv action never executed";
    ASSERT_TRUE(ran_method(snapshot.events, obs::SolverEventKind::kTransient, "uniformization"))
        << "case " << c << ": uniformization silently not run";
    ASSERT_TRUE(ran_method(snapshot.events, obs::SolverEventKind::kTransient, "pade-expm"))
        << "case " << c << ": pade-expm silently not run";

    ASSERT_EQ(pi_krylov.size(), pi_uni.size());
    double sum = 0.0;
    for (size_t s = 0; s < pi_krylov.size(); ++s) {
      EXPECT_NEAR(pi_krylov[s], pi_uni[s], kKrylovTolerance)
          << "case " << c << " (n=" << chain.state_count() << ", t=" << t << "), state " << s;
      EXPECT_NEAR(pi_krylov[s], pi_expm[s], kKrylovTolerance)
          << "case " << c << " (n=" << chain.state_count() << ", t=" << t << "), state " << s;
      sum += pi_krylov[s];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "case " << c << ": distribution does not sum to 1";
  }
}

TEST_F(XSolverValidationTest, AccumulatedKrylovMatchesUniformizationAndAugmentedExpm) {
  constexpr double kKrylovTolerance = 1e-8;
  for (size_t c = 0; c < kCases; ++c) {
    std::mt19937_64 rng(kBaseSeed ^ (0x9e3779b97f4a7c15ULL * (c + 1)));
    const markov::Ctmc chain = random_chain(rng);
    const double t = random_horizon(rng, chain);

    markov::AccumulatedOptions krylov;
    krylov.method = markov::AccumulatedMethod::kKrylov;
    markov::AccumulatedOptions uni;
    uni.method = markov::AccumulatedMethod::kUniformization;
    markov::AccumulatedOptions expm;
    expm.method = markov::AccumulatedMethod::kAugmentedExponential;

    obs::reset();
    const std::vector<double> occ_krylov = markov::accumulated_occupancy(chain, t, krylov);
    const std::vector<double> occ_uni = markov::accumulated_occupancy(chain, t, uni);
    const std::vector<double> occ_expm = markov::accumulated_occupancy(chain, t, expm);

    const obs::Snapshot snapshot = obs::snapshot();
    ASSERT_TRUE(
        ran_method(snapshot.events, obs::SolverEventKind::kAccumulated, "krylov-augmented"))
        << "case " << c << ": krylov-augmented silently not run";
    ASSERT_TRUE(ran_method(snapshot.events, obs::SolverEventKind::kKrylovPass, "krylov-expv"))
        << "case " << c << ": no krylov_pass event — the augmented action never executed";
    ASSERT_TRUE(
        ran_method(snapshot.events, obs::SolverEventKind::kAccumulated, "uniformization"))
        << "case " << c << ": uniformization silently not run";
    ASSERT_TRUE(
        ran_method(snapshot.events, obs::SolverEventKind::kAccumulated, "augmented-expm"))
        << "case " << c << ": augmented-expm silently not run";

    ASSERT_EQ(occ_krylov.size(), occ_uni.size());
    double sum = 0.0;
    for (size_t s = 0; s < occ_krylov.size(); ++s) {
      EXPECT_NEAR(occ_krylov[s], occ_uni[s], kKrylovTolerance * std::max(1.0, t))
          << "case " << c << " (n=" << chain.state_count() << ", t=" << t << "), state " << s;
      EXPECT_NEAR(occ_krylov[s], occ_expm[s], kKrylovTolerance * std::max(1.0, t))
          << "case " << c << " (n=" << chain.state_count() << ", t=" << t << "), state " << s;
      sum += occ_krylov[s];
    }
    EXPECT_NEAR(sum, t, 1e-9 * std::max(1.0, t))
        << "case " << c << ": occupancies must sum to t";
  }
}

TEST_F(XSolverValidationTest, DispatcherNeverFallsBackSilently) {
  // kAuto must record the method it resolved to, and that method must match
  // what resolve_transient_method promises for the same inputs.
  for (size_t c = 0; c < 10; ++c) {
    std::mt19937_64 rng(kBaseSeed + 1000 + c);
    const markov::Ctmc chain = random_chain(rng);
    const double t = random_horizon(rng, chain);

    const markov::TransientOptions options;  // kAuto
    const markov::TransientMethod resolved =
        markov::resolve_transient_method(chain, t, options);
    const char* expected = resolved == markov::TransientMethod::kUniformization
                               ? "uniformization"
                               : "pade-expm";

    obs::reset();
    (void)markov::transient_distribution(chain, t, options);
    ASSERT_TRUE(ran_method(obs::snapshot().events, obs::SolverEventKind::kTransient, expected))
        << "case " << c << ": dispatcher event does not match resolve_transient_method";
  }
}

}  // namespace
}  // namespace gop
