// Cross-cutting integration tests of the core pipeline: reward variables vs
// the analyzer, approximation across the parameter grid, lumping applied to
// the GSU models, Krylov on the paper's chains, and the tools-level
// consistency between independent solution paths.

#include <gtest/gtest.h>

#include <cmath>

#include "core/approximation.hh"
#include "core/performability.hh"
#include "markov/krylov.hh"
#include "markov/lumping.hh"
#include "markov/transient.hh"
#include "san/lint.hh"
#include "san/reward_variable.hh"

namespace gop::core {
namespace {

const PerformabilityAnalyzer& analyzer() {
  static const PerformabilityAnalyzer instance(GsuParameters::table3());
  return instance;
}

TEST(CoreIntegration, RewardVariableApiMatchesAnalyzerMeasures) {
  // The Table-1 measures expressed through the generic RewardVariable API
  // must equal the analyzer's constituents.
  const double phi = 6000.0;
  const ConstituentMeasures m = analyzer().constituents(phi);
  const RmGd& gd = analyzer().rm_gd();

  const san::RewardVariable ih("Ih", gd.reward_ih(),
                               san::RewardVariableKind::kInstantOfTime, phi);
  const san::RewardVariable itauh("Itauh", gd.reward_itauh(),
                                  san::RewardVariableKind::kAccumulated, phi);
  EXPECT_NEAR(ih.solve(analyzer().gd_chain()), m.i_h, 1e-12);
  EXPECT_NEAR(itauh.solve(analyzer().gd_chain()), m.i_tau_h, 1e-9);
}

TEST(CoreIntegration, LintReportsTheExpectedStructure) {
  // RMGd: absorbing failure states, reducible; RMGp: irreducible, no dead
  // activities; RMNd: absorbing.
  const san::ModelDiagnostics gd = san::diagnose(analyzer().gd_chain());
  EXPECT_FALSE(gd.irreducible);
  EXPECT_FALSE(gd.absorbing_states.empty());
  EXPECT_TRUE(gd.dead_timed_activities.empty());

  const san::ModelDiagnostics gp = san::diagnose(analyzer().gp_chain());
  EXPECT_TRUE(gp.irreducible);
  EXPECT_TRUE(gp.absorbing_states.empty());
  EXPECT_EQ(gp.recurrent_class_count, 1u);
}

TEST(CoreIntegration, RmNdChainLumpsByContaminationCount) {
  // RMNd's pre-failure states with one contaminated process are symmetric
  // only if the two processes have equal fault rates — build such a variant
  // and verify the coarsest lumpable partition merges them.
  GsuParameters params = GsuParameters::table3();
  params.mu_new = params.mu_old;  // symmetric processes
  const RmNd nd = build_rm_nd(params, params.mu_old);
  const san::GeneratedChain chain = san::generate_state_space(nd.model);

  // Seed: distinguish failure from alive.
  markov::Partition seed(chain.state_count(), 0);
  for (size_t s = 0; s < chain.state_count(); ++s) {
    if (chain.states()[s][nd.failure.index] == 1) seed[s] = 1;
  }
  const markov::Partition coarsest =
      markov::coarsest_lumpable_partition(chain.ctmc(), seed);
  EXPECT_LT(markov::block_count(coarsest), chain.state_count());
  EXPECT_TRUE(markov::check_lumpable(chain.ctmc(), coarsest).lumpable);
}

TEST(CoreIntegration, KrylovAgreesOnRmGpModerateHorizon) {
  // RMGp at t = 0.05 h: Lambda*t ~ 300 — comfortably within Krylov's range.
  const markov::Ctmc& chain = analyzer().gp_chain().ctmc();
  const double t = 0.05;
  markov::TransientOptions dense;
  dense.method = markov::TransientMethod::kMatrixExponential;
  const std::vector<double> expected = markov::transient_distribution(chain, t, dense);
  const std::vector<double> actual = markov::krylov_transient_distribution(chain, t);
  for (size_t s = 0; s < chain.state_count(); ++s) {
    EXPECT_NEAR(actual[s], expected[s], 1e-8);
  }
}

struct ApproxCase {
  const char* label;
  GsuParameters params;
  double tolerance;
};

class ApproximationGrid : public ::testing::TestWithParam<ApproxCase> {};

TEST_P(ApproximationGrid, TracksExactYWithinTolerance) {
  const ApproxCase& c = GetParam();
  const PerformabilityAnalyzer exact(c.params);
  for (double frac : {0.0, 0.3, 0.6, 0.9}) {
    const double phi = frac * c.params.theta;
    const double y_exact = exact.evaluate(phi).y;
    const double y_approx = approximate_y(c.params, phi, exact.rho1(), exact.rho2()).y;
    EXPECT_NEAR(y_approx, y_exact, c.tolerance * y_exact)
        << c.label << " phi=" << phi;
  }
}

std::vector<ApproxCase> approx_grid() {
  std::vector<ApproxCase> cases;
  const auto add = [&](const char* label, double tol, auto mutate) {
    GsuParameters p = GsuParameters::table3();
    mutate(p);
    cases.push_back(ApproxCase{label, p, tol});
  };
  add("table3", 0.02, [](GsuParameters&) {});
  add("low_coverage", 0.02, [](GsuParameters& p) { p.coverage = 0.3; });
  add("high_fault", 0.03, [](GsuParameters& p) { p.mu_new = 5e-4; });
  add("short_theta", 0.02, [](GsuParameters& p) { p.theta = 3000.0; });
  add("flaky_old", 0.05, [](GsuParameters& p) { p.mu_old = 1e-6; });
  // Weak separation (lambda only 100x mu*theta scale): the dominant-term
  // argument degrades gracefully, not catastrophically.
  add("weak_separation", 0.10, [](GsuParameters& p) {
    p.lambda = 10.0;
    p.alpha = p.beta = 50.0;
  });
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, ApproximationGrid, ::testing::ValuesIn(approx_grid()),
                         [](const ::testing::TestParamInfo<ApproxCase>& spec) {
                           return spec.param.label;
                         });

}  // namespace
}  // namespace gop::core
