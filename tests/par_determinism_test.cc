// The gop::par determinism contract, end to end: parallel phi-sweeps,
// concurrent Monte Carlo replication runs, and workspace-reusing
// uniformization must all be *bit-identical* to their serial/allocating
// counterparts — parallelism is a scheduling decision, never a numerical one.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/mc_validator.hh"
#include "core/performability.hh"
#include "core/sweep.hh"
#include "markov/ctmc.hh"
#include "markov/uniformization.hh"
#include "sim/replication.hh"

namespace gop {
namespace {

void expect_bit_identical(const core::PerformabilityResult& a,
                          const core::PerformabilityResult& b) {
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.e_wi, b.e_wi);
  EXPECT_EQ(a.e_w0, b.e_w0);
  EXPECT_EQ(a.e_wphi, b.e_wphi);
  EXPECT_EQ(a.y_s1, b.y_s1);
  EXPECT_EQ(a.y_s2, b.y_s2);
  EXPECT_EQ(a.gamma, b.gamma);
  EXPECT_EQ(a.neglected_term, b.neglected_term);
  EXPECT_EQ(a.measures.p_a1_phi, b.measures.p_a1_phi);
  EXPECT_EQ(a.measures.i_h, b.measures.i_h);
  EXPECT_EQ(a.measures.i_tau_h, b.measures.i_tau_h);
  EXPECT_EQ(a.measures.i_tau_h_literal, b.measures.i_tau_h_literal);
  EXPECT_EQ(a.measures.i_hf, b.measures.i_hf);
  EXPECT_EQ(a.measures.rho1, b.measures.rho1);
  EXPECT_EQ(a.measures.rho2, b.measures.rho2);
  EXPECT_EQ(a.measures.p_nd_theta, b.measures.p_nd_theta);
  EXPECT_EQ(a.measures.p_nd_rest, b.measures.p_nd_rest);
  EXPECT_EQ(a.measures.i_f, b.measures.i_f);
}

TEST(SweepDeterminism, GopThreads4MatchesSerialBitForBit) {
  const core::GsuParameters params = core::GsuParameters::table3();
  const core::PerformabilityAnalyzer analyzer(params);
  const std::vector<double> phis = core::linspace(0.0, params.theta, 21);

  const std::vector<core::PerformabilityResult> serial =
      core::sweep_phi(analyzer, phis, core::SweepOptions{.threads = 1});

  // threads = 0 resolves through GOP_THREADS, the env-var path gop_study and
  // long-running services use.
  ASSERT_EQ(setenv("GOP_THREADS", "4", 1), 0);
  const std::vector<core::PerformabilityResult> parallel =
      core::sweep_phi(analyzer, phis, core::SweepOptions{.threads = 0});
  ASSERT_EQ(unsetenv("GOP_THREADS"), 0);

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) expect_bit_identical(serial[i], parallel[i]);
}

TEST(SweepDeterminism, FindOptimalPhiMatchesAcrossThreadCounts) {
  const core::GsuParameters params = core::GsuParameters::table3();
  const core::PerformabilityAnalyzer analyzer(params);

  core::OptimizeOptions serial_options;
  serial_options.grid_points = 21;
  serial_options.threads = 1;
  core::OptimizeOptions parallel_options = serial_options;
  parallel_options.threads = 4;

  const core::OptimalPhi serial = core::find_optimal_phi(analyzer, serial_options);
  const core::OptimalPhi parallel = core::find_optimal_phi(analyzer, parallel_options);
  EXPECT_EQ(serial.phi, parallel.phi);
  EXPECT_EQ(serial.y, parallel.y);
  EXPECT_EQ(serial.beneficial, parallel.beneficial);
}

TEST(ReplicationDeterminism, FixedSeedAndCountMatchAcrossWorkers) {
  // A replication whose value depends on the whole stream, so any seed or
  // ordering slip shows up in the estimate.
  const auto replication = [](sim::Rng& rng) {
    double v = rng.exponential(2.0);
    for (int i = 0; i < 8; ++i) v += rng.uniform() * rng.exponential(0.5 + i);
    return v;
  };

  sim::ReplicationOptions options;
  options.seed = 20020623;
  options.min_replications = 4000;
  options.max_replications = 4000;  // fixed count: no early stopping

  options.threads = 1;
  const sim::ReplicationResult serial = sim::run_replications(replication, options);

  options.threads = 4;
  const sim::ReplicationResult parallel = sim::run_replications(replication, options);

  EXPECT_EQ(serial.replications(), 4000u);
  EXPECT_EQ(parallel.replications(), 4000u);
  EXPECT_EQ(serial.mean(), parallel.mean());
  EXPECT_EQ(serial.stats.variance(), parallel.stats.variance());
  EXPECT_EQ(serial.half_width(), parallel.half_width());

  // Batch size partitions scheduling, not the reduction order: still equal.
  options.batch_size = 17;
  const sim::ReplicationResult odd_batches = sim::run_replications(replication, options);
  EXPECT_EQ(serial.mean(), odd_batches.mean());
  EXPECT_EQ(serial.stats.variance(), odd_batches.stats.variance());
}

TEST(ReplicationDeterminism, McValidatorSamplesMatchAcrossWorkers) {
  const core::GsuParameters params = core::GsuParameters::scaled_mission();
  const core::McValidator validator(params);
  const double phi = 0.6 * params.theta;
  const auto replication = [&](sim::Rng& rng) {
    return validator.sample_wphi(rng, phi, 1.99, 0.9);
  };

  sim::ReplicationOptions options;
  options.seed = 7;
  options.min_replications = 2000;
  options.max_replications = 2000;

  options.threads = 1;
  const sim::ReplicationResult serial = sim::run_replications(replication, options);
  options.threads = 4;
  const sim::ReplicationResult parallel = sim::run_replications(replication, options);

  EXPECT_EQ(serial.mean(), parallel.mean());
  EXPECT_EQ(serial.stats.variance(), parallel.stats.variance());
}

TEST(ReplicationDeterminism, ConcurrentEarlyStoppingRespectsBatchBoundaries) {
  const auto replication = [](sim::Rng& rng) { return rng.uniform(); };

  sim::ReplicationOptions options;
  options.seed = 11;
  options.min_replications = 100;
  options.max_replications = 50'000;
  options.target_half_width_abs = 0.01;
  options.threads = 4;
  options.batch_size = 128;

  const sim::ReplicationResult result = sim::run_replications(replication, options);
  EXPECT_TRUE(result.target_met);
  // Stops only at batch boundaries, and only once the minimum is reached.
  EXPECT_GE(result.replications(), options.min_replications);
  EXPECT_EQ(result.replications() % options.batch_size, 0u);
  EXPECT_LE(result.half_width(), 0.01);
}

TEST(UniformizationWorkspace, ReusedWorkspaceIsBitIdentical) {
  // Small irreducible chain with distinct rates; t chosen so the Poisson
  // window spans many DTMC steps.
  std::vector<markov::Transition> transitions{
      {0, 1, 2.0, 0}, {1, 2, 1.5, 1}, {2, 0, 0.7, 2}, {1, 0, 0.3, 3}};
  const markov::Ctmc chain(3, transitions, {1.0, 0.0, 0.0});
  const markov::UniformizationOptions options;

  markov::UniformizationWorkspace workspace;
  for (double t : {0.5, 3.0, 12.0, 3.0}) {
    const std::vector<double> fresh = markov::uniformized_transient_distribution(chain, t, options);
    const std::vector<double> reused =
        markov::uniformized_transient_distribution(chain, t, options, workspace);
    ASSERT_EQ(fresh.size(), reused.size());
    for (size_t s = 0; s < fresh.size(); ++s) EXPECT_EQ(fresh[s], reused[s]);

    const std::vector<double> fresh_acc = markov::uniformized_accumulated_occupancy(chain, t, options);
    const std::vector<double> reused_acc =
        markov::uniformized_accumulated_occupancy(chain, t, options, workspace);
    ASSERT_EQ(fresh_acc.size(), reused_acc.size());
    for (size_t s = 0; s < fresh_acc.size(); ++s) EXPECT_EQ(fresh_acc[s], reused_acc[s]);
  }
}

}  // namespace
}  // namespace gop
