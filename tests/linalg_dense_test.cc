// Unit tests for gop::linalg::DenseMatrix.

#include <gtest/gtest.h>

#include "linalg/dense_matrix.hh"
#include "util/error.hh"

namespace gop::linalg {
namespace {

TEST(DenseMatrix, ConstructionAndFill) {
  DenseMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.square());
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
}

TEST(DenseMatrix, FromRows) {
  const DenseMatrix m = DenseMatrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(0, 1), 2);
  EXPECT_DOUBLE_EQ(m(1, 0), 3);
  EXPECT_TRUE(m.square());
}

TEST(DenseMatrix, FromRowsRaggedThrows) {
  EXPECT_THROW(DenseMatrix::from_rows({{1, 2}, {3}}), InvalidArgument);
}

TEST(DenseMatrix, Identity) {
  const DenseMatrix eye = DenseMatrix::identity(3);
  for (size_t r = 0; r < 3; ++r)
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(eye(r, c), r == c ? 1.0 : 0.0);
}

TEST(DenseMatrix, Transpose) {
  const DenseMatrix m = DenseMatrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const DenseMatrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
}

TEST(DenseMatrix, AddSubtract) {
  const DenseMatrix a = DenseMatrix::from_rows({{1, 2}, {3, 4}});
  const DenseMatrix b = DenseMatrix::from_rows({{10, 20}, {30, 40}});
  EXPECT_DOUBLE_EQ((a + b)(1, 1), 44);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 9);
}

TEST(DenseMatrix, DimensionMismatchThrows) {
  const DenseMatrix a(2, 2);
  const DenseMatrix b(3, 3);
  EXPECT_THROW(a + b, InvalidArgument);
  EXPECT_THROW(a - b, InvalidArgument);
  EXPECT_THROW(a * b, InvalidArgument);
}

TEST(DenseMatrix, MatrixProduct) {
  const DenseMatrix a = DenseMatrix::from_rows({{1, 2}, {3, 4}});
  const DenseMatrix b = DenseMatrix::from_rows({{5, 6}, {7, 8}});
  const DenseMatrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(DenseMatrix, ProductWithIdentityIsNoop) {
  const DenseMatrix a = DenseMatrix::from_rows({{1, -2}, {0.5, 4}});
  const DenseMatrix c = a * DenseMatrix::identity(2);
  EXPECT_DOUBLE_EQ(c(0, 1), -2);
  EXPECT_DOUBLE_EQ(c(1, 0), 0.5);
}

TEST(DenseMatrix, RectangularProduct) {
  const DenseMatrix a = DenseMatrix::from_rows({{1, 2, 3}});       // 1x3
  const DenseMatrix b = DenseMatrix::from_rows({{1}, {2}, {3}});   // 3x1
  const DenseMatrix c = a * b;                                     // 1x1
  EXPECT_DOUBLE_EQ(c(0, 0), 14);
}

TEST(DenseMatrix, ScalarScaling) {
  DenseMatrix a = DenseMatrix::from_rows({{1, 2}, {3, 4}});
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(1, 1), 8);
  const DenseMatrix b = a * 0.5;
  EXPECT_DOUBLE_EQ(b(1, 1), 4);
}

TEST(DenseMatrix, LeftMultiply) {
  const DenseMatrix a = DenseMatrix::from_rows({{1, 2}, {3, 4}});
  const std::vector<double> y = a.left_multiply({1.0, 10.0});
  EXPECT_DOUBLE_EQ(y[0], 31);
  EXPECT_DOUBLE_EQ(y[1], 42);
}

TEST(DenseMatrix, RightMultiply) {
  const DenseMatrix a = DenseMatrix::from_rows({{1, 2}, {3, 4}});
  const std::vector<double> y = a.right_multiply({1.0, 10.0});
  EXPECT_DOUBLE_EQ(y[0], 21);
  EXPECT_DOUBLE_EQ(y[1], 43);
}

TEST(DenseMatrix, MultiplyLengthMismatchThrows) {
  const DenseMatrix a(2, 3);
  EXPECT_THROW(a.left_multiply({1.0}), InvalidArgument);
  EXPECT_THROW(a.right_multiply({1.0}), InvalidArgument);
}

TEST(DenseMatrix, NormInf) {
  const DenseMatrix a = DenseMatrix::from_rows({{1, -2}, {-3, 4}});
  EXPECT_DOUBLE_EQ(a.norm_inf(), 7);
  EXPECT_DOUBLE_EQ(a.norm_max(), 4);
}

TEST(DenseMatrix, ToString) {
  const DenseMatrix a = DenseMatrix::from_rows({{1.25, 0}});
  EXPECT_NE(a.to_string().find("1.25"), std::string::npos);
}

}  // namespace
}  // namespace gop::linalg
