// Tests for importance-sampled rare-event estimation.

#include <gtest/gtest.h>

#include <cmath>

#include "markov/ctmc_sim.hh"
#include "markov/importance.hh"
#include "markov/transient.hh"
#include "util/error.hh"

namespace gop::markov {
namespace {

/// Rare pure-death chain: 0 -> 1 at a tiny rate.
Ctmc rare_death(double rate) { return Ctmc(2, {{0, 1, rate, 7}}, {1.0, 0.0}); }

TEST(Importance, UnbiasedOnRareAbsorption) {
  // P(absorbed by t) = 1 - exp(-mu t) ~ 1e-3: crude MC at 2000 reps sees ~2
  // hits; biased x200 sees ~400 and must still estimate the true value.
  const double mu = 1e-3;
  const Ctmc chain = rare_death(mu);
  const double t = 1.0;
  const double exact = 1.0 - std::exp(-mu * t);

  const auto is_rare = [](const Transition& tr) { return tr.label == 7; };
  ImportanceOptions bias;
  bias.bias_factor = 200.0;
  sim::ReplicationOptions reps;
  reps.seed = 99;
  reps.min_replications = 2000;
  reps.max_replications = 2000;

  const auto estimate = is_instant_reward(chain, {0.0, 1.0}, t, is_rare, bias, reps);
  EXPECT_NEAR(estimate.mean(), exact, 4.0 * estimate.stats.std_error() + 1e-5);
  // And the relative error must beat crude MC's at the same budget.
  EXPECT_LT(estimate.stats.std_error() / exact, 0.2);
}

TEST(Importance, VarianceReductionVersusCrude) {
  const double mu = 1e-3;
  const Ctmc chain = rare_death(mu);
  const double t = 1.0;
  const std::vector<double> reward{0.0, 1.0};

  sim::ReplicationOptions reps;
  reps.seed = 7;
  reps.min_replications = 3000;
  reps.max_replications = 3000;

  const auto crude = mc_instant_reward(chain, reward, t, reps);
  const auto is_rare = [](const Transition& tr) { return tr.label == 7; };
  ImportanceOptions bias;
  bias.bias_factor = 300.0;
  const auto weighted = is_instant_reward(chain, reward, t, is_rare, bias, reps);

  EXPECT_LT(weighted.stats.std_error(), crude.stats.std_error() * 0.5);
}

TEST(Importance, NeutralBiasReducesToCrudeLaw) {
  // bias_factor 1: the likelihood is identically 1 on every path.
  const Ctmc chain(3, {{0, 1, 2.0, 0}, {1, 2, 1.0, 1}, {1, 0, 3.0, 2}}, {1.0, 0.0, 0.0});
  const auto is_rare = [](const Transition&) { return true; };
  ImportanceOptions neutral;
  neutral.bias_factor = 1.0;
  sim::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const BiasedPathOutcome outcome = simulate_biased(chain, rng, 2.0, is_rare, neutral);
    EXPECT_NEAR(outcome.likelihood, 1.0, 1e-12);
  }
}

TEST(Importance, LikelihoodCorrectOnTwoStateChain) {
  // Analytic check of the weighted estimator against the transient solver on
  // a chain where all transitions are biased.
  const Ctmc chain(2, {{0, 1, 0.01, 0}, {1, 0, 0.02, 1}}, {1.0, 0.0});
  const double t = 3.0;
  const double exact = transient_reward(chain, {0.0, 1.0}, t);

  const auto is_rare = [](const Transition&) { return true; };
  ImportanceOptions bias;
  bias.bias_factor = 50.0;
  sim::ReplicationOptions reps;
  reps.seed = 21;
  reps.min_replications = 20000;
  reps.max_replications = 20000;
  const auto estimate = is_instant_reward(chain, {0.0, 1.0}, t, is_rare, bias, reps);
  EXPECT_NEAR(estimate.mean(), exact, 5.0 * estimate.stats.std_error() + 1e-4);
}

TEST(Importance, Validation) {
  const Ctmc chain = rare_death(1.0);
  sim::Rng rng(1);
  ImportanceOptions bad;
  bad.bias_factor = 0.0;
  const auto is_rare = [](const Transition&) { return true; };
  EXPECT_THROW(simulate_biased(chain, rng, 1.0, is_rare, bad), InvalidArgument);
  EXPECT_THROW(simulate_biased(chain, rng, 1.0, nullptr), InvalidArgument);
  EXPECT_THROW(is_instant_reward(chain, {1.0}, 1.0, is_rare), InvalidArgument);
}

}  // namespace
}  // namespace gop::markov
