// Boundary tests for the Fox-Glynn epsilon refusal (kMinPoissonEpsilon) and
// its alignment with the uniformization solver and the PRE005 preflight gate:
// the same constant decides, in all three places, whether a truncation budget
// is accepted. Historically epsilons below ~1e-296 made the window's internal
// underflow floor collapse to zero and the outward scans spin forever; now
// they are refused up front.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lint/preflight.hh"
#include "markov/fox_glynn.hh"
#include "markov/transient.hh"
#include "markov/uniformization.hh"
#include "util/error.hh"

namespace gop::markov {
namespace {

TEST(FoxGlynnBoundary, RefusesEpsilonBelowMinimum) {
  EXPECT_THROW(poisson_window(10.0, std::nextafter(kMinPoissonEpsilon, 0.0)), InvalidArgument);
  EXPECT_THROW(poisson_window(10.0, 1e-308), InvalidArgument);  // would loop forever before
  EXPECT_THROW(poisson_window(10.0, 0.0), InvalidArgument);
  EXPECT_THROW(poisson_window(10.0, -1e-3), InvalidArgument);
  EXPECT_THROW(poisson_window(10.0, 1.0), InvalidArgument);
}

TEST(FoxGlynnBoundary, AcceptsAndTerminatesAtTheMinimum) {
  // Exactly at the boundary the window must build, terminate, cover the mode,
  // and stay normalized.
  const PoissonWindow window = poisson_window(25.0, kMinPoissonEpsilon);
  EXPECT_LE(window.left, 25u);
  EXPECT_GE(window.right(), 25u);
  double sum = 0.0;
  for (double w : window.weights) {
    EXPECT_TRUE(std::isfinite(w));
    EXPECT_GE(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(FoxGlynnBoundary, ExtremeEpsilonStillAccurateAtTheMode) {
  // An extreme (but legal) budget must not distort the central weights.
  const PoissonWindow window = poisson_window(25.0, kMinPoissonEpsilon);
  for (size_t k = 20; k <= 30; ++k) {
    EXPECT_NEAR(window.weights[k - window.left], poisson_pmf(25.0, k), 1e-12) << k;
  }
}

TEST(FoxGlynnBoundary, UniformizationSharesTheRefusal) {
  const Ctmc chain(2, {{0, 1, 2.0, 0}, {1, 0, 3.0, 1}}, {1.0, 0.0});

  TransientOptions options;
  options.method = TransientMethod::kUniformization;
  options.uniformization.epsilon = 1e-308;
  EXPECT_THROW(transient_distribution(chain, 1.0, options), InvalidArgument);

  // Just inside the boundary the solve goes through and conserves mass.
  options.uniformization.epsilon = kMinPoissonEpsilon;
  const std::vector<double> pi = transient_distribution(chain, 1.0, options);
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
}

TEST(FoxGlynnBoundary, PreflightAgreesWithTheSolver) {
  const Ctmc chain(2, {{0, 1, 2.0, 0}, {1, 0, 3.0, 1}}, {1.0, 0.0});
  const std::vector<double> times{1.0};

  TransientOptions options;
  options.method = TransientMethod::kUniformization;

  // Below the solver refusal: PRE005 must gate (error), exactly like the
  // solver throws — this is the alignment this test tier exists for.
  options.uniformization.epsilon = 1e-308;
  const lint::Report refused = lint::preflight_transient(chain, times, options, "m");
  EXPECT_TRUE(refused.has_code("PRE005"));
  EXPECT_TRUE(refused.has_errors());

  // At the boundary: legal for the solver, so no PRE005 error — only the
  // double-precision advisory warning.
  options.uniformization.epsilon = kMinPoissonEpsilon;
  const lint::Report boundary = lint::preflight_transient(chain, times, options, "m");
  EXPECT_TRUE(boundary.has_code("PRE005"));
  EXPECT_FALSE(boundary.has_errors());

  // A sane budget raises nothing.
  options.uniformization.epsilon = 1e-12;
  const lint::Report clean = lint::preflight_transient(chain, times, options, "m");
  EXPECT_FALSE(clean.has_code("PRE005"));
}

TEST(FoxGlynnBoundary, MassConservationChecksCatchTruncatedWindows) {
  // The uniformization hardening added alongside the refusal: a transient
  // solve whose Poisson window loses real mass must throw loudly instead of
  // silently folding the deficit into the last iterate.
  const Ctmc chain(2, {{0, 1, 2.0, 0}, {1, 0, 3.0, 1}}, {1.0, 0.0});
  TransientOptions options;
  options.method = TransientMethod::kUniformization;
  options.uniformization.mass_check_slack = 1e-12;
  const std::vector<double> pi = transient_distribution(chain, 1.0, options);
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);  // tight slack passes on a clean run
}

}  // namespace
}  // namespace gop::markov
