// Unit tests for src/util: error macros, string helpers, tables, CLI flags.

#include <gtest/gtest.h>

#include "util/cli.hh"
#include "util/error.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace gop {
namespace {

// --- error macros -----------------------------------------------------------

TEST(ErrorMacros, RequirePassesOnTrue) { EXPECT_NO_THROW(GOP_REQUIRE(1 + 1 == 2, "fine")); }

TEST(ErrorMacros, RequireThrowsInvalidArgument) {
  EXPECT_THROW(GOP_REQUIRE(false, "boom"), InvalidArgument);
}

TEST(ErrorMacros, EnsureThrowsInternalError) {
  EXPECT_THROW(GOP_ENSURE(false, "bug"), InternalError);
}

TEST(ErrorMacros, NumericThrowsNumericalError) {
  EXPECT_THROW(GOP_CHECK_NUMERIC(false, "diverged"), NumericalError);
}

TEST(ErrorMacros, MessageContainsContext) {
  try {
    GOP_REQUIRE(false, "the answer is 42");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the answer is 42"), std::string::npos);
    EXPECT_NE(what.find("util_test.cc"), std::string::npos);
  }
}

TEST(ErrorMacros, ExceptionHierarchy) {
  EXPECT_THROW(throw InvalidArgument("x"), std::invalid_argument);
  EXPECT_THROW(throw InternalError("x"), std::logic_error);
  EXPECT_THROW(throw NumericalError("x"), std::runtime_error);
  EXPECT_THROW(throw ModelError("x"), std::runtime_error);
}

// --- strings ------------------------------------------------------------------

TEST(Strings, StrFormatBasic) { EXPECT_EQ(str_format("phi=%d Y=%.2f", 7, 1.5), "phi=7 Y=1.50"); }

TEST(Strings, StrFormatEmpty) { EXPECT_EQ(str_format("%s", ""), ""); }

TEST(Strings, StrFormatLong) {
  const std::string big(500, 'x');
  EXPECT_EQ(str_format("%s", big.c_str()).size(), 500u);
}

TEST(Strings, FormatCompactTrimsZeros) {
  EXPECT_EQ(format_compact(1.5), "1.5");
  EXPECT_EQ(format_compact(12000.0), "12000");
  EXPECT_EQ(format_compact(1e-4), "0.0001");
}

TEST(Strings, FormatCompactPrecision) { EXPECT_EQ(format_compact(3.14159265, 3), "3.14"); }

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
  EXPECT_EQ(join({}, ", "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-f", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

// --- table --------------------------------------------------------------------

TEST(TextTable, RejectsEmptyHeaders) { EXPECT_THROW(TextTable({}), InvalidArgument); }

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "long_header"});
  t.begin_row().add("xxxxxx").add("1");
  const std::string out = t.to_string();
  // Header separator row is made of dashes matching column widths.
  EXPECT_NE(out.find("------  -----------"), std::string::npos);
}

TEST(TextTable, AddBeforeBeginRowThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.add("x"), InvalidArgument);
}

TEST(TextTable, TooManyCellsThrows) {
  TextTable t({"a"});
  t.begin_row().add("x");
  EXPECT_THROW(t.add("y"), InvalidArgument);
}

TEST(TextTable, IncompleteRowDetectedAtNextBeginRow) {
  TextTable t({"a", "b"});
  t.begin_row().add("only one");
  EXPECT_THROW(t.begin_row(), InvalidArgument);
}

TEST(TextTable, TypedAdders) {
  TextTable t({"d", "i"});
  t.begin_row().add_double(0.25, 6).add_int(-3);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("0.25,-3"), std::string::npos);
}

TEST(TextTable, CsvQuotesSpecialCharacters) {
  TextTable t({"x"});
  t.begin_row().add("a,b \"quoted\"");
  EXPECT_NE(t.to_csv().find("\"a,b \"\"quoted\"\"\""), std::string::npos);
}

TEST(TextTable, IndentedRendering) {
  TextTable t({"x"});
  t.begin_row().add("1");
  const std::string out = t.to_string(4);
  EXPECT_EQ(out.rfind("    x", 0), 0u);
}

TEST(TextTable, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.begin_row().add("1");
  t.begin_row().add("2");
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 1u);
}

// --- cli ---------------------------------------------------------------------

CliFlags make_flags() {
  CliFlags flags("prog", "test program");
  flags.add_double("phi", 7000.0, "duration")
      .add_int("n", 10, "count")
      .add_string("name", "default", "label")
      .add_bool("verbose", false, "chatty");
  return flags;
}

TEST(CliFlags, DefaultsApply) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_DOUBLE_EQ(flags.get_double("phi"), 7000.0);
  EXPECT_EQ(flags.get_int("n"), 10);
  EXPECT_EQ(flags.get_string("name"), "default");
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(CliFlags, EqualsSyntax) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--phi=1234.5", "--name=hello"};
  ASSERT_TRUE(flags.parse(3, argv));
  EXPECT_DOUBLE_EQ(flags.get_double("phi"), 1234.5);
  EXPECT_EQ(flags.get_string("name"), "hello");
}

TEST(CliFlags, SpaceSyntax) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--n", "42"};
  ASSERT_TRUE(flags.parse(3, argv));
  EXPECT_EQ(flags.get_int("n"), 42);
}

TEST(CliFlags, BareBooleanFlag) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(CliFlags, UnknownFlagThrows) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(flags.parse(2, argv), InvalidArgument);
}

TEST(CliFlags, MalformedNumberThrows) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--phi=abc"};
  EXPECT_THROW(flags.parse(2, argv), InvalidArgument);
}

TEST(CliFlags, MissingValueThrows) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--phi"};
  EXPECT_THROW(flags.parse(2, argv), InvalidArgument);
}

TEST(CliFlags, HelpReturnsFalse) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, WrongTypeAccessThrows) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_THROW(flags.get_int("phi"), InvalidArgument);
  EXPECT_THROW(flags.get_double("missing"), InvalidArgument);
}

TEST(CliFlags, PositionalArgumentRejected) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(flags.parse(2, argv), InvalidArgument);
}

TEST(CliFlags, UsageListsFlagsAndDefaults) {
  CliFlags flags = make_flags();
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("--phi"), std::string::npos);
  EXPECT_NE(usage.find("7000"), std::string::npos);
  EXPECT_NE(usage.find("test program"), std::string::npos);
}

}  // namespace
}  // namespace gop
