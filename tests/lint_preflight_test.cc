// Positive-detection tests for the layer-3 solver preflight
// (lint/preflight.hh): every PRExxx code is triggered by a (chain, grid,
// options) combination the corresponding solver would refuse or struggle on.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lint/preflight.hh"

namespace gop::lint {
namespace {

/// Irreducible two-state toggle with the given forward rate.
markov::Ctmc toggle_chain(double rate = 1.0) {
  return markov::Ctmc(2, {{0, 1, rate, -1}, {1, 0, rate, -1}}, {1.0, 0.0});
}

markov::TransientOptions forced_uniformization() {
  markov::TransientOptions options;
  options.method = markov::TransientMethod::kUniformization;
  return options;
}

TEST(PreflightTransient, CleanGridIsClean) {
  const std::vector<double> times{1.0, 2.0};
  EXPECT_TRUE(preflight_transient(toggle_chain(), times, forced_uniformization(), "m").empty());
}

TEST(PreflightTransient, Pre001InvalidTimeGrid) {
  const std::vector<double> times{-1.0, std::nan("")};
  const Report report = preflight_transient(toggle_chain(), times, {}, "m");
  EXPECT_TRUE(report.has_code("PRE001"));
  EXPECT_TRUE(report.has_errors());
}

TEST(PreflightTransient, Pre002LambdaTExceedsSolverLimit) {
  // Lambda ~ 1.02e9, t = 1e3: Lambda*t ~ 1e12 over the default 2e6 refusal.
  const std::vector<double> times{1e3};
  const Report report =
      preflight_transient(toggle_chain(1e9), times, forced_uniformization(), "m");
  EXPECT_TRUE(report.has_code("PRE002"));
  EXPECT_TRUE(report.has_errors());
}

TEST(PreflightTransient, Pre002NotRaisedForDenseMethod) {
  // The same horizon through the matrix exponential: nothing to warn about.
  markov::TransientOptions options;
  options.method = markov::TransientMethod::kMatrixExponential;
  const std::vector<double> times{1e3};
  EXPECT_TRUE(preflight_transient(toggle_chain(1e9), times, options, "m").empty());
}

TEST(PreflightTransient, Pre003LargeLambdaT) {
  // Lambda*t ~ 2e5: below the refusal limit, above the slowness warning.
  const std::vector<double> times{2e5};
  const Report report = preflight_transient(toggle_chain(1.0), times, forced_uniformization(),
                                            "m");
  EXPECT_TRUE(report.has_code("PRE003"));
  EXPECT_FALSE(report.has_code("PRE002"));
  EXPECT_FALSE(report.has_errors());
}

TEST(PreflightTransient, Pre004StiffChain) {
  // Exit rates span 1e-3 .. ~1e7: ratio far beyond the stiffness threshold,
  // with a horizon short enough to stay below the PRE003 warning.
  const markov::Ctmc chain(3, {{0, 1, 1e7, -1}, {1, 2, 1e-3, -1}, {2, 0, 1.0, -1}},
                           {1.0, 0.0, 0.0});
  const std::vector<double> times{1e-3};
  const Report report = preflight_transient(chain, times, forced_uniformization(), "m");
  EXPECT_TRUE(report.has_code("PRE004"));
  EXPECT_FALSE(report.has_errors());
}

TEST(PreflightTransient, Pre005EpsilonOutOfRange) {
  markov::TransientOptions options = forced_uniformization();
  options.uniformization.epsilon = 2.0;
  const std::vector<double> times{1.0};
  const Report report = preflight_transient(toggle_chain(), times, options, "m");
  EXPECT_TRUE(report.has_code("PRE005"));
  EXPECT_TRUE(report.has_errors());
}

TEST(PreflightTransient, Pre005EpsilonBelowDoublePrecision) {
  markov::TransientOptions options = forced_uniformization();
  options.uniformization.epsilon = 1e-20;
  const std::vector<double> times{1.0};
  const Report report = preflight_transient(toggle_chain(), times, options, "m");
  EXPECT_TRUE(report.has_code("PRE005"));
  EXPECT_FALSE(report.has_errors());
}

markov::TransientOptions forced_krylov() {
  markov::TransientOptions options;
  options.method = markov::TransientMethod::kKrylov;
  return options;
}

TEST(PreflightTransient, CleanKrylovPlanIsClean) {
  const std::vector<double> times{1.0, 2.0};
  markov::TransientOptions options = forced_krylov();
  options.krylov.basis_dimension = 2;  // within n, so not even the clamp info
  EXPECT_TRUE(preflight_transient(toggle_chain(), times, options, "m").empty());
}

TEST(PreflightTransient, Pre006BasisDimensionTooSmall) {
  markov::TransientOptions options = forced_krylov();
  options.krylov.basis_dimension = 1;
  const std::vector<double> times{1.0};
  const Report report = preflight_transient(toggle_chain(), times, options, "m");
  EXPECT_TRUE(report.has_code("PRE006"));
  EXPECT_TRUE(report.has_errors());
}

TEST(PreflightTransient, Pre006BasisWiderThanChainOnlyInforms) {
  // n = 2, default basis 30: the solver clamps to n, preflight just notes it.
  const std::vector<double> times{1.0};
  markov::TransientOptions options = forced_krylov();
  options.krylov.basis_dimension = 30;
  const Report report = preflight_transient(toggle_chain(), times, options, "m");
  EXPECT_TRUE(report.has_code("PRE006"));
  EXPECT_FALSE(report.has_errors());
}

TEST(PreflightTransient, Pre007ToleranceOutOfRange) {
  for (double tolerance : {0.0, -1.0, 1.5, std::nan("")}) {
    markov::TransientOptions options = forced_krylov();
    options.krylov.tolerance = tolerance;
    const std::vector<double> times{1.0};
    const Report report = preflight_transient(toggle_chain(), times, options, "m");
    EXPECT_TRUE(report.has_code("PRE007")) << "tolerance=" << tolerance;
    EXPECT_TRUE(report.has_errors()) << "tolerance=" << tolerance;
  }
}

TEST(PreflightTransient, Pre007ToleranceBelowDoublePrecision) {
  markov::TransientOptions options = forced_krylov();
  options.krylov.tolerance = 1e-20;
  const std::vector<double> times{1.0};
  const Report report = preflight_transient(toggle_chain(), times, options, "m");
  EXPECT_TRUE(report.has_code("PRE007"));
  EXPECT_FALSE(report.has_errors());
}

TEST(PreflightTransient, Pre008SubstepBudgetTooSmallForLambdaT) {
  // Lambda*t = 1e6 with a basis of 10 estimates ~1e5 sub-steps against a
  // budget of 100: the run would throw after exhausting it.
  markov::TransientOptions options = forced_krylov();
  options.krylov.basis_dimension = 10;
  options.krylov.max_substeps = 100;
  const std::vector<double> times{1e6};
  const Report report = preflight_transient(toggle_chain(1.0), times, options, "m");
  EXPECT_TRUE(report.has_code("PRE008"));
  EXPECT_FALSE(report.has_errors());
}

TEST(PreflightTransient, KrylovChecksNotRaisedForOtherEngines) {
  // A doomed Krylov configuration is irrelevant when the plan resolves to a
  // different engine: preflight mirrors the plan, not every option struct.
  markov::TransientOptions options;  // kAuto resolves dense at n = 2
  options.krylov.basis_dimension = 1;
  options.krylov.tolerance = -1.0;
  const std::vector<double> times{1.0};
  EXPECT_TRUE(preflight_transient(toggle_chain(), times, options, "m").empty());
}

TEST(PreflightAccumulated, KrylovChecksMirrorTheTransientOnes) {
  markov::AccumulatedOptions options;
  options.method = markov::AccumulatedMethod::kKrylov;
  options.krylov.basis_dimension = 1;
  options.krylov.tolerance = 2.0;
  const std::vector<double> times{1.0};
  const Report report = preflight_accumulated(toggle_chain(), times, options, "m");
  EXPECT_TRUE(report.has_code("PRE006"));
  EXPECT_TRUE(report.has_code("PRE007"));
  EXPECT_TRUE(report.has_errors());
}

TEST(PreflightAccumulated, SharesTheTransientChecks) {
  markov::AccumulatedOptions options;
  options.method = markov::AccumulatedMethod::kUniformization;
  const std::vector<double> times{1e3};
  const Report report = preflight_accumulated(toggle_chain(1e9), times, options, "m");
  EXPECT_TRUE(report.has_code("PRE002"));

  const std::vector<double> bad{-2.0};
  EXPECT_TRUE(preflight_accumulated(toggle_chain(), bad, {}, "m").has_code("PRE001"));
}

TEST(PreflightSteadyState, IrreducibleChainIsClean) {
  EXPECT_TRUE(preflight_steady_state(toggle_chain(), {}, "m").empty());
}

TEST(PreflightSteadyState, Pre010MultipleRecurrentClasses) {
  const markov::Ctmc chain(3, {{0, 1, 1.0, -1}, {0, 2, 1.0, -1}}, {1.0, 0.0, 0.0});
  const Report report = preflight_steady_state(chain, {}, "m");
  EXPECT_TRUE(report.has_code("PRE010"));
  EXPECT_TRUE(report.has_errors());
}

TEST(PreflightSteadyState, Pre011GthRefusesReducibleChain) {
  // One recurrent class, but reducible: kAuto resolves to GTH at this size,
  // and GTH refuses reducible chains outright.
  const markov::Ctmc chain(2, {{0, 1, 1.0, -1}}, {1.0, 0.0});
  const Report report = preflight_steady_state(chain, {}, "m");
  EXPECT_TRUE(report.has_code("PRE011"));
  EXPECT_TRUE(report.has_errors());
}

TEST(PreflightSteadyState, Pre011GaussSeidelRefusesAbsorbingStates) {
  const markov::Ctmc chain(2, {{0, 1, 1.0, -1}}, {1.0, 0.0});
  markov::SteadyStateOptions options;
  options.method = markov::SteadyStateMethod::kGaussSeidel;
  const Report report = preflight_steady_state(chain, options, "m");
  EXPECT_TRUE(report.has_code("PRE011"));
  EXPECT_TRUE(report.has_errors());
}

TEST(PreflightSteadyState, Pre011PowerIterationOnlyInforms) {
  const markov::Ctmc chain(2, {{0, 1, 1.0, -1}}, {1.0, 0.0});
  markov::SteadyStateOptions options;
  options.method = markov::SteadyStateMethod::kPower;
  const Report report = preflight_steady_state(chain, options, "m");
  EXPECT_TRUE(report.has_code("PRE011"));
  EXPECT_FALSE(report.has_errors());
}

}  // namespace
}  // namespace gop::lint
