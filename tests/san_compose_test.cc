// Tests for SAN composition (join / replicate) and the model linter.

#include <gtest/gtest.h>

#include "markov/steady_state.hh"
#include "san/batch_means.hh"
#include "san/compose.hh"
#include "san/expr.hh"
#include "san/lint.hh"
#include "san/simulator.hh"
#include "san/state_space.hh"
#include "util/error.hh"

namespace gop::san {
namespace {

/// One repairable unit: up --fail--> down, repaired when the (possibly
/// shared) repair crew is free.
SanModel unit_model(double fail_rate = 0.2, double repair_rate = 1.0) {
  SanModel m("unit");
  const PlaceRef up = m.add_place("up", 1);
  const PlaceRef crew = m.add_place("crew", 1);
  m.add_timed_activity("fail", has_tokens(up), constant_rate(fail_rate),
                       set_mark(up, 0));
  m.add_timed_activity("repair", all_of({mark_eq(up, 0), has_tokens(crew)}),
                       constant_rate(repair_rate), set_mark(up, 1));
  return m;
}

// --- join --------------------------------------------------------------------------

TEST(Join, FusesSharedPlaces) {
  const SanModel a = unit_model();
  const SanModel b = unit_model();
  JoinSpec spec;
  spec.shared = {{"crew", "crew"}};
  const JoinedModel joined = join(a, b, spec);
  // up, crew from the left; r_up from the right; crew fused.
  EXPECT_EQ(joined.model.place_count(), 3u);
  EXPECT_EQ(joined.left_place_map[a.place("crew").index],
            joined.right_place_map[b.place("crew").index]);
  EXPECT_EQ(joined.model.activity_count(), 4u);
}

TEST(Join, ComposedBehaviourMatchesHandBuiltModel) {
  // Two units sharing one repair crew: with both down, only one repair can
  // proceed (the crew token gates it) — except nothing consumes the crew in
  // unit_model, so couple harder: repair takes the crew while in progress.
  SanModel proto("unit");
  const PlaceRef up = proto.add_place("up", 1);
  const PlaceRef crew = proto.add_place("crew", 1);
  const PlaceRef in_repair = proto.add_place("in_repair", 0);
  proto.add_timed_activity("fail", has_tokens(up), constant_rate(0.2), set_mark(up, 0));
  proto.add_instantaneous_activity(
      "grab", all_of({mark_eq(up, 0), mark_eq(in_repair, 0), has_tokens(crew)}),
      sequence({add_mark(crew, -1), set_mark(in_repair, 1)}));
  proto.add_timed_activity("repair", has_tokens(in_repair), constant_rate(1.0),
                           sequence({set_mark(in_repair, 0), set_mark(up, 1), add_mark(crew, 1)}));

  JoinSpec spec;
  spec.shared = {{"crew", "crew"}};
  const JoinedModel joined = join(proto, proto, spec);
  const GeneratedChain chain = generate_state_space(joined.model);

  // Steady-state availability of the left unit must equal the right's by
  // symmetry, and lie strictly between the isolated-unit availability
  // (1 / (1 + 0.2)) and 1 because the shared crew queues repairs.
  RewardStructure left_up, right_up;
  left_up.add(has_tokens(joined.left_place(up)), 1.0);
  right_up.add(has_tokens(joined.right_place(up)), 1.0);
  const double a_left = chain.steady_state_reward(left_up);
  const double a_right = chain.steady_state_reward(right_up);
  EXPECT_NEAR(a_left, a_right, 1e-10);
  EXPECT_LT(a_left, 1.0 / 1.2 + 1e-9);
  EXPECT_GT(a_left, 0.5);
}

TEST(Join, InitialTokenMismatchThrows) {
  SanModel a("a");
  a.add_place("p", 1);
  a.add_timed_activity("t", always(), constant_rate(1.0), no_effect());
  SanModel b("b");
  b.add_place("p", 2);
  b.add_timed_activity("t", always(), constant_rate(1.0), no_effect());
  JoinSpec spec;
  spec.shared = {{"p", "p"}};
  EXPECT_THROW(join(a, b, spec), InvalidArgument);
}

TEST(Join, UnknownPlaceThrows) {
  const SanModel a = unit_model();
  const SanModel b = unit_model();
  JoinSpec spec;
  spec.shared = {{"nope", "crew"}};
  EXPECT_THROW(join(a, b, spec), InvalidArgument);
}

TEST(Join, DuplicateFusionThrows) {
  const SanModel a = unit_model();
  const SanModel b = unit_model();
  JoinSpec spec;
  spec.shared = {{"crew", "crew"}, {"crew", "up"}};
  EXPECT_THROW(join(a, b, spec), InvalidArgument);
}

// --- replicate ----------------------------------------------------------------------

TEST(Replicate, SharesDesignatedPlacesAcrossReplicas) {
  const SanModel proto = unit_model();
  const ReplicatedModel replicated = replicate(proto, 3, {"crew"});
  // 1 shared crew + 3 private "up" places.
  EXPECT_EQ(replicated.model.place_count(), 4u);
  EXPECT_EQ(replicated.model.activity_count(), 6u);
  const size_t crew0 = replicated.replica_place(0, proto.place("crew")).index;
  const size_t crew2 = replicated.replica_place(2, proto.place("crew")).index;
  EXPECT_EQ(crew0, crew2);
  EXPECT_NE(replicated.replica_place(0, proto.place("up")).index,
            replicated.replica_place(1, proto.place("up")).index);
}

TEST(Replicate, StateSpaceGrowsExponentiallyInPrivatePlaces) {
  const SanModel proto = unit_model();
  const ReplicatedModel two = replicate(proto, 2, {"crew"});
  const ReplicatedModel three = replicate(proto, 3, {"crew"});
  EXPECT_EQ(generate_state_space(two.model).state_count(), 4u);   // 2^2 up/down
  EXPECT_EQ(generate_state_space(three.model).state_count(), 8u); // 2^3
}

TEST(Replicate, ReplicasAreStatisticallyIdentical) {
  const SanModel proto = unit_model(0.3, 0.9);
  const ReplicatedModel replicated = replicate(proto, 2, {"crew"});
  const GeneratedChain chain = generate_state_space(replicated.model);
  RewardStructure up0, up1;
  up0.add(has_tokens(replicated.replica_place(0, proto.place("up"))), 1.0);
  up1.add(has_tokens(replicated.replica_place(1, proto.place("up"))), 1.0);
  EXPECT_NEAR(chain.steady_state_reward(up0), chain.steady_state_reward(up1), 1e-12);
}

TEST(Replicate, ZeroReplicasThrows) {
  EXPECT_THROW(replicate(unit_model(), 0, {}), InvalidArgument);
}

// --- lint ---------------------------------------------------------------------------

TEST(Lint, CleanErgodicModel) {
  const SanModel proto = unit_model();
  const GeneratedChain chain = generate_state_space(proto);
  const ModelDiagnostics diagnostics = diagnose(chain);
  EXPECT_TRUE(diagnostics.dead_timed_activities.empty());
  EXPECT_TRUE(diagnostics.absorbing_states.empty());
  EXPECT_TRUE(diagnostics.irreducible);
  EXPECT_EQ(diagnostics.recurrent_class_count, 1u);
}

TEST(Lint, DetectsDeadActivity) {
  SanModel m("dead");
  const PlaceRef p = m.add_place("p", 1);
  m.add_timed_activity("alive", has_tokens(p), constant_rate(1.0), no_effect());
  m.add_timed_activity("never", mark_ge(p, 5), constant_rate(1.0), no_effect());
  const ModelDiagnostics diagnostics = diagnose(generate_state_space(m));
  ASSERT_EQ(diagnostics.dead_timed_activities.size(), 1u);
  EXPECT_EQ(diagnostics.dead_timed_activities[0], "never");
}

TEST(Lint, DetectsAbsorbingStatesAndReducibility) {
  SanModel m("death");
  const PlaceRef alive = m.add_place("alive", 1);
  m.add_timed_activity("die", has_tokens(alive), constant_rate(1.0), set_mark(alive, 0));
  const ModelDiagnostics diagnostics = diagnose(generate_state_space(m));
  EXPECT_EQ(diagnostics.absorbing_states.size(), 1u);
  EXPECT_FALSE(diagnostics.irreducible);
  EXPECT_EQ(diagnostics.recurrent_class_count, 1u);  // the absorbing state
  EXPECT_NE(diagnostics.summary().find("NOT irreducible"), std::string::npos);
}

TEST(Lint, CountsMultipleRecurrentClasses) {
  // Initial vanishing marking branches into two disconnected cycles.
  SanModel m("split");
  const PlaceRef start = m.add_place("start", 1);
  const PlaceRef left = m.add_place("left");
  const PlaceRef right = m.add_place("right");
  InstantaneousActivity branch;
  branch.name = "branch";
  branch.enabled = has_tokens(start);
  branch.cases.push_back(Case{constant_prob(0.5),
                              sequence({add_mark(start, -1), add_mark(left, 1)})});
  branch.cases.push_back(Case{constant_prob(0.5),
                              sequence({add_mark(start, -1), add_mark(right, 1)})});
  m.add_instantaneous_activity(std::move(branch));
  m.add_timed_activity("spin_left", has_tokens(left), constant_rate(1.0), no_effect());
  m.add_timed_activity("spin_right", has_tokens(right), constant_rate(1.0), no_effect());
  const ModelDiagnostics diagnostics = diagnose(generate_state_space(m));
  EXPECT_FALSE(diagnostics.irreducible);
  EXPECT_EQ(diagnostics.recurrent_class_count, 2u);
}

TEST(Lint, SccOnKnownGraph) {
  // 0 -> 1 -> 2 -> 1 (cycle {1,2}), 0 transient.
  const markov::Ctmc chain(3, {{0, 1, 1.0, 0}, {1, 2, 1.0, 1}, {2, 1, 1.0, 2}},
                           {1.0, 0.0, 0.0});
  size_t count = 0;
  const std::vector<size_t> component = strongly_connected_components(chain, &count);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(component[1], component[2]);
  EXPECT_NE(component[0], component[1]);
}

// --- batch means --------------------------------------------------------------------

TEST(BatchMeans, MatchesSteadyStateOnToggle) {
  SanModel m("toggle");
  const PlaceRef a = m.add_place("a", 1);
  const PlaceRef b = m.add_place("b");
  m.add_timed_activity("fwd", has_tokens(a), constant_rate(2.0),
                       sequence({add_mark(a, -1), add_mark(b, 1)}));
  m.add_timed_activity("bwd", has_tokens(b), constant_rate(3.0),
                       sequence({add_mark(b, -1), add_mark(a, 1)}));
  RewardStructure reward;
  reward.add(has_tokens(a), 1.0);

  const SanSimulator simulator(m);
  BatchMeansOptions options;
  options.seed = 1;
  options.warmup_time = 5.0;
  options.batch_duration = 40.0;
  options.batch_count = 24;
  const BatchMeansResult result = estimate_steady_state_reward(simulator, reward, options);
  EXPECT_EQ(result.batches, 24u);
  EXPECT_NEAR(result.mean, 0.6, 4.0 * result.half_width + 0.01);
  EXPECT_GT(result.half_width, 0.0);
}

TEST(BatchMeans, Validation) {
  const SanModel model = unit_model();
  const SanSimulator simulator(model);
  RewardStructure reward;
  reward.add(always(), 1.0);
  BatchMeansOptions options;
  options.batch_count = 1;
  EXPECT_THROW(estimate_steady_state_reward(simulator, reward, options), InvalidArgument);
  options.batch_count = 4;
  options.batch_duration = 0.0;
  EXPECT_THROW(estimate_steady_state_reward(simulator, reward, options), InvalidArgument);
}

TEST(BatchMeans, ConstantRewardHasZeroVariance) {
  const SanModel model = unit_model();
  const SanSimulator simulator(model);
  RewardStructure reward;
  reward.add(always(), 2.5);
  const BatchMeansResult result = estimate_steady_state_reward(simulator, reward);
  EXPECT_NEAR(result.mean, 2.5, 1e-9);
  EXPECT_NEAR(result.half_width, 0.0, 1e-9);
}

}  // namespace
}  // namespace gop::san
