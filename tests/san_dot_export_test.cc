// Tests for the Graphviz export of SAN structure and reachability graphs.

#include <gtest/gtest.h>

#include "san/dot_export.hh"
#include "san/expr.hh"
#include "san/state_space.hh"

namespace gop::san {
namespace {

SanModel toggle_model() {
  SanModel m("toggle");
  const PlaceRef a = m.add_place("a", 1);
  const PlaceRef b = m.add_place("b");
  m.add_timed_activity("fwd", has_tokens(a), constant_rate(2.0),
                       sequence({add_mark(a, -1), add_mark(b, 1)}));
  m.add_instantaneous_activity("noop", [](const Marking&) { return false; }, no_effect());
  return m;
}

TEST(DotExport, ModelContainsPlacesAndActivities) {
  const SanModel m = toggle_model();
  const std::string dot = model_to_dot(m);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("place_a"), std::string::npos);
  EXPECT_NE(dot.find("timed_fwd"), std::string::npos);
  EXPECT_NE(dot.find("inst_noop"), std::string::npos);
  // Initial token count annotated.
  EXPECT_NE(dot.find("(1)"), std::string::npos);
}

TEST(DotExport, ReachabilityContainsStatesAndEdges) {
  const SanModel m = toggle_model();
  const GeneratedChain chain = generate_state_space(m);
  const std::string dot = reachability_to_dot(chain);
  EXPECT_NE(dot.find("s0"), std::string::npos);
  EXPECT_NE(dot.find("s0 -> s1"), std::string::npos);
  EXPECT_NE(dot.find("fwd @ 2"), std::string::npos);
  // Absorbing state drawn with double periphery.
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
}

TEST(DotExport, TruncationNote) {
  const SanModel m = toggle_model();
  const GeneratedChain chain = generate_state_space(m);
  const std::string dot = reachability_to_dot(chain, 1);
  EXPECT_NE(dot.find("not shown"), std::string::npos);
}

TEST(DotExport, SanitizesNames) {
  SanModel m("weird");
  m.add_place("a-b c", 0);
  m.add_timed_activity("x/y", always(), constant_rate(1.0), no_effect());
  const std::string dot = model_to_dot(m);
  EXPECT_NE(dot.find("place_a_b_c"), std::string::npos);
  EXPECT_NE(dot.find("timed_x_y"), std::string::npos);
}

}  // namespace
}  // namespace gop::san
