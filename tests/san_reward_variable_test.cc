// Tests for the UltraSAN-style reward-variable abstraction.

#include <gtest/gtest.h>

#include <cmath>

#include "san/expr.hh"
#include "san/reward_variable.hh"
#include "util/error.hh"

namespace gop::san {
namespace {

struct TogglePair {
  SanModel model{"toggle"};
  PlaceRef a = model.add_place("a", 1);
  PlaceRef b = model.add_place("b");
  double fwd, bwd;

  TogglePair(double forward = 2.0, double backward = 3.0) : fwd(forward), bwd(backward) {
    model.add_timed_activity("fwd", has_tokens(a), constant_rate(forward),
                             sequence({add_mark(a, -1), add_mark(b, 1)}));
    model.add_timed_activity("bwd", has_tokens(b), constant_rate(backward),
                             sequence({add_mark(b, -1), add_mark(a, 1)}));
  }

  RewardStructure in_a() const {
    RewardStructure reward;
    reward.add(has_tokens(a), 1.0);
    return reward;
  }

  double p_a(double t) const {
    const double s = fwd + bwd;
    return bwd / s + fwd / s * std::exp(-s * t);
  }
};

TEST(RewardVariable, InstantOfTime) {
  TogglePair toggle;
  const GeneratedChain chain = generate_state_space(toggle.model);
  const RewardVariable variable("pA", toggle.in_a(), RewardVariableKind::kInstantOfTime, 0.7);
  EXPECT_NEAR(variable.solve(chain), toggle.p_a(0.7), 1e-11);
}

TEST(RewardVariable, Accumulated) {
  TogglePair toggle;
  const GeneratedChain chain = generate_state_space(toggle.model);
  const RewardVariable variable("LA", toggle.in_a(), RewardVariableKind::kAccumulated, 2.0);
  EXPECT_NEAR(variable.solve(chain), chain.accumulated_reward(toggle.in_a(), 2.0), 1e-12);
}

TEST(RewardVariable, TimeAveragedApproachesSteadyState) {
  TogglePair toggle;
  const GeneratedChain chain = generate_state_space(toggle.model);
  const RewardVariable average("avg", toggle.in_a(), RewardVariableKind::kTimeAveraged, 500.0);
  const RewardVariable steady("ss", toggle.in_a(), RewardVariableKind::kSteadyState);
  EXPECT_NEAR(average.solve(chain), steady.solve(chain), 1e-3);
  EXPECT_NEAR(steady.solve(chain), toggle.bwd / (toggle.fwd + toggle.bwd), 1e-12);
}

TEST(RewardVariable, SimulationEstimateAgrees) {
  TogglePair toggle;
  const GeneratedChain chain = generate_state_space(toggle.model);
  const SanSimulator simulator(toggle.model);
  const RewardVariable variable("pA", toggle.in_a(), RewardVariableKind::kInstantOfTime, 0.5);
  sim::ReplicationOptions options;
  options.seed = 5;
  options.min_replications = 3000;
  options.max_replications = 3000;
  const auto estimate = variable.estimate(simulator, options);
  EXPECT_NEAR(estimate.mean(), variable.solve(chain), 4.0 * estimate.stats.std_error() + 5e-3);
}

TEST(RewardVariable, SteadyStateEstimateUsesTimeAverage) {
  TogglePair toggle;
  const SanSimulator simulator(toggle.model);
  const RewardVariable steady("ss", toggle.in_a(), RewardVariableKind::kSteadyState, 200.0);
  sim::ReplicationOptions options;
  options.seed = 6;
  options.min_replications = 200;
  options.max_replications = 200;
  const auto estimate = steady.estimate(simulator, options);
  EXPECT_NEAR(estimate.mean(), 0.6, 0.05);
}

TEST(RewardVariable, SolveAllPreservesOrder) {
  TogglePair toggle;
  const GeneratedChain chain = generate_state_space(toggle.model);
  const std::vector<RewardVariable> variables{
      RewardVariable("p0", toggle.in_a(), RewardVariableKind::kInstantOfTime, 0.0),
      RewardVariable("ss", toggle.in_a(), RewardVariableKind::kSteadyState)};
  const std::vector<double> values = solve_all(chain, variables);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_NEAR(values[0], 1.0, 1e-12);  // starts in a
  EXPECT_NEAR(values[1], 0.6, 1e-12);
}

TEST(RewardVariable, KindNames) {
  EXPECT_STREQ(reward_variable_kind_name(RewardVariableKind::kInstantOfTime),
               "instant-of-time");
  EXPECT_STREQ(reward_variable_kind_name(RewardVariableKind::kSteadyState), "steady-state");
}

TEST(RewardVariable, Validation) {
  TogglePair toggle;
  EXPECT_THROW(
      RewardVariable("", toggle.in_a(), RewardVariableKind::kInstantOfTime, 1.0),
      InvalidArgument);
  EXPECT_THROW(
      RewardVariable("x", toggle.in_a(), RewardVariableKind::kInstantOfTime, -1.0),
      InvalidArgument);
  EXPECT_THROW(RewardVariable("x", toggle.in_a(), RewardVariableKind::kTimeAveraged, 0.0),
               InvalidArgument);
  const SanSimulator simulator(toggle.model);
  const RewardVariable bad_steady("ss", toggle.in_a(), RewardVariableKind::kSteadyState, 0.0);
  EXPECT_THROW(bad_steady.estimate(simulator), InvalidArgument);
}

}  // namespace
}  // namespace gop::san
