// Workspace pooling tests for the matrix exponential (docs/performance.md):
// the "markov.expm_workspace_allocs" / "markov.expm_workspace_reuses"
// counters, the zero-allocation steady state the counters summarize (proven
// here directly with a counting global operator new), and bitwise identity
// between the workspace overloads and the value-returning convenience
// overloads.

#include <gtest/gtest.h>

#include <atomic>

#if defined(__GNUC__) && !defined(__clang__)
// The replaced operator new below is malloc-backed, so the replaced operator
// delete frees with std::free — correct at runtime, but GCC's
// -Wmismatched-new-delete heuristic flags every inlined new/delete pair in
// this TU once it sees the malloc feeding a free.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <random>

#include "linalg/dense_matrix.hh"
#include "markov/matrix_exp.hh"
#include "obs/registry.hh"

namespace {

// Binary-wide allocation counter, armed only around the measured region so
// gtest's own bookkeeping doesn't pollute the count. Relaxed atomics: the
// tests are single-threaded, the atomic just keeps the replacement legal if
// anything else allocates concurrently.
std::atomic<bool> g_counting{false};
std::atomic<uint64_t> g_heap_allocations{0};

void note_allocation() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

void* operator new(std::size_t size) {
  note_allocation();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  note_allocation();
  void* p = nullptr;
  const std::size_t alignment = std::max(sizeof(void*), static_cast<std::size_t>(align));
  if (posix_memalign(&p, alignment, size ? size : 1) != 0) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace gop::markov {
namespace {

/// Diagonally-dominated random matrix; with t = 1 its inf-norm exceeds
/// theta_13, so the scaling-and-squaring loop actually runs.
linalg::DenseMatrix random_system(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(0.1, 1.0);
  linalg::DenseMatrix m(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) m(r, c) = dist(rng) + (r == c ? double(n) : 0.0);
  }
  return m;
}

uint64_t allocs() { return obs::counter("markov.expm_workspace_allocs").get(); }
uint64_t reuses() { return obs::counter("markov.expm_workspace_reuses").get(); }

TEST(ExpmWorkspace, CountersRecordColdAllocThenSteadyReuse) {
  const linalg::DenseMatrix a = random_system(7, 11);
  ExpmWorkspace ws;

  const uint64_t allocs_before = allocs();
  matrix_exponential(a, 1.0, ws);
  const uint64_t allocs_cold = allocs();
  EXPECT_GT(allocs_cold, allocs_before) << "first use must grow the workspace";

  const uint64_t reuses_before = reuses();
  for (int i = 0; i < 5; ++i) matrix_exponential(a, 1.0, ws);
  EXPECT_EQ(allocs(), allocs_cold) << "warm workspace must not allocate";
  EXPECT_GE(reuses() - reuses_before, 5u) << "each warm call must tick the reuse counter";
}

TEST(ExpmWorkspace, ShrinkingDimensionReusesStorage) {
  ExpmWorkspace ws;
  matrix_exponential(random_system(12, 21), 1.0, ws);
  const uint64_t allocs_large = allocs();
  const uint64_t reuses_before = reuses();
  matrix_exponential(random_system(7, 22), 1.0, ws);  // smaller fits in place
  EXPECT_EQ(allocs(), allocs_large);
  EXPECT_GT(reuses(), reuses_before);
}

// The property the counters summarize, proven at the allocator: once warm,
// the whole pipeline — scale, Padé numerator/denominator, factorize, solve,
// squarings — runs with zero trips to operator new.
TEST(ExpmWorkspace, SteadyStateExpmIsAllocationFree) {
  const linalg::DenseMatrix a = random_system(7, 31);
  ExpmWorkspace ws;
  matrix_exponential(a, 1.0, ws);
  matrix_exponential(a, 1.0, ws);  // fully warm

  g_heap_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 10; ++i) matrix_exponential(a, 1.0, ws);
  g_counting.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_heap_allocations.load(std::memory_order_relaxed), 0u)
      << "steady-state expm reached the heap";
}

TEST(ExpmWorkspace, WorkspaceOverloadMatchesValueOverloadBitwise) {
  const linalg::DenseMatrix a = random_system(9, 41);
  for (double t : {0.25, 1.0, 30.0}) {
    const linalg::DenseMatrix value = matrix_exponential(a, t);
    ExpmWorkspace ws;
    const linalg::DenseMatrix& pooled = matrix_exponential(a, t, ws);
    ASSERT_EQ(pooled.rows(), value.rows());
    ASSERT_EQ(pooled.cols(), value.cols());
    for (size_t r = 0; r < value.rows(); ++r) {
      for (size_t c = 0; c < value.cols(); ++c) {
        ASSERT_EQ(std::bit_cast<uint64_t>(pooled(r, c)), std::bit_cast<uint64_t>(value(r, c)))
            << "t=" << t << " (" << r << ", " << c << ")";
      }
    }
  }
}

}  // namespace
}  // namespace gop::markov
