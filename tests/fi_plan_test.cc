// Unit tests for the deterministic fault-injection plans (fi/plan.hh):
// trigger semantics, per-site accounting, seed determinism, and the
// compiled-in/out gating contract. These drive fi::detail::should_inject
// directly — solver-side site behaviour is fi_campaign_test's job.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fi/fi.hh"

namespace gop::fi {
namespace {

// Bit pattern of should_inject over `hits` armed traversals of `site`.
std::vector<bool> fire_pattern(SiteId site, size_t hits) {
  std::vector<bool> fired;
  fired.reserve(hits);
  for (size_t i = 0; i < hits; ++i) fired.push_back(detail::should_inject(site));
  return fired;
}

TEST(FiPlan, DisarmedByDefault) {
  clear_plan();
  EXPECT_FALSE(armed());
}

TEST(FiPlan, OnNthFiresExactlyOnce) {
  Plan plan(1);
  plan.arm(SiteId::kLuPivotBreakdown, Trigger::on_nth(3));
  ScopedPlan guard(plan);

  const std::vector<bool> fired = fire_pattern(SiteId::kLuPivotBreakdown, 8);
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false, false, false}));
  EXPECT_EQ(site_stats(SiteId::kLuPivotBreakdown).hits, 8u);
  EXPECT_EQ(site_stats(SiteId::kLuPivotBreakdown).injections, 1u);
}

TEST(FiPlan, EveryKFiresPeriodically) {
  Plan plan(1);
  plan.arm(SiteId::kDenseMultiplyNan, Trigger::every(3));
  ScopedPlan guard(plan);

  const std::vector<bool> fired = fire_pattern(SiteId::kDenseMultiplyNan, 9);
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true, false, false, true}));
  EXPECT_EQ(site_stats(SiteId::kDenseMultiplyNan).injections, 3u);
}

TEST(FiPlan, ProbabilityZeroAndOneAreDegenerate) {
  {
    Plan plan(7);
    plan.arm(SiteId::kFoxGlynnTruncate, Trigger::with_probability(0.0));
    ScopedPlan guard(plan);
    for (bool fired : fire_pattern(SiteId::kFoxGlynnTruncate, 64)) EXPECT_FALSE(fired);
  }
  {
    Plan plan(7);
    plan.arm(SiteId::kFoxGlynnTruncate, Trigger::with_probability(1.0));
    ScopedPlan guard(plan);
    for (bool fired : fire_pattern(SiteId::kFoxGlynnTruncate, 64)) EXPECT_TRUE(fired);
  }
}

TEST(FiPlan, ProbabilisticStreamIsSeedDeterministic) {
  const auto pattern_for_seed = [](uint64_t seed) {
    Plan plan(seed);
    plan.arm(SiteId::kSteadyStateStall, Trigger::with_probability(0.5));
    ScopedPlan guard(plan);
    return fire_pattern(SiteId::kSteadyStateStall, 256);
  };

  const std::vector<bool> first = pattern_for_seed(42);
  const std::vector<bool> again = pattern_for_seed(42);
  EXPECT_EQ(first, again);  // bit-reproducible from the seed alone

  // A different seed yields a different pattern (256 draws at p = 0.5 cannot
  // plausibly coincide), and the hit rate is near p.
  const std::vector<bool> other = pattern_for_seed(43);
  EXPECT_NE(first, other);
  size_t fires = 0;
  for (bool fired : first) fires += fired ? 1 : 0;
  EXPECT_GT(fires, 256 * 0.3);
  EXPECT_LT(fires, 256 * 0.7);
}

TEST(FiPlan, StreamIsKeyedBySite) {
  Plan plan(42);
  plan.arm(SiteId::kLuPivotPerturb, Trigger::with_probability(0.5));
  plan.arm(SiteId::kDenseAllocFail, Trigger::with_probability(0.5));
  ScopedPlan guard(plan);

  const std::vector<bool> a = fire_pattern(SiteId::kLuPivotPerturb, 256);
  const std::vector<bool> b = fire_pattern(SiteId::kDenseAllocFail, 256);
  EXPECT_NE(a, b);
}

TEST(FiPlan, SetPlanResetsCounters) {
  Plan plan(1);
  plan.arm(SiteId::kExpmScalingOverflow, Trigger::every(1));
  set_plan(plan);
  (void)fire_pattern(SiteId::kExpmScalingOverflow, 5);
  EXPECT_EQ(site_stats(SiteId::kExpmScalingOverflow).hits, 5u);
  EXPECT_EQ(total_injections(), 5u);

  set_plan(plan);  // reinstall: accounting starts over
  EXPECT_EQ(site_stats(SiteId::kExpmScalingOverflow).hits, 0u);
  EXPECT_EQ(total_injections(), 0u);
  clear_plan();
}

TEST(FiPlan, ScopedPlanDisarms) {
  {
    Plan plan(1);
    plan.arm(SiteId::kLuPivotBreakdown, Trigger::every(1));
    ScopedPlan guard(plan);
    EXPECT_TRUE(armed());
  }
  EXPECT_FALSE(armed());
  // Counters stay readable after disarm (campaign cells read them on the
  // exception path, after ScopedPlan unwinds).
  EXPECT_EQ(site_stats(SiteId::kLuPivotBreakdown).hits, 0u);
}

TEST(FiSite, NamesRoundTrip) {
  for (SiteId site : all_sites()) {
    const auto parsed = site_from_string(to_string(site));
    ASSERT_TRUE(parsed.has_value()) << to_string(site);
    EXPECT_EQ(*parsed, site);
    EXPECT_NE(site_description(site)[0], '\0');
  }
  EXPECT_FALSE(site_from_string("no.such.site").has_value());
  EXPECT_EQ(all_sites().size(), kSiteCount);
}

TEST(FiPlan, CompiledInMatchesBuildConfig) {
#if defined(GOP_FI_ENABLED) && GOP_FI_ENABLED
  EXPECT_TRUE(compiled_in());
  // GOP_FI_POINT evaluates its site only behind the armed() fast path.
  clear_plan();
  EXPECT_FALSE(GOP_FI_POINT(SiteId::kLuPivotBreakdown));
#else
  EXPECT_FALSE(compiled_in());
  // Compiled out, the macro is a constant false and must not touch counters.
  EXPECT_FALSE(GOP_FI_POINT(SiteId::kLuPivotBreakdown));
#endif
}

}  // namespace
}  // namespace gop::fi
