// Tests for the simulation substrate: RNG, online statistics, replication
// runner, event queue.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/event_queue.hh"
#include "sim/replication.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "util/error.hh"

namespace gop::sim {
namespace {

// --- rng -----------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 1.0), InvalidArgument);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalFrequencies) {
  Rng rng(19);
  std::vector<int> counts(3, 0);
  const int n = 90000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical({1.0, 2.0, 3.0})];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 1.0 / 6.0, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 2.0 / 6.0, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 3.0 / 6.0, 0.01);
}

TEST(Rng, CategoricalValidation) {
  Rng rng(23);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(rng.categorical({-1.0, 2.0}), InvalidArgument);
  EXPECT_EQ(rng.categorical({0.0, 1.0, 0.0}), 1u);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(29);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.uniform_index(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic) {
  Rng a(5), b(5);
  Rng fa = a.fork();
  Rng fb = b.fork();
  EXPECT_EQ(fa.next_u64(), fb.next_u64());  // same parent seed -> same fork
  Rng next_fork = a.fork();
  EXPECT_NE(fa.next_u64(), next_fork.next_u64());
}

// --- stats -----------------------------------------------------------------------

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(OnlineStats, SingleSampleHasZeroVariance) {
  OnlineStats stats;
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.ci_half_width(), 0.0);
}

TEST(OnlineStats, MergeMatchesCombined) {
  OnlineStats all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i * 0.7) * 3 + i * 0.01;
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_two_sided_quantile(0.95), 1.959964, 1e-5);
  EXPECT_NEAR(normal_two_sided_quantile(0.99), 2.575829, 1e-5);
  EXPECT_NEAR(normal_two_sided_quantile(0.6827), 1.0, 1e-3);
  EXPECT_THROW(normal_two_sided_quantile(1.0), InvalidArgument);
  EXPECT_THROW(normal_two_sided_quantile(0.0), InvalidArgument);
}

TEST(OnlineStats, CiHalfWidthShrinksWithSamples) {
  Rng rng(31);
  OnlineStats small, large;
  for (int i = 0; i < 100; ++i) small.add(rng.uniform());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform());
  EXPECT_LT(large.ci_half_width(), small.ci_half_width());
}

// --- replication runner ----------------------------------------------------------

TEST(Replication, FixedCount) {
  ReplicationOptions options;
  options.min_replications = 500;
  options.max_replications = 500;
  const auto result = run_replications([](Rng& rng) { return rng.uniform(); }, options);
  EXPECT_EQ(result.replications(), 500u);
  EXPECT_NEAR(result.mean(), 0.5, 0.05);
}

TEST(Replication, StopsAtAbsoluteTarget) {
  ReplicationOptions options;
  options.min_replications = 10;
  options.max_replications = 1'000'000;
  options.target_half_width_abs = 0.05;
  const auto result = run_replications([](Rng& rng) { return rng.uniform(); }, options);
  EXPECT_TRUE(result.target_met);
  EXPECT_LT(result.replications(), 1'000'000u);
  EXPECT_LE(result.half_width(), 0.05);
}

TEST(Replication, RelativeTarget) {
  ReplicationOptions options;
  options.min_replications = 10;
  options.max_replications = 100'000;
  options.target_half_width_rel = 0.01;
  const auto result =
      run_replications([](Rng& rng) { return 10.0 + rng.uniform(); }, options);
  EXPECT_TRUE(result.target_met);
  EXPECT_LE(result.half_width(), 0.01 * result.mean() * 1.01);
}

TEST(Replication, DeterministicGivenSeed) {
  ReplicationOptions options;
  options.min_replications = 50;
  options.max_replications = 50;
  options.seed = 555;
  const auto a = run_replications([](Rng& rng) { return rng.uniform(); }, options);
  const auto b = run_replications([](Rng& rng) { return rng.uniform(); }, options);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

TEST(Replication, Validation) {
  EXPECT_THROW(run_replications(nullptr), InvalidArgument);
  ReplicationOptions bad;
  bad.min_replications = 1;
  EXPECT_THROW(run_replications([](Rng&) { return 0.0; }, bad), InvalidArgument);
}

// --- event queue ------------------------------------------------------------------

TEST(EventQueue, OrdersByTime) {
  EventQueue<int> q;
  q.schedule(3.0, 3);
  q.schedule(1.0, 1);
  q.schedule(2.0, 2);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TieBreaksByInsertionOrder) {
  EventQueue<int> q;
  q.schedule(1.0, 10);
  q.schedule(1.0, 20);
  q.schedule(1.0, 30);
  EXPECT_EQ(q.pop().payload, 10);
  EXPECT_EQ(q.pop().payload, 20);
  EXPECT_EQ(q.pop().payload, 30);
}

TEST(EventQueue, NextTimeAndValidation) {
  EventQueue<int> q;
  EXPECT_THROW(q.next_time(), InvalidArgument);
  EXPECT_THROW(q.pop(), InvalidArgument);
  EXPECT_THROW(q.schedule(-1.0, 0), InvalidArgument);
  q.schedule(5.0, 1);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
  EXPECT_EQ(q.size(), 1u);
  q.clear();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace gop::sim
