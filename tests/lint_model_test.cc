// Positive-detection tests for the layer-1 model checks (lint/model_lint.hh):
// every SANxxx code is triggered by a deliberately broken fixture model, and a
// healthy model comes back clean.

#include <gtest/gtest.h>

#include <cmath>

#include "lint/model_lint.hh"
#include "san/expr.hh"

namespace gop::lint {
namespace {

using san::add_mark;
using san::always;
using san::constant_prob;
using san::constant_rate;
using san::has_tokens;
using san::Marking;
using san::mark_eq;
using san::PlaceRef;
using san::SanModel;
using san::sequence;

/// A healthy cyclic two-place SAN (the state space is {10, 01}).
SanModel healthy_toggle() {
  SanModel model("toggle");
  const PlaceRef a = model.add_place("a", 1);
  const PlaceRef b = model.add_place("b");
  model.add_timed_activity("fwd", has_tokens(a), constant_rate(2.0),
                           sequence({add_mark(a, -1), add_mark(b, 1)}));
  model.add_timed_activity("bwd", has_tokens(b), constant_rate(3.0),
                           sequence({add_mark(b, -1), add_mark(a, 1)}));
  return model;
}

TEST(LintModel, HealthyModelIsClean) {
  EXPECT_TRUE(lint_model(healthy_toggle()).empty());
}

TEST(LintModel, San001NoPlaces) {
  SanModel model("empty");
  const Report report = lint_model(model);
  EXPECT_TRUE(report.has_code("SAN001"));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintModel, San002NoTimedActivities) {
  SanModel model("frozen");
  model.add_place("a", 1);
  const Report report = lint_model(model);
  EXPECT_TRUE(report.has_code("SAN002"));
  EXPECT_FALSE(report.has_code("SAN001"));
}

TEST(LintModel, San004MissingPlaceReference) {
  SanModel model("dangling");
  const PlaceRef a = model.add_place("a", 1);
  // The guard references place #5 of a one-place model; the expr.hh
  // combinators bounds-check and throw, which the prober reports as SAN004.
  model.add_timed_activity("bad_guard", mark_eq(PlaceRef{5}, 1), constant_rate(1.0),
                           add_mark(a, 0));
  const Report report = lint_model(model);
  EXPECT_TRUE(report.has_code("SAN004"));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintModel, San004ThrowingRateExpression) {
  SanModel model("throwing");
  const PlaceRef a = model.add_place("a", 1);
  model.add_timed_activity(
      "explodes", has_tokens(a),
      [](const Marking&) -> double { throw std::runtime_error("boom"); }, add_mark(a, 0));
  const Report report = lint_model(model);
  EXPECT_TRUE(report.has_code("SAN004"));
}

TEST(LintModel, San010CaseProbabilitiesDoNotSumToOne) {
  SanModel model("lossy");
  const PlaceRef a = model.add_place("a", 1);
  san::TimedActivity activity;
  activity.name = "split";
  activity.enabled = has_tokens(a);
  activity.rate = constant_rate(1.0);
  activity.cases = {{constant_prob(0.3), add_mark(a, 0)}, {constant_prob(0.3), add_mark(a, 0)}};
  model.add_timed_activity(std::move(activity));
  const Report report = lint_model(model);
  EXPECT_TRUE(report.has_code("SAN010"));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintModel, San011CaseProbabilityOutOfRange) {
  SanModel model("overconfident");
  const PlaceRef a = model.add_place("a", 1);
  san::TimedActivity activity;
  activity.name = "split";
  activity.enabled = has_tokens(a);
  activity.rate = constant_rate(1.0);
  // constant_prob validates at construction, so the defect needs a raw lambda.
  activity.cases = {{[](const Marking&) { return 1.5; }, add_mark(a, 0)}};
  model.add_timed_activity(std::move(activity));
  const Report report = lint_model(model);
  EXPECT_TRUE(report.has_code("SAN011"));
  // The sum check is suppressed when a case already failed the range check.
  EXPECT_FALSE(report.has_code("SAN010"));
}

TEST(LintModel, San012NonPositiveRate) {
  SanModel model("stalled");
  const PlaceRef a = model.add_place("a", 1);
  model.add_timed_activity("zero_rate", has_tokens(a), [](const Marking&) { return 0.0; },
                           add_mark(a, 0));
  EXPECT_TRUE(lint_model(model).has_code("SAN012"));

  SanModel nan_model("nan");
  const PlaceRef b = nan_model.add_place("b", 1);
  nan_model.add_timed_activity("nan_rate", has_tokens(b),
                               [](const Marking&) { return std::nan(""); }, add_mark(b, 0));
  EXPECT_TRUE(lint_model(nan_model).has_code("SAN012"));
}

TEST(LintModel, San020DeadTimedActivity) {
  SanModel model = healthy_toggle();
  model.add_timed_activity("never", mark_eq(model.place("a"), 5), constant_rate(1.0),
                           add_mark(model.place("a"), 0));
  const Report report = lint_model(model);
  EXPECT_TRUE(report.has_code("SAN020"));
  EXPECT_FALSE(report.has_errors());
  // The finding names the dead activity.
  bool named = false;
  for (const Finding& finding : report.findings()) {
    if (finding.code == "SAN020" && finding.location == "never") named = true;
  }
  EXPECT_TRUE(named);
}

TEST(LintModel, San021DeadInstantaneousActivity) {
  SanModel model = healthy_toggle();
  model.add_instantaneous_activity("unreachable", mark_eq(model.place("a"), 7),
                                   add_mark(model.place("a"), 0));
  const Report report = lint_model(model);
  EXPECT_TRUE(report.has_code("SAN021"));
  EXPECT_FALSE(report.has_errors());
}

TEST(LintModel, San021PreemptedByPriority) {
  // Both instantaneous activities are enabled in the same vanishing marking;
  // the higher priority one always pre-empts the other.
  SanModel model("preempted");
  const PlaceRef a = model.add_place("a", 1);
  const PlaceRef go = model.add_place("go");
  model.add_timed_activity("tick", mark_eq(go, 0), constant_rate(1.0), add_mark(go, 1));
  model.add_instantaneous_activity("winner", has_tokens(go), add_mark(go, -1), 2);
  model.add_instantaneous_activity("loser", has_tokens(go), add_mark(go, -1), 1);
  (void)a;
  const Report report = lint_model(model);
  EXPECT_TRUE(report.has_code("SAN021"));
  bool loser_flagged = false;
  for (const Finding& finding : report.findings()) {
    if (finding.code == "SAN021") {
      EXPECT_EQ(finding.location, "loser");
      loser_flagged = true;
    }
  }
  EXPECT_TRUE(loser_flagged);
}

TEST(LintModel, San022ConstantPlace) {
  SanModel model = healthy_toggle();
  model.add_place("untouched", 3);
  const Report report = lint_model(model);
  EXPECT_TRUE(report.has_code("SAN022"));
  EXPECT_EQ(report.count(Severity::kInfo), 1u);
  EXPECT_FALSE(report.has_errors());
}

TEST(LintModel, San030VanishingCycle) {
  // Two instantaneous activities toggle `w` back and forth while `v` keeps
  // both enabled in turn: a zero-time loop vanishing elimination diverges on.
  SanModel model("pingpong");
  const PlaceRef v = model.add_place("v", 1);
  const PlaceRef w = model.add_place("w");
  model.add_timed_activity("tick", has_tokens(v), constant_rate(1.0), add_mark(v, 0));
  model.add_instantaneous_activity("ping", san::all_of({has_tokens(v), mark_eq(w, 0)}),
                                   add_mark(w, 1));
  model.add_instantaneous_activity("pong", san::all_of({has_tokens(v), mark_eq(w, 1)}),
                                   add_mark(w, -1));
  const Report report = lint_model(model);
  EXPECT_TRUE(report.has_code("SAN030"));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintModel, San031ProbeBudgetExhausted) {
  // Unbounded token growth: the probe can only ever cover a prefix.
  SanModel model("unbounded");
  const PlaceRef a = model.add_place("a", 1);
  model.add_timed_activity("grow", always(), constant_rate(1.0), add_mark(a, 1));
  ModelLintOptions options;
  options.max_probe_markings = 3;
  const Report report = lint_model(model, options);
  EXPECT_TRUE(report.has_code("SAN031"));
  EXPECT_FALSE(report.has_errors());
}

TEST(LintModel, OneFindingPerDefectSite) {
  // The same defect reached from many markings reports once, not per marking.
  SanModel model("chatty");
  const PlaceRef a = model.add_place("a", 1);
  san::TimedActivity activity;
  activity.name = "split";
  activity.enabled = always();
  activity.rate = constant_rate(1.0);
  activity.cases = {{constant_prob(0.25), add_mark(a, 1)}, {constant_prob(0.25), add_mark(a, -1)}};
  model.add_timed_activity(std::move(activity));
  ModelLintOptions options;
  options.max_probe_markings = 50;
  const Report report = lint_model(model, options);
  size_t san010 = 0;
  for (const Finding& finding : report.findings()) {
    if (finding.code == "SAN010") ++san010;
  }
  EXPECT_EQ(san010, 1u);
}

}  // namespace
}  // namespace gop::lint
