// The static-analysis battery against the paper's constituent models: the
// published RMGd/RMGp/RMNd models at Table 3 parameters must come back with
// zero error-severity findings, and the analyzer's preflight gate must be
// invisible on healthy configurations while failing fast on doomed ones.

#include <gtest/gtest.h>

#include <vector>

#include "core/performability.hh"
#include "lint/lint.hh"
#include "san/state_space.hh"
#include "util/error.hh"

namespace gop::core {
namespace {

lint::Report model_battery(san::SanModel& model,
                           const std::vector<san::RewardStructure>& rewards) {
  lint::Report report = lint::lint_model(model);
  const san::GeneratedChain chain = san::generate_state_space(model);
  report.merge(lint::lint_chain(chain));
  for (const san::RewardStructure& reward : rewards) {
    report.merge(lint::lint_reward(chain, reward));
  }
  return report;
}

TEST(LintPaperModels, RmGdHasNoErrorFindings) {
  RmGd gd = build_rm_gd(GsuParameters::table3());
  const lint::Report report = model_battery(
      gd.model, {gd.reward_p_a1(), gd.reward_ih(), gd.reward_ihf(), gd.reward_itauh(),
                 gd.reward_detected()});
  EXPECT_FALSE(report.has_errors()) << report.to_text();
  // RMGd is a dependability model: absorbing fates are expected and reported
  // as info, never as errors.
  EXPECT_TRUE(report.has_code("CHN011"));
}

TEST(LintPaperModels, RmGpHasNoErrorFindings) {
  RmGp gp = build_rm_gp(GsuParameters::table3());
  lint::Report report =
      model_battery(gp.model, {gp.reward_overhead_p1n(), gp.reward_overhead_p2()});
  report.merge(lint::preflight_steady_state(san::generate_state_space(gp.model).ctmc(), {},
                                            gp.model.name()));
  EXPECT_FALSE(report.has_errors()) << report.to_text();
}

TEST(LintPaperModels, RmNdHasNoErrorFindings) {
  const GsuParameters params = GsuParameters::table3();
  for (double mu : {params.mu_new, params.mu_old}) {
    RmNd nd = build_rm_nd(params, mu);
    const lint::Report report = model_battery(nd.model, {nd.reward_no_failure()});
    EXPECT_FALSE(report.has_errors()) << report.to_text();
  }
}

TEST(LintPaperModels, AnalyzerReportHasNoErrorsOnNominalGrid) {
  const PerformabilityAnalyzer analyzer(GsuParameters::table3());
  const std::vector<double> phis{7000.0};
  const lint::Report report = analyzer.lint_report(phis);
  EXPECT_FALSE(report.has_errors()) << report.to_text();
  EXPECT_EQ(report.count(lint::Severity::kError), 0u);
}

TEST(LintPaperModels, PreflightGateIsInvisibleWhenHealthy) {
  const GsuParameters params = GsuParameters::table3();
  AnalyzerOptions gated;
  gated.preflight = true;
  const PerformabilityAnalyzer checked(params, gated);
  const PerformabilityAnalyzer unchecked(params);
  const PerformabilityResult a = checked.evaluate(7000.0);
  const PerformabilityResult b = unchecked.evaluate(7000.0);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.e_w0, b.e_w0);
  EXPECT_EQ(a.e_wphi, b.e_wphi);
}

TEST(LintPaperModels, PreflightFailsFastOnDoomedSolverConfiguration) {
  // Force uniformization with a horizon budget no Table 3 grid satisfies:
  // the gate must raise ModelError naming PRE002 before any solver runs —
  // already at construction, since the constructor itself solves at theta.
  AnalyzerOptions options;
  options.preflight = true;
  options.transient.method = markov::TransientMethod::kUniformization;
  options.transient.uniformization.max_lambda_t = 1e-3;
  try {
    const PerformabilityAnalyzer analyzer(GsuParameters::table3(), options);
    FAIL() << "expected gop::ModelError from the preflight gate";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("PRE002"), std::string::npos) << e.what();
  }
}

TEST(LintPaperModels, PreflightRejectsInvalidGrid) {
  AnalyzerOptions options;
  options.preflight = true;
  const PerformabilityAnalyzer analyzer(GsuParameters::table3(), options);
  const std::vector<double> bad{-5.0};
  EXPECT_THROW((void)analyzer.constituents_batch(bad), ModelError);
}

}  // namespace
}  // namespace gop::core
