// Property-based differential tier (docs/robustness.md): seeded random SAN
// instances (san/random_model.hh), each cross-checked three independent ways:
//
//   1. analytic transient reward (reachability graph + solver) against a
//      Monte Carlo estimate from ctmc_sim trajectories;
//   2. uniformization against the dense Pade exponential;
//   3. pointwise solves against the shared-grid session layer.
//
// Every instance is also required to be what the generator promises: valid,
// bounded, and lint-clean. Fully seeded, so a pass is reproducible — there is
// no statistical flake, only a fixed sample of model space. Labelled `slow`.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "lint/model_lint.hh"
#include "markov/ctmc_sim.hh"
#include "markov/session.hh"
#include "markov/transient.hh"
#include "san/random_model.hh"
#include "san/state_space.hh"

namespace gop::san {
namespace {

constexpr uint64_t kInstances = 200;
constexpr double kHorizon = 1.5;

// Token count of place 0 in each tangible state: a marking-dependent reward
// every instance supports regardless of its random structure.
std::vector<double> tokens_in_place0(const GeneratedChain& chain) {
  std::vector<double> reward(chain.state_count());
  for (size_t s = 0; s < chain.state_count(); ++s) {
    reward[s] = static_cast<double>(chain.states()[s][0]);
  }
  return reward;
}

TEST(SanRandomDifferential, InstancesAreValidBoundedAndLintClean) {
  const RandomModelOptions options;
  const size_t max_tangible = static_cast<size_t>(
      std::pow(options.place_capacity + 1.0, static_cast<double>(options.max_places)));

  for (uint64_t seed = 0; seed < kInstances; ++seed) {
    const SanModel model = random_san(seed);

    // Determinism: the same seed must rebuild the same model, observed
    // through its generated chain.
    const GeneratedChain chain = generate_state_space(model);
    const SanModel again = random_san(seed);
    const GeneratedChain chain2 = generate_state_space(again);
    ASSERT_EQ(chain.state_count(), chain2.state_count()) << "seed " << seed;

    // Bounded by construction: capacity-capped token moves.
    ASSERT_LE(chain.state_count(), max_tangible) << "seed " << seed;
    ASSERT_GE(chain.state_count(), 1u) << "seed " << seed;

    // Lint-clean by construction: no errors, no dead timed activities.
    const lint::Report report = lint::lint_model(model);
    EXPECT_FALSE(report.has_errors()) << "seed " << seed << "\n" << report.to_text();
    EXPECT_FALSE(report.has_code("SAN020")) << "seed " << seed << " has a dead timed activity";
  }
}

TEST(SanRandomDifferential, UniformizationAgreesWithPadeExpm) {
  markov::TransientOptions uni;
  uni.method = markov::TransientMethod::kUniformization;
  markov::TransientOptions expm;
  expm.method = markov::TransientMethod::kMatrixExponential;

  for (uint64_t seed = 0; seed < kInstances; ++seed) {
    const SanModel model = random_san(seed);
    const GeneratedChain chain = generate_state_space(model);

    const std::vector<double> a = markov::transient_distribution(chain.ctmc(), kHorizon, uni);
    const std::vector<double> b = markov::transient_distribution(chain.ctmc(), kHorizon, expm);
    ASSERT_EQ(a.size(), b.size());
    for (size_t s = 0; s < a.size(); ++s) {
      ASSERT_NEAR(a[s], b[s], 1e-9) << "seed " << seed << " state " << s;
    }
  }
}

TEST(SanRandomDifferential, PointwiseAgreesWithSession) {
  const std::vector<double> grid{0.25 * kHorizon, 0.5 * kHorizon, kHorizon};

  for (uint64_t seed = 0; seed < kInstances; ++seed) {
    const SanModel model = random_san(seed);
    const GeneratedChain chain = generate_state_space(model);

    const markov::TransientSession session(chain.ctmc(), grid);
    for (size_t i = 0; i < grid.size(); ++i) {
      const std::vector<double> pointwise =
          markov::transient_distribution(chain.ctmc(), grid[i]);
      const std::vector<double>& from_session = session.distribution_at(i);
      ASSERT_EQ(pointwise.size(), from_session.size());
      for (size_t s = 0; s < pointwise.size(); ++s) {
        // The session contract is bit-identical resolution of the same
        // engine; a tiny tolerance keeps this robust to engine-order
        // differences in the shared-grid propagation.
        ASSERT_NEAR(from_session[s], pointwise[s], 1e-12) << "seed " << seed;
      }
    }
  }
}

TEST(SanRandomDifferential, AnalyticAgreesWithCtmcSimulation) {
  sim::ReplicationOptions mc;
  mc.min_replications = 2000;
  mc.max_replications = 2000;

  for (uint64_t seed = 0; seed < kInstances; ++seed) {
    const SanModel model = random_san(seed);
    const GeneratedChain chain = generate_state_space(model);
    const std::vector<double> reward = tokens_in_place0(chain);

    const double analytic =
        markov::transient_reward(chain.ctmc(), reward, kHorizon);
    mc.seed = 1000 + seed;  // independent of the model seed, still deterministic
    const sim::ReplicationResult empirical =
        markov::mc_instant_reward(chain.ctmc(), reward, kHorizon, mc);

    // 99.9%-style acceptance band: the run is fully seeded, so this is a
    // one-time draw, not a flake source. The floor guards rare-event
    // instances where all replications return 0 (sample variance 0) while
    // the true mean is a small positive number.
    const double slack = std::max(5.0 * empirical.half_width(0.95), 5e-3);
    ASSERT_NEAR(empirical.mean(), analytic, slack)
        << "seed " << seed << " mean=" << empirical.mean() << " analytic=" << analytic
        << " half_width=" << empirical.half_width(0.95);
  }
}

}  // namespace
}  // namespace gop::san
