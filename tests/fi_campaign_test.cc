// Fault-campaign regression test (docs/robustness.md): runs the full
// (scenario x site x trigger) matrix over the three paper models and asserts
// the campaign invariant — every injected fault is either harmless, recovered
// within tolerance, or surfaces as a structured error. A silent wrong answer
// anywhere fails the suite.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "core/fault_campaign.hh"
#include "fi/fi.hh"

namespace gop::core {
namespace {

class FiCampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fi::compiled_in()) {
      GTEST_SKIP() << "fault injection compiled out (GOP_FI=OFF)";
    }
  }
};

TEST_F(FiCampaignTest, NoSilentWrongAnswers) {
  const CampaignReport report = run_fault_campaign();

  EXPECT_FALSE(report.cells.empty());
  for (const CampaignCell& cell : report.cells) {
    EXPECT_NE(cell.outcome, CampaignOutcome::kSilentWrong)
        << cell.scenario << " x " << fi::to_string(cell.site) << " x " << cell.trigger
        << ": rel_error=" << cell.rel_error << " engine=" << cell.engine;
    // Classification consistency: a triggered cell is never "not-triggered",
    // an untriggered one is never anything else.
    if (cell.injections == 0) {
      EXPECT_EQ(cell.outcome, CampaignOutcome::kNotTriggered)
          << cell.scenario << " x " << fi::to_string(cell.site);
    } else {
      EXPECT_NE(cell.outcome, CampaignOutcome::kNotTriggered);
    }
    if (cell.outcome == CampaignOutcome::kStructuredError) {
      EXPECT_FALSE(cell.error_type.empty());
      EXPECT_FALSE(cell.detail.empty());
    }
    if (cell.outcome == CampaignOutcome::kRecovered) {
      EXPECT_TRUE(cell.degraded);
      EXPECT_FALSE(cell.engine.empty());
    }
    EXPECT_GE(cell.hits, cell.injections);
  }
  EXPECT_TRUE(report.all_safe());
}

TEST_F(FiCampaignTest, EverySiteFiresSomewhere) {
  // The scenario set is only a valid robustness probe if each site actually
  // lies on the hot path of at least one (scenario, trigger) cell.
  const CampaignReport report = run_fault_campaign();

  std::set<fi::SiteId> fired;
  for (const CampaignCell& cell : report.cells) {
    if (cell.injections > 0) fired.insert(cell.site);
  }
  for (fi::SiteId site : fi::all_sites()) {
    EXPECT_TRUE(fired.count(site) > 0) << "site never fired: " << fi::to_string(site);
  }
}

TEST_F(FiCampaignTest, MatrixCoversScenariosBySitesByTriggers) {
  CampaignOptions options;
  options.triggers = {fi::Trigger::on_nth(1), fi::Trigger::every(2)};
  const CampaignReport report = run_fault_campaign(options);

  const size_t scenarios = campaign_scenario_names().size();
  EXPECT_EQ(report.cells.size(), scenarios * fi::kSiteCount * 2);

  std::map<std::string, size_t> per_scenario;
  for (const CampaignCell& cell : report.cells) per_scenario[cell.scenario]++;
  EXPECT_EQ(per_scenario.size(), scenarios);
  for (const auto& [name, count] : per_scenario) {
    EXPECT_EQ(count, fi::kSiteCount * 2) << name;
  }
}

TEST_F(FiCampaignTest, ReportsAreSeedDeterministic) {
  CampaignOptions options;
  options.seed = 20260806;
  const CampaignReport first = run_fault_campaign(options);
  const CampaignReport again = run_fault_campaign(options);
  EXPECT_EQ(first.to_json(), again.to_json());  // bit-reproducible end to end

  // The JSON document embeds the invariant verdict for CI artifact scraping.
  EXPECT_NE(first.to_json().find("\"all_safe\":true"), std::string::npos);
  EXPECT_NE(first.to_text().find("SAFE"), std::string::npos);
}

TEST_F(FiCampaignTest, CampaignLeavesNoPlanArmed) {
  (void)run_fault_campaign();
  EXPECT_FALSE(fi::armed());
}

}  // namespace
}  // namespace gop::core
