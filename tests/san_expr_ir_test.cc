// Tests for the reflectable expression IR (san/expr_ir.hh): every expr.hh
// combinator carries the right IR tree, hand-written lambdas carry none, and
// — the load-bearing guarantee — IR-carrying models generate bit-identical
// state spaces to their hand-lambda twins: same markings in the same order,
// bit-identical transition rates.

#include <gtest/gtest.h>

#include <cstring>

#include "san/expr.hh"
#include "san/expr_ir.hh"
#include "san/model.hh"
#include "san/random_model.hh"
#include "san/state_space.hh"
#include "util/error.hh"

namespace gop::san {
namespace {

/// Bit-level double equality (distinguishes -0.0 from 0.0, compares NaNs).
bool bits_equal(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

TEST(ExprIr, CombinatorsCarryIr) {
  const PlaceRef p{2};
  EXPECT_EQ(always().ir()->op, ExprOp::kAlways);
  EXPECT_EQ(mark_eq(p, 3).ir()->op, ExprOp::kMarkEq);
  EXPECT_EQ(mark_eq(p, 3).ir()->place, 2u);
  EXPECT_EQ(mark_eq(p, 3).ir()->value, 3);
  EXPECT_EQ(mark_ge(p, 1).ir()->op, ExprOp::kMarkGe);
  EXPECT_EQ(has_tokens(p).ir()->op, ExprOp::kMarkGe);
  EXPECT_EQ(has_tokens(p).ir()->value, 1);
  EXPECT_EQ(negate(always()).ir()->op, ExprOp::kNot);
  EXPECT_EQ(all_of({always(), has_tokens(p)}).ir()->children.size(), 2u);
  EXPECT_EQ(constant_rate(2.5).ir()->op, ExprOp::kConstNum);
  EXPECT_TRUE(bits_equal(constant_rate(2.5).ir()->number, 2.5));
  EXPECT_EQ(complement_prob(constant_prob(0.25)).ir()->op, ExprOp::kComplement);
  EXPECT_EQ(rate_per_token(p, 0.5).ir()->op, ExprOp::kRatePerToken);
  EXPECT_EQ(cond_prob(has_tokens(p), 0.1, 0.9).ir()->op, ExprOp::kCond);
  EXPECT_EQ(no_effect().ir()->op, ExprOp::kNoEffect);
  EXPECT_EQ(set_mark(p, 4).ir()->op, ExprOp::kSetMark);
  EXPECT_EQ(add_mark(p, -1).ir()->op, ExprOp::kAddMark);
  EXPECT_EQ(sequence({add_mark(p, 1)}).ir()->op, ExprOp::kSequence);
  EXPECT_EQ(when(has_tokens(p), add_mark(p, -1)).ir()->op, ExprOp::kWhen);
}

TEST(ExprIr, HandLambdasCarryNoIr) {
  const Predicate hand = [](const Marking&) { return true; };
  EXPECT_FALSE(hand.has_ir());
  EXPECT_TRUE(static_cast<bool>(hand));

  // A combinator over a lambda argument degrades to an opaque *leaf*, not a
  // null tree: the composite structure stays visible to the prover.
  const Predicate mixed = all_of({always(), [](const Marking&) { return false; }});
  ASSERT_TRUE(mixed.has_ir());
  EXPECT_EQ(mixed.ir()->children.at(1)->op, ExprOp::kOpaque);
  EXPECT_TRUE(ir::contains_opaque(mixed.ir()));
  EXPECT_FALSE(ir::contains_opaque(always().ir()));
}

TEST(ExprIr, StructuralEquality) {
  const PlaceRef p{1};
  EXPECT_TRUE(ir::structurally_equal(mark_eq(p, 2).ir(), mark_eq(p, 2).ir()));
  EXPECT_FALSE(ir::structurally_equal(mark_eq(p, 2).ir(), mark_eq(p, 3).ir()));
  EXPECT_FALSE(ir::structurally_equal(mark_eq(p, 2).ir(), mark_ge(p, 2).ir()));
  EXPECT_TRUE(ir::structurally_equal(negate(mark_ge(p, 1)).ir(), negate(mark_ge(p, 1)).ir()));
  // Opaque leaves are equal to each other (one shared node), not to anything
  // else.
  EXPECT_TRUE(ir::structurally_equal(ir::opaque(), ir::opaque()));
  EXPECT_FALSE(ir::structurally_equal(ir::opaque(), ir::always()));
}

TEST(ExprIr, RebasePlaces) {
  const std::vector<size_t> map = {7, 5};
  const ExprIr rebased = ir::rebase_places(
      ir::all_of({ir::mark_eq(0, 1), ir::when(ir::mark_ge(1, 2), ir::add_mark(0, -1))}), map);
  EXPECT_EQ(rebased->children.at(0)->place, 7u);
  EXPECT_EQ(rebased->children.at(1)->children.at(0)->place, 5u);
  EXPECT_EQ(rebased->children.at(1)->children.at(1)->place, 7u);
  EXPECT_EQ(ir::rebase_places(nullptr, map), nullptr);
  EXPECT_THROW(ir::rebase_places(ir::mark_eq(3, 0), map), gop::InvalidArgument);
}

TEST(ExprIr, ToStringRendersTheTree) {
  const std::string text = ir::to_string(
      ir::cond(ir::mark_ge(0, 1), ir::constant(0.25), ir::constant(0.75)));
  EXPECT_NE(text.find("mark(#0)"), std::string::npos) << text;
  EXPECT_NE(text.find("0.25"), std::string::npos) << text;
}

// --- bit-identity: IR-built models vs hand-lambda twins ---------------------

/// The combinator version: full IR, provable.
SanModel combinator_model() {
  SanModel model("twin");
  const PlaceRef a = model.add_place("a", 2, 2);
  const PlaceRef b = model.add_place("b", 0, 2);
  TimedActivity move;
  move.name = "move";
  move.enabled = has_tokens(a);
  move.rate = rate_per_token(a, 1.5);
  move.cases.push_back({cond_prob(mark_ge(b, 1), 0.25, 0.625),
                        sequence({add_mark(a, -1), when(negate(mark_ge(b, 2)), add_mark(b, 1))})});
  move.cases.push_back({cond_prob(mark_ge(b, 1), 0.75, 0.375), add_mark(a, -1)});
  model.add_timed_activity(std::move(move));
  model.add_timed_activity("back", has_tokens(b), constant_rate(0.75),
                           sequence({add_mark(b, -1), add_mark(a, 1)}));
  return model;
}

/// The same model written with hand lambdas doing identical arithmetic.
SanModel lambda_model() {
  SanModel model("twin");
  model.add_place("a", 2, 2);
  model.add_place("b", 0, 2);
  TimedActivity move;
  move.name = "move";
  move.enabled = [](const Marking& m) { return m[0] >= 1; };
  move.rate = [](const Marking& m) { return 1.5 * m[0]; };
  move.cases.push_back({[](const Marking& m) { return m[1] >= 1 ? 0.25 : 0.625; },
                        [](Marking& m) {
                          m[0] = m[0] - 1;
                          if (!(m[1] >= 2)) m[1] = m[1] + 1;
                        }});
  move.cases.push_back({[](const Marking& m) { return m[1] >= 1 ? 0.75 : 0.375; },
                        [](Marking& m) { m[0] = m[0] - 1; }});
  model.add_timed_activity(std::move(move));
  model.add_timed_activity(
      "back", [](const Marking& m) { return m[1] >= 1; }, [](const Marking&) { return 0.75; },
      [](Marking& m) {
        m[1] = m[1] - 1;
        m[0] = m[0] + 1;
      });
  return model;
}

void expect_identical_chains(const GeneratedChain& x, const GeneratedChain& y) {
  ASSERT_EQ(x.states().size(), y.states().size());
  for (size_t s = 0; s < x.states().size(); ++s) {
    EXPECT_TRUE(x.states()[s] == y.states()[s])
        << s << ": " << x.states()[s].to_string() << " vs " << y.states()[s].to_string();
  }
  const auto& tx = x.ctmc().transitions();
  const auto& ty = y.ctmc().transitions();
  ASSERT_EQ(tx.size(), ty.size());
  for (size_t t = 0; t < tx.size(); ++t) {
    EXPECT_EQ(tx[t].from, ty[t].from);
    EXPECT_EQ(tx[t].to, ty[t].to);
    EXPECT_TRUE(bits_equal(tx[t].rate, ty[t].rate))
        << t << ": " << tx[t].rate << " vs " << ty[t].rate;
  }
}

TEST(ExprIrBitIdentity, CombinatorAndLambdaTwinsGenerateIdenticalChains) {
  const SanModel with_ir = combinator_model();
  const SanModel with_lambdas = lambda_model();
  expect_identical_chains(generate_state_space(with_ir), generate_state_space(with_lambdas));
}

TEST(ExprIrBitIdentity, RandomSanIsDeterministicAndCapacityDeclared) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    const SanModel once = random_san(seed);
    const SanModel twice = random_san(seed);
    for (size_t p = 0; p < once.place_count(); ++p) {
      ASSERT_TRUE(once.place_capacity(PlaceRef{p}).has_value());
    }
    expect_identical_chains(generate_state_space(once), generate_state_space(twice));
  }
}

}  // namespace
}  // namespace gop::san
