// Tests for the versioned snapshot format (san/snapshot.hh) and the serve
// warm-restart path (Server::save_snapshot / load_snapshot): chain blobs
// round-trip bit-exactly on seeded san::random_san instances, a warm restart
// answers from the restored cache without regenerating or re-solving, and
// every corruption mode (truncation, wrong magic, version skew, payload bit
// flip) degrades to a clean cold start — never a wrong answer, never a crash.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "san/hash.hh"
#include "san/random_model.hh"
#include "san/session.hh"
#include "san/snapshot.hh"
#include "san/state_space.hh"
#include "serve/request.hh"
#include "serve/server.hh"

namespace gop::serve {
namespace {

Request rmgd_request() {
  Request request;
  request.model = "rmgd";
  request.rewards = {"P_A1", "Itauh"};
  request.transient_times = {5000.0, 7000.0};
  request.accumulated_times = {7000.0};
  return request;
}

bool series_bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<uint64_t>(a[i]) != std::bit_cast<uint64_t>(b[i])) return false;
  }
  return true;
}

// --- primitive encoding ------------------------------------------------------

TEST(Snapshot, WriterReaderRoundTripsEveryFieldKind) {
  san::snapshot::Writer writer;
  writer.u8(0xab);
  writer.u32(0xdeadbeefu);
  writer.u64(0x0123456789abcdefULL);
  writer.i32(-42);
  writer.f64(-0.0);
  writer.f64(0.1);
  writer.str("hello\0world");  // NUL truncates the literal; still a valid blob

  san::snapshot::Reader reader(writer.buffer());
  EXPECT_EQ(reader.u8(), 0xab);
  EXPECT_EQ(reader.u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.i32(), -42);
  EXPECT_EQ(std::bit_cast<uint64_t>(reader.f64()), std::bit_cast<uint64_t>(-0.0));
  EXPECT_EQ(std::bit_cast<uint64_t>(reader.f64()), std::bit_cast<uint64_t>(0.1));
  EXPECT_EQ(reader.str(), "hello");
  EXPECT_TRUE(reader.at_end());
}

TEST(Snapshot, ReaderThrowsOnTruncationNotUb) {
  san::snapshot::Writer writer;
  writer.u64(7);
  san::snapshot::Reader short_reader(std::string_view(writer.buffer()).substr(0, 3));
  EXPECT_THROW(short_reader.u64(), san::snapshot::SnapshotError);

  // An absurd string length must not allocate or scan past the end.
  san::snapshot::Writer bad;
  bad.u64(~0ULL);
  san::snapshot::Reader bad_reader(bad.buffer());
  EXPECT_THROW(bad_reader.str(), san::snapshot::SnapshotError);
}

// --- chain blobs on random SANs ----------------------------------------------

TEST(Snapshot, ChainBlobRoundTripsBitExactlyOnRandomSans) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const san::SanModel model = san::random_san(seed);
    const san::GeneratedChain original = san::generate_state_space(model);

    san::snapshot::Writer writer;
    san::snapshot::write_chain(writer, original);
    san::snapshot::Reader reader(writer.buffer());
    const san::GeneratedChain restored = san::snapshot::read_chain(reader, model);
    EXPECT_TRUE(reader.at_end()) << "seed " << seed;

    ASSERT_EQ(restored.state_count(), original.state_count()) << "seed " << seed;
    EXPECT_EQ(restored.states(), original.states()) << "seed " << seed;
    EXPECT_EQ(san::chain_hash(restored), san::chain_hash(original)) << "seed " << seed;

    // Bit-identical session results: the same grid solved on the restored
    // chain reproduces the original solve exactly (reward = token count in
    // place 0, a marking-dependent rate).
    san::RewardStructure tokens("tokens-p0");
    tokens.add([](const san::Marking&) { return true; },
               [](const san::Marking& marking) { return static_cast<double>(marking[0]); });
    const std::vector<double> grid{0.25, 1.0, 4.0};
    san::GridSolveOptions options;
    options.accumulated = true;
    const san::ChainSession before(original, grid, options);
    const san::ChainSession after(restored, grid, options);
    EXPECT_TRUE(series_bits_equal(after.instant_reward_series(tokens),
                                  before.instant_reward_series(tokens)))
        << "seed " << seed;
    EXPECT_TRUE(series_bits_equal(after.accumulated_reward_series(tokens),
                                  before.accumulated_reward_series(tokens)))
        << "seed " << seed;
  }
}

TEST(Snapshot, ReadChainRejectsWrongModelAndTamperedRates) {
  const san::SanModel model = san::random_san(3);
  const san::GeneratedChain chain = san::generate_state_space(model);
  san::snapshot::Writer writer;
  san::snapshot::write_chain(writer, chain);

  // A different model (different place count or different content hash) must
  // not silently adopt the blob.
  const san::SanModel other = san::random_san(4);
  san::snapshot::Reader reader(writer.buffer());
  EXPECT_THROW(san::snapshot::read_chain(reader, other), san::snapshot::SnapshotError);

  // Flipping one payload bit breaks the stored content hash.
  std::string tampered = writer.buffer();
  tampered[tampered.size() / 2] = static_cast<char>(tampered[tampered.size() / 2] ^ 0x01);
  san::snapshot::Reader tampered_reader(tampered);
  EXPECT_THROW(san::snapshot::read_chain(tampered_reader, model), san::snapshot::SnapshotError);
}

// --- server warm restart -----------------------------------------------------

TEST(ServeSnapshot, WarmRestartSkipsGenerationAndResolving) {
  Server warm_writer;
  const Response cold = warm_writer.handle(rmgd_request());
  ASSERT_TRUE(cold.ok()) << cold.error;
  EXPECT_EQ(warm_writer.stats().chain_builds, 1u);
  const std::string snapshot = warm_writer.save_snapshot();
  ASSERT_FALSE(snapshot.empty());

  Server restarted;
  const SnapshotLoadResult loaded = restarted.load_snapshot(snapshot);
  ASSERT_TRUE(loaded.loaded) << loaded.detail;
  EXPECT_EQ(loaded.instances, 1u);
  EXPECT_EQ(loaded.cache_entries, 1u);

  const Response replay = restarted.handle(rmgd_request());
  ASSERT_TRUE(replay.ok()) << replay.error;
  EXPECT_TRUE(replay.cache_hit);
  EXPECT_EQ(restarted.stats().chain_builds, 0u);  // generation skipped
  EXPECT_EQ(restarted.stats().cold_solves, 0u);   // solve skipped

  EXPECT_EQ(replay.model_hash, cold.model_hash);
  EXPECT_EQ(replay.reward_hash, cold.reward_hash);
  EXPECT_EQ(replay.grid_hash, cold.grid_hash);
  EXPECT_EQ(replay.engine, cold.engine);
  ASSERT_EQ(replay.results.size(), cold.results.size());
  for (size_t i = 0; i < replay.results.size(); ++i) {
    EXPECT_TRUE(series_bits_equal(replay.results[i].instant, cold.results[i].instant));
    EXPECT_TRUE(series_bits_equal(replay.results[i].accumulated, cold.results[i].accumulated));
  }
  ASSERT_EQ(replay.certificates.size(), cold.certificates.size());
  for (size_t i = 0; i < replay.certificates.size(); ++i) {
    EXPECT_EQ(replay.certificates[i].solver, cold.certificates[i].solver);
    EXPECT_EQ(replay.certificates[i].certificate.engine, cold.certificates[i].certificate.engine);
  }
}

TEST(ServeSnapshot, FileRoundTrip) {
  const std::string path = testing::TempDir() + "gop_serve_snapshot_test.snap";
  Server writer;
  ASSERT_TRUE(writer.handle(rmgd_request()).ok());
  ASSERT_TRUE(writer.save_snapshot_file(path));

  Server reader;
  const SnapshotLoadResult loaded = reader.load_snapshot_file(path);
  EXPECT_TRUE(loaded.loaded) << loaded.detail;
  EXPECT_TRUE(reader.handle(rmgd_request()).cache_hit);
}

TEST(ServeSnapshot, EveryCorruptionModeDegradesToCleanColdSolve) {
  Server writer;
  const Response reference = writer.handle(rmgd_request());
  ASSERT_TRUE(reference.ok());
  const std::string good = writer.save_snapshot();
  ASSERT_GE(good.size(), 16u);

  const auto expect_cold_start_still_correct = [&](std::string bytes, const char* label) {
    Server victim;
    const SnapshotLoadResult loaded = victim.load_snapshot(bytes);
    EXPECT_FALSE(loaded.loaded) << label;
    EXPECT_EQ(loaded.instances, 0u) << label;
    EXPECT_EQ(loaded.cache_entries, 0u) << label;
    // The server is untouched: the same request cold-solves to the same
    // bits as the reference run.
    const Response fresh = victim.handle(rmgd_request());
    ASSERT_TRUE(fresh.ok()) << label << ": " << fresh.error;
    EXPECT_FALSE(fresh.cache_hit) << label;
    ASSERT_EQ(fresh.results.size(), reference.results.size()) << label;
    for (size_t i = 0; i < fresh.results.size(); ++i) {
      EXPECT_TRUE(series_bits_equal(fresh.results[i].instant, reference.results[i].instant))
          << label;
    }
  };

  expect_cold_start_still_correct(good.substr(0, good.size() / 2), "truncated");
  expect_cold_start_still_correct(good.substr(0, 3), "shorter than the header");
  expect_cold_start_still_correct("", "empty");

  std::string wrong_magic = good;
  wrong_magic[0] = static_cast<char>(wrong_magic[0] ^ 0xff);
  expect_cold_start_still_correct(wrong_magic, "wrong magic");

  std::string version_skew = good;
  version_skew[4] = static_cast<char>(version_skew[4] + 1);
  expect_cold_start_still_correct(version_skew, "version skew");

  std::string bit_flip = good;
  bit_flip[good.size() / 2] = static_cast<char>(bit_flip[good.size() / 2] ^ 0x20);
  expect_cold_start_still_correct(bit_flip, "payload bit flip");

  std::string trailing = good + "x";
  expect_cold_start_still_correct(trailing, "trailing bytes");

  // And the uncorrupted bytes still load after all that.
  Server control;
  EXPECT_TRUE(control.load_snapshot(good).loaded);
}

}  // namespace
}  // namespace gop::serve
