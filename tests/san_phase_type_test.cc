// Tests for Erlang (phase-type) activities by stage expansion.

#include <gtest/gtest.h>

#include <cmath>

#include "markov/first_passage.hh"
#include "san/expr.hh"
#include "san/phase_type.hh"
#include "san/state_space.hh"
#include "util/error.hh"

namespace gop::san {
namespace {

/// Erlang-k CDF with mean 1/rate.
double erlang_cdf(double rate, int k, double t) {
  const double x = rate * static_cast<double>(k) * t;
  double term = 1.0;  // x^i / i!
  double sum = 0.0;
  for (int i = 0; i < k; ++i) {
    sum += term;
    term *= x / static_cast<double>(i + 1);
  }
  return 1.0 - std::exp(-x) * sum;
}

struct ErlangFixture {
  SanModel model{"erlang"};
  PlaceRef done = model.add_place("done", 0);
  ErlangActivity erlang;

  ErlangFixture(double rate, int32_t stages)
      : erlang(add_erlang_activity(model, "work", mark_eq(done, 0), rate, stages,
                                   set_mark(done, 1))) {}
};

TEST(PhaseType, StateSpaceHasOneStatePerStage) {
  ErlangFixture fixture(2.0, 4);
  const GeneratedChain chain = generate_state_space(fixture.model);
  // Stages 0..3 with done=0, plus the done=1 absorbing state.
  EXPECT_EQ(chain.state_count(), 5u);
}

TEST(PhaseType, MeanCompletionTimeIsInverseRate) {
  const double rate = 0.5;
  ErlangFixture fixture(rate, 5);
  const GeneratedChain chain = generate_state_space(fixture.model);
  std::vector<bool> target(chain.state_count(), false);
  for (size_t s = 0; s < chain.state_count(); ++s) {
    target[s] = chain.states()[s][fixture.done.index] == 1;
  }
  const markov::FirstPassageSummary summary =
      markov::first_passage_summary(chain.ctmc(), target);
  EXPECT_NEAR(summary.mean_time_to_absorption, 1.0 / rate, 1e-12);
}

class ErlangCdf : public ::testing::TestWithParam<int> {};

TEST_P(ErlangCdf, MatchesClosedForm) {
  const double rate = 1.5;
  const int stages = GetParam();
  ErlangFixture fixture(rate, stages);
  const GeneratedChain chain = generate_state_space(fixture.model);
  std::vector<bool> target(chain.state_count(), false);
  for (size_t s = 0; s < chain.state_count(); ++s) {
    target[s] = chain.states()[s][fixture.done.index] == 1;
  }
  for (double t : {0.1, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(markov::first_passage_cdf(chain.ctmc(), target, t),
                erlang_cdf(rate, stages, t), 1e-9)
        << "k=" << stages << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Stages, ErlangCdf, ::testing::Values(1, 2, 3, 8, 20));

TEST(PhaseType, HigherStageCountConcentratesTheDistribution) {
  // CV^2 = 1/k: P(T <= mean) rises toward 1/2 ... and the probability of a
  // very early completion falls with k.
  const double rate = 1.0;
  double early_previous = 1.0;
  for (int stages : {1, 4, 16}) {
    ErlangFixture fixture(rate, stages);
    const GeneratedChain chain = generate_state_space(fixture.model);
    std::vector<bool> target(chain.state_count(), false);
    for (size_t s = 0; s < chain.state_count(); ++s) {
      target[s] = chain.states()[s][fixture.done.index] == 1;
    }
    const double early = markov::first_passage_cdf(chain.ctmc(), target, 0.1);
    EXPECT_LT(early, early_previous);
    early_previous = early;
  }
}

TEST(PhaseType, ErlangOneIsPlainExponential) {
  ErlangFixture fixture(3.0, 1);
  const GeneratedChain chain = generate_state_space(fixture.model);
  EXPECT_EQ(chain.state_count(), 2u);
  RewardStructure done_reward;
  done_reward.add(mark_eq(fixture.done, 1), 1.0);
  EXPECT_NEAR(chain.instant_reward(done_reward, 0.7), 1.0 - std::exp(-3.0 * 0.7), 1e-11);
}

TEST(PhaseType, PreemptiveResumeHoldsProgress) {
  // A gate place disables the activity; the stage marking must persist.
  SanModel model("gated");
  const PlaceRef gate = model.add_place("gate", 1);
  const PlaceRef done = model.add_place("done", 0);
  const ErlangActivity erlang = add_erlang_activity(
      model, "work", all_of({has_tokens(gate), mark_eq(done, 0)}), 1.0, 3, set_mark(done, 1));
  // A marking with gate=0 and stage=2 is legal and has no enabled work
  // stages.
  Marking marking = model.initial_marking();
  marking[gate.index] = 0;
  marking[erlang.stage.index] = 2;
  for (const TimedActivity& activity : model.timed_activities()) {
    EXPECT_FALSE(activity.enabled(marking)) << activity.name;
  }
}

TEST(PhaseType, Validation) {
  SanModel model("bad");
  const PlaceRef done = model.add_place("done", 0);
  EXPECT_THROW(
      add_erlang_activity(model, "x", mark_eq(done, 0), 0.0, 3, set_mark(done, 1)),
      InvalidArgument);
  EXPECT_THROW(
      add_erlang_activity(model, "y", mark_eq(done, 0), 1.0, 0, set_mark(done, 1)),
      InvalidArgument);
}

}  // namespace
}  // namespace gop::san
