// Unit tests for the Eq-4 discount-factor policies.

#include <gtest/gtest.h>

#include "core/gamma.hh"

namespace gop::core {
namespace {

GammaInputs inputs(double i_tau_h, double i_tau_h_literal, double i_h, double p_detected,
                   double theta) {
  return GammaInputs{i_tau_h, i_tau_h_literal, i_h, p_detected, theta};
}

TEST(Gamma, PaperLinearUsesCensoredTau) {
  EXPECT_DOUBLE_EQ(
      evaluate_gamma(GammaPolicy::kPaperLinear, inputs(2500.0, 900.0, 0.4, 0.41, 10000.0), 0.9),
      0.75);
}

TEST(Gamma, PaperLinearClampsToUnitInterval) {
  EXPECT_DOUBLE_EQ(
      evaluate_gamma(GammaPolicy::kPaperLinear, inputs(20000.0, 0.0, 0.1, 0.1, 10000.0), 0.9),
      0.0);
  EXPECT_DOUBLE_EQ(
      evaluate_gamma(GammaPolicy::kPaperLinear, inputs(-5.0, 0.0, 0.1, 0.1, 10000.0), 0.9),
      1.0);
}

TEST(Gamma, LiteralLinearUsesLiteralTau) {
  EXPECT_DOUBLE_EQ(
      evaluate_gamma(GammaPolicy::kLiteralLinear, inputs(2500.0, 1000.0, 0.4, 0.41, 10000.0),
                     0.9),
      0.9);
}

TEST(Gamma, ConstantIgnoresInputs) {
  EXPECT_DOUBLE_EQ(
      evaluate_gamma(GammaPolicy::kConstant, inputs(9999.0, 9999.0, 0.9, 0.9, 10000.0), 0.42),
      0.42);
  EXPECT_THROW(
      evaluate_gamma(GammaPolicy::kConstant, inputs(0, 0, 0, 0, 1.0), 1.5),
      InvalidArgument);
}

TEST(Gamma, ConditionalMeanDividesByDetectionMass) {
  // literal tau 1000 over detection mass 0.5 -> conditional mean 2000 ->
  // gamma = 1 - 2000/10000.
  EXPECT_DOUBLE_EQ(
      evaluate_gamma(GammaPolicy::kConditionalMean, inputs(0.0, 1000.0, 0.5, 0.5, 10000.0),
                     0.9),
      0.8);
}

TEST(Gamma, ConditionalMeanWithNoDetectionsIsOne) {
  EXPECT_DOUBLE_EQ(
      evaluate_gamma(GammaPolicy::kConditionalMean, inputs(0.0, 0.0, 0.0, 0.0, 10000.0), 0.9),
      1.0);
}

TEST(Gamma, InvalidThetaThrows) {
  EXPECT_THROW(evaluate_gamma(GammaPolicy::kPaperLinear, inputs(0, 0, 0, 0, 0.0), 0.9),
               InvalidArgument);
}

TEST(Gamma, PolicyNames) {
  EXPECT_STREQ(gamma_policy_name(GammaPolicy::kPaperLinear), "paper-linear");
  EXPECT_STREQ(gamma_policy_name(GammaPolicy::kLiteralLinear), "literal-linear");
  EXPECT_STREQ(gamma_policy_name(GammaPolicy::kConstant), "constant");
  EXPECT_STREQ(gamma_policy_name(GammaPolicy::kConditionalMean), "conditional-mean");
}

}  // namespace
}  // namespace gop::core
