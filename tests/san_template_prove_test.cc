// Property/prover tier for the template registry (ctest label `slow`):
// ~100 seeded instances across every family either pass lint::prove_model
// with probe budget 0, or degrade gracefully — no refuted property, and the
// probe (which lint_model falls back to for unprovable properties) agrees
// that the instance is clean. N-processor instances for N=1..6 must be
// *fully* proved: the template layer declares every capacity, the one-hot
// replica places are written with set_mark only, and the shared-pool
// increment is `when`-guarded, so the interval prover discharges every
// property without probing.

#include <cstdint>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/templates.hh"
#include "lint/model_lint.hh"
#include "lint/prove.hh"
#include "san/registry.hh"
#include "san/template.hh"

namespace gop {
namespace {

using lint::ProofResult;
using lint::Verdict;
using san::tpl::Assignment;

std::set<std::string> error_codes(const lint::Report& report) {
  std::set<std::string> codes;
  for (const lint::Finding& f : report.findings()) {
    if (f.severity == lint::Severity::kError) codes.insert(f.code);
  }
  return codes;
}

/// The acceptance contract for one registry instance: fully proved with zero
/// probe budget, or prover+probe agreement (no refutation, no probe errors).
void expect_proved_or_agreeing(const san::SanModel& model, const std::string& context) {
  const ProofResult proof = lint::prove_model(model);
  ASSERT_EQ(proof.count(Verdict::kRefuted), 0u)
      << context << ": prover refuted a property:\n"
      << proof.findings.to_text();

  if (proof.fully_proved) {
    lint::ModelLintOptions unprobed;
    unprobed.max_probe_markings = 0;
    const lint::Report report = lint::lint_model(model, unprobed);
    EXPECT_FALSE(report.has_errors()) << context << "\n" << report.to_text();
  } else {
    // Degraded: the probe must agree the instance is clean.
    const lint::Report probed = lint::lint_model(model);
    EXPECT_TRUE(error_codes(probed).empty())
        << context << ": probe found errors on an unrefuted instance:\n"
        << probed.to_text();
  }
}

/// Deterministic per-index assignments spreading each family over its
/// parameter ranges.
Assignment nproc_assignment(uint64_t i) {
  Assignment a;
  a.set_int("n", static_cast<int64_t>(1 + i % 6));
  a.set_int("servers", static_cast<int64_t>(1 + i % 3));
  a.set_real("fail_rate", 0.05 + 0.1 * static_cast<double>(i % 5));
  a.set_real("repair_rate", 0.5 + 0.25 * static_cast<double>(i % 4));
  return a;
}

Assignment campaign_assignment(uint64_t i) {
  Assignment a;
  a.set_int("stages", static_cast<int64_t>(1 + i % 5));
  a.set_enum("on_failure", i % 2 == 0 ? "absorb" : "retry");
  a.set_real("success_prob", 0.5 + 0.1 * static_cast<double>(i % 5));
  a.set_real("upgrade_rate", 0.5 + 0.5 * static_cast<double>(i % 3));
  return a;
}

Assignment random_assignment(uint64_t i) {
  Assignment a;
  a.set_int("seed", static_cast<int64_t>(1000 + i));
  a.set_int("max_places", static_cast<int64_t>(2 + i % 4));
  a.set_int("max_activities", static_cast<int64_t>(3 + i % 3));
  a.set_int("place_capacity", static_cast<int64_t>(1 + i % 3));
  return a;
}

Assignment paper_assignment(uint64_t i) {
  Assignment a;
  a.set_real("lambda", 600.0 + 200.0 * static_cast<double>(i % 4));
  a.set_real("coverage", 0.5 + 0.12 * static_cast<double>(i % 4));
  a.set_real("p_ext", 0.05 + 0.05 * static_cast<double>(i % 5));
  if (i % 2 == 1) a.set_real("mu_new", 1e-3);
  return a;
}

TEST(SanTemplateProve, HundredSeededInstancesAcrossAllFamilies) {
  const san::tpl::Registry& registry = core::template_registry();
  struct FamilyCase {
    const char* family;
    Assignment (*assignment)(uint64_t);
  };
  const FamilyCase cases[] = {
      {"nproc", nproc_assignment},           {"upgrade-campaign", campaign_assignment},
      {"random", random_assignment},         {"rmgd", paper_assignment},
      {"rmgp", paper_assignment},            {"rmnd-new", paper_assignment},
      {"rmnd-old", paper_assignment},
  };

  size_t instances = 0;
  for (uint64_t i = 0; i < 15; ++i) {
    for (const FamilyCase& c : cases) {
      const san::tpl::Instance instance = registry.find(c.family).instantiate(c.assignment(i));
      expect_proved_or_agreeing(*instance.model,
                                std::string(c.family) + "[" + instance.resolved.to_string() + "]");
      ++instances;
    }
  }
  EXPECT_GE(instances, 100u);
}

TEST(SanTemplateProve, NprocFullyProvedForNOneThroughSix) {
  const san::tpl::Template& nproc = core::template_registry().find("nproc");
  for (int64_t n = 1; n <= 6; ++n) {
    for (int64_t servers : {int64_t{1}, int64_t{2}}) {
      Assignment a;
      a.set_int("n", n);
      a.set_int("servers", servers);
      const san::tpl::Instance instance = nproc.instantiate(a);
      const ProofResult proof = lint::prove_model(*instance.model);
      EXPECT_TRUE(proof.fully_proved)
          << "n=" << n << " servers=" << servers << ":\n"
          << proof.findings.to_text();
    }
  }
}

TEST(SanTemplateProve, CampaignVariantsFullyProved) {
  const san::tpl::Template& campaign = core::template_registry().find("upgrade-campaign");
  for (const char* policy : {"absorb", "retry"}) {
    Assignment a;
    a.set_int("stages", 4);
    a.set_enum("on_failure", policy);
    const san::tpl::Instance instance = campaign.instantiate(a);
    const ProofResult proof = lint::prove_model(*instance.model);
    EXPECT_TRUE(proof.fully_proved) << policy << ":\n" << proof.findings.to_text();
  }
}

}  // namespace
}  // namespace gop
