// Cross-validation fuzz: randomly generated (but structurally valid) SANs,
// solved along every path the library offers — reachability + dense
// exponential, uniformization, Krylov, and discrete-event simulation — must
// all agree. This is the strongest internal consistency check the library
// has: a bug in any one layer breaks an agreement.

#include <gtest/gtest.h>

#include <cmath>

#include "markov/krylov.hh"
#include "markov/transient.hh"
#include "san/expr.hh"
#include "san/simulator.hh"
#include "san/state_space.hh"
#include "sim/rng.hh"

namespace gop::san {
namespace {

/// A random token-conserving SAN: `tokens` tokens distributed over `places`
/// places, moved around by timed activities with random rates; some
/// activities have two probabilistic cases with different destinations.
/// Token conservation keeps the state space finite by construction.
struct RandomSan {
  SanModel model{"fuzz"};
  std::vector<PlaceRef> places;

  RandomSan(uint64_t seed, size_t place_count, int32_t tokens, size_t activity_count) {
    sim::Rng rng(seed);
    for (size_t i = 0; i < place_count; ++i) {
      places.push_back(model.add_place("p" + std::to_string(i), i == 0 ? tokens : 0));
    }
    for (size_t a = 0; a < activity_count; ++a) {
      const PlaceRef source = places[rng.uniform_index(place_count)];
      const PlaceRef dest1 = places[rng.uniform_index(place_count)];
      const PlaceRef dest2 = places[rng.uniform_index(place_count)];
      const double rate = 0.2 + 3.0 * rng.uniform();
      const double split = 0.1 + 0.8 * rng.uniform();

      TimedActivity activity;
      activity.name = "a" + std::to_string(a);
      activity.enabled = has_tokens(source);
      activity.rate = constant_rate(rate);
      activity.cases.push_back(Case{constant_prob(split),
                                    sequence({add_mark(source, -1), add_mark(dest1, 1)})});
      activity.cases.push_back(Case{constant_prob(1.0 - split),
                                    sequence({add_mark(source, -1), add_mark(dest2, 1)})});
      model.add_timed_activity(std::move(activity));
    }
  }
};

class CrossValidation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossValidation, AllTransientEnginesAgree) {
  const RandomSan san(GetParam(), 4, 2, 6);
  const GeneratedChain chain = generate_state_space(san.model);
  ASSERT_GE(chain.state_count(), 1u);

  for (double t : {0.3, 1.7}) {
    markov::TransientOptions expm_options;
    expm_options.method = markov::TransientMethod::kMatrixExponential;
    const std::vector<double> reference =
        markov::transient_distribution(chain.ctmc(), t, expm_options);

    markov::TransientOptions unif_options;
    unif_options.method = markov::TransientMethod::kUniformization;
    const std::vector<double> uniformized =
        markov::transient_distribution(chain.ctmc(), t, unif_options);

    const std::vector<double> krylov = markov::krylov_transient_distribution(chain.ctmc(), t);

    double total = 0.0;
    for (size_t s = 0; s < chain.state_count(); ++s) {
      EXPECT_NEAR(uniformized[s], reference[s], 1e-9) << "t=" << t << " state " << s;
      EXPECT_NEAR(krylov[s], reference[s], 1e-7) << "t=" << t << " state " << s;
      total += reference[s];
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_P(CrossValidation, SimulatorAgreesWithSolver) {
  const RandomSan san(GetParam(), 3, 2, 5);
  const GeneratedChain chain = generate_state_space(san.model);

  RewardStructure reward;
  reward.add(has_tokens(san.places[1]), 1.0);
  const double t = 1.2;
  const double exact = chain.instant_reward(reward, t);

  SanSimulator simulator(san.model);
  sim::ReplicationOptions options;
  options.seed = GetParam() * 7919 + 1;
  options.min_replications = 3000;
  options.max_replications = 3000;
  const auto estimate = simulator.estimate_instant_reward(reward, t, options);
  EXPECT_NEAR(estimate.mean(), exact, 4.5 * estimate.stats.std_error() + 5e-3);
}

TEST_P(CrossValidation, AccumulatedOccupancySumsToHorizon) {
  const RandomSan san(GetParam(), 4, 1, 5);
  const GeneratedChain chain = generate_state_space(san.model);
  const double t = 2.5;
  const std::vector<double> occupancy = markov::accumulated_occupancy(chain.ctmc(), t);
  double total = 0.0;
  for (double v : occupancy) total += v;
  EXPECT_NEAR(total, t, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation, ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace gop::san
