// The gop::serve concurrency battery (run under ThreadSanitizer in CI): N
// client threads hammer one Server with a mixed hot / cold / invalid request
// stream and the test pins the coordination invariants — single-flight means
// exactly one cold solve per distinct cache key no matter how many clients
// race, cached reads are never torn (every reply for a key is bitwise
// identical), and invalid requests fail cleanly under load.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve/cache.hh"
#include "serve/request.hh"
#include "serve/server.hh"

namespace gop::serve {
namespace {

constexpr size_t kClients = 8;
constexpr size_t kColdKeys = 4;

Request grid_request(double time) {
  Request request;
  request.model = "rmgd";
  request.rewards = {"P_A1", "Ih"};
  request.transient_times = {time};
  return request;
}

bool responses_bits_equal(const Response& a, const Response& b) {
  if (a.engine != b.engine || a.model_hash != b.model_hash || a.reward_hash != b.reward_hash ||
      a.grid_hash != b.grid_hash || a.results.size() != b.results.size()) {
    return false;
  }
  for (size_t i = 0; i < a.results.size(); ++i) {
    if (a.results[i].reward != b.results[i].reward) return false;
    if (a.results[i].instant.size() != b.results[i].instant.size()) return false;
    for (size_t j = 0; j < a.results[i].instant.size(); ++j) {
      if (std::bit_cast<uint64_t>(a.results[i].instant[j]) !=
          std::bit_cast<uint64_t>(b.results[i].instant[j])) {
        return false;
      }
    }
  }
  return true;
}

TEST(ServeConcurrency, SingleFlightOneColdSolvePerDistinctKey) {
  Server server;

  // Every client asks for every key several times, in a client-dependent
  // order, so distinct keys are raced from the first request on (nothing is
  // prewarmed). 8 clients x 4 keys x 3 rounds = 96 requests, 4 distinct keys.
  constexpr size_t kRounds = 3;
  std::vector<std::vector<Response>> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t client = 0; client < kClients; ++client) {
    clients.emplace_back([&server, &responses, client] {
      for (size_t round = 0; round < kRounds; ++round) {
        for (size_t k = 0; k < kColdKeys; ++k) {
          const size_t key = (k + client) % kColdKeys;  // rotate arrival order
          const double time = 1000.0 * static_cast<double>(key + 1);
          responses[client].push_back(server.handle(grid_request(time)));
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, kClients * kColdKeys * kRounds);
  // The invariant the battery exists for: one solve per distinct key, no
  // matter the interleaving. Everything else was a hit or coalesced onto an
  // in-flight leader.
  EXPECT_EQ(stats.cold_solves, kColdKeys);
  EXPECT_EQ(stats.cache_hits + stats.coalesced + stats.cold_solves, stats.requests);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.rejected, 0u);

  // Deterministic responses regardless of arrival order: group by grid hash
  // and require bitwise-identical payloads within each group.
  std::map<uint64_t, const Response*> reference;
  for (size_t client = 0; client < kClients; ++client) {
    for (const Response& response : responses[client]) {
      ASSERT_TRUE(response.ok()) << response.error;
      const auto [it, inserted] = reference.emplace(response.grid_hash, &response);
      if (!inserted) {
        EXPECT_TRUE(responses_bits_equal(*it->second, response));
      }
    }
  }
  EXPECT_EQ(reference.size(), kColdKeys);
}

TEST(ServeConcurrency, MixedHotColdInvalidStreamStaysConsistent) {
  Server server;
  // Prewarm the hot key so hits dominate.
  const Response warm = server.handle(grid_request(7000.0));
  ASSERT_TRUE(warm.ok()) << warm.error;

  constexpr size_t kPerClient = 60;
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> mismatched{0};
  std::atomic<uint64_t> invalid_sent{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t client = 0; client < kClients; ++client) {
    clients.emplace_back([&, client] {
      for (size_t i = 0; i < kPerClient; ++i) {
        Request request = grid_request(7000.0);
        bool expect_error = false;
        if (i % 11 == 3) {
          // Cold: a key only this (client, i) pair asks for.
          request.transient_times = {8000.0 + static_cast<double>(client * 1000 + i)};
        } else if (i % 13 == 5) {
          request.rewards = {"no_such_reward"};
          expect_error = true;
          invalid_sent.fetch_add(1, std::memory_order_relaxed);
        }
        const Response response = server.handle(request);
        if (expect_error) {
          if (response.status == Status::kError && !response.error.empty()) {
            ok.fetch_add(1, std::memory_order_relaxed);
          } else {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
        if (!response.ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        ok.fetch_add(1, std::memory_order_relaxed);
        // Hot replies must be bitwise stable against the prewarm solve — a
        // torn cache read or a re-solve drift would show up here.
        if (response.grid_hash == warm.grid_hash && !responses_bits_equal(warm, response)) {
          mismatched.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(failed.load(), 0u);
  EXPECT_EQ(mismatched.load(), 0u);
  EXPECT_EQ(ok.load(), kClients * kPerClient);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, kClients * kPerClient + 1);
  EXPECT_EQ(stats.errors, invalid_sent.load());
  // Each cold key is distinct per (client, i), so every one is exactly one
  // cold solve; the prewarmed hot key accounts for the +1.
  const uint64_t cold_keys = kClients * (kPerClient / 11 + (kPerClient % 11 > 3 ? 1 : 0));
  EXPECT_EQ(stats.cold_solves, cold_keys + 1);
}

TEST(ServeConcurrency, SingleFlightStressExactlyOneLeader) {
  SingleFlight<int> flight;
  std::atomic<int> runs{0};
  std::atomic<int> leaders{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      const auto role = flight.do_once(42, [&] {
        runs.fetch_add(1);
        // Widen the race window so followers actually coalesce.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      });
      if (role == SingleFlight<int>::Role::kLeader) leaders.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(leaders.load(), 1);
}

TEST(ServeConcurrency, SingleFlightFailurePropagatesToEveryWaiter) {
  SingleFlight<int> flight;
  std::atomic<int> caught{0};
  std::atomic<int> attempts{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      try {
        flight.do_once(7, [&] {
          attempts.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          throw std::runtime_error("injected failure");
        });
      } catch (const std::runtime_error&) {
        caught.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Whoever coalesced onto a failing leader saw the exception; late arrivals
  // found a cleared slot and led a fresh (also failing) attempt. Either way:
  // every caller observed the failure, and attempts never exceed callers.
  EXPECT_EQ(caught.load(), static_cast<int>(kClients));
  EXPECT_GE(attempts.load(), 1);
  EXPECT_LE(attempts.load(), static_cast<int>(kClients));
}

}  // namespace
}  // namespace gop::serve
