// Tests for the performability analyzer: boundary identities, monotonicity,
// the paper's §6 anchor results, and the phi-sweep / optimizer utilities.

#include <gtest/gtest.h>

#include <memory>

#include "core/performability.hh"
#include "core/sweep.hh"

namespace gop::core {
namespace {

/// Shared analyzer for the Table-3 parameters (construction does real work,
/// so reuse it across tests in this suite).
const PerformabilityAnalyzer& table3_analyzer() {
  static const PerformabilityAnalyzer analyzer(GsuParameters::table3());
  return analyzer;
}

TEST(Performability, YAtZeroPhiIsExactlyOne) {
  // With no guarded operation E[Wphi] degenerates to E[W0], so Y(0) = 1 by
  // construction — a built-in consistency check of the translation.
  const PerformabilityResult r = table3_analyzer().evaluate(0.0);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_NEAR(r.e_w0, r.e_wphi, 1e-9);
  EXPECT_DOUBLE_EQ(r.y_s2, 0.0);
}

TEST(Performability, IdealWorthIsTwoTheta) {
  const PerformabilityResult r = table3_analyzer().evaluate(5000.0);
  EXPECT_DOUBLE_EQ(r.e_wi, 2.0 * table3_analyzer().parameters().theta);
}

TEST(Performability, EW0MatchesUnprotectedSurvival) {
  const ConstituentMeasures m = table3_analyzer().constituents(0.0);
  const PerformabilityResult r = table3_analyzer().evaluate(0.0);
  EXPECT_NEAR(r.e_w0, 2.0 * 10000.0 * m.p_nd_theta, 1e-9);
}

TEST(Performability, PaperAnchorOptimumAt7000) {
  // Figure 9, solid curve: grid optimum at phi = 7000 on the paper's
  // 1000-hour grid.
  const auto results = sweep_phi(table3_analyzer(), linspace(0.0, 10000.0, 11));
  double best_phi = 0.0, best_y = -1.0;
  for (const auto& r : results) {
    if (r.y > best_y) {
      best_y = r.y;
      best_phi = r.phi;
    }
  }
  EXPECT_DOUBLE_EQ(best_phi, 7000.0);
  // The paper's curve peaks near 1.47; our reconstruction peaks near 1.54.
  EXPECT_GT(best_y, 1.4);
  EXPECT_LT(best_y, 1.7);
}

TEST(Performability, PaperAnchorLowerFaultRateShiftsOptimumEarlier) {
  GsuParameters params = GsuParameters::table3();
  params.mu_new = 0.5e-4;
  const PerformabilityAnalyzer analyzer(params);
  const auto results = sweep_phi(analyzer, linspace(0.0, 10000.0, 11));
  double best_phi = 0.0, best_y = -1.0;
  for (const auto& r : results) {
    if (r.y > best_y) {
      best_y = r.y;
      best_phi = r.phi;
    }
  }
  EXPECT_DOUBLE_EQ(best_phi, 5000.0);  // paper: 5000
}

TEST(Performability, PaperAnchorHigherOverheadShiftsOptimumEarlier) {
  GsuParameters params = GsuParameters::table3();
  params.alpha = 2500.0;
  params.beta = 2500.0;
  const PerformabilityAnalyzer analyzer(params);
  EXPECT_NEAR(analyzer.rho1(), 0.95, 0.01);
  EXPECT_NEAR(analyzer.rho2(), 0.90, 0.015);
  const auto results = sweep_phi(analyzer, linspace(0.0, 10000.0, 11));
  double best_phi = 0.0, best_y = -1.0;
  for (const auto& r : results) {
    if (r.y > best_y) {
      best_y = r.y;
      best_phi = r.phi;
    }
  }
  EXPECT_DOUBLE_EQ(best_phi, 6000.0);  // paper: 6000
}

TEST(Performability, PaperAnchorShortThetaShiftsOptimumEarlier) {
  GsuParameters params = GsuParameters::table3();
  params.theta = 5000.0;
  const PerformabilityAnalyzer analyzer(params);
  const auto results = sweep_phi(analyzer, linspace(0.0, 5000.0, 11));
  double best_phi = 0.0, best_y = -1.0;
  for (const auto& r : results) {
    if (r.y > best_y) {
      best_y = r.y;
      best_phi = r.phi;
    }
  }
  EXPECT_DOUBLE_EQ(best_phi, 2500.0);  // paper: 2500
}

TEST(Performability, PaperAnchorVeryLowCoverageNotWorthwhile) {
  GsuParameters params = GsuParameters::table3();
  params.alpha = 2500.0;
  params.beta = 2500.0;
  params.coverage = 0.10;
  const PerformabilityAnalyzer analyzer(params);
  // Y <= ~1 everywhere and decreasing beyond small phi (paper §6 text).
  const auto results = sweep_phi(analyzer, linspace(0.0, 10000.0, 11));
  for (const auto& r : results) EXPECT_LT(r.y, 1.005);
  EXPECT_LT(results.back().y, results[3].y);
}

TEST(Performability, CoverageSensitivityOfMaxY) {
  // Figure 11: max Y increases with coverage.
  double previous_max = 0.0;
  for (double coverage : {0.50, 0.75, 0.95}) {
    GsuParameters params = GsuParameters::table3();
    params.alpha = 2500.0;
    params.beta = 2500.0;
    params.coverage = coverage;
    const PerformabilityAnalyzer analyzer(params);
    double best_y = -1.0;
    for (const auto& r : sweep_phi(analyzer, linspace(0.0, 10000.0, 11))) {
      best_y = std::max(best_y, r.y);
    }
    EXPECT_GT(best_y, previous_max);
    previous_max = best_y;
  }
}

TEST(Performability, ConstituentsAreProbabilitiesWherePromised) {
  for (double phi : {0.0, 1.0, 500.0, 5000.0, 10000.0}) {
    const ConstituentMeasures m = table3_analyzer().constituents(phi);
    for (double p : {m.p_a1_phi, m.i_h, m.i_hf, m.p_nd_theta, m.p_nd_rest, m.i_f}) {
      EXPECT_GE(p, -1e-12) << "phi=" << phi;
      EXPECT_LE(p, 1.0 + 1e-12) << "phi=" << phi;
    }
    EXPECT_GE(m.i_tau_h, -1e-9);
    EXPECT_LE(m.i_tau_h, phi + 1e-6);
    EXPECT_GE(m.i_tau_h_literal, -1e-6);
    EXPECT_LE(m.i_tau_h_literal, phi + 1e-6);
  }
}

TEST(Performability, LiteralTauIsSmallerThanCensoredTau) {
  // E[tau 1(detect by phi)] <= E[min(first event, phi)] for these models.
  const ConstituentMeasures m = table3_analyzer().constituents(7000.0);
  EXPECT_LT(m.i_tau_h_literal, m.i_tau_h);
  // And the conditional mean is below phi.
  EXPECT_LT(m.i_tau_h_literal / (m.i_h + m.i_hf), 7000.0);
}

TEST(Performability, GammaInUnitInterval) {
  for (double phi : {0.0, 2000.0, 10000.0}) {
    const PerformabilityResult r = table3_analyzer().evaluate(phi);
    EXPECT_GE(r.gamma, 0.0);
    EXPECT_LE(r.gamma, 1.0);
  }
}

TEST(Performability, RhoOverridesAreHonored) {
  AnalyzerOptions options;
  options.override_rho1 = 0.9;
  options.override_rho2 = 0.8;
  const PerformabilityAnalyzer analyzer(GsuParameters::table3(), options);
  EXPECT_DOUBLE_EQ(analyzer.rho1(), 0.9);
  EXPECT_DOUBLE_EQ(analyzer.rho2(), 0.8);
}

TEST(Performability, HigherOverheadLowersY) {
  AnalyzerOptions cheap, expensive;
  cheap.override_rho1 = 0.99;
  cheap.override_rho2 = 0.99;
  expensive.override_rho1 = 0.80;
  expensive.override_rho2 = 0.80;
  const PerformabilityAnalyzer a(GsuParameters::table3(), cheap);
  const PerformabilityAnalyzer b(GsuParameters::table3(), expensive);
  EXPECT_GT(a.evaluate(6000.0).y, b.evaluate(6000.0).y);
}

TEST(Performability, PhiOutsideRangeThrows) {
  EXPECT_THROW(table3_analyzer().evaluate(-1.0), InvalidArgument);
  EXPECT_THROW(table3_analyzer().evaluate(10001.0), InvalidArgument);
}

TEST(Performability, NeglectedTermIsTiny) {
  AnalyzerOptions options;
  options.include_neglected_term = true;
  const PerformabilityAnalyzer analyzer(GsuParameters::table3(), options);
  const PerformabilityResult r = analyzer.evaluate(7000.0);
  // Bound in mission-worth hours; compare with E[WI] = 2e4.
  EXPECT_LT(r.neglected_term, 1.0);
  EXPECT_GT(r.neglected_term, 0.0);
  const double y_paper = table3_analyzer().evaluate(7000.0).y;
  EXPECT_NEAR(r.y, y_paper, 1e-4);
}

// --- sweep / optimizer -------------------------------------------------------------

TEST(Sweep, LinspaceEndpointsExact) {
  const std::vector<double> v = linspace(0.0, 10000.0, 11);
  ASSERT_EQ(v.size(), 11u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 10000.0);
  EXPECT_DOUBLE_EQ(v[3], 3000.0);
  EXPECT_THROW(linspace(0.0, 1.0, 1), InvalidArgument);
  EXPECT_THROW(linspace(2.0, 1.0, 3), InvalidArgument);
}

TEST(Sweep, SweepPreservesOrder) {
  const auto results = sweep_phi(table3_analyzer(), {0.0, 5000.0, 10000.0});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_DOUBLE_EQ(results[0].phi, 0.0);
  EXPECT_DOUBLE_EQ(results[1].phi, 5000.0);
  EXPECT_DOUBLE_EQ(results[2].phi, 10000.0);
}

TEST(Sweep, OptimizerRefinesBeyondGrid) {
  OptimizeOptions options;
  options.grid_points = 11;
  options.phi_tolerance = 5.0;
  const OptimalPhi best = find_optimal_phi(table3_analyzer(), options);
  EXPECT_TRUE(best.beneficial);
  // Refined optimum lies between the 6000 and 7000 grid points and beats the
  // best grid value.
  EXPECT_GT(best.phi, 6000.0);
  EXPECT_LT(best.phi, 8000.0);
  EXPECT_GE(best.y, table3_analyzer().evaluate(7000.0).y - 1e-9);
}

TEST(Sweep, OptimizerReportsNonBeneficialRegime) {
  GsuParameters params = GsuParameters::table3();
  params.alpha = 2500.0;
  params.beta = 2500.0;
  params.coverage = 0.05;
  const PerformabilityAnalyzer analyzer(params);
  OptimizeOptions options;
  options.grid_points = 11;
  options.phi_tolerance = 50.0;
  const OptimalPhi best = find_optimal_phi(analyzer, options);
  EXPECT_FALSE(best.beneficial);
}

}  // namespace
}  // namespace gop::core
