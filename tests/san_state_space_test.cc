// Tests for the reachability generator: tangible state exploration,
// vanishing-marking elimination, validation, and reward structures evaluated
// through the generated chain.

#include <gtest/gtest.h>

#include <cmath>

#include "san/expr.hh"
#include "san/state_space.hh"
#include "util/error.hh"

namespace gop::san {
namespace {

/// A simple cyclic two-place SAN: token moves a <-> b.
struct TogglePair {
  SanModel model{"toggle"};
  PlaceRef a = model.add_place("a", 1);
  PlaceRef b = model.add_place("b");

  TogglePair(double forward = 2.0, double backward = 3.0) {
    model.add_timed_activity("fwd", has_tokens(a), constant_rate(forward),
                             sequence({add_mark(a, -1), add_mark(b, 1)}));
    model.add_timed_activity("bwd", has_tokens(b), constant_rate(backward),
                             sequence({add_mark(b, -1), add_mark(a, 1)}));
  }
};

TEST(StateSpace, ExploresTangibleStates) {
  TogglePair toggle;
  const GeneratedChain chain = generate_state_space(toggle.model);
  EXPECT_EQ(chain.state_count(), 2u);
  EXPECT_EQ(chain.ctmc().transitions().size(), 2u);
  // Initial distribution concentrated on the initial marking.
  const size_t init = chain.state_index(toggle.model.initial_marking());
  EXPECT_DOUBLE_EQ(chain.ctmc().initial_distribution()[init], 1.0);
}

TEST(StateSpace, TransitionRatesMatchActivities) {
  TogglePair toggle(2.0, 3.0);
  const GeneratedChain chain = generate_state_space(toggle.model);
  Marking in_a = toggle.model.initial_marking();
  Marking in_b = in_a;
  in_b[toggle.a.index] = 0;
  in_b[toggle.b.index] = 1;
  const size_t sa = chain.state_index(in_a);
  const size_t sb = chain.state_index(in_b);
  EXPECT_DOUBLE_EQ(chain.ctmc().rate_matrix().at(sa, sb), 2.0);
  EXPECT_DOUBLE_EQ(chain.ctmc().rate_matrix().at(sb, sa), 3.0);
}

TEST(StateSpace, UnreachableMarkingLookupThrows) {
  TogglePair toggle;
  const GeneratedChain chain = generate_state_space(toggle.model);
  Marking bogus(std::vector<int32_t>{1, 1});
  EXPECT_THROW(chain.state_index(bogus), InvalidArgument);
}

TEST(StateSpace, ProbabilisticCasesSplitRates) {
  SanModel m("branch");
  const PlaceRef src = m.add_place("src", 1);
  const PlaceRef left = m.add_place("left");
  const PlaceRef right = m.add_place("right");
  TimedActivity act;
  act.name = "go";
  act.enabled = has_tokens(src);
  act.rate = constant_rate(10.0);
  act.cases.push_back(Case{constant_prob(0.3),
                           sequence({add_mark(src, -1), add_mark(left, 1)})});
  act.cases.push_back(Case{constant_prob(0.7),
                           sequence({add_mark(src, -1), add_mark(right, 1)})});
  m.add_timed_activity(std::move(act));

  const GeneratedChain chain = generate_state_space(m);
  ASSERT_EQ(chain.state_count(), 3u);
  Marking to_left(std::vector<int32_t>{0, 1, 0});
  Marking to_right(std::vector<int32_t>{0, 0, 1});
  const size_t s0 = chain.state_index(m.initial_marking());
  EXPECT_DOUBLE_EQ(chain.ctmc().rate_matrix().at(s0, chain.state_index(to_left)), 3.0);
  EXPECT_DOUBLE_EQ(chain.ctmc().rate_matrix().at(s0, chain.state_index(to_right)), 7.0);
}

TEST(StateSpace, CaseProbabilitiesMustSumToOne) {
  SanModel m("bad");
  const PlaceRef p = m.add_place("p", 1);
  TimedActivity act;
  act.name = "broken";
  act.enabled = has_tokens(p);
  act.rate = constant_rate(1.0);
  act.cases.push_back(Case{constant_prob(0.3), no_effect()});
  act.cases.push_back(Case{constant_prob(0.3), no_effect()});
  m.add_timed_activity(std::move(act));
  EXPECT_THROW(generate_state_space(m), InvalidArgument);
}

TEST(StateSpace, NonPositiveRateWhileEnabledThrows) {
  SanModel m("bad");
  const PlaceRef p = m.add_place("p", 1);
  m.add_timed_activity("zero", has_tokens(p), [](const Marking&) { return 0.0; }, no_effect());
  EXPECT_THROW(generate_state_space(m), InvalidArgument);
}

TEST(StateSpace, VanishingMarkingEliminated) {
  // src --(timed)--> mid (vanishing) --(instantaneous)--> done.
  SanModel m("vanish");
  const PlaceRef src = m.add_place("src", 1);
  const PlaceRef mid = m.add_place("mid");
  const PlaceRef done = m.add_place("done");
  m.add_timed_activity("fire", has_tokens(src), constant_rate(1.0),
                       sequence({add_mark(src, -1), add_mark(mid, 1)}));
  m.add_instantaneous_activity("settle", has_tokens(mid),
                               sequence({add_mark(mid, -1), add_mark(done, 1)}));

  const GeneratedChain chain = generate_state_space(m);
  EXPECT_EQ(chain.state_count(), 2u);  // mid never appears
  Marking vanishing(std::vector<int32_t>{0, 1, 0});
  EXPECT_THROW(chain.state_index(vanishing), InvalidArgument);
}

TEST(StateSpace, VanishingChainSplitsProbabilistically) {
  // Timed into a vanishing marking whose instantaneous activity branches
  // 0.25 / 0.75 into two tangible states.
  SanModel m("vanish_branch");
  const PlaceRef src = m.add_place("src", 1);
  const PlaceRef mid = m.add_place("mid");
  const PlaceRef left = m.add_place("left");
  const PlaceRef right = m.add_place("right");
  m.add_timed_activity("fire", has_tokens(src), constant_rate(8.0),
                       sequence({add_mark(src, -1), add_mark(mid, 1)}));
  InstantaneousActivity inst;
  inst.name = "branch";
  inst.enabled = has_tokens(mid);
  inst.cases.push_back(Case{constant_prob(0.25),
                            sequence({add_mark(mid, -1), add_mark(left, 1)})});
  inst.cases.push_back(Case{constant_prob(0.75),
                            sequence({add_mark(mid, -1), add_mark(right, 1)})});
  m.add_instantaneous_activity(std::move(inst));

  const GeneratedChain chain = generate_state_space(m);
  const size_t s0 = chain.state_index(m.initial_marking());
  Marking to_left(std::vector<int32_t>{0, 0, 1, 0});
  Marking to_right(std::vector<int32_t>{0, 0, 0, 1});
  EXPECT_DOUBLE_EQ(chain.ctmc().rate_matrix().at(s0, chain.state_index(to_left)), 2.0);
  EXPECT_DOUBLE_EQ(chain.ctmc().rate_matrix().at(s0, chain.state_index(to_right)), 6.0);
}

TEST(StateSpace, PriorityOrdersInstantaneousActivities) {
  // Two instantaneous activities enabled in the same vanishing marking; the
  // higher-priority one must fire.
  SanModel m("priority");
  const PlaceRef mid = m.add_place("mid", 1);
  const PlaceRef low = m.add_place("low");
  const PlaceRef high = m.add_place("high");
  const PlaceRef src = m.add_place("src");
  m.add_instantaneous_activity("low_act", has_tokens(mid),
                               sequence({add_mark(mid, -1), add_mark(low, 1)}), 0);
  m.add_instantaneous_activity("high_act", has_tokens(mid),
                               sequence({add_mark(mid, -1), add_mark(high, 1)}), 5);
  // A dummy timed activity so the tangible chain is non-trivial.
  m.add_timed_activity("tick", has_tokens(high), constant_rate(1.0),
                       sequence({add_mark(high, -1), add_mark(src, 1)}));

  const GeneratedChain chain = generate_state_space(m);
  Marking expect_high(std::vector<int32_t>{0, 0, 1, 0});
  EXPECT_NO_THROW(chain.state_index(expect_high));
  Marking expect_low(std::vector<int32_t>{0, 1, 0, 0});
  EXPECT_THROW(chain.state_index(expect_low), InvalidArgument);
}

TEST(StateSpace, EqualPriorityInstantaneousChosenUniformly) {
  // The initial marking is vanishing with two equal-priority activities:
  // the initial distribution splits 0.5 / 0.5.
  SanModel m("uniform");
  const PlaceRef mid = m.add_place("mid", 1);
  const PlaceRef a = m.add_place("a");
  const PlaceRef b = m.add_place("b");
  m.add_instantaneous_activity("to_a", has_tokens(mid),
                               sequence({add_mark(mid, -1), add_mark(a, 1)}));
  m.add_instantaneous_activity("to_b", has_tokens(mid),
                               sequence({add_mark(mid, -1), add_mark(b, 1)}));
  m.add_timed_activity("tick_a", has_tokens(a), constant_rate(1.0), no_effect());
  m.add_timed_activity("tick_b", has_tokens(b), constant_rate(1.0), no_effect());

  // NOTE: tick_* keep the marking unchanged — self-loop transitions.
  const GeneratedChain chain = generate_state_space(m);
  Marking in_a(std::vector<int32_t>{0, 1, 0});
  Marking in_b(std::vector<int32_t>{0, 0, 1});
  EXPECT_DOUBLE_EQ(chain.ctmc().initial_distribution()[chain.state_index(in_a)], 0.5);
  EXPECT_DOUBLE_EQ(chain.ctmc().initial_distribution()[chain.state_index(in_b)], 0.5);
}

TEST(StateSpace, VanishingLoopDetected) {
  SanModel m("loop");
  const PlaceRef a = m.add_place("a", 1);
  const PlaceRef b = m.add_place("b");
  m.add_instantaneous_activity("ab", has_tokens(a),
                               sequence({add_mark(a, -1), add_mark(b, 1)}));
  m.add_instantaneous_activity("ba", has_tokens(b),
                               sequence({add_mark(b, -1), add_mark(a, 1)}));
  EXPECT_THROW(generate_state_space(m), InvalidArgument);
}

TEST(StateSpace, MaxStatesGuard) {
  // Unbounded counter: the explosion guard must fire.
  SanModel m("unbounded");
  const PlaceRef p = m.add_place("p", 0);
  m.add_timed_activity("grow", always(), constant_rate(1.0), add_mark(p, 1));
  GenerationOptions options;
  options.max_states = 100;
  EXPECT_THROW(generate_state_space(m, options), InvalidArgument);
}

TEST(StateSpace, InfiniteServerRateIsMarkingDependent) {
  // Bounded birth-death with marking-dependent death rate k*mu: an M/M/inf
  // style model; check the generated rates.
  SanModel m("mminf");
  const PlaceRef busy = m.add_place("busy", 0);
  const double lambda = 4.0, mu = 1.5;
  m.add_timed_activity("arrive",
                       [busy](const Marking& mk) { return mk[busy.index] < 3; },
                       constant_rate(lambda), add_mark(busy, 1));
  m.add_timed_activity("depart", has_tokens(busy), rate_per_token(busy, mu),
                       add_mark(busy, -1));
  const GeneratedChain chain = generate_state_space(m);
  ASSERT_EQ(chain.state_count(), 4u);
  Marking two(std::vector<int32_t>{2});
  Marking one(std::vector<int32_t>{1});
  EXPECT_DOUBLE_EQ(chain.ctmc().rate_matrix().at(chain.state_index(two), chain.state_index(one)),
                   2.0 * mu);
}

// --- rewards through the chain ---------------------------------------------------

TEST(StateSpace, RateRewardVector) {
  TogglePair toggle;
  const GeneratedChain chain = generate_state_space(toggle.model);
  RewardStructure reward;
  reward.add(has_tokens(toggle.a), 2.0);
  reward.add(always(), 1.0);  // overlapping predicates add
  const std::vector<double> vec = chain.rate_reward_vector(reward);
  const size_t in_a = chain.state_index(toggle.model.initial_marking());
  EXPECT_DOUBLE_EQ(vec[in_a], 3.0);
  EXPECT_DOUBLE_EQ(vec[1 - in_a], 1.0);
}

TEST(StateSpace, SteadyStateRewardMatchesClosedForm) {
  const double fwd = 2.0, bwd = 3.0;
  TogglePair toggle(fwd, bwd);
  const GeneratedChain chain = generate_state_space(toggle.model);
  RewardStructure reward;
  reward.add(has_tokens(toggle.a), 1.0);
  // pi(a) = bwd / (fwd + bwd).
  EXPECT_NEAR(chain.steady_state_reward(reward), bwd / (fwd + bwd), 1e-12);
}

TEST(StateSpace, InstantRewardMatchesClosedForm) {
  const double fwd = 2.0, bwd = 3.0, t = 0.4;
  TogglePair toggle(fwd, bwd);
  const GeneratedChain chain = generate_state_space(toggle.model);
  RewardStructure reward;
  reward.add(has_tokens(toggle.a), 1.0);
  const double s = fwd + bwd;
  const double expected = bwd / s + fwd / s * std::exp(-s * t);
  EXPECT_NEAR(chain.instant_reward(reward, t), expected, 1e-11);
  EXPECT_NEAR(chain.transient_probability(has_tokens(toggle.a), t), expected, 1e-11);
}

TEST(StateSpace, AccumulatedImpulseRewardCountsCompletions) {
  const double fwd = 2.0, bwd = 3.0, t = 200.0;
  TogglePair toggle(fwd, bwd);
  const ActivityRef fwd_ref = toggle.model.timed_ref(0);
  const GeneratedChain chain = generate_state_space(toggle.model);
  RewardStructure reward;
  reward.add_impulse(fwd_ref, 1.0);
  // Long-run completion rate of fwd is pi(a)*fwd.
  const double expected_rate = bwd / (fwd + bwd) * fwd;
  EXPECT_NEAR(chain.accumulated_reward(reward, t) / t, expected_rate, 1e-2);
}

TEST(StateSpace, ImpulseOnInstantaneousActivityRejected) {
  SanModel m("impulse_inst");
  const PlaceRef a = m.add_place("a", 1);
  const PlaceRef b = m.add_place("b");
  m.add_timed_activity("t", has_tokens(a), constant_rate(1.0),
                       sequence({add_mark(a, -1), add_mark(b, 1)}));
  const ActivityRef inst = m.add_instantaneous_activity(
      "i", [](const Marking&) { return false; }, no_effect());
  const GeneratedChain chain = generate_state_space(m);
  RewardStructure reward;
  reward.add_impulse(inst, 1.0);
  EXPECT_THROW(chain.accumulated_reward(reward, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace gop::san
