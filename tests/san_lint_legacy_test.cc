// Regression tests for the legacy san::diagnose() diagnostics, which the
// gop::lint findings API absorbs but must not change: the structured fields,
// the summary() wording, and the SCC helper they are built on.

#include <gtest/gtest.h>

#include "san/expr.hh"
#include "san/lint.hh"
#include "san/state_space.hh"

namespace gop::san {
namespace {

/// Healthy cyclic two-place SAN.
struct Toggle {
  SanModel model{"toggle"};
  PlaceRef a = model.add_place("a", 1);
  PlaceRef b = model.add_place("b");

  Toggle() {
    model.add_timed_activity("fwd", has_tokens(a), constant_rate(2.0),
                             sequence({add_mark(a, -1), add_mark(b, 1)}));
    model.add_timed_activity("bwd", has_tokens(b), constant_rate(3.0),
                             sequence({add_mark(b, -1), add_mark(a, 1)}));
  }
};

TEST(SanDiagnoseLegacy, CleanIrreducibleChain) {
  Toggle toggle;
  const GeneratedChain chain = generate_state_space(toggle.model);
  const ModelDiagnostics diagnostics = diagnose(chain);
  EXPECT_TRUE(diagnostics.dead_timed_activities.empty());
  EXPECT_TRUE(diagnostics.absorbing_states.empty());
  EXPECT_TRUE(diagnostics.irreducible);
  EXPECT_EQ(diagnostics.recurrent_class_count, 1u);

  const std::string summary = diagnostics.summary();
  EXPECT_NE(summary.find("chain is irreducible"), std::string::npos);
  EXPECT_NE(summary.find("1 recurrent class(es)"), std::string::npos);
  EXPECT_EQ(summary.find("dead timed activities:"), std::string::npos);
  EXPECT_EQ(summary.find("absorbing state(s)"), std::string::npos);
}

TEST(SanDiagnoseLegacy, DeadTimedActivityIsNamed) {
  Toggle toggle;
  toggle.model.add_timed_activity("never", mark_eq(toggle.a, 5), constant_rate(1.0),
                                  add_mark(toggle.a, 0));
  const GeneratedChain chain = generate_state_space(toggle.model);
  const ModelDiagnostics diagnostics = diagnose(chain);
  ASSERT_EQ(diagnostics.dead_timed_activities.size(), 1u);
  EXPECT_EQ(diagnostics.dead_timed_activities[0], "never");
  EXPECT_NE(diagnostics.summary().find("dead timed activities: never"), std::string::npos);
}

TEST(SanDiagnoseLegacy, AbsorbingFailureState) {
  SanModel model("fail");
  const PlaceRef up = model.add_place("up", 1);
  const PlaceRef down = model.add_place("down");
  model.add_timed_activity("crash", has_tokens(up), constant_rate(1.0),
                           sequence({add_mark(up, -1), add_mark(down, 1)}));
  const GeneratedChain chain = generate_state_space(model);
  const ModelDiagnostics diagnostics = diagnose(chain);
  ASSERT_EQ(diagnostics.absorbing_states.size(), 1u);
  EXPECT_FALSE(diagnostics.irreducible);
  EXPECT_EQ(diagnostics.recurrent_class_count, 1u);

  const std::string summary = diagnostics.summary();
  EXPECT_NE(summary.find("1 absorbing state(s)"), std::string::npos);
  EXPECT_NE(summary.find("chain is NOT irreducible"), std::string::npos);
}

TEST(SanDiagnoseLegacy, MultipleRecurrentClasses) {
  // Two competing absorbing fates: two bottom components.
  SanModel model("fates");
  const PlaceRef up = model.add_place("up", 1);
  const PlaceRef good = model.add_place("good");
  const PlaceRef bad = model.add_place("bad");
  model.add_timed_activity("detect", has_tokens(up), constant_rate(1.0),
                           sequence({add_mark(up, -1), add_mark(good, 1)}));
  model.add_timed_activity("fail", has_tokens(up), constant_rate(2.0),
                           sequence({add_mark(up, -1), add_mark(bad, 1)}));
  const GeneratedChain chain = generate_state_space(model);
  const ModelDiagnostics diagnostics = diagnose(chain);
  EXPECT_EQ(diagnostics.absorbing_states.size(), 2u);
  EXPECT_FALSE(diagnostics.irreducible);
  EXPECT_EQ(diagnostics.recurrent_class_count, 2u);
  EXPECT_NE(diagnostics.summary().find("2 recurrent class(es)"), std::string::npos);
}

TEST(SanSccLegacy, ComponentsInReverseTopologicalOrder) {
  // 0 -> 1 (absorbing): two components; Tarjan assigns the bottom one id 0.
  const markov::Ctmc chain(2, {{0, 1, 1.0, -1}}, {1.0, 0.0});
  size_t count = 0;
  const std::vector<size_t> component = strongly_connected_components(chain, &count);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(component[1], 0u);
  EXPECT_EQ(component[0], 1u);
}

TEST(SanSccLegacy, IrreducibleChainIsOneComponent) {
  Toggle toggle;
  const GeneratedChain chain = generate_state_space(toggle.model);
  size_t count = 0;
  const std::vector<size_t> component = strongly_connected_components(chain.ctmc(), &count);
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(component[0], component[1]);
}

}  // namespace
}  // namespace gop::san
