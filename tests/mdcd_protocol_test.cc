// Tests for the event-level MDCD protocol simulator, including statistical
// agreement with the SAN reward models that abstract it.

#include <gtest/gtest.h>

#include <cmath>

#include "core/performability.hh"
#include "mdcd/protocol.hh"
#include "sim/stats.hh"
#include "util/error.hh"

namespace gop::mdcd {
namespace {

core::GsuParameters fast_params() {
  // Mission-compressed Table 3: same dimensionless ratios, cheap runs.
  return core::GsuParameters::scaled_mission(100.0);
}

TEST(Protocol, DeterministicGivenSeed) {
  const core::GsuParameters params = fast_params();
  ProtocolOptions options;
  options.horizon = params.theta;
  sim::Rng a(7), b(7);
  const RunStats ra = run_guarded_operation(params, a, options);
  const RunStats rb = run_guarded_operation(params, b, options);
  EXPECT_EQ(ra.detected, rb.detected);
  EXPECT_EQ(ra.failed, rb.failed);
  EXPECT_DOUBLE_EQ(ra.busy_time[2], rb.busy_time[2]);
  EXPECT_EQ(ra.messages_sent, rb.messages_sent);
}

TEST(Protocol, VerdictClassesArePartition) {
  const core::GsuParameters params = fast_params();
  ProtocolOptions options;
  options.horizon = params.theta;
  sim::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const RunStats stats = run_guarded_operation(params, rng, options);
    const int classes = (stats.in_a1() ? 1 : 0) + (stats.in_a3() ? 1 : 0) +
                        (stats.in_a4() ? 1 : 0) +
                        ((stats.detected && stats.failed) ? 1 : 0);
    EXPECT_EQ(classes, 1);
    EXPECT_GT(stats.observed_time, 0.0);
    EXPECT_LE(stats.observed_time, options.horizon);
  }
}

TEST(Protocol, FullCoverageLeavesOnlyTheScenario2Race) {
  // With c = 1 and mu_old -> 0, almost every erroneous external message is
  // validated and caught. The residual undetected-failure path is exactly
  // the paper's §5.1 "scenario 2": a message sent *before* contamination
  // passes its AT and wrongly re-establishes confidence in the (by then
  // contaminated) process, whose next unvalidated external fails the
  // system. The event-level protocol exhibits it naturally because message
  // content is fixed at send time — the SAN abstraction folds this residue
  // into the coverage parameter. It needs a fault landing inside a ~1/alpha
  // validation window plus a lost race against re-dirtying, so its rate is ~0.1%.
  core::GsuParameters params = fast_params();
  params.coverage = 1.0;
  params.mu_old = 1e-12;
  ProtocolOptions options;
  options.horizon = params.theta;
  sim::Rng rng(11);
  size_t a4 = 0;
  const int runs = 300;
  for (int i = 0; i < runs; ++i) {
    a4 += run_guarded_operation(params, rng, options).in_a4() ? 1 : 0;
  }
  EXPECT_LE(a4, static_cast<size_t>(0.05 * runs));  // rare (~0.1% expected)...
  // ... and the dominant verdict is detection, as full coverage promises.
}

TEST(Protocol, ZeroCoverageNeverDetects) {
  core::GsuParameters params = fast_params();
  params.coverage = 0.0;
  ProtocolOptions options;
  options.horizon = params.theta;
  sim::Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(run_guarded_operation(params, rng, options).detected);
  }
}

TEST(Protocol, AllExternalMessagesMeansNoCheckpoints) {
  core::GsuParameters params = fast_params();
  params.p_ext = 1.0;  // no internal messages -> no dirty receivers -> no ckpts
  ProtocolOptions options;
  options.horizon = params.theta / 10.0;
  sim::Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(run_guarded_operation(params, rng, options).checkpoint_count, 0u);
  }
}

TEST(Protocol, MessageThroughputMatchesLambda) {
  // Two mission processes at rate lambda with ~5% busy time each.
  const core::GsuParameters params = fast_params();
  ProtocolOptions options;
  options.horizon = 10.0;
  sim::Rng rng(19);
  sim::OnlineStats throughput;
  for (int i = 0; i < 50; ++i) {
    const RunStats stats = run_guarded_operation(params, rng, options);
    if (stats.in_a1()) {
      throughput.add(static_cast<double>(stats.messages_sent) / options.horizon);
    }
  }
  EXPECT_NEAR(throughput.mean(), 2.0 * params.lambda, 0.08 * 2.0 * params.lambda);
}

TEST(Protocol, EmpiricalOverheadsMatchRmGp) {
  // The protocol's emergent busy fractions vs the RMGp steady-state
  // solution: the SAN couples the processes slightly differently (it blocks
  // the sender during the receiver's checkpoint), so agree within ~20%
  // relative on the overheads.
  const core::GsuParameters params = fast_params();
  const core::PerformabilityAnalyzer analyzer(params);

  ProtocolOptions options;
  options.horizon = 30.0;  // long enough for the overheads to average out
  sim::Rng rng(23);
  sim::OnlineStats overhead1, overhead2;
  for (int i = 0; i < 60; ++i) {
    const RunStats stats = run_guarded_operation(params, rng, options);
    if (!stats.in_a1()) continue;  // want pure G-OP windows
    overhead1.add(1.0 - stats.rho(ProcessId::kP1New));
    overhead2.add(1.0 - stats.rho(ProcessId::kP2));
  }
  ASSERT_GT(overhead1.count(), 10u);
  const double rmgp1 = 1.0 - analyzer.rho1();
  const double rmgp2 = 1.0 - analyzer.rho2();
  EXPECT_NEAR(overhead1.mean(), rmgp1, 0.2 * rmgp1);
  EXPECT_NEAR(overhead2.mean(), rmgp2, 0.2 * rmgp2);
}

TEST(Protocol, DetectionShareMatchesCoverage) {
  // Among resolved upgrades (detected or failed before the horizon), the
  // detected share approximates c when erroneous messages dominate verdicts.
  core::GsuParameters params = fast_params();
  params.mu_new *= 10.0;  // plenty of verdicts per run
  ProtocolOptions options;
  options.horizon = params.theta;
  sim::Rng rng(29);
  size_t detected = 0, resolved = 0;
  for (int i = 0; i < 600; ++i) {
    const RunStats stats = run_guarded_operation(params, rng, options);
    if (stats.detected || stats.in_a4()) {
      ++resolved;
      detected += stats.detected ? 1 : 0;
    }
  }
  ASSERT_GT(resolved, 400u);
  EXPECT_NEAR(static_cast<double>(detected) / static_cast<double>(resolved), params.coverage,
              0.05);
}

TEST(Protocol, VerdictProbabilitiesMatchRmGd) {
  // The headline validation: the protocol's empirical verdict-class
  // probabilities at phi must match RMGd's instant-of-time rewards.
  const core::GsuParameters params = fast_params();
  const core::PerformabilityAnalyzer analyzer(params);
  const double phi = 0.6 * params.theta;
  const core::ConstituentMeasures m = analyzer.constituents(phi);

  ProtocolOptions options;
  options.horizon = phi;
  sim::Rng rng(31);
  const size_t runs = 800;
  size_t a1 = 0, a3 = 0;
  for (size_t i = 0; i < runs; ++i) {
    const RunStats stats = run_guarded_operation(params, rng, options);
    a1 += stats.in_a1() ? 1 : 0;
    a3 += stats.in_a3() ? 1 : 0;
  }
  const double n = static_cast<double>(runs);
  const double se_a1 = std::sqrt(m.p_a1_phi * (1.0 - m.p_a1_phi) / n);
  const double se_a3 = std::sqrt(m.i_h * (1.0 - m.i_h) / n);
  EXPECT_NEAR(static_cast<double>(a1) / n, m.p_a1_phi, 4.0 * se_a1 + 0.01);
  EXPECT_NEAR(static_cast<double>(a3) / n, m.i_h, 4.0 * se_a3 + 0.01);
}

TEST(Protocol, StopAtVerdictOption) {
  core::GsuParameters params = fast_params();
  params.mu_new *= 10.0;
  ProtocolOptions options;
  options.horizon = params.theta;
  options.continue_after_recovery = false;
  sim::Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    const RunStats stats = run_guarded_operation(params, rng, options);
    // With the early stop, a detected run can never also fail.
    EXPECT_FALSE(stats.detected && stats.failed);
  }
}

TEST(Protocol, Validation) {
  sim::Rng rng(1);
  ProtocolOptions bad;
  bad.horizon = 0.0;
  EXPECT_THROW(run_guarded_operation(fast_params(), rng, bad), InvalidArgument);
}

}  // namespace
}  // namespace gop::mdcd
