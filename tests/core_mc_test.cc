// Tests for the Monte Carlo validator of the untranslated formulation, and
// its agreement with the translated reward-model solution.
//
// The comparisons run on GsuParameters::scaled_mission(): Table 3 with theta
// compressed and the fault rates scaled up so every dimensionless quantity
// the analysis depends on is preserved, but a simulated mission path costs
// ~100x fewer events (see params.hh). Structural sample tests use Table 3
// itself with phi = 0 paths, which are cheap.

#include <gtest/gtest.h>

#include "core/mc_validator.hh"
#include "core/performability.hh"
#include "util/error.hh"

namespace gop::core {
namespace {

GsuParameters scaled() { return GsuParameters::scaled_mission(100.0); }

McOptions quick_options(size_t replications) {
  McOptions options;
  options.replications.min_replications = replications;
  options.replications.max_replications = replications;
  return options;
}

TEST(McValidator, W0SamplesAreBinaryWorth) {
  const GsuParameters params = scaled();
  const McValidator validator(params);
  sim::Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    const double w = validator.sample_w0(rng);
    EXPECT_TRUE(w == 0.0 || w == 2.0 * params.theta) << w;
  }
}

TEST(McValidator, W0MeanMatchesSurvivalProbability) {
  const GsuParameters params = scaled();
  const PerformabilityAnalyzer analyzer(params);
  const double expected = 2.0 * params.theta * analyzer.constituents(0.0).p_nd_theta;

  const McValidator validator(params, quick_options(4000));
  const McPerformability estimate =
      validator.estimate(0.0, analyzer.rho1(), analyzer.rho2(), 1.0);
  EXPECT_NEAR(estimate.e_w0.mean, expected, 3.0 * estimate.e_w0.half_width);
}

TEST(McValidator, ScaledMissionPreservesTheAnalysis) {
  // The point of scaled_mission(): the translated solution is (nearly)
  // invariant under the compression, so validating there validates here.
  const PerformabilityAnalyzer full(GsuParameters::table3());
  const PerformabilityAnalyzer compressed(scaled());
  EXPECT_NEAR(full.rho1(), compressed.rho1(), 1e-12);
  EXPECT_NEAR(full.rho2(), compressed.rho2(), 1e-12);
  // Y at corresponding phi (same fraction of theta): equal up to the
  // time-scale-separation residue.
  const double y_full = full.evaluate(0.7 * full.parameters().theta).y;
  const double y_compressed = compressed.evaluate(0.7 * compressed.parameters().theta).y;
  EXPECT_NEAR(y_full, y_compressed, 0.01 * y_full);
}

TEST(McValidator, WphiSamplesAreBounded) {
  const GsuParameters params = scaled();
  const McValidator validator(params);
  sim::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const double w = validator.sample_wphi(rng, 0.5 * params.theta, 1.9, 0.6);
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 2.0 * params.theta + 1e-9);
  }
}

TEST(McValidator, AgreesWithTranslatedSolutionAtModeratePhi) {
  const GsuParameters params = scaled();
  const PerformabilityAnalyzer analyzer(params);
  const McValidator validator(params, quick_options(6000));

  const double phi = 0.5 * params.theta;
  const PerformabilityResult translated = analyzer.evaluate(phi);
  const McPerformability mc =
      validator.estimate(phi, analyzer.rho1(), analyzer.rho2(), translated.gamma);

  // The translation carries deliberate approximations, so compare loosely:
  // Y within a few percent and E[Wphi] within combined tolerance.
  EXPECT_NEAR(mc.y, translated.y, 0.08 * translated.y);
  EXPECT_NEAR(mc.e_wphi.mean, translated.e_wphi,
              4.0 * mc.e_wphi.half_width + 0.02 * translated.e_wphi);
}

TEST(McValidator, YIntervalBracketsEstimate) {
  const GsuParameters params = scaled();
  const PerformabilityAnalyzer analyzer(params);
  const McValidator validator(params, quick_options(2000));
  const McPerformability mc =
      validator.estimate(0.4 * params.theta, analyzer.rho1(), analyzer.rho2(), 0.7);
  EXPECT_LE(mc.y_low, mc.y);
  EXPECT_GE(mc.y_high, mc.y);
}

TEST(McValidator, PerPathGammaDiffersFromScalar) {
  const GsuParameters params = scaled();
  const PerformabilityAnalyzer analyzer(params);
  const double phi = 0.7 * params.theta;
  const PerformabilityResult r = analyzer.evaluate(phi);

  McOptions scalar = quick_options(4000);
  McOptions per_path = quick_options(4000);
  per_path.per_path_gamma = true;
  const McValidator scalar_validator(params, scalar);
  const McValidator per_path_validator(params, per_path);

  const McPerformability a =
      scalar_validator.estimate(phi, analyzer.rho1(), analyzer.rho2(), r.gamma);
  const McPerformability b =
      per_path_validator.estimate(phi, analyzer.rho1(), analyzer.rho2(), r.gamma);
  // Same seeds, different discounting: estimates must differ.
  EXPECT_NE(a.e_wphi.mean, b.e_wphi.mean);
}

TEST(McValidator, DeterministicGivenSeeds) {
  const GsuParameters params = scaled();
  const McValidator a(params, quick_options(500));
  const McValidator b(params, quick_options(500));
  const McPerformability ra = a.estimate(0.3 * params.theta, 0.98, 0.95, 0.8);
  const McPerformability rb = b.estimate(0.3 * params.theta, 0.98, 0.95, 0.8);
  EXPECT_DOUBLE_EQ(ra.e_wphi.mean, rb.e_wphi.mean);
  EXPECT_DOUBLE_EQ(ra.y, rb.y);
}

TEST(McValidator, PhiOutOfRangeThrows) {
  const McValidator validator(scaled());
  sim::Rng rng(1);
  EXPECT_THROW(validator.sample_wphi(rng, -1.0, 1.9, 0.5), InvalidArgument);
  EXPECT_THROW(validator.sample_wphi(rng, 1e9, 1.9, 0.5), InvalidArgument);
}

TEST(McValidator, ScaledCompressionValidation) {
  EXPECT_THROW(GsuParameters::scaled_mission(0.5), InvalidArgument);
  EXPECT_NO_THROW(GsuParameters::scaled_mission(1.0));
}

}  // namespace
}  // namespace gop::core
