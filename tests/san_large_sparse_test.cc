// End-to-end sparse-engine coverage on a large random SAN (ctest label
// `large`): a ~2.6e5-state chain — far beyond the dense cutoffs — is solved
// for transient and accumulated measures through the recovery-checked
// dispatchers and cross-checked Krylov vs uniformization to 1e-8, with the
// provenance certificate naming the sparse engine that ran. A counting
// global operator new (the markov_expm_workspace_test pattern) proves no
// dense n x n generator is ever materialized along the way: at n = 262144 a
// dense Q would be a single ~550 GiB allocation, and the guard in
// Ctmc::generator_dense() refuses it outright.

#include <gtest/gtest.h>

#include <atomic>

#if defined(__GNUC__) && !defined(__clang__)
// The replaced operator new below is malloc-backed, so the replaced operator
// delete frees with std::free — correct at runtime, but GCC's
// -Wmismatched-new-delete heuristic flags every inlined new/delete pair in
// this TU once it sees the malloc feeding a free.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include "markov/krylov.hh"
#include "markov/recovery.hh"
#include "markov/session.hh"
#include "markov/solver_plan.hh"
#include "obs/obs.hh"
#include "san/random_model.hh"
#include "san/state_space.hh"
#include "util/error.hh"

namespace {

// Largest single heap allocation observed while armed. The sparse pipeline's
// biggest blocks are the CSR arrays and per-vector workspaces (a few tens of
// MiB at this size); a dense generator would be three orders of magnitude
// larger, so a generous 512 MiB ceiling separates the two regimes cleanly.
std::atomic<bool> g_counting{false};
std::atomic<uint64_t> g_max_allocation{0};

void note_allocation(std::size_t size) {
  if (!g_counting.load(std::memory_order_relaxed)) return;
  uint64_t current = g_max_allocation.load(std::memory_order_relaxed);
  while (size > current &&
         !g_max_allocation.compare_exchange_weak(current, size, std::memory_order_relaxed)) {
  }
}

}  // namespace

void* operator new(std::size_t size) {
  note_allocation(size);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  note_allocation(size);
  void* p = nullptr;
  const std::size_t alignment = std::max(sizeof(void*), static_cast<std::size_t>(align));
  if (posix_memalign(&p, alignment, size ? size : 1) != 0) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace gop {
namespace {

constexpr uint64_t kMaxSingleAllocation = 512ull * 1024 * 1024;
constexpr double kCrossCheckTolerance = 1e-8;
constexpr double kHorizon = 1.0;  // Lambda*t ~ 47 on this chain: sparse but tractable

/// RAII arm/disarm for the allocation high-water mark.
class AllocationGuard {
 public:
  AllocationGuard() {
    g_max_allocation.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationGuard() { g_counting.store(false, std::memory_order_relaxed); }
  uint64_t max_allocation() const { return g_max_allocation.load(std::memory_order_relaxed); }
};

/// One shared chain for the whole binary: 10 places at capacity 3 reach
/// 262144 tangible states (seeded, fully deterministic), two orders of
/// magnitude past auto_dense_max_states.
class LargeSparseSanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    san::RandomModelOptions options;
    options.min_places = options.max_places = 10;
    options.min_activities = options.max_activities = 20;
    options.max_cases = 2;
    options.place_capacity = 3;
    const san::SanModel model = san::random_san(1, options);
    chain_ = new san::GeneratedChain(san::generate_state_space(model));
  }
  static void TearDownTestSuite() {
    delete chain_;
    chain_ = nullptr;
  }

  static const markov::Ctmc& ctmc() { return chain_->ctmc(); }

  static san::GeneratedChain* chain_;
};

san::GeneratedChain* LargeSparseSanTest::chain_ = nullptr;

TEST_F(LargeSparseSanTest, PlanResolvesSparseEnginesAndDenseGuardRefuses) {
  ASSERT_GE(ctmc().state_count(), 100'000u);

  const markov::SolverPlan transient = markov::plan_transient(ctmc(), kHorizon);
  EXPECT_EQ(transient.transient, markov::TransientMethod::kUniformization);
  EXPECT_EQ(transient.storage, markov::StorageForm::kSparse);

  const markov::SolverPlan accumulated = markov::plan_accumulated(ctmc(), kHorizon);
  EXPECT_EQ(accumulated.accumulated, markov::AccumulatedMethod::kUniformization);
  EXPECT_EQ(accumulated.storage, markov::StorageForm::kSparse);

  // The dense generator at this size would be a single ~550 GiB block; the
  // guard must refuse with a ladder-absorbable error, not OOM the process.
  EXPECT_GT(ctmc().state_count(), markov::Ctmc::kDenseGeneratorStateLimit);
  EXPECT_THROW((void)ctmc().generator_dense(), NumericalError);
}

TEST_F(LargeSparseSanTest, TransientSolvesSparselyWithKrylovCrossCheck) {
  AllocationGuard guard;
  const markov::TransientResult checked =
      markov::transient_distribution_checked(ctmc(), kHorizon);
  EXPECT_EQ(checked.certificate.engine, "uniformization");
  EXPECT_EQ(checked.certificate.requested_engine, "uniformization");
  EXPECT_FALSE(checked.certificate.degraded);

  const std::vector<double> krylov = markov::krylov_transient_distribution(ctmc(), kHorizon);
  EXPECT_LE(guard.max_allocation(), kMaxSingleAllocation)
      << "a solve materialized a near-dense block on the sparse path";

  ASSERT_EQ(krylov.size(), checked.distribution.size());
  double max_diff = 0.0;
  double mass = 0.0;
  for (size_t s = 0; s < krylov.size(); ++s) {
    max_diff = std::max(max_diff, std::abs(krylov[s] - checked.distribution[s]));
    mass += krylov[s];
  }
  EXPECT_LE(max_diff, kCrossCheckTolerance)
      << "Krylov and uniformization disagree on the large chain";
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST_F(LargeSparseSanTest, AccumulatedSolvesSparselyWithKrylovCrossCheck) {
  AllocationGuard guard;
  const markov::AccumulatedResult checked =
      markov::accumulated_occupancy_checked(ctmc(), kHorizon);
  EXPECT_EQ(checked.certificate.engine, "uniformization");
  EXPECT_FALSE(checked.certificate.degraded);

  const std::vector<double> krylov = markov::krylov_accumulated_occupancy(ctmc(), kHorizon);
  EXPECT_LE(guard.max_allocation(), kMaxSingleAllocation)
      << "a solve materialized a near-dense block on the sparse path";

  ASSERT_EQ(krylov.size(), checked.occupancy.size());
  double max_diff = 0.0;
  double mass = 0.0;
  for (size_t s = 0; s < krylov.size(); ++s) {
    max_diff = std::max(max_diff, std::abs(krylov[s] - checked.occupancy[s]));
    mass += krylov[s];
  }
  EXPECT_LE(max_diff, kCrossCheckTolerance * std::max(1.0, kHorizon));
  EXPECT_NEAR(mass, kHorizon, 1e-9 * std::max(1.0, kHorizon));
}

TEST_F(LargeSparseSanTest, SessionServesGridThroughTheSparsePlan) {
  obs::set_enabled(true);
  obs::reset();

  AllocationGuard guard;
  const markov::TransientSession session(ctmc(), {kHorizon / 2.0, kHorizon});
  EXPECT_LE(guard.max_allocation(), kMaxSingleAllocation);

  EXPECT_EQ(session.plan().storage, markov::StorageForm::kSparse);
  EXPECT_EQ(session.plan().transient, markov::TransientMethod::kUniformization);
  EXPECT_EQ(session.plan().states, ctmc().state_count());

  // Session events carry the plan's storage form — the trace-level proof the
  // grid was served sparsely.
  bool saw_sparse_session_event = false;
  for (const obs::SolverEvent& event : obs::snapshot().events) {
    if (event.kind == obs::SolverEventKind::kTransientSession && event.storage == "sparse") {
      saw_sparse_session_event = true;
    }
  }
  EXPECT_TRUE(saw_sparse_session_event);
  obs::set_enabled(false);
  obs::reset();

  // Determinism contract holds at this scale too: the session is bit-identical
  // to the pointwise solver at every grid point.
  const std::vector<double> pointwise = markov::transient_distribution(ctmc(), kHorizon);
  ASSERT_EQ(session.distribution_at(1).size(), pointwise.size());
  EXPECT_EQ(session.distribution_at(1), pointwise);
}

}  // namespace
}  // namespace gop
