// Golden-file regression tests for the paper's headline numbers: the Table 1
// constituent measures, the Table 2 overhead measures, the Table 3 baseline
// Y(phi) sweep, and the Figure 9–12 parameter studies. Each scenario computes
// its values through the public analyzer API and compares them against JSON
// files under tests/golden/ (compile definition GOP_GOLDEN_DIR) with a small
// relative tolerance, so an accidental change anywhere in the translation
// pipeline — SAN generation, state-space reachability, any solver engine, the
// constituent assembly — shows up as a failed golden.
//
// Regenerating after an *intentional* numeric change:
//
//   ./tests/golden_regression_test --update-golden
//
// rewrites every golden file in the source tree from the current build (the
// flag is consumed before gtest sees argv); re-run without the flag to
// confirm, and review the diff like any other code change.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/performability.hh"
#include "core/sweep.hh"
#include "san/template.hh"
#include "util/strings.hh"

namespace gop {
namespace {

bool g_update_golden = false;

constexpr double kRelTolerance = 1e-7;
constexpr double kAbsTolerance = 1e-12;

using GoldenMap = std::map<std::string, double>;

std::string golden_path(const std::string& name) {
  return std::string(GOP_GOLDEN_DIR) + "/" + name + ".json";
}

void write_golden(const std::string& name, const GoldenMap& values) {
  std::ofstream out(golden_path(name));
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path(name);
  out << "{\n";
  size_t i = 0;
  for (const auto& [key, value] : values) {
    out << "  \"" << key << "\": " << str_format("%.17g", value);
    out << (++i == values.size() ? "\n" : ",\n");
  }
  out << "}\n";
}

/// Minimal reader for the flat {"key": number} documents this test writes:
/// keys contain no escapes, values are plain JSON numbers.
GoldenMap read_golden(const std::string& name) {
  std::ifstream in(golden_path(name));
  EXPECT_TRUE(in.good()) << "missing golden file " << golden_path(name)
                         << " — run with --update-golden to create it";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  GoldenMap values;
  size_t pos = 0;
  while (true) {
    const size_t key_start = text.find('"', pos);
    if (key_start == std::string::npos) break;
    const size_t key_end = text.find('"', key_start + 1);
    if (key_end == std::string::npos) break;
    const std::string key = text.substr(key_start + 1, key_end - key_start - 1);
    const size_t colon = text.find(':', key_end);
    if (colon == std::string::npos) break;
    char* end = nullptr;
    const double value = std::strtod(text.c_str() + colon + 1, &end);
    values[key] = value;
    pos = static_cast<size_t>(end - text.c_str());
  }
  return values;
}

/// Update mode: rewrite the golden. Check mode: identical key sets, each
/// value within rel/abs tolerance.
void check_or_update(const std::string& name, const GoldenMap& computed) {
  if (g_update_golden) {
    write_golden(name, computed);
    std::printf("[golden] wrote %s (%zu values)\n", golden_path(name).c_str(), computed.size());
    return;
  }
  const GoldenMap expected = read_golden(name);
  for (const auto& [key, value] : expected) {
    ASSERT_TRUE(computed.contains(key)) << name << ": computed set lost key '" << key << "'";
    const double got = computed.at(key);
    const double tolerance = kAbsTolerance + kRelTolerance * std::abs(value);
    EXPECT_NEAR(got, value, tolerance) << name << " / " << key;
  }
  for (const auto& [key, value] : computed) {
    (void)value;
    EXPECT_TRUE(expected.contains(key))
        << name << ": computed new key '" << key << "' absent from golden (run --update-golden)";
  }
}

/// "phi_03000" — fixed width so the map (and the JSON) sorts numerically.
std::string phi_key(double phi) { return str_format("phi_%05.0f", phi); }

void add_sweep(GoldenMap& golden, const std::string& prefix,
               const core::PerformabilityAnalyzer& analyzer, const std::vector<double>& phis) {
  for (const core::PerformabilityResult& r : core::sweep_phi(analyzer, phis)) {
    golden[prefix + phi_key(r.phi) + "/y"] = r.y;
  }
}

TEST(GoldenRegression, Table1Constituents) {
  const core::GsuParameters params = core::GsuParameters::table3();
  const core::PerformabilityAnalyzer analyzer(params);
  GoldenMap golden;
  for (double phi : core::linspace(0.0, params.theta, 11)) {
    const core::ConstituentMeasures m = analyzer.constituents(phi);
    const std::string k = phi_key(phi) + "/";
    golden[k + "p_a1"] = m.p_a1_phi;
    golden[k + "i_h"] = m.i_h;
    golden[k + "i_tau_h"] = m.i_tau_h;
    golden[k + "i_tau_h_literal"] = m.i_tau_h_literal;
    golden[k + "i_hf"] = m.i_hf;
    golden[k + "p_nd_rest"] = m.p_nd_rest;
    golden[k + "i_f"] = m.i_f;
  }
  check_or_update("table1_constituents", golden);
}

TEST(GoldenRegression, Table2Overhead) {
  GoldenMap golden;
  // 6000 is the Table 3 baseline; 2500 is the paper's degraded-overhead arm.
  for (double rate : {6000.0, 2500.0}) {
    core::GsuParameters params = core::GsuParameters::table3();
    params.alpha = rate;
    params.beta = rate;
    const core::PerformabilityAnalyzer analyzer(params);
    const std::string k = str_format("alpha_beta_%05.0f/", rate);
    golden[k + "rho1"] = analyzer.rho1();
    golden[k + "rho2"] = analyzer.rho2();
  }
  check_or_update("table2_overhead", golden);
}

TEST(GoldenRegression, Table3BaselineSweep) {
  const core::GsuParameters params = core::GsuParameters::table3();
  const core::PerformabilityAnalyzer analyzer(params);
  GoldenMap golden;
  for (const core::PerformabilityResult& r :
       core::sweep_phi(analyzer, core::linspace(0.0, params.theta, 11))) {
    const std::string k = phi_key(r.phi) + "/";
    golden[k + "y"] = r.y;
    golden[k + "e_w0"] = r.e_w0;
    golden[k + "e_wphi"] = r.e_wphi;
    golden[k + "y_s1"] = r.y_s1;
    golden[k + "y_s2"] = r.y_s2;
    golden[k + "gamma"] = r.gamma;
  }
  check_or_update("table3_baseline_sweep", golden);
}

TEST(GoldenRegression, Fig09FaultRate) {
  const std::vector<double> phis = core::linspace(0.0, 10000.0, 11);
  GoldenMap golden;
  for (double mu_new : {1e-4, 0.5e-4}) {
    core::GsuParameters params = core::GsuParameters::table3();
    params.mu_new = mu_new;
    const core::PerformabilityAnalyzer analyzer(params);
    add_sweep(golden, str_format("mu_new_%g/", mu_new), analyzer, phis);
  }
  check_or_update("fig09_fault_rate", golden);
}

TEST(GoldenRegression, Fig10Overhead) {
  const std::vector<double> phis = core::linspace(0.0, 10000.0, 11);
  GoldenMap golden;
  for (double rate : {6000.0, 2500.0}) {
    core::GsuParameters params = core::GsuParameters::table3();
    params.alpha = rate;
    params.beta = rate;
    const core::PerformabilityAnalyzer analyzer(params);
    const std::string prefix = str_format("alpha_beta_%05.0f/", rate);
    golden[prefix + "rho1"] = analyzer.rho1();
    golden[prefix + "rho2"] = analyzer.rho2();
    add_sweep(golden, prefix, analyzer, phis);
  }
  check_or_update("fig10_overhead", golden);
}

TEST(GoldenRegression, Fig11Coverage) {
  const std::vector<double> phis = core::linspace(0.0, 10000.0, 11);
  GoldenMap golden;
  for (double coverage : {0.95, 0.75, 0.50}) {
    core::GsuParameters params = core::GsuParameters::table3();
    params.alpha = 2500.0;
    params.beta = 2500.0;
    params.coverage = coverage;
    const core::PerformabilityAnalyzer analyzer(params);
    add_sweep(golden, str_format("coverage_%.2f/", coverage), analyzer, phis);
  }
  check_or_update("fig11_coverage", golden);
}

TEST(GoldenRegression, StructuralSweepNproc) {
  // The template-registry structural sweep (docs/templates.md): the nproc
  // family over N in {1,2,3} crossed with a 5-point evaluation grid. Pins the
  // per-cell chain structure (state counts) and every reward series value, so
  // a change anywhere in the template layer — parameter resolution, the
  // replicate composition, the session solve — shows up here.
  core::StructuralSweepSpec spec;
  spec.family = "nproc";
  spec.axes.push_back({"n", {san::tpl::ParamValue::of_int(1), san::tpl::ParamValue::of_int(2),
                             san::tpl::ParamValue::of_int(3)}});
  spec.phis = core::linspace(0.0, 20.0, 5);
  const core::StructuralSweepResult result = core::structural_sweep(spec);

  GoldenMap golden;
  for (const core::StructuralCell& cell : result.cells) {
    const std::string k = cell.label + "/";
    golden[k + "states"] = static_cast<double>(cell.states);
    for (size_t r = 0; r < cell.rewards.size(); ++r) {
      for (size_t i = 0; i < result.phis.size(); ++i) {
        golden[k + cell.rewards[r] + "/" + str_format("t_%05.0f", result.phis[i])] =
            cell.series[r][i];
      }
    }
  }
  check_or_update("structural_sweep_nproc", golden);
}

TEST(GoldenRegression, Fig12ShorterTheta) {
  const std::vector<double> phis = core::linspace(0.0, 5000.0, 11);
  GoldenMap golden;
  for (double mu_new : {1e-4, 0.5e-4}) {
    core::GsuParameters params = core::GsuParameters::table3();
    params.theta = 5000.0;
    params.mu_new = mu_new;
    const core::PerformabilityAnalyzer analyzer(params);
    add_sweep(golden, str_format("mu_new_%g/", mu_new), analyzer, phis);
  }
  check_or_update("fig12_shorter_theta", golden);
}

}  // namespace
}  // namespace gop

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--update-golden") {
      gop::g_update_golden = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
