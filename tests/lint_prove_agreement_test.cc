// Property-based agreement tier between the symbolic prover and the
// reachability probe (docs/static-analysis.md): across 200 seeded random SAN
// instances the two analyses must never contradict each other.
//
//  - random_san models are built entirely from IR-carrying combinators with
//    declared capacities, so the prover must fully prove every instance
//    (zero probe budget needed);
//  - the proved marking bounds must contain every marking the generator
//    actually reaches (fixpoint soundness);
//  - a complete probe must agree: no error findings, and any error code the
//    prover refutes on a broken twin must also be found by the probe.
//
// Registered under the `slow` ctest label (ctest -L slow).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "lint/model_lint.hh"
#include "lint/prove.hh"
#include "san/expr.hh"
#include "san/random_model.hh"
#include "san/state_space.hh"

namespace gop::lint {
namespace {

constexpr uint64_t kSeeds = 200;

/// Deterministic per-seed shape variation so the tier exercises different
/// place counts and capacities, not 200 near-identical models.
san::RandomModelOptions options_for(uint64_t seed) {
  san::RandomModelOptions options;
  options.min_places = 2;
  options.max_places = 2 + seed % 4;
  options.max_activities = 3 + seed % 3;
  options.place_capacity = static_cast<int32_t>(1 + seed % 3);
  return options;
}

std::set<std::string> error_codes(const Report& report) {
  std::set<std::string> codes;
  for (const Finding& f : report.findings()) {
    if (f.severity == Severity::kError) codes.insert(f.code);
  }
  return codes;
}

TEST(LintProveAgreement, ProverAndProbeAgreeOnRandomSans) {
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    const san::SanModel model = san::random_san(seed, options_for(seed));

    const ProofResult proof = prove_model(model);
    ASSERT_TRUE(proof.fully_proved)
        << "seed " << seed << ":\n"
        << proof.findings.to_text();

    // Zero probe budget: a fully proved model needs no probing at all — no
    // SAN031, no errors, no warnings (info findings like SAN022 are fine).
    ModelLintOptions unprobed;
    unprobed.max_probe_markings = 0;
    const Report unprobed_report = lint_model(model, unprobed);
    ASSERT_FALSE(unprobed_report.has_errors()) << "seed " << seed << unprobed_report.to_text();
    ASSERT_EQ(unprobed_report.count(Severity::kWarning), 0u)
        << "seed " << seed << unprobed_report.to_text();

    // Complete probe: must agree that the model is clean.
    const Report probed = lint_model(model);
    ASSERT_FALSE(probed.has_code("SAN031")) << "seed " << seed;
    ASSERT_TRUE(error_codes(probed).empty())
        << "seed " << seed << ": prover proved a model the probe rejects:\n"
        << probed.to_text();

    // Fixpoint soundness: the proved box contains every reachable marking.
    const san::GeneratedChain chain = san::generate_state_space(model);
    for (const san::Marking& m : chain.states()) {
      ASSERT_TRUE(proof.bounds.contains(m))
          << "seed " << seed << ": marking " << m.to_string() << " escapes bounds "
          << proof.bounds.to_string(model);
    }
  }
}

/// Broken twins: re-declare one activity of the random instance with a
/// deliberately deficient case-probability sum. The prover must not claim
/// the model proved, and every error code it refutes must also be reported
/// by the (complete) probe — refutations are claims about reachable
/// behaviour, so the two analyses have to agree on them.
TEST(LintProveAgreement, RefutationsAgreeWithTheProbeOnBrokenTwins) {
  for (uint64_t seed = 0; seed < kSeeds; seed += 10) {
    const san::SanModel pristine = san::random_san(seed, options_for(seed));

    san::SanModel broken("broken-twin");
    std::vector<san::PlaceRef> places;
    const san::Marking initial = pristine.initial_marking();
    for (size_t p = 0; p < pristine.place_count(); ++p) {
      places.push_back(broken.add_place(pristine.place_name(san::PlaceRef{p}), initial[p],
                                        *pristine.place_capacity(san::PlaceRef{p})));
    }
    for (size_t t = 0; t < pristine.timed_activities().size(); ++t) {
      const san::TimedActivity& activity = pristine.timed_activities()[t];
      san::TimedActivity copy;
      copy.name = activity.name;
      copy.enabled = activity.enabled;
      copy.rate = activity.rate;
      copy.cases = activity.cases;
      if (t == 0) copy.cases[0].probability = san::constant_prob(0.0);
      broken.add_timed_activity(std::move(copy));
    }

    const ProofResult proof = prove_model(broken);
    EXPECT_NE(proof.count(Verdict::kProved), proof.verdicts.size()) << "seed " << seed;
    EXPECT_FALSE(proof.fully_proved) << "seed " << seed;

    const Report probed = lint_model(broken);
    ASSERT_FALSE(probed.has_code("SAN031")) << "seed " << seed;
    for (const std::string& code : error_codes(proof.findings)) {
      EXPECT_TRUE(probed.has_code(code))
          << "seed " << seed << ": prover refuted " << code
          << " but the complete probe disagrees:\n"
          << probed.to_text();
    }
  }
}

}  // namespace
}  // namespace gop::lint
