// Tests for the transient solvers: dense matrix exponential, uniformization,
// and the dispatching front door — validated against closed-form chains and
// against each other.

#include <gtest/gtest.h>

#include <cmath>

#include "markov/matrix_exp.hh"
#include "markov/transient.hh"
#include "markov/uniformization.hh"
#include "util/error.hh"

namespace gop::markov {
namespace {

using linalg::DenseMatrix;

/// 0 --a--> 1 --b--> 0, start in 0.
Ctmc two_state(double a, double b) {
  return Ctmc(2, {{0, 1, a, 0}, {1, 0, b, 1}}, {1.0, 0.0});
}

/// 0 --a--> 1 (absorbing), start in 0: P(still in 0 at t) = exp(-a t).
Ctmc pure_death(double a) { return Ctmc(2, {{0, 1, a, 0}}, {1.0, 0.0}); }

/// Closed form for the two-state chain: P(state 0 at t).
double two_state_p0(double a, double b, double t) {
  return b / (a + b) + a / (a + b) * std::exp(-(a + b) * t);
}

// --- matrix exponential -------------------------------------------------------

TEST(MatrixExp, ZeroMatrixGivesIdentity) {
  const DenseMatrix e = matrix_exponential(DenseMatrix(3, 3, 0.0));
  for (size_t r = 0; r < 3; ++r)
    for (size_t c = 0; c < 3; ++c) EXPECT_NEAR(e(r, c), r == c ? 1.0 : 0.0, 1e-15);
}

TEST(MatrixExp, DiagonalMatrix) {
  DenseMatrix a(2, 2, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = -2.0;
  const DenseMatrix e = matrix_exponential(a);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-13);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-13);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-15);
}

TEST(MatrixExp, NilpotentMatrix) {
  // A = [[0,1],[0,0]]: exp(A) = I + A exactly.
  const DenseMatrix a = DenseMatrix::from_rows({{0, 1}, {0, 0}});
  const DenseMatrix e = matrix_exponential(a);
  EXPECT_NEAR(e(0, 0), 1.0, 1e-15);
  EXPECT_NEAR(e(0, 1), 1.0, 1e-15);
  EXPECT_NEAR(e(1, 1), 1.0, 1e-15);
}

TEST(MatrixExp, RotationBlock) {
  // A = [[0,-w],[w,0]]: exp(A) is a rotation by w.
  const double w = 2.0;
  const DenseMatrix a = DenseMatrix::from_rows({{0, -w}, {w, 0}});
  const DenseMatrix e = matrix_exponential(a);
  EXPECT_NEAR(e(0, 0), std::cos(w), 1e-13);
  EXPECT_NEAR(e(0, 1), -std::sin(w), 1e-13);
}

TEST(MatrixExp, SemigroupProperty) {
  const DenseMatrix a = DenseMatrix::from_rows({{-2, 2}, {3, -3}});
  const DenseMatrix e1 = matrix_exponential(a, 0.7);
  const DenseMatrix e2 = matrix_exponential(a, 0.3);
  const DenseMatrix whole = matrix_exponential(a, 1.0);
  const DenseMatrix composed = e1 * e2;
  for (size_t r = 0; r < 2; ++r)
    for (size_t c = 0; c < 2; ++c) EXPECT_NEAR(composed(r, c), whole(r, c), 1e-13);
}

TEST(MatrixExp, GeneratorExponentialIsStochastic) {
  // Rows of exp(Q t) sum to 1 and are non-negative — even for a stiff Q with
  // a large scaling-and-squaring depth.
  const DenseMatrix q = DenseMatrix::from_rows(
      {{-1e4, 1e4, 0}, {1e-3, -2e-3, 1e-3}, {0, 5.0, -5.0}});
  const DenseMatrix e = matrix_exponential(q, 100.0);
  for (size_t r = 0; r < 3; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_GE(e(r, c), -1e-12);
      sum += e(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-10);
  }
}

TEST(MatrixExp, NonSquareThrows) {
  EXPECT_THROW(matrix_exponential(DenseMatrix(2, 3)), InvalidArgument);
}

// --- uniformization -----------------------------------------------------------

TEST(Uniformization, MatchesClosedFormTwoState) {
  const double a = 2.0, b = 5.0;
  const Ctmc chain = two_state(a, b);
  for (double t : {0.1, 0.5, 1.0, 3.0}) {
    const std::vector<double> pi = uniformized_transient_distribution(chain, t);
    EXPECT_NEAR(pi[0], two_state_p0(a, b, t), 1e-11) << "t=" << t;
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
  }
}

TEST(Uniformization, PureDeathExponentialSurvival) {
  const Ctmc chain = pure_death(0.7);
  const std::vector<double> pi = uniformized_transient_distribution(chain, 2.0);
  EXPECT_NEAR(pi[0], std::exp(-1.4), 1e-11);
}

TEST(Uniformization, TimeZeroReturnsInitial) {
  const Ctmc chain = two_state(1.0, 1.0);
  const std::vector<double> pi = uniformized_transient_distribution(chain, 0.0);
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
}

TEST(Uniformization, SteadyStateDetectionShortCircuitsLongHorizons) {
  // t chosen so Lambda t ~ 7e4 Poisson terms but the chain mixes in ~1 time
  // unit; steady-state detection must keep this fast AND correct.
  const double a = 2.0, b = 5.0;
  const Ctmc chain = two_state(a, b);
  const std::vector<double> pi = uniformized_transient_distribution(chain, 1e4);
  EXPECT_NEAR(pi[0], b / (a + b), 1e-9);
}

TEST(Uniformization, RefusesHopelesslyStiffProblems) {
  const Ctmc chain = two_state(1e6, 1e6);
  UniformizationOptions options;
  options.max_lambda_t = 1e5;
  EXPECT_THROW(uniformized_transient_distribution(chain, 10.0, options), NumericalError);
}

TEST(Uniformization, AllAbsorbingChainIsConstant) {
  const Ctmc chain(2, {}, {0.3, 0.7});
  const std::vector<double> pi = uniformized_transient_distribution(chain, 5.0);
  EXPECT_NEAR(pi[0], 0.3, 1e-12);
  EXPECT_NEAR(pi[1], 0.7, 1e-12);
}

// --- dispatcher & cross-validation --------------------------------------------

TEST(Transient, ExpmAndUniformizationAgree) {
  const Ctmc chain(3,
                   {{0, 1, 2.0, 0}, {1, 2, 1.0, 1}, {2, 0, 0.5, 2}, {0, 2, 0.25, 3}},
                   {1.0, 0.0, 0.0});
  for (double t : {0.2, 1.0, 4.0}) {
    TransientOptions expm_options;
    expm_options.method = TransientMethod::kMatrixExponential;
    TransientOptions unif_options;
    unif_options.method = TransientMethod::kUniformization;
    const std::vector<double> a = transient_distribution(chain, t, expm_options);
    const std::vector<double> b = transient_distribution(chain, t, unif_options);
    for (size_t s = 0; s < 3; ++s) EXPECT_NEAR(a[s], b[s], 1e-10) << "t=" << t << " s=" << s;
  }
}

TEST(Transient, AutoHandlesStiffHorizon) {
  // Lambda*t = 1e4 * 1e4 = 1e8: auto must route to the matrix exponential.
  // ~27 squaring levels accumulate a few ulps of roundoff; 1e-7 is ample.
  const Ctmc chain = two_state(1e4, 1e4);
  const std::vector<double> pi = transient_distribution(chain, 1e4);
  EXPECT_NEAR(pi[0], 0.5, 1e-7);
}

TEST(Transient, RewardIsDotProduct) {
  const double a = 2.0, b = 5.0;
  const Ctmc chain = two_state(a, b);
  const double t = 0.8;
  const double reward = transient_reward(chain, {1.0, 0.0}, t);
  EXPECT_NEAR(reward, two_state_p0(a, b, t), 1e-11);
}

TEST(Transient, RewardLengthMismatchThrows) {
  const Ctmc chain = two_state(1.0, 1.0);
  EXPECT_THROW(transient_reward(chain, {1.0}, 1.0), InvalidArgument);
}

TEST(Transient, NegativeTimeThrows) {
  const Ctmc chain = two_state(1.0, 1.0);
  EXPECT_THROW(transient_distribution(chain, -1.0), InvalidArgument);
}

// --- parameterized sweep: closed form across (a, b, t) -------------------------

struct TwoStateCase {
  double a, b, t;
};

class TwoStateTransient : public ::testing::TestWithParam<TwoStateCase> {};

TEST_P(TwoStateTransient, MatchesClosedFormViaBothEngines) {
  const auto [a, b, t] = GetParam();
  const Ctmc chain = two_state(a, b);
  const double expected = two_state_p0(a, b, t);

  TransientOptions expm_options;
  expm_options.method = TransientMethod::kMatrixExponential;
  EXPECT_NEAR(transient_distribution(chain, t, expm_options)[0], expected, 1e-9);

  if (chain.max_exit_rate() * t < 1e5) {
    TransientOptions unif_options;
    unif_options.method = TransientMethod::kUniformization;
    EXPECT_NEAR(transient_distribution(chain, t, unif_options)[0], expected, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TwoStateTransient,
    ::testing::Values(TwoStateCase{0.1, 0.1, 1.0}, TwoStateCase{1.0, 2.0, 0.3},
                      TwoStateCase{5.0, 0.5, 2.0}, TwoStateCase{100.0, 1.0, 0.05},
                      TwoStateCase{1e-3, 1e-2, 50.0}, TwoStateCase{1e3, 1e3, 10.0},
                      TwoStateCase{7.0, 11.0, 0.0}, TwoStateCase{0.5, 0.5, 20.0}));

}  // namespace
}  // namespace gop::markov
