// Tests for the three SAN reward models: structure, absorbing behaviour, and
// the paper's published anchor values.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rm_gd.hh"
#include "core/rm_gp.hh"
#include "core/rm_nd.hh"
#include "markov/absorbing.hh"
#include "markov/steady_state.hh"
#include "san/expr.hh"
#include "san/state_space.hh"
#include "util/error.hh"

namespace gop::core {
namespace {

using san::generate_state_space;
using san::GeneratedChain;

GsuParameters table3() { return GsuParameters::table3(); }

// --- RMGd ------------------------------------------------------------------------

TEST(RmGdModel, GeneratesCompactStateSpace) {
  const RmGd gd = build_rm_gd(table3());
  const GeneratedChain chain = generate_state_space(gd.model);
  // The paper stresses that marking-dependent specification keeps the model
  // compact; our reconstruction has a few dozen tangible states.
  EXPECT_GE(chain.state_count(), 10u);
  EXPECT_LE(chain.state_count(), 64u);
}

TEST(RmGdModel, FailureStatesAreAbsorbing) {
  const RmGd gd = build_rm_gd(table3());
  const GeneratedChain chain = generate_state_space(gd.model);
  for (size_t s = 0; s < chain.state_count(); ++s) {
    if (chain.states()[s][gd.failure.index] == 1) {
      EXPECT_TRUE(chain.ctmc().is_absorbing(s)) << chain.states()[s].to_string();
    }
  }
}

TEST(RmGdModel, HasBothDetectedAndUndetectedFailures) {
  const RmGd gd = build_rm_gd(table3());
  const GeneratedChain chain = generate_state_space(gd.model);
  bool undetected_failure = false, detected_failure = false, recovered = false;
  for (const san::Marking& m : chain.states()) {
    if (m[gd.failure.index] == 1 && m[gd.detected.index] == 0) undetected_failure = true;
    if (m[gd.failure.index] == 1 && m[gd.detected.index] == 1) detected_failure = true;
    if (m[gd.failure.index] == 0 && m[gd.detected.index] == 1) recovered = true;
  }
  EXPECT_TRUE(undetected_failure);  // A'_4 (AT miss)
  EXPECT_TRUE(detected_failure);    // detected, then post-recovery failure
  EXPECT_TRUE(recovered);           // A'_3
}

TEST(RmGdModel, InitialMarkingIsCleanGop) {
  const RmGd gd = build_rm_gd(table3());
  const san::Marking init = gd.model.initial_marking();
  EXPECT_EQ(init[gd.p1n_ctn.index], 0);
  EXPECT_EQ(init[gd.detected.index], 0);
  EXPECT_EQ(init[gd.failure.index], 0);
  EXPECT_EQ(init[gd.dirty_bit.index], 0);
}

TEST(RmGdModel, InstantMeasuresPartitionUnity) {
  const RmGd gd = build_rm_gd(table3());
  const GeneratedChain chain = generate_state_space(gd.model);
  san::RewardStructure a4;
  a4.add(san::all_of({san::mark_eq(gd.detected, 0), san::mark_eq(gd.failure, 1)}), 1.0);
  for (double phi : {0.0, 500.0, 4000.0, 10000.0}) {
    const double total = chain.instant_reward(gd.reward_p_a1(), phi) +
                         chain.instant_reward(gd.reward_ih(), phi) +
                         chain.instant_reward(gd.reward_ihf(), phi) +
                         chain.instant_reward(a4, phi);
    EXPECT_NEAR(total, 1.0, 1e-9) << "phi=" << phi;
  }
}

TEST(RmGdModel, DetectionRequiresCoverage) {
  // With coverage 1 no undetected failure can occur during G-OP from the
  // upgraded component; the only undetected-failure path left is a dormant
  // P2 own-fault (mu_old), which is negligible at these parameters.
  GsuParameters params = table3();
  params.coverage = 1.0 - 1e-12;  // coverage must be < 1 for case validity? allow 1.0
  params.coverage = 1.0;
  const RmGd gd = build_rm_gd(params);
  const GeneratedChain chain = generate_state_space(gd.model);
  san::RewardStructure a4;
  a4.add(san::all_of({san::mark_eq(gd.detected, 0), san::mark_eq(gd.failure, 1)}), 1.0);
  EXPECT_LT(chain.instant_reward(a4, 10000.0), 1e-3);
}

TEST(RmGdModel, MoreCoverageMoreDetections) {
  GsuParameters lo = table3(), hi = table3();
  lo.coverage = 0.5;
  hi.coverage = 0.95;
  const RmGd gd_lo = build_rm_gd(lo);
  const RmGd gd_hi = build_rm_gd(hi);
  const double ih_lo = generate_state_space(gd_lo.model).instant_reward(gd_lo.reward_ih(), 5000.0);
  const double ih_hi = generate_state_space(gd_hi.model).instant_reward(gd_hi.reward_ih(), 5000.0);
  EXPECT_GT(ih_hi, ih_lo);
}

TEST(RmGdModel, EventualAbsorptionIsDetectionOrFailure) {
  // Over an infinite horizon every path ends in failure (the detected
  // survivors keep running P1old/P2 which eventually fail too) — check the
  // absorbing analysis wiring end-to-end on RMGd.
  const RmGd gd = build_rm_gd(table3());
  const markov::AbsorbingAnalysis analysis =
      markov::analyze_absorbing(generate_state_space(gd.model).ctmc());
  double total = 0.0;
  for (double p : analysis.absorption_probability) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(analysis.mean_time_to_absorption, 1e3);
}

// --- RMGp ------------------------------------------------------------------------

TEST(RmGpModel, SmallIrreducibleChain) {
  const RmGp gp = build_rm_gp(table3());
  const GeneratedChain chain = generate_state_space(gp.model);
  EXPECT_GE(chain.state_count(), 6u);
  EXPECT_LE(chain.state_count(), 48u);
  for (size_t s = 0; s < chain.state_count(); ++s) EXPECT_FALSE(chain.ctmc().is_absorbing(s));
  // Irreducible: GTH succeeds.
  EXPECT_NO_THROW(markov::steady_state_distribution(chain.ctmc()));
}

TEST(RmGpModel, PaperAnchorRho1) {
  // alpha = beta = 6000: the paper reports rho1 = 0.98 (i.e. overhead
  // lambda*p_ext/alpha = 0.02).
  const RmGp gp = build_rm_gp(table3());
  const GeneratedChain chain = generate_state_space(gp.model);
  const double overhead = chain.steady_state_reward(gp.reward_overhead_p1n());
  EXPECT_NEAR(overhead, 0.02, 0.002);
}

TEST(RmGpModel, PaperAnchorRho2) {
  const RmGp gp = build_rm_gp(table3());
  const GeneratedChain chain = generate_state_space(gp.model);
  const double overhead = chain.steady_state_reward(gp.reward_overhead_p2());
  EXPECT_NEAR(overhead, 0.05, 0.01);  // paper: 0.05
}

TEST(RmGpModel, PaperAnchorSlowSafeguards) {
  GsuParameters params = table3();
  params.alpha = 2500.0;
  params.beta = 2500.0;
  const RmGp gp = build_rm_gp(params);
  const GeneratedChain chain = generate_state_space(gp.model);
  EXPECT_NEAR(chain.steady_state_reward(gp.reward_overhead_p1n()), 0.05, 0.01);
  EXPECT_NEAR(chain.steady_state_reward(gp.reward_overhead_p2()), 0.10, 0.015);
}

TEST(RmGpModel, OverheadMonotoneInSafeguardCost) {
  double previous1 = 0.0, previous2 = 0.0;
  for (double rate : {8000.0, 4000.0, 2000.0, 1000.0}) {
    GsuParameters params = table3();
    params.alpha = rate;
    params.beta = rate;
    const RmGp gp = build_rm_gp(params);
    const GeneratedChain chain = generate_state_space(gp.model);
    const double o1 = chain.steady_state_reward(gp.reward_overhead_p1n());
    const double o2 = chain.steady_state_reward(gp.reward_overhead_p2());
    EXPECT_GT(o1, previous1);
    EXPECT_GT(o2, previous2);
    previous1 = o1;
    previous2 = o2;
  }
}

TEST(RmGpModel, NoExternalMessagesMeansNoP1nOverhead) {
  // p_ext -> 1 means *every* message is external: P2 never receives internal
  // messages from P1new, so P2's dirty bit never sets and its overhead is 0,
  // while P1new does an AT per message.
  GsuParameters params = table3();
  params.p_ext = 1.0;
  const RmGp gp = build_rm_gp(params);
  const GeneratedChain chain = generate_state_space(gp.model);
  EXPECT_NEAR(chain.steady_state_reward(gp.reward_overhead_p2()), 0.0, 1e-12);
  const double o1 = chain.steady_state_reward(gp.reward_overhead_p1n());
  // Renewal cycle: 1/lambda work + 1/alpha AT -> overhead = (1/alpha)/(1/lambda+1/alpha).
  const double expected = (1.0 / params.alpha) / (1.0 / params.lambda + 1.0 / params.alpha);
  EXPECT_NEAR(o1, expected, 1e-9);
}

// --- RMNd ------------------------------------------------------------------------

TEST(RmNdModel, EightStatesBeforeFailureCollapse) {
  const RmNd nd = build_rm_nd(table3(), 1e-4);
  const GeneratedChain chain = generate_state_space(nd.model);
  EXPECT_GE(chain.state_count(), 4u);
  EXPECT_LE(chain.state_count(), 12u);
}

TEST(RmNdModel, SurvivalDecreasesInTime) {
  const RmNd nd = build_rm_nd(table3(), 1e-4);
  const GeneratedChain chain = generate_state_space(nd.model);
  double previous = 1.0;
  for (double t : {0.0, 100.0, 1000.0, 5000.0, 10000.0}) {
    const double survival = chain.instant_reward(nd.reward_no_failure(), t);
    EXPECT_LE(survival, previous + 1e-12);
    EXPECT_GE(survival, 0.0);
    previous = survival;
  }
}

TEST(RmNdModel, SurvivalNearExponentialInMu1) {
  // Messages are fast relative to faults, so failure follows contamination
  // almost immediately: survival ~ exp(-(mu1 + mu_old) t).
  const double mu1 = 1e-4;
  const RmNd nd = build_rm_nd(table3(), mu1);
  const GeneratedChain chain = generate_state_space(nd.model);
  const double t = 10000.0;
  const double survival = chain.instant_reward(nd.reward_no_failure(), t);
  EXPECT_NEAR(survival, std::exp(-mu1 * t), 5e-3);
}

TEST(RmNdModel, OldConfigurationBarelyFails) {
  const GsuParameters params = table3();
  const RmNd nd = build_rm_nd(params, params.mu_old);
  const GeneratedChain chain = generate_state_space(nd.model);
  const double survival = chain.instant_reward(nd.reward_no_failure(), 10000.0);
  EXPECT_GT(survival, 0.999);
}

TEST(RmNdModel, InvalidMu1Throws) {
  EXPECT_THROW(build_rm_nd(table3(), 0.0), InvalidArgument);
  EXPECT_THROW(build_rm_nd(table3(), -1.0), InvalidArgument);
}

TEST(GsuParameters, ValidationCatchesBadValues) {
  GsuParameters params = table3();
  params.theta = 0.0;
  EXPECT_THROW(params.validate(), InvalidArgument);
  params = table3();
  params.coverage = 1.5;
  EXPECT_THROW(params.validate(), InvalidArgument);
  params = table3();
  params.p_ext = 0.0;
  EXPECT_THROW(params.validate(), InvalidArgument);
  EXPECT_NO_THROW(table3().validate());
}

}  // namespace
}  // namespace gop::core
