// Tests for ordinary lumpability: checking, quotient construction, and
// coarsest-partition refinement — including the flagship use case, lumping
// the symmetric replicas produced by san::replicate().

#include <gtest/gtest.h>

#include <cmath>

#include "markov/lumping.hh"
#include "markov/steady_state.hh"
#include "markov/transient.hh"
#include "san/compose.hh"
#include "san/expr.hh"
#include "san/state_space.hh"
#include "util/error.hh"

namespace gop::markov {
namespace {

/// Two independent identical units, no shared resources: 4 states
/// (up-up, up-down, down-up, down-down); the middle two lump.
Ctmc two_units(double fail, double repair) {
  // State coding: bit i = unit i down. 0=uu, 1=du, 2=ud, 3=dd.
  return Ctmc(4,
              {{0, 1, fail, 0},
               {0, 2, fail, 1},
               {1, 0, repair, 2},
               {2, 0, repair, 3},
               {1, 3, fail, 4},
               {2, 3, fail, 5},
               {3, 1, repair, 6},
               {3, 2, repair, 7}},
              {1.0, 0.0, 0.0, 0.0});
}

TEST(Lumping, SymmetricPartitionIsLumpable) {
  const Ctmc chain = two_units(0.2, 1.0);
  const Partition partition{0, 1, 1, 2};
  const LumpingCheck check = check_lumpable(chain, partition);
  EXPECT_TRUE(check.lumpable);
}

TEST(Lumping, AsymmetricPartitionIsRejectedWithWitness) {
  const Ctmc chain = two_units(0.2, 1.0);
  // Grouping up-up with up-down is not lumpable.
  const Partition partition{0, 0, 1, 2};
  const LumpingCheck check = check_lumpable(chain, partition);
  EXPECT_FALSE(check.lumpable);
  EXPECT_THROW(lump(chain, partition), ModelError);
}

TEST(Lumping, QuotientPreservesTransientBlockMass) {
  const double fail = 0.2, repair = 1.0;
  const Ctmc chain = two_units(fail, repair);
  const Partition partition{0, 1, 1, 2};
  const Ctmc quotient = lump(chain, partition);
  ASSERT_EQ(quotient.state_count(), 3u);

  for (double t : {0.3, 1.5, 6.0}) {
    const std::vector<double> full = transient_distribution(chain, t);
    const std::vector<double> small = transient_distribution(quotient, t);
    EXPECT_NEAR(small[0], full[0], 1e-10) << t;
    EXPECT_NEAR(small[1], full[1] + full[2], 1e-10) << t;
    EXPECT_NEAR(small[2], full[3], 1e-10) << t;
  }
}

TEST(Lumping, QuotientPreservesStationaryBlockMass) {
  const Ctmc chain = two_units(0.5, 2.0);
  const Partition partition{0, 1, 1, 2};
  const Ctmc quotient = lump(chain, partition);
  const std::vector<double> full = steady_state_distribution(chain);
  const std::vector<double> small = steady_state_distribution(quotient);
  EXPECT_NEAR(small[1], full[1] + full[2], 1e-12);
}

TEST(Lumping, SingleBlockSeedIsAlreadyLumpable) {
  // Ordinary lumpability only constrains rates *between* blocks, so the
  // one-block partition is trivially a fixpoint.
  const Ctmc chain = two_units(0.2, 1.0);
  const Partition coarsest = coarsest_lumpable_partition(chain, Partition(4, 0));
  EXPECT_EQ(block_count(coarsest), 1u);
}

TEST(Lumping, CoarsestPartitionFindsTheSymmetry) {
  // Seed with the distinction that matters (all-up vs degraded); refinement
  // must split "degraded" into one-down and two-down but keep the two
  // symmetric one-down states together.
  const Ctmc chain = two_units(0.2, 1.0);
  const Partition seed{0, 1, 1, 1};
  const Partition coarsest = coarsest_lumpable_partition(chain, seed);
  EXPECT_EQ(block_count(coarsest), 3u);
  EXPECT_EQ(coarsest[1], coarsest[2]);  // the two one-down states lump
  EXPECT_NE(coarsest[0], coarsest[3]);
  EXPECT_TRUE(check_lumpable(chain, coarsest).lumpable);
}

TEST(Lumping, CoarsestPartitionRespectsSeeds) {
  // Force the two one-down states apart via the seed; refinement must keep
  // them apart.
  const Ctmc chain = two_units(0.2, 1.0);
  const Partition seed{0, 1, 2, 0};
  const Partition refined = coarsest_lumpable_partition(chain, seed);
  EXPECT_NE(refined[1], refined[2]);
}

TEST(Lumping, ReplicatedSanLumps) {
  // Three replicas sharing a repair crew: the coarsest lumpable partition
  // must shrink the 8-state chain to 4 blocks (by number of units down).
  using namespace gop::san;
  SanModel proto("unit");
  const PlaceRef up = proto.add_place("up", 1);
  const PlaceRef crew = proto.add_place("crew", 1);
  proto.add_timed_activity("fail", has_tokens(up), constant_rate(0.25), set_mark(up, 0));
  proto.add_timed_activity("repair", all_of({mark_eq(up, 0), has_tokens(crew)}),
                           constant_rate(1.5), set_mark(up, 1));
  const ReplicatedModel replicated = replicate(proto, 3, {"crew"});
  const GeneratedChain chain = generate_state_space(replicated.model);
  ASSERT_EQ(chain.state_count(), 8u);

  // Seed: distinguish the all-up state (the measure we want to preserve).
  Partition seed(chain.state_count(), 1);
  seed[chain.state_index(replicated.model.initial_marking())] = 0;
  const Partition coarsest = coarsest_lumpable_partition(chain.ctmc(), seed);
  EXPECT_EQ(block_count(coarsest), 4u);

  // The quotient must reproduce P(all up at t).
  const Ctmc quotient = lump(chain.ctmc(), coarsest);
  const size_t all_up_state = chain.state_index(replicated.model.initial_marking());
  const double t = 2.0;
  const double full = transient_distribution(chain.ctmc(), t)[all_up_state];
  const double small = transient_distribution(quotient, t)[coarsest[all_up_state]];
  EXPECT_NEAR(small, full, 1e-10);
}

TEST(Lumping, TrivialPartitionsAlwaysLumpable) {
  const Ctmc chain = two_units(0.3, 0.9);
  EXPECT_TRUE(check_lumpable(chain, Partition{0, 1, 2, 3}).lumpable);  // identity
  EXPECT_TRUE(check_lumpable(chain, Partition(4, 0)).lumpable);       // single block
  EXPECT_EQ(lump(chain, Partition(4, 0)).state_count(), 1u);
}

TEST(Lumping, Validation) {
  const Ctmc chain = two_units(0.3, 0.9);
  EXPECT_THROW(check_lumpable(chain, Partition{0, 1}), InvalidArgument);     // length
  EXPECT_THROW(block_count(Partition{0, 2, 2, 2}), InvalidArgument);         // gap
  EXPECT_THROW(coarsest_lumpable_partition(chain, Partition(4, 0), 0.0),
               InvalidArgument);
}

}  // namespace
}  // namespace gop::markov
