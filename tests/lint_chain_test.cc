// Positive-detection tests for the layer-2 chain checks (lint/chain_lint.hh):
// generator validity (CHNxxx) seeded through the raw-CSR entry point (the
// markov::Ctmc constructor rejects most of these outright), communication
// structure, and reward-structure checks (RWDxxx).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "lint/chain_lint.hh"
#include "san/expr.hh"
#include "san/state_space.hh"

namespace gop::lint {
namespace {

using san::add_mark;
using san::constant_rate;
using san::has_tokens;
using san::Marking;
using san::mark_eq;
using san::PlaceRef;
using san::SanModel;
using san::sequence;

linalg::CsrMatrix csr_2x2(double rate_01) {
  linalg::CooBuilder coo(2, 2);
  coo.add(0, 1, rate_01);
  return coo.build();
}

TEST(LintGenerator, CleanGeneratorIsClean) {
  const Report report = lint_generator(csr_2x2(1.0), {1.0, 0.0}, {0.5, 0.5}, "m");
  EXPECT_TRUE(report.empty());
}

TEST(LintGenerator, Chn002RowSumMismatch) {
  const Report report = lint_generator(csr_2x2(2.0), {3.0, 0.0}, {1.0, 0.0}, "m");
  EXPECT_TRUE(report.has_code("CHN002"));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintGenerator, Chn002ExitVectorSizeMismatch) {
  const Report report = lint_generator(csr_2x2(1.0), {1.0}, {1.0, 0.0}, "m");
  EXPECT_TRUE(report.has_code("CHN002"));
}

TEST(LintGenerator, Chn003NegativeRate) {
  const Report report = lint_generator(csr_2x2(-1.0), {-1.0, 0.0}, {1.0, 0.0}, "m");
  EXPECT_TRUE(report.has_code("CHN003"));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintGenerator, Chn003NonFiniteRate) {
  const Report report =
      lint_generator(csr_2x2(std::numeric_limits<double>::infinity()),
                     {std::numeric_limits<double>::infinity(), 0.0}, {1.0, 0.0}, "m");
  EXPECT_TRUE(report.has_code("CHN003"));
}

TEST(LintGenerator, Chn004InitialNotAProbabilityVector) {
  const Report report = lint_generator(csr_2x2(1.0), {1.0, 0.0}, {0.5, 0.2}, "m");
  EXPECT_TRUE(report.has_code("CHN004"));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintGenerator, Chn001UnreachableState) {
  linalg::CooBuilder coo(3, 3);
  coo.add(0, 1, 1.0);
  const Report report = lint_generator(coo.build(), {1.0, 0.0, 0.0}, {1.0, 0.0, 0.0}, "m");
  EXPECT_TRUE(report.has_code("CHN001"));
  EXPECT_FALSE(report.has_errors());
  // The finding names the unreachable state.
  for (const Finding& finding : report.findings()) {
    if (finding.code == "CHN001") {
      EXPECT_NE(finding.message.find("2"), std::string::npos);
    }
  }
}

TEST(LintCtmc, AbsorbingAndReducibleAreReportedAsInfo) {
  // 0 -> 1 with 1 absorbing: one recurrent class, not irreducible.
  const markov::Ctmc chain(2, {{0, 1, 1.0, -1}}, {1.0, 0.0});
  const Report report = lint_ctmc(chain, "m");
  EXPECT_TRUE(report.has_code("CHN011"));
  EXPECT_TRUE(report.has_code("CHN012"));
  EXPECT_FALSE(report.has_code("CHN013"));
  EXPECT_FALSE(report.has_errors());
  EXPECT_EQ(report.count(Severity::kWarning), 0u);
}

TEST(LintCtmc, Chn013MultipleRecurrentClasses) {
  // 0 branches to two absorbing fates: the long-run behaviour is ambiguous.
  const markov::Ctmc chain(3, {{0, 1, 1.0, -1}, {0, 2, 1.0, -1}}, {1.0, 0.0, 0.0});
  const Report report = lint_ctmc(chain, "m");
  EXPECT_TRUE(report.has_code("CHN013"));
  EXPECT_FALSE(report.has_errors());
}

TEST(LintCtmc, IrreducibleChainIsClean) {
  const markov::Ctmc chain(2, {{0, 1, 1.0, -1}, {1, 0, 2.0, -1}}, {1.0, 0.0});
  EXPECT_TRUE(lint_ctmc(chain, "m").empty());
}

/// Toggle SAN plus a timed activity whose guard never holds.
struct DeadActivityFixture {
  SanModel model{"toggle"};
  PlaceRef a = model.add_place("a", 1);
  PlaceRef b = model.add_place("b");

  DeadActivityFixture() {
    model.add_timed_activity("fwd", has_tokens(a), constant_rate(2.0),
                             sequence({add_mark(a, -1), add_mark(b, 1)}));
    model.add_timed_activity("bwd", has_tokens(b), constant_rate(3.0),
                             sequence({add_mark(b, -1), add_mark(a, 1)}));
    model.add_timed_activity("never", mark_eq(a, 5), constant_rate(1.0), add_mark(a, 0));
  }
};

TEST(LintChain, Chn010DeadTimedActivity) {
  DeadActivityFixture fixture;
  const san::GeneratedChain chain = san::generate_state_space(fixture.model);
  const Report report = lint_chain(chain);
  EXPECT_TRUE(report.has_code("CHN010"));
  EXPECT_FALSE(report.has_errors());
  for (const Finding& finding : report.findings()) {
    if (finding.code == "CHN010") {
      EXPECT_EQ(finding.location, "never");
      EXPECT_EQ(finding.model, "toggle");
    }
  }
}

TEST(LintReward, Rwd001EmptyStructure) {
  DeadActivityFixture fixture;
  const san::GeneratedChain chain = san::generate_state_space(fixture.model);
  const san::RewardStructure reward("empty");
  const Report report = lint_reward(chain, reward);
  EXPECT_TRUE(report.has_code("RWD001"));
  EXPECT_FALSE(report.has_errors());
}

TEST(LintReward, Rwd001PredicateMatchesNoMarking) {
  DeadActivityFixture fixture;
  const san::GeneratedChain chain = san::generate_state_space(fixture.model);
  san::RewardStructure reward("miss");
  reward.add(mark_eq(fixture.a, 5), 1.0);
  const Report report = lint_reward(chain, reward);
  EXPECT_TRUE(report.has_code("RWD001"));
}

TEST(LintReward, Rwd002NonFiniteRate) {
  DeadActivityFixture fixture;
  const san::GeneratedChain chain = san::generate_state_space(fixture.model);
  san::RewardStructure reward("inf");
  reward.add(san::always(),
             [](const Marking&) { return std::numeric_limits<double>::infinity(); });
  const Report report = lint_reward(chain, reward);
  EXPECT_TRUE(report.has_code("RWD002"));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintReward, Rwd002ThrowingRateExpression) {
  DeadActivityFixture fixture;
  const san::GeneratedChain chain = san::generate_state_space(fixture.model);
  san::RewardStructure reward("throws");
  reward.add(san::always(), [](const Marking&) -> double { throw std::runtime_error("boom"); });
  EXPECT_TRUE(lint_reward(chain, reward).has_code("RWD002"));
}

TEST(LintReward, Rwd002NonFiniteImpulse) {
  DeadActivityFixture fixture;
  const san::GeneratedChain chain = san::generate_state_space(fixture.model);
  san::RewardStructure reward("badimp");
  reward.add_impulse(fixture.model.timed_ref(0), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(lint_reward(chain, reward).has_code("RWD002"));
}

TEST(LintReward, Rwd003ImpulseOnDeadActivity) {
  DeadActivityFixture fixture;
  const san::GeneratedChain chain = san::generate_state_space(fixture.model);
  san::RewardStructure reward("dead");
  reward.add_impulse(fixture.model.timed_ref(2), 1.0);  // "never"
  const Report report = lint_reward(chain, reward);
  EXPECT_TRUE(report.has_code("RWD003"));
  EXPECT_FALSE(report.has_errors());
}

TEST(LintReward, Rwd004ImpulseOnInstantaneousActivity) {
  // Toggle routed through a vanishing marking: go -> (via instantaneous) b.
  SanModel model("vanish");
  const PlaceRef a = model.add_place("a", 1);
  const PlaceRef mid = model.add_place("mid");
  const PlaceRef b = model.add_place("b");
  model.add_timed_activity("go", has_tokens(a), constant_rate(1.0),
                           sequence({add_mark(a, -1), add_mark(mid, 1)}));
  const san::ActivityRef inst = model.add_instantaneous_activity(
      "hop", has_tokens(mid), sequence({add_mark(mid, -1), add_mark(b, 1)}));
  model.add_timed_activity("back", has_tokens(b), constant_rate(2.0),
                           sequence({add_mark(b, -1), add_mark(a, 1)}));
  const san::GeneratedChain chain = san::generate_state_space(model);

  san::RewardStructure reward("imp");
  reward.add_impulse(inst, 1.0);
  const Report report = lint_reward(chain, reward);
  EXPECT_TRUE(report.has_code("RWD004"));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintReward, HealthyRewardIsClean) {
  DeadActivityFixture fixture;
  const san::GeneratedChain chain = san::generate_state_space(fixture.model);
  san::RewardStructure reward("ok");
  reward.add(has_tokens(fixture.a), 1.0);
  reward.add_impulse(fixture.model.timed_ref(0), 0.5);  // "fwd" fires
  EXPECT_TRUE(lint_reward(chain, reward).empty());
}

}  // namespace
}  // namespace gop::lint
