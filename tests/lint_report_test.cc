// Tests for the gop::lint findings API: report assembly, severity counting,
// text and JSON rendering (including escaping), and the error gate.

#include <gtest/gtest.h>

#include "lint/finding.hh"
#include "util/error.hh"

namespace gop::lint {
namespace {

TEST(LintReport, EmptyReportRendersNoFindings) {
  Report report;
  EXPECT_TRUE(report.empty());
  EXPECT_FALSE(report.has_errors());
  EXPECT_EQ(report.to_text(), "no findings\n");
  EXPECT_EQ(report.to_json(),
            "{\"findings\":[],\"counts\":{\"error\":0,\"warning\":0,\"info\":0}}");
  EXPECT_NO_THROW(report.throw_if_errors("test"));
}

TEST(LintReport, SeverityNames) {
  EXPECT_STREQ(severity_name(Severity::kInfo), "info");
  EXPECT_STREQ(severity_name(Severity::kWarning), "warning");
  EXPECT_STREQ(severity_name(Severity::kError), "error");
}

TEST(LintReport, CountsPerSeverityAndHasCode) {
  Report report;
  report.add("SAN010", Severity::kError, "m", "act", "bad sum")
      .add("SAN020", Severity::kWarning, "m", "act2", "dead")
      .add("SAN022", Severity::kInfo, "m", "p", "constant")
      .add("SAN022", Severity::kInfo, "m", "q", "constant");
  EXPECT_EQ(report.count(Severity::kError), 1u);
  EXPECT_EQ(report.count(Severity::kWarning), 1u);
  EXPECT_EQ(report.count(Severity::kInfo), 2u);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_code("SAN010"));
  EXPECT_TRUE(report.has_code("SAN022"));
  EXPECT_FALSE(report.has_code("SAN999"));
}

TEST(LintReport, TextRenderingCarriesCodeLocationAndHint) {
  Report report;
  report.add("SAN010", Severity::kError, "relay", "send", "case probabilities sum to 0.6",
             "use complement_prob");
  const std::string text = report.to_text();
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("SAN010"), std::string::npos);
  EXPECT_NE(text.find("relay"), std::string::npos);
  EXPECT_NE(text.find("send"), std::string::npos);
  EXPECT_NE(text.find("case probabilities sum to 0.6"), std::string::npos);
  EXPECT_NE(text.find("hint: use complement_prob"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 0 warning(s), 0 info(s)"), std::string::npos);
}

TEST(LintReport, JsonRenderingEscapesSpecials) {
  Report report;
  report.add("CHN001", Severity::kWarning, "m\"q", "a\\b", "line\nbreak\ttab", "");
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"code\":\"CHN001\""), std::string::npos);
  EXPECT_NE(json.find("m\\\"q"), std::string::npos);
  EXPECT_NE(json.find("a\\\\b"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak\\ttab"), std::string::npos);
  EXPECT_NE(json.find("\"warning\":1"), std::string::npos);
  // Raw control characters must not survive into the JSON document.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(LintReport, MergeAppendsInOrder) {
  Report a;
  a.add("SAN001", Severity::kError, "m", "", "first");
  Report b;
  b.add("CHN001", Severity::kWarning, "m", "", "second");
  a.merge(std::move(b));
  ASSERT_EQ(a.findings().size(), 2u);
  EXPECT_EQ(a.findings()[0].code, "SAN001");
  EXPECT_EQ(a.findings()[1].code, "CHN001");
}

TEST(LintReport, ThrowIfErrorsCarriesContextAndFindings) {
  Report report;
  report.add("PRE002", Severity::kError, "RMGd", "", "Lambda*t too large");
  try {
    report.throw_if_errors("preflight gate");
    FAIL() << "expected gop::ModelError";
  } catch (const ModelError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("preflight gate"), std::string::npos);
    EXPECT_NE(what.find("PRE002"), std::string::npos);
  }
}

TEST(LintReport, WarningsDoNotTriggerTheGate) {
  Report report;
  report.add("SAN020", Severity::kWarning, "m", "act", "dead activity");
  EXPECT_NO_THROW(report.throw_if_errors("gate"));
}

}  // namespace
}  // namespace gop::lint
