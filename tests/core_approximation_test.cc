// Tests for the closed-form approximation: it must track the exact
// reward-model solution closely at Table-3-like time-scale separation, and
// its rho estimates must match the RMGp solutions.

#include <gtest/gtest.h>

#include <cmath>

#include "core/approximation.hh"
#include "core/performability.hh"
#include "core/sweep.hh"
#include "util/error.hh"

namespace gop::core {
namespace {

TEST(Approximation, Rho1MatchesRmGp) {
  const GsuParameters params = GsuParameters::table3();
  const PerformabilityAnalyzer analyzer(params);
  EXPECT_NEAR(approximate_rho1(params), analyzer.rho1(), 2e-3);
}

TEST(Approximation, Rho2MatchesRmGpWithinAFewPercent) {
  const GsuParameters params = GsuParameters::table3();
  const PerformabilityAnalyzer analyzer(params);
  EXPECT_NEAR(approximate_rho2(params), analyzer.rho2(), 0.02);
}

TEST(Approximation, YTracksExactSolutionAcrossTheSweep) {
  const GsuParameters params = GsuParameters::table3();
  const PerformabilityAnalyzer analyzer(params);
  for (double phi : linspace(0.0, params.theta, 11)) {
    const double exact = analyzer.evaluate(phi).y;
    const double approx =
        approximate_y(params, phi, analyzer.rho1(), analyzer.rho2()).y;
    EXPECT_NEAR(approx, exact, 0.02 * exact) << "phi=" << phi;
  }
}

TEST(Approximation, ReproducesTheOptimumLocation) {
  const GsuParameters params = GsuParameters::table3();
  const PerformabilityAnalyzer analyzer(params);
  double best_exact = 0.0, best_exact_y = -1.0;
  double best_approx = 0.0, best_approx_y = -1.0;
  for (double phi : linspace(0.0, params.theta, 11)) {
    const double exact = analyzer.evaluate(phi).y;
    if (exact > best_exact_y) {
      best_exact_y = exact;
      best_exact = phi;
    }
    const double approx = approximate_y(params, phi, analyzer.rho1(), analyzer.rho2()).y;
    if (approx > best_approx_y) {
      best_approx_y = approx;
      best_approx = phi;
    }
  }
  EXPECT_DOUBLE_EQ(best_exact, best_approx);  // 7000 on the paper's grid
}

TEST(Approximation, YAtZeroIsOne) {
  const GsuParameters params = GsuParameters::table3();
  const ApproximateResult r = approximate_y(params, 0.0, 0.98, 0.95);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
}

TEST(Approximation, EW0MatchesExponentialSurvival) {
  const GsuParameters params = GsuParameters::table3();
  const ApproximateResult r = approximate_y(params, 5000.0, 0.98, 0.95);
  EXPECT_NEAR(r.e_w0,
              2.0 * params.theta * std::exp(-(params.mu_new + params.mu_old) * params.theta),
              1e-9);
}

TEST(Approximation, Validation) {
  const GsuParameters params = GsuParameters::table3();
  EXPECT_THROW(approximate_y(params, -1.0, 0.98, 0.95), InvalidArgument);
  EXPECT_THROW(approximate_y(params, 1e9, 0.98, 0.95), InvalidArgument);
  EXPECT_THROW(approximate_y(params, 1.0, 0.0, 0.95), InvalidArgument);
}

}  // namespace
}  // namespace gop::core
