// Monte-Carlo-vs-translation validation (ctest label: slow).
//
// The paper's argument stands on the successive model translation of §4: the
// untranslated mission formulation (Eqs 3/4, sampled directly by
// core::McValidator) and the translated reward-model solution
// (core::PerformabilityAnalyzer) must describe the same quantity. This test
// pins that agreement as a deterministic ctest: fixed-seed
// sim::run_replications, three phi values, and the analytic solution required
// to lie inside the Monte Carlo 99% confidence interval.
//
// Parameter set: E[W0] is checked at Table 3 itself (W0 paths are a handful
// of draws on the normal-mode chain). The Wphi paths simulate the guarded
// chain over [0, phi] and cost ~50 ms each at Table 3, so the Wphi and Y
// checks run on GsuParameters::scaled_mission(100): Table 3 with the mission
// compressed such that every dimensionless quantity the analysis depends on
// is preserved (see params.hh); McValidator.ScaledMissionPreservesTheAnalysis
// pins the compression itself against Table 3 to within 1%.
//
// The replication count is deliberately modest (2000 per estimate): the
// translation carries deliberate approximations (steady-state rho, the Eq 19
// dropped term — see mc_validator.hh) that bias E[Wphi] by up to ~1.7%
// relative at phi = 0.7 theta, so the 99% half-width must stay wider than
// that bias for the CI assertion to be the right statement — while a broken
// translation (a few percent and up) still fails all three phi points.
// Everything is seeded with fixed counts, so the test is bit-reproducible —
// no flakiness.

#include <gtest/gtest.h>

#include "core/mc_validator.hh"
#include "core/performability.hh"
#include "sim/replication.hh"

namespace gop::core {
namespace {

constexpr uint64_t kSeed = 20020623;  // DSN 2002
constexpr size_t kReplications = 2000;

McOptions fixed_count_options() {
  McOptions options;
  options.replications.seed = kSeed;
  options.replications.min_replications = kReplications;
  options.replications.max_replications = kReplications;
  return options;
}

/// 99% CI half-width of a finished replication run.
double half_width_99(const sim::ReplicationResult& result) {
  return result.half_width(0.99);
}

class McTranslationCiTest : public ::testing::Test {
 protected:
  McTranslationCiTest()
      : params_(GsuParameters::scaled_mission(100.0)),
        analyzer_(params_),
        validator_(params_, fixed_count_options()) {}

  sim::ReplicationResult run(const std::function<double(sim::Rng&)>& sample,
                             uint64_t seed_offset) const {
    sim::ReplicationOptions options;
    options.seed = kSeed + seed_offset;
    options.min_replications = kReplications;
    options.max_replications = kReplications;
    return sim::run_replications(sample, options);
  }

  GsuParameters params_;
  PerformabilityAnalyzer analyzer_;
  McValidator validator_;
};

TEST_F(McTranslationCiTest, AnalyticEW0InsideMc99CiAtTable3) {
  const GsuParameters table3 = GsuParameters::table3();
  const PerformabilityAnalyzer analyzer(table3);
  const McValidator validator(table3, fixed_count_options());
  const double analytic = analyzer.evaluate(0.0).e_w0;
  const sim::ReplicationResult mc =
      run([&](sim::Rng& rng) { return validator.sample_w0(rng); }, 0);
  EXPECT_NEAR(mc.mean(), analytic, half_width_99(mc))
      << "E[W0]: analytic " << analytic << " vs MC " << mc.mean() << " +- "
      << half_width_99(mc) << " (99%)";
}

TEST_F(McTranslationCiTest, AnalyticEWphiInsideMc99CiAtThreePhis) {
  const double rho_sum = analyzer_.rho1() + analyzer_.rho2();
  for (const double fraction : {0.3, 0.5, 0.7}) {
    const double phi = fraction * params_.theta;
    const PerformabilityResult translated = analyzer_.evaluate(phi);
    const sim::ReplicationResult mc = run(
        [&](sim::Rng& rng) {
          return validator_.sample_wphi(rng, phi, rho_sum, translated.gamma);
        },
        static_cast<uint64_t>(fraction * 1000.0));
    EXPECT_NEAR(mc.mean(), translated.e_wphi, half_width_99(mc))
        << "phi = " << phi << ": analytic E[Wphi] " << translated.e_wphi << " vs MC "
        << mc.mean() << " +- " << half_width_99(mc) << " (99%)";
  }
}

TEST_F(McTranslationCiTest, McYBracketsAnalyticYAtThreePhis) {
  // Secondary check through the validator's conservative Y interval, widened
  // from its 95% component CIs to 99% (x 2.576/1.960).
  constexpr double kWiden = 2.576 / 1.960;
  for (const double fraction : {0.3, 0.5, 0.7}) {
    const double phi = fraction * params_.theta;
    const PerformabilityResult translated = analyzer_.evaluate(phi);
    const McPerformability mc =
        validator_.estimate(phi, analyzer_.rho1(), analyzer_.rho2(), translated.gamma);
    const double spread = 0.5 * (mc.y_high - mc.y_low) * kWiden;
    const double mid = 0.5 * (mc.y_high + mc.y_low);
    EXPECT_NEAR(translated.y, mid, spread)
        << "phi = " << phi << ": analytic Y " << translated.y << " outside widened MC interval ["
        << mid - spread << ", " << mid + spread << "]";
  }
}

}  // namespace
}  // namespace gop::core
