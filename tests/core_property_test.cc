// Property-based tests: invariants of the translation pipeline swept across
// the parameter space with parameterized gtest suites.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/performability.hh"
#include "core/sweep.hh"
#include "san/expr.hh"

namespace gop::core {
namespace {

struct ParamCase {
  const char* label;
  GsuParameters params;
};

std::vector<ParamCase> parameter_grid() {
  std::vector<ParamCase> cases;
  const auto add = [&](const char* label, auto mutate) {
    GsuParameters p = GsuParameters::table3();
    mutate(p);
    cases.push_back(ParamCase{label, p});
  };
  add("table3", [](GsuParameters&) {});
  add("low_fault_rate", [](GsuParameters& p) { p.mu_new = 0.5e-4; });
  add("high_fault_rate", [](GsuParameters& p) { p.mu_new = 5e-4; });
  add("slow_safeguards", [](GsuParameters& p) { p.alpha = p.beta = 2500.0; });
  add("very_slow_safeguards", [](GsuParameters& p) { p.alpha = p.beta = 600.0; });
  add("low_coverage", [](GsuParameters& p) { p.coverage = 0.3; });
  add("high_coverage", [](GsuParameters& p) { p.coverage = 0.999; });
  add("short_theta", [](GsuParameters& p) { p.theta = 5000.0; });
  add("long_theta", [](GsuParameters& p) { p.theta = 20000.0; });
  add("chatty_processes", [](GsuParameters& p) { p.lambda = 3600.0; });
  add("mostly_external", [](GsuParameters& p) { p.p_ext = 0.5; });
  add("flaky_old_version", [](GsuParameters& p) { p.mu_old = 1e-6; });
  return cases;
}

class AnalyzerProperties : public ::testing::TestWithParam<ParamCase> {
 protected:
  static void TearDownTestSuite() { cache_.reset(); }

  const PerformabilityAnalyzer& analyzer() {
    const ParamCase& c = GetParam();
    if (!cache_ || cached_label_ != c.label) {
      cache_ = std::make_unique<PerformabilityAnalyzer>(c.params);
      cached_label_ = c.label;
    }
    return *cache_;
  }

 private:
  static std::unique_ptr<PerformabilityAnalyzer> cache_;
  static std::string cached_label_;
};

std::unique_ptr<PerformabilityAnalyzer> AnalyzerProperties::cache_;
std::string AnalyzerProperties::cached_label_;

TEST_P(AnalyzerProperties, RhosAreValidFractions) {
  EXPECT_GT(analyzer().rho1(), 0.0);
  EXPECT_LE(analyzer().rho1(), 1.0);
  EXPECT_GT(analyzer().rho2(), 0.0);
  EXPECT_LE(analyzer().rho2(), 1.0);
}

TEST_P(AnalyzerProperties, YAtZeroIsOne) {
  EXPECT_NEAR(analyzer().evaluate(0.0).y, 1.0, 1e-10);
}

TEST_P(AnalyzerProperties, InstantMeasuresPartitionUnity) {
  const RmGd& gd = analyzer().rm_gd();
  san::RewardStructure a4;
  a4.add(san::all_of({san::mark_eq(gd.detected, 0), san::mark_eq(gd.failure, 1)}), 1.0);
  const double theta = analyzer().parameters().theta;
  for (double phi : {0.25 * theta, 0.75 * theta}) {
    const ConstituentMeasures m = analyzer().constituents(phi);
    const double a4_mass = analyzer().gd_chain().instant_reward(a4, phi);
    EXPECT_NEAR(m.p_a1_phi + m.i_h + m.i_hf + a4_mass, 1.0, 1e-8);
  }
}

TEST_P(AnalyzerProperties, MissionWorthBounds) {
  const double theta = analyzer().parameters().theta;
  for (double frac : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    const PerformabilityResult r = analyzer().evaluate(frac * theta);
    EXPECT_GE(r.e_wphi, -1e-9);
    EXPECT_LE(r.e_wphi, r.e_wi + 1e-9);
    EXPECT_GE(r.e_w0, -1e-9);
    EXPECT_LE(r.e_w0, r.e_wi + 1e-9);
    EXPECT_GT(r.y, 0.0);
    EXPECT_TRUE(std::isfinite(r.y));
  }
}

TEST_P(AnalyzerProperties, GammaWithinUnitInterval) {
  const double theta = analyzer().parameters().theta;
  for (double frac : {0.1, 0.6, 1.0}) {
    const PerformabilityResult r = analyzer().evaluate(frac * theta);
    EXPECT_GE(r.gamma, 0.0);
    EXPECT_LE(r.gamma, 1.0);
  }
}

TEST_P(AnalyzerProperties, SurvivalMeasuresMonotoneInPhi) {
  // P(X'_phi in A'_1) is non-increasing in phi; Ih (CDF-like) and the
  // censored Itauh are non-decreasing.
  const double theta = analyzer().parameters().theta;
  ConstituentMeasures previous = analyzer().constituents(0.0);
  for (double frac : {0.25, 0.5, 0.75, 1.0}) {
    const ConstituentMeasures m = analyzer().constituents(frac * theta);
    EXPECT_LE(m.p_a1_phi, previous.p_a1_phi + 1e-10);
    EXPECT_GE(m.i_h + m.i_hf, previous.i_h + previous.i_hf - 1e-10);
    EXPECT_GE(m.i_tau_h, previous.i_tau_h - 1e-10);
    previous = m;
  }
}

TEST_P(AnalyzerProperties, RestOfMissionSurvivalDecreasingInRest) {
  // p_nd_rest is evaluated at theta - phi, so it increases with phi.
  const double theta = analyzer().parameters().theta;
  double previous = analyzer().constituents(0.0).p_nd_rest;
  for (double frac : {0.5, 1.0}) {
    const double current = analyzer().constituents(frac * theta).p_nd_rest;
    EXPECT_GE(current, previous - 1e-12);
    previous = current;
  }
}

TEST_P(AnalyzerProperties, IfDecreasesWithPhi) {
  const double theta = analyzer().parameters().theta;
  double previous = analyzer().constituents(0.0).i_f;
  for (double frac : {0.5, 1.0}) {
    const double current = analyzer().constituents(frac * theta).i_f;
    EXPECT_LE(current, previous + 1e-12);
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(ParameterGrid, AnalyzerProperties,
                         ::testing::ValuesIn(parameter_grid()),
                         [](const ::testing::TestParamInfo<ParamCase>& spec) {
                           return spec.param.label;
                         });

}  // namespace
}  // namespace gop::core
