// gop_serve — analysis-as-a-service daemon for the paper's SAN reward models
// (docs/serving.md).
//
// The server accepts line-delimited JSON requests (one request object per
// line, one response object per line back) naming a registered model
// (rmgd / rmgp / rmnd-new / rmnd-old) or carrying an inline SAN description,
// the rewards to evaluate, and the phi/t grids. Every request is gated by
// gop::lint admission, answered from the content-addressed solved cache when
// possible, and logged as one structured JSONL event.
//
// Modes:
//   gop_serve                            # serve stdin -> stdout (pipe mode)
//   gop_serve --socket=/tmp/gop.sock     # AF_UNIX line protocol daemon
//   gop_serve --load-gen --clients=4 --requests=1000   # in-process load test
//   gop_serve --snapshot=serve.snap ...  # warm start / save on shutdown
//
// Load-generator mode drives the in-process serve::Server with a hot / cold /
// invalid request mix from N client threads and prints a throughput report
// (the serving-path numbers BENCH_serve.json records come from
// bench/bench_serve_throughput.cc; this mode is for eyeballing and soak).
//
// Exit codes: 0 clean shutdown, 1 runtime failure, 2 usage error.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/params.hh"
#include "serve/json.hh"
#include "serve/request.hh"
#include "serve/server.hh"
#include "util/cli.hh"
#include "util/strings.hh"

namespace {

using namespace gop;

std::atomic<bool> g_stop{false};

void handle_signal(int /*signum*/) { g_stop.store(true); }

/// One request line in, one response line out; protocol errors become kError
/// responses, never a dropped connection.
std::string serve_line(serve::Server& server, const std::string& line) {
  serve::Response response;
  try {
    const serve::Json document = serve::parse(line);
    const serve::Request request = serve::parse_request(document);
    response = server.handle(request);
  } catch (const std::exception& e) {
    response.status = serve::Status::kError;
    response.error = e.what();
  }
  return serve::response_to_json(response).dump() + "\n";
}

int run_pipe_mode(serve::Server& server) {
  std::string line;
  int c = 0;
  while (!g_stop.load() && (c = std::fgetc(stdin)) != EOF) {
    if (c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    if (line.empty()) continue;
    const std::string reply = serve_line(server, line);
    std::fwrite(reply.data(), 1, reply.size(), stdout);
    std::fflush(stdout);
    line.clear();
  }
  if (!line.empty()) {
    const std::string reply = serve_line(server, line);
    std::fwrite(reply.data(), 1, reply.size(), stdout);
    std::fflush(stdout);
  }
  return 0;
}

void serve_connection(serve::Server& server, int fd) {
  std::string buffer;
  char chunk[4096];
  while (!g_stop.load()) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline = 0;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      const std::string reply = serve_line(server, line);
      size_t sent = 0;
      while (sent < reply.size()) {
        const ssize_t w = ::write(fd, reply.data() + sent, reply.size() - sent);
        if (w <= 0) {
          ::close(fd);
          return;
        }
        sent += static_cast<size_t>(w);
      }
    }
  }
  ::close(fd);
}

int run_socket_mode(serve::Server& server, const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    return 2;
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    std::perror("bind");
    ::close(listener);
    return 1;
  }
  if (::listen(listener, 16) != 0) {
    std::perror("listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "gop_serve: listening on %s\n", path.c_str());

  std::vector<std::thread> connections;
  while (!g_stop.load()) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (g_stop.load()) break;
      continue;  // EINTR and friends: keep accepting
    }
    connections.emplace_back([&server, fd] { serve_connection(server, fd); });
  }
  ::close(listener);
  ::unlink(path.c_str());
  for (std::thread& connection : connections) connection.join();
  return 0;
}

/// Request mix of the load generator: a hot registered query (cache hit
/// after the first), a per-client cold query (distinct grid per round), and
/// an invalid one (unknown reward -> kError) to keep the error path warm.
serve::Request hot_request() {
  serve::Request request;
  request.model = "rmgd";
  request.rewards = {"P_A1", "Ih"};
  request.transient_times = {7000.0};
  return request;
}

int run_load_gen(serve::Server& server, size_t clients, size_t requests_per_client) {
  // Prewarm so the hot path is actually hot.
  const serve::Response warm = server.handle(hot_request());
  if (!warm.ok()) {
    std::fprintf(stderr, "load-gen prewarm failed: %s\n", warm.error.c_str());
    return 1;
  }
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> rejected_or_error{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t client = 0; client < clients; ++client) {
    threads.emplace_back([&server, &ok, &rejected_or_error, client, requests_per_client] {
      for (size_t i = 0; i < requests_per_client; ++i) {
        serve::Request request = hot_request();
        if (i % 17 == 7) {
          // Cold: a grid no one else asks for (distinct cache key).
          request.transient_times = {7000.0 + static_cast<double>(client * 1'000'000 + i)};
        } else if (i % 23 == 11) {
          request.rewards = {"no_such_reward"};  // invalid -> kError
        }
        const serve::Response response = server.handle(request);
        if (response.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected_or_error.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();
  const serve::ServerStats stats = server.stats();
  const uint64_t total = ok.load() + rejected_or_error.load();
  std::printf("load-gen: %llu requests in %.3f s (%.0f req/s)\n",
              static_cast<unsigned long long>(total), seconds,
              static_cast<double>(total) / seconds);
  std::printf("  ok=%llu rejected/error=%llu\n", static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(rejected_or_error.load()));
  std::printf("  cache_hits=%llu cold_solves=%llu coalesced=%llu errors=%llu evictions=%llu\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cold_solves),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.errors),
              static_cast<unsigned long long>(stats.evictions));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("gop_serve", "analysis-as-a-service daemon with a solved-model cache");
  flags.add_string("socket", "", "AF_UNIX socket path (empty: stdin/stdout pipe mode)")
      .add_string("snapshot", "", "snapshot file: load at start, save on shutdown")
      .add_string("request-log", "", "append one JSONL event per request to this file")
      .add_int("threads", 1, "cold-solve worker threads")
      .add_int("cache-capacity", 1024, "solved-result cache capacity (entries)")
      .add_bool("load-gen", false, "run the in-process load generator and exit")
      .add_int("clients", 4, "load-gen client threads")
      .add_int("requests", 1000, "load-gen requests per client");

  try {
    if (!flags.parse(argc, argv)) return 0;
    const long long threads = flags.get_int("threads");
    const long long capacity = flags.get_int("cache-capacity");
    if (threads < 0 || capacity < 1) {
      std::fprintf(stderr, "--threads must be >= 0 and --cache-capacity >= 1\n");
      return 2;
    }

    serve::ServerOptions options;
    options.solver_threads = static_cast<size_t>(threads);
    options.cache_capacity = static_cast<size_t>(capacity);
    serve::Server server(options);

    std::FILE* log_file = nullptr;
    if (!flags.get_string("request-log").empty()) {
      log_file = std::fopen(flags.get_string("request-log").c_str(), "a");
      if (log_file == nullptr) {
        std::fprintf(stderr, "cannot open request log: %s\n",
                     flags.get_string("request-log").c_str());
        return 2;
      }
      server.set_request_log([log_file](const std::string& line) {
        std::fwrite(line.data(), 1, line.size(), log_file);
        std::fflush(log_file);
      });
    }

    const std::string& snapshot_path = flags.get_string("snapshot");
    if (!snapshot_path.empty()) {
      const serve::SnapshotLoadResult loaded = server.load_snapshot_file(snapshot_path);
      if (loaded.loaded) {
        std::fprintf(stderr, "gop_serve: warm start (%zu instances, %zu cached results)\n",
                     loaded.instances, loaded.cache_entries);
      } else {
        std::fprintf(stderr, "gop_serve: cold start (%s)\n", loaded.detail.c_str());
      }
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    int status = 0;
    if (flags.get_bool("load-gen")) {
      const long long clients = flags.get_int("clients");
      const long long requests = flags.get_int("requests");
      if (clients < 1 || requests < 1) {
        std::fprintf(stderr, "--clients and --requests must be >= 1\n");
        if (log_file != nullptr) std::fclose(log_file);
        return 2;
      }
      status = run_load_gen(server, static_cast<size_t>(clients), static_cast<size_t>(requests));
    } else if (!flags.get_string("socket").empty()) {
      status = run_socket_mode(server, flags.get_string("socket"));
    } else {
      status = run_pipe_mode(server);
    }

    if (!snapshot_path.empty() && status == 0) {
      if (server.save_snapshot_file(snapshot_path)) {
        std::fprintf(stderr, "gop_serve: snapshot saved to %s\n", snapshot_path.c_str());
      } else {
        std::fprintf(stderr, "gop_serve: snapshot save FAILED (%s)\n", snapshot_path.c_str());
        status = 1;
      }
    }
    if (log_file != nullptr) std::fclose(log_file);
    return status;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
