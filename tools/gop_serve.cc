// gop_serve — analysis-as-a-service daemon for the paper's SAN reward models
// (docs/serving.md).
//
// The server accepts line-delimited JSON requests (one request object per
// line, one response object per line back) naming a registered model
// (rmgd / rmgp / rmnd-new / rmnd-old), carrying an inline SAN description,
// or naming a template family with a parameter assignment
// ({"template": "nproc", "assignment": {"n": 3}, ...}; docs/templates.md),
// plus the rewards to evaluate and the phi/t grids. Every request is gated
// by gop::lint admission, answered from the content-addressed solved cache
// when possible (template instances are cached under a parameter-sensitive
// key), and logged as one structured JSONL event.
//
// Modes:
//   gop_serve                            # serve stdin -> stdout (pipe mode)
//   gop_serve --socket=/tmp/gop.sock     # AF_UNIX line protocol daemon
//   gop_serve --load-gen --clients=4 --requests=1000   # in-process load test
//   gop_serve --snapshot=serve.snap ...  # warm start / save on shutdown
//
// Load-generator mode drives the in-process serve::Server with a hot / cold /
// invalid request mix from N client threads and prints a throughput report
// (the serving-path numbers BENCH_serve.json records come from
// bench/bench_serve_throughput.cc; this mode is for eyeballing and soak).
//
// Exit codes: 0 clean shutdown, 1 runtime failure, 2 usage error.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/params.hh"
#include "serve/json.hh"
#include "serve/request.hh"
#include "serve/server.hh"
#include "util/cli.hh"
#include "util/strings.hh"

namespace {

using namespace gop;

std::atomic<bool> g_stop{false};

void handle_signal(int /*signum*/) { g_stop.store(true); }

/// SIGINT/SIGTERM stop the serve loops. Installed via sigaction WITHOUT
/// SA_RESTART on purpose: blocking accept()/read()/fgetc() must return
/// EINTR so the loops observe g_stop and the shutdown path (snapshot save
/// included) actually runs — std::signal on glibc would restart them.
void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

/// Hard cap on one request line. Anything larger is a protocol abuse (real
/// requests are a few KB), answered with a structured error instead of
/// buffering unbounded attacker-controlled bytes.
constexpr size_t kMaxLineBytes = 1u << 20;  // 1 MiB

std::string oversized_line_reply() {
  serve::Response response;
  response.status = serve::Status::kError;
  response.error = str_format("request line exceeds %zu bytes", kMaxLineBytes);
  return serve::response_to_json(response).dump() + "\n";
}

/// One request line in, one response line out; protocol errors become kError
/// responses, never a dropped connection.
std::string serve_line(serve::Server& server, const std::string& line) {
  serve::Response response;
  try {
    const serve::Json document = serve::parse(line);
    const serve::Request request = serve::parse_request(document);
    response = server.handle(request);
  } catch (const std::exception& e) {
    response.status = serve::Status::kError;
    response.error = e.what();
  }
  return serve::response_to_json(response).dump() + "\n";
}

int run_pipe_mode(serve::Server& server) {
  std::string line;
  bool overflow = false;
  const auto reply_line = [&server, &line, &overflow] {
    if (overflow) {
      const std::string reply = oversized_line_reply();
      std::fwrite(reply.data(), 1, reply.size(), stdout);
    } else if (!line.empty()) {
      const std::string reply = serve_line(server, line);
      std::fwrite(reply.data(), 1, reply.size(), stdout);
    }
    std::fflush(stdout);
    line.clear();
    overflow = false;
  };
  while (!g_stop.load()) {
    const int c = std::fgetc(stdin);
    if (c == EOF) {
      // A signal interrupting the read shows up as a stream error with
      // errno == EINTR (no SA_RESTART); anything else is a real EOF/error.
      if (std::ferror(stdin) != 0 && errno == EINTR && !g_stop.load()) {
        std::clearerr(stdin);
        continue;
      }
      break;
    }
    if (c != '\n') {
      if (line.size() < kMaxLineBytes) {
        line.push_back(static_cast<char>(c));
      } else {
        overflow = true;  // keep draining to the newline, reply with an error
      }
      continue;
    }
    reply_line();
  }
  if (overflow || !line.empty()) reply_line();
  return 0;
}

bool write_all(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t w = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

/// One connection's serve loop. Does NOT close fd — the accept loop owns
/// the descriptor (so shutdown-on-stop never races a reused fd number) and
/// closes it after joining this thread; `done` tells it the thread is
/// finished and can be reaped.
void serve_connection(serve::Server& server, int fd, std::atomic<bool>& done) {
  std::string buffer;
  char chunk[4096];
  while (!g_stop.load()) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline = 0;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      if (!write_all(fd, serve_line(server, line))) {
        done.store(true);
        return;
      }
    }
    if (buffer.size() > kMaxLineBytes) {
      // An unterminated line past the cap: reply with a structured error and
      // drop the connection (resynchronizing inside it would be guesswork).
      write_all(fd, oversized_line_reply());
      break;
    }
  }
  done.store(true);
}

int run_socket_mode(serve::Server& server, const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    return 2;
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    std::perror("bind");
    ::close(listener);
    return 1;
  }
  if (::listen(listener, 16) != 0) {
    std::perror("listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "gop_serve: listening on %s\n", path.c_str());

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Connection> connections;
  // Joins (and closes) finished connections; with force, first shutdown()s
  // the sockets so threads blocked in read() unblock and exit.
  const auto reap = [&connections](bool force) {
    for (auto it = connections.begin(); it != connections.end();) {
      if (force || it->done->load()) {
        if (force) ::shutdown(it->fd, SHUT_RDWR);
        it->thread.join();
        ::close(it->fd);
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  };
  while (!g_stop.load()) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (g_stop.load()) break;
      reap(false);
      continue;  // EINTR and friends: keep accepting
    }
    Connection connection;
    connection.fd = fd;
    connection.done = std::make_shared<std::atomic<bool>>(false);
    std::atomic<bool>& done = *connection.done;
    connection.thread = std::thread([&server, fd, &done] { serve_connection(server, fd, done); });
    connections.push_back(std::move(connection));
    reap(false);  // bound the vector to (roughly) the live connections
  }
  ::close(listener);
  ::unlink(path.c_str());
  reap(true);
  return 0;
}

/// Request mix of the load generator: a hot registered query (cache hit
/// after the first), a per-client cold query (distinct grid per round), and
/// an invalid one (unknown reward -> kError) to keep the error path warm.
serve::Request hot_request() {
  serve::Request request;
  request.model = "rmgd";
  request.rewards = {"P_A1", "Ih"};
  request.transient_times = {7000.0};
  return request;
}

int run_load_gen(serve::Server& server, size_t clients, size_t requests_per_client) {
  // Prewarm so the hot path is actually hot.
  const serve::Response warm = server.handle(hot_request());
  if (!warm.ok()) {
    std::fprintf(stderr, "load-gen prewarm failed: %s\n", warm.error.c_str());
    return 1;
  }
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> rejected_or_error{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t client = 0; client < clients; ++client) {
    threads.emplace_back([&server, &ok, &rejected_or_error, client, requests_per_client] {
      for (size_t i = 0; i < requests_per_client; ++i) {
        serve::Request request = hot_request();
        if (i % 17 == 7) {
          // Cold: a grid no one else asks for (distinct cache key).
          request.transient_times = {7000.0 + static_cast<double>(client * 1'000'000 + i)};
        } else if (i % 23 == 11) {
          request.rewards = {"no_such_reward"};  // invalid -> kError
        }
        const serve::Response response = server.handle(request);
        if (response.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected_or_error.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();
  const serve::ServerStats stats = server.stats();
  const uint64_t total = ok.load() + rejected_or_error.load();
  std::printf("load-gen: %llu requests in %.3f s (%.0f req/s)\n",
              static_cast<unsigned long long>(total), seconds,
              static_cast<double>(total) / seconds);
  std::printf("  ok=%llu rejected/error=%llu\n", static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(rejected_or_error.load()));
  std::printf("  cache_hits=%llu cold_solves=%llu coalesced=%llu errors=%llu evictions=%llu\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cold_solves),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.errors),
              static_cast<unsigned long long>(stats.evictions));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("gop_serve", "analysis-as-a-service daemon with a solved-model cache");
  flags.add_string("socket", "", "AF_UNIX socket path (empty: stdin/stdout pipe mode)")
      .add_string("snapshot", "", "snapshot file: load at start, save on shutdown")
      .add_string("request-log", "", "append one JSONL event per request to this file")
      .add_int("threads", 1, "cold-solve worker threads")
      .add_int("cache-capacity", 1024, "solved-result cache capacity (entries)")
      .add_int("instance-capacity", 32, "model-instance cache capacity (entries)")
      .add_bool("load-gen", false, "run the in-process load generator and exit")
      .add_int("clients", 4, "load-gen client threads")
      .add_int("requests", 1000, "load-gen requests per client");

  try {
    if (!flags.parse(argc, argv)) return 0;
    const long long threads = flags.get_int("threads");
    const long long capacity = flags.get_int("cache-capacity");
    const long long instance_capacity = flags.get_int("instance-capacity");
    if (threads < 0 || capacity < 1 || instance_capacity < 1) {
      std::fprintf(stderr,
                   "--threads must be >= 0, --cache-capacity and --instance-capacity >= 1\n");
      return 2;
    }

    serve::ServerOptions options;
    options.solver_threads = static_cast<size_t>(threads);
    options.cache_capacity = static_cast<size_t>(capacity);
    options.instance_capacity = static_cast<size_t>(instance_capacity);
    serve::Server server(options);

    std::FILE* log_file = nullptr;
    if (!flags.get_string("request-log").empty()) {
      log_file = std::fopen(flags.get_string("request-log").c_str(), "a");
      if (log_file == nullptr) {
        std::fprintf(stderr, "cannot open request log: %s\n",
                     flags.get_string("request-log").c_str());
        return 2;
      }
      server.set_request_log([log_file](const std::string& line) {
        std::fwrite(line.data(), 1, line.size(), log_file);
        std::fflush(log_file);
      });
    }

    const std::string& snapshot_path = flags.get_string("snapshot");
    if (!snapshot_path.empty()) {
      const serve::SnapshotLoadResult loaded = server.load_snapshot_file(snapshot_path);
      if (loaded.loaded) {
        std::fprintf(stderr, "gop_serve: warm start (%zu instances, %zu cached results)\n",
                     loaded.instances, loaded.cache_entries);
      } else {
        std::fprintf(stderr, "gop_serve: cold start (%s)\n", loaded.detail.c_str());
      }
    }

    install_signal_handlers();

    int status = 0;
    if (flags.get_bool("load-gen")) {
      const long long clients = flags.get_int("clients");
      const long long requests = flags.get_int("requests");
      if (clients < 1 || requests < 1) {
        std::fprintf(stderr, "--clients and --requests must be >= 1\n");
        if (log_file != nullptr) std::fclose(log_file);
        return 2;
      }
      status = run_load_gen(server, static_cast<size_t>(clients), static_cast<size_t>(requests));
    } else if (!flags.get_string("socket").empty()) {
      status = run_socket_mode(server, flags.get_string("socket"));
    } else {
      status = run_pipe_mode(server);
    }

    if (!snapshot_path.empty() && status == 0) {
      if (server.save_snapshot_file(snapshot_path)) {
        std::fprintf(stderr, "gop_serve: snapshot saved to %s\n", snapshot_path.c_str());
      } else {
        std::fprintf(stderr, "gop_serve: snapshot save FAILED (%s)\n", snapshot_path.c_str());
        status = 1;
      }
    }
    if (log_file != nullptr) std::fclose(log_file);
    return status;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
