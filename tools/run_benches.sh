#!/usr/bin/env bash
# Runs the google-benchmark perf suites and records machine-readable results
# at the repo root, establishing the performance trajectory across PRs:
#
#   BENCH_solver.json   — solver engine micro-benchmarks (bench_solver_perf)
#   BENCH_scaling.json  — parallel scaling of sweeps + Monte Carlo
#                         (bench_parallel_scaling at 1/2/4/8 threads)
#   BENCH_sweep.json    — pointwise (per-measure) vs session-batched phi-sweep
#                         (bench_sweep_batch; batched arm at 1/2/4/8 threads)
#
# Usage: tools/run_benches.sh [build-dir]      (default: build)
# The build dir must already contain compiled bench binaries.

set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${BUILD_DIR:-build}}"
bench_dir="$root/$build_dir/bench"

for binary in bench_solver_perf bench_parallel_scaling bench_sweep_batch; do
  if [[ ! -x "$bench_dir/$binary" ]]; then
    echo "error: $bench_dir/$binary not found; build first:" >&2
    echo "  cmake -B $build_dir -S $root && cmake --build $build_dir -j" >&2
    exit 1
  fi
done

echo "== bench_solver_perf -> BENCH_solver.json"
"$bench_dir/bench_solver_perf" \
  --benchmark_out="$root/BENCH_solver.json" --benchmark_out_format=json

echo "== bench_parallel_scaling -> BENCH_scaling.json"
"$bench_dir/bench_parallel_scaling" \
  --benchmark_out="$root/BENCH_scaling.json" --benchmark_out_format=json

echo "== bench_sweep_batch -> BENCH_sweep.json"
"$bench_dir/bench_sweep_batch" \
  --benchmark_out="$root/BENCH_sweep.json" --benchmark_out_format=json

# Speedup summary: real_time(threads:1) / real_time(threads:T) per benchmark
# family, straight from the JSON this run just wrote.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$root/BENCH_scaling.json" <<'PY'
import json, sys
from collections import defaultdict

with open(sys.argv[1]) as fh:
    data = json.load(fh)

families = defaultdict(dict)
for b in data.get("benchmarks", []):
    name = b["name"]            # e.g. BM_SweepPhi41/4/real_time
    parts = name.split("/")
    if len(parts) < 2 or not parts[1].isdigit():
        continue
    families[parts[0]][int(parts[1])] = b["real_time"]

print("\nspeedup vs 1 thread (wall clock):")
for family, times in sorted(families.items()):
    if 1 not in times:
        continue
    row = "  ".join(f"{t}T: {times[1] / times[t]:.2f}x" for t in sorted(times))
    print(f"  {family:<20} {row}")
PY
fi

# Pointwise-vs-batched summary: single-thread win of the session pipeline and
# the batched arm's thread scaling, from the JSON this run just wrote.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$root/BENCH_sweep.json" <<'PY'
import json, sys

with open(sys.argv[1]) as fh:
    data = json.load(fh)

pointwise = None
batched = {}
for b in data.get("benchmarks", []):
    name = b["name"]            # BM_SweepPerMeasure41/real_time, BM_SweepBatched41/4/real_time
    parts = name.split("/")
    if parts[0] == "BM_SweepPerMeasure41":
        pointwise = b["real_time"]
    elif parts[0] == "BM_SweepBatched41" and len(parts) > 1 and parts[1].isdigit():
        batched[int(parts[1])] = b["real_time"]

if pointwise is not None and batched:
    print("\npointwise (per-measure) vs session-batched 41-point sweep:")
    print(f"  pointwise 1T: {pointwise:.2f} ms")
    for t in sorted(batched):
        print(f"  batched  {t}T: {batched[t]:.2f} ms  ({pointwise / batched[t]:.2f}x vs pointwise)")
PY
fi

echo "done: $root/BENCH_solver.json $root/BENCH_scaling.json $root/BENCH_sweep.json"
