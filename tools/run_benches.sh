#!/usr/bin/env bash
# Runs the google-benchmark perf suites and records machine-readable results
# at the repo root, establishing the performance trajectory across PRs:
#
#   BENCH_solver.json   — solver engine micro-benchmarks (bench_solver_perf)
#   BENCH_scaling.json  — parallel scaling of sweeps + Monte Carlo
#                         (bench_parallel_scaling at 1/2/4/8 threads)
#   BENCH_sweep.json    — pointwise (per-measure) vs session-batched phi-sweep
#                         (bench_sweep_batch; batched arm at 1/2/4/8 threads)
#
# Usage: tools/run_benches.sh [build-dir]      (default: build)
# The build dir must already contain compiled bench binaries.

set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${BUILD_DIR:-build}}"
bench_dir="$root/$build_dir/bench"

# binary:output pairs; one loop checks, runs, and emits JSON for each suite.
suites=(
  "bench_solver_perf:BENCH_solver.json"
  "bench_parallel_scaling:BENCH_scaling.json"
  "bench_sweep_batch:BENCH_sweep.json"
)

for suite in "${suites[@]}"; do
  binary="${suite%%:*}"
  if [[ ! -x "$bench_dir/$binary" ]]; then
    echo "error: $bench_dir/$binary not found; build first:" >&2
    echo "  cmake -B $build_dir -S $root && cmake --build $build_dir -j" >&2
    exit 1
  fi
done

outputs=()
for suite in "${suites[@]}"; do
  binary="${suite%%:*}"
  out="$root/${suite##*:}"
  echo "== $binary -> ${suite##*:}"
  "$bench_dir/$binary" --benchmark_out="$out" --benchmark_out_format=json
  outputs+=("$out")
done

# Summaries straight from the JSON this run just wrote: per-family speedup vs
# 1 thread (scaling suite) and the pointwise-vs-batched sweep comparison.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$root/BENCH_scaling.json" "$root/BENCH_sweep.json" <<'PY'
import json, sys
from collections import defaultdict


def benchmarks(path):
    with open(path) as fh:
        return json.load(fh).get("benchmarks", [])


# Speedup vs 1 thread, per benchmark family (name form BM_Family/threads/...).
families = defaultdict(dict)
for b in benchmarks(sys.argv[1]):
    parts = b["name"].split("/")
    if len(parts) >= 2 and parts[1].isdigit():
        families[parts[0]][int(parts[1])] = b["real_time"]

print("\nspeedup vs 1 thread (wall clock):")
for family, times in sorted(families.items()):
    if 1 not in times:
        continue
    row = "  ".join(f"{t}T: {times[1] / times[t]:.2f}x" for t in sorted(times))
    print(f"  {family:<20} {row}")

# Single-thread win of the session pipeline and the batched arm's scaling.
pointwise = None
batched = {}
for b in benchmarks(sys.argv[2]):
    parts = b["name"].split("/")
    if parts[0] == "BM_SweepPerMeasure41":
        pointwise = b["real_time"]
    elif parts[0] == "BM_SweepBatched41" and len(parts) > 1 and parts[1].isdigit():
        batched[int(parts[1])] = b["real_time"]

if pointwise is not None and batched:
    print("\npointwise (per-measure) vs session-batched 41-point sweep:")
    print(f"  pointwise 1T: {pointwise:.2f} ms")
    for t in sorted(batched):
        print(f"  batched  {t}T: {batched[t]:.2f} ms  ({pointwise / batched[t]:.2f}x vs pointwise)")
PY
fi

echo "done: ${outputs[*]}"
