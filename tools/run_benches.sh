#!/usr/bin/env bash
# Runs the google-benchmark perf suites and records machine-readable results
# at the repo root, establishing the performance trajectory across PRs:
#
#   BENCH_solver.json   — solver engine micro-benchmarks (bench_solver_perf)
#   BENCH_scaling.json  — parallel scaling of sweeps + Monte Carlo
#                         (bench_parallel_scaling at 1/2/4/8 threads)
#   BENCH_sweep.json    — pointwise (per-measure) vs session-batched phi-sweep
#                         (bench_sweep_batch; batched arm at 1/2/4/8 threads)
#   BENCH_serve.json    — gop::serve serving path: cached-query/s, cold-solve
#                         latency, snapshot warm-restart (bench_serve_throughput)
#
# Usage: tools/run_benches.sh [options] [build-dir]
#
#   build-dir   build directory containing compiled bench binaries
#               (default: build-relwithdebinfo if present, else build)
#   --smoke     CI mode: bench_solver_perf only, one repetition, short
#               min-time, JSON written into the build dir (never overwrites
#               the committed BENCH_*.json files)
#   --force     record results from a non-optimized (Debug) build anyway;
#               the output JSON is tagged "measurement_build_type" so a
#               debug-mode artifact can never masquerade as a release one
#   --only SUB  run only the suites whose binary name contains SUB (e.g.
#               --only sweep regenerates just BENCH_sweep.json); the other
#               committed BENCH_*.json files are left untouched
#
# Environment:
#   GOP_BENCH_REPETITIONS   repetitions per benchmark (default 3); the
#                           committed JSON keeps only the aggregate rows
#                           (median/mean/stddev/cv), not individual reps
#
# Measurement protocol and how to read the results: docs/performance.md.

set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"

smoke=0
force=0
only=""
expect_only=0
build_dir=""
for arg in "$@"; do
  if [[ "$expect_only" -eq 1 ]]; then
    only="$arg"
    expect_only=0
    continue
  fi
  case "$arg" in
    --smoke) smoke=1 ;;
    --force) force=1 ;;
    --only) expect_only=1 ;;
    --only=*) only="${arg#--only=}" ;;
    -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) build_dir="$arg" ;;
  esac
done
if [[ "$expect_only" -eq 1 ]]; then
  echo "error: --only needs a substring argument" >&2
  exit 2
fi

if [[ -z "$build_dir" ]]; then
  if [[ -d "$root/build-relwithdebinfo" ]]; then
    build_dir="build-relwithdebinfo"
  else
    build_dir="${BUILD_DIR:-build}"
  fi
fi
bench_dir="$root/$build_dir/bench"
repetitions="${GOP_BENCH_REPETITIONS:-3}"

# --- build-type gate -------------------------------------------------------
# Committed BENCH_*.json files must describe optimized code. The build type
# comes from the build tree's CMake cache — the JSON's own
# "library_build_type" key describes the google-benchmark *library* (on
# distro packages it reports "debug" regardless of how this repo was built),
# which is why the gate does not consult it.
cache="$root/$build_dir/CMakeCache.txt"
build_type="unknown"
if [[ -f "$cache" ]]; then
  build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$cache" | head -1)"
  [[ -n "$build_type" ]] || build_type="unspecified"
fi
case "$build_type" in
  Release|RelWithDebInfo|MinSizeRel) ;;
  *)
    if [[ "$force" -eq 1 ]]; then
      echo "warning: build type '$build_type' is not an optimized configuration;" >&2
      echo "warning: results will be tagged measurement_build_type=$build_type" >&2
    else
      echo "error: $build_dir has CMAKE_BUILD_TYPE='$build_type' — refusing to record" >&2
      echo "error: benchmark results from a non-optimized build. Build the" >&2
      echo "error: relwithdebinfo preset first:" >&2
      echo "  cmake --preset relwithdebinfo && cmake --build --preset relwithdebinfo -j" >&2
      echo "error: or pass --force to record tagged debug-mode results anyway." >&2
      exit 1
    fi
    ;;
esac

# binary:output pairs; one loop checks, runs, and emits JSON for each suite.
if [[ "$smoke" -eq 1 ]]; then
  suites=(
    "bench_solver_perf:$build_dir/BENCH_smoke.json"
    "bench_serve_throughput:$build_dir/BENCH_serve_smoke.json"
  )
  extra_flags=(--benchmark_min_time=0.05 --benchmark_repetitions=1)
else
  suites=(
    "bench_solver_perf:BENCH_solver.json"
    "bench_parallel_scaling:BENCH_scaling.json"
    "bench_sweep_batch:BENCH_sweep.json"
    "bench_serve_throughput:BENCH_serve.json"
  )
  extra_flags=(--benchmark_repetitions="$repetitions" --benchmark_report_aggregates_only=true)
fi

if [[ -n "$only" ]]; then
  filtered=()
  for suite in "${suites[@]}"; do
    [[ "${suite%%:*}" == *"$only"* ]] && filtered+=("$suite")
  done
  if [[ ${#filtered[@]} -eq 0 ]]; then
    echo "error: --only '$only' matches no suite" >&2
    exit 2
  fi
  suites=("${filtered[@]}")
fi

for suite in "${suites[@]}"; do
  binary="${suite%%:*}"
  if [[ ! -x "$bench_dir/$binary" ]]; then
    echo "error: $bench_dir/$binary not found; build first:" >&2
    echo "  cmake --preset relwithdebinfo && cmake --build --preset relwithdebinfo -j" >&2
    exit 1
  fi
done

outputs=()
for suite in "${suites[@]}"; do
  binary="${suite%%:*}"
  out="$root/${suite##*:}"
  echo "== $binary -> ${suite##*:}"
  "$bench_dir/$binary" --benchmark_out="$out" --benchmark_out_format=json "${extra_flags[@]}"
  outputs+=("$out")
done

# --- post-process + summarize ---------------------------------------------
# Stamp every output with the build type of the code under test (the
# misleading library_build_type is left in place but demoted by the new key),
# then print the scaling/sweep summaries from the aggregate rows.
python3 - "$build_type" "${outputs[@]}" <<'PY'
import json, sys
from collections import defaultdict

build_type = sys.argv[1]
paths = sys.argv[2:]


def load(path):
    with open(path) as fh:
        return json.load(fh)


def median_rows(doc):
    """name -> real_time using median aggregates, or plain rows if no reps."""
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                rows[b["run_name"]] = b["real_time"]
        elif b.get("run_type", "iteration") == "iteration":
            rows.setdefault(b["name"], b["real_time"])
    return rows


docs = {}
for path in paths:
    doc = load(path)
    ctx = doc.setdefault("context", {})
    # gop_build_type is injected by the binary itself (bench_support); the
    # script-level stamp also covers binaries built before that existed.
    ctx["measurement_build_type"] = build_type
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    docs[path] = doc

scaling = next((p for p in paths if "scaling" in p.lower()), None)
sweep = next((p for p in paths if "sweep" in p.lower()), None)

if scaling:
    families = defaultdict(dict)
    for name, rt in median_rows(docs[scaling]).items():
        parts = name.split("/")
        if len(parts) >= 2 and parts[1].isdigit():
            families[parts[0]][int(parts[1])] = rt
    print("\nspeedup vs 1 thread (wall clock, medians):")
    for family, times in sorted(families.items()):
        if 1 not in times:
            continue
        row = "  ".join(f"{t}T: {times[1] / times[t]:.2f}x" for t in sorted(times))
        print(f"  {family:<20} {row}")

serve = next((p for p in paths if "serve" in p.lower()), None)
if serve:
    rates = {}
    for b in docs[serve].get("benchmarks", []):
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
            continue
        name = b.get("run_name", b.get("name", ""))
        ips = b.get("items_per_second")
        if ips and name not in rates:
            rates[name] = ips
    if rates:
        print("\nserving path throughput (medians):")
        for name, ips in sorted(rates.items()):
            print(f"  {name:<32} {ips:>14,.0f} queries/s")

if sweep:
    pointwise = None
    batched = {}
    for name, rt in median_rows(docs[sweep]).items():
        parts = name.split("/")
        if parts[0] == "BM_SweepPerMeasure41":
            pointwise = rt
        elif parts[0] == "BM_SweepBatched41" and len(parts) > 1 and parts[1].isdigit():
            batched[int(parts[1])] = rt
    if pointwise is not None and batched:
        print("\npointwise (per-measure) vs session-batched 41-point sweep (medians):")
        print(f"  pointwise 1T: {pointwise:.2f} ms")
        for t in sorted(batched):
            print(f"  batched  {t}T: {batched[t]:.2f} ms  ({pointwise / batched[t]:.2f}x vs pointwise)")
PY

echo "done: ${outputs[*]}"
