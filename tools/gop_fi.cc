// gop_fi — deterministic fault-injection campaign runner (docs/robustness.md).
//
// Runs the full (scenario x site x trigger) campaign matrix over the paper's
// three SAN models and classifies every cell against its fault-free baseline:
// an injected fault must be harmless, recovered within tolerance, or surface
// as a structured error. Any silent-wrong cell fails the run with exit 3, so
// CI can gate on the campaign invariant directly.
//
// The plan seed makes every probabilistic trigger bit-reproducible; it comes
// from --seed, falling back to the GOP_FI_SEED environment variable (this is
// how CI rotates seeds without touching the command line).
//
// Examples:
//   gop_fi --list                 # site catalog and scenario names
//   gop_fi                        # full campaign, text report
//   gop_fi --report=json          # machine-readable report (CI artifact)
//   GOP_FI_SEED=1234 gop_fi       # rotated seed from the environment
//
// Exit codes: 0 campaign safe, 1 unexpected error, 2 usage error,
//             3 campaign found a silent-wrong cell.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/fault_campaign.hh"
#include "fi/fi.hh"
#include "util/cli.hh"

namespace {

using namespace gop;

void print_catalog() {
  std::printf("fault-injection sites (%zu):\n", fi::kSiteCount);
  for (fi::SiteId site : fi::all_sites()) {
    std::printf("  %-36s %s\n", fi::to_string(site), fi::site_description(site));
  }
  std::printf("campaign scenarios:\n");
  for (const std::string& name : core::campaign_scenario_names()) {
    std::printf("  %s\n", name.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("gop_fi", "deterministic fault-injection campaigns over the paper's models");
  flags.add_bool("list", false, "print the site catalog and scenario names, then exit")
      .add_int("seed", -1, "plan seed; -1 reads GOP_FI_SEED (default 0x5eedf1)")
      .add_double("tolerance", 1e-6, "relative deviation from baseline still considered correct")
      .add_string("report", "text", "text | json");

  try {
    if (!flags.parse(argc, argv)) return 0;

    if (flags.get_bool("list")) {
      print_catalog();
      return 0;
    }

    const std::string& report_format = flags.get_string("report");
    if (report_format != "text" && report_format != "json") {
      std::fprintf(stderr, "unknown report format '%s' (text | json)\n", report_format.c_str());
      return 2;
    }

    if (!fi::compiled_in()) {
      std::fprintf(stderr,
                   "gop_fi: fault injection compiled out (GOP_FI=OFF); "
                   "no site can fire and the campaign would be vacuous\n");
      return 2;
    }

    core::CampaignOptions options;
    options.tolerance = flags.get_double("tolerance");
    const long long seed_flag = flags.get_int("seed");
    if (seed_flag >= 0) {
      options.seed = static_cast<uint64_t>(seed_flag);
    } else if (const char* env = std::getenv("GOP_FI_SEED")) {
      options.seed = std::strtoull(env, nullptr, 10);
    }

    const core::CampaignReport report = core::run_fault_campaign(options);
    if (report_format == "json") {
      std::printf("%s\n", report.to_json().c_str());
    } else {
      std::fputs(report.to_text().c_str(), stdout);
    }
    if (!report.all_safe()) {
      std::fprintf(stderr, "gop_fi: %zu silent-wrong cell(s) — campaign invariant violated\n",
                   report.count(core::CampaignOutcome::kSilentWrong));
      return 3;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
