// gop_lint — static-analysis battery for SAN reward models.
//
// Runs the gop::lint check layers (pre-generation model checks, generated-
// chain checks, solver preflight; see docs/static-analysis.md for the check
// catalog) over a registered model, or over all of the paper's constituent
// models, and reports structured findings.
//
//   gop_lint                          # all paper models, Table 3 parameters
//   gop_lint --model=rmgd --phi=7000  # one model, explicit grid point
//   gop_lint --json                   # machine-readable findings (CI gate)
//   gop_lint --prove --probe-budget=0 # symbolic proofs only, no probing
//   gop_lint --template=nproc --set=n=4,servers=2 --prove
//                                     # a template-registry instance
//                                     # (docs/templates.md); model+chain
//                                     # layers, no preflight grids
//
// --prove prints a per-model proof summary (verdicts, marking bounds,
// witnesses) on top of the findings; with --json it adds a "proofs" section.
// --probe-budget caps the reachability probe (0 disables it entirely: the
// model must then be fully proved for SAN031 to stay away).
//
// Exit codes: 0 no error findings (warnings/info allowed unless --strict),
// 1 runtime failure, 2 usage error, 3 findings at the gating severity.

#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/params.hh"
#include "core/rm_gd.hh"
#include "core/rm_gp.hh"
#include "core/rm_nd.hh"
#include "core/templates.hh"
#include "lint/lint.hh"
#include "san/state_space.hh"
#include "san/template.hh"
#include "util/cli.hh"
#include "util/strings.hh"

namespace {

using namespace gop;

/// What a registered model contributes to the battery: everything needed to
/// lint it end to end.
struct BatteryInput {
  san::SanModel* model = nullptr;
  std::vector<san::RewardStructure> rewards;
  std::vector<double> transient_times;    ///< preflighted instant-of-time grid
  std::vector<double> accumulated_times;  ///< preflighted interval-of-time grid
  bool steady_state = false;              ///< preflight the steady-state solve
};

/// One registered model's battery outcome: the composed findings report,
/// plus (under --prove) the standalone proof result for the summary/JSON.
struct ModelRun {
  std::string name;
  lint::Report report;
  std::optional<lint::ProofResult> proof;
  std::string bounds;  ///< rendered proof bounds (needs the model alive)
};

/// All three layers over one model, via the shared admission entry point
/// (lint/admission.hh — the same battery gop::serve gates requests on).
lint::Report run_battery(const BatteryInput& input, const lint::ModelLintOptions& options) {
  lint::AdmissionInput admission;
  admission.model = input.model;
  for (const san::RewardStructure& reward : input.rewards) admission.rewards.push_back(&reward);
  admission.transient_times = input.transient_times;
  admission.accumulated_times = input.accumulated_times;
  admission.steady_state = input.steady_state;
  lint::AdmissionOptions admission_options;
  admission_options.model_lint = options;
  return lint::admission_check(admission, admission_options);
}

ModelRun finish_run(const char* name, const BatteryInput& input,
                    const lint::ModelLintOptions& options, bool prove) {
  ModelRun run;
  run.name = name;
  if (prove) {
    lint::ProveOptions prove_options = options.prove_options;
    prove_options.probability_tolerance = options.probability_tolerance;
    run.proof = lint::prove_model(*input.model, prove_options);
    run.bounds = run.proof->bounds.to_string(*input.model);
  }
  run.report = run_battery(input, options);
  return run;
}

/// The model registry: name -> battery runner. New models (composed SANs,
/// user studies) register here to become `gop_lint --model=<name>` targets.
struct RegisteredModel {
  const char* name;
  std::function<ModelRun(const core::GsuParameters&, double phi, const lint::ModelLintOptions&,
                         bool prove)>
      run;
};

ModelRun run_rmgd(const core::GsuParameters& params, double phi,
                  const lint::ModelLintOptions& options, bool prove) {
  core::RmGd gd = core::build_rm_gd(params);
  BatteryInput input;
  input.model = &gd.model;
  input.rewards = {gd.reward_p_a1(), gd.reward_ih(), gd.reward_ihf(), gd.reward_itauh(),
                   gd.reward_detected()};
  input.transient_times = {phi};
  input.accumulated_times = {phi};
  return finish_run("rmgd", input, options, prove);
}

ModelRun run_rmgp(const core::GsuParameters& params, double /*phi*/,
                  const lint::ModelLintOptions& options, bool prove) {
  core::RmGp gp = core::build_rm_gp(params);
  BatteryInput input;
  input.model = &gp.model;
  input.rewards = {gp.reward_overhead_p1n(), gp.reward_overhead_p2()};
  input.steady_state = true;
  return finish_run("rmgp", input, options, prove);
}

ModelRun run_rmnd(const char* name, const core::GsuParameters& params, double phi, double mu_1,
                  const lint::ModelLintOptions& options, bool prove) {
  core::RmNd nd = core::build_rm_nd(params, mu_1);
  BatteryInput input;
  input.model = &nd.model;
  input.rewards = {nd.reward_no_failure()};
  input.transient_times = {params.theta - phi, params.theta};
  return finish_run(name, input, options, prove);
}

const RegisteredModel kRegistry[] = {
    {"rmgd",
     [](const core::GsuParameters& p, double phi, const lint::ModelLintOptions& o, bool prove) {
       return run_rmgd(p, phi, o, prove);
     }},
    {"rmgp",
     [](const core::GsuParameters& p, double phi, const lint::ModelLintOptions& o, bool prove) {
       return run_rmgp(p, phi, o, prove);
     }},
    {"rmnd-new",
     [](const core::GsuParameters& p, double phi, const lint::ModelLintOptions& o, bool prove) {
       return run_rmnd("rmnd-new", p, phi, p.mu_new, o, prove);
     }},
    {"rmnd-old",
     [](const core::GsuParameters& p, double phi, const lint::ModelLintOptions& o, bool prove) {
       return run_rmnd("rmnd-old", p, phi, p.mu_old, o, prove);
     }},
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string proofs_json(const std::vector<ModelRun>& runs) {
  std::string out = "[";
  bool first_model = true;
  for (const ModelRun& run : runs) {
    if (!run.proof) continue;
    if (!first_model) out += ',';
    first_model = false;
    const lint::ProofResult& proof = *run.proof;
    out += str_format(
        "{\"model\":\"%s\",\"fully_proved\":%s,\"proved\":%zu,\"refuted\":%zu,"
        "\"unprovable\":%zu,\"bounds\":\"%s\",\"verdicts\":[",
        json_escape(run.name).c_str(), proof.fully_proved ? "true" : "false",
        proof.count(lint::Verdict::kProved), proof.count(lint::Verdict::kRefuted),
        proof.count(lint::Verdict::kUnprovable), json_escape(run.bounds).c_str());
    bool first_verdict = true;
    for (const lint::PropertyVerdict& v : proof.verdicts) {
      if (!first_verdict) out += ',';
      first_verdict = false;
      out += str_format(
          "{\"property\":\"%s\",\"location\":\"%s\",\"verdict\":\"%s\",\"detail\":\"%s\"}",
          json_escape(v.property).c_str(), json_escape(v.location).c_str(),
          lint::verdict_name(v.verdict), json_escape(v.detail).c_str());
    }
    out += "]}";
  }
  return out + "]";
}

void print_proof_summary(const std::vector<ModelRun>& runs) {
  for (const ModelRun& run : runs) {
    if (!run.proof) continue;
    const lint::ProofResult& proof = *run.proof;
    std::printf("proof %-9s %s: %zu proved, %zu refuted, %zu unprovable\n", run.name.c_str(),
                proof.fully_proved ? "FULLY PROVED" : "incomplete",
                proof.count(lint::Verdict::kProved), proof.count(lint::Verdict::kRefuted),
                proof.count(lint::Verdict::kUnprovable));
    std::printf("      bounds %s\n", run.bounds.c_str());
    for (const lint::PropertyVerdict& v : proof.verdicts) {
      if (v.verdict == lint::Verdict::kProved) continue;
      std::printf("      %-10s %-14s %s: %s\n", lint::verdict_name(v.verdict),
                  v.property.c_str(), v.location.c_str(), v.detail.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("gop_lint", "static-analysis battery for the paper's SAN reward models");
  const core::GsuParameters defaults = core::GsuParameters::table3();
  flags.add_string("model", "all", "all | rmgd | rmgp | rmnd-new | rmnd-old")
      .add_string("template", "",
                  "lint a core::template_registry() family instead of --model")
      .add_string("set", "", "template parameter overrides, k=v[,k=v...]")
      .add_double("theta", defaults.theta, "hours to the next upgrade")
      .add_double("lambda", defaults.lambda, "message rate (1/h)")
      .add_double("mu_new", defaults.mu_new, "fault rate of the new version (1/h)")
      .add_double("mu_old", defaults.mu_old, "fault rate of the old version (1/h)")
      .add_double("coverage", defaults.coverage, "acceptance-test coverage")
      .add_double("p_ext", defaults.p_ext, "external-message probability")
      .add_double("alpha", defaults.alpha, "AT completion rate (1/h)")
      .add_double("beta", defaults.beta, "checkpoint completion rate (1/h)")
      .add_double("phi", 7000.0, "guarded-operation duration the preflight grids use")
      .add_bool("prove", false, "print the symbolic prover's per-model proof summary")
      .add_int("probe-budget", 20'000,
               "reachability-probe marking budget (0 disables probing: proofs only)")
      .add_bool("json", false, "emit the findings report as JSON")
      .add_bool("strict", false, "also fail (exit 3) on warning-severity findings");

  try {
    if (!flags.parse(argc, argv)) return 0;

    core::GsuParameters params;
    params.theta = flags.get_double("theta");
    params.lambda = flags.get_double("lambda");
    params.mu_new = flags.get_double("mu_new");
    params.mu_old = flags.get_double("mu_old");
    params.coverage = flags.get_double("coverage");
    params.p_ext = flags.get_double("p_ext");
    params.alpha = flags.get_double("alpha");
    params.beta = flags.get_double("beta");
    params.validate();
    const double phi = flags.get_double("phi");
    const std::string& which = flags.get_string("model");
    const bool prove = flags.get_bool("prove");
    const long long probe_budget = flags.get_int("probe-budget");
    if (probe_budget < 0) {
      std::fprintf(stderr, "--probe-budget must be >= 0\n");
      return 2;
    }
    lint::ModelLintOptions options;
    options.max_probe_markings = static_cast<size_t>(probe_budget);

    lint::Report report;
    std::vector<ModelRun> runs;
    const std::string& template_name = flags.get_string("template");
    if (!template_name.empty()) {
      // Template-registry instance: the model and chain layers run (there is
      // no request grid to preflight); --prove works exactly as for the
      // registered models. find/instantiate throw on an unknown family or a
      // bad assignment (exit 1 with the message).
      const san::tpl::Instance instance =
          core::template_registry()
              .find(template_name)
              .instantiate(san::tpl::parse_assignment_list(flags.get_string("set")));
      BatteryInput input;
      input.model = instance.model.get();
      input.rewards = instance.rewards;
      runs.push_back(finish_run(template_name.c_str(), input, options, prove));
      report.merge(runs.back().report);
    } else {
      bool matched = false;
      for (const RegisteredModel& entry : kRegistry) {
        if (which != "all" && which != entry.name) continue;
        matched = true;
        runs.push_back(entry.run(params, phi, options, prove));
        report.merge(runs.back().report);
      }
      if (!matched) {
        std::fprintf(stderr, "unknown model '%s' (try --help)\n", which.c_str());
        return 2;
      }
    }

    if (flags.get_bool("json")) {
      std::string json = report.to_json();
      if (prove) {
        // Splice the proofs section into the report object.
        json.pop_back();  // trailing '}'
        json += ",\"proofs\":" + proofs_json(runs) + "}";
      }
      std::printf("%s\n", json.c_str());
    } else {
      std::fputs(report.to_text().c_str(), stdout);
      if (prove) print_proof_summary(runs);
    }

    const bool gate_warnings = flags.get_bool("strict");
    if (report.has_errors()) return 3;
    if (gate_warnings && report.count(lint::Severity::kWarning) > 0) return 3;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
