// gop_lint — static-analysis battery for SAN reward models.
//
// Runs the gop::lint check layers (pre-generation model checks, generated-
// chain checks, solver preflight; see docs/static-analysis.md for the check
// catalog) over a registered model, or over all of the paper's constituent
// models, and reports structured findings.
//
//   gop_lint                          # all paper models, Table 3 parameters
//   gop_lint --model=rmgd --phi=7000  # one model, explicit grid point
//   gop_lint --json                   # machine-readable findings (CI gate)
//
// Exit codes: 0 no error findings (warnings/info allowed unless --strict),
// 1 runtime failure, 2 usage error, 3 findings at the gating severity.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/params.hh"
#include "core/rm_gd.hh"
#include "core/rm_gp.hh"
#include "core/rm_nd.hh"
#include "lint/lint.hh"
#include "san/state_space.hh"
#include "util/cli.hh"

namespace {

using namespace gop;

/// What a registered model contributes to the battery: everything needed to
/// lint it end to end.
struct BatteryInput {
  san::SanModel* model = nullptr;
  std::vector<san::RewardStructure> rewards;
  std::vector<double> transient_times;    ///< preflighted instant-of-time grid
  std::vector<double> accumulated_times;  ///< preflighted interval-of-time grid
  bool steady_state = false;              ///< preflight the steady-state solve
};

/// All three layers over one model: lint_model, generate + lint_chain +
/// lint_reward, then the solver preflights the model's measures need.
lint::Report run_battery(const BatteryInput& input) {
  lint::Report report = lint::lint_model(*input.model);
  if (report.has_errors()) return report;  // generation would throw on these

  const san::GeneratedChain chain = san::generate_state_space(*input.model);
  report.merge(lint::lint_chain(chain));
  for (const san::RewardStructure& reward : input.rewards) {
    report.merge(lint::lint_reward(chain, reward));
  }
  if (!input.transient_times.empty()) {
    report.merge(lint::preflight_transient(chain.ctmc(), input.transient_times, {},
                                           input.model->name()));
  }
  if (!input.accumulated_times.empty()) {
    report.merge(lint::preflight_accumulated(chain.ctmc(), input.accumulated_times, {},
                                             input.model->name()));
  }
  if (input.steady_state) {
    report.merge(lint::preflight_steady_state(chain.ctmc(), {}, input.model->name()));
  }
  return report;
}

/// The model registry: name -> battery runner. New models (composed SANs,
/// user studies) register here to become `gop_lint --model=<name>` targets.
struct RegisteredModel {
  const char* name;
  std::function<lint::Report(const core::GsuParameters&, double phi)> run;
};

lint::Report run_rmgd(const core::GsuParameters& params, double phi) {
  core::RmGd gd = core::build_rm_gd(params);
  BatteryInput input;
  input.model = &gd.model;
  input.rewards = {gd.reward_p_a1(), gd.reward_ih(), gd.reward_ihf(), gd.reward_itauh(),
                   gd.reward_detected()};
  input.transient_times = {phi};
  input.accumulated_times = {phi};
  return run_battery(input);
}

lint::Report run_rmgp(const core::GsuParameters& params, double /*phi*/) {
  core::RmGp gp = core::build_rm_gp(params);
  BatteryInput input;
  input.model = &gp.model;
  input.rewards = {gp.reward_overhead_p1n(), gp.reward_overhead_p2()};
  input.steady_state = true;
  return run_battery(input);
}

lint::Report run_rmnd(const core::GsuParameters& params, double phi, double mu_1) {
  core::RmNd nd = core::build_rm_nd(params, mu_1);
  BatteryInput input;
  input.model = &nd.model;
  input.rewards = {nd.reward_no_failure()};
  input.transient_times = {params.theta - phi, params.theta};
  return run_battery(input);
}

const RegisteredModel kRegistry[] = {
    {"rmgd", [](const core::GsuParameters& p, double phi) { return run_rmgd(p, phi); }},
    {"rmgp", [](const core::GsuParameters& p, double phi) { return run_rmgp(p, phi); }},
    {"rmnd-new",
     [](const core::GsuParameters& p, double phi) { return run_rmnd(p, phi, p.mu_new); }},
    {"rmnd-old",
     [](const core::GsuParameters& p, double phi) { return run_rmnd(p, phi, p.mu_old); }},
};

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("gop_lint", "static-analysis battery for the paper's SAN reward models");
  const core::GsuParameters defaults = core::GsuParameters::table3();
  flags.add_string("model", "all", "all | rmgd | rmgp | rmnd-new | rmnd-old")
      .add_double("theta", defaults.theta, "hours to the next upgrade")
      .add_double("lambda", defaults.lambda, "message rate (1/h)")
      .add_double("mu_new", defaults.mu_new, "fault rate of the new version (1/h)")
      .add_double("mu_old", defaults.mu_old, "fault rate of the old version (1/h)")
      .add_double("coverage", defaults.coverage, "acceptance-test coverage")
      .add_double("p_ext", defaults.p_ext, "external-message probability")
      .add_double("alpha", defaults.alpha, "AT completion rate (1/h)")
      .add_double("beta", defaults.beta, "checkpoint completion rate (1/h)")
      .add_double("phi", 7000.0, "guarded-operation duration the preflight grids use")
      .add_bool("json", false, "emit the findings report as JSON")
      .add_bool("strict", false, "also fail (exit 3) on warning-severity findings");

  try {
    if (!flags.parse(argc, argv)) return 0;

    core::GsuParameters params;
    params.theta = flags.get_double("theta");
    params.lambda = flags.get_double("lambda");
    params.mu_new = flags.get_double("mu_new");
    params.mu_old = flags.get_double("mu_old");
    params.coverage = flags.get_double("coverage");
    params.p_ext = flags.get_double("p_ext");
    params.alpha = flags.get_double("alpha");
    params.beta = flags.get_double("beta");
    params.validate();
    const double phi = flags.get_double("phi");
    const std::string& which = flags.get_string("model");

    lint::Report report;
    bool matched = false;
    for (const RegisteredModel& entry : kRegistry) {
      if (which != "all" && which != entry.name) continue;
      matched = true;
      report.merge(entry.run(params, phi));
    }
    if (!matched) {
      std::fprintf(stderr, "unknown model '%s' (try --help)\n", which.c_str());
      return 2;
    }

    if (flags.get_bool("json")) {
      std::printf("%s\n", report.to_json().c_str());
    } else {
      std::fputs(report.to_text().c_str(), stdout);
    }

    const bool gate_warnings = flags.get_bool("strict");
    if (report.has_errors()) return 3;
    if (gate_warnings && report.count(lint::Severity::kWarning) > 0) return 3;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
