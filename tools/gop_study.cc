// gop_study — command-line front end for the performability analysis.
//
// Modes (--mode=...):
//   sweep         Y(phi) over a grid                      (default)
//   optimum       optimal phi via golden-section search
//   constituents  the Figure-3 constituent measures over the grid
//   tornado       +/-20% one-factor sensitivity of Y at --phi
//   verdict       first-passage time-to-verdict quantiles of RMGd
//   approx        closed-form approximation vs exact Y over the grid
//   structural    a template-registry family swept over parameter axes
//                 crossed with the evaluation grid (docs/templates.md)
//
// All Table 3 parameters are flags; --csv switches the tabular output to
// CSV for plotting. Examples:
//
//   gop_study --mode=sweep --mu_new=5e-5 --points=21
//   gop_study --mode=optimum --alpha=2500 --beta=2500
//   gop_study --mode=tornado --phi=7000 --csv
//   gop_study --mode=structural --template=nproc --sweep-param=n=1:3:3
//             --horizon=20 --points=5        (one command line)
//   gop_study --mode=structural --template=rmgd --sweep-param='coverage=0.5|0.9'

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/approximation.hh"
#include "core/templates.hh"
#include "obs/obs.hh"
#include "core/performability.hh"
#include "core/sensitivity.hh"
#include "core/sweep.hh"
#include "markov/first_passage.hh"
#include "san/template.hh"
#include "util/cli.hh"
#include "util/error.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace {

using namespace gop;

void emit(const TextTable& table, bool csv) {
  std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
}

int run_sweep(const core::GsuParameters& params, size_t points, size_t threads, bool csv) {
  core::PerformabilityAnalyzer analyzer(params);
  std::fprintf(stderr, "rho1 = %.4f, rho2 = %.4f\n", analyzer.rho1(), analyzer.rho2());
  TextTable table({"phi", "Y", "E_W0", "E_Wphi", "Y_S1", "Y_S2", "gamma"});
  const core::SweepOptions sweep_options{.threads = threads};
  for (const auto& r :
       core::sweep_phi(analyzer, core::linspace(0.0, params.theta, points), sweep_options)) {
    table.begin_row()
        .add_double(r.phi, 6)
        .add_double(r.y, 6)
        .add_double(r.e_w0, 6)
        .add_double(r.e_wphi, 6)
        .add_double(r.y_s1, 6)
        .add_double(r.y_s2, 6)
        .add_double(r.gamma, 5);
  }
  emit(table, csv);
  return 0;
}

int run_optimum(const core::GsuParameters& params, size_t threads) {
  core::PerformabilityAnalyzer analyzer(params);
  core::OptimizeOptions options;
  options.grid_points = 41;
  options.phi_tolerance = 1.0;
  options.threads = threads;
  const core::OptimalPhi best = core::find_optimal_phi(analyzer, options);
  std::printf("optimal phi = %.1f h, Y = %.6f, beneficial = %s\n", best.phi, best.y,
              best.beneficial ? "yes" : "no");
  return 0;
}

int run_constituents(const core::GsuParameters& params, size_t points, bool csv) {
  core::PerformabilityAnalyzer analyzer(params);
  TextTable table({"phi", "P_A1", "Ih", "Itauh", "Itauh_literal", "Ihf", "P_nd_rest", "If"});
  for (double phi : core::linspace(0.0, params.theta, points)) {
    const core::ConstituentMeasures m = analyzer.constituents(phi);
    table.begin_row()
        .add_double(phi, 6)
        .add_double(m.p_a1_phi, 6)
        .add_double(m.i_h, 6)
        .add_double(m.i_tau_h, 6)
        .add_double(m.i_tau_h_literal, 6)
        .add_double(m.i_hf, 6)
        .add_double(m.p_nd_rest, 6)
        .add_double(m.i_f, 6);
  }
  emit(table, csv);
  return 0;
}

int run_tornado(const core::GsuParameters& params, double phi, bool csv) {
  TextTable table({"parameter", "low", "high", "Y_low", "Y_high", "swing"});
  for (const core::TornadoEntry& e : core::tornado_y(params, phi, 0.20)) {
    table.begin_row()
        .add(core::parameter_name(e.parameter))
        .add_double(e.low_value, 5)
        .add_double(e.high_value, 5)
        .add_double(e.y_low, 5)
        .add_double(e.y_high, 5)
        .add_double(e.swing(), 4);
  }
  emit(table, csv);
  return 0;
}

int run_verdict(const core::GsuParameters& params, bool csv) {
  const core::RmGd gd = core::build_rm_gd(params);
  const san::GeneratedChain chain = san::generate_state_space(gd.model);
  std::vector<bool> verdict(chain.state_count(), false);
  for (size_t s = 0; s < chain.state_count(); ++s) {
    const san::Marking& m = chain.states()[s];
    verdict[s] = m[gd.detected.index] == 1 || m[gd.failure.index] == 1;
  }
  const markov::FirstPassageSummary summary =
      markov::first_passage_summary(chain.ctmc(), verdict);
  std::printf("time to verdict: mean %.1f h, std %.1f h\n", summary.mean_time_to_absorption,
              summary.std_time_to_absorption);
  TextTable table({"quantile", "t [h]"});
  for (double p : {0.25, 0.5, 0.75, 0.9, 0.99}) {
    table.begin_row().add_double(p, 3).add_double(
        markov::first_passage_quantile(chain.ctmc(), verdict, p, 1e-4), 6);
  }
  emit(table, csv);
  return 0;
}

int run_approx(const core::GsuParameters& params, size_t points, bool csv) {
  core::PerformabilityAnalyzer analyzer(params);
  TextTable table({"phi", "Y_exact", "Y_approx", "rel_error"});
  for (double phi : core::linspace(0.0, params.theta, points)) {
    const double exact = analyzer.evaluate(phi).y;
    const double approx =
        core::approximate_y(params, phi, analyzer.rho1(), analyzer.rho2()).y;
    table.begin_row()
        .add_double(phi, 6)
        .add_double(exact, 6)
        .add_double(approx, 6)
        .add_double((approx - exact) / exact, 3);
  }
  emit(table, csv);
  return 0;
}

std::vector<std::string> split_list(const std::string& text, char sep) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find(sep, begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin) out.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

/// One --sweep-param entry: "k=a:b:n" (range; ints are rounded for int
/// parameters) or "k=v1|v2|..." (explicit values) or "k=v" (a single value).
core::StructuralAxis parse_axis(const san::tpl::Template& tpl, const std::string& entry) {
  const size_t eq = entry.find('=');
  GOP_REQUIRE(eq != std::string::npos && eq > 0,
              "--sweep-param entry '" + entry + "' is not of the form k=...");
  core::StructuralAxis axis;
  axis.param = entry.substr(0, eq);
  const san::tpl::ParamSpec* spec = tpl.find_param(axis.param);
  GOP_REQUIRE(spec != nullptr, "template '" + tpl.name() + "' has no parameter '" +
                                   axis.param + "'");
  const std::string rest = entry.substr(eq + 1);
  const std::vector<std::string> pieces = split_list(rest, '|');
  if (pieces.size() > 1) {
    for (const std::string& piece : pieces) {
      axis.values.push_back(san::tpl::ParamValue::parse(piece));
    }
    return axis;
  }
  const std::vector<std::string> range = split_list(rest, ':');
  if (range.size() == 3) {
    char* tail = nullptr;
    const double lo = std::strtod(range[0].c_str(), &tail);
    const double hi = std::strtod(range[1].c_str(), nullptr);
    const long long n = std::strtoll(range[2].c_str(), nullptr, 10);
    GOP_REQUIRE(n >= 1, "--sweep-param range '" + entry + "' needs n >= 1");
    const std::vector<double> grid =
        n == 1 ? std::vector<double>{lo} : core::linspace(lo, hi, static_cast<size_t>(n));
    for (double v : grid) {
      axis.values.push_back(spec->kind == san::tpl::ParamKind::kInt
                                ? san::tpl::ParamValue::of_int(std::llround(v))
                                : san::tpl::ParamValue::of_real(v));
    }
    return axis;
  }
  axis.values.push_back(san::tpl::ParamValue::parse(rest));
  return axis;
}

int run_structural(const CliFlags& flags, size_t points, size_t threads, bool csv) {
  const std::string& family = flags.get_string("template");
  GOP_REQUIRE(!family.empty(), "--mode=structural needs --template=<family>");
  const san::tpl::Template& tpl = core::template_registry().find(family);

  core::StructuralSweepSpec spec;
  spec.family = family;
  spec.base = san::tpl::parse_assignment_list(flags.get_string("set"));
  for (const std::string& entry : split_list(flags.get_string("sweep-param"), ',')) {
    spec.axes.push_back(parse_axis(tpl, entry));
  }
  for (const std::string& reward : split_list(flags.get_string("rewards"), ',')) {
    spec.rewards.push_back(reward);
  }
  const double horizon = flags.get_double("horizon");
  GOP_REQUIRE(horizon > 0.0, "--horizon must be positive");
  spec.phis = core::linspace(0.0, horizon, points);
  spec.threads = threads;

  const core::StructuralSweepResult result = core::structural_sweep(spec);

  const bool paper = core::is_performability_family(family);
  for (const core::StructuralCell& cell : result.cells) {
    std::fprintf(stderr, "cell %s: states=%zu engine=%s storage=%s chain=%016llx params=%016llx\n",
                 cell.label.c_str(), cell.states, cell.engine.c_str(), cell.storage.c_str(),
                 static_cast<unsigned long long>(cell.chain_hash),
                 static_cast<unsigned long long>(cell.params_hash));
  }

  std::vector<std::string> headers = {"cell", "t"};
  if (!result.cells.empty()) {
    for (const std::string& reward : result.cells.front().rewards) headers.push_back(reward);
  }
  if (paper) headers.push_back("Y");
  TextTable table(headers);
  for (const core::StructuralCell& cell : result.cells) {
    for (size_t i = 0; i < result.phis.size(); ++i) {
      auto& row = table.begin_row().add(cell.label).add_double(result.phis[i], 6);
      for (const std::vector<double>& series : cell.series) row.add_double(series[i], 6);
      if (paper) row.add_double(cell.performability[i].y, 6);
    }
  }
  emit(table, csv);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("gop_study", "performability studies of guarded-operation duration");
  const core::GsuParameters defaults = core::GsuParameters::table3();
  flags.add_string("mode", "sweep",
                   "sweep | optimum | constituents | tornado | verdict | approx | structural")
      .add_string("template", "", "template family for --mode=structural (docs/templates.md)")
      .add_string("set", "", "fixed template parameter overrides, k=v[,k=v...]")
      .add_string("sweep-param", "",
                  "structural axes, comma-separated: k=a:b:n (range), k=v1|v2 (values)")
      .add_string("rewards", "", "reward names to evaluate (default: the family's catalog)")
      .add_double("horizon", 20.0,
                  "evaluation-grid upper bound for structural mode (paper families: keep "
                  "within [0, theta]; the grid doubles as the phi grid)")
      .add_double("theta", defaults.theta, "hours to the next upgrade")
      .add_double("lambda", defaults.lambda, "message rate (1/h)")
      .add_double("mu_new", defaults.mu_new, "fault rate of the new version (1/h)")
      .add_double("mu_old", defaults.mu_old, "fault rate of the old version (1/h)")
      .add_double("coverage", defaults.coverage, "acceptance-test coverage")
      .add_double("p_ext", defaults.p_ext, "external-message probability")
      .add_double("alpha", defaults.alpha, "AT completion rate (1/h)")
      .add_double("beta", defaults.beta, "checkpoint completion rate (1/h)")
      .add_double("phi", 7000.0, "guarded-operation duration (tornado mode)")
      .add_int("points", 11, "grid points for sweep-style modes")
      .add_int("threads", 1, "worker threads for sweep/optimum (0 = GOP_THREADS or hardware)")
      .add_bool("csv", false, "emit CSV instead of an aligned table")
      .add_string("trace", "off",
                  "off | text | json: dump a gop::obs trace of the run to stderr");

  try {
    if (!flags.parse(argc, argv)) return 0;

    core::GsuParameters params;
    params.theta = flags.get_double("theta");
    params.lambda = flags.get_double("lambda");
    params.mu_new = flags.get_double("mu_new");
    params.mu_old = flags.get_double("mu_old");
    params.coverage = flags.get_double("coverage");
    params.p_ext = flags.get_double("p_ext");
    params.alpha = flags.get_double("alpha");
    params.beta = flags.get_double("beta");
    params.validate();

    const std::string& mode = flags.get_string("mode");
    const bool csv = flags.get_bool("csv");
    const size_t points = static_cast<size_t>(flags.get_int("points"));
    const size_t threads = static_cast<size_t>(flags.get_int("threads"));
    const double phi = flags.get_double("phi");

    const std::string& trace = flags.get_string("trace");
    if (trace != "off" && trace != "text" && trace != "json") {
      std::fprintf(stderr, "unknown --trace format '%s' (off | text | json)\n", trace.c_str());
      return 2;
    }
    obs::set_enabled(trace != "off");

    int status = 2;
    if (mode == "sweep") {
      status = run_sweep(params, points, threads, csv);
    } else if (mode == "optimum") {
      status = run_optimum(params, threads);
    } else if (mode == "constituents") {
      status = run_constituents(params, points, csv);
    } else if (mode == "tornado") {
      status = run_tornado(params, phi, csv);
    } else if (mode == "verdict") {
      status = run_verdict(params, csv);
    } else if (mode == "approx") {
      status = run_approx(params, points, csv);
    } else if (mode == "structural") {
      status = run_structural(flags, points, threads, csv);
    } else {
      std::fprintf(stderr, "unknown mode '%s' (try --help)\n", mode.c_str());
    }

    if (trace != "off") {
      const obs::Snapshot snapshot = obs::snapshot();
      const std::string rendered =
          trace == "json" ? obs::render_json(snapshot) : obs::render_text(snapshot);
      std::fputs(rendered.c_str(), stderr);
    }
    return status;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
