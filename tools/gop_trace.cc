// gop_trace — solver observability probe for the paper's three SAN models.
//
// Runs a fixed scenario per model with gop::obs tracing enabled and dumps
// the resulting trace (span tree, counters, gauges, solver events):
//
//   rmgd      transient + accumulated rewards, pointwise and as grid
//             sessions, through both the uniformization and dense-expm
//             engines (the Table 1 dependability model);
//   rmgp      steady-state rewards via the dispatcher plus the explicit
//             GTH / power / Gauss-Seidel engines (the Table 2 overhead
//             model — the only irreducible chain of the three);
//   rmnd-new  transient + accumulated no-failure rewards at theta-phi and
//   rmnd-old  theta (the Eq 14/21 normal-mode constituents).
//
// The default --model=all exercises every markov solver entry point
// (transient, accumulated, steady state, sessions, expm, uniformization);
// the footer reports which event kinds the run actually covered.
//
// Examples:
//   gop_trace                      # all models, human-readable report
//   gop_trace --model=rmgp --json  # machine-readable, one JSON document
//   gop_trace --jsonl              # JSON lines for log pipelines

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/params.hh"
#include "core/rm_gd.hh"
#include "core/rm_gp.hh"
#include "core/rm_nd.hh"
#include "obs/obs.hh"
#include "san/session.hh"
#include "san/state_space.hh"
#include "util/cli.hh"
#include "util/error.hh"

namespace {

using namespace gop;

/// Transient + accumulated solves on RMGd: pointwise entry points under both
/// engines, then the shared-grid sessions the analyzer's sweeps use.
void trace_rmgd(const core::GsuParameters& params, double phi) {
  GOP_OBS_SPAN("trace.rmgd");
  const core::RmGd gd = core::build_rm_gd(params);
  const san::GeneratedChain chain = san::generate_state_space(gd.model);

  // Table 3 rates make RMGd stiff (Lambda*t ~ 1.6e7 at phi = 7000 h) — the
  // very reason the dispatcher prefers the dense expm here — so the forced
  // uniformization runs use a short horizon with a sane Poisson window.
  const double t_uni = std::min(phi, 10.0);

  markov::TransientOptions uni;
  uni.method = markov::TransientMethod::kUniformization;
  markov::TransientOptions expm;
  expm.method = markov::TransientMethod::kMatrixExponential;
  (void)chain.instant_reward(gd.reward_ih(), phi);  // dispatcher (kAuto)
  (void)chain.instant_reward(gd.reward_ih(), t_uni, uni);
  (void)chain.instant_reward(gd.reward_ih(), phi, expm);

  markov::AccumulatedOptions acc_uni;
  acc_uni.method = markov::AccumulatedMethod::kUniformization;
  markov::AccumulatedOptions acc_expm;
  acc_expm.method = markov::AccumulatedMethod::kAugmentedExponential;
  (void)chain.accumulated_reward(gd.reward_itauh(), phi);
  (void)chain.accumulated_reward(gd.reward_itauh(), t_uni, acc_uni);
  (void)chain.accumulated_reward(gd.reward_itauh(), phi, acc_expm);

  san::GridSolveOptions grid;
  grid.transient = true;
  grid.accumulated = true;
  const san::ChainSession session =
      chain.solve_grid({0.25 * phi, 0.5 * phi, phi}, grid);
  (void)session.instant_reward_series(gd.reward_ih());
  (void)session.accumulated_reward_series(gd.reward_itauh());
}

/// Steady-state solves on RMGp (the only irreducible chain): the dispatcher
/// plus each explicit engine.
void trace_rmgp(const core::GsuParameters& params) {
  GOP_OBS_SPAN("trace.rmgp");
  const core::RmGp gp = core::build_rm_gp(params);
  const san::GeneratedChain chain = san::generate_state_space(gp.model);

  (void)chain.steady_state_reward(gp.reward_overhead_p1n());  // dispatcher
  for (const markov::SteadyStateMethod method :
       {markov::SteadyStateMethod::kGth, markov::SteadyStateMethod::kPower,
        markov::SteadyStateMethod::kGaussSeidel}) {
    markov::SteadyStateOptions options;
    options.method = method;
    (void)chain.steady_state_reward(gp.reward_overhead_p2(), options);
  }
}

/// Transient + accumulated no-failure rewards on RMNd at the two horizons
/// the analyzer evaluates (theta - phi and theta).
void trace_rmnd(const core::GsuParameters& params, double mu_1, double phi,
                const char* span_name) {
  GOP_OBS_SPAN(span_name);
  const core::RmNd nd = core::build_rm_nd(params, mu_1);
  const san::GeneratedChain chain = san::generate_state_space(nd.model);

  (void)chain.instant_reward(nd.reward_no_failure(), params.theta - phi);
  (void)chain.instant_reward(nd.reward_no_failure(), params.theta);
  (void)chain.accumulated_reward(nd.reward_no_failure(), params.theta - phi);

  const san::ChainSession session =
      chain.solve_grid({params.theta - phi, params.theta});
  (void)session.instant_reward_series(nd.reward_no_failure());
}

void print_coverage(const obs::Snapshot& snapshot) {
  std::set<std::string> kinds;
  for (const obs::SolverEvent& event : snapshot.events) {
    kinds.insert(obs::to_string(event.kind));
  }
  std::string line = "solver entry points covered:";
  for (const std::string& kind : kinds) line += " " + kind;
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("gop_trace", "solver observability traces of the paper's SAN models");
  const core::GsuParameters defaults = core::GsuParameters::table3();
  flags.add_string("model", "all", "rmgd | rmgp | rmnd-new | rmnd-old | all")
      .add_double("theta", defaults.theta, "hours to the next upgrade")
      .add_double("phi", 7000.0, "guarded-operation duration for the scenario")
      .add_bool("json", false, "emit one JSON document instead of the text report")
      .add_bool("jsonl", false, "emit JSON lines (one object per record)");

  try {
    if (!flags.parse(argc, argv)) return 0;

    core::GsuParameters params = defaults;
    params.theta = flags.get_double("theta");
    params.validate();
    const double phi = flags.get_double("phi");
    GOP_REQUIRE(phi >= 0.0 && phi <= params.theta, "need 0 <= phi <= theta");

    const std::string& model = flags.get_string("model");
    const bool want_rmgd = model == "all" || model == "rmgd";
    const bool want_rmgp = model == "all" || model == "rmgp";
    const bool want_nd_new = model == "all" || model == "rmnd-new" || model == "rmnd";
    const bool want_nd_old = model == "all" || model == "rmnd-old" || model == "rmnd";
    if (!want_rmgd && !want_rmgp && !want_nd_new && !want_nd_old) {
      std::fprintf(stderr, "unknown model '%s' (try --help)\n", model.c_str());
      return 2;
    }

    obs::reset();
    obs::set_enabled(true);
    if (want_rmgd) trace_rmgd(params, phi);
    if (want_rmgp) trace_rmgp(params);
    if (want_nd_new) trace_rmnd(params, params.mu_new, phi, "trace.rmnd_new");
    if (want_nd_old) trace_rmnd(params, params.mu_old, phi, "trace.rmnd_old");
    obs::set_enabled(false);

    const obs::Snapshot snapshot = obs::snapshot();
    if (flags.get_bool("jsonl")) {
      std::fputs(obs::render_jsonl(snapshot).c_str(), stdout);
    } else if (flags.get_bool("json")) {
      std::fputs(obs::render_json(snapshot).c_str(), stdout);
    } else {
      std::fputs(obs::render_text(snapshot).c_str(), stdout);
    }
    print_coverage(snapshot);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
