#include "linalg/csr_matrix.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace gop::linalg {

CooBuilder::CooBuilder(size_t rows, size_t cols) : rows_(rows), cols_(cols) {}

void CooBuilder::add(size_t row, size_t col, double value) {
  GOP_REQUIRE(row < rows_ && col < cols_, "CooBuilder::add out of range");
  if (value == 0.0) return;
  entries_.push_back(Triplet{row, col, value});
}

CsrMatrix CooBuilder::build() const {
  std::vector<Triplet> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  std::vector<size_t> row_ptr(rows_ + 1, 0);
  std::vector<size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(sorted.size());
  values.reserve(sorted.size());

  for (size_t i = 0; i < sorted.size();) {
    size_t j = i;
    double sum = 0.0;
    while (j < sorted.size() && sorted[j].row == sorted[i].row && sorted[j].col == sorted[i].col) {
      sum += sorted[j].value;
      ++j;
    }
    if (sum != 0.0) {
      ++row_ptr[sorted[i].row + 1];
      col_idx.push_back(sorted[i].col);
      values.push_back(sum);
    }
    i = j;
  }
  for (size_t r = 0; r < rows_; ++r) row_ptr[r + 1] += row_ptr[r];
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx), std::move(values));
}

CsrMatrix::CsrMatrix(size_t rows, size_t cols, std::vector<size_t> row_ptr,
                     std::vector<size_t> col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  GOP_REQUIRE(row_ptr_.size() == rows_ + 1, "row_ptr must have rows()+1 entries");
  GOP_REQUIRE(col_idx_.size() == values_.size(), "col_idx/values length mismatch");
  GOP_REQUIRE(row_ptr_.back() == values_.size(), "row_ptr.back() must equal nnz");
  for (size_t c : col_idx_) GOP_REQUIRE(c < cols_, "column index out of range");
}

CsrMatrix CsrMatrix::from_dense(const DenseMatrix& dense, double drop_tol) {
  CooBuilder builder(dense.rows(), dense.cols());
  for (size_t r = 0; r < dense.rows(); ++r)
    for (size_t c = 0; c < dense.cols(); ++c)
      if (std::abs(dense(r, c)) > drop_tol) builder.add(r, c, dense(r, c));
  return builder.build();
}

std::vector<double> CsrMatrix::left_multiply(const std::vector<double>& x) const {
  std::vector<double> y;
  left_multiply(x, y);
  return y;
}

void CsrMatrix::left_multiply(const std::vector<double>& x, std::vector<double>& y) const {
  GOP_REQUIRE(x.size() == rows_, "left_multiply: vector length must equal rows()");
  GOP_REQUIRE(&x != &y, "left_multiply: x and y must not alias");
  y.assign(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) y[col_idx_[k]] += xr * values_[k];
  }
}

std::vector<double> CsrMatrix::right_multiply(const std::vector<double>& x) const {
  GOP_REQUIRE(x.size() == cols_, "right_multiply: vector length must equal cols()");
  std::vector<double> y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) acc += values_[k] * x[col_idx_[k]];
    y[r] = acc;
  }
  return y;
}

double CsrMatrix::at(size_t row, size_t col) const {
  GOP_REQUIRE(row < rows_ && col < cols_, "CsrMatrix::at out of range");
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<size_t>(it - col_idx_.begin())];
}

double CsrMatrix::row_sum(size_t row) const {
  GOP_REQUIRE(row < rows_, "row_sum out of range");
  double sum = 0.0;
  for (size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) sum += values_[k];
  return sum;
}

double CsrMatrix::norm_inf() const {
  double best = 0.0;
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) sum += std::abs(values_[k]);
    best = std::max(best, sum);
  }
  return best;
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) out(r, col_idx_[k]) += values_[k];
  return out;
}

CsrMatrix CsrMatrix::transpose() const {
  CooBuilder builder(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) builder.add(col_idx_[k], r, values_[k]);
  return builder.build();
}

CsrMatrix CsrMatrix::scaled(double s) const {
  CsrMatrix out = *this;
  for (double& v : out.values_) v *= s;
  return out;
}

}  // namespace gop::linalg
