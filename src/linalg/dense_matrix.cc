#include "linalg/dense_matrix.hh"

#include <cmath>
#include <limits>
#include <new>
#include <sstream>

#include "fi/fi.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::linalg {

DenseMatrix::DenseMatrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  if (GOP_FI_POINT(fi::SiteId::kDenseAllocFail)) throw std::bad_alloc();
}

DenseMatrix DenseMatrix::from_rows(const std::vector<std::vector<double>>& rows) {
  GOP_REQUIRE(!rows.empty(), "from_rows needs at least one row");
  const size_t cols = rows.front().size();
  DenseMatrix m(rows.size(), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    GOP_REQUIRE(rows[r].size() == cols, "all rows must have the same length");
    for (size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

DenseMatrix DenseMatrix::identity(size_t n) {
  DenseMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

DenseMatrix DenseMatrix::operator+(const DenseMatrix& other) const {
  DenseMatrix out = *this;
  out += other;
  return out;
}

DenseMatrix DenseMatrix::operator-(const DenseMatrix& other) const {
  GOP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "dimension mismatch in operator-");
  DenseMatrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

DenseMatrix& DenseMatrix::operator+=(const DenseMatrix& other) {
  GOP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "dimension mismatch in operator+=");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

DenseMatrix DenseMatrix::operator*(const DenseMatrix& other) const {
  GOP_REQUIRE(cols_ == other.rows_, "dimension mismatch in operator*");
  DenseMatrix out(rows_, other.cols_);
  // i-k-j loop order keeps the inner loop contiguous for both operands.
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* brow = &other.data_[k * other.cols_];
      double* orow = &out.data_[i * other.cols_];
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  if (!out.data_.empty()) {
    if (GOP_FI_POINT(fi::SiteId::kDenseMultiplyNan)) {
      out.data_[0] = std::numeric_limits<double>::quiet_NaN();
    }
    if (GOP_FI_POINT(fi::SiteId::kDenseMultiplyInf)) {
      out.data_[0] = std::numeric_limits<double>::infinity();
    }
  }
  return out;
}

DenseMatrix& DenseMatrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

DenseMatrix DenseMatrix::operator*(double scalar) const {
  DenseMatrix out = *this;
  out *= scalar;
  return out;
}

std::vector<double> DenseMatrix::left_multiply(const std::vector<double>& x) const {
  GOP_REQUIRE(x.size() == rows_, "left_multiply: vector length must equal rows()");
  std::vector<double> y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) y[c] += xr * row[c];
  }
  return y;
}

std::vector<double> DenseMatrix::right_multiply(const std::vector<double>& x) const {
  GOP_REQUIRE(x.size() == cols_, "right_multiply: vector length must equal cols()");
  std::vector<double> y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

double DenseMatrix::norm_inf() const {
  double best = 0.0;
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += std::abs((*this)(r, c));
    best = std::max(best, sum);
  }
  return best;
}

double DenseMatrix::norm_max() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

std::string DenseMatrix::to_string(int precision) const {
  std::ostringstream os;
  for (size_t r = 0; r < rows_; ++r) {
    os << '[';
    for (size_t c = 0; c < cols_; ++c) {
      os << format_compact((*this)(r, c), precision);
      if (c + 1 != cols_) os << ", ";
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace gop::linalg
