#include "linalg/dense_matrix.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <new>
#include <sstream>

#include "fi/fi.hh"
#include "util/error.hh"
#include "util/strings.hh"

// No-aliasing hint for the multiply kernels: the public entry points enforce
// that the destination never aliases an operand, so the inner loops may keep
// B rows and C rows in registers across iterations.
#if defined(__GNUC__) || defined(__clang__)
#define GOP_RESTRICT __restrict__
#else
#define GOP_RESTRICT
#endif

namespace gop::linalg {

DenseMatrix::DenseMatrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  if (GOP_FI_POINT(fi::SiteId::kDenseAllocFail)) throw std::bad_alloc();
}

DenseMatrix DenseMatrix::from_rows(const std::vector<std::vector<double>>& rows) {
  GOP_REQUIRE(!rows.empty(), "from_rows needs at least one row");
  const size_t cols = rows.front().size();
  DenseMatrix m(rows.size(), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    GOP_REQUIRE(rows[r].size() == cols, "all rows must have the same length");
    for (size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

DenseMatrix DenseMatrix::identity(size_t n) {
  DenseMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

DenseMatrix DenseMatrix::operator+(const DenseMatrix& other) const {
  DenseMatrix out = *this;
  out += other;
  return out;
}

DenseMatrix DenseMatrix::operator-(const DenseMatrix& other) const {
  GOP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "dimension mismatch in operator-");
  DenseMatrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

DenseMatrix& DenseMatrix::operator+=(const DenseMatrix& other) {
  GOP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "dimension mismatch in operator+=");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

DenseMatrix DenseMatrix::operator*(const DenseMatrix& other) const {
  DenseMatrix out;
  multiply_into(out, *this, other);
  return out;
}

DenseMatrix& DenseMatrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

DenseMatrix DenseMatrix::operator*(double scalar) const {
  DenseMatrix out = *this;
  out *= scalar;
  return out;
}

std::vector<double> DenseMatrix::left_multiply(const std::vector<double>& x) const {
  GOP_REQUIRE(x.size() == rows_, "left_multiply: vector length must equal rows()");
  std::vector<double> y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) y[c] += xr * row[c];
  }
  return y;
}

std::vector<double> DenseMatrix::right_multiply(const std::vector<double>& x) const {
  GOP_REQUIRE(x.size() == cols_, "right_multiply: vector length must equal cols()");
  std::vector<double> y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

double DenseMatrix::norm_inf() const {
  double best = 0.0;
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += std::abs((*this)(r, c));
    best = std::max(best, sum);
  }
  return best;
}

double DenseMatrix::norm_max() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

std::string DenseMatrix::to_string(int precision) const {
  std::ostringstream os;
  for (size_t r = 0; r < rows_; ++r) {
    os << '[';
    for (size_t c = 0; c < cols_; ++c) {
      os << format_compact((*this)(r, c), precision);
      if (c + 1 != cols_) os << ", ";
    }
    os << "]\n";
  }
  return os.str();
}

bool DenseMatrix::reshape_uninitialized(size_t rows, size_t cols) {
  const size_t needed = rows * cols;
  const bool grew = needed > data_.capacity();
  if (grew && GOP_FI_POINT(fi::SiteId::kDenseAllocFail)) throw std::bad_alloc();
  data_.resize(needed);
  rows_ = rows;
  cols_ = cols;
  return grew;
}

namespace {

/// The register-level core shared by every multiply kernel: one strip of C
/// rows, accumulating `crow op= a(i, k) * brow(k)` for k in [k0, k1) with the
/// inner j loop contiguous over [j0, j1). Per output element this is a single
/// memory accumulator updated in ascending-k order, with the historical
/// `a == 0.0` skip — the exact operation sequence of the original naive
/// kernel, which is what the bit-identity contract is anchored to (structural
/// zeros contribute `acc +/-= 0.0 * b`, which cannot change the accumulator's
/// bits for finite inputs; skipping them is a pure strength reduction).
template <bool kSubtract>
inline void gemm_axpy_row(double* GOP_RESTRICT crow, const double* GOP_RESTRICT brow, double av,
                          size_t j0, size_t j1) {
  if constexpr (kSubtract) {
    for (size_t j = j0; j < j1; ++j) crow[j] -= av * brow[j];
  } else {
    for (size_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
  }
}

template <bool kSubtract>
inline void gemm_strip(double* GOP_RESTRICT c, const double* GOP_RESTRICT a,
                       const double* GOP_RESTRICT b, size_t rows, size_t a_cols, size_t b_cols,
                       size_t k0, size_t k1, size_t j0, size_t j1) {
  for (size_t i = 0; i < rows; ++i) {
    double* crow = c + i * b_cols;
    const double* arow = a + i * a_cols;
    // k is unrolled by two so every pass over the C row folds two rank-1
    // contributions: the two adds per element stay strictly sequential
    // (explicit parentheses, no contraction on this target), so the
    // per-element accumulation order — and therefore every bit of the result
    // — is the same as the one-k-at-a-time loop; only the number of C-row
    // load/store passes halves.
    size_t k = k0;
    for (; k + 1 < k1; k += 2) {
      const double a0 = arow[k];
      const double a1 = arow[k + 1];
      const double* b0 = b + k * b_cols;
      const double* b1 = b0 + b_cols;
      if (a0 == 0.0) {
        if (a1 != 0.0) gemm_axpy_row<kSubtract>(crow, b1, a1, j0, j1);
      } else if (a1 == 0.0) {
        gemm_axpy_row<kSubtract>(crow, b0, a0, j0, j1);
      } else if constexpr (kSubtract) {
        for (size_t j = j0; j < j1; ++j) crow[j] = (crow[j] - a0 * b0[j]) - a1 * b1[j];
      } else {
        for (size_t j = j0; j < j1; ++j) crow[j] = (crow[j] + a0 * b0[j]) + a1 * b1[j];
      }
    }
    if (k < k1) {
      const double av = arow[k];
      if (av != 0.0) gemm_axpy_row<kSubtract>(crow, b + k * b_cols, av, j0, j1);
    }
  }
}

/// Fully-unrolled kernel for tiny square multiplies (the Padé/squaring hot
/// path runs at the chain dimension, typically < 16). The trip counts are
/// compile-time constants, so the compiler keeps the whole accumulator row in
/// registers across every k step instead of storing/reloading C per k pair.
///
/// The `ak == 0.0` skip is kept: it is the same strength reduction as in
/// gemm_strip (per-element accumulation order unchanged, so bit-identical),
/// and it is a large win in practice — the paper's failure models generate
/// triangular-structured chains whose exp(Qt) keeps most entries at exact
/// zero through every squaring (measured 1.2-2x at n = 7, docs/performance.md).
///
/// kInit == true means "dst is logically zero-filled": each accumulator
/// starts at +0.0 instead of reading the destination, which lets
/// multiply_into skip its separate fill pass over C. Skipped-k rows leave the
/// accumulator at +0.0, exactly as the fill-then-accumulate path would.
template <int N, bool kSubtract, bool kInit = false>
void gemm_fixed(double* GOP_RESTRICT c, const double* GOP_RESTRICT a,
                const double* GOP_RESTRICT b) {
  static_assert(!(kInit && kSubtract), "init form only exists for the additive kernel");
  for (int i = 0; i < N; ++i) {
    const double* GOP_RESTRICT arow = a + i * N;
    double acc[N];
    if constexpr (kInit) {
      for (int j = 0; j < N; ++j) acc[j] = 0.0;
    } else {
      for (int j = 0; j < N; ++j) acc[j] = c[i * N + j];
    }
    for (int k = 0; k < N; ++k) {
      const double ak = arow[k];
      if (ak == 0.0) continue;
      const double* GOP_RESTRICT bk = b + k * N;
      if constexpr (kSubtract) {
        for (int j = 0; j < N; ++j) acc[j] -= ak * bk[j];
      } else {
        for (int j = 0; j < N; ++j) acc[j] += ak * bk[j];
      }
    }
    for (int j = 0; j < N; ++j) c[i * N + j] = acc[j];
  }
}

/// Largest square size routed to gemm_fixed. Measured on the reference
/// x86-64 container (docs/performance.md): 1.25-1.6x over gemm_strip for
/// n in [1, 15] except n == 8, where the power-of-two row stride provokes
/// store-forwarding stalls and the generic strip wins (n == 16 is worse
/// still, hence the cap).
constexpr size_t kFixedGemmMax = 15;

template <bool kSubtract, bool kInit = false>
bool gemm_fixed_dispatch(double* c, const double* a, const double* b, size_t n) {
  switch (n) {
      // clang-format off
    case 1: gemm_fixed<1, kSubtract, kInit>(c, a, b); return true;
    case 2: gemm_fixed<2, kSubtract, kInit>(c, a, b); return true;
    case 3: gemm_fixed<3, kSubtract, kInit>(c, a, b); return true;
    case 4: gemm_fixed<4, kSubtract, kInit>(c, a, b); return true;
    case 5: gemm_fixed<5, kSubtract, kInit>(c, a, b); return true;
    case 6: gemm_fixed<6, kSubtract, kInit>(c, a, b); return true;
    case 7: gemm_fixed<7, kSubtract, kInit>(c, a, b); return true;
    case 9: gemm_fixed<9, kSubtract, kInit>(c, a, b); return true;
    case 10: gemm_fixed<10, kSubtract, kInit>(c, a, b); return true;
    case 11: gemm_fixed<11, kSubtract, kInit>(c, a, b); return true;
    case 12: gemm_fixed<12, kSubtract, kInit>(c, a, b); return true;
    case 13: gemm_fixed<13, kSubtract, kInit>(c, a, b); return true;
    case 14: gemm_fixed<14, kSubtract, kInit>(c, a, b); return true;
    case 15: gemm_fixed<15, kSubtract, kInit>(c, a, b); return true;
      // clang-format on
    default:
      return false;
  }
}

/// True when (dst, a, b) is a square multiply small enough for gemm_fixed.
bool fixed_gemm_eligible(const DenseMatrix& a, const DenseMatrix& b) {
  return a.rows() == a.cols() && b.rows() == b.cols() && a.rows() == b.rows() &&
         a.rows() <= kFixedGemmMax && a.rows() != 8;
}

/// The fault-injection sites every multiply kernel reports through, fixed
/// dispatch path included (site IDs are append-only contract, fi/sites.hh).
void inject_multiply_faults(DenseMatrix& dst) {
  if (dst.data().empty()) return;
  if (GOP_FI_POINT(fi::SiteId::kDenseMultiplyNan)) {
    dst.data()[0] = std::numeric_limits<double>::quiet_NaN();
  }
  if (GOP_FI_POINT(fi::SiteId::kDenseMultiplyInf)) {
    dst.data()[0] = std::numeric_limits<double>::infinity();
  }
}

/// Cache-blocking thresholds (docs/performance.md): the plain i-k-j kernel is
/// fastest while B stays resident in L2; beyond that the (k, j)-tiled
/// traversal keeps a kKBlock x kJBlock panel of B hot across all rows of C.
/// Blocking is a pure loop interchange — k blocks ascend, j blocks partition
/// independent output columns — so per-element summation order is unchanged.
constexpr size_t kBlockThreshold = 512;  // min(b_rows, b_cols) above which we tile
constexpr size_t kKBlock = 128;
constexpr size_t kJBlock = 512;

template <bool kSubtract>
void gemm_accumulate(DenseMatrix& dst, const DenseMatrix& a, const DenseMatrix& b) {
  const size_t rows = a.rows();
  const size_t inner = a.cols();
  const size_t cols = b.cols();
  double* c = dst.data().data();
  const double* ap = a.data().data();
  const double* bp = b.data().data();
  if (fixed_gemm_eligible(a, b) && gemm_fixed_dispatch<kSubtract>(c, ap, bp, cols)) {
    // handled by the fully-unrolled fixed-size kernel
  } else if (inner < kBlockThreshold || cols < kBlockThreshold) {
    gemm_strip<kSubtract>(c, ap, bp, rows, inner, cols, 0, inner, 0, cols);
  } else {
    for (size_t k0 = 0; k0 < inner; k0 += kKBlock) {
      const size_t k1 = std::min(inner, k0 + kKBlock);
      for (size_t j0 = 0; j0 < cols; j0 += kJBlock) {
        gemm_strip<kSubtract>(c, ap, bp, rows, inner, cols, k0, k1, j0,
                              std::min(cols, j0 + kJBlock));
      }
    }
  }
  inject_multiply_faults(dst);
}

void check_multiply_shapes(const DenseMatrix& dst, const DenseMatrix& a, const DenseMatrix& b) {
  GOP_REQUIRE(a.cols() == b.rows(), "dimension mismatch in multiply");
  GOP_REQUIRE(dst.data().data() != a.data().data() && dst.data().data() != b.data().data(),
              "multiply destination must not alias an operand");
}

}  // namespace

void multiply_into(DenseMatrix& dst, const DenseMatrix& a, const DenseMatrix& b) {
  check_multiply_shapes(dst, a, b);
  dst.reshape_uninitialized(a.rows(), b.cols());
  if (fixed_gemm_eligible(a, b) &&
      gemm_fixed_dispatch<false, true>(dst.data().data(), a.data().data(), b.data().data(),
                                       a.rows())) {
    inject_multiply_faults(dst);
    return;
  }
  std::fill(dst.data().begin(), dst.data().end(), 0.0);
  gemm_accumulate<false>(dst, a, b);
}

void multiply_add_into(DenseMatrix& dst, const DenseMatrix& a, const DenseMatrix& b) {
  check_multiply_shapes(dst, a, b);
  GOP_REQUIRE(dst.rows() == a.rows() && dst.cols() == b.cols(),
              "multiply_add_into: destination shape mismatch");
  gemm_accumulate<false>(dst, a, b);
}

void multiply_sub_into(DenseMatrix& dst, const DenseMatrix& a, const DenseMatrix& b) {
  check_multiply_shapes(dst, a, b);
  GOP_REQUIRE(dst.rows() == a.rows() && dst.cols() == b.cols(),
              "multiply_sub_into: destination shape mismatch");
  gemm_accumulate<true>(dst, a, b);
}

void copy_into(DenseMatrix& dst, const DenseMatrix& a) {
  if (&dst == &a) return;
  dst.reshape_uninitialized(a.rows(), a.cols());
  std::copy(a.data().begin(), a.data().end(), dst.data().begin());
}

void scale_copy_into(DenseMatrix& dst, const DenseMatrix& a, double alpha) {
  GOP_REQUIRE(&dst != &a, "scale_copy_into destination must not alias the source");
  dst.reshape_uninitialized(a.rows(), a.cols());
  const double* src = a.data().data();
  double* out = dst.data().data();
  for (size_t i = 0; i < a.data().size(); ++i) out[i] = src[i] * alpha;
}

void add_scaled(DenseMatrix& dst, double alpha, const DenseMatrix& a) {
  GOP_REQUIRE(dst.rows() == a.rows() && dst.cols() == a.cols(),
              "dimension mismatch in add_scaled");
  const double* src = a.data().data();
  double* out = dst.data().data();
  for (size_t i = 0; i < a.data().size(); ++i) out[i] += src[i] * alpha;
}

void weighted_sum3_into(DenseMatrix& dst, double c1, const DenseMatrix& m1, double c2,
                        const DenseMatrix& m2, double c3, const DenseMatrix& m3) {
  GOP_REQUIRE(m1.rows() == m2.rows() && m1.cols() == m2.cols() && m1.rows() == m3.rows() &&
                  m1.cols() == m3.cols(),
              "dimension mismatch in weighted_sum3_into");
  GOP_REQUIRE(&dst != &m1 && &dst != &m2 && &dst != &m3,
              "weighted_sum3_into destination must not alias a source");
  dst.reshape_uninitialized(m1.rows(), m1.cols());
  const double* p1 = m1.data().data();
  const double* p2 = m2.data().data();
  const double* p3 = m3.data().data();
  double* out = dst.data().data();
  for (size_t i = 0; i < m1.data().size(); ++i) {
    out[i] = ((p1[i] * c1) + p2[i] * c2) + p3[i] * c3;
  }
}

void add_weighted3(DenseMatrix& dst, double c1, const DenseMatrix& m1, double c2,
                   const DenseMatrix& m2, double c3, const DenseMatrix& m3) {
  GOP_REQUIRE(dst.rows() == m1.rows() && dst.cols() == m1.cols() && m1.rows() == m2.rows() &&
                  m1.cols() == m2.cols() && m1.rows() == m3.rows() && m1.cols() == m3.cols(),
              "dimension mismatch in add_weighted3");
  const double* p1 = m1.data().data();
  const double* p2 = m2.data().data();
  const double* p3 = m3.data().data();
  double* out = dst.data().data();
  for (size_t i = 0; i < dst.data().size(); ++i) {
    out[i] = ((out[i] + p1[i] * c1) + p2[i] * c2) + p3[i] * c3;
  }
}

void add_to_diagonal(DenseMatrix& dst, double alpha) {
  GOP_REQUIRE(dst.square(), "add_to_diagonal requires a square matrix");
  for (size_t i = 0; i < dst.rows(); ++i) dst(i, i) += alpha;
}

void subtract_into(DenseMatrix& dst, const DenseMatrix& a, const DenseMatrix& b) {
  GOP_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(), "dimension mismatch in subtract_into");
  dst.reshape_uninitialized(a.rows(), a.cols());
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* out = dst.data().data();
  for (size_t i = 0; i < a.data().size(); ++i) out[i] = pa[i] - pb[i];
}

void detail::gemm_strip_sub(double* c, const double* a, const double* b, size_t rows, size_t lda,
                            size_t ldcb, size_t k0, size_t k1, size_t j0, size_t j1) {
  gemm_strip<true>(c, a, b, rows, lda, ldcb, k0, k1, j0, j1);
}

void add_into(DenseMatrix& dst, const DenseMatrix& a, const DenseMatrix& b) {
  GOP_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(), "dimension mismatch in add_into");
  dst.reshape_uninitialized(a.rows(), a.cols());
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* out = dst.data().data();
  for (size_t i = 0; i < a.data().size(); ++i) out[i] = pa[i] + pb[i];
}

}  // namespace gop::linalg
