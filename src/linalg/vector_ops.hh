#pragma once

/// \file vector_ops.hh
/// Free-function kernels on std::vector<double> used by the solvers.

#include <vector>

namespace gop::linalg {

/// y += a * x
void axpy(double a, const std::vector<double>& x, std::vector<double>& y);

double dot(const std::vector<double>& x, const std::vector<double>& y);

/// Sum of entries.
double sum(const std::vector<double>& x);

/// max |x_i|
double norm_inf(const std::vector<double>& x);

/// sum |x_i|
double norm_1(const std::vector<double>& x);

/// max |x_i - y_i|
double max_abs_diff(const std::vector<double>& x, const std::vector<double>& y);

void scale(std::vector<double>& x, double a);

/// Scales so entries sum to 1. Requires a strictly positive sum.
void normalize_probability(std::vector<double>& x);

/// True when every entry is within `tol` of being in [0,1] and the entries
/// sum to 1 within `tol`. Used by tests and internal sanity checks.
bool is_probability_vector(const std::vector<double>& x, double tol = 1e-9);

}  // namespace gop::linalg
