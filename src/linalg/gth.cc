#include "linalg/gth.hh"

#include <cmath>

#include "util/error.hh"

namespace gop::linalg {

std::vector<double> gth_stationary_ctmc(const DenseMatrix& q) {
  GOP_REQUIRE(q.square(), "GTH requires a square generator");
  const size_t n = q.rows();
  GOP_REQUIRE(n >= 1, "GTH requires a non-empty generator");
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < n; ++c)
      GOP_REQUIRE(r == c || q(r, c) >= 0.0, "generator off-diagonals must be non-negative");

  if (n == 1) return {1.0};

  // GTH elimination works only with the off-diagonal entries; the "departure"
  // rate of a partially eliminated state is recomputed as a sum (never a
  // difference), which is what makes the algorithm subtraction-free and
  // numerically exact to relative roundoff.
  DenseMatrix a = q;
  std::vector<double> departures(n, 0.0);

  // Fold away states n-1, n-2, ..., 1.
  for (size_t k = n; k-- > 1;) {
    double departure = 0.0;
    for (size_t c = 0; c < k; ++c) departure += a(k, c);
    if (departure <= 0.0) {
      throw ModelError(
          "GTH: eliminated state has no transitions to remaining states; the chain is not "
          "irreducible");
    }
    departures[k] = departure;
    for (size_t r = 0; r < k; ++r) {
      const double w = a(r, k) / departure;
      if (w == 0.0) continue;
      for (size_t c = 0; c < k; ++c) {
        if (c == r) continue;
        a(r, c) += w * a(k, c);
      }
    }
  }

  // Back substitution: pi_k = (sum_{r<k} pi_r * a(r,k)) / departure_k, with
  // a(r,k) the *accumulated* transition weight into k at its elimination step
  // (rows r < k were only ever updated in columns < k, so a(r,k) still holds
  // exactly that value).
  std::vector<double> pi(n, 0.0);
  pi[0] = 1.0;
  for (size_t k = 1; k < n; ++k) {
    double acc = 0.0;
    for (size_t r = 0; r < k; ++r) acc += pi[r] * a(r, k);
    pi[k] = acc / departures[k];
  }
  double total = 0.0;
  for (double v : pi) total += v;
  GOP_CHECK_NUMERIC(total > 0.0 && std::isfinite(total), "GTH normalization failed");
  for (double& v : pi) v /= total;
  return pi;
}

std::vector<double> gth_stationary_dtmc(const DenseMatrix& p) {
  GOP_REQUIRE(p.square(), "GTH requires a square matrix");
  DenseMatrix q = p;
  for (size_t i = 0; i < p.rows(); ++i) q(i, i) -= 1.0;
  return gth_stationary_ctmc(q);
}

}  // namespace gop::linalg
