#pragma once

/// \file lu.hh
/// LU factorization with partial pivoting. Used for direct linear solves in
/// the Padé matrix exponential and for absorbing-chain analysis (fundamental
/// matrix systems).
///
/// The factorization is right-looking with a blocked trailing update for
/// large matrices (docs/performance.md): panels of kPanel columns are
/// factorized with rank-1 updates exactly like the classic algorithm, and the
/// deferred trailing-block update is applied through the fused
/// multiply-subtract kernel, which preserves the per-element ascending-k
/// update order — pivot choices and factors are bit-identical to the
/// unblocked factorization at every size.

#include <vector>

#include "linalg/dense_matrix.hh"

namespace gop::linalg {

/// Factorization PA = LU of a square matrix.
class LuFactorization {
 public:
  /// An empty factorization; factorize() must run before any solve. Exists so
  /// workspace owners (markov::ExpmWorkspace) can reuse one object's storage
  /// across many factorizations without reallocating.
  LuFactorization() = default;

  /// Factorizes `a`. Throws gop::NumericalError when a pivot underflows
  /// (matrix numerically singular).
  explicit LuFactorization(DenseMatrix a);

  /// Re-factorizes onto this object's existing storage: copies `a` into the
  /// internal buffer (no allocation once the buffer has seen this dimension)
  /// and factorizes in place. Same failure contract as the constructor.
  void factorize(const DenseMatrix& a);

  /// Pre-sizes the internal storage for dimension n without factorizing.
  /// Returns true when the call had to grow an allocation (workspace
  /// accounting). The object stays unusable until factorize() runs.
  bool reserve(size_t n);

  size_t size() const { return lu_.rows(); }

  /// Solves A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solves A X = B for all columns of B at once.
  DenseMatrix solve(const DenseMatrix& b) const;

  /// Multi-RHS solve into a caller-owned destination: x <- A^{-1} b. x is
  /// reshaped to b's shape and must not alias b. Column c of the result is
  /// bit-identical to solve(column c of b): the batched substitution keeps
  /// each column's ascending-j accumulation order, it only interleaves
  /// independent columns.
  void solve_into(const DenseMatrix& b, DenseMatrix& x) const;

  /// Solves x^T A = b^T (i.e. A^T x = b).
  std::vector<double> solve_transposed(const std::vector<double>& b) const;

  /// det(A), from the pivots (may overflow for large ill-scaled systems; only
  /// used by tests).
  double determinant() const;

 private:
  void factorize_in_place();

  DenseMatrix lu_;           // combined L (unit diagonal, below) and U (on/above)
  std::vector<size_t> perm_; // row permutation: row i of PA is row perm_[i] of A
  int sign_ = 1;
};

/// Convenience: one-shot solve of A x = b.
std::vector<double> lu_solve(const DenseMatrix& a, const std::vector<double>& b);

}  // namespace gop::linalg
