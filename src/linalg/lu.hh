#pragma once

/// \file lu.hh
/// LU factorization with partial pivoting. Used for direct linear solves in
/// the Padé matrix exponential and for absorbing-chain analysis (fundamental
/// matrix systems).

#include <vector>

#include "linalg/dense_matrix.hh"

namespace gop::linalg {

/// Factorization PA = LU of a square matrix.
class LuFactorization {
 public:
  /// Factorizes `a`. Throws gop::NumericalError when a pivot underflows
  /// (matrix numerically singular).
  explicit LuFactorization(DenseMatrix a);

  size_t size() const { return lu_.rows(); }

  /// Solves A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solves A X = B column-by-column.
  DenseMatrix solve(const DenseMatrix& b) const;

  /// Solves x^T A = b^T (i.e. A^T x = b).
  std::vector<double> solve_transposed(const std::vector<double>& b) const;

  /// det(A), from the pivots (may overflow for large ill-scaled systems; only
  /// used by tests).
  double determinant() const;

 private:
  DenseMatrix lu_;           // combined L (unit diagonal, below) and U (on/above)
  std::vector<size_t> perm_; // row permutation: row i of PA is row perm_[i] of A
  int sign_ = 1;
};

/// Convenience: one-shot solve of A x = b.
std::vector<double> lu_solve(const DenseMatrix& a, const std::vector<double>& b);

}  // namespace gop::linalg
