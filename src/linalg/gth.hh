#pragma once

/// \file gth.hh
/// Grassmann–Taksar–Heyman (GTH) elimination for the stationary distribution
/// of an irreducible CTMC or DTMC. GTH is subtraction-free, which makes it
/// numerically exact to relative roundoff even for stiff generators — the
/// right default for the paper's RMGp steady-state measures (rates spanning
/// 1e-8 .. 6e3 per hour).

#include <vector>

#include "linalg/dense_matrix.hh"

namespace gop::linalg {

/// Stationary distribution pi with pi Q = 0, sum(pi) = 1, for an irreducible
/// generator matrix Q (off-diagonals >= 0, row sums 0). Throws
/// gop::ModelError when the chain is found to be reducible (a state with no
/// remaining transitions during elimination).
std::vector<double> gth_stationary_ctmc(const DenseMatrix& q);

/// Stationary distribution for an irreducible stochastic matrix P
/// (pi P = pi). Implemented via gth_stationary_ctmc on Q = P - I.
std::vector<double> gth_stationary_dtmc(const DenseMatrix& p);

}  // namespace gop::linalg
