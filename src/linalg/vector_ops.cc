#include "linalg/vector_ops.hh"

#include <cmath>

#include "util/error.hh"

namespace gop::linalg {

void axpy(double a, const std::vector<double>& x, std::vector<double>& y) {
  GOP_REQUIRE(x.size() == y.size(), "axpy: length mismatch");
  for (size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

double dot(const std::vector<double>& x, const std::vector<double>& y) {
  GOP_REQUIRE(x.size() == y.size(), "dot: length mismatch");
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double sum(const std::vector<double>& x) {
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc;
}

double norm_inf(const std::vector<double>& x) {
  double best = 0.0;
  for (double v : x) best = std::max(best, std::abs(v));
  return best;
}

double norm_1(const std::vector<double>& x) {
  double acc = 0.0;
  for (double v : x) acc += std::abs(v);
  return acc;
}

double max_abs_diff(const std::vector<double>& x, const std::vector<double>& y) {
  GOP_REQUIRE(x.size() == y.size(), "max_abs_diff: length mismatch");
  double best = 0.0;
  for (size_t i = 0; i < x.size(); ++i) best = std::max(best, std::abs(x[i] - y[i]));
  return best;
}

void scale(std::vector<double>& x, double a) {
  for (double& v : x) v *= a;
}

void normalize_probability(std::vector<double>& x) {
  const double total = sum(x);
  GOP_REQUIRE(total > 0.0, "normalize_probability: sum must be positive");
  scale(x, 1.0 / total);
}

bool is_probability_vector(const std::vector<double>& x, double tol) {
  double total = 0.0;
  for (double v : x) {
    if (v < -tol || v > 1.0 + tol) return false;
    total += v;
  }
  return std::abs(total - 1.0) <= tol;
}

}  // namespace gop::linalg
