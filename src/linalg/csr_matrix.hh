#pragma once

/// \file csr_matrix.hh
/// Compressed-sparse-row matrix plus a coordinate-format builder. This is the
/// storage format for CTMC generator matrices produced by the SAN
/// reachability generator; uniformization and the iterative steady-state
/// solvers operate on it directly.

#include <cstddef>
#include <vector>

#include "linalg/dense_matrix.hh"

namespace gop::linalg {

/// One (row, col, value) entry during matrix assembly.
struct Triplet {
  size_t row;
  size_t col;
  double value;
};

class CsrMatrix;

/// Accumulating coordinate-format builder: duplicate (row, col) entries are
/// summed when the CSR matrix is built, which is exactly what a transition
/// collector wants (two activities can connect the same pair of markings).
class CooBuilder {
 public:
  CooBuilder(size_t rows, size_t cols);

  void add(size_t row, size_t col, double value);
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  CsrMatrix build() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<Triplet> entries_;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from explicit CSR arrays. row_ptr.size() == rows + 1.
  CsrMatrix(size_t rows, size_t cols, std::vector<size_t> row_ptr, std::vector<size_t> col_idx,
            std::vector<double> values);

  static CsrMatrix from_dense(const DenseMatrix& dense, double drop_tol = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// y = x^T * A. Used by uniformization (probability row vectors).
  std::vector<double> left_multiply(const std::vector<double>& x) const;

  /// In-place variant: overwrites y (resized to cols()) with x^T * A. x and y
  /// must be distinct vectors. Lets the uniformization inner loop reuse its
  /// iterate buffers instead of allocating per DTMC step.
  void left_multiply(const std::vector<double>& x, std::vector<double>& y) const;

  /// y = A * x.
  std::vector<double> right_multiply(const std::vector<double>& x) const;

  /// Entry lookup (binary search within the row; 0.0 when absent).
  double at(size_t row, size_t col) const;

  /// Sum of entries of `row`.
  double row_sum(size_t row) const;

  /// Maximum absolute row sum.
  double norm_inf() const;

  DenseMatrix to_dense() const;

  /// A^T in CSR form.
  CsrMatrix transpose() const;

  /// Returns a copy scaled by `s`.
  CsrMatrix scaled(double s) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<size_t> row_ptr_{0};
  std::vector<size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace gop::linalg
