#pragma once

/// \file dense_matrix.hh
/// Row-major dense matrix used by the matrix-exponential and direct solvers.
/// The reproduced models have at most a few hundred tangible states, so a
/// dense representation is both the fastest and the most robust choice for
/// the stiff transient problems in this paper (see DESIGN.md).

#include <cstddef>
#include <string>
#include <vector>

namespace gop::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  DenseMatrix(size_t rows, size_t cols, double fill = 0.0);

  /// Creates a matrix from nested initializer-like data; every row must have
  /// the same length.
  static DenseMatrix from_rows(const std::vector<std::vector<double>>& rows);

  /// The n x n identity.
  static DenseMatrix identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool square() const { return rows_ == cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Contiguous row-major storage.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  DenseMatrix transpose() const;

  DenseMatrix operator+(const DenseMatrix& other) const;
  DenseMatrix operator-(const DenseMatrix& other) const;
  DenseMatrix operator*(const DenseMatrix& other) const;
  DenseMatrix& operator+=(const DenseMatrix& other);
  DenseMatrix& operator*=(double scalar);
  DenseMatrix operator*(double scalar) const;

  /// y = x^T * A (row vector times matrix). x.size() must equal rows().
  std::vector<double> left_multiply(const std::vector<double>& x) const;

  /// y = A * x. x.size() must equal cols().
  std::vector<double> right_multiply(const std::vector<double>& x) const;

  /// Maximum absolute row sum (induced infinity norm).
  double norm_inf() const;

  /// Maximum absolute entry.
  double norm_max() const;

  /// Human-readable rendering for debugging.
  std::string to_string(int precision = 4) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace gop::linalg
