#pragma once

/// \file dense_matrix.hh
/// Row-major dense matrix used by the matrix-exponential and direct solvers.
/// The reproduced models have at most a few hundred tangible states, so a
/// dense representation is both the fastest and the most robust choice for
/// the stiff transient problems in this paper (see DESIGN.md).

#include <cstddef>
#include <string>
#include <vector>

namespace gop::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  DenseMatrix(size_t rows, size_t cols, double fill = 0.0);

  /// Creates a matrix from nested initializer-like data; every row must have
  /// the same length.
  static DenseMatrix from_rows(const std::vector<std::vector<double>>& rows);

  /// The n x n identity.
  static DenseMatrix identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool square() const { return rows_ == cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Contiguous row-major storage.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  DenseMatrix transpose() const;

  DenseMatrix operator+(const DenseMatrix& other) const;
  DenseMatrix operator-(const DenseMatrix& other) const;
  DenseMatrix operator*(const DenseMatrix& other) const;
  DenseMatrix& operator+=(const DenseMatrix& other);
  DenseMatrix& operator*=(double scalar);
  DenseMatrix operator*(double scalar) const;

  /// y = x^T * A (row vector times matrix). x.size() must equal rows().
  std::vector<double> left_multiply(const std::vector<double>& x) const;

  /// y = A * x. x.size() must equal cols().
  std::vector<double> right_multiply(const std::vector<double>& x) const;

  /// Maximum absolute row sum (induced infinity norm).
  double norm_inf() const;

  /// Maximum absolute entry.
  double norm_max() const;

  /// Human-readable rendering for debugging.
  std::string to_string(int precision = 4) const;

  /// Reshapes to rows x cols without initializing the contents. Reuses the
  /// existing heap buffer whenever its capacity suffices, so workspace
  /// owners (markov::ExpmWorkspace) reach a zero-allocation steady state.
  /// Returns true when the call had to grow the underlying allocation.
  bool reshape_uninitialized(size_t rows, size_t cols);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Fused dense kernels (docs/performance.md). All of them write through a
/// caller-owned destination so hot loops (the Padé expm polynomial chains,
/// the LU trailing updates, the squaring phase) stop materializing
/// temporaries. Every kernel accumulates each output element with a single
/// accumulator in ascending-k order — the exact floating-point summation
/// order of the historical naive kernels — so results are bit-identical to
/// the pre-blocked implementation; the cache-blocked path is a pure loop
/// interchange over (k, j) tiles that preserves that per-element order.

/// dst = a * b. dst is reshaped to (a.rows() x b.cols()); dst must not alias
/// a or b.
void multiply_into(DenseMatrix& dst, const DenseMatrix& a, const DenseMatrix& b);

/// dst += a * b. dst must already be (a.rows() x b.cols()) and must not
/// alias a or b.
void multiply_add_into(DenseMatrix& dst, const DenseMatrix& a, const DenseMatrix& b);

/// dst -= a * b. Same contract as multiply_add_into. The update is applied
/// in ascending-k order per element, matching a sequence of rank-1 updates —
/// the property that keeps the blocked LU factorization bit-identical to the
/// unblocked one.
void multiply_sub_into(DenseMatrix& dst, const DenseMatrix& a, const DenseMatrix& b);

/// dst = a (reshapes dst; reuses dst's buffer when it is large enough).
void copy_into(DenseMatrix& dst, const DenseMatrix& a);

/// dst = a * alpha without an intermediate copy.
void scale_copy_into(DenseMatrix& dst, const DenseMatrix& a, double alpha);

/// dst += alpha * a (matrix AXPY). Dimensions must match.
void add_scaled(DenseMatrix& dst, double alpha, const DenseMatrix& a);

/// dst = c1*m1 + c2*m2 + c3*m3 in one pass (reshapes dst). Per element the
/// sum is evaluated as ((c1*m1) + c2*m2) + c3*m3 — exactly the sequence a
/// scale_copy_into followed by two add_scaled calls performs — so fusing the
/// three passes is bit-identical to the unfused chain.
void weighted_sum3_into(DenseMatrix& dst, double c1, const DenseMatrix& m1, double c2,
                        const DenseMatrix& m2, double c3, const DenseMatrix& m3);

/// dst += c1*m1 + c2*m2 + c3*m3 in one pass. Per element:
/// ((dst + c1*m1) + c2*m2) + c3*m3 — the sequence of three add_scaled calls.
void add_weighted3(DenseMatrix& dst, double c1, const DenseMatrix& m1, double c2,
                   const DenseMatrix& m2, double c3, const DenseMatrix& m3);

/// dst(i, i) += alpha for every diagonal element. Replaces the
/// `identity * coefficient` terms of the Padé polynomial chains.
void add_to_diagonal(DenseMatrix& dst, double alpha);

/// dst = a - b (reshapes dst).
void subtract_into(DenseMatrix& dst, const DenseMatrix& a, const DenseMatrix& b);

/// dst = a + b (reshapes dst).
void add_into(DenseMatrix& dst, const DenseMatrix& a, const DenseMatrix& b);

namespace detail {

/// Raw strided strip of the subtracting GEMM kernel, shared with the blocked
/// LU trailing update: c[i*ldcb + j] -= sum_k a[i*lda + k] * b[k*ldcb + j]
/// for i in [0, rows), k in [k0, k1), j in [j0, j1), accumulated per element
/// in ascending-k order with the `a == 0.0` skip. c and b share the stride
/// ldcb; pointers may be offset into larger matrices but must not alias.
void gemm_strip_sub(double* c, const double* a, const double* b, size_t rows, size_t lda,
                    size_t ldcb, size_t k0, size_t k1, size_t j0, size_t j1);

}  // namespace detail

}  // namespace gop::linalg
