#include "linalg/lu.hh"

#include <cmath>
#include <numeric>

#include "fi/fi.hh"
#include "util/error.hh"

namespace gop::linalg {

namespace {

/// Panel width for the blocked right-looking factorization. Matrices with
/// n <= kPanel take exactly the classic unblocked code path (the trailing
/// update below never runs), and larger matrices produce bit-identical
/// factors anyway: deferring the update of columns >= p1 only batches the
/// same ascending-k subtractions per element, it never reorders them.
constexpr size_t kLuPanel = 64;

#if defined(__GNUC__) || defined(__clang__)
#define GOP_LU_RESTRICT __restrict__
#else
#define GOP_LU_RESTRICT
#endif

/// Fully-unrolled substitution for small square multi-RHS solves (the Padé
/// solve runs at the chain dimension). With compile-time trip counts the
/// whole X row stays in registers across its j updates instead of being
/// stored and reloaded per j pair. Per element the updates are the same
/// ascending-j subtractions, one memory accumulator, divide-last — the exact
/// operation sequence of the runtime-n loops below, so results (and every
/// rounding) are identical.
template <int N>
void substitute_fixed(const double* GOP_LU_RESTRICT lu, double* GOP_LU_RESTRICT xd) {
  // Forward substitution: L Y = P B (unit diagonal).
  for (int i = 1; i < N; ++i) {
    double* GOP_LU_RESTRICT xi = xd + i * N;
    const double* GOP_LU_RESTRICT lrow = lu + i * N;
    double acc[N];
    for (int c = 0; c < N; ++c) acc[c] = xi[c];
    for (int j = 0; j < i; ++j) {
      const double l = lrow[j];
      const double* GOP_LU_RESTRICT xj = xd + j * N;
      for (int c = 0; c < N; ++c) acc[c] -= l * xj[c];
    }
    for (int c = 0; c < N; ++c) xi[c] = acc[c];
  }
  // Back substitution: U X = Y.
  for (int i = N; i-- > 0;) {
    double* GOP_LU_RESTRICT xi = xd + i * N;
    const double* GOP_LU_RESTRICT urow = lu + i * N;
    double acc[N];
    for (int c = 0; c < N; ++c) acc[c] = xi[c];
    for (int j = i + 1; j < N; ++j) {
      const double u = urow[j];
      const double* GOP_LU_RESTRICT xj = xd + j * N;
      for (int c = 0; c < N; ++c) acc[c] -= u * xj[c];
    }
    const double pivot = urow[i];
    for (int c = 0; c < N; ++c) xi[c] = acc[c] / pivot;
  }
}

/// Largest square multi-RHS solve routed through substitute_fixed; mirrors
/// the gemm_fixed gate (docs/performance.md).
constexpr size_t kFixedSolveMax = 15;

bool substitute_fixed_dispatch(const double* lu, double* xd, size_t n) {
  switch (n) {
      // clang-format off
    case 1: substitute_fixed<1>(lu, xd); return true;
    case 2: substitute_fixed<2>(lu, xd); return true;
    case 3: substitute_fixed<3>(lu, xd); return true;
    case 4: substitute_fixed<4>(lu, xd); return true;
    case 5: substitute_fixed<5>(lu, xd); return true;
    case 6: substitute_fixed<6>(lu, xd); return true;
    case 7: substitute_fixed<7>(lu, xd); return true;
    case 9: substitute_fixed<9>(lu, xd); return true;
    case 10: substitute_fixed<10>(lu, xd); return true;
    case 11: substitute_fixed<11>(lu, xd); return true;
    case 12: substitute_fixed<12>(lu, xd); return true;
    case 13: substitute_fixed<13>(lu, xd); return true;
    case 14: substitute_fixed<14>(lu, xd); return true;
    case 15: substitute_fixed<15>(lu, xd); return true;
      // clang-format on
    default:
      return false;
  }
}

}  // namespace

LuFactorization::LuFactorization(DenseMatrix a) : lu_(std::move(a)) {
  factorize_in_place();
}

void LuFactorization::factorize(const DenseMatrix& a) {
  copy_into(lu_, a);
  factorize_in_place();
}

bool LuFactorization::reserve(size_t n) {
  const bool perm_grew = perm_.capacity() < n;
  const bool lu_grew = lu_.reshape_uninitialized(n, n);
  perm_.resize(n);
  return perm_grew || lu_grew;
}

void LuFactorization::factorize_in_place() {
  GOP_REQUIRE(lu_.square(), "LU factorization requires a square matrix");
  const size_t n = lu_.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), size_t{0});
  sign_ = 1;

  for (size_t p0 = 0; p0 < n; p0 += kLuPanel) {
    const size_t p1 = std::min(n, p0 + kLuPanel);
    // Factorize the panel: columns [p0, p1), rank-1 updates restricted to the
    // panel's columns. Identical to the unblocked loop with the c-range split.
    for (size_t k = p0; k < p1; ++k) {
      // Partial pivoting: pick the largest magnitude in column k at/below
      // row k.
      size_t pivot = k;
      double best = std::abs(lu_(k, k));
      for (size_t r = k + 1; r < n; ++r) {
        const double v = std::abs(lu_(r, k));
        if (v > best) {
          best = v;
          pivot = r;
        }
      }
      if (GOP_FI_POINT(fi::SiteId::kLuPivotBreakdown)) best = 0.0;
      GOP_CHECK_NUMERIC(best > 0.0, "LU pivot is exactly zero: matrix is singular");
      if (pivot != k) {
        for (size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
        std::swap(perm_[k], perm_[pivot]);
        sign_ = -sign_;
      }
      double pivot_value = lu_(k, k);
      if (GOP_FI_POINT(fi::SiteId::kLuPivotPerturb)) pivot_value *= 2.0;
      for (size_t r = k + 1; r < n; ++r) {
        const double factor = lu_(r, k) / pivot_value;
        lu_(r, k) = factor;
        if (factor == 0.0) continue;
        for (size_t c = k + 1; c < p1; ++c) lu_(r, c) -= factor * lu_(k, c);
      }
    }
    if (p1 < n) {
      // U12 = L11^{-1} A12: replay the panel's eliminations on the columns
      // right of the panel, in the same ascending-k order per element the
      // unblocked rank-1 updates would have used.
      for (size_t k = p0; k < p1; ++k) {
        for (size_t r = k + 1; r < p1; ++r) {
          const double factor = lu_(r, k);
          if (factor == 0.0) continue;
          for (size_t c = p1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
        }
      }
      // Deferred trailing update through the fused multiply-subtract strip:
      //   A[p1:, p1:] -= L[p1:, p0:p1) * U[p0:p1, p1:)
      // applied per element in ascending-k order (detail::gemm_strip_sub), so
      // the trailing block holds exactly the values the unblocked rank-1
      // updates would have produced before the next panel's pivot search
      // reads it.
      double* base = lu_.data().data();
      detail::gemm_strip_sub(base + p1 * n + p1, base + p1 * n + p0, base + p0 * n + p1, n - p1,
                             n, n, 0, p1 - p0, 0, n - p1);
    }
  }
}

std::vector<double> LuFactorization::solve(const std::vector<double>& b) const {
  const size_t n = size();
  GOP_REQUIRE(b.size() == n, "LU solve: rhs length mismatch");
  std::vector<double> x(n);
  // Forward substitution with permutation: L y = P b.
  for (size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution: U x = y.
  for (size_t i = n; i-- > 0;) {
    double acc = x[i];
    for (size_t j = i + 1; j < n; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc / lu_(i, i);
  }
  return x;
}

DenseMatrix LuFactorization::solve(const DenseMatrix& b) const {
  DenseMatrix x;
  solve_into(b, x);
  return x;
}

void LuFactorization::solve_into(const DenseMatrix& b, DenseMatrix& x) const {
  const size_t n = size();
  const size_t m = b.cols();
  GOP_REQUIRE(b.rows() == n, "LU solve: rhs row count mismatch");
  GOP_REQUIRE(&b != &x && b.data().data() != x.data().data(),
              "LU solve_into: destination must not alias the rhs");
  x.reshape_uninitialized(n, m);

  const double* lu = lu_.data().data();
  double* xd = x.data().data();
  const double* bd = b.data().data();
  // Gather the permuted rhs, then substitute in place on x. Each column keeps
  // the scalar solve's accumulation order: row i accumulates updates from
  // rows j < i (forward) / j > i (backward) in ascending j, one memory
  // accumulator per element — only independent columns are interleaved.
  for (size_t i = 0; i < n; ++i) {
    const double* src = bd + perm_[i] * m;
    double* dst = xd + i * m;
    for (size_t c = 0; c < m; ++c) dst[c] = src[c];
  }
  if (m == n && n <= kFixedSolveMax && substitute_fixed_dispatch(lu, xd, n)) return;
  // Forward substitution: L Y = P B (unit diagonal). The j loop is unrolled
  // by two with strictly sequential subtractions per element, preserving the
  // scalar solve's accumulation order bit for bit (see gemm_strip).
  for (size_t i = 0; i < n; ++i) {
    double* xi = xd + i * m;
    const double* lrow = lu + i * n;
    size_t j = 0;
    for (; j + 1 < i; j += 2) {
      const double l0 = lrow[j];
      const double l1 = lrow[j + 1];
      const double* xj0 = xd + j * m;
      const double* xj1 = xj0 + m;
      for (size_t c = 0; c < m; ++c) xi[c] = (xi[c] - l0 * xj0[c]) - l1 * xj1[c];
    }
    if (j < i) {
      const double l = lrow[j];
      const double* xj = xd + j * m;
      for (size_t c = 0; c < m; ++c) xi[c] -= l * xj[c];
    }
  }
  // Back substitution: U X = Y.
  for (size_t i = n; i-- > 0;) {
    double* xi = xd + i * m;
    const double* urow = lu + i * n;
    size_t j = i + 1;
    for (; j + 1 < n; j += 2) {
      const double u0 = urow[j];
      const double u1 = urow[j + 1];
      const double* xj0 = xd + j * m;
      const double* xj1 = xj0 + m;
      for (size_t c = 0; c < m; ++c) xi[c] = (xi[c] - u0 * xj0[c]) - u1 * xj1[c];
    }
    if (j < n) {
      const double u = urow[j];
      const double* xj = xd + j * m;
      for (size_t c = 0; c < m; ++c) xi[c] -= u * xj[c];
    }
    const double pivot = urow[i];
    for (size_t c = 0; c < m; ++c) xi[c] /= pivot;
  }
}

std::vector<double> LuFactorization::solve_transposed(const std::vector<double>& b) const {
  const size_t n = size();
  GOP_REQUIRE(b.size() == n, "LU solve_transposed: rhs length mismatch");
  // A^T x = b with PA = LU means U^T L^T P x = b: forward-solve U^T z = b,
  // back-solve L^T w = z, then x = P^T w.
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (size_t j = 0; j < i; ++j) acc -= lu_(j, i) * z[j];
    z[i] = acc / lu_(i, i);
  }
  std::vector<double> w(n);
  for (size_t i = n; i-- > 0;) {
    double acc = z[i];
    for (size_t j = i + 1; j < n; ++j) acc -= lu_(j, i) * w[j];
    w[i] = acc;  // L has unit diagonal
  }
  std::vector<double> x(n);
  for (size_t i = 0; i < n; ++i) x[perm_[i]] = w[i];
  return x;
}

double LuFactorization::determinant() const {
  double det = sign_;
  for (size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

std::vector<double> lu_solve(const DenseMatrix& a, const std::vector<double>& b) {
  return LuFactorization(a).solve(b);
}

}  // namespace gop::linalg
