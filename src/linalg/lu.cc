#include "linalg/lu.hh"

#include <cmath>

#include "fi/fi.hh"
#include "util/error.hh"

namespace gop::linalg {

LuFactorization::LuFactorization(DenseMatrix a) : lu_(std::move(a)) {
  GOP_REQUIRE(lu_.square(), "LU factorization requires a square matrix");
  const size_t n = lu_.rows();
  perm_.resize(n);
  for (size_t i = 0; i < n; ++i) perm_[i] = i;

  for (size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k at/below row k.
    size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (GOP_FI_POINT(fi::SiteId::kLuPivotBreakdown)) best = 0.0;
    GOP_CHECK_NUMERIC(best > 0.0, "LU pivot is exactly zero: matrix is singular");
    if (pivot != k) {
      for (size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
      sign_ = -sign_;
    }
    double pivot_value = lu_(k, k);
    if (GOP_FI_POINT(fi::SiteId::kLuPivotPerturb)) pivot_value *= 2.0;
    for (size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / pivot_value;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

std::vector<double> LuFactorization::solve(const std::vector<double>& b) const {
  const size_t n = size();
  GOP_REQUIRE(b.size() == n, "LU solve: rhs length mismatch");
  std::vector<double> x(n);
  // Forward substitution with permutation: L y = P b.
  for (size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution: U x = y.
  for (size_t i = n; i-- > 0;) {
    double acc = x[i];
    for (size_t j = i + 1; j < n; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc / lu_(i, i);
  }
  return x;
}

DenseMatrix LuFactorization::solve(const DenseMatrix& b) const {
  GOP_REQUIRE(b.rows() == size(), "LU solve: rhs row count mismatch");
  DenseMatrix x(b.rows(), b.cols());
  std::vector<double> col(b.rows());
  for (size_t c = 0; c < b.cols(); ++c) {
    for (size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    const std::vector<double> sol = solve(col);
    for (size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

std::vector<double> LuFactorization::solve_transposed(const std::vector<double>& b) const {
  const size_t n = size();
  GOP_REQUIRE(b.size() == n, "LU solve_transposed: rhs length mismatch");
  // A^T x = b with PA = LU means U^T L^T P x = b: forward-solve U^T z = b,
  // back-solve L^T w = z, then x = P^T w.
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (size_t j = 0; j < i; ++j) acc -= lu_(j, i) * z[j];
    z[i] = acc / lu_(i, i);
  }
  std::vector<double> w(n);
  for (size_t i = n; i-- > 0;) {
    double acc = z[i];
    for (size_t j = i + 1; j < n; ++j) acc -= lu_(j, i) * w[j];
    w[i] = acc;  // L has unit diagonal
  }
  std::vector<double> x(n);
  for (size_t i = 0; i < n; ++i) x[perm_[i]] = w[i];
  return x;
}

double LuFactorization::determinant() const {
  double det = sign_;
  for (size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

std::vector<double> lu_solve(const DenseMatrix& a, const std::vector<double>& b) {
  return LuFactorization(a).solve(b);
}

}  // namespace gop::linalg
