#pragma once

/// \file dot_export.hh
/// Graphviz renderings of a SAN's structure and of a generated reachability
/// graph, for documentation and model debugging.

#include <string>

#include "san/model.hh"
#include "san/state_space.hh"

namespace gop::san {

/// The SAN itself: places as circles (with initial tokens), timed activities
/// as thick bars, instantaneous activities as thin bars. Arc structure is not
/// recoverable from the functional specification, so activities are free-
/// standing nodes annotated with their names.
std::string model_to_dot(const SanModel& model);

/// The tangible reachability graph: nodes are markings (labelled with the
/// non-zero places), edges are transitions labelled "activity @ rate".
std::string reachability_to_dot(const GeneratedChain& chain, size_t max_states = 512);

}  // namespace gop::san
