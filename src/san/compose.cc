#include "san/compose.hh"

#include <algorithm>

#include "util/error.hh"

namespace gop::san {

namespace {

/// Wraps a component model's marking-reading/writing functions so they see
/// their own layout while the composed model runs. `map[i]` is the composed
/// index of component place i.
struct MarkingView {
  std::vector<size_t> map;

  Marking extract(const Marking& composed) const {
    Marking local(map.size());
    for (size_t i = 0; i < map.size(); ++i) local[i] = composed[map[i]];
    return local;
  }

  void write_back(const Marking& local, Marking& composed) const {
    for (size_t i = 0; i < map.size(); ++i) composed[map[i]] = local[i];
  }
};

Predicate wrap_predicate(const MarkingView& view, Predicate inner) {
  ExprIr rebased = ir::rebase_places(inner.ir(), view.map);
  return Predicate(
      [view, inner = std::move(inner)](const Marking& composed) {
        return inner(view.extract(composed));
      },
      std::move(rebased));
}

RateFn wrap_rate(const MarkingView& view, RateFn inner) {
  ExprIr rebased = ir::rebase_places(inner.ir(), view.map);
  return RateFn(
      [view, inner = std::move(inner)](const Marking& composed) {
        return inner(view.extract(composed));
      },
      std::move(rebased));
}

Effect wrap_effect(const MarkingView& view, Effect inner) {
  ExprIr rebased = ir::rebase_places(inner.ir(), view.map);
  return Effect(
      [view, inner = std::move(inner)](Marking& composed) {
        Marking local = view.extract(composed);
        inner(local);
        view.write_back(local, composed);
      },
      std::move(rebased));
}

Case wrap_case(const MarkingView& view, const Case& inner) {
  return Case{wrap_rate(view, inner.probability), wrap_effect(view, inner.effect)};
}

/// add_place that carries the component's declared capacity (if any) into the
/// composed model, so composition preserves provable marking bounds.
PlaceRef add_place_like(SanModel& target, const SanModel& component, PlaceRef place,
                        std::string name) {
  const int32_t initial = component.initial_marking()[place.index];
  if (const std::optional<int32_t> capacity = component.place_capacity(place)) {
    return target.add_place(std::move(name), initial, *capacity);
  }
  return target.add_place(std::move(name), initial);
}

/// Copies all activities of `component` into `target`, rebasing their
/// marking access through `view` and prefixing names.
void copy_activities(SanModel& target, const SanModel& component, const MarkingView& view,
                     const std::string& prefix) {
  for (const TimedActivity& activity : component.timed_activities()) {
    TimedActivity copy;
    copy.name = prefix + activity.name;
    copy.enabled = wrap_predicate(view, activity.enabled);
    copy.rate = wrap_rate(view, activity.rate);
    for (const Case& c : activity.cases) copy.cases.push_back(wrap_case(view, c));
    target.add_timed_activity(std::move(copy));
  }
  for (const InstantaneousActivity& activity : component.instantaneous_activities()) {
    InstantaneousActivity copy;
    copy.name = prefix + activity.name;
    copy.enabled = wrap_predicate(view, activity.enabled);
    copy.priority = activity.priority;
    for (const Case& c : activity.cases) copy.cases.push_back(wrap_case(view, c));
    target.add_instantaneous_activity(std::move(copy));
  }
}

}  // namespace

JoinedModel join(const SanModel& left, const SanModel& right, const JoinSpec& spec) {
  // Resolve the fusion pairs up front.
  std::vector<size_t> right_fused_to_left(right.place_count(), SIZE_MAX);
  std::vector<bool> left_is_shared(left.place_count(), false);
  for (const auto& [left_name, right_name] : spec.shared) {
    const PlaceRef lp = left.place(left_name);
    const PlaceRef rp = right.place(right_name);
    GOP_REQUIRE(right_fused_to_left[rp.index] == SIZE_MAX,
                "place '" + right_name + "' fused more than once");
    GOP_REQUIRE(!left_is_shared[lp.index], "place '" + left_name + "' fused more than once");
    GOP_REQUIRE(left.initial_marking()[lp.index] == right.initial_marking()[rp.index],
                "initial tokens of fused places '" + left_name + "'/'" + right_name +
                    "' disagree");
    right_fused_to_left[rp.index] = lp.index;
    left_is_shared[lp.index] = true;
  }

  JoinedModel joined{SanModel(spec.name), {}, {}};

  // Left places become the composed prefix (optionally renamed).
  joined.left_place_map.resize(left.place_count());
  for (size_t i = 0; i < left.place_count(); ++i) {
    const PlaceRef composed = add_place_like(joined.model, left, PlaceRef{i},
                                             spec.left_prefix + left.place_name(PlaceRef{i}));
    joined.left_place_map[i] = composed.index;
  }

  // Right places: fused ones map onto the left indices, the rest are added
  // with the right prefix.
  joined.right_place_map.resize(right.place_count());
  for (size_t i = 0; i < right.place_count(); ++i) {
    if (right_fused_to_left[i] != SIZE_MAX) {
      joined.right_place_map[i] = joined.left_place_map[right_fused_to_left[i]];
      continue;
    }
    const PlaceRef composed = add_place_like(joined.model, right, PlaceRef{i},
                                             spec.right_prefix + right.place_name(PlaceRef{i}));
    joined.right_place_map[i] = composed.index;
  }

  copy_activities(joined.model, left, MarkingView{joined.left_place_map}, spec.left_prefix);
  copy_activities(joined.model, right, MarkingView{joined.right_place_map}, spec.right_prefix);
  return joined;
}

ReplicatedModel replicate(const SanModel& prototype, size_t count,
                          const std::vector<std::string>& shared_places,
                          const std::string& name) {
  GOP_REQUIRE(count >= 1, "replicate needs at least one replica");

  std::vector<bool> is_shared(prototype.place_count(), false);
  for (const std::string& place_name : shared_places) {
    is_shared[prototype.place(place_name).index] = true;
  }

  ReplicatedModel replicated{SanModel(name), {}};

  // Shared places once, with the prototype's names.
  std::vector<size_t> shared_index(prototype.place_count(), SIZE_MAX);
  for (size_t i = 0; i < prototype.place_count(); ++i) {
    if (!is_shared[i]) continue;
    shared_index[i] =
        add_place_like(replicated.model, prototype, PlaceRef{i}, prototype.place_name(PlaceRef{i}))
            .index;
  }

  for (size_t r = 0; r < count; ++r) {
    const std::string prefix = "r" + std::to_string(r) + "_";
    std::vector<size_t> map(prototype.place_count());
    for (size_t i = 0; i < prototype.place_count(); ++i) {
      if (is_shared[i]) {
        map[i] = shared_index[i];
      } else {
        map[i] = add_place_like(replicated.model, prototype, PlaceRef{i},
                                prefix + prototype.place_name(PlaceRef{i}))
                     .index;
      }
    }
    copy_activities(replicated.model, prototype, MarkingView{map}, prefix);
    replicated.place_maps.push_back(std::move(map));
  }
  return replicated;
}

}  // namespace gop::san
