#pragma once

/// \file session.hh
/// Batched reward evaluation for a generated SAN chain: solve the underlying
/// CTMC once over a whole time grid (GeneratedChain::solve_grid), then dot
/// any number of reward structures against the shared solutions. This is the
/// SAN-layer face of the markov solver sessions (markov/session.hh) and the
/// building block of the core batched sweep pipeline
/// (core::PerformabilityAnalyzer::constituents_batch).
///
/// Every accessor is bit-identical to the corresponding pointwise
/// GeneratedChain call at the same time: instant_reward(r, i) ==
/// chain.instant_reward(r, times[i]) down to the last bit, for both solver
/// engines. Sessions are immutable after construction and safe to share
/// across threads.

#include <optional>
#include <vector>

#include "markov/session.hh"
#include "san/state_space.hh"

namespace gop::san {

/// What GeneratedChain::solve_grid should solve for. Instant-of-time rewards
/// need the transient distributions, interval-of-time rewards the accumulated
/// occupancies; solving only what the caller will read keeps a
/// transient-only session at one pass.
struct GridSolveOptions {
  bool transient = true;
  bool accumulated = false;
  markov::TransientOptions transient_options;
  markov::AccumulatedOptions accumulated_options;
  /// When set, the underlying markov sessions are built through the recovery
  /// ladder (markov/recovery.hh) and carry provenance certificates. A clean
  /// first-try build stays bit-identical to the policy-free path.
  std::optional<markov::RecoveryPolicy> recovery;
};

class ChainSession {
 public:
  /// `times` must be sorted non-decreasing (duplicates fine — they share one
  /// solution). The chain must outlive the session.
  ChainSession(const GeneratedChain& chain, std::vector<double> times,
               const GridSolveOptions& options = {});

  const GeneratedChain& chain() const { return *chain_; }
  size_t time_count() const { return times_.size(); }
  const std::vector<double>& times() const { return times_; }

  bool has_transient() const { return transient_.has_value(); }
  bool has_accumulated() const { return accumulated_.has_value(); }

  /// Expected instant-of-time reward at times()[i]; bit-identical to
  /// GeneratedChain::instant_reward at the same time.
  double instant_reward(const RewardStructure& reward, size_t i) const;

  /// instant_reward at every grid point; the reward vector is built once.
  std::vector<double> instant_reward_series(const RewardStructure& reward) const;

  /// Expected accumulated reward over [0, times()[i]] (rate part plus
  /// expected impulse completions); bit-identical to
  /// GeneratedChain::accumulated_reward.
  double accumulated_reward(const RewardStructure& reward, size_t i) const;

  /// accumulated_reward at every grid point.
  std::vector<double> accumulated_reward_series(const RewardStructure& reward) const;

  /// Probability of a predicate marking at times()[i]; bit-identical to
  /// GeneratedChain::transient_probability.
  double transient_probability(const Predicate& predicate, size_t i) const;

  /// The underlying solver sessions; throw gop::InvalidArgument when the
  /// corresponding part was not requested in GridSolveOptions.
  const markov::TransientSession& transient_session() const;
  const markov::AccumulatedSession& accumulated_session() const;

  /// The SolverPlan each underlying session resolved its grid to; same
  /// preconditions as the session accessors.
  const markov::SolverPlan& transient_plan() const { return transient_session().plan(); }
  const markov::SolverPlan& accumulated_plan() const { return accumulated_session().plan(); }

 private:
  const GeneratedChain* chain_;
  std::vector<double> times_;
  std::optional<markov::TransientSession> transient_;
  std::optional<markov::AccumulatedSession> accumulated_;
};

}  // namespace gop::san
