#include "san/expr_ir.hh"

#include "util/error.hh"
#include "util/strings.hh"

namespace gop::san::ir {

namespace {

ExprIr make(ExprOp op, size_t place = 0, int32_t value = 0, double number = 0.0,
            std::vector<ExprIr> children = {}) {
  auto node = std::make_shared<ExprNode>();
  node->op = op;
  node->place = place;
  node->value = value;
  node->number = number;
  node->children = std::move(children);
  return node;
}

}  // namespace

ExprIr always() { return make(ExprOp::kAlways); }

ExprIr mark_eq(size_t place, int32_t value) { return make(ExprOp::kMarkEq, place, value); }

ExprIr mark_ge(size_t place, int32_t value) { return make(ExprOp::kMarkGe, place, value); }

ExprIr all_of(std::vector<ExprIr> children) {
  return make(ExprOp::kAllOf, 0, 0, 0.0, std::move(children));
}

ExprIr any_of(std::vector<ExprIr> children) {
  return make(ExprOp::kAnyOf, 0, 0, 0.0, std::move(children));
}

ExprIr negate(ExprIr child) { return make(ExprOp::kNot, 0, 0, 0.0, {std::move(child)}); }

ExprIr constant(double number) { return make(ExprOp::kConstNum, 0, 0, number); }

ExprIr complement(ExprIr child) {
  return make(ExprOp::kComplement, 0, 0, 0.0, {std::move(child)});
}

ExprIr rate_per_token(size_t place, double rate) {
  return make(ExprOp::kRatePerToken, place, 0, rate);
}

ExprIr cond(ExprIr predicate, ExprIr if_true, ExprIr if_false) {
  return make(ExprOp::kCond, 0, 0, 0.0,
              {std::move(predicate), std::move(if_true), std::move(if_false)});
}

ExprIr no_effect() { return make(ExprOp::kNoEffect); }

ExprIr set_mark(size_t place, int32_t value) { return make(ExprOp::kSetMark, place, value); }

ExprIr add_mark(size_t place, int32_t delta) { return make(ExprOp::kAddMark, place, delta); }

ExprIr sequence(std::vector<ExprIr> children) {
  return make(ExprOp::kSequence, 0, 0, 0.0, std::move(children));
}

ExprIr when(ExprIr predicate, ExprIr effect) {
  return make(ExprOp::kWhen, 0, 0, 0.0, {std::move(predicate), std::move(effect)});
}

ExprIr opaque() {
  static const ExprIr node = make(ExprOp::kOpaque);
  return node;
}

ExprIr or_opaque(ExprIr node) { return node ? std::move(node) : opaque(); }

ExprIr rebase_places(const ExprIr& node, const std::vector<size_t>& place_map) {
  if (!node) return nullptr;
  std::vector<ExprIr> children;
  children.reserve(node->children.size());
  for (const ExprIr& child : node->children) {
    children.push_back(rebase_places(child, place_map));
  }
  size_t place = node->place;
  switch (node->op) {
    case ExprOp::kMarkEq:
    case ExprOp::kMarkGe:
    case ExprOp::kRatePerToken:
    case ExprOp::kSetMark:
    case ExprOp::kAddMark:
      GOP_REQUIRE(place < place_map.size(),
                  str_format("cannot rebase expression: place #%zu is outside the component's "
                             "%zu-place map",
                             place, place_map.size()));
      place = place_map[place];
      break;
    default:
      break;
  }
  return make(node->op, place, node->value, node->number, std::move(children));
}

bool structurally_equal(const ExprIr& a, const ExprIr& b) {
  if (a == b) return a != nullptr;
  if (!a || !b) return false;
  if (a->op != b->op || a->place != b->place || a->value != b->value) return false;
  // Bit-compare the numeric operand: the prover's exactness arguments are
  // about identical doubles, not approximately equal ones.
  if (!(a->number == b->number) && !(a->number != a->number && b->number != b->number)) {
    return false;
  }
  if (a->children.size() != b->children.size()) return false;
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!structurally_equal(a->children[i], b->children[i])) return false;
  }
  return true;
}

bool contains_opaque(const ExprIr& node) {
  if (!node) return true;
  if (node->op == ExprOp::kOpaque) return true;
  for (const ExprIr& child : node->children) {
    if (contains_opaque(child)) return true;
  }
  return false;
}

namespace {

void join_children(const ExprIr& node, const char* separator, std::string& out) {
  for (size_t i = 0; i < node->children.size(); ++i) {
    if (i > 0) out += separator;
    out += to_string(node->children[i]);
  }
}

}  // namespace

std::string to_string(const ExprIr& node) {
  if (!node) return "<no ir>";
  switch (node->op) {
    case ExprOp::kAlways:
      return "true";
    case ExprOp::kMarkEq:
      return str_format("mark(#%zu) == %d", node->place, static_cast<int>(node->value));
    case ExprOp::kMarkGe:
      return str_format("mark(#%zu) >= %d", node->place, static_cast<int>(node->value));
    case ExprOp::kAllOf: {
      std::string out = "(";
      join_children(node, " && ", out);
      return out + ")";
    }
    case ExprOp::kAnyOf: {
      std::string out = "(";
      join_children(node, " || ", out);
      return out + ")";
    }
    case ExprOp::kNot:
      return "!" + to_string(node->children.at(0));
    case ExprOp::kConstNum:
      return format_compact(node->number, 12);
    case ExprOp::kComplement:
      return "(1 - " + to_string(node->children.at(0)) + ")";
    case ExprOp::kRatePerToken:
      return str_format("%s * mark(#%zu)", format_compact(node->number, 12).c_str(), node->place);
    case ExprOp::kCond:
      return "(" + to_string(node->children.at(0)) + " ? " + to_string(node->children.at(1)) +
             " : " + to_string(node->children.at(2)) + ")";
    case ExprOp::kNoEffect:
      return "nop";
    case ExprOp::kSetMark:
      return str_format("mark(#%zu) = %d", node->place, static_cast<int>(node->value));
    case ExprOp::kAddMark:
      return str_format("mark(#%zu) += %d", node->place, static_cast<int>(node->value));
    case ExprOp::kSequence: {
      std::string out = "{";
      join_children(node, "; ", out);
      return out + "}";
    }
    case ExprOp::kWhen:
      return "if " + to_string(node->children.at(0)) + ": " + to_string(node->children.at(1));
    case ExprOp::kOpaque:
      return "<opaque lambda>";
  }
  return "<unknown>";
}

}  // namespace gop::san::ir
