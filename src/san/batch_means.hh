#pragma once

/// \file batch_means.hh
/// Steady-state simulation with the batch-means method: one long trajectory,
/// a warm-up period discarded, the remainder split into fixed-duration
/// batches whose means are treated as (approximately independent) samples.
/// Complements the replication-based estimators of SanSimulator for
/// steady-state measures, where independent replications waste the warm-up
/// on every run.

#include "san/reward.hh"
#include "san/simulator.hh"
#include "sim/stats.hh"

namespace gop::san {

struct BatchMeansOptions {
  uint64_t seed = 7;
  /// Simulated time discarded before batching starts.
  double warmup_time = 10.0;
  /// Length of each batch in simulated time.
  double batch_duration = 50.0;
  size_t batch_count = 32;
};

struct BatchMeansResult {
  double mean = 0.0;
  double half_width = 0.0;  // 95% CI over batch means
  size_t batches = 0;
};

/// Estimates the steady-state rate reward (time-average of the reward rate)
/// of the simulator's model. The model should be ergodic; with an absorbing
/// model the estimate converges to the reward of the absorbing states.
BatchMeansResult estimate_steady_state_reward(const SanSimulator& simulator,
                                              const RewardStructure& reward,
                                              const BatchMeansOptions& options = {});

}  // namespace gop::san
