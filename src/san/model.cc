#include "san/model.hh"

#include "util/error.hh"

namespace gop::san {

namespace {
constexpr int32_t kNoCapacity = -1;
}  // namespace

SanModel::SanModel(std::string name) : name_(std::move(name)) {}

PlaceRef SanModel::add_place(std::string name, int32_t initial_tokens) {
  GOP_REQUIRE(!name.empty(), "place name must not be empty");
  GOP_REQUIRE(initial_tokens >= 0, "initial token count must be non-negative");
  for (const std::string& existing : place_names_) {
    GOP_REQUIRE(existing != name, "duplicate place name: " + name);
  }
  place_names_.push_back(std::move(name));
  initial_tokens_.push_back(initial_tokens);
  capacities_.push_back(kNoCapacity);
  return PlaceRef{place_names_.size() - 1};
}

PlaceRef SanModel::add_place(std::string name, int32_t initial_tokens, int32_t capacity) {
  GOP_REQUIRE(capacity >= 0, "place capacity must be non-negative");
  GOP_REQUIRE(initial_tokens <= capacity,
              "initial token count of place '" + name + "' exceeds its declared capacity");
  const PlaceRef place = add_place(std::move(name), initial_tokens);
  capacities_.back() = capacity;
  return place;
}

const std::string& SanModel::place_name(PlaceRef place) const {
  GOP_REQUIRE(place.index < place_names_.size(), "place index out of range");
  return place_names_[place.index];
}

std::optional<int32_t> SanModel::place_capacity(PlaceRef place) const {
  GOP_REQUIRE(place.index < capacities_.size(), "place index out of range");
  if (capacities_[place.index] == kNoCapacity) return std::nullopt;
  return capacities_[place.index];
}

PlaceRef SanModel::place(const std::string& name) const {
  for (size_t i = 0; i < place_names_.size(); ++i) {
    if (place_names_[i] == name) return PlaceRef{i};
  }
  throw InvalidArgument("no place named '" + name + "' in model '" + name_ + "'");
}

Marking SanModel::initial_marking() const { return Marking(initial_tokens_); }

ActivityRef SanModel::add_timed_activity(TimedActivity activity) {
  GOP_REQUIRE(!activity.name.empty(), "activity name must not be empty");
  GOP_REQUIRE(static_cast<bool>(activity.enabled), "activity needs an enabling predicate");
  GOP_REQUIRE(static_cast<bool>(activity.rate), "timed activity needs a rate function");
  GOP_REQUIRE(!activity.cases.empty(), "activity needs at least one case");
  for (const Case& c : activity.cases) {
    GOP_REQUIRE(static_cast<bool>(c.probability) && static_cast<bool>(c.effect),
                "every case needs a probability and an effect");
  }
  timed_.push_back(std::move(activity));
  registry_.push_back(RegistryEntry{true, timed_.size() - 1});
  timed_refs_.push_back(registry_.size() - 1);
  return ActivityRef{registry_.size() - 1};
}

namespace {

/// Probability 1 for the single-case convenience overloads — IR-built, so a
/// model assembled entirely from combinators stays fully provable.
ProbFn certain_probability() {
  return ProbFn(std::function<double(const Marking&)>([](const Marking&) { return 1.0; }),
                ir::constant(1.0));
}

}  // namespace

ActivityRef SanModel::add_timed_activity(std::string name, Predicate enabled, RateFn rate,
                                         Effect effect) {
  TimedActivity activity;
  activity.name = std::move(name);
  activity.enabled = std::move(enabled);
  activity.rate = std::move(rate);
  activity.cases.push_back(Case{certain_probability(), std::move(effect)});
  return add_timed_activity(std::move(activity));
}

ActivityRef SanModel::add_instantaneous_activity(InstantaneousActivity activity) {
  GOP_REQUIRE(!activity.name.empty(), "activity name must not be empty");
  GOP_REQUIRE(static_cast<bool>(activity.enabled), "activity needs an enabling predicate");
  GOP_REQUIRE(!activity.cases.empty(), "activity needs at least one case");
  for (const Case& c : activity.cases) {
    GOP_REQUIRE(static_cast<bool>(c.probability) && static_cast<bool>(c.effect),
                "every case needs a probability and an effect");
  }
  instant_.push_back(std::move(activity));
  registry_.push_back(RegistryEntry{false, instant_.size() - 1});
  instant_refs_.push_back(registry_.size() - 1);
  return ActivityRef{registry_.size() - 1};
}

ActivityRef SanModel::add_instantaneous_activity(std::string name, Predicate enabled,
                                                 Effect effect, int priority) {
  InstantaneousActivity activity;
  activity.name = std::move(name);
  activity.enabled = std::move(enabled);
  activity.priority = priority;
  activity.cases.push_back(Case{certain_probability(), std::move(effect)});
  return add_instantaneous_activity(std::move(activity));
}

const SanModel::RegistryEntry& SanModel::entry(ActivityRef activity) const {
  GOP_REQUIRE(activity.index < registry_.size(), "activity index out of range");
  return registry_[activity.index];
}

bool SanModel::is_timed(ActivityRef activity) const { return entry(activity).timed; }

const std::string& SanModel::activity_name(ActivityRef activity) const {
  const RegistryEntry& e = entry(activity);
  return e.timed ? timed_[e.kind_index].name : instant_[e.kind_index].name;
}

ActivityRef SanModel::timed_ref(size_t timed_index) const {
  GOP_REQUIRE(timed_index < timed_refs_.size(), "timed activity index out of range");
  return ActivityRef{timed_refs_[timed_index]};
}

ActivityRef SanModel::instantaneous_ref(size_t instant_index) const {
  GOP_REQUIRE(instant_index < instant_refs_.size(), "instantaneous activity index out of range");
  return ActivityRef{instant_refs_[instant_index]};
}

}  // namespace gop::san
