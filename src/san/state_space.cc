#include "san/state_space.hh"

#include <cmath>
#include <deque>

#include "fi/fi.hh"
#include "linalg/vector_ops.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::san {

namespace {

/// A tangible marking reached from some source marking with a probability
/// (product of case probabilities along instantaneous firings).
struct ResolvedTarget {
  Marking marking;
  double probability;
};

class Explorer {
 public:
  Explorer(const SanModel& model, const GenerationOptions& options)
      : model_(model), options_(options) {}

  GeneratedChain run() {
    const std::vector<ResolvedTarget> roots = resolve(model_.initial_marking(), 0);

    std::vector<double> initial_weights;
    for (const ResolvedTarget& root : roots) {
      const size_t s = intern(root.marking);
      if (initial_weights.size() <= s) initial_weights.resize(s + 1, 0.0);
      initial_weights[s] += root.probability;
    }

    while (!frontier_.empty()) {
      const size_t state = frontier_.front();
      frontier_.pop_front();
      expand(state);
    }

    initial_weights.resize(states_.size(), 0.0);
    linalg::normalize_probability(initial_weights);
    markov::Ctmc ctmc(states_.size(), std::move(transitions_), std::move(initial_weights));
    return GeneratedChain(model_, std::move(states_), std::move(ctmc));
  }

 private:
  size_t intern(const Marking& marking) {
    auto [it, inserted] = index_.try_emplace(marking, states_.size());
    if (inserted) {
      if (GOP_FI_POINT(fi::SiteId::kStateSpaceProbeExhausted)) {
        throw ModelError(
            str_format("reachability probe budget exhausted after %zu tangible states",
                       states_.size()));
      }
      GOP_REQUIRE(states_.size() < options_.max_states,
                  str_format("state-space explosion: more than %zu tangible states",
                             options_.max_states));
      states_.push_back(marking);
      frontier_.push_back(it->second);
    }
    return it->second;
  }

  /// The instantaneous activities enabled in `marking` at the highest
  /// priority level (empty when the marking is tangible).
  std::vector<size_t> enabled_instantaneous(const Marking& marking) const {
    std::vector<size_t> enabled;
    int best_priority = 0;
    for (size_t i = 0; i < model_.instantaneous_activities().size(); ++i) {
      const InstantaneousActivity& activity = model_.instantaneous_activities()[i];
      if (!activity.enabled(marking)) continue;
      if (enabled.empty() || activity.priority > best_priority) {
        enabled.clear();
        best_priority = activity.priority;
      }
      if (activity.priority == best_priority) enabled.push_back(i);
    }
    return enabled;
  }

  void validate_case_probabilities(const std::string& activity_name, const Marking& marking,
                                   const std::vector<Case>& cases) const {
    double total = 0.0;
    for (const Case& c : cases) {
      const double p = c.probability(marking);
      GOP_REQUIRE(p >= -options_.probability_tolerance && p <= 1.0 + options_.probability_tolerance,
                  "case probability of activity '" + activity_name + "' outside [0,1] in marking " +
                      marking.to_string());
      total += p;
    }
    GOP_REQUIRE(std::abs(total - 1.0) <= options_.probability_tolerance,
                "case probabilities of activity '" + activity_name + "' sum to " +
                    format_compact(total, 12) + " (expected 1) in marking " + marking.to_string());
  }

  /// Resolves a marking to its tangible successors by firing instantaneous
  /// activities (highest priority first; uniform choice among equal
  /// priorities; probabilistic cases).
  std::vector<ResolvedTarget> resolve(const Marking& marking, size_t depth) const {
    GOP_REQUIRE(depth <= options_.max_vanishing_depth,
                "vanishing-marking chain exceeded max_vanishing_depth (loop among instantaneous "
                "activities?) at marking " +
                    marking.to_string());

    const std::vector<size_t> enabled = enabled_instantaneous(marking);
    if (enabled.empty()) return {ResolvedTarget{marking, 1.0}};

    const double selection_probability = 1.0 / static_cast<double>(enabled.size());
    std::vector<ResolvedTarget> targets;
    for (size_t activity_index : enabled) {
      const InstantaneousActivity& activity = model_.instantaneous_activities()[activity_index];
      validate_case_probabilities(activity.name, marking, activity.cases);
      for (const Case& c : activity.cases) {
        const double p = c.probability(marking);
        if (p <= options_.probability_tolerance) continue;
        Marking next = marking;
        c.effect(next);
        for (ResolvedTarget& t : resolve(next, depth + 1)) {
          t.probability *= selection_probability * p;
          targets.push_back(std::move(t));
        }
      }
    }
    return targets;
  }

  void expand(size_t state) {
    // NOTE: take a copy, states_ may reallocate while we intern successors.
    const Marking marking = states_[state];
    for (size_t i = 0; i < model_.timed_activities().size(); ++i) {
      const TimedActivity& activity = model_.timed_activities()[i];
      if (!activity.enabled(marking)) continue;
      const double rate = activity.rate(marking);
      GOP_REQUIRE(rate > 0.0 && std::isfinite(rate),
                  "timed activity '" + activity.name +
                      "' has a non-positive rate while enabled in marking " + marking.to_string());
      validate_case_probabilities(activity.name, marking, activity.cases);

      const int label = static_cast<int>(model_.timed_ref(i).index);
      for (const Case& c : activity.cases) {
        const double p = c.probability(marking);
        if (p <= options_.probability_tolerance) continue;
        Marking next = marking;
        c.effect(next);
        for (const ResolvedTarget& target : resolve(next, 0)) {
          const size_t successor = intern(target.marking);
          const double transition_rate = rate * p * target.probability;
          if (transition_rate <= 0.0) continue;
          transitions_.push_back(markov::Transition{state, successor, transition_rate, label});
        }
      }
    }
  }

  const SanModel& model_;
  const GenerationOptions& options_;
  std::vector<Marking> states_;
  std::unordered_map<Marking, size_t, MarkingHash> index_;
  std::deque<size_t> frontier_;
  std::vector<markov::Transition> transitions_;
};

}  // namespace

GeneratedChain::GeneratedChain(const SanModel& model, std::vector<Marking> states,
                               markov::Ctmc ctmc)
    : model_(&model), states_(std::move(states)), ctmc_(std::move(ctmc)) {
  for (size_t i = 0; i < states_.size(); ++i) index_.emplace(states_[i], i);
}

size_t GeneratedChain::state_index(const Marking& marking) const {
  auto it = index_.find(marking);
  GOP_REQUIRE(it != index_.end(),
              "marking " + marking.to_string() + " is not a reachable tangible state");
  return it->second;
}

std::vector<double> GeneratedChain::rate_reward_vector(const RewardStructure& reward) const {
  std::vector<double> vec(states_.size(), 0.0);
  for (size_t s = 0; s < states_.size(); ++s) vec[s] = reward.rate_at(states_[s]);
  return vec;
}

void GeneratedChain::require_timed_impulses(const RewardStructure& reward) const {
  if (!reward.has_impulses()) return;
  for (size_t i = 0; i < model_->instantaneous_activities().size(); ++i) {
    GOP_REQUIRE(reward.impulse_of(model_->instantaneous_ref(i)) == 0.0,
                "impulse rewards on instantaneous activities are not supported (activity '" +
                    model_->instantaneous_activities()[i].name + "')");
  }
}

double GeneratedChain::instant_reward(const RewardStructure& reward, double t,
                                      const markov::TransientOptions& options) const {
  return markov::transient_reward(ctmc_, rate_reward_vector(reward), t, options);
}

double GeneratedChain::accumulated_reward(const RewardStructure& reward, double t,
                                          const markov::AccumulatedOptions& options) const {
  return accumulated_reward_over(reward, markov::accumulated_occupancy(ctmc_, t, options));
}

double GeneratedChain::accumulated_reward_over(const RewardStructure& reward,
                                               const std::vector<double>& occupancy) const {
  require_timed_impulses(reward);
  GOP_REQUIRE(occupancy.size() == states_.size(), "occupancy vector length mismatch");
  double total = linalg::dot(occupancy, rate_reward_vector(reward));
  if (reward.has_impulses()) total += impulse_flux(reward, occupancy);
  return total;
}

double GeneratedChain::steady_state_reward(const RewardStructure& reward,
                                           const markov::SteadyStateOptions& options) const {
  const std::vector<double> pi = markov::steady_state_distribution(ctmc_, options);
  return steady_state_reward_over(reward, pi);
}

double GeneratedChain::steady_state_reward_over(const RewardStructure& reward,
                                                const std::vector<double>& pi) const {
  require_timed_impulses(reward);
  GOP_REQUIRE(pi.size() == states_.size(),
              "stationary distribution size does not match the chain");
  double total = linalg::dot(pi, rate_reward_vector(reward));
  if (reward.has_impulses()) total += impulse_flux(reward, pi);
  return total;
}

double GeneratedChain::transient_probability(const Predicate& predicate, double t,
                                             const markov::TransientOptions& options) const {
  GOP_REQUIRE(static_cast<bool>(predicate), "predicate must be callable");
  std::vector<double> indicator(states_.size(), 0.0);
  for (size_t s = 0; s < states_.size(); ++s) indicator[s] = predicate(states_[s]) ? 1.0 : 0.0;
  return markov::transient_reward(ctmc_, indicator, t, options);
}

double GeneratedChain::impulse_flux(const RewardStructure& reward,
                                    const std::vector<double>& state_weights) const {
  double total = 0.0;
  for (const markov::Transition& tr : ctmc_.transitions()) {
    if (tr.label < 0) continue;
    const double impulse = reward.impulse_of(ActivityRef{static_cast<size_t>(tr.label)});
    if (impulse == 0.0) continue;
    total += impulse * tr.rate * state_weights[tr.from];
  }
  return total;
}

GeneratedChain generate_state_space(const SanModel& model, const GenerationOptions& options) {
  return Explorer(model, options).run();
}

}  // namespace gop::san
