#pragma once

/// \file random_model.hh
/// Seeded random SAN instances for the property-based differential test tier
/// (docs/robustness.md): structurally valid, bounded models whose analytic
/// and empirical solutions can be cross-checked against each other without
/// any per-instance golden data.

#include <cstdint>

#include "san/model.hh"

namespace gop::san {

struct RandomModelOptions {
  size_t min_places = 2;
  size_t max_places = 4;
  size_t min_activities = 2;
  size_t max_activities = 5;
  /// Cases per activity are drawn uniformly from [1, max_cases].
  size_t max_cases = 3;
  /// Token cap per place; bounds the reachable set by (capacity+1)^places.
  int32_t place_capacity = 2;
  /// Constant activity rates are drawn uniformly from [min_rate, max_rate).
  double min_rate = 0.2;
  double max_rate = 4.0;
};

/// Generates a random SAN that is valid and lint-clean by construction:
///  - timed activities only (no instantaneous activities, hence no vanishing
///    loops) with constant positive rates;
///  - each activity moves one token from its source place (guard: at least
///    one token) to a target place, capped at place_capacity with the excess
///    token dropped, so the reachable marking set is bounded;
///  - case probabilities come from small integer weights, so they are
///    strictly positive and sum to 1 within one rounding unit;
///  - every place starts at full capacity, so every activity is enabled in
///    the initial marking and no activity is dead.
/// Built entirely from the san/expr.hh combinators with declared place
/// capacities, so every instance carries a full expression IR and
/// lint::prove_model can verify it with zero probe budget — the agreement
/// tier (tests/lint_prove_agreement_test.cc) leans on this.
/// Deterministic: the same (seed, options) always yields the same model.
///
/// The generator itself is the template registry's "random" family
/// (san/registry.hh); this function is a thin compatibility wrapper over it,
/// so registry instances and direct calls produce bit-identical chains. The
/// option bounds are therefore the family's parameter ranges (places and
/// capacities up to 64, activities up to 256).
SanModel random_san(uint64_t seed, const RandomModelOptions& options = {});

}  // namespace gop::san
