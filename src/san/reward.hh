#pragma once

/// \file reward.hh
/// UltraSAN-style reward structures: a list of predicate-rate pairs evaluated
/// on tangible markings (rate rewards) plus optional per-activity impulse
/// rewards. The paper's Tables 1 and 2 are expressed directly in this form.

#include <optional>
#include <string>
#include <vector>

#include "san/model.hh"

namespace gop::san {

/// A predicate-rate pair. When several predicates hold in a marking their
/// rates add, exactly as in UltraSAN's reward variable specification.
struct PredicateRate {
  Predicate predicate;
  RateFn rate;
};

class RewardStructure {
 public:
  RewardStructure() = default;
  explicit RewardStructure(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds `rate` for markings satisfying `predicate`.
  RewardStructure& add(Predicate predicate, double rate);

  /// Marking-dependent rate variant.
  RewardStructure& add(Predicate predicate, RateFn rate);

  /// Adds an impulse reward earned on every completion of `activity`.
  RewardStructure& add_impulse(ActivityRef activity, double reward);

  /// Total rate reward of a marking (sum over matching pairs).
  double rate_at(const Marking& marking) const;

  /// Impulse reward of an activity completion (0 when none registered).
  double impulse_of(ActivityRef activity) const;

  bool has_impulses() const { return !impulses_.empty(); }
  const std::vector<PredicateRate>& rate_rewards() const { return rates_; }

 private:
  struct Impulse {
    size_t activity_index;
    double reward;
  };

  std::string name_;
  std::vector<PredicateRate> rates_;
  std::vector<Impulse> impulses_;
};

}  // namespace gop::san
