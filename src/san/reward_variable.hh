#pragma once

/// \file reward_variable.hh
/// UltraSAN-style *reward variables*: a reward structure plus the solution
/// type it should be evaluated with (expected instant-of-time at t, expected
/// accumulated over [0, t], time-averaged over [0, t], or steady state).
/// A reward variable can be solved numerically against a generated chain or
/// estimated by simulation — the same duality the paper's §7 advocates for
/// hybrid evaluations.

#include <string>
#include <vector>

#include "san/reward.hh"
#include "san/simulator.hh"
#include "san/state_space.hh"

namespace gop::san {

enum class RewardVariableKind {
  /// E[reward rate at time t].
  kInstantOfTime,
  /// E[reward accumulated over [0, t]] (rate and impulse parts).
  kAccumulated,
  /// E[reward accumulated over [0, t]] / t.
  kTimeAveraged,
  /// Steady-state expected reward (t ignored).
  kSteadyState,
};

const char* reward_variable_kind_name(RewardVariableKind kind);

class RewardVariable {
 public:
  RewardVariable(std::string name, RewardStructure structure, RewardVariableKind kind,
                 double time = 0.0);

  const std::string& name() const { return name_; }
  RewardVariableKind kind() const { return kind_; }
  double time() const { return time_; }
  const RewardStructure& structure() const { return structure_; }

  /// Numerical solution against a generated chain.
  double solve(const GeneratedChain& chain) const;

  /// Monte Carlo estimate by simulating the SAN (kSteadyState is estimated
  /// as the time average over [0, time], so `time` must be set meaningfully
  /// for it too).
  sim::ReplicationResult estimate(const SanSimulator& simulator,
                                  const sim::ReplicationOptions& options = {}) const;

 private:
  std::string name_;
  RewardStructure structure_;
  RewardVariableKind kind_;
  double time_;
};

/// Solves a batch of variables against one chain (the common "study" shape:
/// many measures, one model).
std::vector<double> solve_all(const GeneratedChain& chain,
                              const std::vector<RewardVariable>& variables);

}  // namespace gop::san
