#include "san/template.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "san/hash.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::san::tpl {

const char* kind_name(ParamKind kind) {
  switch (kind) {
    case ParamKind::kInt:
      return "int";
    case ParamKind::kReal:
      return "real";
    case ParamKind::kEnum:
      return "enum";
  }
  return "unknown";
}

ParamValue ParamValue::of_int(int64_t value) {
  ParamValue v;
  v.kind = ParamKind::kInt;
  v.int_value = value;
  return v;
}

ParamValue ParamValue::of_real(double value) {
  ParamValue v;
  v.kind = ParamKind::kReal;
  v.real_value = value;
  return v;
}

ParamValue ParamValue::of_enum(std::string value) {
  ParamValue v;
  v.kind = ParamKind::kEnum;
  v.enum_value = std::move(value);
  return v;
}

ParamValue ParamValue::parse(const std::string& text) {
  GOP_REQUIRE(!text.empty(), "ParamValue::parse: empty value");
  // Integer literal first (no '.', 'e' or similar), then a general double;
  // anything that does not consume the whole text is enum text.
  {
    errno = 0;
    char* end = nullptr;
    const long long as_int = std::strtoll(text.c_str(), &end, 10);
    if (errno == 0 && end != nullptr && *end == '\0') {
      return of_int(static_cast<int64_t>(as_int));
    }
  }
  {
    errno = 0;
    char* end = nullptr;
    const double as_real = std::strtod(text.c_str(), &end);
    if (errno == 0 && end != nullptr && *end == '\0' && std::isfinite(as_real)) {
      return of_real(as_real);
    }
  }
  return of_enum(text);
}

std::string ParamValue::to_string() const {
  switch (kind) {
    case ParamKind::kInt:
      return str_format("%lld", static_cast<long long>(int_value));
    case ParamKind::kReal:
      return format_compact(real_value, 12);
    case ParamKind::kEnum:
      return enum_value;
  }
  return "";
}

bool operator==(const ParamValue& a, const ParamValue& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ParamKind::kInt:
      return a.int_value == b.int_value;
    case ParamKind::kReal:
      // Bitwise, matching param_hash: 1-ulp apart is a different value.
      return std::memcmp(&a.real_value, &b.real_value, sizeof(double)) == 0;
    case ParamKind::kEnum:
      return a.enum_value == b.enum_value;
  }
  return false;
}

ParamSpec ParamSpec::integer(std::string name, int64_t def, int64_t min, int64_t max,
                             std::string description) {
  GOP_REQUIRE(min <= def && def <= max, "ParamSpec: int default outside [min, max]");
  ParamSpec spec;
  spec.name = std::move(name);
  spec.kind = ParamKind::kInt;
  spec.description = std::move(description);
  spec.int_default = def;
  spec.int_min = min;
  spec.int_max = max;
  return spec;
}

ParamSpec ParamSpec::real(std::string name, double def, double min, double max,
                          std::string description) {
  GOP_REQUIRE(min <= def && def <= max, "ParamSpec: real default outside [min, max]");
  ParamSpec spec;
  spec.name = std::move(name);
  spec.kind = ParamKind::kReal;
  spec.description = std::move(description);
  spec.real_default = def;
  spec.real_min = min;
  spec.real_max = max;
  return spec;
}

ParamSpec ParamSpec::enumeration(std::string name, std::string def,
                                 std::vector<std::string> choices, std::string description) {
  GOP_REQUIRE(!choices.empty(), "ParamSpec: enum needs at least one choice");
  bool found = false;
  for (const std::string& c : choices) found = found || c == def;
  GOP_REQUIRE(found, "ParamSpec: enum default not among the choices");
  ParamSpec spec;
  spec.name = std::move(name);
  spec.kind = ParamKind::kEnum;
  spec.description = std::move(description);
  spec.choices = std::move(choices);
  spec.enum_default = std::move(def);
  return spec;
}

Assignment& Assignment::set(const std::string& name, ParamValue value) {
  GOP_REQUIRE(!name.empty(), "Assignment: parameter name must be non-empty");
  values_[name] = std::move(value);
  return *this;
}

Assignment& Assignment::set_int(const std::string& name, int64_t value) {
  return set(name, ParamValue::of_int(value));
}

Assignment& Assignment::set_real(const std::string& name, double value) {
  return set(name, ParamValue::of_real(value));
}

Assignment& Assignment::set_enum(const std::string& name, std::string value) {
  return set(name, ParamValue::of_enum(std::move(value)));
}

Assignment& Assignment::set_text(const std::string& name, const std::string& text) {
  return set(name, ParamValue::parse(text));
}

const ParamValue* Assignment::find(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? nullptr : &it->second;
}

int64_t Assignment::int_at(const std::string& name) const {
  const ParamValue* v = find(name);
  GOP_REQUIRE(v != nullptr, "Assignment: no parameter named '" + name + "'");
  GOP_REQUIRE(v->kind == ParamKind::kInt, "Assignment: parameter '" + name + "' is not an int");
  return v->int_value;
}

double Assignment::real_at(const std::string& name) const {
  const ParamValue* v = find(name);
  GOP_REQUIRE(v != nullptr, "Assignment: no parameter named '" + name + "'");
  GOP_REQUIRE(v->kind == ParamKind::kReal, "Assignment: parameter '" + name + "' is not a real");
  return v->real_value;
}

const std::string& Assignment::enum_at(const std::string& name) const {
  const ParamValue* v = find(name);
  GOP_REQUIRE(v != nullptr, "Assignment: no parameter named '" + name + "'");
  GOP_REQUIRE(v->kind == ParamKind::kEnum, "Assignment: parameter '" + name + "' is not an enum");
  return v->enum_value;
}

std::string Assignment::to_string() const {
  std::string out;
  for (const auto& [name, value] : values_) {
    if (!out.empty()) out += ',';
    out += name;
    out += '=';
    out += value.to_string();
  }
  return out;
}

uint64_t param_hash(const Assignment& resolved) {
  Fnv1a hash;
  hash.u64(resolved.size());
  for (const auto& [name, value] : resolved.values()) {
    hash.u64(name.size());
    hash.bytes(name.data(), name.size());
    hash.u8(static_cast<uint8_t>(value.kind));
    switch (value.kind) {
      case ParamKind::kInt:
        hash.u64(static_cast<uint64_t>(value.int_value));
        break;
      case ParamKind::kReal:
        hash.f64(value.real_value);
        break;
      case ParamKind::kEnum:
        hash.u64(value.enum_value.size());
        hash.bytes(value.enum_value.data(), value.enum_value.size());
        break;
    }
  }
  return hash.digest();
}

Assignment parse_assignment_list(const std::string& text) {
  Assignment assignment;
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    const std::string entry = text.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    GOP_REQUIRE(eq != std::string::npos && eq > 0,
                "parse_assignment_list: entry '" + entry + "' is not of the form k=v");
    const std::string name = entry.substr(0, eq);
    GOP_REQUIRE(assignment.find(name) == nullptr,
                "parse_assignment_list: parameter '" + name + "' set twice");
    assignment.set(name, ParamValue::parse(entry.substr(eq + 1)));
  }
  return assignment;
}

Template::Template(std::string name, std::string description, std::vector<ParamSpec> params,
                   Builder builder)
    : name_(std::move(name)),
      description_(std::move(description)),
      params_(std::move(params)),
      builder_(std::move(builder)) {
  GOP_REQUIRE(!name_.empty(), "Template: name must be non-empty");
  GOP_REQUIRE(builder_ != nullptr, "Template: builder must be set");
  for (size_t i = 0; i < params_.size(); ++i) {
    GOP_REQUIRE(!params_[i].name.empty(), "Template: parameter names must be non-empty");
    for (size_t j = i + 1; j < params_.size(); ++j) {
      GOP_REQUIRE(params_[i].name != params_[j].name,
                  "Template '" + name_ + "': duplicate parameter '" + params_[i].name + "'");
    }
  }
}

const ParamSpec* Template::find_param(const std::string& name) const {
  for (const ParamSpec& spec : params_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

namespace {

/// Validates `value` against `spec` and returns it coerced to the declared
/// kind. `where` names the template for error messages.
ParamValue coerce(const std::string& where, const ParamSpec& spec, const ParamValue& value) {
  switch (spec.kind) {
    case ParamKind::kInt: {
      int64_t v = 0;
      if (value.kind == ParamKind::kInt) {
        v = value.int_value;
      } else if (value.kind == ParamKind::kReal && std::floor(value.real_value) == value.real_value &&
                 std::abs(value.real_value) < 9.0e18) {
        v = static_cast<int64_t>(value.real_value);
      } else {
        GOP_REQUIRE(false, where + ": parameter '" + spec.name + "' expects an int, got " +
                               kind_name(value.kind) + " '" + value.to_string() + "'");
      }
      GOP_REQUIRE(spec.int_min <= v && v <= spec.int_max,
                  where + ": parameter '" + spec.name + "' = " + std::to_string(v) +
                      " outside [" + std::to_string(spec.int_min) + ", " +
                      std::to_string(spec.int_max) + "]");
      return ParamValue::of_int(v);
    }
    case ParamKind::kReal: {
      double v = 0.0;
      if (value.kind == ParamKind::kReal) {
        v = value.real_value;
      } else if (value.kind == ParamKind::kInt) {
        v = static_cast<double>(value.int_value);
      } else {
        GOP_REQUIRE(false, where + ": parameter '" + spec.name + "' expects a real, got enum '" +
                               value.to_string() + "'");
      }
      GOP_REQUIRE(std::isfinite(v) && spec.real_min <= v && v <= spec.real_max,
                  where + ": parameter '" + spec.name + "' = " + format_compact(v, 12) +
                      " outside [" + format_compact(spec.real_min, 12) + ", " +
                      format_compact(spec.real_max, 12) + "]");
      return ParamValue::of_real(v);
    }
    case ParamKind::kEnum: {
      GOP_REQUIRE(value.kind == ParamKind::kEnum,
                  where + ": parameter '" + spec.name + "' expects one of its enum choices, got " +
                      kind_name(value.kind) + " '" + value.to_string() + "'");
      for (const std::string& c : spec.choices) {
        if (c == value.enum_value) return value;
      }
      GOP_REQUIRE(false, where + ": parameter '" + spec.name + "' = '" + value.enum_value +
                             "' is not a valid choice (" + gop::join(spec.choices, ", ") + ")");
      return value;  // unreachable
    }
  }
  GOP_ENSURE(false, "coerce: unknown ParamKind");
  return value;  // unreachable
}

}  // namespace

Assignment Template::resolve(const Assignment& overrides) const {
  const std::string where = "template '" + name_ + "'";
  for (const auto& [name, value] : overrides.values()) {
    (void)value;
    GOP_REQUIRE(find_param(name) != nullptr, where + ": unknown parameter '" + name + "'");
  }
  Assignment resolved;
  for (const ParamSpec& spec : params_) {
    if (const ParamValue* given = overrides.find(spec.name)) {
      resolved.set(spec.name, coerce(where, spec, *given));
      continue;
    }
    switch (spec.kind) {
      case ParamKind::kInt:
        resolved.set(spec.name, ParamValue::of_int(spec.int_default));
        break;
      case ParamKind::kReal:
        resolved.set(spec.name, ParamValue::of_real(spec.real_default));
        break;
      case ParamKind::kEnum:
        resolved.set(spec.name, ParamValue::of_enum(spec.enum_default));
        break;
    }
  }
  return resolved;
}

Instance Template::instantiate(const Assignment& overrides) const {
  const Assignment resolved = resolve(overrides);
  Instance instance = builder_(resolved);
  GOP_ENSURE(instance.model != nullptr,
             "template '" + name_ + "': builder returned no model");
  instance.resolved = resolved;
  instance.params_hash = param_hash(resolved);
  return instance;
}

}  // namespace gop::san::tpl
