#pragma once

/// \file marking.hh
/// A marking assigns a token count to every place of a SAN. Markings are the
/// states of the reachability graph; they hash and compare by value.

#include <cstdint>
#include <string>
#include <vector>

namespace gop::san {

class Marking {
 public:
  Marking() = default;
  explicit Marking(size_t place_count, int32_t fill = 0) : tokens_(place_count, fill) {}
  explicit Marking(std::vector<int32_t> tokens) : tokens_(std::move(tokens)) {}

  size_t size() const { return tokens_.size(); }

  int32_t operator[](size_t place) const { return tokens_[place]; }
  int32_t& operator[](size_t place) { return tokens_[place]; }

  const std::vector<int32_t>& tokens() const { return tokens_; }

  bool operator==(const Marking& other) const = default;

  /// "(1,0,2)" — mostly for diagnostics and the Graphviz export.
  std::string to_string() const;

 private:
  std::vector<int32_t> tokens_;
};

struct MarkingHash {
  size_t operator()(const Marking& m) const;
};

}  // namespace gop::san
