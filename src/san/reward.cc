#include "san/reward.hh"

#include "util/error.hh"

namespace gop::san {

RewardStructure& RewardStructure::add(Predicate predicate, double rate) {
  return add(std::move(predicate), [rate](const Marking&) { return rate; });
}

RewardStructure& RewardStructure::add(Predicate predicate, RateFn rate) {
  GOP_REQUIRE(static_cast<bool>(predicate), "reward predicate must be callable");
  GOP_REQUIRE(static_cast<bool>(rate), "reward rate must be callable");
  rates_.push_back(PredicateRate{std::move(predicate), std::move(rate)});
  return *this;
}

RewardStructure& RewardStructure::add_impulse(ActivityRef activity, double reward) {
  impulses_.push_back(Impulse{activity.index, reward});
  return *this;
}

double RewardStructure::rate_at(const Marking& marking) const {
  double total = 0.0;
  for (const PredicateRate& pr : rates_) {
    if (pr.predicate(marking)) total += pr.rate(marking);
  }
  return total;
}

double RewardStructure::impulse_of(ActivityRef activity) const {
  double total = 0.0;
  for (const Impulse& imp : impulses_) {
    if (imp.activity_index == activity.index) total += imp.reward;
  }
  return total;
}

}  // namespace gop::san
