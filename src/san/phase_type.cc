#include "san/phase_type.hh"

#include "san/expr.hh"
#include "util/error.hh"

namespace gop::san {

ErlangActivity add_erlang_activity(SanModel& model, const std::string& name, Predicate enabled,
                                   double rate, int32_t stages, Effect effect) {
  GOP_REQUIRE(rate > 0.0, "Erlang activity rate must be positive");
  GOP_REQUIRE(stages >= 1, "Erlang activity needs at least one stage");
  GOP_REQUIRE(static_cast<bool>(enabled) && static_cast<bool>(effect),
              "Erlang activity needs an enabling predicate and an effect");

  ErlangActivity erlang;
  erlang.stage = model.add_place(name + "_stage", 0);
  const double stage_rate = rate * static_cast<double>(stages);

  // Intermediate stages advance the counter ...
  for (int32_t s = 0; s + 1 < stages; ++s) {
    erlang.stage_activities.push_back(model.add_timed_activity(
        name + "_s" + std::to_string(s), all_of({enabled, mark_eq(erlang.stage, s)}),
        constant_rate(stage_rate), set_mark(erlang.stage, s + 1)));
  }
  // ... and the final stage resets it and applies the completion effect.
  erlang.stage_activities.push_back(model.add_timed_activity(
      name + "_s" + std::to_string(stages - 1),
      all_of({std::move(enabled), mark_eq(erlang.stage, stages - 1)}),
      constant_rate(stage_rate),
      sequence({set_mark(erlang.stage, 0), std::move(effect)})));
  return erlang;
}

}  // namespace gop::san
