#include "san/dot_export.hh"

#include <sstream>

#include "util/strings.hh"

namespace gop::san {

namespace {

std::string sanitize(const std::string& name) {
  std::string out;
  for (char c : name) out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  return out;
}

std::string marking_label(const SanModel& model, const Marking& marking) {
  std::vector<std::string> parts;
  for (size_t p = 0; p < marking.size(); ++p) {
    if (marking[p] == 0) continue;
    if (marking[p] == 1) {
      parts.push_back(model.place_name(PlaceRef{p}));
    } else {
      parts.push_back(model.place_name(PlaceRef{p}) + "=" + str_format("%d", marking[p]));
    }
  }
  if (parts.empty()) return "(empty)";
  return join(parts, "\\n");
}

}  // namespace

std::string model_to_dot(const SanModel& model) {
  std::ostringstream os;
  os << "digraph \"" << model.name() << "\" {\n  rankdir=LR;\n";
  os << "  node [fontname=\"Helvetica\"];\n";
  for (size_t p = 0; p < model.place_count(); ++p) {
    const std::string name = model.place_name(PlaceRef{p});
    const int32_t tokens = model.initial_marking()[p];
    os << "  place_" << sanitize(name) << " [shape=circle, label=\"" << name;
    if (tokens > 0) os << "\\n(" << tokens << ")";
    os << "\"];\n";
  }
  for (const TimedActivity& activity : model.timed_activities()) {
    os << "  timed_" << sanitize(activity.name)
       << " [shape=box, style=filled, fillcolor=gray70, height=0.6, width=0.15, label=\""
       << activity.name << "\"];\n";
  }
  for (const InstantaneousActivity& activity : model.instantaneous_activities()) {
    os << "  inst_" << sanitize(activity.name)
       << " [shape=box, height=0.6, width=0.05, label=\"" << activity.name << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string reachability_to_dot(const GeneratedChain& chain, size_t max_states) {
  std::ostringstream os;
  os << "digraph \"" << chain.model().name() << "_reachability\" {\n";
  os << "  node [shape=box, fontname=\"Helvetica\", fontsize=10];\n";
  const size_t shown = std::min(chain.state_count(), max_states);
  for (size_t s = 0; s < shown; ++s) {
    os << "  s" << s << " [label=\"s" << s << "\\n"
       << marking_label(chain.model(), chain.states()[s]) << "\"";
    if (chain.ctmc().is_absorbing(s)) os << ", peripheries=2";
    os << "];\n";
  }
  for (const markov::Transition& tr : chain.ctmc().transitions()) {
    if (tr.from >= shown || tr.to >= shown) continue;
    std::string label;
    if (tr.label >= 0) {
      label = chain.model().activity_name(ActivityRef{static_cast<size_t>(tr.label)});
    }
    os << "  s" << tr.from << " -> s" << tr.to << " [label=\"" << label << " @ "
       << format_compact(tr.rate, 4) << "\"];\n";
  }
  if (shown < chain.state_count()) {
    os << "  truncated [shape=plaintext, label=\"(" << chain.state_count() - shown
       << " more states not shown)\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace gop::san
