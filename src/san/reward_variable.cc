#include "san/reward_variable.hh"

#include "util/error.hh"

namespace gop::san {

const char* reward_variable_kind_name(RewardVariableKind kind) {
  switch (kind) {
    case RewardVariableKind::kInstantOfTime:
      return "instant-of-time";
    case RewardVariableKind::kAccumulated:
      return "accumulated";
    case RewardVariableKind::kTimeAveraged:
      return "time-averaged";
    case RewardVariableKind::kSteadyState:
      return "steady-state";
  }
  return "unknown";
}

RewardVariable::RewardVariable(std::string name, RewardStructure structure,
                               RewardVariableKind kind, double time)
    : name_(std::move(name)), structure_(std::move(structure)), kind_(kind), time_(time) {
  GOP_REQUIRE(!name_.empty(), "reward variable needs a name");
  if (kind_ != RewardVariableKind::kSteadyState) {
    GOP_REQUIRE(time_ >= 0.0, "reward variable needs a non-negative time");
  }
  if (kind_ == RewardVariableKind::kTimeAveraged) {
    GOP_REQUIRE(time_ > 0.0, "time-averaged reward needs a positive horizon");
  }
}

double RewardVariable::solve(const GeneratedChain& chain) const {
  switch (kind_) {
    case RewardVariableKind::kInstantOfTime:
      return chain.instant_reward(structure_, time_);
    case RewardVariableKind::kAccumulated:
      return chain.accumulated_reward(structure_, time_);
    case RewardVariableKind::kTimeAveraged:
      return chain.accumulated_reward(structure_, time_) / time_;
    case RewardVariableKind::kSteadyState:
      return chain.steady_state_reward(structure_);
  }
  throw InternalError("unreachable reward variable kind");
}

sim::ReplicationResult RewardVariable::estimate(const SanSimulator& simulator,
                                                const sim::ReplicationOptions& options) const {
  switch (kind_) {
    case RewardVariableKind::kInstantOfTime:
      return simulator.estimate_instant_reward(structure_, time_, options);
    case RewardVariableKind::kAccumulated:
      return simulator.estimate_accumulated_reward(structure_, time_, options);
    case RewardVariableKind::kTimeAveraged:
    case RewardVariableKind::kSteadyState: {
      GOP_REQUIRE(time_ > 0.0,
                  "simulation estimate of a time-averaged/steady-state variable needs a "
                  "positive horizon");
      return sim::run_replications(
          [&](sim::Rng& rng) {
            return simulator.sample_accumulated_reward(rng, structure_, time_) / time_;
          },
          options);
    }
  }
  throw InternalError("unreachable reward variable kind");
}

std::vector<double> solve_all(const GeneratedChain& chain,
                              const std::vector<RewardVariable>& variables) {
  std::vector<double> results;
  results.reserve(variables.size());
  for (const RewardVariable& variable : variables) results.push_back(variable.solve(chain));
  return results;
}

}  // namespace gop::san
