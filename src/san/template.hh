#pragma once

/// \file template.hh
/// SAN templates (docs/templates.md), after Montecchi et al., "Stochastic
/// Activity Networks Templates": a Template is a named set of typed
/// parameters (ParamSpec: int / real / enum with ranges and defaults) plus a
/// build function that assembles a SanModel — from the san/expr.hh
/// combinators and the san/compose.hh operators — for one parameter
/// Assignment. Instantiation is a pure function of the *resolved* assignment
/// (defaults filled in, values validated and coerced against the specs), so
/// two instances of the same family with the same resolved assignment are
/// identical, and `param_hash` of that resolved assignment is a stable
/// content key (1-ulp sensitive for reals) that gop::serve folds into its
/// instance cache keys.
///
/// Builders are expected to use combinators only and to declare place
/// capacities, so every instance stays reflectable through ExprIr and
/// provable by lint::prove_model — the template prover tier
/// (tests/san_template_prove_test.cc) enforces this across the registry.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "san/model.hh"
#include "san/reward.hh"

namespace gop::san::tpl {

enum class ParamKind { kInt, kReal, kEnum };

const char* kind_name(ParamKind kind);

/// One typed parameter value. Construct via the of_* factories or parse()
/// (the CLI `--set name=value` path: integer literal -> kInt, other numeric
/// literal -> kReal, anything else -> kEnum text).
struct ParamValue {
  ParamKind kind = ParamKind::kReal;
  int64_t int_value = 0;
  double real_value = 0.0;
  std::string enum_value;

  static ParamValue of_int(int64_t value);
  static ParamValue of_real(double value);
  static ParamValue of_enum(std::string value);
  static ParamValue parse(const std::string& text);

  std::string to_string() const;

  friend bool operator==(const ParamValue& a, const ParamValue& b);
};

/// The declared shape of one template parameter: kind, default, and range
/// (inclusive bounds for int/real, a choice list for enums).
struct ParamSpec {
  std::string name;
  ParamKind kind = ParamKind::kReal;
  std::string description;

  int64_t int_default = 0;
  int64_t int_min = 0;
  int64_t int_max = 0;

  double real_default = 0.0;
  double real_min = 0.0;
  double real_max = 0.0;

  std::vector<std::string> choices;
  std::string enum_default;

  static ParamSpec integer(std::string name, int64_t def, int64_t min, int64_t max,
                           std::string description = "");
  static ParamSpec real(std::string name, double def, double min, double max,
                        std::string description = "");
  static ParamSpec enumeration(std::string name, std::string def, std::vector<std::string> choices,
                               std::string description = "");
};

/// A (partial or resolved) parameter binding, name -> value. Ordered by name,
/// so iteration — and therefore param_hash — is independent of insertion
/// order.
class Assignment {
 public:
  Assignment& set(const std::string& name, ParamValue value);
  Assignment& set_int(const std::string& name, int64_t value);
  Assignment& set_real(const std::string& name, double value);
  Assignment& set_enum(const std::string& name, std::string value);
  /// set(name, ParamValue::parse(text)) — the `--set name=value` path.
  Assignment& set_text(const std::string& name, const std::string& text);

  bool empty() const { return values_.empty(); }
  size_t size() const { return values_.size(); }
  const ParamValue* find(const std::string& name) const;
  const std::map<std::string, ParamValue>& values() const { return values_; }

  /// Typed accessors for builders running on a *resolved* assignment; throw
  /// gop::InvalidArgument when the name is absent or the kind differs.
  int64_t int_at(const std::string& name) const;
  double real_at(const std::string& name) const;
  const std::string& enum_at(const std::string& name) const;

  /// "a=1,b=2.5,mode=fast" (name order).
  std::string to_string() const;

 private:
  std::map<std::string, ParamValue> values_;
};

/// FNV-1a over a resolved assignment: sorted parameter names, kind tags, and
/// value bits (IEEE-754 bit pattern for reals — 1-ulp sensitive).
uint64_t param_hash(const Assignment& resolved);

/// Parses a CLI-style override list "k=v[,k=v...]" into an assignment;
/// values go through ParamValue::parse. Empty text is an empty assignment.
/// Throws gop::InvalidArgument on a malformed entry or a repeated name.
Assignment parse_assignment_list(const std::string& text);

/// One built template instance: the model, its reward catalog, and the
/// resolved assignment (with its hash) that produced it. Matches the shape
/// serve::InlineModel holds, so serving a template instance reuses the whole
/// admission/solve path.
struct Instance {
  std::unique_ptr<SanModel> model;
  std::vector<RewardStructure> rewards;
  Assignment resolved;
  uint64_t params_hash = 0;
};

class Template {
 public:
  /// Builds the model + reward catalog for one resolved assignment. The
  /// builder sees every declared parameter (defaults filled in) and may
  /// assume range validity.
  using Builder = std::function<Instance(const Assignment& resolved)>;

  Template(std::string name, std::string description, std::vector<ParamSpec> params,
           Builder builder);

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }
  const std::vector<ParamSpec>& params() const { return params_; }
  const ParamSpec* find_param(const std::string& name) const;

  /// Validates `overrides` against the specs (unknown names, kind mismatches
  /// and out-of-range values throw gop::InvalidArgument), fills defaults, and
  /// coerces values to the declared kind (an integral real is accepted for an
  /// int parameter, an int promotes to real). Pure: no building.
  Assignment resolve(const Assignment& overrides) const;

  /// resolve + build; `instance.params_hash` is param_hash(resolved).
  Instance instantiate(const Assignment& overrides = {}) const;

 private:
  std::string name_;
  std::string description_;
  std::vector<ParamSpec> params_;
  Builder builder_;
};

}  // namespace gop::san::tpl
