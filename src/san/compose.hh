#pragma once

/// \file compose.hh
/// Composed SAN models in the spirit of UltraSAN's composition operators:
///
///  - join(a, b, spec): one model containing both SANs, with selected place
///    pairs fused into shared places (the standard way to couple submodels
///    through common state variables);
///  - replicate(model, count, shared): `count` anonymous replicas of a SAN
///    whose `shared` places are fused across all replicas (e.g. a common
///    repair facility), every other place duplicated per replica.
///
/// Activities of the component models are carried over unchanged in
/// semantics: their predicates, rates and effects are wrapped so they keep
/// seeing their own model's marking layout while operating on the composed
/// marking. Place and activity names are prefixed to stay unique.

#include <string>
#include <utility>
#include <vector>

#include "san/model.hh"

namespace gop::san {

struct JoinSpec {
  /// Name of the composed model.
  std::string name = "joined";
  /// Pairs of place names (left model, right model) to fuse. The fused place
  /// keeps the left name. Initial token counts must agree.
  std::vector<std::pair<std::string, std::string>> shared;
  /// Prefixes applied to non-shared place names and all activity names to
  /// keep them unique ("" keeps the left model's names bare).
  std::string left_prefix;
  std::string right_prefix = "r_";
};

struct JoinedModel {
  SanModel model;
  /// Maps a component model's place index to the composed model's index.
  std::vector<size_t> left_place_map;
  std::vector<size_t> right_place_map;

  PlaceRef left_place(PlaceRef place) const { return PlaceRef{left_place_map.at(place.index)}; }
  PlaceRef right_place(PlaceRef place) const { return PlaceRef{right_place_map.at(place.index)}; }
};

/// Joins two SANs over shared places. Throws gop::InvalidArgument on unknown
/// place names, duplicate fusions or mismatched initial markings.
JoinedModel join(const SanModel& left, const SanModel& right, const JoinSpec& spec);

struct ReplicatedModel {
  SanModel model;
  /// place_maps[r][i] is the composed index of replica r's place i.
  std::vector<std::vector<size_t>> place_maps;

  PlaceRef replica_place(size_t replica, PlaceRef place) const {
    return PlaceRef{place_maps.at(replica).at(place.index)};
  }
};

/// Replicates `prototype` `count` times, fusing the places named in
/// `shared_places` across all replicas.
ReplicatedModel replicate(const SanModel& prototype, size_t count,
                          const std::vector<std::string>& shared_places,
                          const std::string& name = "replicated");

}  // namespace gop::san
