#include "san/hash.hh"

#include <string>

#include "markov/ctmc.hh"

namespace gop::san {

uint64_t fnv1a(const void* data, size_t size) {
  Fnv1a h;
  h.bytes(data, size);
  return h.digest();
}

namespace {

void hash_string(Fnv1a& h, const std::string& s) {
  h.u64(s.size());
  h.bytes(s.data(), s.size());
}

}  // namespace

uint64_t chain_hash(const GeneratedChain& chain) {
  Fnv1a h;
  h.u64(0x43484149ULL);  // "CHAI" domain tag
  // Model identity first: the digest binds the chain to the *named* model it
  // was generated from, so snapshot load (san/snapshot.hh) cannot silently
  // re-attach a chain blob to a different model of the same shape.
  const SanModel& model = chain.model();
  hash_string(h, model.name());
  h.u64(model.place_count());
  for (size_t p = 0; p < model.place_count(); ++p) {
    hash_string(h, model.place_name(PlaceRef{p}));
  }
  h.u64(model.activity_count());
  for (size_t a = 0; a < model.activity_count(); ++a) {
    hash_string(h, model.activity_name(ActivityRef{a}));
  }
  h.u64(chain.state_count());
  h.u64(chain.model().place_count());
  for (const Marking& marking : chain.states()) {
    for (int32_t tokens : marking.tokens()) h.i32(tokens);
  }
  const markov::Ctmc& ctmc = chain.ctmc();
  h.u64(ctmc.transitions().size());
  for (const markov::Transition& tr : ctmc.transitions()) {
    h.u64(tr.from);
    h.u64(tr.to);
    h.i32(tr.label);
    h.f64(tr.rate);
  }
  for (double p : ctmc.initial_distribution()) h.f64(p);
  return h.digest();
}

uint64_t reward_hash(const GeneratedChain& chain, const RewardStructure& reward) {
  Fnv1a h;
  h.u64(0x52574152ULL);  // "RWAR" domain tag
  const std::vector<double> rates = chain.rate_reward_vector(reward);
  h.u64(rates.size());
  for (double r : rates) h.f64(r);
  const size_t activities = chain.model().activity_count();
  h.u64(activities);
  for (size_t a = 0; a < activities; ++a) {
    h.f64(reward.impulse_of(ActivityRef{a}));
  }
  return h.digest();
}

uint64_t grid_hash(std::span<const double> transient_times,
                   std::span<const double> accumulated_times, bool steady_state) {
  Fnv1a h;
  h.u64(0x47524944ULL);  // "GRID" domain tag
  h.u64(transient_times.size());
  for (double t : transient_times) h.f64(t);
  h.u64(accumulated_times.size());
  for (double t : accumulated_times) h.f64(t);
  h.u8(steady_state ? 1 : 0);
  return h.digest();
}

}  // namespace gop::san
