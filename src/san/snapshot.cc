#include "san/snapshot.hh"

#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "markov/ctmc.hh"
#include "san/hash.hh"
#include "san/marking.hh"
#include "util/strings.hh"

namespace gop::san::snapshot {

namespace {

void append_le(std::string& out, uint64_t v, size_t bytes) {
  for (size_t i = 0; i < bytes; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffULL));
  }
}

uint64_t read_le(const unsigned char* p, size_t bytes) {
  uint64_t v = 0;
  for (size_t i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void Writer::u8(uint8_t v) { append_le(buffer_, v, 1); }
void Writer::u32(uint32_t v) { append_le(buffer_, v, 4); }
void Writer::u64(uint64_t v) { append_le(buffer_, v, 8); }
void Writer::i32(int32_t v) { append_le(buffer_, static_cast<uint32_t>(v), 4); }

void Writer::f64(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void Writer::str(std::string_view s) {
  u64(s.size());
  buffer_.append(s.data(), s.size());
}

const unsigned char* Reader::need(size_t count) {
  if (count > data_.size() - pos_) {
    throw SnapshotError(str_format(
        "snapshot truncated: need %zu bytes at offset %zu, have %zu", count, pos_,
        data_.size() - pos_));
  }
  const auto* p = reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  pos_ += count;
  return p;
}

uint8_t Reader::u8() { return static_cast<uint8_t>(read_le(need(1), 1)); }
uint32_t Reader::u32() { return static_cast<uint32_t>(read_le(need(4), 4)); }
uint64_t Reader::u64() { return read_le(need(8), 8); }
int32_t Reader::i32() { return static_cast<int32_t>(static_cast<uint32_t>(read_le(need(4), 4))); }

double Reader::f64() {
  const uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string Reader::str() {
  const uint64_t size = u64();
  if (size > data_.size() - pos_) {
    throw SnapshotError(str_format(
        "snapshot truncated: string of %llu bytes at offset %zu exceeds remaining %zu",
        static_cast<unsigned long long>(size), pos_, data_.size() - pos_));
  }
  const auto* p = reinterpret_cast<const char*>(need(static_cast<size_t>(size)));
  return std::string(p, static_cast<size_t>(size));
}

void write_chain(Writer& writer, const GeneratedChain& chain) {
  writer.u64(chain_hash(chain));
  writer.u64(chain.state_count());
  writer.u64(chain.model().place_count());
  for (const Marking& marking : chain.states()) {
    for (int32_t tokens : marking.tokens()) writer.i32(tokens);
  }
  const markov::Ctmc& ctmc = chain.ctmc();
  writer.u64(ctmc.transitions().size());
  for (const markov::Transition& tr : ctmc.transitions()) {
    writer.u64(tr.from);
    writer.u64(tr.to);
    writer.i32(tr.label);
    writer.f64(tr.rate);
  }
  for (double p : ctmc.initial_distribution()) writer.f64(p);
}

GeneratedChain read_chain(Reader& reader, const SanModel& model) {
  const uint64_t stored_hash = reader.u64();
  const uint64_t state_count = reader.u64();
  const uint64_t place_count = reader.u64();
  if (place_count != model.place_count()) {
    throw SnapshotError(str_format(
        "snapshot chain has %llu places but the rebuilt model has %zu",
        static_cast<unsigned long long>(place_count), model.place_count()));
  }
  // A marking is >= 4 bytes per place; reject state counts the remaining
  // bytes cannot possibly hold before allocating anything.
  if (place_count != 0 && state_count > reader.remaining() / (4 * place_count)) {
    throw SnapshotError("snapshot truncated: state section exceeds remaining bytes");
  }
  std::vector<Marking> states;
  states.reserve(static_cast<size_t>(state_count));
  for (uint64_t s = 0; s < state_count; ++s) {
    std::vector<int32_t> tokens(static_cast<size_t>(place_count));
    for (int32_t& t : tokens) t = reader.i32();
    states.emplace_back(std::move(tokens));
  }

  const uint64_t transition_count = reader.u64();
  if (transition_count > reader.remaining() / 28) {  // 8+8+4+8 bytes each
    throw SnapshotError("snapshot truncated: transition section exceeds remaining bytes");
  }
  std::vector<markov::Transition> transitions;
  transitions.reserve(static_cast<size_t>(transition_count));
  for (uint64_t i = 0; i < transition_count; ++i) {
    markov::Transition tr;
    const uint64_t from = reader.u64();
    const uint64_t to = reader.u64();
    if (from >= state_count || to >= state_count) {
      throw SnapshotError("snapshot transition endpoint out of range");
    }
    tr.from = static_cast<size_t>(from);
    tr.to = static_cast<size_t>(to);
    tr.label = reader.i32();
    tr.rate = reader.f64();
    transitions.push_back(tr);
  }

  std::vector<double> initial(static_cast<size_t>(state_count));
  for (double& p : initial) p = reader.f64();

  GeneratedChain chain(model, std::move(states),
                       markov::Ctmc(static_cast<size_t>(state_count), std::move(transitions),
                                    std::move(initial)));
  const uint64_t recomputed = chain_hash(chain);
  if (recomputed != stored_hash) {
    throw SnapshotError(str_format(
        "snapshot chain hash mismatch: stored %016llx, recomputed %016llx (model drift "
        "or corruption)",
        static_cast<unsigned long long>(stored_hash),
        static_cast<unsigned long long>(recomputed)));
  }
  return chain;
}

}  // namespace gop::san::snapshot
