#include "san/batch_means.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace gop::san {

BatchMeansResult estimate_steady_state_reward(const SanSimulator& simulator,
                                              const RewardStructure& reward,
                                              const BatchMeansOptions& options) {
  GOP_REQUIRE(options.warmup_time >= 0.0, "warmup_time must be non-negative");
  GOP_REQUIRE(options.batch_duration > 0.0, "batch_duration must be positive");
  GOP_REQUIRE(options.batch_count >= 2, "need at least two batches");

  const double horizon =
      options.warmup_time + options.batch_duration * static_cast<double>(options.batch_count);

  // Accumulate reward-time per batch from the sojourn stream. A sojourn can
  // straddle batch boundaries (and the warmup boundary), so it is split
  // proportionally.
  std::vector<double> batch_reward(options.batch_count, 0.0);
  const auto on_sojourn = [&](const Marking& marking, double enter, double leave) {
    const double rate = reward.rate_at(marking);
    if (rate == 0.0) return;
    double from = std::max(enter, options.warmup_time);
    const double to = leave;
    while (from < to) {
      const double offset = from - options.warmup_time;
      const size_t batch = std::min(
          static_cast<size_t>(offset / options.batch_duration), options.batch_count - 1);
      const double batch_end =
          options.warmup_time + options.batch_duration * static_cast<double>(batch + 1);
      const double segment_end = std::min(to, batch_end);
      batch_reward[batch] += rate * (segment_end - from);
      from = segment_end;
    }
  };

  sim::Rng rng(options.seed);
  simulator.simulate(rng, horizon, on_sojourn);

  sim::OnlineStats stats;
  for (double total : batch_reward) stats.add(total / options.batch_duration);

  BatchMeansResult result;
  result.mean = stats.mean();
  result.half_width = stats.ci_half_width();
  result.batches = stats.count();
  return result;
}

}  // namespace gop::san
