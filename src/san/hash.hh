#pragma once

/// \file hash.hh
/// Content hashing for generated chains, reward structures, and evaluation
/// grids — the identity layer of the gop::serve solved-model cache
/// (docs/serving.md). All hashes are 64-bit FNV-1a over a canonical byte
/// encoding; they are deterministic across processes and runs (no pointers,
/// no container addresses) and bitwise-sensitive: a 1-ulp perturbation of any
/// rate, reward, or grid time changes the digest.
///
/// What each hash covers:
///  - chain_hash      — the model identity (model, place, and activity
///    names) plus the *generated* chain: place count, every tangible
///    marking, every labelled transition (from, to, label, rate bits), and
///    the initial distribution. Any structural or parametric difference
///    that survives generation changes the hash, and so does renaming the
///    model — the digest is what binds a snapshot chain blob to the model
///    it is re-attached to (san/snapshot.hh).
///  - reward_hash     — one reward structure *as evaluated on a chain*: the
///    per-state rate-reward vector bits plus every activity's impulse bits.
///  - grid_hash       — the evaluation request shape: transient times,
///    accumulated times (kept distinguishable), and the steady-state flag.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "san/reward.hh"
#include "san/state_space.hh"

namespace gop::san {

/// Streaming 64-bit FNV-1a. Small enough to stay header-inline; the cache
/// key combiners in gop::serve and the snapshot checksum reuse it.
class Fnv1a {
 public:
  static constexpr uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr uint64_t kPrime = 0x100000001b3ULL;

  void bytes(const void* data, size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      state_ ^= static_cast<uint64_t>(p[i]);
      state_ *= kPrime;
    }
  }
  void u8(uint8_t v) { bytes(&v, sizeof v); }
  void u32(uint32_t v) { bytes(&v, sizeof v); }
  void u64(uint64_t v) { bytes(&v, sizeof v); }
  void i32(int32_t v) { bytes(&v, sizeof v); }
  /// Hashes the IEEE-754 bit pattern: 1-ulp sensitivity, and -0.0 != +0.0.
  void f64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  uint64_t digest() const { return state_; }

 private:
  uint64_t state_ = kOffsetBasis;
};

/// Convenience: FNV-1a of a whole buffer (the snapshot payload checksum).
uint64_t fnv1a(const void* data, size_t size);

/// Content hash of a generated chain; see the file comment for coverage.
uint64_t chain_hash(const GeneratedChain& chain);

/// Content hash of `reward` as evaluated on `chain`.
uint64_t reward_hash(const GeneratedChain& chain, const RewardStructure& reward);

/// Content hash of an evaluation grid request. The two grids are domain-
/// separated (a time in the transient grid never collides with the same time
/// in the accumulated grid), and the steady-state flag is part of the digest.
uint64_t grid_hash(std::span<const double> transient_times,
                   std::span<const double> accumulated_times, bool steady_state);

}  // namespace gop::san
