#include "san/simulator.hh"

#include <cmath>

#include "util/error.hh"

namespace gop::san {

SanSimulator::SanSimulator(const SanModel& model, SimulatorOptions options)
    : model_(&model), options_(options) {}

void SanSimulator::settle(Marking& marking, sim::Rng& rng, double now,
                          const CompletionObserver& on_completion) const {
  for (size_t depth = 0;; ++depth) {
    GOP_REQUIRE(depth <= options_.max_vanishing_depth,
                "vanishing-marking chain exceeded max_vanishing_depth during simulation at "
                "marking " +
                    marking.to_string());

    // Highest-priority enabled instantaneous activities.
    std::vector<size_t> enabled;
    int best_priority = 0;
    for (size_t i = 0; i < model_->instantaneous_activities().size(); ++i) {
      const InstantaneousActivity& activity = model_->instantaneous_activities()[i];
      if (!activity.enabled(marking)) continue;
      if (enabled.empty() || activity.priority > best_priority) {
        enabled.clear();
        best_priority = activity.priority;
      }
      if (activity.priority == best_priority) enabled.push_back(i);
    }
    if (enabled.empty()) return;

    const size_t chosen = enabled[rng.uniform_index(enabled.size())];
    const InstantaneousActivity& activity = model_->instantaneous_activities()[chosen];

    std::vector<double> weights(activity.cases.size());
    for (size_t c = 0; c < activity.cases.size(); ++c) {
      weights[c] = activity.cases[c].probability(marking);
      GOP_REQUIRE(weights[c] >= -1e-12, "negative case probability in activity " + activity.name);
      weights[c] = std::max(0.0, weights[c]);
    }
    const size_t case_index = rng.categorical(weights);
    activity.cases[case_index].effect(marking);
    if (on_completion) on_completion(model_->instantaneous_ref(chosen), now);
  }
}

Marking SanSimulator::simulate(sim::Rng& rng, double t_end, const SojournObserver& on_sojourn,
                               const CompletionObserver& on_completion) const {
  return simulate_until(rng, t_end, nullptr, on_sojourn, on_completion).marking;
}

SanSimulator::StopOutcome SanSimulator::simulate_until(sim::Rng& rng, double t_end,
                                                       const Predicate& stop,
                                                       const SojournObserver& on_sojourn,
                                                       const CompletionObserver& on_completion) const {
  GOP_REQUIRE(t_end >= 0.0 && std::isfinite(t_end), "t_end must be non-negative and finite");

  Marking marking = model_->initial_marking();
  double now = 0.0;
  settle(marking, rng, now, on_completion);
  if (stop && stop(marking)) return StopOutcome{std::move(marking), now, true};

  while (now < t_end) {
    // Enabled timed activities and their rates in the current marking.
    std::vector<size_t> enabled;
    std::vector<double> rates;
    double total_rate = 0.0;
    for (size_t i = 0; i < model_->timed_activities().size(); ++i) {
      const TimedActivity& activity = model_->timed_activities()[i];
      if (!activity.enabled(marking)) continue;
      const double rate = activity.rate(marking);
      GOP_REQUIRE(rate > 0.0 && std::isfinite(rate),
                  "timed activity '" + activity.name + "' has a non-positive rate while enabled");
      enabled.push_back(i);
      rates.push_back(rate);
      total_rate += rate;
    }

    if (enabled.empty()) {
      // Absorbed: remain in this marking until the horizon.
      if (on_sojourn) on_sojourn(marking, now, t_end);
      return StopOutcome{std::move(marking), t_end, false};
    }

    const double dwell = rng.exponential(total_rate);
    const double leave = now + dwell;
    if (leave >= t_end) {
      if (on_sojourn) on_sojourn(marking, now, t_end);
      return StopOutcome{std::move(marking), t_end, false};
    }
    if (on_sojourn) on_sojourn(marking, now, leave);
    now = leave;

    const size_t which = rng.categorical(rates);
    const size_t activity_index = enabled[which];
    const TimedActivity& activity = model_->timed_activities()[activity_index];

    std::vector<double> weights(activity.cases.size());
    for (size_t c = 0; c < activity.cases.size(); ++c) {
      weights[c] = std::max(0.0, activity.cases[c].probability(marking));
    }
    const size_t case_index = rng.categorical(weights);
    activity.cases[case_index].effect(marking);
    if (on_completion) on_completion(model_->timed_ref(activity_index), now);

    settle(marking, rng, now, on_completion);
    if (stop && stop(marking)) return StopOutcome{std::move(marking), now, true};
  }
  return StopOutcome{std::move(marking), t_end, false};
}

double SanSimulator::sample_instant_reward(sim::Rng& rng, const RewardStructure& reward,
                                           double t) const {
  const Marking final_marking = simulate(rng, t);
  return reward.rate_at(final_marking);
}

double SanSimulator::sample_accumulated_reward(sim::Rng& rng, const RewardStructure& reward,
                                               double t) const {
  double total = 0.0;
  const SojournObserver on_sojourn = [&](const Marking& marking, double enter, double leave) {
    total += reward.rate_at(marking) * (leave - enter);
  };
  const CompletionObserver on_completion = [&](ActivityRef activity, double) {
    total += reward.impulse_of(activity);
  };
  simulate(rng, t, on_sojourn, reward.has_impulses() ? on_completion : CompletionObserver{});
  return total;
}

sim::ReplicationResult SanSimulator::estimate_instant_reward(
    const RewardStructure& reward, double t, const sim::ReplicationOptions& options) const {
  return sim::run_replications(
      [&](sim::Rng& rng) { return sample_instant_reward(rng, reward, t); }, options);
}

sim::ReplicationResult SanSimulator::estimate_accumulated_reward(
    const RewardStructure& reward, double t, const sim::ReplicationOptions& options) const {
  return sim::run_replications(
      [&](sim::Rng& rng) { return sample_accumulated_reward(rng, reward, t); }, options);
}

}  // namespace gop::san
