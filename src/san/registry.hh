#pragma once

/// \file registry.hh
/// The template registry: a name -> tpl::Template catalog plus the built-in
/// san-level families (docs/templates.md):
///
///  - "nproc"            — N-processor testbed: N replicated processors
///    (san::replicate) competing for a shared repair facility of `servers`
///    repair tokens. Fully provable by lint::prove_model with probe budget 0.
///  - "upgrade-campaign" — K upgrade stages chained with san::join (stage i's
///    completion place fused with stage i+1's ready place); each stage
///    succeeds with `success_prob` or fails, and `on_failure` selects an
///    absorbing failure or a timed retry.
///  - "random"           — the seeded random-SAN generator, re-homed from the
///    old free-standing path: same (seed, options) -> bit-identical chain
///    (san::random_san is now a thin wrapper over this family).
///
/// The four paper models are registered on top of these by
/// core::template_registry() (core/templates.hh) — they live there because
/// their builders depend on gop_core.

#include <string>
#include <vector>

#include "san/template.hh"

namespace gop::san::tpl {

/// An immutable-after-construction catalog of templates by name. Reads are
/// const and therefore thread-safe once the registry is built.
class Registry {
 public:
  /// Registers a template; throws gop::InvalidArgument on a duplicate name.
  Registry& add(Template tpl);

  bool contains(const std::string& name) const;

  /// Looks a template up by name; throws gop::InvalidArgument (listing the
  /// known families) when absent.
  const Template& find(const std::string& name) const;

  /// Registered template names, sorted.
  std::vector<std::string> names() const;

  size_t size() const { return templates_.size(); }

 private:
  std::map<std::string, Template> templates_;
};

/// A fresh registry holding the built-in san-level families listed above.
Registry builtin_families();

}  // namespace gop::san::tpl
