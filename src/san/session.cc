#include "san/session.hh"

#include "linalg/vector_ops.hh"
#include "obs/span.hh"
#include "util/error.hh"

namespace gop::san {

ChainSession::ChainSession(const GeneratedChain& chain, std::vector<double> times,
                           const GridSolveOptions& options)
    : chain_(&chain), times_(std::move(times)) {
  GOP_OBS_SPAN("san.chain_session");
  GOP_REQUIRE(options.transient || options.accumulated,
              "solve_grid needs at least one of transient / accumulated");
  if (options.transient) {
    if (options.recovery.has_value()) {
      transient_.emplace(chain.ctmc(), times_, options.transient_options, *options.recovery);
    } else {
      transient_.emplace(chain.ctmc(), times_, options.transient_options);
    }
  }
  if (options.accumulated) {
    if (options.recovery.has_value()) {
      accumulated_.emplace(chain.ctmc(), times_, options.accumulated_options, *options.recovery);
    } else {
      accumulated_.emplace(chain.ctmc(), times_, options.accumulated_options);
    }
  }
}

double ChainSession::instant_reward(const RewardStructure& reward, size_t i) const {
  return transient_session().reward_at(i, chain_->rate_reward_vector(reward));
}

std::vector<double> ChainSession::instant_reward_series(const RewardStructure& reward) const {
  return transient_session().reward_series(chain_->rate_reward_vector(reward));
}

double ChainSession::accumulated_reward(const RewardStructure& reward, size_t i) const {
  return chain_->accumulated_reward_over(reward, accumulated_session().occupancy_at(i));
}

std::vector<double> ChainSession::accumulated_reward_series(const RewardStructure& reward) const {
  const markov::AccumulatedSession& session = accumulated_session();
  std::vector<double> series(times_.size());
  for (size_t i = 0; i < times_.size(); ++i) {
    series[i] = chain_->accumulated_reward_over(reward, session.occupancy_at(i));
  }
  return series;
}

double ChainSession::transient_probability(const Predicate& predicate, size_t i) const {
  GOP_REQUIRE(static_cast<bool>(predicate), "predicate must be callable");
  const std::vector<Marking>& states = chain_->states();
  std::vector<double> indicator(states.size(), 0.0);
  for (size_t s = 0; s < states.size(); ++s) indicator[s] = predicate(states[s]) ? 1.0 : 0.0;
  return transient_session().reward_at(i, indicator);
}

const markov::TransientSession& ChainSession::transient_session() const {
  GOP_REQUIRE(transient_.has_value(),
              "this session was solved without transient distributions; set "
              "GridSolveOptions::transient");
  return *transient_;
}

const markov::AccumulatedSession& ChainSession::accumulated_session() const {
  GOP_REQUIRE(accumulated_.has_value(),
              "this session was solved without accumulated occupancies; set "
              "GridSolveOptions::accumulated");
  return *accumulated_;
}

ChainSession GeneratedChain::solve_grid(std::vector<double> times,
                                        const GridSolveOptions& options) const {
  return ChainSession(*this, std::move(times), options);
}

ChainSession GeneratedChain::solve_grid(std::vector<double> times) const {
  return ChainSession(*this, std::move(times), GridSolveOptions{});
}

}  // namespace gop::san
