#pragma once

/// \file simulator.hh
/// Discrete-event simulation of a SAN: samples trajectories of the marking
/// process directly from the model (no state-space generation), and builds
/// Monte Carlo estimators of the same reward measures the numerical solvers
/// compute. Used to validate the solvers and as the "testbed-simulation-
/// based" alternative solution technique the paper's §7 discusses.

#include <functional>

#include "san/model.hh"
#include "san/reward.hh"
#include "sim/replication.hh"
#include "sim/rng.hh"

namespace gop::san {

/// Called for every maximal sojourn in a tangible marking.
using SojournObserver = std::function<void(const Marking& marking, double enter, double leave)>;

/// Called for every activity completion (timed and instantaneous).
using CompletionObserver = std::function<void(ActivityRef activity, double time)>;

struct SimulatorOptions {
  /// Guard against loops among instantaneous activities.
  size_t max_vanishing_depth = 128;
};

class SanSimulator {
 public:
  /// The simulator keeps a reference to `model`, which must outlive it.
  explicit SanSimulator(const SanModel& model, SimulatorOptions options = {});
  SanSimulator(SanModel&&, SimulatorOptions = {}) = delete;  // no temporaries

  const SanModel& model() const { return *model_; }

  /// Simulates one trajectory over [0, t_end]; returns the marking at t_end.
  /// Observers may be null.
  Marking simulate(sim::Rng& rng, double t_end, const SojournObserver& on_sojourn = nullptr,
                   const CompletionObserver& on_completion = nullptr) const;

  /// Outcome of an early-stopping run: the marking and time at which `stop`
  /// first held (stopped == true) or the marking at t_end (stopped == false).
  struct StopOutcome {
    Marking marking;
    double time = 0.0;
    bool stopped = false;
  };

  /// Like simulate(), but ends as soon as a tangible marking satisfies
  /// `stop`. The stop check runs on every tangible marking, including the
  /// initial one.
  StopOutcome simulate_until(sim::Rng& rng, double t_end, const Predicate& stop,
                             const SojournObserver& on_sojourn = nullptr,
                             const CompletionObserver& on_completion = nullptr) const;

  /// One-trajectory estimate of the instant-of-time rate reward at t.
  double sample_instant_reward(sim::Rng& rng, const RewardStructure& reward, double t) const;

  /// One-trajectory estimate of the reward accumulated over [0, t] (rate and
  /// impulse parts).
  double sample_accumulated_reward(sim::Rng& rng, const RewardStructure& reward, double t) const;

  /// Replicated Monte Carlo estimators of the solver measures.
  sim::ReplicationResult estimate_instant_reward(const RewardStructure& reward, double t,
                                                 const sim::ReplicationOptions& options = {}) const;
  sim::ReplicationResult estimate_accumulated_reward(
      const RewardStructure& reward, double t,
      const sim::ReplicationOptions& options = {}) const;

 private:
  /// Fires instantaneous activities until the marking is tangible.
  void settle(Marking& marking, sim::Rng& rng, double now,
              const CompletionObserver& on_completion) const;

  const SanModel* model_;
  SimulatorOptions options_;
};

}  // namespace gop::san
