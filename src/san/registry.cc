#include "san/registry.hh"

#include <limits>
#include <memory>
#include <utility>

#include "san/compose.hh"
#include "san/expr.hh"
#include "san/random_model.hh"
#include "sim/rng.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::san::tpl {

Registry& Registry::add(Template tpl) {
  const std::string name = tpl.name();
  const auto [it, inserted] = templates_.emplace(name, std::move(tpl));
  (void)it;
  GOP_REQUIRE(inserted, "Registry: duplicate template '" + name + "'");
  return *this;
}

bool Registry::contains(const std::string& name) const {
  return templates_.find(name) != templates_.end();
}

const Template& Registry::find(const std::string& name) const {
  auto it = templates_.find(name);
  GOP_REQUIRE(it != templates_.end(),
              "Registry: no template named '" + name + "' (known: " + gop::join(names(), ", ") +
                  ")");
  return it->second;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(templates_.size());
  for (const auto& [name, tpl] : templates_) {
    (void)tpl;
    out.push_back(name);
  }
  return out;
}

namespace {

// --- nproc ------------------------------------------------------------------

/// One processor: up -> (fail) -> down -> (acquire a shared repair server,
/// instantaneous) -> fixing -> (repair, releases the server) -> up. The
/// up/down/fixing places are one-hot and written with set_mark only; the
/// shared pool is decremented under a mark_ge guard and re-incremented under
/// a `when` clamp that encodes the pool+fixing <= servers invariant — both
/// idioms the interval prover can discharge without probing, so every nproc
/// instance is fully provable with capacities declared here in the template
/// layer.
Instance build_nproc(const Assignment& a) {
  const auto n = static_cast<size_t>(a.int_at("n"));
  const auto servers = static_cast<int32_t>(a.int_at("servers"));
  const double fail_rate = a.real_at("fail_rate");
  const double repair_rate = a.real_at("repair_rate");

  SanModel proto("proc");
  const PlaceRef up = proto.add_place("up", 1, 1);
  const PlaceRef down = proto.add_place("down", 0, 1);
  const PlaceRef fixing = proto.add_place("fixing", 0, 1);
  const PlaceRef pool = proto.add_place("pool", servers, servers);

  proto.add_timed_activity("fail", mark_eq(up, 1), constant_rate(fail_rate),
                           sequence({set_mark(up, 0), set_mark(down, 1)}));
  proto.add_instantaneous_activity("acquire", all_of({mark_eq(down, 1), mark_ge(pool, 1)}),
                                   sequence({set_mark(down, 0), set_mark(fixing, 1),
                                             add_mark(pool, -1)}));
  proto.add_timed_activity(
      "repair", mark_eq(fixing, 1), constant_rate(repair_rate),
      sequence({set_mark(fixing, 0), set_mark(up, 1),
                when(negate(mark_ge(pool, servers)), add_mark(pool, 1))}));

  ReplicatedModel replicated = replicate(proto, n, {"pool"}, "nproc");

  Instance out;
  RewardStructure all_up("all_up");
  RewardStructure up_fraction("up_fraction");
  RewardStructure degraded("degraded");
  std::vector<Predicate> every_up;
  for (size_t r = 0; r < n; ++r) {
    const PlaceRef rep_up = replicated.replica_place(r, up);
    every_up.push_back(mark_eq(rep_up, 1));
    up_fraction.add(always(), rate_per_token(rep_up, 1.0 / static_cast<double>(n)));
    degraded.add(always(), rate_per_token(replicated.replica_place(r, down), 1.0));
    degraded.add(always(), rate_per_token(replicated.replica_place(r, fixing), 1.0));
  }
  all_up.add(all_of(std::move(every_up)), 1.0);

  out.model = std::make_unique<SanModel>(std::move(replicated.model));
  out.rewards.push_back(std::move(all_up));
  out.rewards.push_back(std::move(up_fraction));
  out.rewards.push_back(std::move(degraded));
  return out;
}

Template nproc_template() {
  return Template(
      "nproc",
      "N replicated processors sharing a repair facility of `servers` repair tokens",
      {ParamSpec::integer("n", 2, 1, 8, "number of processor replicas"),
       ParamSpec::integer("servers", 1, 1, 8, "repair servers in the shared pool"),
       ParamSpec::real("fail_rate", 0.1, 1e-9, 1e3, "per-processor failure rate"),
       ParamSpec::real("repair_rate", 1.0, 1e-9, 1e3, "per-server repair rate")},
      build_nproc);
}

// --- upgrade-campaign -------------------------------------------------------

/// One upgrade stage: ready -> upgrade -> done (prob success_prob) or failed.
/// Stages are chained by fusing done{i-1} with ready{i} (san::join), so a
/// completion token of stage i-1 is exactly the readiness token of stage i.
SanModel campaign_stage(size_t index, double upgrade_rate, double success_prob,
                        double retry_rate, bool retry) {
  SanModel stage("campaign");
  const PlaceRef ready = stage.add_place(str_format("ready%zu", index), index == 0 ? 1 : 0, 1);
  const PlaceRef done = stage.add_place(str_format("done%zu", index), 0, 1);
  const PlaceRef failed = stage.add_place(str_format("failed%zu", index), 0, 1);

  TimedActivity upgrade;
  upgrade.name = str_format("upgrade%zu", index);
  upgrade.enabled = mark_eq(ready, 1);
  upgrade.rate = constant_rate(upgrade_rate);
  upgrade.cases.push_back(
      Case{constant_prob(success_prob), sequence({set_mark(ready, 0), set_mark(done, 1)})});
  upgrade.cases.push_back(Case{complement_prob(constant_prob(success_prob)),
                               sequence({set_mark(ready, 0), set_mark(failed, 1)})});
  stage.add_timed_activity(std::move(upgrade));

  if (retry) {
    stage.add_timed_activity(str_format("retry%zu", index), mark_eq(failed, 1),
                             constant_rate(retry_rate),
                             sequence({set_mark(failed, 0), set_mark(ready, 1)}));
  }
  return stage;
}

Instance build_campaign(const Assignment& a) {
  const auto stages = static_cast<size_t>(a.int_at("stages"));
  const double upgrade_rate = a.real_at("upgrade_rate");
  const double success_prob = a.real_at("success_prob");
  const double retry_rate = a.real_at("retry_rate");
  const bool retry = a.enum_at("on_failure") == "retry";

  SanModel composed = campaign_stage(0, upgrade_rate, success_prob, retry_rate, retry);
  for (size_t i = 1; i < stages; ++i) {
    JoinSpec spec;
    spec.name = "campaign";
    spec.shared = {{str_format("done%zu", i - 1), str_format("ready%zu", i)}};
    spec.left_prefix = "";
    spec.right_prefix = "";
    JoinedModel joined =
        join(composed, campaign_stage(i, upgrade_rate, success_prob, retry_rate, retry), spec);
    composed = std::move(joined.model);
  }

  Instance out;
  // The final stage's done place survives every fusion; intermediate done
  // tokens are consumed as the next stage starts.
  const PlaceRef completed_place = composed.place(str_format("done%zu", stages - 1));
  std::vector<Predicate> any_failed;
  for (size_t i = 0; i < stages; ++i) {
    any_failed.push_back(mark_eq(composed.place(str_format("failed%zu", i)), 1));
  }

  RewardStructure completed("completed");
  completed.add(mark_eq(completed_place, 1), 1.0);
  RewardStructure failed("failed");
  failed.add(any_of(std::move(any_failed)), 1.0);

  out.model = std::make_unique<SanModel>(std::move(composed));
  out.rewards.push_back(std::move(completed));
  out.rewards.push_back(std::move(failed));
  return out;
}

Template campaign_template() {
  return Template(
      "upgrade-campaign",
      "K-stage sequential upgrade campaign chained with join over completion places",
      {ParamSpec::integer("stages", 3, 1, 8, "number of upgrade stages"),
       ParamSpec::real("upgrade_rate", 1.0, 1e-9, 1e3, "per-stage upgrade completion rate"),
       ParamSpec::real("success_prob", 0.9, 0.0, 1.0, "per-stage success probability"),
       ParamSpec::real("retry_rate", 1.0, 1e-9, 1e3, "failed-stage retry rate (retry policy)"),
       ParamSpec::enumeration("on_failure", "absorb", {"absorb", "retry"},
                              "absorbing failure places, or timed retry back to ready")},
      build_campaign);
}

// --- random -----------------------------------------------------------------

/// The seeded random-SAN generator. This is the canonical implementation;
/// san::random_san (random_model.cc) is a thin wrapper that routes through
/// this family, so the two paths cannot drift — the chain is bit-identical
/// per (seed, options) either way (pinned by SanTemplateTest.RandomFamily*).
SanModel generate_random_san(uint64_t seed, const RandomModelOptions& options) {
  GOP_REQUIRE(options.min_places >= 1 && options.min_places <= options.max_places,
              "random_san: place bounds must satisfy 1 <= min <= max");
  GOP_REQUIRE(options.min_activities >= 1 && options.min_activities <= options.max_activities,
              "random_san: activity bounds must satisfy 1 <= min <= max");
  GOP_REQUIRE(options.max_cases >= 1, "random_san: max_cases must be >= 1");
  GOP_REQUIRE(options.place_capacity >= 1, "random_san: place_capacity must be >= 1");
  GOP_REQUIRE(options.min_rate > 0.0 && options.min_rate <= options.max_rate,
              "random_san: rates must satisfy 0 < min <= max");

  sim::Rng rng(seed);
  SanModel model(str_format("random-san-%llu", static_cast<unsigned long long>(seed)));

  const size_t places =
      options.min_places + rng.uniform_index(options.max_places - options.min_places + 1);
  std::vector<PlaceRef> refs;
  refs.reserve(places);
  for (size_t p = 0; p < places; ++p) {
    // Initial marking = declared capacity: every place starts full, and the
    // declaration lets lint::prove_model bound the reachable set statically.
    refs.push_back(
        model.add_place(str_format("p%zu", p), options.place_capacity, options.place_capacity));
  }

  const size_t activities =
      options.min_activities +
      rng.uniform_index(options.max_activities - options.min_activities + 1);
  const int32_t capacity = options.place_capacity;
  for (size_t a = 0; a < activities; ++a) {
    const size_t source = rng.uniform_index(places);
    const double rate = rng.uniform(options.min_rate, options.max_rate);
    const size_t case_count = 1 + rng.uniform_index(options.max_cases);

    // Small integer weights keep every probability strictly positive and the
    // sum within one rounding unit of 1 after the w / total division.
    std::vector<uint64_t> weights(case_count);
    uint64_t total = 0;
    for (uint64_t& w : weights) {
      w = 1 + rng.uniform_index(4);
      total += w;
    }

    TimedActivity activity;
    activity.name = str_format("a%zu", a);
    activity.enabled = mark_ge(refs[source], 1);
    activity.rate = constant_rate(rate);
    for (size_t c = 0; c < case_count; ++c) {
      const size_t target = rng.uniform_index(places);
      const double p = static_cast<double>(weights[c]) / static_cast<double>(total);
      // Move one token source -> target; at capacity the excess token is
      // dropped. `when` tests the marking *after* the source decrement, which
      // keeps the self-loop (target == source) semantics of the original
      // hand-written lambda.
      activity.cases.push_back(Case{
          constant_prob(p),
          sequence({add_mark(refs[source], -1),
                    when(negate(mark_ge(refs[target], capacity)), add_mark(refs[target], 1))})});
    }
    model.add_timed_activity(std::move(activity));
  }
  return model;
}

Instance build_random(const Assignment& a) {
  RandomModelOptions options;
  options.min_places = static_cast<size_t>(a.int_at("min_places"));
  options.max_places = static_cast<size_t>(a.int_at("max_places"));
  options.min_activities = static_cast<size_t>(a.int_at("min_activities"));
  options.max_activities = static_cast<size_t>(a.int_at("max_activities"));
  options.max_cases = static_cast<size_t>(a.int_at("max_cases"));
  options.place_capacity = static_cast<int32_t>(a.int_at("place_capacity"));
  options.min_rate = a.real_at("min_rate");
  options.max_rate = a.real_at("max_rate");

  Instance out;
  out.model = std::make_unique<SanModel>(
      generate_random_san(static_cast<uint64_t>(a.int_at("seed")), options));

  // Catalog rewards over whatever shape the seed produced: total token count
  // and the all-places-full predicate (the initial marking).
  RewardStructure tokens("tokens");
  RewardStructure saturated("saturated");
  std::vector<Predicate> full;
  for (size_t p = 0; p < out.model->place_count(); ++p) {
    tokens.add(always(), rate_per_token(PlaceRef{p}, 1.0));
    full.push_back(mark_eq(PlaceRef{p}, options.place_capacity));
  }
  saturated.add(all_of(std::move(full)), 1.0);
  out.rewards.push_back(std::move(tokens));
  out.rewards.push_back(std::move(saturated));
  return out;
}

Template random_template() {
  return Template(
      "random",
      "seeded random SAN (bounded, combinator-built, provable by construction)",
      {ParamSpec::integer("seed", 1, 0, std::numeric_limits<int64_t>::max(), "generator seed"),
       ParamSpec::integer("min_places", 2, 1, 64, "minimum place count"),
       ParamSpec::integer("max_places", 4, 1, 64, "maximum place count"),
       ParamSpec::integer("min_activities", 2, 1, 256, "minimum activity count"),
       ParamSpec::integer("max_activities", 5, 1, 256, "maximum activity count"),
       ParamSpec::integer("max_cases", 3, 1, 16, "cases per activity drawn from [1, max_cases]"),
       ParamSpec::integer("place_capacity", 2, 1, 64, "token cap per place"),
       ParamSpec::real("min_rate", 0.2, 1e-12, 1e9, "minimum activity rate"),
       ParamSpec::real("max_rate", 4.0, 1e-12, 1e9, "maximum activity rate")},
      build_random);
}

}  // namespace

Registry builtin_families() {
  Registry registry;
  registry.add(nproc_template());
  registry.add(campaign_template());
  registry.add(random_template());
  return registry;
}

}  // namespace gop::san::tpl
