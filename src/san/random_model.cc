#include "san/random_model.hh"

#include <utility>
#include <vector>

#include "san/expr.hh"
#include "sim/rng.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::san {

SanModel random_san(uint64_t seed, const RandomModelOptions& options) {
  GOP_REQUIRE(options.min_places >= 1 && options.min_places <= options.max_places,
              "random_san: place bounds must satisfy 1 <= min <= max");
  GOP_REQUIRE(options.min_activities >= 1 && options.min_activities <= options.max_activities,
              "random_san: activity bounds must satisfy 1 <= min <= max");
  GOP_REQUIRE(options.max_cases >= 1, "random_san: max_cases must be >= 1");
  GOP_REQUIRE(options.place_capacity >= 1, "random_san: place_capacity must be >= 1");
  GOP_REQUIRE(options.min_rate > 0.0 && options.min_rate <= options.max_rate,
              "random_san: rates must satisfy 0 < min <= max");

  sim::Rng rng(seed);
  SanModel model(str_format("random-san-%llu", static_cast<unsigned long long>(seed)));

  const size_t places =
      options.min_places + rng.uniform_index(options.max_places - options.min_places + 1);
  std::vector<PlaceRef> refs;
  refs.reserve(places);
  for (size_t p = 0; p < places; ++p) {
    // Initial marking = declared capacity: every place starts full, and the
    // declaration lets lint::prove_model bound the reachable set statically.
    refs.push_back(
        model.add_place(str_format("p%zu", p), options.place_capacity, options.place_capacity));
  }

  const size_t activities =
      options.min_activities +
      rng.uniform_index(options.max_activities - options.min_activities + 1);
  const int32_t capacity = options.place_capacity;
  for (size_t a = 0; a < activities; ++a) {
    const size_t source = rng.uniform_index(places);
    const double rate = rng.uniform(options.min_rate, options.max_rate);
    const size_t case_count = 1 + rng.uniform_index(options.max_cases);

    // Small integer weights keep every probability strictly positive and the
    // sum within one rounding unit of 1 after the w / total division.
    std::vector<uint64_t> weights(case_count);
    uint64_t total = 0;
    for (uint64_t& w : weights) {
      w = 1 + rng.uniform_index(4);
      total += w;
    }

    TimedActivity activity;
    activity.name = str_format("a%zu", a);
    activity.enabled = mark_ge(refs[source], 1);
    activity.rate = constant_rate(rate);
    for (size_t c = 0; c < case_count; ++c) {
      const size_t target = rng.uniform_index(places);
      const double p = static_cast<double>(weights[c]) / static_cast<double>(total);
      // Move one token source -> target; at capacity the excess token is
      // dropped. `when` tests the marking *after* the source decrement, which
      // keeps the self-loop (target == source) semantics of the original
      // hand-written lambda.
      activity.cases.push_back(Case{
          constant_prob(p),
          sequence({add_mark(refs[source], -1),
                    when(negate(mark_ge(refs[target], capacity)), add_mark(refs[target], 1))})});
    }
    model.add_timed_activity(std::move(activity));
  }
  return model;
}

}  // namespace gop::san
