#include "san/random_model.hh"

#include <limits>
#include <utility>

#include "san/registry.hh"
#include "util/error.hh"

namespace gop::san {

SanModel random_san(uint64_t seed, const RandomModelOptions& options) {
  // The generator lives in the template registry (the "random" family,
  // san/registry.cc); this wrapper routes through it so there is exactly one
  // implementation path and the chain stays bit-identical per (seed, options).
  static const tpl::Registry registry = tpl::builtin_families();
  GOP_REQUIRE(seed <= static_cast<uint64_t>(std::numeric_limits<int64_t>::max()),
              "random_san: seed exceeds the template parameter range");

  tpl::Assignment assignment;
  assignment.set_int("seed", static_cast<int64_t>(seed));
  assignment.set_int("min_places", static_cast<int64_t>(options.min_places));
  assignment.set_int("max_places", static_cast<int64_t>(options.max_places));
  assignment.set_int("min_activities", static_cast<int64_t>(options.min_activities));
  assignment.set_int("max_activities", static_cast<int64_t>(options.max_activities));
  assignment.set_int("max_cases", static_cast<int64_t>(options.max_cases));
  assignment.set_int("place_capacity", options.place_capacity);
  assignment.set_real("min_rate", options.min_rate);
  assignment.set_real("max_rate", options.max_rate);

  tpl::Instance instance = registry.find("random").instantiate(assignment);
  return std::move(*instance.model);
}

}  // namespace gop::san
