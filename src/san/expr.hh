#pragma once

/// \file expr.hh
/// Small combinators for building marking predicates, rates, probabilities
/// and effects without lambda boilerplate. They mirror UltraSAN's
/// MARK(place)-style expressions, e.g.
///
///   mark_eq(detected, 1) && mark_eq(failure, 0)
///
/// becomes
///
///   all_of({mark_eq(detected, 1), mark_eq(failure, 0)})

#include <initializer_list>
#include <vector>

#include "san/model.hh"

namespace gop::san {

// --- predicates -----------------------------------------------------------

/// MARK(place) == value
Predicate mark_eq(PlaceRef place, int32_t value);
/// MARK(place) >= value
Predicate mark_ge(PlaceRef place, int32_t value);
/// MARK(place) > 0
Predicate has_tokens(PlaceRef place);
/// Always true.
Predicate always();

Predicate all_of(std::vector<Predicate> predicates);
Predicate any_of(std::vector<Predicate> predicates);
Predicate negate(Predicate predicate);

// --- rates and probabilities ----------------------------------------------

/// Marking-independent rate/probability.
RateFn constant_rate(double rate);
ProbFn constant_prob(double probability);

/// 1 - p(m), for two-case activities.
ProbFn complement_prob(ProbFn probability);

/// condition(m) ? if_true : if_false, both constants in [0,1]. Prefer this
/// over a hand-written ternary lambda: the prover can case-split on the
/// condition and verify each activity's probabilities sum to 1 per branch.
ProbFn cond_prob(Predicate condition, double if_true, double if_false);

/// rate * MARK(place)  (infinite-server style marking dependence).
RateFn rate_per_token(PlaceRef place, double rate_per_token);

// --- effects ----------------------------------------------------------------

/// MARK(place) = value
Effect set_mark(PlaceRef place, int32_t value);
/// MARK(place) += delta (clamped at zero from below; a SAN marking is
/// non-negative by construction and the clamp surfaces modeling errors via
/// GOP_ENSURE instead of wrapping).
Effect add_mark(PlaceRef place, int32_t delta);
/// No marking change.
Effect no_effect();
/// Applies the effects in order.
Effect sequence(std::vector<Effect> effects);
/// Applies `effect` only when `predicate` holds in the marking *before* any
/// of the enclosing sequence's effects ran — evaluate guards against the
/// marking as the effect receives it.
Effect when(Predicate predicate, Effect effect);

}  // namespace gop::san
