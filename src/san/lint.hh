#pragma once

/// \file lint.hh
/// Structural diagnostics on a generated reachability graph: dead
/// activities, absorbing states, and communication structure (irreducibility
/// / recurrent classes). Model bugs in SAN specifications usually show up
/// here first — an activity whose guard can never hold, a "recoverable"
/// model that secretly deadlocks, a chain fed to a steady-state solver that
/// is not irreducible.

#include <string>
#include <vector>

#include "san/state_space.hh"

namespace gop::san {

struct ModelDiagnostics {
  /// Timed activities whose enabling predicate holds in no reachable
  /// tangible marking (they can never fire).
  std::vector<std::string> dead_timed_activities;

  /// Indices of absorbing tangible states.
  std::vector<size_t> absorbing_states;

  /// True when the tangible chain is one strongly connected component (the
  /// precondition of every steady-state solver).
  bool irreducible = false;

  /// Number of bottom (recurrent) strongly connected components. 1 with no
  /// transient states means irreducible; several bottom components mean the
  /// long-run behaviour depends on the starting state.
  size_t recurrent_class_count = 0;

  /// Human-readable one-line-per-finding report ("clean" when empty).
  std::string summary() const;
};

/// Runs all diagnostics on a generated chain.
ModelDiagnostics diagnose(const GeneratedChain& chain);

/// Strongly connected components of the tangible transition graph, in
/// reverse topological order (Tarjan). Exposed for tests and custom checks;
/// component ids are assigned 0..k-1, `result[s]` is the component of state s.
std::vector<size_t> strongly_connected_components(const markov::Ctmc& chain,
                                                  size_t* component_count);

}  // namespace gop::san
