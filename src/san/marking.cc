#include "san/marking.hh"

#include <sstream>

namespace gop::san {

std::string Marking::to_string() const {
  std::ostringstream os;
  os << '(';
  for (size_t i = 0; i < tokens_.size(); ++i) {
    if (i != 0) os << ',';
    os << tokens_[i];
  }
  os << ')';
  return os.str();
}

size_t MarkingHash::operator()(const Marking& m) const {
  // FNV-1a over the token array.
  uint64_t h = 1469598103934665603ULL;
  for (int32_t token : m.tokens()) {
    auto u = static_cast<uint32_t>(token);
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (u >> (8 * byte)) & 0xffU;
      h *= 1099511628211ULL;
    }
  }
  return static_cast<size_t>(h);
}

}  // namespace gop::san
