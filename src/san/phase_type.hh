#pragma once

/// \file phase_type.hh
/// Non-exponential activity durations by stage expansion. SAN timed
/// activities are exponential; an Erlang-k duration (squared coefficient of
/// variation 1/k, approaching a deterministic delay as k grows) is obtained
/// by chaining k exponential stages through a hidden bookkeeping place. The
/// helper wires the stages so callers keep the one-activity mental model:
/// one enabling predicate, one completion effect.
///
/// Interruption policy: if the enabling predicate turns false mid-way, the
/// stage counter *holds* and work resumes where it stopped when the
/// predicate turns true again (preemptive-resume). The enabling predicate
/// must not read the hidden stage place.

#include <string>
#include <vector>

#include "san/model.hh"

namespace gop::san {

struct ErlangActivity {
  /// Hidden place counting completed stages (0 .. stages-1).
  PlaceRef stage;
  /// The k stage-advance activities (label carriers for impulse rewards;
  /// the *last* one applies the completion effect).
  std::vector<ActivityRef> stage_activities;
};

/// Adds an Erlang-`stages` activity with mean duration 1/rate: each stage
/// completes at rate `stages * rate`. On completion of the final stage the
/// counter resets and `effect` is applied. Returns the bookkeeping handles.
ErlangActivity add_erlang_activity(SanModel& model, const std::string& name, Predicate enabled,
                                   double rate, int32_t stages, Effect effect);

}  // namespace gop::san
