#pragma once

/// \file model.hh
/// Stochastic activity network (SAN) model container, after Meyer, Movaghar
/// and Sanders ("Stochastic activity networks: structure, behavior, and
/// application", 1985), with the marking-dependent specification style of
/// UltraSAN:
///
///  - places hold token counts (the marking);
///  - timed activities fire after an exponential delay whose rate may depend
///    on the marking, guarded by an arbitrary marking predicate (this
///    subsumes input gates);
///  - instantaneous activities fire in zero time with priority ordering;
///  - each activity has one or more probabilistic *cases*; a case's effect
///    function rewrites the marking (this subsumes output gates and arcs).

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "san/expr_ir.hh"
#include "san/marking.hh"

namespace gop::san {

/// Strongly typed index of a place within its model.
struct PlaceRef {
  size_t index = 0;
};

/// Strongly typed index of an activity (timed and instantaneous activities
/// are numbered in one sequence; see SanModel::activity_name).
struct ActivityRef {
  size_t index = 0;
};

/// Marking expressions: callable exactly like the std::function aliases they
/// replaced, but built by the san/expr.hh combinators they also carry a
/// reflectable IR tree (san/expr_ir.hh) that lint::prove_model interprets.
/// Hand-written lambdas convert implicitly and carry no IR.
using Predicate = ExprFn<bool(const Marking&)>;
using RateFn = ExprFn<double(const Marking&)>;
using ProbFn = ExprFn<double(const Marking&)>;
using Effect = ExprFn<void(Marking&)>;

/// One probabilistic case of an activity: selected with probability
/// `probability(marking)` on completion, then `effect` rewrites the marking.
struct Case {
  ProbFn probability;
  Effect effect;
};

struct TimedActivity {
  std::string name;
  Predicate enabled;
  RateFn rate;
  std::vector<Case> cases;
};

struct InstantaneousActivity {
  std::string name;
  Predicate enabled;
  /// Higher priority fires first when several instantaneous activities are
  /// enabled; equal-priority enabled activities are selected uniformly.
  int priority = 0;
  std::vector<Case> cases;
};

class SanModel {
 public:
  explicit SanModel(std::string name);

  const std::string& name() const { return name_; }

  /// Adds a place with its initial token count; returns its reference.
  PlaceRef add_place(std::string name, int32_t initial_tokens = 0);

  /// Adds a place with a declared token capacity. The capacity is a modeling
  /// assertion, not an enforced clamp: effects may still compute a larger
  /// count at run time. lint::prove_model verifies the assertion holds over
  /// every reachable marking (and uses it as the widening threshold when
  /// inferring marking bounds); a violated capacity is a SAN042 finding.
  PlaceRef add_place(std::string name, int32_t initial_tokens, int32_t capacity);

  size_t place_count() const { return place_names_.size(); }
  const std::string& place_name(PlaceRef place) const;

  /// The declared capacity of `place`, or nullopt when unbounded.
  std::optional<int32_t> place_capacity(PlaceRef place) const;

  /// Looks a place up by name; throws gop::InvalidArgument when absent.
  PlaceRef place(const std::string& name) const;

  Marking initial_marking() const;

  /// Adds a timed activity; `rate` must be positive wherever `enabled` holds.
  /// Case probabilities must sum to 1 in every enabling marking (validated
  /// during state-space generation and simulation). Returns the activity's
  /// reference, usable as a transition label for impulse rewards.
  ActivityRef add_timed_activity(TimedActivity activity);

  /// Single-case convenience overload.
  ActivityRef add_timed_activity(std::string name, Predicate enabled, RateFn rate, Effect effect);

  ActivityRef add_instantaneous_activity(InstantaneousActivity activity);
  ActivityRef add_instantaneous_activity(std::string name, Predicate enabled, Effect effect,
                                         int priority = 0);

  const std::vector<TimedActivity>& timed_activities() const { return timed_; }
  const std::vector<InstantaneousActivity>& instantaneous_activities() const { return instant_; }

  /// Total number of activities. ActivityRef indices are assigned in the
  /// order add_*_activity was called, regardless of kind.
  size_t activity_count() const { return registry_.size(); }
  bool is_timed(ActivityRef activity) const;
  const std::string& activity_name(ActivityRef activity) const;

  /// ActivityRef of the i-th timed / instantaneous activity (the index into
  /// timed_activities() / instantaneous_activities()).
  ActivityRef timed_ref(size_t timed_index) const;
  ActivityRef instantaneous_ref(size_t instant_index) const;

 private:
  struct RegistryEntry {
    bool timed;
    size_t kind_index;  // index into timed_ or instant_
  };

  const RegistryEntry& entry(ActivityRef activity) const;

  std::string name_;
  std::vector<std::string> place_names_;
  std::vector<int32_t> initial_tokens_;
  std::vector<int32_t> capacities_;  // kNoCapacity = unbounded
  std::vector<TimedActivity> timed_;
  std::vector<InstantaneousActivity> instant_;
  std::vector<RegistryEntry> registry_;
  std::vector<size_t> timed_refs_;    // timed index -> registry index
  std::vector<size_t> instant_refs_;  // instantaneous index -> registry index
};

}  // namespace gop::san
