#include "san/lint.hh"

#include <sstream>

#include "util/error.hh"

namespace gop::san {

std::vector<size_t> strongly_connected_components(const markov::Ctmc& chain,
                                                  size_t* component_count) {
  const size_t n = chain.state_count();
  const linalg::CsrMatrix& rates = chain.rate_matrix();

  // Iterative Tarjan (explicit stack to survive deep graphs).
  std::vector<size_t> index(n, SIZE_MAX);
  std::vector<size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> component(n, SIZE_MAX);
  std::vector<size_t> stack;
  size_t next_index = 0;
  size_t components = 0;

  struct Frame {
    size_t state;
    size_t edge;  // next outgoing edge offset to visit
  };

  for (size_t root = 0; root < n; ++root) {
    if (index[root] != SIZE_MAX) continue;
    std::vector<Frame> call_stack{{root, rates.row_ptr()[root]}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const size_t s = frame.state;
      if (frame.edge < rates.row_ptr()[s + 1]) {
        const size_t target = rates.col_idx()[frame.edge++];
        if (index[target] == SIZE_MAX) {
          index[target] = lowlink[target] = next_index++;
          stack.push_back(target);
          on_stack[target] = true;
          call_stack.push_back(Frame{target, rates.row_ptr()[target]});
        } else if (on_stack[target]) {
          lowlink[s] = std::min(lowlink[s], index[target]);
        }
        continue;
      }
      // Done with s: pop a component if s is a root.
      if (lowlink[s] == index[s]) {
        while (true) {
          const size_t member = stack.back();
          stack.pop_back();
          on_stack[member] = false;
          component[member] = components;
          if (member == s) break;
        }
        ++components;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        lowlink[call_stack.back().state] =
            std::min(lowlink[call_stack.back().state], lowlink[s]);
      }
    }
  }

  if (component_count != nullptr) *component_count = components;
  return component;
}

ModelDiagnostics diagnose(const GeneratedChain& chain) {
  ModelDiagnostics diagnostics;

  // Dead timed activities: enabled in no reachable tangible marking.
  const SanModel& model = chain.model();
  for (const TimedActivity& activity : model.timed_activities()) {
    bool enabled_somewhere = false;
    for (const Marking& marking : chain.states()) {
      if (activity.enabled(marking)) {
        enabled_somewhere = true;
        break;
      }
    }
    if (!enabled_somewhere) diagnostics.dead_timed_activities.push_back(activity.name);
  }

  for (size_t s = 0; s < chain.state_count(); ++s) {
    if (chain.ctmc().is_absorbing(s)) diagnostics.absorbing_states.push_back(s);
  }

  size_t component_count = 0;
  const std::vector<size_t> component =
      strongly_connected_components(chain.ctmc(), &component_count);
  diagnostics.irreducible = component_count == 1;

  // Bottom components: no transition leaves them.
  std::vector<bool> has_exit(component_count, false);
  const linalg::CsrMatrix& rates = chain.ctmc().rate_matrix();
  for (size_t s = 0; s < chain.state_count(); ++s) {
    for (size_t k = rates.row_ptr()[s]; k < rates.row_ptr()[s + 1]; ++k) {
      if (component[rates.col_idx()[k]] != component[s]) has_exit[component[s]] = true;
    }
  }
  for (bool exits : has_exit) {
    if (!exits) ++diagnostics.recurrent_class_count;
  }
  return diagnostics;
}

std::string ModelDiagnostics::summary() const {
  std::ostringstream os;
  if (!dead_timed_activities.empty()) {
    os << "dead timed activities:";
    for (const std::string& name : dead_timed_activities) os << ' ' << name;
    os << '\n';
  }
  if (!absorbing_states.empty()) {
    os << absorbing_states.size() << " absorbing state(s)\n";
  }
  os << (irreducible ? "chain is irreducible\n" : "chain is NOT irreducible\n");
  os << recurrent_class_count << " recurrent class(es)\n";
  return os.str();
}

}  // namespace gop::san
