#pragma once

/// \file state_space.hh
/// Reachability-graph generation: explores the tangible markings of a SAN,
/// eliminating vanishing markings (those enabling instantaneous activities)
/// on the fly, and produces a labelled CTMC ready for the gop::markov
/// solvers. The GeneratedChain also offers the three solver entry points the
/// paper's reward tables use: expected instant-of-time, accumulated
/// interval-of-time, and steady-state reward.

#include <unordered_map>
#include <vector>

#include "markov/accumulated.hh"
#include "markov/ctmc.hh"
#include "markov/steady_state.hh"
#include "markov/transient.hh"
#include "san/model.hh"
#include "san/reward.hh"

namespace gop::san {

class ChainSession;       // san/session.hh
struct GridSolveOptions;  // san/session.hh

struct GenerationOptions {
  /// Hard cap on tangible states (explosion guard).
  size_t max_states = 1'000'000;
  /// Maximum chain length of instantaneous firings from one marking; a loop
  /// among vanishing markings exceeds this and raises gop::ModelError.
  size_t max_vanishing_depth = 128;
  /// Case probabilities must sum to 1 within this tolerance; branches below
  /// it are pruned.
  double probability_tolerance = 1e-9;
};

class GeneratedChain {
 public:
  GeneratedChain(const SanModel& model, std::vector<Marking> states, markov::Ctmc ctmc);

  const SanModel& model() const { return *model_; }
  const std::vector<Marking>& states() const { return states_; }
  size_t state_count() const { return states_.size(); }
  const markov::Ctmc& ctmc() const { return ctmc_; }

  /// Index of a tangible marking; throws gop::InvalidArgument when the
  /// marking is not reachable (or vanishing).
  size_t state_index(const Marking& marking) const;

  /// Rate reward of each tangible state under `reward`.
  std::vector<double> rate_reward_vector(const RewardStructure& reward) const;

  /// Expected instant-of-time reward at time t (rate rewards only, as in
  /// UltraSAN).
  double instant_reward(const RewardStructure& reward, double t,
                        const markov::TransientOptions& options = {}) const;

  /// Expected reward accumulated over [0, t]: rate part plus expected impulse
  /// completions. Impulse rewards are supported on timed activities only
  /// (an impulse on an instantaneous activity raises gop::InvalidArgument).
  double accumulated_reward(const RewardStructure& reward, double t,
                            const markov::AccumulatedOptions& options = {}) const;

  /// Assembles the accumulated reward from an already-solved occupancy vector
  /// L(t) (rate part plus impulse flux). This is the shared back half of
  /// accumulated_reward; the session layer (san/session.hh) uses it to dot
  /// many reward structures against one occupancy solve.
  double accumulated_reward_over(const RewardStructure& reward,
                                 const std::vector<double>& occupancy) const;

  /// Solves the chain once over a sorted time grid and returns a session for
  /// evaluating any number of reward structures against that one solve; see
  /// san/session.hh. By default only transient distributions are solved; pass
  /// GridSolveOptions to add (or restrict to) accumulated occupancies.
  ChainSession solve_grid(std::vector<double> times, const GridSolveOptions& options) const;
  ChainSession solve_grid(std::vector<double> times) const;

  /// Expected steady-state reward: rate part plus steady-state impulse flux
  /// (impulses per unit time). Requires an irreducible chain.
  double steady_state_reward(const RewardStructure& reward,
                             const markov::SteadyStateOptions& options = {}) const;

  /// Assembles the steady-state reward from an already-solved stationary
  /// distribution pi (rate part plus impulse flux). The shared back half of
  /// steady_state_reward; the serve layer uses it to dot many reward
  /// structures against one checked steady-state solve.
  double steady_state_reward_over(const RewardStructure& reward,
                                  const std::vector<double>& pi) const;

  /// Probability of being in a marking satisfying `predicate` at time t.
  double transient_probability(const Predicate& predicate, double t,
                               const markov::TransientOptions& options = {}) const;

 private:
  double impulse_flux(const RewardStructure& reward,
                      const std::vector<double>& state_weights) const;
  void require_timed_impulses(const RewardStructure& reward) const;

  const SanModel* model_;
  std::vector<Marking> states_;
  markov::Ctmc ctmc_;
  std::unordered_map<Marking, size_t, MarkingHash> index_;
};

/// Explores the reachability graph from the model's initial marking. The
/// returned chain keeps a reference to `model`, which must outlive it.
GeneratedChain generate_state_space(const SanModel& model, const GenerationOptions& options = {});
GeneratedChain generate_state_space(SanModel&&, const GenerationOptions& = {}) = delete;

}  // namespace gop::san
