#include "san/expr.hh"

#include "util/error.hh"
#include "util/strings.hh"

namespace gop::san {

namespace {

/// Every combinator below reads or writes through this accessor: a PlaceRef
/// outside the marking is a modeling error (an expression referencing a
/// place its model does not have), surfaced as gop::InvalidArgument instead
/// of out-of-bounds UB. gop::lint turns the throw into a SAN004 finding.
size_t checked_index(PlaceRef place, const Marking& m) {
  GOP_REQUIRE(place.index < m.size(),
              str_format("expression references place #%zu but the marking has %zu place(s)",
                         place.index, m.size()));
  return place.index;
}

/// IR children of a combinator argument list: each argument's tree, with
/// hand-written lambdas degrading to a kOpaque leaf (so the rest of the
/// composite stays analyzable and the prover can name the opaque spot).
template <typename Fn>
std::vector<ExprIr> ir_children(const std::vector<Fn>& args) {
  std::vector<ExprIr> children;
  children.reserve(args.size());
  for (const Fn& arg : args) children.push_back(ir::or_opaque(arg.ir()));
  return children;
}

}  // namespace

Predicate mark_eq(PlaceRef place, int32_t value) {
  return Predicate(
      [place, value](const Marking& m) { return m[checked_index(place, m)] == value; },
      ir::mark_eq(place.index, value));
}

Predicate mark_ge(PlaceRef place, int32_t value) {
  return Predicate(
      [place, value](const Marking& m) { return m[checked_index(place, m)] >= value; },
      ir::mark_ge(place.index, value));
}

Predicate has_tokens(PlaceRef place) {
  return Predicate([place](const Marking& m) { return m[checked_index(place, m)] > 0; },
                   ir::mark_ge(place.index, 1));
}

Predicate always() {
  return Predicate([](const Marking&) { return true; }, ir::always());
}

Predicate all_of(std::vector<Predicate> predicates) {
  GOP_REQUIRE(!predicates.empty(), "all_of needs at least one predicate");
  ExprIr node = ir::all_of(ir_children(predicates));
  return Predicate(
      [predicates = std::move(predicates)](const Marking& m) {
        for (const Predicate& p : predicates) {
          if (!p(m)) return false;
        }
        return true;
      },
      std::move(node));
}

Predicate any_of(std::vector<Predicate> predicates) {
  GOP_REQUIRE(!predicates.empty(), "any_of needs at least one predicate");
  ExprIr node = ir::any_of(ir_children(predicates));
  return Predicate(
      [predicates = std::move(predicates)](const Marking& m) {
        for (const Predicate& p : predicates) {
          if (p(m)) return true;
        }
        return false;
      },
      std::move(node));
}

Predicate negate(Predicate predicate) {
  GOP_REQUIRE(static_cast<bool>(predicate), "negate needs a predicate");
  ExprIr node = ir::negate(ir::or_opaque(predicate.ir()));
  return Predicate([predicate = std::move(predicate)](const Marking& m) { return !predicate(m); },
                   std::move(node));
}

RateFn constant_rate(double rate) {
  GOP_REQUIRE(rate > 0.0, "constant_rate must be positive");
  return RateFn([rate](const Marking&) { return rate; }, ir::constant(rate));
}

ProbFn constant_prob(double probability) {
  GOP_REQUIRE(probability >= 0.0 && probability <= 1.0, "probability must be in [0,1]");
  return ProbFn([probability](const Marking&) { return probability; }, ir::constant(probability));
}

ProbFn complement_prob(ProbFn probability) {
  GOP_REQUIRE(static_cast<bool>(probability), "complement_prob needs a probability");
  ExprIr node = ir::complement(ir::or_opaque(probability.ir()));
  return ProbFn(
      [probability = std::move(probability)](const Marking& m) { return 1.0 - probability(m); },
      std::move(node));
}

ProbFn cond_prob(Predicate condition, double if_true, double if_false) {
  GOP_REQUIRE(static_cast<bool>(condition), "cond_prob needs a condition");
  GOP_REQUIRE(if_true >= 0.0 && if_true <= 1.0 && if_false >= 0.0 && if_false <= 1.0,
              "probability must be in [0,1]");
  ExprIr node = ir::cond(ir::or_opaque(condition.ir()), ir::constant(if_true),
                         ir::constant(if_false));
  return ProbFn(
      [condition = std::move(condition), if_true, if_false](const Marking& m) {
        return condition(m) ? if_true : if_false;
      },
      std::move(node));
}

RateFn rate_per_token(PlaceRef place, double rate) {
  GOP_REQUIRE(rate > 0.0, "rate_per_token must be positive");
  return RateFn(
      [place, rate](const Marking& m) {
        return rate * static_cast<double>(m[checked_index(place, m)]);
      },
      ir::rate_per_token(place.index, rate));
}

Effect set_mark(PlaceRef place, int32_t value) {
  GOP_REQUIRE(value >= 0, "marking values are non-negative");
  return Effect([place, value](Marking& m) { m[checked_index(place, m)] = value; },
                ir::set_mark(place.index, value));
}

Effect add_mark(PlaceRef place, int32_t delta) {
  return Effect(
      [place, delta](Marking& m) {
        const size_t index = checked_index(place, m);
        const int32_t updated = m[index] + delta;
        GOP_ENSURE(updated >= 0, "effect drove a place marking negative");
        m[index] = updated;
      },
      ir::add_mark(place.index, delta));
}

Effect no_effect() {
  return Effect([](Marking&) {}, ir::no_effect());
}

Effect sequence(std::vector<Effect> effects) {
  ExprIr node = ir::sequence(ir_children(effects));
  return Effect(
      [effects = std::move(effects)](Marking& m) {
        for (const Effect& e : effects) e(m);
      },
      std::move(node));
}

Effect when(Predicate predicate, Effect effect) {
  GOP_REQUIRE(static_cast<bool>(predicate) && static_cast<bool>(effect),
              "when() needs a predicate and an effect");
  ExprIr node = ir::when(ir::or_opaque(predicate.ir()), ir::or_opaque(effect.ir()));
  return Effect(
      [predicate = std::move(predicate), effect = std::move(effect)](Marking& m) {
        if (predicate(m)) effect(m);
      },
      std::move(node));
}

}  // namespace gop::san
