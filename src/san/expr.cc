#include "san/expr.hh"

#include "util/error.hh"
#include "util/strings.hh"

namespace gop::san {

namespace {

/// Every combinator below reads or writes through this accessor: a PlaceRef
/// outside the marking is a modeling error (an expression referencing a
/// place its model does not have), surfaced as gop::InvalidArgument instead
/// of out-of-bounds UB. gop::lint turns the throw into a SAN004 finding.
size_t checked_index(PlaceRef place, const Marking& m) {
  GOP_REQUIRE(place.index < m.size(),
              str_format("expression references place #%zu but the marking has %zu place(s)",
                         place.index, m.size()));
  return place.index;
}

}  // namespace

Predicate mark_eq(PlaceRef place, int32_t value) {
  return [place, value](const Marking& m) { return m[checked_index(place, m)] == value; };
}

Predicate mark_ge(PlaceRef place, int32_t value) {
  return [place, value](const Marking& m) { return m[checked_index(place, m)] >= value; };
}

Predicate has_tokens(PlaceRef place) {
  return [place](const Marking& m) { return m[checked_index(place, m)] > 0; };
}

Predicate always() {
  return [](const Marking&) { return true; };
}

Predicate all_of(std::vector<Predicate> predicates) {
  GOP_REQUIRE(!predicates.empty(), "all_of needs at least one predicate");
  return [predicates = std::move(predicates)](const Marking& m) {
    for (const Predicate& p : predicates) {
      if (!p(m)) return false;
    }
    return true;
  };
}

Predicate any_of(std::vector<Predicate> predicates) {
  GOP_REQUIRE(!predicates.empty(), "any_of needs at least one predicate");
  return [predicates = std::move(predicates)](const Marking& m) {
    for (const Predicate& p : predicates) {
      if (p(m)) return true;
    }
    return false;
  };
}

Predicate negate(Predicate predicate) {
  GOP_REQUIRE(static_cast<bool>(predicate), "negate needs a predicate");
  return [predicate = std::move(predicate)](const Marking& m) { return !predicate(m); };
}

RateFn constant_rate(double rate) {
  GOP_REQUIRE(rate > 0.0, "constant_rate must be positive");
  return [rate](const Marking&) { return rate; };
}

ProbFn constant_prob(double probability) {
  GOP_REQUIRE(probability >= 0.0 && probability <= 1.0, "probability must be in [0,1]");
  return [probability](const Marking&) { return probability; };
}

ProbFn complement_prob(ProbFn probability) {
  GOP_REQUIRE(static_cast<bool>(probability), "complement_prob needs a probability");
  return [probability = std::move(probability)](const Marking& m) { return 1.0 - probability(m); };
}

RateFn rate_per_token(PlaceRef place, double rate) {
  GOP_REQUIRE(rate > 0.0, "rate_per_token must be positive");
  return [place, rate](const Marking& m) {
    return rate * static_cast<double>(m[checked_index(place, m)]);
  };
}

Effect set_mark(PlaceRef place, int32_t value) {
  GOP_REQUIRE(value >= 0, "marking values are non-negative");
  return [place, value](Marking& m) { m[checked_index(place, m)] = value; };
}

Effect add_mark(PlaceRef place, int32_t delta) {
  return [place, delta](Marking& m) {
    const size_t index = checked_index(place, m);
    const int32_t updated = m[index] + delta;
    GOP_ENSURE(updated >= 0, "effect drove a place marking negative");
    m[index] = updated;
  };
}

Effect no_effect() {
  return [](Marking&) {};
}

Effect sequence(std::vector<Effect> effects) {
  return [effects = std::move(effects)](Marking& m) {
    for (const Effect& e : effects) e(m);
  };
}

Effect when(Predicate predicate, Effect effect) {
  GOP_REQUIRE(static_cast<bool>(predicate) && static_cast<bool>(effect),
              "when() needs a predicate and an effect");
  return [predicate = std::move(predicate), effect = std::move(effect)](Marking& m) {
    if (predicate(m)) effect(m);
  };
}

}  // namespace gop::san
