#pragma once

/// \file expr_ir.hh
/// Reflectable expression IR for SAN marking expressions.
///
/// The `san/expr.hh` combinators historically erased to bare `std::function`,
/// which made every model opaque to static analysis: `gop::lint` could only
/// *run* the expressions marking-by-marking, never *read* them. Every
/// combinator now returns an `ExprFn` — the same closure as before (the
/// generator/simulator hot path calls through `std::function` exactly as it
/// always did, bit-identically) plus a shared immutable `ExprIr` tree
/// describing what the closure computes. `lint::prove_model` interprets that
/// tree over interval boxes to prove properties for *all* markings instead of
/// a probed prefix (docs/static-analysis.md).
///
/// Hand-written lambdas still work everywhere an `ExprFn` is expected; they
/// simply carry no IR (`has_ir() == false`) and the prover reports them as
/// `unprovable: opaque expression` at their model location (SAN043), falling
/// back to the reachability probe for the checks that need them.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace gop::san {

/// Node kinds of the expression IR. One enum covers the three expression
/// sorts (predicates, numeric rate/probability expressions, effects); the
/// sort is implied by the combinator that built the node.
enum class ExprOp {
  // predicates
  kAlways,        ///< true
  kMarkEq,        ///< MARK(place) == value
  kMarkGe,        ///< MARK(place) >= value
  kAllOf,         ///< conjunction over children
  kAnyOf,         ///< disjunction over children
  kNot,           ///< negation of child 0
  // numeric expressions (rates / probabilities)
  kConstNum,      ///< the constant `number`
  kComplement,    ///< 1 - child 0
  kRatePerToken,  ///< number * MARK(place)
  kCond,          ///< child 0 (predicate) ? child 1 : child 2
  // effects
  kNoEffect,      ///< identity
  kSetMark,       ///< MARK(place) = value
  kAddMark,       ///< MARK(place) += value (GOP_ENSUREs the result >= 0)
  kSequence,      ///< children applied in order
  kWhen,          ///< if child 0 (predicate) holds: apply child 1 (effect)
  // escape hatch
  kOpaque,        ///< a hand-written lambda somewhere below this point
};

struct ExprNode;

/// Shared immutable IR tree. Null means "no IR at all" (a bare lambda was
/// assigned where an ExprFn is expected); a tree may still contain kOpaque
/// leaves when a combinator wrapped a lambda argument.
using ExprIr = std::shared_ptr<const ExprNode>;

struct ExprNode {
  ExprOp op = ExprOp::kOpaque;
  size_t place = 0;      ///< place index for kMarkEq/kMarkGe/kSetMark/kAddMark/kRatePerToken
  int32_t value = 0;     ///< integer operand for kMarkEq/kMarkGe/kSetMark/kAddMark
  double number = 0.0;   ///< real operand for kConstNum/kRatePerToken
  std::vector<ExprIr> children;
};

namespace ir {

ExprIr always();
ExprIr mark_eq(size_t place, int32_t value);
ExprIr mark_ge(size_t place, int32_t value);
ExprIr all_of(std::vector<ExprIr> children);
ExprIr any_of(std::vector<ExprIr> children);
ExprIr negate(ExprIr child);
ExprIr constant(double number);
ExprIr complement(ExprIr child);
ExprIr rate_per_token(size_t place, double rate);
ExprIr cond(ExprIr predicate, ExprIr if_true, ExprIr if_false);
ExprIr no_effect();
ExprIr set_mark(size_t place, int32_t value);
ExprIr add_mark(size_t place, int32_t delta);
ExprIr sequence(std::vector<ExprIr> children);
ExprIr when(ExprIr predicate, ExprIr effect);

/// The shared opaque leaf (all opaque sub-expressions are one node).
ExprIr opaque();

/// `node`, or the opaque leaf when `node` is null. Composing combinators use
/// this so a lambda argument degrades to a kOpaque *leaf* instead of
/// discarding the IR of the whole composite.
ExprIr or_opaque(ExprIr node);

/// Structural rewrite of every place index through `place_map` (composition:
/// component place i lives at composed index place_map[i]). Null stays null;
/// a referenced index outside the map throws gop::InvalidArgument.
ExprIr rebase_places(const ExprIr& node, const std::vector<size_t>& place_map);

/// Structural equality (same ops, operands and children). Used by the prover
/// to recognize {p, complement(p)} case pairs, which sum to 1 exactly.
bool structurally_equal(const ExprIr& a, const ExprIr& b);

/// True when the tree contains a kOpaque leaf (or is null).
bool contains_opaque(const ExprIr& node);

/// Human-readable rendering, e.g. "(mark(#2) == 1 && mark(#4) >= 1)".
std::string to_string(const ExprIr& node);

}  // namespace ir

/// A marking expression: the closure the solvers and the generator call
/// (identical to the pre-IR `std::function`, so the hot path is unchanged),
/// plus the optional IR tree the static analyses read.
template <typename Signature>
class ExprFn {
 public:
  ExprFn() = default;
  ExprFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Implicit wrap of any callable (hand-written lambdas): no IR.
  template <typename F,
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, ExprFn> &&
                                 !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                                 std::is_constructible_v<std::function<Signature>, F&&>,
                             int> = 0>
  ExprFn(F&& callable)  // NOLINT(google-explicit-constructor)
      : fn_(std::forward<F>(callable)) {}

  /// IR-carrying expression, built by the san/expr.hh combinators.
  ExprFn(std::function<Signature> fn, ExprIr ir) : fn_(std::move(fn)), ir_(std::move(ir)) {}

  template <typename... Args>
  decltype(auto) operator()(Args&&... args) const {
    return fn_(std::forward<Args>(args)...);
  }

  explicit operator bool() const { return static_cast<bool>(fn_); }

  /// The IR tree, or null for a hand-written lambda.
  const ExprIr& ir() const { return ir_; }
  bool has_ir() const { return ir_ != nullptr; }

  /// The underlying closure (the simulator forwards it in a few places).
  const std::function<Signature>& fn() const { return fn_; }

 private:
  std::function<Signature> fn_;
  ExprIr ir_;
};

}  // namespace gop::san
