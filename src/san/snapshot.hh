#pragma once

/// \file snapshot.hh
/// Versioned binary serialization primitives plus the generated-chain
/// snapshot — the persistence layer gop::serve uses so a warm restart skips
/// state-space generation and re-solving (docs/serving.md documents the full
/// file format the serve layer assembles from these pieces).
///
/// Encoding rules (all of them, there is nothing else):
///  - integers are fixed-width little-endian (u8/u32/u64, i32 two's
///    complement);
///  - doubles are their raw IEEE-754 bit pattern as u64 — round-trips are
///    bit-exact by construction;
///  - strings and byte blobs are u64 length + raw bytes;
///  - there is no padding and no alignment.
///
/// Readers are defensive: every accessor throws SnapshotError on truncation,
/// oversized lengths, or malformed section data — never UB, never a crash.
/// Callers (serve::Server::load_snapshot) catch SnapshotError and degrade to
/// a clean cold start.
///
/// A SanModel itself is NOT serializable (predicates/rates/effects are
/// closures); what is saved is the *generated* chain — markings, labelled
/// transitions, initial distribution — which is the expensive part. Loading
/// re-attaches the chain to a freshly rebuilt model and verifies the stored
/// content hash, so a snapshot can never resurrect a chain onto the wrong
/// model silently.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "san/state_space.hh"

namespace gop::san::snapshot {

/// Thrown on any malformed, truncated, or mismatching snapshot data.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends fixed-width little-endian fields to a byte buffer.
class Writer {
 public:
  void u8(uint8_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void i32(int32_t v);
  void f64(double v);
  void str(std::string_view s);

  const std::string& buffer() const { return buffer_; }
  std::string take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Reads the Writer encoding back; every accessor throws SnapshotError when
/// the remaining bytes cannot satisfy it.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  int32_t i32();
  double f64();
  std::string str();

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  const unsigned char* need(size_t count);

  std::string_view data_;
  size_t pos_ = 0;
};

/// Serializes a generated chain: states, transitions, initial distribution,
/// and its content hash (san/hash.hh) for load-time verification.
void write_chain(Writer& writer, const GeneratedChain& chain);

/// Reconstructs a chain against `model`, which must be the same model the
/// chain was generated from (rebuilt from the same description/parameters).
/// Throws SnapshotError when the data is malformed, the place count does not
/// match the model, or the recomputed content hash differs from the stored
/// one. The returned chain references `model`; it must outlive the chain.
GeneratedChain read_chain(Reader& reader, const SanModel& model);

}  // namespace gop::san::snapshot
