#pragma once

/// \file gop.hh
/// Umbrella header: pulls in the whole public API of the GOP library. For
/// faster builds include only the headers you need; see README.md for the
/// module map.

// util — contracts, tables, CLI
#include "util/cli.hh"        // IWYU pragma: export
#include "util/error.hh"      // IWYU pragma: export
#include "util/strings.hh"    // IWYU pragma: export
#include "util/table.hh"      // IWYU pragma: export

// linalg — matrices and direct solvers
#include "linalg/csr_matrix.hh"    // IWYU pragma: export
#include "linalg/dense_matrix.hh"  // IWYU pragma: export
#include "linalg/gth.hh"           // IWYU pragma: export
#include "linalg/lu.hh"            // IWYU pragma: export
#include "linalg/vector_ops.hh"    // IWYU pragma: export

// markov — CTMC reward solvers
#include "markov/absorbing.hh"      // IWYU pragma: export
#include "markov/accumulated.hh"    // IWYU pragma: export
#include "markov/ctmc.hh"           // IWYU pragma: export
#include "markov/ctmc_sim.hh"       // IWYU pragma: export
#include "markov/dtmc.hh"           // IWYU pragma: export
#include "markov/first_passage.hh"  // IWYU pragma: export
#include "markov/fox_glynn.hh"      // IWYU pragma: export
#include "markov/krylov.hh"         // IWYU pragma: export
#include "markov/lumping.hh"        // IWYU pragma: export
#include "markov/matrix_exp.hh"     // IWYU pragma: export
#include "markov/importance.hh"     // IWYU pragma: export
#include "markov/sensitivity.hh"    // IWYU pragma: export
#include "markov/session.hh"        // IWYU pragma: export
#include "markov/solver_stats.hh"   // IWYU pragma: export
#include "markov/steady_state.hh"   // IWYU pragma: export
#include "markov/transient.hh"      // IWYU pragma: export
#include "markov/uniformization.hh" // IWYU pragma: export

// sim — randomness, statistics, replication
#include "sim/event_queue.hh"  // IWYU pragma: export
#include "sim/replication.hh"  // IWYU pragma: export
#include "sim/rng.hh"          // IWYU pragma: export
#include "sim/stats.hh"        // IWYU pragma: export

// san — stochastic activity networks
#include "san/batch_means.hh"      // IWYU pragma: export
#include "san/compose.hh"          // IWYU pragma: export
#include "san/dot_export.hh"       // IWYU pragma: export
#include "san/expr.hh"             // IWYU pragma: export
#include "san/lint.hh"             // IWYU pragma: export
#include "san/marking.hh"          // IWYU pragma: export
#include "san/model.hh"            // IWYU pragma: export
#include "san/phase_type.hh"       // IWYU pragma: export
#include "san/reward.hh"           // IWYU pragma: export
#include "san/reward_variable.hh"  // IWYU pragma: export
#include "san/session.hh"          // IWYU pragma: export
#include "san/simulator.hh"        // IWYU pragma: export
#include "san/state_space.hh"      // IWYU pragma: export

// core — the paper's GSU performability analysis
#include "core/approximation.hh"   // IWYU pragma: export
#include "core/gamma.hh"           // IWYU pragma: export
#include "core/mc_validator.hh"    // IWYU pragma: export
#include "core/params.hh"          // IWYU pragma: export
#include "core/performability.hh"  // IWYU pragma: export
#include "core/rm_gd.hh"           // IWYU pragma: export
#include "core/rm_gp.hh"           // IWYU pragma: export
#include "core/rm_nd.hh"           // IWYU pragma: export
#include "core/sensitivity.hh"     // IWYU pragma: export
#include "core/sweep.hh"           // IWYU pragma: export
