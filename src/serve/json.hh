#pragma once

/// \file json.hh
/// Minimal JSON value, parser, and canonical serializer for the gop::serve
/// wire protocol (docs/serving.md). Deliberately small: the subset the
/// protocol needs (null, bool, finite numbers, strings with the common
/// escapes, arrays, objects) — not a general-purpose JSON library.
///
/// Two properties the serve layer leans on:
///  - parse() throws gop::InvalidArgument on any malformed input (trailing
///    garbage included); the server maps that to a structured error
///    response, never a crash.
///  - dump() is canonical for a given Json value: object keys keep insertion
///    order, numbers print as shortest round-trip (%.17g, with integral
///    values printed without exponent), no whitespace. Inline model
///    descriptions are hashed over this canonical text, so equal values
///    produce equal cache keys.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace gop::serve {

class Json;

using JsonArray = std::vector<Json>;
/// Insertion-ordered object (the protocol never needs key lookup faster
/// than a linear scan; order preservation keeps dump() canonical).
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  Json() : value_(nullptr) {}

  static Json null() { return Json(); }
  static Json boolean(bool b) { return Json(Value(b)); }
  static Json number(double d) { return Json(Value(d)); }
  static Json string(std::string s) { return Json(Value(std::move(s))); }
  static Json array(JsonArray items = {}) { return Json(Value(std::move(items))); }
  static Json object(JsonObject members = {}) { return Json(Value(std::move(members))); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw gop::InvalidArgument on a type mismatch (the
  /// message names the expected type, so protocol errors are diagnosable).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member lookup; nullptr when absent or when this is not an
  /// object. First match wins on (malformed) duplicate keys.
  const Json* find(std::string_view key) const;

  /// Mutators for building responses.
  void set(std::string key, Json value);
  void push_back(Json value);

  /// Canonical serialization; see the file comment.
  std::string dump() const;
  void dump_to(std::string& out) const;

 private:
  using Value =
      std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>;
  explicit Json(Value value) : value_(std::move(value)) {}

  Value value_;
};

/// Maximum array/object nesting depth parse() accepts. The parser is
/// recursive-descent, so this bounds its stack use against adversarial
/// input (e.g. a request line of 100k '['); deeper documents are a parse
/// error, not a stack overflow. Generous: real protocol documents nest
/// 3-4 levels.
inline constexpr size_t kMaxParseDepth = 64;

/// Parses exactly one JSON document; throws gop::InvalidArgument on
/// malformed input, trailing non-whitespace, or nesting deeper than
/// kMaxParseDepth.
Json parse(std::string_view text);

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes). Exposed for the request-log and tests.
std::string json_escape(std::string_view s);

}  // namespace gop::serve
