#include "serve/inline_model.hh"

#include <cmath>
#include <string>
#include <utility>

#include "san/expr.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::serve {

namespace {

const Json& require_field(const Json& object, const char* field, const char* context) {
  const Json* value = object.find(field);
  if (value == nullptr) {
    throw InvalidArgument(str_format("inline model: %s is missing '%s'", context, field));
  }
  return *value;
}

int32_t as_int32(const Json& value, const char* context) {
  const double d = value.as_number();
  if (d != std::floor(d) || d < -2147483648.0 || d > 2147483647.0) {
    throw InvalidArgument(str_format("inline model: %s must be a 32-bit integer", context));
  }
  return static_cast<int32_t>(d);
}

/// One [place, op, value] triple of a guard / reward predicate.
san::Predicate parse_condition(const san::SanModel& model, const Json& triple) {
  const JsonArray& parts = triple.as_array();
  if (parts.size() != 3) {
    throw InvalidArgument("inline model: condition must be [place, op, value]");
  }
  const san::PlaceRef place = model.place(parts[0].as_string());
  const std::string& op = parts[1].as_string();
  const int32_t value = as_int32(parts[2], "condition value");
  if (op == "==") return san::mark_eq(place, value);
  if (op == ">=") return san::mark_ge(place, value);
  throw InvalidArgument(
      str_format("inline model: unknown condition operator '%s' (use \"==\" or \">=\")",
                 op.c_str()));
}

/// A conjunction array (empty or absent means always-enabled).
san::Predicate parse_conjunction(const san::SanModel& model, const Json* conditions) {
  if (conditions == nullptr || conditions->as_array().empty()) return san::always();
  std::vector<san::Predicate> terms;
  terms.reserve(conditions->as_array().size());
  for (const Json& triple : conditions->as_array()) {
    terms.push_back(parse_condition(model, triple));
  }
  if (terms.size() == 1) return terms.front();
  return san::all_of(std::move(terms));
}

/// One [place, "set"|"add", value] effect triple.
san::Effect parse_effect(const san::SanModel& model, const Json& triple) {
  const JsonArray& parts = triple.as_array();
  if (parts.size() != 3) {
    throw InvalidArgument("inline model: effect must be [place, \"set\"|\"add\", value]");
  }
  const san::PlaceRef place = model.place(parts[0].as_string());
  const std::string& op = parts[1].as_string();
  const int32_t value = as_int32(parts[2], "effect value");
  if (op == "set") return san::set_mark(place, value);
  if (op == "add") return san::add_mark(place, value);
  throw InvalidArgument(str_format(
      "inline model: unknown effect operator '%s' (use \"set\" or \"add\")", op.c_str()));
}

san::Effect parse_effects(const san::SanModel& model, const Json* effects) {
  if (effects == nullptr || effects->as_array().empty()) return san::no_effect();
  std::vector<san::Effect> steps;
  steps.reserve(effects->as_array().size());
  for (const Json& triple : effects->as_array()) steps.push_back(parse_effect(model, triple));
  if (steps.size() == 1) return steps.front();
  return san::sequence(std::move(steps));
}

std::vector<san::Case> parse_cases(const san::SanModel& model, const Json* cases) {
  std::vector<san::Case> out;
  if (cases == nullptr || cases->as_array().empty()) {
    out.push_back(san::Case{san::constant_prob(1.0), san::no_effect()});
    return out;
  }
  out.reserve(cases->as_array().size());
  for (const Json& entry : cases->as_array()) {
    const Json* prob = entry.find("prob");
    const double p = prob == nullptr ? 1.0 : prob->as_number();
    out.push_back(san::Case{san::constant_prob(p), parse_effects(model, entry.find("effects"))});
  }
  return out;
}

void add_activity(san::SanModel& model, const Json& spec) {
  const std::string& name = require_field(spec, "name", "an activity").as_string();
  san::Predicate guard = parse_conjunction(model, spec.find("guard"));
  std::vector<san::Case> cases = parse_cases(model, spec.find("cases"));

  const Json* instantaneous = spec.find("instantaneous");
  if (instantaneous != nullptr && instantaneous->as_bool()) {
    if (spec.find("rate") != nullptr) {
      throw InvalidArgument(str_format(
          "inline model: activity '%s' cannot be both instantaneous and rated", name.c_str()));
    }
    san::InstantaneousActivity activity;
    activity.name = name;
    activity.enabled = std::move(guard);
    const Json* priority = spec.find("priority");
    activity.priority = priority == nullptr ? 0 : as_int32(*priority, "activity priority");
    activity.cases = std::move(cases);
    model.add_instantaneous_activity(std::move(activity));
    return;
  }

  san::TimedActivity activity;
  activity.name = name;
  activity.enabled = std::move(guard);
  activity.rate =
      san::constant_rate(require_field(spec, "rate", "a timed activity").as_number());
  activity.cases = std::move(cases);
  model.add_timed_activity(std::move(activity));
}

san::ActivityRef activity_by_name(const san::SanModel& model, const std::string& name) {
  for (size_t a = 0; a < model.activity_count(); ++a) {
    const san::ActivityRef ref{a};
    if (model.activity_name(ref) == name) return ref;
  }
  throw InvalidArgument(str_format("inline model: unknown activity '%s'", name.c_str()));
}

san::RewardStructure parse_reward(const san::SanModel& model, const Json& spec) {
  const std::string& name = require_field(spec, "name", "a reward").as_string();
  san::RewardStructure reward(name);
  if (const Json* rates = spec.find("rates")) {
    for (const Json& entry : rates->as_array()) {
      reward.add(parse_conjunction(model, entry.find("when")),
                 require_field(entry, "rate", "a reward rate").as_number());
    }
  }
  if (const Json* impulses = spec.find("impulses")) {
    for (const Json& pair : impulses->as_array()) {
      const JsonArray& parts = pair.as_array();
      if (parts.size() != 2) {
        throw InvalidArgument("inline model: impulse must be [activity, reward]");
      }
      reward.add_impulse(activity_by_name(model, parts[0].as_string()), parts[1].as_number());
    }
  }
  return reward;
}

}  // namespace

InlineModel build_inline_model(const Json& description) {
  GOP_REQUIRE(description.is_object(), "inline model description must be a JSON object");
  InlineModel built;
  built.model = std::make_unique<san::SanModel>(
      require_field(description, "name", "the description").as_string());
  san::SanModel& model = *built.model;

  const Json& places = require_field(description, "places", "the description");
  for (const Json& spec : places.as_array()) {
    const std::string& name = require_field(spec, "name", "a place").as_string();
    const Json* initial = spec.find("initial");
    const int32_t tokens = initial == nullptr ? 0 : as_int32(*initial, "place initial");
    if (const Json* capacity = spec.find("capacity")) {
      model.add_place(name, tokens, as_int32(*capacity, "place capacity"));
    } else {
      model.add_place(name, tokens);
    }
  }

  if (const Json* activities = description.find("activities")) {
    for (const Json& spec : activities->as_array()) add_activity(model, spec);
  }

  if (const Json* rewards = description.find("rewards")) {
    for (const Json& spec : rewards->as_array()) {
      built.rewards.push_back(parse_reward(model, spec));
    }
  }
  return built;
}

}  // namespace gop::serve
