#include "serve/request.hh"

#include <utility>

#include "util/error.hh"
#include "util/strings.hh"

namespace gop::serve {

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kError: return "error";
  }
  throw InternalError("unknown serve::Status");
}

namespace {

std::vector<double> parse_grid(const Json& value, const char* field) {
  GOP_REQUIRE(value.is_array(), "request grid field must be an array of numbers");
  std::vector<double> grid;
  grid.reserve(value.as_array().size());
  for (const Json& item : value.as_array()) {
    GOP_REQUIRE(item.is_number(),
                str_format("request field '%s' must contain numbers only", field).c_str());
    grid.push_back(item.as_number());
  }
  return grid;
}

double param_or(const Json& document, const char* field, double fallback) {
  const Json* value = document.find(field);
  if (value == nullptr) return fallback;
  return value->as_number();
}

Json grid_json(const std::vector<double>& grid) {
  Json out = Json::array();
  for (double t : grid) out.push_back(Json::number(t));
  return out;
}

Json certificate_json(const NamedCertificate& named) {
  Json cert = Json::object();
  cert.set("solver", Json::string(named.solver));
  cert.set("requested_engine", Json::string(named.certificate.requested_engine));
  cert.set("engine", Json::string(named.certificate.engine));
  cert.set("retries", Json::number(static_cast<double>(named.certificate.retries)));
  cert.set("fallback", Json::boolean(named.certificate.fallback));
  cert.set("degraded", Json::boolean(named.certificate.degraded));
  cert.set("error_bound", Json::number(named.certificate.error_bound));
  Json attempts = Json::array();
  for (const std::string& attempt : named.certificate.attempts) {
    attempts.push_back(Json::string(attempt));
  }
  cert.set("attempts", std::move(attempts));
  return cert;
}

Json finding_json(const lint::Finding& finding) {
  Json out = Json::object();
  out.set("code", Json::string(finding.code));
  out.set("severity", Json::string(lint::severity_name(finding.severity)));
  out.set("model", Json::string(finding.model));
  out.set("location", Json::string(finding.location));
  out.set("message", Json::string(finding.message));
  out.set("hint", Json::string(finding.hint));
  return out;
}

}  // namespace

Request parse_request(const Json& document) {
  GOP_REQUIRE(document.is_object(), "request must be a JSON object");
  Request request;
  if (const Json* id = document.find("id")) request.id = id->as_string();
  const Json* model = document.find("model");
  const Json* inline_model = document.find("inline_model");
  const Json* tpl = document.find("template");
  const int sources =
      (model != nullptr ? 1 : 0) + (inline_model != nullptr ? 1 : 0) + (tpl != nullptr ? 1 : 0);
  GOP_REQUIRE(sources == 1,
              "request needs exactly one of 'model', 'inline_model', or 'template'");
  if (model != nullptr) request.model = model->as_string();
  if (inline_model != nullptr) request.inline_model = *inline_model;
  if (tpl != nullptr) request.template_name = tpl->as_string();

  if (const Json* assignment = document.find("assignment")) {
    GOP_REQUIRE(tpl != nullptr, "request 'assignment' requires a 'template'");
    GOP_REQUIRE(assignment->is_object(), "request 'assignment' must be an object");
    for (const auto& [name, value] : assignment->as_object()) {
      if (value.is_string()) {
        // Strings go through ParamValue::parse so "2" binds as an int and
        // "retry" as an enum choice; the template layer coerces and
        // range-checks against the family's specs at resolve time.
        request.assignment.set(name, san::tpl::ParamValue::parse(value.as_string()));
      } else if (value.is_number()) {
        request.assignment.set_real(name, value.as_number());
      } else {
        throw InvalidArgument(str_format(
            "request assignment '%s' must be a number or a string", name.c_str()));
      }
    }
  }

  if (const Json* params = document.find("params")) {
    GOP_REQUIRE(params->is_object(), "request 'params' must be an object");
    core::GsuParameters& p = request.params;
    p.theta = param_or(*params, "theta", p.theta);
    p.lambda = param_or(*params, "lambda", p.lambda);
    p.mu_new = param_or(*params, "mu_new", p.mu_new);
    p.mu_old = param_or(*params, "mu_old", p.mu_old);
    p.coverage = param_or(*params, "coverage", p.coverage);
    p.p_ext = param_or(*params, "p_ext", p.p_ext);
    p.alpha = param_or(*params, "alpha", p.alpha);
    p.beta = param_or(*params, "beta", p.beta);
  }

  const Json* rewards = document.find("rewards");
  GOP_REQUIRE(rewards != nullptr && rewards->is_array(),
              "request needs a 'rewards' array of reward names");
  for (const Json& reward : rewards->as_array()) {
    request.rewards.push_back(reward.as_string());
  }

  if (const Json* grid = document.find("transient_times")) {
    request.transient_times = parse_grid(*grid, "transient_times");
  }
  if (const Json* grid = document.find("accumulated_times")) {
    request.accumulated_times = parse_grid(*grid, "accumulated_times");
  }
  if (const Json* steady = document.find("steady_state")) {
    request.steady_state = steady->as_bool();
  }
  return request;
}

Json response_to_json(const Response& response) {
  Json out = Json::object();
  out.set("id", Json::string(response.id));
  out.set("status", Json::string(to_string(response.status)));
  out.set("cache_hit", Json::boolean(response.cache_hit));
  out.set("latency_ms", Json::number(response.latency_ms));
  if (response.status == Status::kError) {
    out.set("error", Json::string(response.error));
    return out;
  }
  if (response.status == Status::kRejected) {
    Json findings = Json::array();
    for (const lint::Finding& finding : response.findings.findings()) {
      findings.push_back(finding_json(finding));
    }
    out.set("findings", std::move(findings));
    return out;
  }
  out.set("engine", Json::string(response.engine));
  out.set("storage", Json::string(response.storage));
  out.set("model_hash", Json::string(str_format("%016llx", static_cast<unsigned long long>(
                                                               response.model_hash))));
  out.set("reward_hash", Json::string(str_format("%016llx", static_cast<unsigned long long>(
                                                                response.reward_hash))));
  out.set("grid_hash", Json::string(str_format("%016llx", static_cast<unsigned long long>(
                                                              response.grid_hash))));
  Json results = Json::array();
  for (const RewardSeries& series : response.results) {
    Json entry = Json::object();
    entry.set("reward", Json::string(series.reward));
    entry.set("instant", grid_json(series.instant));
    entry.set("accumulated", grid_json(series.accumulated));
    if (series.steady_state.has_value()) {
      entry.set("steady_state", Json::number(*series.steady_state));
    }
    results.push_back(std::move(entry));
  }
  out.set("results", std::move(results));
  Json certificates = Json::array();
  for (const NamedCertificate& named : response.certificates) {
    certificates.push_back(certificate_json(named));
  }
  out.set("certificates", std::move(certificates));
  if (!response.findings.empty()) {
    Json findings = Json::array();
    for (const lint::Finding& finding : response.findings.findings()) {
      findings.push_back(finding_json(finding));
    }
    out.set("findings", std::move(findings));
  }
  return out;
}

}  // namespace gop::serve
