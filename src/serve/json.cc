#include "serve/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hh"
#include "util/strings.hh"

namespace gop::serve {

bool Json::as_bool() const {
  GOP_REQUIRE(is_bool(), "JSON value is not a boolean");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  GOP_REQUIRE(is_number(), "JSON value is not a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  GOP_REQUIRE(is_string(), "JSON value is not a string");
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  GOP_REQUIRE(is_array(), "JSON value is not an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  GOP_REQUIRE(is_object(), "JSON value is not an object");
  return std::get<JsonObject>(value_);
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : std::get<JsonObject>(value_)) {
    if (name == key) return &value;
  }
  return nullptr;
}

void Json::set(std::string key, Json value) {
  if (!is_object()) value_ = JsonObject{};
  std::get<JsonObject>(value_).emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  if (!is_array()) value_ = JsonArray{};
  std::get<JsonArray>(value_).push_back(std::move(value));
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void dump_number(std::string& out, double d) {
  GOP_REQUIRE(std::isfinite(d), "JSON cannot represent a non-finite number");
  // Integral values within the exactly-representable range print without a
  // fraction or exponent; everything else as shortest round-trip.
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    out += str_format("%.0f", d);
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", d);
  // Trim to the shortest representation that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, d);
    if (std::strtod(shorter, nullptr) == d) {
      out += shorter;
      return;
    }
  }
  out += buffer;
}

}  // namespace

void Json::dump_to(std::string& out) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (is_number()) {
    dump_number(out, std::get<double>(value_));
  } else if (is_string()) {
    out += '"';
    out += json_escape(std::get<std::string>(value_));
    out += '"';
  } else if (is_array()) {
    out += '[';
    const JsonArray& items = std::get<JsonArray>(value_);
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ',';
      items[i].dump_to(out);
    }
    out += ']';
  } else {
    out += '{';
    const JsonObject& members = std::get<JsonObject>(value_);
    for (size_t i = 0; i < members.size(); ++i) {
      if (i > 0) out += ',';
      out += '"';
      out += json_escape(members[i].first);
      out += "\":";
      members[i].second.dump_to(out);
    }
    out += '}';
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw InvalidArgument(str_format("JSON parse error at offset %zu: %s", pos_, what));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_).starts_with(literal)) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  /// Bounds recursion of parse_object/parse_array (see kMaxParseDepth).
  struct DepthScope {
    explicit DepthScope(Parser& parser) : parser_(parser) {
      if (parser_.depth_ >= kMaxParseDepth) {
        parser_.fail("nesting exceeds the maximum depth");
      }
      ++parser_.depth_;
    }
    ~DepthScope() { --parser_.depth_; }
    DepthScope(const DepthScope&) = delete;
    DepthScope& operator=(const DepthScope&) = delete;
    Parser& parser_;
  };

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Json::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Json::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Json::null();
      default: return parse_number();
    }
  }

  Json parse_object() {
    DepthScope depth(*this);
    expect('{');
    JsonObject members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json::object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json::object(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    DepthScope depth(*this);
    expect('[');
    JsonArray items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json::array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json::array(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) fail("truncated \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the protocol is ASCII identifiers and numbers).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  Json parse_number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const size_t digits_start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ == digits_start) fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const size_t frac_start = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
      if (pos_ == frac_start) fail("invalid number: missing fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      const size_t exp_start = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
      if (pos_ == exp_start) fail("invalid number: missing exponent digits");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number");
    if (!std::isfinite(value)) fail("number out of double range");
    return Json::number(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

}  // namespace

Json parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace gop::serve
