#pragma once

/// \file inline_model.hh
/// Inline SAN descriptions: builds a san::SanModel plus its reward catalog
/// from the declarative JSON schema of the serve protocol (docs/serving.md).
/// The builder is strict about *shape* (missing fields, unknown names, bad
/// operators throw gop::InvalidArgument, which the server maps to a kError
/// response) but deliberately permissive about *semantics*: probabilities
/// that do not sum to one, negative rates, capacity violations and the like
/// build fine and are then caught by lint admission — that is the whole
/// point of admission control, and what serve_admission_test exercises.
///
/// Everything is assembled from the san/expr.hh combinators, so inline
/// models carry the expression IR and are provable by lint::prove_model like
/// any registered model.
///
/// Schema:
///   {"name": "m",
///    "places": [{"name":"p", "initial":1, "capacity":2}],          // capacity optional
///    "activities": [{"name":"a",
///                    "rate": 2.0,                // timed (constant rate), or
///                    "instantaneous": true,      // ... instantaneous
///                    "priority": 0,              // optional, instantaneous only
///                    "guard": [["p",">=",1]],    // conjunction; ops "==" and ">="
///                    "cases": [{"prob":1.0, "effects":[["p","add",-1]]}]}],
///    "rewards": [{"name":"r",
///                 "rates": [{"when":[["p","==",1]], "rate":1.0}],   // "when" optional (always)
///                 "impulses": [["a", 0.5]]}]}                        // optional

#include <memory>
#include <vector>

#include "san/model.hh"
#include "san/reward.hh"
#include "serve/json.hh"

namespace gop::serve {

/// A built inline model. The model is heap-held so the generated chain and
/// cache entries can keep a stable pointer to it.
struct InlineModel {
  std::unique_ptr<san::SanModel> model;
  std::vector<san::RewardStructure> rewards;
};

/// Builds the model and rewards; throws gop::InvalidArgument on any shape
/// error (the message names the offending field).
InlineModel build_inline_model(const Json& description);

}  // namespace gop::serve
