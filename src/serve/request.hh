#pragma once

/// \file request.hh
/// The gop::serve request/response model — the in-process face of the wire
/// protocol (docs/serving.md). serve::Server::handle takes a Request and
/// returns a Response; the daemon (tools/gop_serve.cc) merely converts
/// line-delimited JSON to and from these structs.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/params.hh"
#include "lint/finding.hh"
#include "markov/recovery.hh"
#include "san/template.hh"
#include "serve/json.hh"

namespace gop::serve {

/// One evaluation request. Exactly one of `model` (registered id),
/// `inline_model` (SAN description; serve/inline_model.hh), or
/// `template_name` (core::template_registry() family) must be set.
struct Request {
  std::string id;  ///< caller correlation id, echoed in the response
  std::string model;
  std::optional<Json> inline_model;
  /// Template-family requests: the family name and the (possibly partial)
  /// parameter assignment; defaults fill the rest and the instance cache key
  /// is derived from the fully resolved assignment's san::tpl::param_hash,
  /// so it is sensitive to every parameter bit.
  std::string template_name;
  san::tpl::Assignment assignment;
  /// Table-3 parameters for registered models (ignored for inline and
  /// template models; those carry their own numbers).
  core::GsuParameters params = core::GsuParameters::table3();
  /// Reward structures to evaluate, by name; must be non-empty and each name
  /// must exist in the model's reward catalog.
  std::vector<std::string> rewards;
  std::vector<double> transient_times;    ///< instant-of-time grid (sorted)
  std::vector<double> accumulated_times;  ///< interval-of-time grid (sorted)
  bool steady_state = false;              ///< also evaluate steady-state reward
};

enum class Status {
  kOk = 0,
  /// Admission control refused the request; `findings` says why. The model
  /// or request is at fault, the server is healthy.
  kRejected = 1,
  /// The request was malformed (unknown model / reward, bad JSON, bad grid
  /// shape) or the solve failed; `error` says why.
  kError = 2,
};

const char* to_string(Status status);

/// Evaluated series for one reward structure, in request grid order.
struct RewardSeries {
  std::string reward;
  std::vector<double> instant;      ///< one per transient_times entry
  std::vector<double> accumulated;  ///< one per accumulated_times entry
  std::optional<double> steady_state;
};

/// A provenance certificate labelled with the solver family it covers.
struct NamedCertificate {
  std::string solver;  ///< "transient_session" / "accumulated_session" / "steady_state"
  markov::Certificate certificate;
};

struct Response {
  std::string id;
  Status status = Status::kOk;
  bool cache_hit = false;
  std::string engine;   ///< SolverPlan engine that served the (cached) solve
  std::string storage;  ///< generator storage form ("dense" / "sparse")
  uint64_t model_hash = 0;
  uint64_t reward_hash = 0;
  uint64_t grid_hash = 0;
  std::vector<RewardSeries> results;
  std::vector<NamedCertificate> certificates;
  lint::Report findings;  ///< set on kRejected (and warnings on kOk)
  std::string error;      ///< set on kError
  double latency_ms = 0.0;

  bool ok() const { return status == Status::kOk; }
};

/// Wire codecs for the daemon and load generator. parse_request throws
/// gop::InvalidArgument on malformed or incomplete documents; the caller
/// maps that to a kError response.
Request parse_request(const Json& document);
Json response_to_json(const Response& response);

}  // namespace gop::serve
