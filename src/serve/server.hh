#pragma once

/// \file server.hh
/// serve::Server — the in-process analysis-as-a-service engine behind the
/// gop_serve daemon (docs/serving.md). One handle() call takes a Request
/// through the full serving path:
///
///   1. model resolution — registered id (the gop_lint registry models by
///      default) with Table-3 parameters, an inline SAN description, or a
///      template family from core::template_registry() with a parameter
///      assignment (instance key "tpl:<family>:<param_hash>", sensitive to
///      every parameter bit — a 1-ulp change is a new instance); built model
///      instances are cached by instance key in a bounded LRU
///      (instance_capacity), with single-flight deduplication so concurrent
///      first requests build once.
///   2. admission control — the gop::lint battery (lint/admission.hh) runs
///      on every instance at build time and the solver preflights run per
///      request; error findings become a kRejected response carrying the
///      report. Bad input never crashes the server.
///   3. solved-model cache — a content-addressed LRU keyed on (chain hash,
///      reward-set hash, grid hash); hits return the immutable cached result,
///      bitwise identical to the cold solve that produced it, certificates
///      included.
///   4. cold solves — scheduled on a gop::par::ThreadPool, deduplicated by
///      single-flight (concurrent identical requests share one solve), run
///      through the recovery ladder so every result carries provenance
///      certificates.
///   5. request log — one gop::obs kServeRequest event per request (outcome,
///      engine, latency, certificate summary) recorded into the obs registry
///      when tracing is enabled, and streamed as a JSONL line to the
///      configured sink.
///
/// A Server is thread-safe: any number of threads may call handle()
/// concurrently (the daemon does so from its connection threads, the
/// concurrency battery from raw std::threads).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/params.hh"
#include "lint/admission.hh"
#include "markov/recovery.hh"
#include "par/thread_pool.hh"
#include "san/state_space.hh"
#include "san/template.hh"
#include "serve/cache.hh"
#include "serve/inline_model.hh"
#include "serve/request.hh"

namespace gop::serve {

struct ServerOptions {
  /// Solved-result cache capacity (entries). At least 1.
  size_t cache_capacity = 1024;
  /// Model-instance cache capacity (entries). Instances are heavy — each
  /// holds the built model AND its generated chain (state space) — so this
  /// is a separate, much smaller LRU bound; an evicted instance is simply
  /// rebuilt on the next request for it. At least 1.
  size_t instance_capacity = 32;
  /// Workers of the cold-solve pool (0 = par::default_thread_count()).
  size_t solver_threads = 1;
  /// Reachability-probe budget for model admission (lint::ModelLintOptions).
  size_t probe_budget = 20'000;
  /// Recovery ladder for every solve; certificates come from here.
  markov::RecoveryPolicy recovery;
  /// Record a gop::obs kServeRequest event per request (still gated on
  /// obs::enabled()).
  bool log_requests = true;
};

/// Point-in-time server counters (all monotonically increasing).
struct ServerStats {
  uint64_t requests = 0;
  uint64_t cache_hits = 0;
  uint64_t cold_solves = 0;   ///< cache misses this thread actually solved
  uint64_t coalesced = 0;     ///< misses served by another thread's in-flight solve
  uint64_t rejected = 0;      ///< admission-control rejections
  uint64_t errors = 0;        ///< malformed requests / solve failures
  uint64_t evictions = 0;     ///< LRU evictions from the solved cache
  uint64_t instance_evictions = 0;  ///< LRU evictions from the instance cache
  uint64_t chain_builds = 0;  ///< model instances built (state spaces generated)
};

/// Outcome of Server::load_snapshot. `loaded == false` means the server
/// state is untouched (clean cold start); a partially-usable snapshot loads
/// what verifies and reports the rest in `detail`.
struct SnapshotLoadResult {
  bool loaded = false;
  size_t instances = 0;      ///< model instances restored (chains reattached)
  size_t cache_entries = 0;  ///< solved results restored
  std::string detail;        ///< why the load failed / what was skipped
};

/// The immutable solved result one cache entry holds; also the payload a
/// kOk Response copies its fields from (so hit and cold responses are
/// bitwise identical by construction).
struct CachedResult {
  std::string engine;
  std::string storage;
  std::vector<RewardSeries> results;
  std::vector<NamedCertificate> certificates;
};

class Server {
 public:
  /// What a registered model contributes: a fresh model + reward catalog for
  /// a parameter set (the same shape inline descriptions build into).
  using ModelBuilder = std::function<InlineModel(const core::GsuParameters&)>;

  explicit Server(const ServerOptions& options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers (or replaces) a model builder under `name`. The four paper
  /// models (rmgd, rmgp, rmnd-new, rmnd-old) are pre-registered with the
  /// same reward catalogs as the gop_lint registry.
  void register_model(const std::string& name, ModelBuilder builder);

  /// Serves one request; never throws (every failure becomes a kRejected or
  /// kError response).
  Response handle(const Request& request);

  /// JSONL request-log sink, called once per completed request with one
  /// newline-terminated obs event line. Called under no lock ordering
  /// guarantees other than per-request; pass a thread-safe sink.
  void set_request_log(std::function<void(const std::string&)> sink);

  ServerStats stats() const;

  /// Serializes every admitted model instance's generated chain and the
  /// whole solved cache into the versioned snapshot container
  /// (docs/serving.md). Thread-safe, but entries added during the save may
  /// or may not be included.
  std::string save_snapshot() const;
  /// save_snapshot to a file; false (with no partial file left behind
  /// guarantees) when the file cannot be written.
  bool save_snapshot_file(const std::string& path) const;

  /// Restores instances and cached results from snapshot bytes. Corrupt or
  /// mismatching data is never loaded: the container checksum gates the
  /// whole file, each chain re-verifies its content hash against the rebuilt
  /// model, and anything that fails verification is skipped (reported in
  /// `detail`) — the server then simply cold-solves those requests again.
  SnapshotLoadResult load_snapshot(std::string_view bytes);
  SnapshotLoadResult load_snapshot_file(const std::string& path);

 private:
  /// A built (or rejected) model instance; immutable once published.
  struct ModelInstance {
    std::string instance_key;
    bool registered = false;            ///< built from the registry (vs inline)
    bool templated = false;             ///< built from core::template_registry()
    std::string name;                   ///< registered/template name, or inline model name
    core::GsuParameters params;         ///< registered instances only
    san::tpl::Assignment assignment;    ///< fully resolved, template instances only
    std::string inline_text;            ///< canonical inline JSON, inline only
    std::unique_ptr<san::SanModel> model;
    std::vector<san::RewardStructure> rewards;
    lint::Report base_report;           ///< model + chain lint layers
    std::map<std::string, lint::Report> reward_reports;  ///< per reward name
    bool admitted = false;              ///< base layers are error-free
    std::optional<san::GeneratedChain> chain;
    uint64_t chain_hash = 0;
    std::map<std::string, uint64_t> reward_hashes;

    const san::RewardStructure* find_reward(const std::string& reward_name) const;
  };

  std::shared_ptr<const ModelInstance> instance_for(const Request& request);
  std::shared_ptr<const ModelInstance> build_instance(const std::string& instance_key,
                                                      const Request& request) const;
  /// Finishes an instance whose model+rewards are already populated:
  /// admission layers, chain adoption/generation, hashes.
  void admit_instance(ModelInstance& instance,
                      std::optional<san::GeneratedChain> chain) const;

  std::shared_ptr<const CachedResult> solve_on_pool(
      const std::shared_ptr<const ModelInstance>& instance,
      const std::vector<const san::RewardStructure*>& rewards, const Request& request) const;
  CachedResult solve_request(const ModelInstance& instance,
                             const std::vector<const san::RewardStructure*>& rewards,
                             const Request& request) const;

  void log_request(const Request& request, const Response& response, const char* outcome,
                   size_t states);

  ServerOptions options_;
  mutable par::ThreadPool pool_;

  mutable std::mutex registry_mutex_;
  std::map<std::string, ModelBuilder> registry_;

  LruCache<std::string, ModelInstance> instances_;
  SingleFlight<std::string> instance_flight_;

  SolvedCache<CachedResult> cache_;
  SingleFlight<CacheKey> solve_flight_;

  std::mutex log_mutex_;
  std::function<void(const std::string&)> request_log_;

  struct AtomicStats;
  std::unique_ptr<AtomicStats> stats_;
};

}  // namespace gop::serve
