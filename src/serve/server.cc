#include "serve/server.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/rm_gd.hh"
#include "core/rm_gp.hh"
#include "core/rm_nd.hh"
#include "core/templates.hh"
#include "markov/solver_plan.hh"
#include "obs/registry.hh"
#include "obs/sink.hh"
#include "san/hash.hh"
#include "san/session.hh"
#include "san/snapshot.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::serve {

struct Server::AtomicStats {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cold_solves{0};
  std::atomic<uint64_t> coalesced{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> instance_evictions{0};
  std::atomic<uint64_t> chain_builds{0};
};

namespace {

// Snapshot container framing (docs/serving.md): magic "GOPS", a format
// version, the length-prefixed payload, then an FNV-1a checksum of the
// payload bytes.
constexpr uint32_t kSnapshotMagic = 0x53504f47;  // "GOPS" read little-endian
constexpr uint32_t kSnapshotVersion = 1;

std::string hex64(uint64_t value) {
  return str_format("%016llx", static_cast<unsigned long long>(value));
}

uint64_t params_hash(const core::GsuParameters& p) {
  san::Fnv1a h;
  h.f64(p.theta);
  h.f64(p.lambda);
  h.f64(p.mu_new);
  h.f64(p.mu_old);
  h.f64(p.coverage);
  h.f64(p.p_ext);
  h.f64(p.alpha);
  h.f64(p.beta);
  return h.digest();
}

std::string registered_instance_key(const std::string& name, const core::GsuParameters& params) {
  return name + ":" + hex64(params_hash(params));
}

std::string inline_instance_key(const std::string& canonical_text) {
  return "inline:" + hex64(san::fnv1a(canonical_text.data(), canonical_text.size()));
}

std::string template_instance_key(const std::string& family,
                                  const san::tpl::Assignment& resolved) {
  return "tpl:" + family + ":" + hex64(san::tpl::param_hash(resolved));
}

/// The paper models, packaged the same way inline descriptions build:
/// heap-held model + reward catalog. Reward structures only carry place /
/// activity indices, so building them before moving the model is safe.
InlineModel build_rmgd(const core::GsuParameters& params) {
  core::RmGd gd = core::build_rm_gd(params);
  InlineModel out;
  out.rewards = {gd.reward_p_a1(), gd.reward_ih(), gd.reward_ihf(), gd.reward_itauh(),
                 gd.reward_detected()};
  out.model = std::make_unique<san::SanModel>(std::move(gd.model));
  return out;
}

InlineModel build_rmgp(const core::GsuParameters& params) {
  core::RmGp gp = core::build_rm_gp(params);
  InlineModel out;
  out.rewards = {gp.reward_overhead_p1n(), gp.reward_overhead_p2()};
  out.model = std::make_unique<san::SanModel>(std::move(gp.model));
  return out;
}

InlineModel build_rmnd(const core::GsuParameters& params, double mu_1) {
  core::RmNd nd = core::build_rm_nd(params, mu_1);
  InlineModel out;
  out.rewards = {nd.reward_no_failure()};
  out.model = std::make_unique<san::SanModel>(std::move(nd.model));
  return out;
}

}  // namespace

const san::RewardStructure* Server::ModelInstance::find_reward(
    const std::string& reward_name) const {
  for (const san::RewardStructure& reward : rewards) {
    if (reward.name() == reward_name) return &reward;
  }
  return nullptr;
}

Server::Server(const ServerOptions& options)
    : options_(options),
      pool_(options.solver_threads),
      instances_(options.instance_capacity),
      cache_(options.cache_capacity),
      stats_(std::make_unique<AtomicStats>()) {
  register_model("rmgd", [](const core::GsuParameters& p) { return build_rmgd(p); });
  register_model("rmgp", [](const core::GsuParameters& p) { return build_rmgp(p); });
  register_model("rmnd-new",
                 [](const core::GsuParameters& p) { return build_rmnd(p, p.mu_new); });
  register_model("rmnd-old",
                 [](const core::GsuParameters& p) { return build_rmnd(p, p.mu_old); });
}

Server::~Server() = default;

void Server::register_model(const std::string& name, ModelBuilder builder) {
  GOP_REQUIRE(static_cast<bool>(builder), "register_model: null builder");
  std::lock_guard<std::mutex> lock(registry_mutex_);
  registry_[name] = std::move(builder);
}

void Server::set_request_log(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(log_mutex_);
  request_log_ = std::move(sink);
}

ServerStats Server::stats() const {
  ServerStats out;
  out.requests = stats_->requests.load(std::memory_order_relaxed);
  out.cache_hits = stats_->cache_hits.load(std::memory_order_relaxed);
  out.cold_solves = stats_->cold_solves.load(std::memory_order_relaxed);
  out.coalesced = stats_->coalesced.load(std::memory_order_relaxed);
  out.rejected = stats_->rejected.load(std::memory_order_relaxed);
  out.errors = stats_->errors.load(std::memory_order_relaxed);
  out.evictions = stats_->evictions.load(std::memory_order_relaxed);
  out.instance_evictions = stats_->instance_evictions.load(std::memory_order_relaxed);
  out.chain_builds = stats_->chain_builds.load(std::memory_order_relaxed);
  return out;
}

void Server::admit_instance(ModelInstance& instance,
                            std::optional<san::GeneratedChain> chain) const {
  lint::AdmissionInput input;
  input.model = instance.model.get();
  if (chain.has_value()) input.chain = &*chain;
  lint::AdmissionOptions admission_options;
  admission_options.model_lint.max_probe_markings = options_.probe_budget;
  lint::AdmissionResult admission = lint::admission_check_keep_chain(input, admission_options);
  instance.base_report = std::move(admission.report);
  if (chain.has_value()) {
    instance.chain = std::move(chain);
  } else if (admission.chain.has_value()) {
    instance.chain = std::move(admission.chain);
    stats_->chain_builds.fetch_add(1, std::memory_order_relaxed);
  }
  instance.admitted = !instance.base_report.has_errors() && instance.chain.has_value();
  if (!instance.admitted) return;
  instance.chain_hash = san::chain_hash(*instance.chain);
  for (const san::RewardStructure& reward : instance.rewards) {
    instance.reward_reports[reward.name()] = lint::lint_reward(*instance.chain, reward);
    instance.reward_hashes[reward.name()] = san::reward_hash(*instance.chain, reward);
  }
}

std::shared_ptr<const Server::ModelInstance> Server::build_instance(
    const std::string& instance_key, const Request& request) const {
  auto instance = std::make_shared<ModelInstance>();
  instance->instance_key = instance_key;
  InlineModel built;
  if (request.inline_model.has_value()) {
    instance->registered = false;
    instance->inline_text = request.inline_model->dump();
    built = build_inline_model(*request.inline_model);  // throws InvalidArgument on bad shape
  } else if (!request.template_name.empty()) {
    instance->templated = true;
    instance->name = request.template_name;
    san::tpl::Instance tpl_instance =
        core::template_registry().find(request.template_name).instantiate(request.assignment);
    instance->assignment = std::move(tpl_instance.resolved);
    instance->model = std::move(tpl_instance.model);
    instance->rewards = std::move(tpl_instance.rewards);
    admit_instance(*instance, std::nullopt);
    return instance;
  } else {
    instance->registered = true;
    instance->name = request.model;
    instance->params = request.params;
    ModelBuilder builder;
    {
      std::lock_guard<std::mutex> lock(registry_mutex_);
      builder = registry_.at(request.model);
    }
    built = builder(request.params);
  }
  instance->model = std::move(built.model);
  if (!instance->registered) instance->name = instance->model->name();
  instance->rewards = std::move(built.rewards);
  admit_instance(*instance, std::nullopt);
  return instance;
}

std::shared_ptr<const Server::ModelInstance> Server::instance_for(const Request& request) {
  std::string key;
  if (request.inline_model.has_value()) {
    GOP_REQUIRE(request.template_name.empty() && request.model.empty(),
                "request needs exactly one of 'model', 'inline_model', or 'template'");
    key = inline_instance_key(request.inline_model->dump());
  } else if (!request.template_name.empty()) {
    GOP_REQUIRE(request.model.empty(),
                "request needs exactly one of 'model', 'inline_model', or 'template'");
    // find() throws on an unknown family, resolve() on a bad assignment —
    // both become kError. Resolving up front makes the key cover defaults
    // too, so a partial assignment and its explicit-equal twin share one
    // instance.
    const san::tpl::Template& tpl = core::template_registry().find(request.template_name);
    key = template_instance_key(request.template_name, tpl.resolve(request.assignment));
  } else {
    GOP_REQUIRE(!request.model.empty(),
                "request needs a 'model' id, an 'inline_model', or a 'template'");
    {
      std::lock_guard<std::mutex> lock(registry_mutex_);
      if (!registry_.contains(request.model)) {
        throw InvalidArgument(
            str_format("unknown model '%s' (not registered)", request.model.c_str()));
      }
    }
    request.params.validate();  // throws InvalidArgument on bad Table-3 values
    key = registered_instance_key(request.model, request.params);
  }
  if (std::shared_ptr<const ModelInstance> existing = instances_.get(key)) return existing;
  instance_flight_.do_once(key, [&] {
    std::shared_ptr<const ModelInstance> instance = build_instance(key, request);
    // Publish before followers wake.
    const size_t evicted = instances_.put(key, std::move(instance));
    if (evicted > 0) stats_->instance_evictions.fetch_add(evicted, std::memory_order_relaxed);
  });
  std::shared_ptr<const ModelInstance> instance = instances_.get(key);
  if (instance == nullptr) {
    // Evicted between publish and read (capacity smaller than the number of
    // in-flight keys); rebuild rather than fail, and re-publish for the next
    // request.
    instance = build_instance(key, request);
    const size_t evicted = instances_.put(key, instance);
    if (evicted > 0) stats_->instance_evictions.fetch_add(evicted, std::memory_order_relaxed);
  }
  return instance;
}

CachedResult Server::solve_request(const ModelInstance& instance,
                                   const std::vector<const san::RewardStructure*>& rewards,
                                   const Request& request) const {
  const san::GeneratedChain& chain = *instance.chain;
  CachedResult out;

  std::optional<san::ChainSession> transient_session;
  if (!request.transient_times.empty()) {
    san::GridSolveOptions grid_options;
    grid_options.transient = true;
    grid_options.accumulated = false;
    grid_options.recovery = options_.recovery;
    transient_session.emplace(chain.solve_grid(request.transient_times, grid_options));
  }
  std::optional<san::ChainSession> accumulated_session;
  if (!request.accumulated_times.empty()) {
    san::GridSolveOptions grid_options;
    grid_options.transient = false;
    grid_options.accumulated = true;
    grid_options.recovery = options_.recovery;
    accumulated_session.emplace(chain.solve_grid(request.accumulated_times, grid_options));
  }
  std::optional<std::vector<double>> steady_pi;
  std::optional<markov::Certificate> steady_certificate;
  if (request.steady_state) {
    markov::SteadyStateResult steady =
        markov::steady_state_distribution_checked(chain.ctmc(), {}, options_.recovery);
    steady_pi = std::move(steady.distribution);
    steady_certificate = std::move(steady.certificate);
  }

  for (const san::RewardStructure* reward : rewards) {
    RewardSeries series;
    series.reward = reward->name();
    if (transient_session.has_value()) {
      series.instant = transient_session->instant_reward_series(*reward);
    }
    if (accumulated_session.has_value()) {
      series.accumulated = accumulated_session->accumulated_reward_series(*reward);
    }
    if (steady_pi.has_value()) {
      series.steady_state = chain.steady_state_reward_over(*reward, *steady_pi);
    }
    out.results.push_back(std::move(series));
  }

  // Certificates in canonical solver order; engine/storage from the first
  // solve that ran (they agree across solvers for a given chain in practice,
  // and the certificates carry the per-solver truth regardless).
  if (transient_session.has_value()) {
    const markov::SolverPlan& plan = transient_session->transient_plan();
    out.engine = plan.engine;
    out.storage = markov::to_string(plan.storage);
    const std::optional<markov::Certificate>& cert =
        transient_session->transient_session().certificate();
    if (cert.has_value()) out.certificates.push_back({"transient_session", *cert});
  }
  if (accumulated_session.has_value()) {
    const markov::SolverPlan& plan = accumulated_session->accumulated_plan();
    if (out.engine.empty()) {
      out.engine = plan.engine;
      out.storage = markov::to_string(plan.storage);
    }
    const std::optional<markov::Certificate>& cert =
        accumulated_session->accumulated_session().certificate();
    if (cert.has_value()) out.certificates.push_back({"accumulated_session", *cert});
  }
  if (steady_certificate.has_value()) {
    if (out.engine.empty()) {
      const markov::SolverPlan plan = markov::plan_steady_state(chain.ctmc(), {});
      out.engine = steady_certificate->engine;
      out.storage = markov::to_string(plan.storage);
    }
    out.certificates.push_back({"steady_state", std::move(*steady_certificate)});
  }
  return out;
}

std::shared_ptr<const CachedResult> Server::solve_on_pool(
    const std::shared_ptr<const ModelInstance>& instance,
    const std::vector<const san::RewardStructure*>& rewards, const Request& request) const {
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  std::exception_ptr error;
  std::shared_ptr<const CachedResult> result;
  pool_.submit([&] {
    try {
      result = std::make_shared<const CachedResult>(solve_request(*instance, rewards, request));
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(done_mutex);
      done = true;
    }
    done_cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
  if (error) std::rethrow_exception(error);
  return result;
}

Response Server::handle(const Request& request) {
  const auto start = std::chrono::steady_clock::now();
  stats_->requests.fetch_add(1, std::memory_order_relaxed);

  Response response;
  response.id = request.id;
  const char* outcome = "error";
  size_t states = 0;
  try {
    const std::shared_ptr<const ModelInstance> instance = instance_for(request);
    if (instance->chain.has_value()) states = instance->chain->state_count();

    if (!instance->admitted) {
      response.status = Status::kRejected;
      response.findings = instance->base_report;
      outcome = "rejected";
      stats_->rejected.fetch_add(1, std::memory_order_relaxed);
    } else {
      GOP_REQUIRE(!request.rewards.empty(), "request needs at least one reward");
      GOP_REQUIRE(!request.transient_times.empty() || !request.accumulated_times.empty() ||
                      request.steady_state,
                  "request needs a transient/accumulated time grid or steady_state");

      std::vector<const san::RewardStructure*> rewards;
      rewards.reserve(request.rewards.size());
      lint::Report report = instance->base_report;
      for (const std::string& reward_name : request.rewards) {
        const san::RewardStructure* reward = instance->find_reward(reward_name);
        if (reward == nullptr) {
          throw InvalidArgument(str_format("unknown reward '%s' for model '%s'",
                                           reward_name.c_str(), instance->name.c_str()));
        }
        rewards.push_back(reward);
        report.merge(lint::Report(instance->reward_reports.at(reward_name)));
      }

      // Per-request solver preflight on the requested grids (layer 3; the
      // model/chain/reward layers ran once at instance admission).
      const san::GeneratedChain& chain = *instance->chain;
      if (!request.transient_times.empty()) {
        report.merge(
            lint::preflight_transient(chain.ctmc(), request.transient_times, {}, instance->name));
      }
      if (!request.accumulated_times.empty()) {
        report.merge(lint::preflight_accumulated(chain.ctmc(), request.accumulated_times, {},
                                                 instance->name));
      }
      if (request.steady_state) {
        report.merge(lint::preflight_steady_state(chain.ctmc(), {}, instance->name));
      }

      if (report.has_errors()) {
        response.status = Status::kRejected;
        response.findings = std::move(report);
        outcome = "rejected";
        stats_->rejected.fetch_add(1, std::memory_order_relaxed);
      } else {
        response.findings = std::move(report);  // warnings/info ride along
        response.model_hash = instance->chain_hash;
        san::Fnv1a reward_set;
        reward_set.u64(0x52575345ULL);  // "RWSE" domain tag
        reward_set.u64(rewards.size());
        for (const std::string& reward_name : request.rewards) {
          reward_set.u64(instance->reward_hashes.at(reward_name));
        }
        response.reward_hash = reward_set.digest();
        response.grid_hash = san::grid_hash(request.transient_times, request.accumulated_times,
                                            request.steady_state);
        const CacheKey key{response.model_hash, response.reward_hash, response.grid_hash};

        std::shared_ptr<const CachedResult> cached = cache_.get(key);
        if (cached != nullptr) {
          outcome = "cache-hit";
          response.cache_hit = true;
          stats_->cache_hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          const auto role = solve_flight_.do_once(key, [&] {
            std::shared_ptr<const CachedResult> solved = solve_on_pool(instance, rewards, request);
            const size_t evicted = cache_.put(key, std::move(solved));
            if (evicted > 0) stats_->evictions.fetch_add(evicted, std::memory_order_relaxed);
          });
          cached = cache_.get(key);
          const bool shared_via_cache = cached != nullptr;
          if (!shared_via_cache) {
            // Evicted between publish and read (capacity smaller than the
            // number of in-flight keys); solve again rather than fail, on
            // the pool like any cold solve, and re-publish the result.
            std::shared_ptr<const CachedResult> solved = solve_on_pool(instance, rewards, request);
            const size_t evicted = cache_.put(key, solved);
            if (evicted > 0) stats_->evictions.fetch_add(evicted, std::memory_order_relaxed);
            cached = std::move(solved);
          }
          if (role == SingleFlight<CacheKey>::Role::kLeader || !shared_via_cache) {
            // Either this request ran the leader solve, or its coalesced
            // result was evicted before it could read it and it solved
            // anyway — in both cases the answer did NOT come from the cache
            // or a shared in-flight solve, so it is a cold solve.
            outcome = "cold-solve";
            stats_->cold_solves.fetch_add(1, std::memory_order_relaxed);
          } else {
            outcome = "coalesced";
            response.cache_hit = true;  // served by another request's solve
            stats_->coalesced.fetch_add(1, std::memory_order_relaxed);
          }
        }
        response.engine = cached->engine;
        response.storage = cached->storage;
        response.results = cached->results;
        response.certificates = cached->certificates;
      }
    }
  } catch (const std::exception& e) {
    response.status = Status::kError;
    response.error = e.what();
    response.results.clear();
    response.certificates.clear();
    outcome = "error";
    stats_->errors.fetch_add(1, std::memory_order_relaxed);
  }

  const auto end = std::chrono::steady_clock::now();
  response.latency_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(end - start).count();
  log_request(request, response, outcome, states);
  return response;
}

void Server::log_request(const Request& request, const Response& response, const char* outcome,
                         size_t states) {
  if (!options_.log_requests) return;
  static obs::Counter& requests_counter = obs::counter("serve.requests");
  static obs::Counter& hits_counter = obs::counter("serve.cache_hits");
  static obs::Counter& cold_counter = obs::counter("serve.cold_solves");
  requests_counter.add();
  if (response.cache_hit) hits_counter.add();
  if (std::string_view(outcome) == "cold-solve") cold_counter.add();

  obs::SolverEvent event;
  event.kind = obs::SolverEventKind::kServeRequest;
  event.method = outcome;
  event.storage = response.storage;
  event.states = states;
  event.grid_points = request.transient_times.size() + request.accumulated_times.size();
  event.wall_ms = response.latency_ms;
  size_t retries = 0;
  bool degraded = false;
  for (const NamedCertificate& named : response.certificates) {
    retries += named.certificate.retries;
    degraded = degraded || named.certificate.degraded;
  }
  event.retries = retries;
  event.degraded = degraded;
  const char* model_label = request.inline_model.has_value() ? "inline"
                            : !request.template_name.empty() ? request.template_name.c_str()
                                                             : request.model.c_str();
  std::string detail = str_format("model=%s rewards=%zu engine=%s", model_label,
                                  request.rewards.size(), response.engine.c_str());
  for (const NamedCertificate& named : response.certificates) {
    if (named.certificate.degraded) {
      detail += str_format(" degraded=%s(retries=%zu,fallback=%s)", named.solver.c_str(),
                           named.certificate.retries,
                           named.certificate.fallback ? "yes" : "no");
    }
  }
  event.detail = std::move(detail);
  obs::record_event(event);  // gated on obs::enabled() internally

  std::function<void(const std::string&)> sink;
  {
    std::lock_guard<std::mutex> lock(log_mutex_);
    sink = request_log_;
  }
  if (sink) sink(obs::render_event_jsonl(event));
}

// ---------------------------------------------------------------------------
// Snapshot save / load
// ---------------------------------------------------------------------------

namespace {

void write_cached_result(san::snapshot::Writer& writer, const CacheKey& key,
                         const CachedResult& result) {
  writer.u64(key.model_hash);
  writer.u64(key.reward_hash);
  writer.u64(key.grid_hash);
  writer.str(result.engine);
  writer.str(result.storage);
  writer.u32(static_cast<uint32_t>(result.results.size()));
  for (const RewardSeries& series : result.results) {
    writer.str(series.reward);
    writer.u64(series.instant.size());
    for (double v : series.instant) writer.f64(v);
    writer.u64(series.accumulated.size());
    for (double v : series.accumulated) writer.f64(v);
    writer.u8(series.steady_state.has_value() ? 1 : 0);
    if (series.steady_state.has_value()) writer.f64(*series.steady_state);
  }
  writer.u32(static_cast<uint32_t>(result.certificates.size()));
  for (const NamedCertificate& named : result.certificates) {
    writer.str(named.solver);
    writer.str(named.certificate.requested_engine);
    writer.str(named.certificate.engine);
    writer.u64(named.certificate.retries);
    writer.u8(named.certificate.fallback ? 1 : 0);
    writer.u8(named.certificate.degraded ? 1 : 0);
    writer.f64(named.certificate.error_bound);
    writer.u64(named.certificate.attempts.size());
    for (const std::string& attempt : named.certificate.attempts) writer.str(attempt);
  }
}

std::pair<CacheKey, CachedResult> read_cached_result(san::snapshot::Reader& reader) {
  CacheKey key;
  key.model_hash = reader.u64();
  key.reward_hash = reader.u64();
  key.grid_hash = reader.u64();
  CachedResult result;
  result.engine = reader.str();
  result.storage = reader.str();
  const uint32_t series_count = reader.u32();
  for (uint32_t i = 0; i < series_count; ++i) {
    RewardSeries series;
    series.reward = reader.str();
    const uint64_t instant_count = reader.u64();
    series.instant.reserve(static_cast<size_t>(instant_count));
    for (uint64_t k = 0; k < instant_count; ++k) series.instant.push_back(reader.f64());
    const uint64_t accumulated_count = reader.u64();
    series.accumulated.reserve(static_cast<size_t>(accumulated_count));
    for (uint64_t k = 0; k < accumulated_count; ++k) series.accumulated.push_back(reader.f64());
    if (reader.u8() != 0) series.steady_state = reader.f64();
    result.results.push_back(std::move(series));
  }
  const uint32_t certificate_count = reader.u32();
  for (uint32_t i = 0; i < certificate_count; ++i) {
    NamedCertificate named;
    named.solver = reader.str();
    named.certificate.requested_engine = reader.str();
    named.certificate.engine = reader.str();
    named.certificate.retries = static_cast<size_t>(reader.u64());
    named.certificate.fallback = reader.u8() != 0;
    named.certificate.degraded = reader.u8() != 0;
    named.certificate.error_bound = reader.f64();
    const uint64_t attempt_count = reader.u64();
    named.certificate.attempts.reserve(static_cast<size_t>(attempt_count));
    for (uint64_t k = 0; k < attempt_count; ++k) {
      named.certificate.attempts.push_back(reader.str());
    }
    result.certificates.push_back(std::move(named));
  }
  return {key, std::move(result)};
}

}  // namespace

std::string Server::save_snapshot() const {
  san::snapshot::Writer payload;

  std::vector<std::shared_ptr<const ModelInstance>> admitted;
  for (const auto& [key, instance] : instances_.entries()) {
    // Template instances are skipped: snapshot format v1 has no record type
    // for them, and they rebuild deterministically (bit-identical chain hash)
    // from core::template_registry() on the first request after a restart.
    if (instance->admitted && !instance->templated) admitted.push_back(instance);
  }
  payload.u32(static_cast<uint32_t>(admitted.size()));
  for (const std::shared_ptr<const ModelInstance>& instance : admitted) {
    payload.u8(instance->registered ? 1 : 0);
    if (instance->registered) {
      payload.str(instance->name);
      const core::GsuParameters& p = instance->params;
      payload.f64(p.theta);
      payload.f64(p.lambda);
      payload.f64(p.mu_new);
      payload.f64(p.mu_old);
      payload.f64(p.coverage);
      payload.f64(p.p_ext);
      payload.f64(p.alpha);
      payload.f64(p.beta);
    } else {
      payload.str(instance->inline_text);
    }
    // The chain blob is length-prefixed so a loader that cannot rebuild this
    // model (e.g. an unregistered name) can skip it and keep going.
    san::snapshot::Writer chain_blob;
    san::snapshot::write_chain(chain_blob, *instance->chain);
    payload.str(chain_blob.buffer());
  }

  const auto entries = cache_.entries();
  payload.u32(static_cast<uint32_t>(entries.size()));
  for (const auto& [key, result] : entries) {
    write_cached_result(payload, key, *result);
  }

  san::snapshot::Writer container;
  container.u32(kSnapshotMagic);
  container.u32(kSnapshotVersion);
  container.str(payload.buffer());
  container.u64(san::fnv1a(payload.buffer().data(), payload.buffer().size()));
  return std::move(container).take();
}

bool Server::save_snapshot_file(const std::string& path) const {
  const std::string bytes = save_snapshot();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

SnapshotLoadResult Server::load_snapshot(std::string_view bytes) {
  SnapshotLoadResult outcome;
  try {
    san::snapshot::Reader container(bytes);
    if (container.u32() != kSnapshotMagic) {
      throw san::snapshot::SnapshotError("bad snapshot magic (not a gop_serve snapshot)");
    }
    const uint32_t version = container.u32();
    if (version != kSnapshotVersion) {
      throw san::snapshot::SnapshotError(
          str_format("snapshot version %u unsupported (expected %u)", version, kSnapshotVersion));
    }
    const std::string payload = container.str();
    const uint64_t checksum = container.u64();
    if (!container.at_end()) {
      throw san::snapshot::SnapshotError("trailing bytes after snapshot container");
    }
    if (checksum != san::fnv1a(payload.data(), payload.size())) {
      throw san::snapshot::SnapshotError("snapshot payload checksum mismatch");
    }

    san::snapshot::Reader reader(payload);
    std::vector<std::shared_ptr<const ModelInstance>> loaded;
    std::string skipped;
    const uint32_t instance_count = reader.u32();
    for (uint32_t i = 0; i < instance_count; ++i) {
      const bool registered = reader.u8() != 0;
      auto instance = std::make_shared<ModelInstance>();
      instance->registered = registered;
      std::string chain_blob;
      try {
        InlineModel built;
        if (registered) {
          instance->name = reader.str();
          core::GsuParameters& p = instance->params;
          p.theta = reader.f64();
          p.lambda = reader.f64();
          p.mu_new = reader.f64();
          p.mu_old = reader.f64();
          p.coverage = reader.f64();
          p.p_ext = reader.f64();
          p.alpha = reader.f64();
          p.beta = reader.f64();
          chain_blob = reader.str();
          ModelBuilder builder;
          {
            std::lock_guard<std::mutex> lock(registry_mutex_);
            auto it = registry_.find(instance->name);
            if (it == registry_.end()) {
              throw InvalidArgument(
                  str_format("model '%s' is not registered", instance->name.c_str()));
            }
            builder = it->second;
          }
          built = builder(instance->params);
          instance->instance_key = registered_instance_key(instance->name, instance->params);
        } else {
          instance->inline_text = reader.str();
          chain_blob = reader.str();
          built = build_inline_model(parse(instance->inline_text));
          instance->instance_key = inline_instance_key(instance->inline_text);
        }
        instance->model = std::move(built.model);
        if (!registered) instance->name = instance->model->name();
        instance->rewards = std::move(built.rewards);
        san::snapshot::Reader chain_reader(chain_blob);
        san::GeneratedChain chain = san::snapshot::read_chain(chain_reader, *instance->model);
        admit_instance(*instance, std::move(chain));
        if (instance->admitted) loaded.push_back(std::move(instance));
      } catch (const std::exception& e) {
        // Skip this instance; its cached entries stay unreachable dead
        // weight at worst. Parsing already consumed the entry's bytes.
        skipped += str_format("instance %u skipped: %s; ", i, e.what());
      }
    }

    std::vector<std::pair<CacheKey, CachedResult>> cache_entries;
    const uint32_t entry_count = reader.u32();
    for (uint32_t i = 0; i < entry_count; ++i) {
      cache_entries.push_back(read_cached_result(reader));
    }
    if (!reader.at_end()) {
      throw san::snapshot::SnapshotError("trailing bytes after snapshot payload");
    }

    // Everything parsed and verified — commit. Instances were saved
    // MRU-first (LruCache::entries order), so insert oldest first to
    // restore the recency order.
    for (auto it = loaded.rbegin(); it != loaded.rend(); ++it) {
      const std::string instance_key = (*it)->instance_key;
      const size_t evicted = instances_.put(instance_key, std::move(*it));
      if (evicted > 0) {
        stats_->instance_evictions.fetch_add(evicted, std::memory_order_relaxed);
      }
    }
    // Oldest first so LRU order ends up matching the saved recency order.
    for (auto it = cache_entries.rbegin(); it != cache_entries.rend(); ++it) {
      const size_t evicted =
          cache_.put(it->first, std::make_shared<const CachedResult>(std::move(it->second)));
      if (evicted > 0) stats_->evictions.fetch_add(evicted, std::memory_order_relaxed);
    }
    outcome.loaded = true;
    outcome.instances = loaded.size();
    outcome.cache_entries = cache_entries.size();
    outcome.detail = std::move(skipped);
    return outcome;
  } catch (const std::exception& e) {
    outcome.loaded = false;
    outcome.detail = e.what();
    return outcome;
  }
}

SnapshotLoadResult Server::load_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SnapshotLoadResult outcome;
    outcome.detail = "snapshot file not readable: " + path;
    return outcome;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  return load_snapshot(bytes);
}

}  // namespace gop::serve
