#pragma once

/// \file cache.hh
/// The solved-model cache and the single-flight build coordinator of
/// gop::serve (docs/serving.md).
///
/// LruCache is a bounded LRU map from a key to an immutable, shared value.
/// Entries are shared_ptr<const ...>: a hit hands back the same immutable
/// object every time, so cached replies are bitwise identical to the solve
/// that produced them — there is no re-serialization or copy that could
/// perturb a double. SolvedCache instantiates it on the content-addressed
/// cache key (model hash, reward-set hash, grid hash — san/hash.hh); the
/// server's model-instance cache instantiates it on the instance key, so
/// built models (and their generated state spaces) are bounded the same way
/// solved results are.
///
/// SingleFlight guarantees that concurrent requests for the same key share
/// ONE execution of the expensive factory (chain generation, grid solve):
/// the first caller becomes the leader and runs it, followers block until
/// the leader publishes or fails. A failure is propagated to every waiter
/// and the slot is cleared so a later request retries. This is what the
/// concurrency battery (serve_concurrency_test.cc) pins: exactly one cold
/// solve per distinct key, no matter how many clients race.

#include <atomic>
#include <compare>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace gop::serve {

/// Content-addressed identity of one solved request.
struct CacheKey {
  uint64_t model_hash = 0;
  uint64_t reward_hash = 0;  ///< combined over the requested rewards, in request order
  uint64_t grid_hash = 0;

  friend auto operator<=>(const CacheKey&, const CacheKey&) = default;
};

/// Bounded LRU cache; all operations take the internal mutex and values are
/// immutable, so readers can use the returned shared_ptr without locks.
/// `Key` needs operator< (std::map).
template <typename Key, typename Value>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  std::shared_ptr<const Value> get(const Key& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second.position);
    return it->second.value;
  }

  /// Inserts (or replaces) and evicts the least-recently-used entry past
  /// capacity. Returns the number of evictions performed.
  size_t put(const Key& key, std::shared_ptr<const Value> value) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.value = std::move(value);
      order_.splice(order_.begin(), order_, it->second.position);
      return 0;
    }
    order_.push_front(key);
    entries_.emplace(key, Entry{std::move(value), order_.begin()});
    size_t evicted = 0;
    while (entries_.size() > capacity_) {
      entries_.erase(order_.back());
      order_.pop_back();
      ++evicted;
    }
    return evicted;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  size_t capacity() const { return capacity_; }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    order_.clear();
  }

  /// Snapshot of every (key, value) pair, most recently used first. Used by
  /// snapshot serialization; O(n) under the lock.
  std::vector<std::pair<Key, std::shared_ptr<const Value>>> entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<Key, std::shared_ptr<const Value>>> out;
    out.reserve(entries_.size());
    for (const Key& key : order_) {
      out.emplace_back(key, entries_.at(key).value);
    }
    return out;
  }

 private:
  struct Entry {
    std::shared_ptr<const Value> value;
    typename std::list<Key>::iterator position;
  };

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
  std::list<Key> order_;
};

/// The solved-result cache: content-addressed key -> immutable result.
template <typename Value>
using SolvedCache = LruCache<CacheKey, Value>;

/// Deduplicates concurrent executions of an expensive keyed operation; see
/// the file comment. `Key` needs operator< (std::map).
template <typename Key>
class SingleFlight {
 public:
  enum class Role {
    kLeader,     ///< this caller ran the factory
    kCoalesced,  ///< another in-flight caller's result was shared
  };

  /// Runs `factory` unless an execution for `key` is already in flight, in
  /// which case it blocks until that execution finishes. The factory must
  /// publish its result to wherever followers will find it (e.g. the cache)
  /// BEFORE do_once returns — followers re-read from there. Exceptions
  /// thrown by the factory propagate to the leader and every follower, and
  /// the slot is cleared so later calls retry.
  Role do_once(const Key& key, const std::function<void()>& factory) {
    std::shared_ptr<Slot> slot;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        slot = it->second;
      } else {
        slot = std::make_shared<Slot>();
        inflight_.emplace(key, slot);
      }
    }
    if (slot->leader.exchange(false)) {
      try {
        factory();
      } catch (...) {
        finish(key, slot, std::current_exception());
        throw;
      }
      finish(key, slot, nullptr);
      return Role::kLeader;
    }
    std::unique_lock<std::mutex> wait_lock(slot->mutex);
    slot->done_cv.wait(wait_lock, [&] { return slot->done; });
    if (slot->error) std::rethrow_exception(slot->error);
    return Role::kCoalesced;
  }

 private:
  struct Slot {
    std::atomic<bool> leader{true};
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    std::exception_ptr error;
  };

  void finish(const Key& key, const std::shared_ptr<Slot>& slot, std::exception_ptr error) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(key);
    }
    {
      std::lock_guard<std::mutex> slot_lock(slot->mutex);
      slot->done = true;
      slot->error = std::move(error);
    }
    slot->done_cv.notify_all();
  }

  std::mutex mutex_;
  std::map<Key, std::shared_ptr<Slot>> inflight_;
};

}  // namespace gop::serve
