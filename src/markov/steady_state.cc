#include "markov/steady_state.hh"

#include <cmath>

#include "fi/fi.hh"
#include "linalg/gth.hh"
#include "linalg/vector_ops.hh"
#include "markov/solver_plan.hh"
#include "obs/obs.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::markov {

namespace {

/// One event per steady_state_distribution call, recorded where the
/// iteration count is known (inside the iterative methods, at the dispatcher
/// for the direct GTH elimination).
[[gnu::cold]] [[gnu::noinline]] void record_steady_event(const Ctmc& chain, const char* method,
                                                         size_t iterations) {
  obs::SolverEvent event;
  event.kind = obs::SolverEventKind::kSteadyState;
  event.method = method;
  event.states = chain.state_count();
  event.iterations = iterations;
  obs::record_event(std::move(event));
}

std::vector<double> power_iteration(const Ctmc& chain, const SteadyStateOptions& options) {
  const size_t n = chain.state_count();
  const double lambda = chain.max_exit_rate() * 1.02;
  GOP_REQUIRE(lambda > 0.0, "power iteration needs a chain with at least one transition");

  std::vector<double> v(n, 1.0 / static_cast<double>(n));
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // v P with P = I + Q/Lambda.
    std::vector<double> next = chain.rate_matrix().left_multiply(v);
    const std::vector<double>& exit = chain.exit_rates();
    for (size_t s = 0; s < n; ++s) next[s] = v[s] + (next[s] - v[s] * exit[s]) / lambda;
    double diff = linalg::max_abs_diff(next, v);
    if (GOP_FI_POINT(fi::SiteId::kSteadyStateStall)) diff = 1.0;
    v = std::move(next);
    if (diff < options.tolerance) {
      linalg::normalize_probability(v);
      if (obs::enabled()) record_steady_event(chain, "power", iter + 1);
      return v;
    }
  }
  throw NumericalError(str_format("power iteration did not converge in %zu iterations",
                                  options.max_iterations));
}

std::vector<double> gauss_seidel(const Ctmc& chain, const SteadyStateOptions& options) {
  // Solve pi Q = 0 as Q^T x = 0 with Gauss-Seidel sweeps on
  //   x_i = (sum_{j != i} Q^T_{ij} x_j) / (-Q^T_{ii}),
  // renormalizing each sweep.
  const size_t n = chain.state_count();
  const linalg::CsrMatrix qt = chain.rate_matrix().transpose();
  const std::vector<double>& exit = chain.exit_rates();
  for (size_t s = 0; s < n; ++s) {
    GOP_REQUIRE(exit[s] > 0.0,
                "Gauss-Seidel steady state requires every state to have an exit transition "
                "(irreducible chain)");
  }

  std::vector<double> x(n, 1.0 / static_cast<double>(n));
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    double max_change = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (size_t k = qt.row_ptr()[i]; k < qt.row_ptr()[i + 1]; ++k) {
        const size_t j = qt.col_idx()[k];
        if (j == i) continue;
        acc += qt.values()[k] * x[j];
      }
      const double updated = acc / exit[i];
      max_change = std::max(max_change, std::abs(updated - x[i]));
      x[i] = updated;
    }
    linalg::normalize_probability(x);
    if (GOP_FI_POINT(fi::SiteId::kSteadyStateStall)) max_change = 1.0;
    if (max_change < options.tolerance) {
      if (obs::enabled()) record_steady_event(chain, "gauss-seidel", iter + 1);
      return x;
    }
  }
  throw NumericalError(str_format("Gauss-Seidel did not converge in %zu iterations",
                                  options.max_iterations));
}

}  // namespace

SteadyStateMethod resolve_steady_state_method(const Ctmc& chain,
                                              const SteadyStateOptions& options) {
  return plan_steady_state(chain, options).steady_state;
}

std::vector<double> steady_state_distribution(const Ctmc& chain,
                                              const SteadyStateOptions& options) {
  GOP_OBS_SPAN("markov.steady_state");
  const SteadyStateMethod method = plan_steady_state(chain, options).steady_state;
  switch (method) {
    case SteadyStateMethod::kGth:
      if (obs::enabled()) record_steady_event(chain, "gth", 0);
      return linalg::gth_stationary_ctmc(chain.generator_dense());
    case SteadyStateMethod::kPower:
      return power_iteration(chain, options);
    case SteadyStateMethod::kGaussSeidel:
      return gauss_seidel(chain, options);
    case SteadyStateMethod::kAuto:
      break;
  }
  throw InternalError("unreachable steady-state method");
}

double steady_state_reward(const Ctmc& chain, const std::vector<double>& state_reward,
                           const SteadyStateOptions& options) {
  GOP_REQUIRE(state_reward.size() == chain.state_count(), "reward vector length mismatch");
  const std::vector<double> pi = steady_state_distribution(chain, options);
  return linalg::dot(pi, state_reward);
}

}  // namespace gop::markov
