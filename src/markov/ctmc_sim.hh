#pragma once

/// \file ctmc_sim.hh
/// Trajectory simulation directly on a CTMC (typically one produced by SAN
/// reachability generation). Unlike simulating the SAN itself, the chain has
/// no self-loop events, so a trajectory costs one exponential draw per
/// *state change* — for the GSU models that is a handful of events per
/// 10,000-hour mission instead of tens of millions of message completions.

#include <functional>
#include <vector>

#include "markov/ctmc.hh"
#include "sim/replication.hh"
#include "sim/rng.hh"

namespace gop::markov {

/// Observes maximal sojourns: state, entry time, exit time.
using StateSojournObserver = std::function<void(size_t state, double enter, double leave)>;

struct CtmcPathOutcome {
  size_t state = 0;
  double time = 0.0;
  bool stopped = false;  ///< stop predicate hit before t_end
};

/// Simulates one trajectory from the chain's initial distribution until
/// `t_end` or until `stop(state)` first holds (checked on entry to every
/// state, including the initial one). Observers may be null.
CtmcPathOutcome simulate_ctmc(const Ctmc& chain, sim::Rng& rng, double t_end,
                              const std::function<bool(size_t)>& stop = nullptr,
                              const StateSojournObserver& on_sojourn = nullptr);

/// Monte Carlo estimate of the instant-of-time reward at t.
sim::ReplicationResult mc_instant_reward(const Ctmc& chain, const std::vector<double>& reward,
                                         double t, const sim::ReplicationOptions& options = {});

/// Monte Carlo estimate of the rate reward accumulated over [0, t].
sim::ReplicationResult mc_accumulated_reward(const Ctmc& chain,
                                             const std::vector<double>& reward, double t,
                                             const sim::ReplicationOptions& options = {});

}  // namespace gop::markov
