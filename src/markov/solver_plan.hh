#pragma once

/// \file solver_plan.hh
/// The single home of solver-engine resolution. A SolverPlan is computed once
/// per (chain, time-grid) and carries both the resolved engine — never kAuto —
/// and the facts the resolution consumed: dimension, fill, the grid horizon,
/// the Λ·t stiffness product, the uniformization rate (with slack) and an
/// analytic Fox–Glynn window estimate. Every consumer reads the same plan:
///
///   - the pointwise dispatchers (transient.cc, accumulated.cc,
///     steady_state.cc) switch on it and stamp its facts into obs events,
///   - TransientSession / AccumulatedSession resolve their grid through it
///     and expose it via plan(),
///   - the recovery ladder (recovery.hh) derives its rung order from it,
///   - lint preflight (lint/preflight.hh) predicts refusals for the engine
///     the plan actually selects — mirroring, not re-implementing, the
///     cutoffs.
///
/// The kAuto policy (dense ↔ sparse by dimension, uniformization ↔ Krylov by
/// Λ·t) lives in solver_plan.cc and nowhere else; resolve_transient_method
/// and friends are thin wrappers kept for source compatibility.

#include <span>

#include "markov/accumulated.hh"
#include "markov/ctmc.hh"
#include "markov/steady_state.hh"
#include "markov/transient.hh"

namespace gop::markov {

/// How the selected engine touches the generator: kDense engines materialize
/// an n x n (or 2n x 2n) DenseMatrix; kSparse engines act on the CSR rate
/// matrix only and never allocate O(n^2) storage.
enum class StorageForm {
  kDense,
  kSparse,
};

/// "dense" / "sparse".
const char* to_string(StorageForm form);

struct SolverPlan {
  /// The resolved engine for the family the plan was made for; the other two
  /// members keep their defaults. Never kAuto.
  TransientMethod transient = TransientMethod::kMatrixExponential;
  AccumulatedMethod accumulated = AccumulatedMethod::kAugmentedExponential;
  SteadyStateMethod steady_state = SteadyStateMethod::kGth;

  /// Storage form of the resolved engine.
  StorageForm storage = StorageForm::kDense;
  /// Canonical engine label, exactly as certificates and obs events spell it
  /// ("pade-expm", "uniformization", "krylov-expv", ...).
  const char* engine = "";

  // --- facts the resolution consumed (also what preflight / obs report) ---
  size_t states = 0;
  /// nnz / n^2 of the off-diagonal rate matrix.
  double fill = 0.0;
  /// Largest finite non-negative grid time (0 when the grid is empty or
  /// holds no valid entry; invalid entries are preflight's PRE001 business).
  double horizon = 0.0;
  /// max_exit_rate * horizon — the stiffness fact the kAuto cutoff compares
  /// against auto_stiffness_cutoff, and the value dispatcher events record.
  double lambda_t = 0.0;
  /// Uniformization rate Λ including the rate slack (uniformization.hh);
  /// what the Poisson windows and the PRE002/PRE003 refusal checks use.
  double uniformization_lambda = 0.0;
  double uniformization_lambda_t = 0.0;
  /// Cheap analytic over-estimate of the Fox–Glynn right edge for the
  /// uniformization engines (0 otherwise). Advisory — sessions still size
  /// their sequences from the exact per-time windows.
  size_t window_estimate = 0;
};

/// Plan for transient_distribution / TransientSession. The span overload
/// resolves against the largest valid grid time (sessions hand it the whole
/// grid; the scalar overload is the pointwise dispatchers' one-time "grid").
SolverPlan plan_transient(const Ctmc& chain, double t, const TransientOptions& options = {});
SolverPlan plan_transient(const Ctmc& chain, std::span<const double> times,
                          const TransientOptions& options = {});

/// Plan for accumulated_occupancy / AccumulatedSession.
SolverPlan plan_accumulated(const Ctmc& chain, double t, const AccumulatedOptions& options = {});
SolverPlan plan_accumulated(const Ctmc& chain, std::span<const double> times,
                            const AccumulatedOptions& options = {});

/// Plan for steady_state_distribution (no time grid).
SolverPlan plan_steady_state(const Ctmc& chain, const SteadyStateOptions& options = {});

}  // namespace gop::markov
