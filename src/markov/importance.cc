#include "markov/importance.hh"

#include <cmath>

#include "linalg/vector_ops.hh"
#include "util/error.hh"

namespace gop::markov {

namespace {

/// Per-state outgoing transitions with true and biased rates, precomputed
/// once per estimator call.
struct BiasedChain {
  struct Edge {
    size_t to;
    double true_rate;
    double biased_rate;
  };

  std::vector<std::vector<Edge>> edges;  // per state
  std::vector<double> true_exit;
  std::vector<double> biased_exit;

  BiasedChain(const Ctmc& chain, const std::function<bool(const Transition&)>& is_rare,
              double bias_factor) {
    const size_t n = chain.state_count();
    edges.resize(n);
    true_exit.assign(n, 0.0);
    biased_exit.assign(n, 0.0);
    for (const Transition& tr : chain.transitions()) {
      if (tr.from == tr.to) continue;  // self-loops are invisible to the path law
      const double biased = is_rare(tr) ? tr.rate * bias_factor : tr.rate;
      edges[tr.from].push_back(Edge{tr.to, tr.rate, biased});
      true_exit[tr.from] += tr.rate;
      biased_exit[tr.from] += biased;
    }
  }
};

}  // namespace

BiasedPathOutcome simulate_biased(const Ctmc& chain, sim::Rng& rng, double t_end,
                                  const std::function<bool(const Transition&)>& is_rare,
                                  const ImportanceOptions& options) {
  GOP_REQUIRE(t_end >= 0.0 && std::isfinite(t_end), "t_end must be non-negative and finite");
  GOP_REQUIRE(static_cast<bool>(is_rare), "is_rare must be callable");
  GOP_REQUIRE(options.bias_factor > 0.0, "bias_factor must be positive");

  const BiasedChain biased(chain, is_rare, options.bias_factor);

  BiasedPathOutcome outcome;
  outcome.state = rng.categorical(chain.initial_distribution());
  double now = 0.0;

  while (true) {
    const double exit = biased.biased_exit[outcome.state];
    const double true_exit = biased.true_exit[outcome.state];
    if (exit == 0.0) return outcome;  // absorbing under both laws

    const double dwell = rng.exponential(exit);
    if (now + dwell >= t_end) {
      // Survive the final segment without a jump.
      outcome.likelihood *= std::exp(-(true_exit - exit) * (t_end - now));
      return outcome;
    }
    outcome.likelihood *= std::exp(-(true_exit - exit) * dwell);
    now += dwell;

    // Pick an edge proportionally to the biased rates.
    const auto& out_edges = biased.edges[outcome.state];
    double u = rng.uniform() * exit;
    const BiasedChain::Edge* chosen = &out_edges.back();
    for (const auto& edge : out_edges) {
      u -= edge.biased_rate;
      if (u < 0.0) {
        chosen = &edge;
        break;
      }
    }
    outcome.likelihood *= chosen->true_rate / chosen->biased_rate;
    outcome.state = chosen->to;
  }
}

sim::ReplicationResult is_instant_reward(const Ctmc& chain, const std::vector<double>& reward,
                                         double t,
                                         const std::function<bool(const Transition&)>& is_rare,
                                         const ImportanceOptions& is_options,
                                         const sim::ReplicationOptions& options) {
  GOP_REQUIRE(reward.size() == chain.state_count(), "reward vector length mismatch");
  return sim::run_replications(
      [&](sim::Rng& rng) {
        const BiasedPathOutcome outcome = simulate_biased(chain, rng, t, is_rare, is_options);
        return outcome.likelihood * reward[outcome.state];
      },
      options);
}

}  // namespace gop::markov
