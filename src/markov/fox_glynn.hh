#pragma once

/// \file fox_glynn.hh
/// Truncated, normalized Poisson probabilities for uniformization, in the
/// spirit of Fox & Glynn (1988): weights are computed outward from the mode
/// with scaled recurrences (no factorials, no overflow) and renormalized so
/// the truncated window sums to exactly one.

#include <cstddef>
#include <vector>

namespace gop::markov {

struct PoissonWindow {
  /// First index of the window: weights[i] approximates Poisson(lambda)
  /// probability of (left + i).
  size_t left = 0;
  std::vector<double> weights;

  size_t right() const { return left + weights.size() - 1; }
};

/// Computes the truncation window for Poisson(lambda) with total truncated
/// tail mass below `epsilon`. lambda must be positive and finite; for very
/// large lambda the window has O(sqrt(lambda)) entries.
PoissonWindow poisson_window(double lambda, double epsilon = 1e-12);

/// Reference Poisson pmf via lgamma, used by tests to validate the window.
double poisson_pmf(double lambda, size_t k);

}  // namespace gop::markov
