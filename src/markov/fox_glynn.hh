#pragma once

/// \file fox_glynn.hh
/// Truncated, normalized Poisson probabilities for uniformization, in the
/// spirit of Fox & Glynn (1988): weights are computed outward from the mode
/// with scaled recurrences (no factorials, no overflow) and renormalized so
/// the truncated window sums to exactly one.

#include <cstddef>
#include <vector>

namespace gop::markov {

/// Smallest epsilon poisson_window accepts. Below this the scaled-recurrence
/// floor (epsilon * 1e-4) would underflow to exactly zero at double
/// precision, and the outward scans — whose terms also underflow to zero —
/// would never terminate. The preflight lint (PRE005) refuses the same
/// constant so the static gate and the solver agree on the boundary.
inline constexpr double kMinPoissonEpsilon = 1e-300;

struct PoissonWindow {
  /// First index of the window: weights[i] approximates Poisson(lambda)
  /// probability of (left + i).
  size_t left = 0;
  std::vector<double> weights;

  size_t right() const { return left + weights.size() - 1; }
};

/// Computes the truncation window for Poisson(lambda) with total truncated
/// tail mass below `epsilon`. lambda must be positive and finite and epsilon
/// in [kMinPoissonEpsilon, 1); for very large lambda the window has
/// O(sqrt(lambda)) entries.
PoissonWindow poisson_window(double lambda, double epsilon = 1e-12);

/// Reference Poisson pmf via lgamma, used by tests to validate the window.
double poisson_pmf(double lambda, size_t k);

}  // namespace gop::markov
