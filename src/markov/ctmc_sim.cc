#include "markov/ctmc_sim.hh"

#include <cmath>

#include "util/error.hh"

namespace gop::markov {

CtmcPathOutcome simulate_ctmc(const Ctmc& chain, sim::Rng& rng, double t_end,
                              const std::function<bool(size_t)>& stop,
                              const StateSojournObserver& on_sojourn) {
  GOP_REQUIRE(t_end >= 0.0 && std::isfinite(t_end), "t_end must be non-negative and finite");

  // Sample the initial state.
  size_t state = rng.categorical(chain.initial_distribution());
  double now = 0.0;
  if (stop && stop(state)) return CtmcPathOutcome{state, now, true};

  const linalg::CsrMatrix& rates = chain.rate_matrix();
  while (now < t_end) {
    const double exit = chain.exit_rates()[state];
    if (exit == 0.0) {
      if (on_sojourn) on_sojourn(state, now, t_end);
      return CtmcPathOutcome{state, t_end, false};
    }
    const double leave = now + rng.exponential(exit);
    if (leave >= t_end) {
      if (on_sojourn) on_sojourn(state, now, t_end);
      return CtmcPathOutcome{state, t_end, false};
    }
    if (on_sojourn) on_sojourn(state, now, leave);
    now = leave;

    // Pick the destination proportionally to the outgoing rates.
    const size_t begin = rates.row_ptr()[state];
    const size_t end = rates.row_ptr()[state + 1];
    double u = rng.uniform() * exit;
    size_t next = rates.col_idx()[end - 1];
    for (size_t k = begin; k < end; ++k) {
      u -= rates.values()[k];
      if (u < 0.0) {
        next = rates.col_idx()[k];
        break;
      }
    }
    state = next;
    if (stop && stop(state)) return CtmcPathOutcome{state, now, true};
  }
  return CtmcPathOutcome{state, t_end, false};
}

sim::ReplicationResult mc_instant_reward(const Ctmc& chain, const std::vector<double>& reward,
                                         double t, const sim::ReplicationOptions& options) {
  GOP_REQUIRE(reward.size() == chain.state_count(), "reward vector length mismatch");
  return sim::run_replications(
      [&](sim::Rng& rng) {
        const CtmcPathOutcome outcome = simulate_ctmc(chain, rng, t);
        return reward[outcome.state];
      },
      options);
}

sim::ReplicationResult mc_accumulated_reward(const Ctmc& chain,
                                             const std::vector<double>& reward, double t,
                                             const sim::ReplicationOptions& options) {
  GOP_REQUIRE(reward.size() == chain.state_count(), "reward vector length mismatch");
  return sim::run_replications(
      [&](sim::Rng& rng) {
        double total = 0.0;
        simulate_ctmc(chain, rng, t, nullptr,
                      [&](size_t state, double enter, double leave) {
                        total += reward[state] * (leave - enter);
                      });
        return total;
      },
      options);
}

}  // namespace gop::markov
