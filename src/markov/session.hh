#pragma once

/// \file session.hh
/// Solver sessions: one-pass transient / accumulated CTMC solutions over a
/// whole time grid, with multi-reward evaluation against a single solve.
///
/// The paper's evaluation (§6) is built from phi-sweeps: the same chain is
/// queried at many time points, and at each point several reward structures
/// are dotted against the same distribution. The pointwise entry points
/// (transient.hh, accumulated.hh) re-solve the chain from t = 0 for every
/// (time, reward) pair. A session instead solves once per grid:
///
///  - **Uniformization** shares the Krylov sequence v_k = pi0 P^k across all
///    grid times: the DTMC iterates are propagated once, up to the largest
///    time's Fox–Glynn window, and each time point only re-weights the shared
///    iterates with its own Poisson probabilities. One propagation pass
///    serves the whole grid (O(1) passes per chain instead of O(points)).
///  - **Dense matrix exponential** solves each *distinct* time once and
///    shares the solution across duplicate grid times and across every reward
///    structure dotted against it.
///  - **Krylov** (large stiff chains) builds the sparse transposed generator
///    (respectively the augmented operator) once and shares it across every
///    grid time's expv action; the dense generator is never materialized.
///
/// Determinism contract (docs/solver-architecture.md): session results are
/// **bit-identical** to the pointwise solvers at every grid point. The
/// uniformization replay consumes exactly the iterate sequence, Poisson
/// windows, summation order, and steady-state-detection decisions of the
/// pointwise loop; the dense path runs the identical from-zero solve. This is
/// what lets the batched sweep pipeline (core/performability.hh) promise
/// bit-identical results to the single-point path at every thread count.
///
/// Sessions are immutable after construction and safe to read from multiple
/// threads concurrently.

#include <optional>
#include <vector>

#include "markov/accumulated.hh"
#include "markov/ctmc.hh"
#include "markov/recovery.hh"
#include "markov/solver_plan.hh"
#include "markov/transient.hh"

namespace gop::markov {

/// State distributions pi(t_i) for a sorted, non-decreasing time grid
/// (duplicates allowed; they share one solution).
class TransientSession {
 public:
  /// Solves eagerly at construction. `times` must be sorted non-decreasing
  /// and non-negative. The chain must outlive the session.
  TransientSession(const Ctmc& chain, std::vector<double> times,
                   const TransientOptions& options = {});

  /// Recovery-laddered build (recovery.hh): retries the grid solve with a
  /// tightened Fox-Glynn epsilon, then rebuilds on the alternative engine,
  /// before throwing gop::SolverError ("transient_session"). certificate()
  /// records the provenance. A clean first-try build stays bit-identical to
  /// the policy-free constructor.
  TransientSession(const Ctmc& chain, std::vector<double> times, const TransientOptions& options,
                   const RecoveryPolicy& policy);

  /// Set iff the session was built with a RecoveryPolicy.
  const std::optional<Certificate>& certificate() const { return certificate_; }

  /// The SolverPlan the grid resolved to (the engine that served the build;
  /// after a recovery fallback, the plan of the successful rung).
  const SolverPlan& plan() const { return plan_; }

  const Ctmc& chain() const { return *chain_; }
  size_t time_count() const { return times_.size(); }
  const std::vector<double>& times() const { return times_; }
  double time_at(size_t i) const;

  /// pi(times()[i]); bit-identical to transient_distribution(chain, t).
  const std::vector<double>& distribution_at(size_t i) const;

  /// sum_s pi_s(t_i) * state_reward[s]; bit-identical to transient_reward.
  double reward_at(size_t i, const std::vector<double>& state_reward) const;

  /// reward_at for every grid point, in grid order.
  std::vector<double> reward_series(const std::vector<double>& state_reward) const;

 private:
  void build(const TransientOptions& options);

  const Ctmc* chain_;
  std::vector<double> times_;
  std::vector<std::vector<double>> distributions_;
  std::optional<Certificate> certificate_;
  SolverPlan plan_;
};

/// Accumulated occupancies L(t_i) = \int_0^{t_i} pi(s) ds for a sorted grid.
/// The missing "accumulated counterpart" of the transient series: one
/// uniformization pass (or one augmented exponential per distinct time)
/// serves every interval-of-time reward on the grid.
class AccumulatedSession {
 public:
  AccumulatedSession(const Ctmc& chain, std::vector<double> times,
                     const AccumulatedOptions& options = {});

  /// Recovery-laddered build; see TransientSession. Throws gop::SolverError
  /// ("accumulated_session") when every rung fails.
  AccumulatedSession(const Ctmc& chain, std::vector<double> times,
                     const AccumulatedOptions& options, const RecoveryPolicy& policy);

  /// Set iff the session was built with a RecoveryPolicy.
  const std::optional<Certificate>& certificate() const { return certificate_; }

  /// The SolverPlan the grid resolved to; see TransientSession::plan().
  const SolverPlan& plan() const { return plan_; }

  const Ctmc& chain() const { return *chain_; }
  size_t time_count() const { return times_.size(); }
  const std::vector<double>& times() const { return times_; }
  double time_at(size_t i) const;

  /// L(times()[i]); bit-identical to accumulated_occupancy(chain, t).
  const std::vector<double>& occupancy_at(size_t i) const;

  /// sum_s L_s(t_i) * state_reward[s]; bit-identical to accumulated_reward.
  double reward_at(size_t i, const std::vector<double>& state_reward) const;

  /// reward_at for every grid point, in grid order.
  std::vector<double> reward_series(const std::vector<double>& state_reward) const;

 private:
  void build(const AccumulatedOptions& options);

  const Ctmc* chain_;
  std::vector<double> times_;
  std::vector<std::vector<double>> occupancies_;
  std::optional<Certificate> certificate_;
  SolverPlan plan_;
};

}  // namespace gop::markov
