#pragma once

/// \file steady_state.hh
/// Stationary-distribution solvers for irreducible CTMCs, mirroring the
/// paper's "expected instant-of-time reward at steady state" solver
/// (Table 2: 1-rho_1, 1-rho_2 in RMGp).

#include <vector>

#include "markov/ctmc.hh"

namespace gop::markov {

enum class SteadyStateMethod {
  /// GTH for small chains (exact, subtraction-free), power iteration on the
  /// uniformized DTMC otherwise.
  kAuto,
  kGth,
  kPower,
  kGaussSeidel,
};

struct SteadyStateOptions {
  SteadyStateMethod method = SteadyStateMethod::kAuto;
  double tolerance = 1e-13;
  size_t max_iterations = 2'000'000;
  size_t auto_gth_max_states = 2048;
};

/// The engine the dispatcher would run for `chain`: a thin wrapper over
/// plan_steady_state (solver_plan.hh), where the kAuto cutoff lives. For
/// kAuto the choice depends only on the chain size (there is no horizon).
SteadyStateMethod resolve_steady_state_method(const Ctmc& chain, const SteadyStateOptions& options);

/// Stationary distribution pi with pi Q = 0, sum(pi) = 1. The chain must be
/// irreducible; GTH raises gop::ModelError when it provably is not, the
/// iterative methods raise gop::NumericalError on non-convergence.
std::vector<double> steady_state_distribution(const Ctmc& chain,
                                              const SteadyStateOptions& options = {});

/// Expected steady-state rate reward: sum_s pi_s * reward[s].
double steady_state_reward(const Ctmc& chain, const std::vector<double>& state_reward,
                           const SteadyStateOptions& options = {});

}  // namespace gop::markov
