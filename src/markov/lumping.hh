#pragma once

/// \file lumping.hh
/// Ordinary lumpability of CTMCs: given a partition of the state space, the
/// chain is (ordinarily) lumpable iff for every block B' the total rate from
/// state s into B' is constant across all s in the same block B. Lumpable
/// partitions yield an exact *quotient* chain over the blocks, the classic
/// tool for exploiting symmetry — e.g. the replicas of san::replicate() are
/// exchangeable, so states that differ only by a permutation of replicas
/// lump together.

#include <vector>

#include "markov/ctmc.hh"

namespace gop::markov {

/// A partition: partition[s] is the block index of state s; block indices
/// must form a contiguous range 0..k-1.
using Partition = std::vector<size_t>;

struct LumpingCheck {
  bool lumpable = false;
  /// When not lumpable: a witnessing (state, state, block) triple — two
  /// states of one block whose rates into `block` differ.
  size_t witness_state_a = 0;
  size_t witness_state_b = 0;
  size_t witness_block = 0;
};

/// Verifies ordinary lumpability of `partition` within tolerance `tol` on
/// the per-block rate sums.
LumpingCheck check_lumpable(const Ctmc& chain, const Partition& partition, double tol = 1e-9);

/// Builds the quotient chain. Requires a lumpable partition (checked;
/// throws gop::ModelError otherwise). The quotient's initial distribution is
/// the block-summed initial distribution; transition labels are dropped
/// (different labels may merge).
Ctmc lump(const Ctmc& chain, const Partition& partition, double tol = 1e-9);

/// The coarsest ordinarily-lumpable refinement that separates the initial
/// blocks of `seed` (classic partition-refinement / splitter algorithm).
/// The seed must distinguish whatever the quotient is supposed to preserve —
/// typically the distinct values of a reward structure (a single-block seed
/// is already lumpable and stays a single block: the condition only
/// constrains rates *between* blocks).
Partition coarsest_lumpable_partition(const Ctmc& chain, const Partition& seed,
                                      double tol = 1e-9);

/// Number of blocks of a partition (validates contiguity).
size_t block_count(const Partition& partition);

}  // namespace gop::markov
