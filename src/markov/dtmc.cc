#include "markov/dtmc.hh"

#include <cmath>

#include "linalg/gth.hh"
#include "linalg/vector_ops.hh"
#include "util/error.hh"
#include "util/strings.hh"

namespace gop::markov {

Dtmc::Dtmc(linalg::CsrMatrix p, std::vector<double> initial)
    : p_(std::move(p)), initial_(std::move(initial)) {
  GOP_REQUIRE(p_.rows() == p_.cols(), "transition matrix must be square");
  GOP_REQUIRE(initial_.size() == p_.rows(), "initial distribution length mismatch");
  GOP_REQUIRE(linalg::is_probability_vector(initial_, 1e-9),
              "initial distribution must be a probability vector");
  for (size_t r = 0; r < p_.rows(); ++r) {
    const double sum = p_.row_sum(r);
    GOP_REQUIRE(std::abs(sum - 1.0) <= 1e-9,
                str_format("row %zu of the transition matrix sums to %.12g, expected 1", r, sum));
  }
  for (double v : p_.values()) GOP_REQUIRE(v >= 0.0, "transition probabilities must be >= 0");
}

Dtmc Dtmc::embedded_jump_chain(const Ctmc& chain) {
  linalg::CooBuilder builder(chain.state_count(), chain.state_count());
  for (size_t s = 0; s < chain.state_count(); ++s) {
    const double exit = chain.exit_rates()[s];
    if (exit == 0.0) {
      builder.add(s, s, 1.0);  // absorbing: stay forever
      continue;
    }
    const auto& rates = chain.rate_matrix();
    for (size_t k = rates.row_ptr()[s]; k < rates.row_ptr()[s + 1]; ++k) {
      builder.add(s, rates.col_idx()[k], rates.values()[k] / exit);
    }
  }
  return Dtmc(builder.build(), chain.initial_distribution());
}

Dtmc Dtmc::uniformized(const Ctmc& chain, double rate_slack) {
  GOP_REQUIRE(rate_slack >= 1.0, "rate_slack must be >= 1");
  const double lambda =
      chain.max_exit_rate() > 0.0 ? chain.max_exit_rate() * rate_slack : 1.0;
  linalg::CooBuilder builder(chain.state_count(), chain.state_count());
  for (size_t s = 0; s < chain.state_count(); ++s) {
    builder.add(s, s, 1.0 - chain.exit_rates()[s] / lambda);
    const auto& rates = chain.rate_matrix();
    for (size_t k = rates.row_ptr()[s]; k < rates.row_ptr()[s + 1]; ++k) {
      builder.add(s, rates.col_idx()[k], rates.values()[k] / lambda);
    }
  }
  return Dtmc(builder.build(), chain.initial_distribution());
}

std::vector<double> Dtmc::distribution_after(size_t steps) const {
  std::vector<double> v = initial_;
  for (size_t i = 0; i < steps; ++i) v = p_.left_multiply(v);
  return v;
}

std::vector<double> Dtmc::step(const std::vector<double>& v) const {
  GOP_REQUIRE(v.size() == state_count(), "distribution length mismatch");
  return p_.left_multiply(v);
}

std::vector<double> Dtmc::stationary_distribution() const {
  return linalg::gth_stationary_dtmc(p_.to_dense());
}

double Dtmc::expected_reward_after(const std::vector<double>& state_reward, size_t steps) const {
  GOP_REQUIRE(state_reward.size() == state_count(), "reward vector length mismatch");
  return linalg::dot(distribution_after(steps), state_reward);
}

}  // namespace gop::markov
