#pragma once

/// \file solver_stats.hh
/// Process-wide counters of solver-engine invocations. The counters exist so
/// tests and benches can *prove* the amortization claims of the solver-session
/// layer (session.hh): a phi-sweep through the batched pipeline must cost
/// O(1) uniformization passes per chain instead of O(points x measures), and
/// the single-point evaluation path must solve each (chain, t) distribution
/// exactly once however many reward structures are dotted against it.
///
/// The counters are relaxed atomics: increments from concurrent solver calls
/// never synchronize with each other, so they add no contention to the hot
/// path, and reads taken while solvers are running are only advisory. Tests
/// reset, run a known workload on one logical stream, and compare snapshots.

#include <atomic>
#include <cstdint>

namespace gop::markov {

struct SolverCounters {
  /// Dense Pade matrix exponentials (matrix_exp.hh), including the augmented
  /// 2n x 2n exponentials behind the accumulated-occupancy solver.
  std::atomic<uint64_t> matrix_exponentials{0};
  /// Uniformization propagation passes: each pointwise transient or
  /// accumulated solve counts one, and each session-shared Krylov sequence
  /// counts one regardless of how many grid times it serves.
  std::atomic<uint64_t> uniformization_passes{0};
  /// TransientSession / AccumulatedSession constructions.
  std::atomic<uint64_t> transient_sessions{0};
  std::atomic<uint64_t> accumulated_sessions{0};

  void reset() {
    matrix_exponentials.store(0, std::memory_order_relaxed);
    uniformization_passes.store(0, std::memory_order_relaxed);
    transient_sessions.store(0, std::memory_order_relaxed);
    accumulated_sessions.store(0, std::memory_order_relaxed);
  }
};

/// The process-wide counter instance.
SolverCounters& solver_stats();

}  // namespace gop::markov
