#pragma once

/// \file solver_stats.hh
/// Compatibility shim over the gop::obs registry (obs/registry.hh). The
/// process-wide solver-invocation counters used to live here as a standalone
/// struct; they are now ordinary named obs counters
/// ("markov.matrix_exponentials", "markov.uniformization_passes",
/// "markov.transient_sessions", "markov.accumulated_sessions") so every sink
/// — gop_trace, `gop_study --trace`, snapshots in tests — sees them next to
/// the spans and solver events. This header keeps the historical API: the
/// struct's members are references to the registry's atomics, so existing
/// `solver_stats().matrix_exponentials.load()` call sites compile and read
/// the same numbers.
///
/// The counters exist so tests and benches can *prove* the amortization
/// claims of the solver-session layer (session.hh): a phi-sweep through the
/// batched pipeline must cost O(1) uniformization passes per chain instead
/// of O(points x measures). They are always counted (relaxed increments, no
/// new overhead, no obs::set_enabled required) — exactly the pre-obs
/// behaviour; only spans and solver events are gated on the obs enable flag.

#include <atomic>
#include <cstdint>

namespace gop::markov {

struct SolverCounters {
  /// Dense Pade matrix exponentials (matrix_exp.hh), including the augmented
  /// 2n x 2n exponentials behind the accumulated-occupancy solver.
  std::atomic<uint64_t>& matrix_exponentials;
  /// Uniformization propagation passes: each pointwise transient or
  /// accumulated solve counts one, and each session-shared Krylov sequence
  /// counts one regardless of how many grid times it serves.
  std::atomic<uint64_t>& uniformization_passes;
  /// TransientSession / AccumulatedSession constructions.
  std::atomic<uint64_t>& transient_sessions;
  std::atomic<uint64_t>& accumulated_sessions;

  void reset() {
    matrix_exponentials.store(0, std::memory_order_relaxed);
    uniformization_passes.store(0, std::memory_order_relaxed);
    transient_sessions.store(0, std::memory_order_relaxed);
    accumulated_sessions.store(0, std::memory_order_relaxed);
  }
};

/// The process-wide counter view (aliasing the obs registry).
SolverCounters& solver_stats();

}  // namespace gop::markov
