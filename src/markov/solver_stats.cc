#include "markov/solver_stats.hh"

#include "obs/registry.hh"

namespace gop::markov {

SolverCounters& solver_stats() {
  static SolverCounters counters{
      obs::counter("markov.matrix_exponentials").raw(),
      obs::counter("markov.uniformization_passes").raw(),
      obs::counter("markov.transient_sessions").raw(),
      obs::counter("markov.accumulated_sessions").raw(),
  };
  return counters;
}

}  // namespace gop::markov
