#include "markov/solver_stats.hh"

namespace gop::markov {

SolverCounters& solver_stats() {
  static SolverCounters counters;
  return counters;
}

}  // namespace gop::markov
