#pragma once

/// \file ctmc.hh
/// Continuous-time Markov chain with labelled transitions. This is the base
/// model type every solver in gop::markov consumes; the SAN reachability
/// generator produces it.

#include <cstddef>
#include <vector>

#include "linalg/csr_matrix.hh"
#include "linalg/dense_matrix.hh"

namespace gop::markov {

/// One labelled transition. `label` identifies the SAN activity (or any other
/// event source) that produced the transition; it exists so impulse rewards
/// can be attached to activity completions. Self-loops (from == to) are legal
/// and contribute to impulse rewards but not to the rate matrix.
struct Transition {
  size_t from = 0;
  size_t to = 0;
  double rate = 0.0;
  int label = -1;
};

class Ctmc {
 public:
  /// Builds a CTMC over `state_count` states. `initial` must be a probability
  /// vector of that length; transition rates must be positive and finite.
  Ctmc(size_t state_count, std::vector<Transition> transitions, std::vector<double> initial);

  size_t state_count() const { return state_count_; }

  /// All transitions as given (self-loops included).
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Off-diagonal rate matrix R (self-loops excluded, parallel transitions
  /// summed). The generator is Q = R - diag(exit_rates()).
  const linalg::CsrMatrix& rate_matrix() const { return rates_; }

  /// Exit rate of each state (sum of off-diagonal outgoing rates).
  const std::vector<double>& exit_rates() const { return exit_rates_; }

  double max_exit_rate() const { return max_exit_rate_; }

  const std::vector<double>& initial_distribution() const { return initial_; }

  /// True when the state has no outgoing (non-self-loop) transitions.
  bool is_absorbing(size_t state) const;

  /// Largest chain for which generator_dense() will materialize Q: a
  /// 16384-state dense generator is 2 GiB. Above the limit the sparse
  /// engines (uniformization, Krylov) are the only sane path, so
  /// generator_dense() throws gop::NumericalError — which the recovery
  /// ladder absorbs — instead of letting the allocator OOM the process.
  static constexpr size_t kDenseGeneratorStateLimit = 16384;

  /// Dense generator Q (for the direct solvers; fine at this library's model
  /// sizes). Throws gop::NumericalError when the chain exceeds
  /// kDenseGeneratorStateLimit states.
  linalg::DenseMatrix generator_dense() const;

  /// Returns a copy of this chain with a different initial distribution.
  Ctmc with_initial(std::vector<double> initial) const;

 private:
  size_t state_count_;
  std::vector<Transition> transitions_;
  linalg::CsrMatrix rates_;
  std::vector<double> exit_rates_;
  std::vector<double> initial_;
  double max_exit_rate_ = 0.0;
};

}  // namespace gop::markov
