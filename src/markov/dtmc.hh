#pragma once

/// \file dtmc.hh
/// Discrete-time Markov chains: the embedded jump chain and the uniformized
/// chain of a CTMC, step-wise transient solution, and stationary analysis.
/// Useful on their own (per-event analyses such as "which activity completes
/// first") and as building blocks for the iterative CTMC solvers.

#include <vector>

#include "linalg/csr_matrix.hh"
#include "markov/ctmc.hh"

namespace gop::markov {

class Dtmc {
 public:
  /// `p` must be row-stochastic (each row sums to 1 within 1e-9); `initial`
  /// a probability vector.
  Dtmc(linalg::CsrMatrix p, std::vector<double> initial);

  /// The embedded jump chain of a CTMC: P(s -> s') = rate(s -> s') / exit(s).
  /// Absorbing CTMC states become self-loop states (probability 1).
  static Dtmc embedded_jump_chain(const Ctmc& chain);

  /// The uniformized chain P = I + Q/Lambda with Lambda = max exit rate
  /// times `rate_slack` (>= 1).
  static Dtmc uniformized(const Ctmc& chain, double rate_slack = 1.02);

  size_t state_count() const { return p_.rows(); }
  const linalg::CsrMatrix& transition_matrix() const { return p_; }
  const std::vector<double>& initial_distribution() const { return initial_; }

  /// Distribution after exactly `steps` transitions.
  std::vector<double> distribution_after(size_t steps) const;

  /// One step from an arbitrary distribution: v P.
  std::vector<double> step(const std::vector<double>& v) const;

  /// Stationary distribution (GTH on P - I); requires irreducibility.
  std::vector<double> stationary_distribution() const;

  /// Expected reward of the state occupied after `steps` transitions.
  double expected_reward_after(const std::vector<double>& state_reward, size_t steps) const;

 private:
  linalg::CsrMatrix p_;
  std::vector<double> initial_;
};

}  // namespace gop::markov
